module ssrmin

go 1.22
