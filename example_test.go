package ssrmin_test

import (
	"fmt"
	"os"

	"ssrmin"
)

// The state-reading model: trace the first handover of a freshly built
// five-process ring (the first three rows of the paper's Figure 4 pattern).
func ExampleNewSimulation() {
	sim := ssrmin.NewSimulation(5, ssrmin.WithRecording())
	sim.Run(3)
	if err := sim.RenderTrace(os.Stdout); err != nil {
		fmt.Println(err)
	}
	// Output:
	// Step  P0         P1       P2     P3     P4
	// 1     0.0.1PS/1  0.0.0    0.0.0  0.0.0  0.0.0
	// 2     0.1.0PS    0.0.0/3  0.0.0  0.0.0  0.0.0
	// 3     0.1.0P/2   0.0.1S   0.0.0  0.0.0  0.0.0
	// 4     1.0.0      0.0.1PS  0.0.0  0.0.0  0.0.0
}

// Self-stabilization: from an arbitrary configuration the ring converges
// to the legitimate regime — no reset, no initialization.
func ExampleSimulation_RunUntilLegitimate() {
	alg := ssrmin.New(5, 6)
	garbage := ssrmin.Config{
		{X: 3, RTS: true, TRA: true}, {X: 1}, {X: 4, TRA: true}, {X: 0, RTS: true}, {X: 2},
	}
	sim := ssrmin.NewSimulation(5,
		ssrmin.WithK(6),
		ssrmin.WithInitial(garbage),
		ssrmin.WithDaemon(ssrmin.SynchronousDaemon()),
	)
	_, ok := sim.RunUntilLegitimate(alg.ConvergenceStepBound())
	tc := sim.Census()
	fmt.Println(ok, tc.Privileged >= 1 && tc.Privileged <= 2)
	// Output: true true
}

// The message-passing model: the census never leaves {1, 2} — the model
// gap tolerance of Theorem 3.
func ExampleNewMPSimulation() {
	mp := ssrmin.NewMPSimulation(5, ssrmin.WithSeed(1))
	mp.Run(10)
	tl := mp.Timeline()
	fmt.Println(tl.MinCount(), tl.MaxCount(), tl.Duration(0))
	// Output: 1 2 0
}

// Token census of a legitimate configuration: exactly one primary and one
// secondary token, 1–2 privileged processes.
func ExampleCount() {
	alg := ssrmin.New(4, 5)
	tc := ssrmin.Count(alg.InitialLegitimate())
	fmt.Printf("primary=%d secondary=%d privileged=%d\n", tc.Primary, tc.Secondary, tc.Privileged)
	// Output: primary=1 secondary=1 privileged=1
}

// The (m, 2m)-critical-section composition: two SSRmin instances keep
// 2–4 privilege grants at every step.
func ExampleNewMultiSimulation() {
	sim := ssrmin.NewMultiSimulation(6, 2, ssrmin.CentralDaemon(1))
	ok := true
	for i := 0; i < 100; i++ {
		sim.Step()
		if g := sim.Grants(); g < 2 || g > 4 {
			ok = false
		}
	}
	fmt.Println(ok)
	// Output: true
}
