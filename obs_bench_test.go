package ssrmin

import (
	"testing"

	"ssrmin/internal/core"
	"ssrmin/internal/cst"
	"ssrmin/internal/daemon"
	"ssrmin/internal/msgnet"
	"ssrmin/internal/obs"
	"ssrmin/internal/statemodel"
)

// BenchmarkObsOverhead measures what the instrumentation hooks cost on
// the two hot paths that carry them unconditionally: the state-reading
// step loop (sim) and the discrete-event network (mp). "bare" is the
// uninstrumented path (nil observer — the default for every existing
// caller); "nop" attaches a counters-only observer with no event sink.
// The acceptance bar is nop within 5% of bare; `make bench-obs` records
// both in BENCH_obs.json.
func BenchmarkObsOverhead(b *testing.B) {
	const n = 64
	b.Run("sim", func(b *testing.B) {
		for _, mode := range []string{"bare", "nop"} {
			b.Run(mode, func(b *testing.B) {
				alg := core.New(n, n+1)
				sim := statemodel.NewSimulator[core.State](alg, daemon.NewCentralLowest(), alg.InitialLegitimate())
				if mode == "nop" {
					sim.Obs = obs.New(nil)
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					sim.Run(3 * n)
				}
			})
		}
	})
	b.Run("mp", func(b *testing.B) {
		for _, mode := range []string{"bare", "nop"} {
			b.Run(mode, func(b *testing.B) {
				alg := core.New(n, n+1)
				r := cst.NewRing[core.State](alg, alg.InitialLegitimate(), cst.Options[core.State]{
					Link:           msgnet.LinkParams{Delay: 0.01, Jitter: 0.002},
					Refresh:        0.05,
					Seed:           1,
					CoherentCaches: true,
				})
				if mode == "nop" {
					r.Net.Obs = obs.New(nil)
				}
				b.ResetTimer()
				horizon := msgnet.Time(0)
				for i := 0; i < b.N; i++ {
					horizon += 1
					r.Net.Run(horizon)
				}
			})
		}
	})
}
