package ssrmin

import (
	"strings"
	"testing"

	"ssrmin/internal/obs"
)

// TestParseDaemonRegistry exercises the library-side daemon registry:
// every advertised name builds, and the error for an unknown name quotes
// it and lists all alternatives.
func TestParseDaemonRegistry(t *testing.T) {
	names := DaemonNames()
	if len(names) == 0 {
		t.Fatal("DaemonNames returned nothing")
	}
	for _, name := range names {
		d, err := ParseDaemon(name, 1, 0.5)
		if err != nil {
			t.Errorf("ParseDaemon(%q) = %v", name, err)
		}
		if d == nil {
			t.Errorf("ParseDaemon(%q) returned a nil daemon", name)
		}
	}
	for _, bad := range []string{"", "Central", "central ", "lottery"} {
		d, err := ParseDaemon(bad, 1, 0.5)
		if err == nil {
			t.Fatalf("ParseDaemon(%q) unexpectedly succeeded", bad)
		}
		if d != nil {
			t.Errorf("ParseDaemon(%q) returned a daemon alongside the error", bad)
		}
		for _, name := range names {
			if !strings.Contains(err.Error(), name) {
				t.Errorf("ParseDaemon(%q) error %q does not list %q", bad, err, name)
			}
		}
	}
}

// TestParseDaemonDrivesSimulation checks a parsed daemon is usable as a
// WithDaemon argument and that the simulation built from it runs.
func TestParseDaemonDrivesSimulation(t *testing.T) {
	d, err := ParseDaemon("sync", 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	s := NewSimulation(5, WithDaemon(d))
	if got := s.Run(10); got != 10 {
		t.Fatalf("Run(10) = %d", got)
	}
}

// TestWithKZeroKeepsDefault pins the zero-value contract: WithK(0) is a
// no-op (K stays n+1), mirroring MPOptions{K: 0}.
func TestWithKZeroKeepsDefault(t *testing.T) {
	s := NewSimulation(5, WithK(0))
	if got := s.Algorithm().K(); got != 6 {
		t.Fatalf("WithK(0): K = %d, want the n+1 default 6", got)
	}
	m := NewMPSimulation(4, WithK(0))
	if got := m.alg.K(); got != 5 {
		t.Fatalf("WithK(0) on MPSimulation: K = %d, want 5", got)
	}
	l := NewLiveRing(3, WithK(0))
	if got := l.alg.K(); got != 4 {
		t.Fatalf("WithK(0) on LiveRing: K = %d, want 4", got)
	}
}

// TestWithKExplicit checks a real K lands, and that an illegal K ≤ n
// surfaces as the constructor's documented panic.
func TestWithKExplicit(t *testing.T) {
	s := NewSimulation(5, WithK(9))
	if got := s.Algorithm().K(); got != 9 {
		t.Fatalf("WithK(9): K = %d", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("WithK(3) with n=5 did not panic")
		}
	}()
	NewSimulation(5, WithK(3))
}

// TestObserverSinkResolution pins the conflict rules of WithObserver and
// WithSink:
//
//   - WithSink alone creates an implicit observer wired to the sink.
//   - WithObserver alone installs exactly that observer.
//   - Both together: the explicit observer wins and the sink is attached
//     to it, so events still reach the sink.
func TestObserverSinkResolution(t *testing.T) {
	t.Run("sink-only", func(t *testing.T) {
		var events int
		s := NewSimulation(5, WithSink(obs.Func(func(obs.Event) { events++ })))
		o := s.Observer()
		if o == nil {
			t.Fatal("WithSink did not create an implicit observer")
		}
		s.Run(20)
		if events == 0 {
			t.Fatal("no events reached the sink")
		}
		if o.C.Steps.Load() == 0 {
			t.Fatal("implicit observer's counters were not fed")
		}
	})
	t.Run("observer-only", func(t *testing.T) {
		o := NewObserver(nil)
		s := NewSimulation(5, WithObserver(o))
		if s.Observer() != o {
			t.Fatal("WithObserver did not install the given observer")
		}
		s.Run(20)
		if o.C.Steps.Load() == 0 {
			t.Fatal("explicit observer's counters were not fed")
		}
	})
	t.Run("both", func(t *testing.T) {
		var events int
		o := NewObserver(nil)
		s := NewSimulation(5,
			WithObserver(o),
			WithSink(obs.Func(func(obs.Event) { events++ })))
		if s.Observer() != o {
			t.Fatal("explicit observer must win over an implicit one")
		}
		s.Run(20)
		if events == 0 {
			t.Fatal("sink was not attached to the explicit observer")
		}
	})
	t.Run("neither", func(t *testing.T) {
		if o := NewSimulation(5).Observer(); o != nil {
			t.Fatalf("Observer() = %v without WithObserver/WithSink, want nil", o)
		}
	})
}
