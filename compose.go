package ssrmin

import (
	"fmt"

	"ssrmin/internal/compose"
	"ssrmin/internal/core"
	"ssrmin/internal/daemon"
	"ssrmin/internal/statemodel"
)

// MultiSimulation runs m independent SSRmin instances composed over one
// ring in the state-reading model. After every instance converges, the
// number of privilege *grants* (process–instance pairs holding a token)
// stays within [m, 2m] at every step — a (m, 2m)-critical-section system
// in the sense of the (ℓ,k)-CS family the paper cites ([9]).
type MultiSimulation struct {
	alg   *Algorithm
	multi *compose.Multi[core.State]
	sim   *statemodel.Simulator[compose.MultiState[core.State]]
}

// MaxInstances is the maximum composition width.
const MaxInstances = compose.MaxInstances

// NewMultiSimulation composes m SSRmin instances over a ring of n
// processes (K defaults to n+1). Instance j starts from the canonical
// legitimate configuration advanced by 2j positions, so the privileges
// begin staggered around the ring; pass custom starts via WithInstance
// on the returned value before stepping if needed.
func NewMultiSimulation(n, m int, d Daemon) *MultiSimulation {
	alg := core.New(n, n+1)
	multi := compose.New[core.State](alg, m)
	parts := make([]statemodel.Config[core.State], m)
	for j := range parts {
		sim := statemodel.NewSimulator[core.State](alg, daemon.NewCentralLowest(), alg.InitialLegitimate())
		sim.Run(3 * 2 * j % (3 * n))
		parts[j] = sim.Config()
	}
	if d == nil {
		d = CentralDaemon(1)
	}
	return &MultiSimulation{
		alg:   alg,
		multi: multi,
		sim:   statemodel.NewSimulator[compose.MultiState[core.State]](multi, d, multi.Pack(parts...)),
	}
}

// M returns the number of composed instances.
func (ms *MultiSimulation) M() int { return ms.multi.M() }

// Step performs one transition.
func (ms *MultiSimulation) Step() (moved bool) {
	_, ok := ms.sim.Step()
	return ok
}

// Run performs up to maxSteps transitions.
func (ms *MultiSimulation) Run(maxSteps int) int { return ms.sim.Run(maxSteps) }

// Steps returns the number of transitions executed.
func (ms *MultiSimulation) Steps() int { return ms.sim.Steps() }

// Grants counts privilege grants with multiplicity — the (ℓ,k)-CS
// measure; in the legitimate regime it is within [m, 2m].
func (ms *MultiSimulation) Grants() int {
	return ms.multi.Grants(ms.sim.Config(), core.HasToken)
}

// Holders returns the processes privileged in at least one instance.
func (ms *MultiSimulation) Holders() []int {
	return ms.multi.HoldersAny(ms.sim.Config(), core.HasToken)
}

// HoldersOf returns the privileged processes of instance j.
func (ms *MultiSimulation) HoldersOf(j int) []int {
	if j < 0 || j >= ms.multi.M() {
		panic(fmt.Sprintf("ssrmin: instance %d out of range", j))
	}
	return ms.multi.HoldersOf(ms.sim.Config(), j, core.HasToken)
}

// Legitimate reports whether every instance is in its legitimate set.
func (ms *MultiSimulation) Legitimate() bool {
	for _, part := range ms.multi.Unpack(ms.sim.Config()) {
		if !ms.alg.Legitimate(part) {
			return false
		}
	}
	return true
}

// InstanceConfigs returns the current per-instance configurations.
func (ms *MultiSimulation) InstanceConfigs() []Config {
	parts := ms.multi.Unpack(ms.sim.Config())
	out := make([]Config, len(parts))
	for i, p := range parts {
		out[i] = Config(p)
	}
	return out
}
