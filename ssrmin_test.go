package ssrmin

import (
	"math/rand"
	"strings"
	"testing"
	"time"
)

func TestSimulationDefaults(t *testing.T) {
	s := NewSimulation(5)
	if s.Algorithm().N() != 5 || s.Algorithm().K() != 6 {
		t.Fatalf("defaults: n=%d K=%d", s.Algorithm().N(), s.Algorithm().K())
	}
	if !s.Legitimate() {
		t.Fatal("default initial configuration not legitimate")
	}
	if h := s.Holders(); len(h) != 1 || h[0] != 0 {
		t.Fatalf("Holders = %v", h)
	}
	n := s.Run(100)
	if n != 100 || s.Steps() != 100 {
		t.Fatalf("Run = %d, Steps = %d", n, s.Steps())
	}
	if !s.Legitimate() {
		t.Fatal("closure violated through facade")
	}
	tc := s.Census()
	if tc.Primary != 1 || tc.Secondary != 1 {
		t.Fatalf("census = %+v", tc)
	}
}

func TestSimulationConvergenceFromRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, d := range []Daemon{
		CentralDaemon(1), SynchronousDaemon(), DistributedDaemon(2, 0.5),
		AdversarialQuietDaemon(3), StarvingDaemon(4, 0, 2),
	} {
		alg := New(6, 8)
		init := RandomConfig(alg, rng)
		s := NewSimulation(6, WithK(8), WithDaemon(d), WithInitial(init))
		steps, ok := s.RunUntilLegitimate(alg.ConvergenceStepBound())
		if !ok {
			t.Fatalf("daemon %s: no convergence in %d steps from %v", d.Name(), alg.ConvergenceStepBound(), init)
		}
		// After convergence the invariant must hold through further steps.
		for i := 0; i < 50; i++ {
			s.Step()
			if c := s.Census(); c.Privileged < 1 || c.Privileged > 2 {
				t.Fatalf("daemon %s: census %+v after convergence (+%d)", d.Name(), c, i)
			}
		}
		_ = steps
	}
}

func TestSimulationTraceRendering(t *testing.T) {
	s := NewSimulation(5, WithRecording())
	s.Run(6)
	var b strings.Builder
	if err := s.RenderTrace(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "PS") {
		t.Errorf("trace missing token letters:\n%s", b.String())
	}
	b.Reset()
	if err := s.RenderTokens(&b); err != nil {
		t.Fatal(err)
	}
	if len(strings.Split(strings.TrimSpace(b.String()), "\n")) != 8 {
		t.Errorf("token table rows:\n%s", b.String())
	}
	b.Reset()
	if err := s.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(b.String(), "step,process") {
		t.Error("CSV header missing")
	}
}

func TestSimulationWithoutRecordingErrors(t *testing.T) {
	s := NewSimulation(4)
	var b strings.Builder
	if err := s.RenderTrace(&b); err == nil {
		t.Error("RenderTrace without recording should error")
	}
	if err := s.RenderTokens(&b); err == nil {
		t.Error("RenderTokens without recording should error")
	}
	if err := s.WriteCSV(&b); err == nil {
		t.Error("WriteCSV without recording should error")
	}
}

func TestMPSimulationInvariant(t *testing.T) {
	m := NewMPSimulation(5, WithSeed(1))
	m.Run(3)
	tl := m.Timeline()
	if tl.MinCount() < 1 || tl.MaxCount() > 2 {
		t.Fatalf("census range [%d,%d]", tl.MinCount(), tl.MaxCount())
	}
	if m.RuleExecutions() == 0 || m.MessagesSent() == 0 {
		t.Fatal("no progress")
	}
}

func TestMPSimulationArbitraryStartStabilizes(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	alg := New(5, 6)
	m := NewMPSimulation(5,
		WithSeed(2),
		WithInitial(RandomConfig(alg, rng)),
		WithIncoherentCaches(),
		WithLoss(0.05),
	)
	m.Run(40)
	if c := m.Census(); c < 1 || c > 2 {
		t.Fatalf("census after settling = %d", c)
	}
	if h := m.Holders(); len(h) == 0 {
		t.Fatal("no holders")
	}
}

func TestLiveRingEndToEnd(t *testing.T) {
	l := NewLiveRing(5,
		WithDelay(300*time.Microsecond),
		WithRefresh(2*time.Millisecond),
		WithSeed(5),
	)
	transitions := make(chan int, 1024)
	l.OnPrivilege(func(node int, privileged bool) {
		if privileged {
			select {
			case transitions <- node:
			default:
			}
		}
	})
	l.Start()
	defer l.Stop()
	stats := l.WatchCensus(200*time.Millisecond, 100*time.Microsecond)
	if stats.Min < 1 || stats.Max > 2 {
		t.Fatalf("live census out of bounds: %+v", stats)
	}
	if l.RuleExecutions() == 0 {
		t.Fatal("live ring made no progress")
	}
	if len(transitions) == 0 {
		t.Fatal("no privilege callbacks")
	}
}

func TestCountHelper(t *testing.T) {
	alg := New(4, 5)
	tc := Count(alg.InitialLegitimate())
	if tc.Privileged != 1 || tc.Primary != 1 || tc.Secondary != 1 {
		t.Fatalf("Count = %+v", tc)
	}
}

func TestSSTokenBaselineAccessors(t *testing.T) {
	d := NewSSToken(5, 6)
	cfg := d.InitialLegitimate()
	if !d.Legitimate(cfg) {
		t.Fatal("SSToken initial not legitimate")
	}
	if !DijkstraHasToken(cfg.View(0)) {
		t.Fatal("token should sit at P0")
	}
}

func TestMultiSimulationBounds(t *testing.T) {
	for m := 1; m <= 3; m++ {
		sim := NewMultiSimulation(6, m, DistributedDaemon(int64(m), 0.5))
		if sim.M() != m {
			t.Fatalf("M = %d", sim.M())
		}
		if !sim.Legitimate() {
			t.Fatalf("m=%d: staggered start not legitimate", m)
		}
		for s := 0; s < 300; s++ {
			if !sim.Step() {
				t.Fatal("deadlock")
			}
			g := sim.Grants()
			if g < m || g > 2*m {
				t.Fatalf("m=%d step %d: grants %d outside [%d,%d]", m, s, g, m, 2*m)
			}
			if h := sim.Holders(); len(h) == 0 {
				t.Fatalf("m=%d: no holders", m)
			}
		}
		if sim.Steps() != 300 {
			t.Fatalf("Steps = %d", sim.Steps())
		}
		cfgs := sim.InstanceConfigs()
		if len(cfgs) != m {
			t.Fatalf("InstanceConfigs = %d", len(cfgs))
		}
		for j := 0; j < m; j++ {
			if h := sim.HoldersOf(j); len(h) < 1 || len(h) > 2 {
				t.Fatalf("instance %d holders %v", j, h)
			}
		}
	}
}

func TestMultiSimulationHoldersOfValidation(t *testing.T) {
	sim := NewMultiSimulation(5, 2, nil)
	defer func() {
		if recover() == nil {
			t.Error("HoldersOf(9) did not panic")
		}
	}()
	sim.HoldersOf(9)
}

func TestMPOptionsHoldAndDefaults(t *testing.T) {
	m := NewMPSimulation(5, MPOptions{Seed: 1, Hold: 0.02})
	m.Run(5)
	tl := m.Timeline()
	if tl.MinCount() < 1 || tl.MaxCount() > 2 {
		t.Fatalf("census [%d,%d] with dwell", tl.MinCount(), tl.MaxCount())
	}
	// Dwell slows the rotation: with 20ms dwell per leg the rule rate is
	// bounded by ~3 legs / (3*hold) per advance.
	if m.RuleExecutions() > 5*60 {
		t.Fatalf("dwell apparently ignored: %d rules in 5s", m.RuleExecutions())
	}
	if m.Coherent() && m.Census() == 0 {
		t.Fatal("impossible state")
	}
}

func TestLiveOptionsIncoherentCaches(t *testing.T) {
	alg := New(5, 6)
	rng := rand.New(rand.NewSource(12))
	l := NewLiveRing(5, LiveOptions{
		Delay:            300 * time.Microsecond,
		Refresh:          2 * time.Millisecond,
		Seed:             13,
		Initial:          RandomConfig(alg, rng),
		IncoherentCaches: true,
	})
	l.Start()
	defer l.Stop()
	time.Sleep(400 * time.Millisecond) // settle
	stats := l.WatchCensus(150*time.Millisecond, 100*time.Microsecond)
	if stats.Min < 1 || stats.Max > 2 {
		t.Fatalf("census %+v after settling from incoherent start", stats)
	}
}

func TestLiveInjectFacade(t *testing.T) {
	l := NewLiveRing(5,
		WithDelay(300*time.Microsecond),
		WithRefresh(2*time.Millisecond),
		WithSeed(14),
	)
	l.Start()
	defer l.Stop()
	time.Sleep(20 * time.Millisecond)
	if !l.Inject(2, State{X: 4, RTS: true, TRA: true}) {
		t.Fatal("injection dropped")
	}
	time.Sleep(200 * time.Millisecond)
	stats := l.WatchCensus(100*time.Millisecond, 100*time.Microsecond)
	if stats.Min < 1 || stats.Max > 2 {
		t.Fatalf("census %+v after facade injection", stats)
	}
}
