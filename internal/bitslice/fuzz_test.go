package bitslice

import (
	"testing"

	"ssrmin/internal/core"
	"ssrmin/internal/dijkstra"
	"ssrmin/internal/statemodel"
)

// FuzzBitsliceStep throws random ring sizes, alphabets, daemon kinds,
// and state corruptions at both batch kernels and steps them against 64
// scalar simulators; any divergence is reported with the offending lane
// as the witness. Pokes corrupt states after seeding (in both paths
// identically), so the kernels are exercised on arbitrary lane states,
// not just sampled ones.
func FuzzBitsliceStep(f *testing.F) {
	f.Add(int64(1), uint8(2), uint8(0), true, uint8(5), []byte{})
	f.Add(int64(42), uint8(5), uint8(3), false, uint8(9), []byte{0x03, 0x01, 0xc7})
	f.Add(int64(-7), uint8(13), uint8(7), true, uint8(3), []byte{0x3f, 0x00, 0x80, 0x11, 0x02, 0x41})
	f.Add(int64(1<<40), uint8(0), uint8(1), true, uint8(11), []byte{0x20, 0x03, 0x05})

	f.Fuzz(func(t *testing.T, seed int64, nb, kb uint8, subset bool, stepsB uint8, pokes []byte) {
		n := 3 + int(nb%14)    // 3..16
		k := n + 1 + int(kb%8) // n+1..n+8
		steps := 1 + int(stepsB%12)
		kind := Synchronous
		if subset {
			kind = Subset
		}

		fuzzSSRminStep(t, n, k, kind, seed, steps, pokes)
		fuzzSSTokenStep(t, n, k, kind, seed, steps, pokes)
	})
}

func fuzzSSRminStep(t *testing.T, n, k int, kind DaemonKind, seed int64, steps int, pokes []byte) {
	alg := core.New(n, k)
	b := NewSSRmin(n, k, kind)
	b.SeedLanes(seed)

	inits := make([]statemodel.Config[core.State], Lanes)
	rngs := make([]RNG, Lanes)
	for lane := 0; lane < Lanes; lane++ {
		rng := SeedStream(seed, lane)
		init := make(statemodel.Config[core.State], n)
		for i := range init {
			init[i] = SampleSSRmin(&rng, k)
		}
		inits[lane], rngs[lane] = init, rng
	}
	for j := 0; j+2 < len(pokes) && j < 30; j += 3 {
		lane := int(pokes[j]) % Lanes
		node := int(pokes[j+1]) % n
		s := core.State{X: int(pokes[j+2]&0x3f) % k, RTS: pokes[j+2]&0x40 != 0, TRA: pokes[j+2]&0x80 != 0}
		b.SetLaneState(lane, node, s)
		inits[lane][node] = s
	}

	sims := make([]*statemodel.Simulator[core.State], Lanes)
	for lane := 0; lane < Lanes; lane++ {
		sims[lane] = statemodel.NewSimulator[core.State](alg, scalarDaemon(kind, &rngs[lane]), inits[lane])
	}
	for s := 0; s < steps; s++ {
		legit := b.LegitMask()
		for lane := 0; lane < Lanes; lane++ {
			if got, want := legit>>uint(lane)&1 == 1, alg.Legitimate(sims[lane].Config()); got != want {
				t.Fatalf("ssrmin n=%d K=%d %v step %d: lane %d legit mask %v, scalar %v",
					n, k, kind, s, lane, got, want)
			}
		}
		if stuck := b.Step(); stuck != 0 {
			t.Fatalf("ssrmin n=%d K=%d step %d: deadlock mask %#x", n, k, s, stuck)
		}
		for lane := 0; lane < Lanes; lane++ {
			if _, ok := sims[lane].Step(); !ok {
				t.Fatalf("ssrmin n=%d K=%d step %d: lane %d scalar deadlock", n, k, s, lane)
			}
			if got, want := b.LaneConfig(lane), sims[lane].Config(); !got.Equal(want) {
				t.Fatalf("ssrmin n=%d K=%d %v step %d: lane %d diverged\n batch:  %v\n scalar: %v",
					n, k, kind, s, lane, got, want)
			}
		}
	}
}

func fuzzSSTokenStep(t *testing.T, n, k int, kind DaemonKind, seed int64, steps int, pokes []byte) {
	alg := dijkstra.New(n, k)
	b := NewSSToken(n, k, kind)
	b.SeedLanes(seed)

	inits := make([]statemodel.Config[dijkstra.State], Lanes)
	rngs := make([]RNG, Lanes)
	for lane := 0; lane < Lanes; lane++ {
		rng := SeedStream(seed, lane)
		init := make(statemodel.Config[dijkstra.State], n)
		for i := range init {
			init[i] = SampleSSToken(&rng, k)
		}
		inits[lane], rngs[lane] = init, rng
	}
	for j := 0; j+2 < len(pokes) && j < 30; j += 3 {
		lane := int(pokes[j]) % Lanes
		node := int(pokes[j+1]) % n
		s := dijkstra.State{X: int(pokes[j+2]) % k}
		b.SetLaneState(lane, node, s)
		inits[lane][node] = s
	}

	sims := make([]*statemodel.Simulator[dijkstra.State], Lanes)
	for lane := 0; lane < Lanes; lane++ {
		sims[lane] = statemodel.NewSimulator[dijkstra.State](alg, scalarDaemon(kind, &rngs[lane]), inits[lane])
	}
	for s := 0; s < steps; s++ {
		legit := b.LegitMask()
		for lane := 0; lane < Lanes; lane++ {
			if got, want := legit>>uint(lane)&1 == 1, alg.Legitimate(sims[lane].Config()); got != want {
				t.Fatalf("sstoken n=%d K=%d %v step %d: lane %d legit mask %v, scalar %v",
					n, k, kind, s, lane, got, want)
			}
		}
		if stuck := b.Step(); stuck != 0 {
			t.Fatalf("sstoken n=%d K=%d step %d: deadlock mask %#x", n, k, s, stuck)
		}
		for lane := 0; lane < Lanes; lane++ {
			if _, ok := sims[lane].Step(); !ok {
				t.Fatalf("sstoken n=%d K=%d step %d: lane %d scalar deadlock", n, k, s, lane)
			}
			if got, want := b.LaneConfig(lane), sims[lane].Config(); !got.Equal(want) {
				t.Fatalf("sstoken n=%d K=%d %v step %d: lane %d diverged\n batch:  %v\n scalar: %v",
					n, k, kind, s, lane, got, want)
			}
		}
	}
}
