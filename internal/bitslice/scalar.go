package bitslice

import (
	"ssrmin/internal/core"
	"ssrmin/internal/daemon"
	"ssrmin/internal/dijkstra"
	"ssrmin/internal/statemodel"
)

// SubsetDaemon is the scalar twin of the batch kernels' subset
// scheduler: a statemodel.Daemon that makes exactly one splitmix64 draw
// per step and includes enabled process i iff bit i of the draw is set,
// falling back to every enabled process when the pick comes up empty.
// Running it over SeedStream(seed, lane) replays batch lane `lane`
// draw-for-draw.
type SubsetDaemon struct {
	rng *RNG
	buf []statemodel.Move
}

// NewSubsetDaemon wraps an RNG stream as a daemon. The stream is
// consumed; share the pointer with nothing else.
func NewSubsetDaemon(rng *RNG) *SubsetDaemon {
	return &SubsetDaemon{rng: rng, buf: make([]statemodel.Move, 0, Lanes)}
}

// Name implements statemodel.Daemon.
func (d *SubsetDaemon) Name() string { return "bitslice-subset" }

// Select implements statemodel.Daemon: one draw, coin bits by process
// index, all-enabled fallback.
func (d *SubsetDaemon) Select(enabled []statemodel.Move) []statemodel.Move {
	draw := d.rng.Next()
	d.buf = d.buf[:0]
	for _, m := range enabled {
		if draw>>uint(m.Process)&1 == 1 {
			d.buf = append(d.buf, m)
		}
	}
	if len(d.buf) == 0 {
		d.buf = append(d.buf, enabled...)
	}
	return d.buf
}

// scalarDaemon materializes the scheduler for one scalar lane run.
func scalarDaemon(kind DaemonKind, rng *RNG) statemodel.Daemon {
	if kind == Synchronous {
		return daemon.Synchronous{}
	}
	return NewSubsetDaemon(rng)
}

// ScalarSSRminRun replays batch lane `lane` of an SSRmin batch seeded
// with seed through the scalar statemodel path: sample the initial
// configuration from SeedStream(seed, lane), then RunUntil(Legitimate,
// maxSteps) under the matching daemon. It returns the transition count
// and whether the lane converged — the oracle the bit-sliced Run must
// equal lane for lane.
func ScalarSSRminRun(n, k int, kind DaemonKind, seed int64, lane, maxSteps int) (int, bool) {
	alg := core.New(n, k)
	rng := SeedStream(seed, lane)
	init := make(statemodel.Config[core.State], n)
	for i := range init {
		init[i] = SampleSSRmin(&rng, k)
	}
	sim := statemodel.NewSimulator[core.State](alg, scalarDaemon(kind, &rng), init)
	return sim.RunUntil(alg.Legitimate, maxSteps)
}

// ScalarSSTokenRun is ScalarSSRminRun for Dijkstra's K-state ring.
func ScalarSSTokenRun(n, k int, kind DaemonKind, seed int64, lane, maxSteps int) (int, bool) {
	alg := dijkstra.New(n, k)
	rng := SeedStream(seed, lane)
	init := make(statemodel.Config[dijkstra.State], n)
	for i := range init {
		init[i] = SampleSSToken(&rng, k)
	}
	sim := statemodel.NewSimulator[dijkstra.State](alg, scalarDaemon(kind, &rng), init)
	return sim.RunUntil(alg.Legitimate, maxSteps)
}
