package bitslice

import (
	"fmt"

	"ssrmin/internal/dijkstra"
	"ssrmin/internal/statemodel"
)

// SSToken is a 64-lane bit-sliced batch of Dijkstra's K-state token
// ring (internal/dijkstra): digit planes only, one rule per node.
type SSToken struct {
	n, k, planes int
	daemon       DaemonKind

	x    []uint64 // digit planes, x[i*planes : (i+1)*planes]
	kc   []uint64
	inc  []uint64
	save []uint64

	g, en []uint64

	lanes [Lanes]RNG
	draws [Lanes]uint64
	coins [Lanes]uint64
}

// NewSSToken builds an all-zero batch for ring size n and alphabet K
// under the given daemon protocol.
func NewSSToken(n, k int, d DaemonKind) *SSToken {
	if n < 2 || n > Lanes {
		panic(fmt.Sprintf("bitslice: ring size %d outside [2,%d]", n, Lanes))
	}
	if k <= n {
		panic(fmt.Sprintf("bitslice: need K > n, got K=%d n=%d", k, n))
	}
	planes := planesFor(k)
	b := &SSToken{
		n: n, k: k, planes: planes, daemon: d,
		x:    make([]uint64, n*planes),
		kc:   make([]uint64, planes),
		inc:  make([]uint64, planes),
		save: make([]uint64, planes),
		g:    make([]uint64, n),
		en:   make([]uint64, n),
	}
	broadcastK(b.kc, k)
	return b
}

// N returns the ring size.
func (b *SSToken) N() int { return b.n }

// K returns the digit alphabet size.
func (b *SSToken) K() int { return b.k }

func (b *SSToken) digit(i int) []uint64 { return b.x[i*b.planes : (i+1)*b.planes] }

// SeedLanes samples all 64 lanes, lane L from SeedStream(seed, L) with
// one SampleSSToken draw per node, mirroring the scalar oracle.
func (b *SSToken) SeedLanes(seed int64) {
	for lane := 0; lane < Lanes; lane++ {
		r := SeedStream(seed, lane)
		for i := 0; i < b.n; i++ {
			b.SetLaneState(lane, i, SampleSSToken(&r, b.k))
		}
		b.lanes[lane] = r
	}
}

// SetLaneState overwrites node i's state in one lane.
func (b *SSToken) SetLaneState(lane, i int, s dijkstra.State) {
	setDigitLane(b.digit(i), lane, s.X%b.k)
}

// LaneConfig extracts one lane's configuration in scalar form.
func (b *SSToken) LaneConfig(lane int) statemodel.Config[dijkstra.State] {
	c := make(statemodel.Config[dijkstra.State], b.n)
	for i := 0; i < b.n; i++ {
		c[i] = dijkstra.State{X: digitLane(b.digit(i), lane)}
	}
	return c
}

// Step advances every lane by one daemon step and returns the mask of
// deadlocked lanes (always zero for this algorithm: some guard is
// always up on a ring with K ≥ n).
func (b *SSToken) Step() uint64 { return b.step(allLanes) }

// LegitMask returns the mask of lanes currently in a legitimate
// (single-token strict-form) configuration.
func (b *SSToken) LegitMask() uint64 { return b.legitMask() }

// Run steps the batch until every lane reaches a legitimate
// configuration or exhausts maxSteps, returning per-lane transition
// counts and the converged mask — matching
// statemodel.Simulator.RunUntil(Legitimate, maxSteps) per lane.
func (b *SSToken) Run(maxSteps int) (steps [Lanes]int, converged uint64) {
	var done uint64
	for t := 0; ; t++ {
		legit := b.legitMask()
		newly := legit &^ done
		forEachLane(newly, func(lane int) { steps[lane] = t })
		done |= newly
		converged |= newly
		if done == allLanes {
			return steps, converged
		}
		if t >= maxSteps {
			forEachLane(^done, func(lane int) { steps[lane] = maxSteps })
			return steps, converged
		}
		stuck := b.step(^done) &^ done
		forEachLane(stuck, func(lane int) { steps[lane] = t })
		done |= stuck
		if done == allLanes {
			return steps, converged
		}
	}
}

// step performs one composite-atomicity daemon step on the lanes in
// active; see SSRmin.step for the two-pass shape.
//
//allocgate:hot
func (b *SSToken) step(active uint64) (stuck uint64) {
	n := b.n
	subset := b.daemon == Subset
	if subset {
		for lane := range b.draws {
			b.draws[lane] = b.lanes[lane].Next()
		}
		transpose64(&b.draws, &b.coins)
	}

	var anyEn, anySel uint64
	for i := 0; i < n; i++ {
		pred := i - 1
		if i == 0 {
			pred = n - 1
		}
		g := eqDigit(b.digit(i), b.digit(pred))
		if i != 0 {
			g = ^g
		}
		en := g & active
		b.g[i], b.en[i] = g, en
		anyEn |= en
		if subset {
			anySel |= en & b.coins[i]
		}
	}
	stuck = active &^ anyEn

	fallback := allLanes
	if subset {
		fallback = anyEn &^ anySel
	}

	copy(b.save, b.digit(n-1))
	for i := n - 1; i >= 0; i-- {
		sel := b.en[i]
		if subset {
			sel &= b.coins[i] | fallback
		}
		if sel == 0 {
			continue
		}
		var src []uint64
		if i == 0 {
			incModK(b.inc, b.save, b.kc)
			src = b.inc
		} else {
			src = b.digit(i - 1)
		}
		selDigit(b.digit(i), src, sel)
	}
	return stuck
}

// legitMask evaluates dijkstra.Algorithm.Legitimate lane-parallel:
// exactly one guard up, and the strict-form digit condition.
//
//allocgate:hot
func (b *SSToken) legitMask() uint64 {
	n := b.n
	var seen, two uint64
	for i := 0; i < n; i++ {
		pred := i - 1
		if i == 0 {
			pred = n - 1
		}
		g := eqDigit(b.digit(i), b.digit(pred))
		if i != 0 {
			g = ^g
		}
		b.g[i] = g
		two |= seen & g
		seen |= g
	}
	exactly := seen &^ two
	if exactly == 0 {
		return 0
	}
	incModK(b.inc, b.digit(n-1), b.kc)
	xok := b.g[0] | eqDigit(b.digit(0), b.inc)
	return exactly & xok
}
