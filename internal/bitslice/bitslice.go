// Package bitslice compiles the SSRmin and SSToken state-reading rules
// into bit-sliced form: each component of a node's state is stored as
// ⌈log₂K⌉ planes of uint64, and each of the 64 bit lanes carries one
// independent seeded Monte-Carlo run, so a single guard/assign pass over
// the ring advances 64 configurations at once.
//
// The batch path is bit-identical, per lane, to running the scalar
// internal/statemodel simulator 64 times: every lane owns a splitmix64
// stream (SeedStream) that the scalar oracle consumes draw-for-draw —
// one draw per node for initial sampling, one draw per step for the
// subset daemon's selection coins. The differential tests and the
// FuzzBitsliceStep target hold the two paths to exact equality; the
// scalar runners in scalar.go are the oracle.
//
// Lane-masked convergence detection retires lanes individually: a done
// mask freezes converged (or exhausted) lanes while the batch keeps
// stepping the rest, and per-lane step counts come back ready for
// internal/stats summaries.
package bitslice

import (
	"math/bits"

	"ssrmin/internal/core"
	"ssrmin/internal/dijkstra"
)

// Lanes is the batch width: one Monte-Carlo run per bit of a uint64.
const Lanes = 64

// allLanes is the mask with every lane live.
const allLanes = ^uint64(0)

// DaemonKind selects the scheduler protocol shared by the batch kernels
// and their scalar oracle twins.
type DaemonKind int

const (
	// Synchronous activates every enabled process each step and draws
	// nothing from the lane streams (the scalar twin is
	// daemon.Synchronous).
	Synchronous DaemonKind = iota
	// Subset is the distributed unfair daemon: one draw per lane per
	// step, bit i of the draw is process i's inclusion coin, and an
	// empty pick falls back to all enabled processes (the scalar twin is
	// SubsetDaemon in this package). Requires n ≤ 64.
	Subset
)

// String names the daemon kind for reports.
func (d DaemonKind) String() string {
	if d == Synchronous {
		return "synchronous"
	}
	return "subset"
}

// RNG is a splitmix64 stream. The zero value is a valid (seed-0) stream,
// but lanes are normally created through SeedStream so that batch and
// scalar runs agree on the stream per (seed, lane) pair.
type RNG struct {
	s uint64
}

// Next advances the stream and returns the next 64 uniform bits.
//
//allocgate:hot
func (r *RNG) Next() uint64 {
	r.s += 0x9E3779B97F4A7C15
	z := r.s
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// mix64 is the splitmix64 finalizer, used to decorrelate lane streams:
// without it, streams seeded at golden-ratio offsets of one another are
// the same sequence shifted by a few positions.
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// SeedStream returns lane `lane`'s stream for a batch seeded with seed.
// The scalar oracle calls this with the same pair to replay one lane.
func SeedStream(seed int64, lane int) RNG {
	return RNG{s: mix64(uint64(seed)^0x8CB92BA72F3D8DD7) ^ mix64(uint64(lane)*0xD1B54A32D192ED03+0x2545F4914F6CDD1D)}
}

// SampleSSRmin draws one SSRmin node state: X uniform in [0,K) from the
// low bits, RTS and TRA from the top two bits. Exactly one draw per node
// keeps batch seeding and scalar seeding in lockstep.
func SampleSSRmin(r *RNG, k int) core.State {
	d := r.Next()
	return core.State{X: int(d % uint64(k)), RTS: d>>62&1 == 1, TRA: d>>63 == 1}
}

// SampleSSToken draws one SSToken node state (X uniform in [0,K)).
func SampleSSToken(r *RNG, k int) dijkstra.State {
	d := r.Next()
	return dijkstra.State{X: int(d % uint64(k))}
}

// transpose64 transposes the 64×64 bit matrix in (the classic recursive
// block swap): out[i] bit L = in[L] bit i. It converts 64 per-lane
// daemon draws into 64 per-process lane masks.
//
//allocgate:hot
func transpose64(in, out *[Lanes]uint64) {
	*out = *in
	m := uint64(0x00000000FFFFFFFF)
	for j := 32; j != 0; j >>= 1 {
		for k := 0; k < 64; k = (k + j + 1) &^ j {
			t := ((out[k] >> uint(j)) ^ out[k+j]) & m
			out[k] ^= t << uint(j)
			out[k+j] ^= t
		}
		m ^= m << uint(j>>1)
	}
}

// planesFor returns the number of bit planes needed to store digits in
// [0, k).
func planesFor(k int) int {
	if k < 2 {
		return 1
	}
	return bits.Len(uint(k - 1))
}

// eqDigit returns the lane mask where the two digits (planes a and b,
// same length) are equal: the AND over planes of XNOR.
//
//allocgate:hot
func eqDigit(a, b []uint64) uint64 {
	m := allLanes
	for p := range a {
		m &= ^(a[p] ^ b[p])
	}
	return m
}

// incModK writes (src+1) mod K into dst, where kc holds the broadcast
// planes of K: a ripple-carry increment truncated to the plane width,
// then a reset to zero on the lanes whose result equals K. When K is
// exactly 2^planes the truncated K constant is zero and the wrap has
// already happened through the discarded carry, so the reset is a
// harmless no-op on the correct lanes either way; digits stay < K as
// long as they start < K.
//
//allocgate:hot
func incModK(dst, src, kc []uint64) {
	carry := allLanes
	eqK := allLanes
	for p := range src {
		dst[p] = src[p] ^ carry
		carry &= src[p]
		eqK &= ^(dst[p] ^ kc[p])
	}
	for p := range dst {
		dst[p] &^= eqK
	}
}

// selDigit overwrites dst's planes with src's on the lanes in m,
// leaving the other lanes untouched.
//
//allocgate:hot
func selDigit(dst, src []uint64, m uint64) {
	for p := range dst {
		dst[p] = (dst[p] &^ m) | (src[p] & m)
	}
}

// broadcastK fills planes with the broadcast constant K (every lane
// holds the same digit).
func broadcastK(planes []uint64, k int) {
	for p := range planes {
		if k>>uint(p)&1 == 1 {
			planes[p] = allLanes
		} else {
			planes[p] = 0
		}
	}
}

// setDigitLane overwrites lane `lane`'s digit across the planes with v;
// used by the SetLaneState helpers.
func setDigitLane(planes []uint64, lane, v int) {
	m := uint64(1) << uint(lane)
	for p := range planes {
		if v>>uint(p)&1 == 1 {
			planes[p] |= m
		} else {
			planes[p] &^= m
		}
	}
}

// digitLane reads lane `lane`'s digit out of the planes.
func digitLane(planes []uint64, lane int) int {
	v := 0
	for p := range planes {
		v |= int(planes[p]>>uint(lane)&1) << uint(p)
	}
	return v
}

// setFlagLane sets or clears lane `lane` in a one-word flag row.
func setFlagLane(row *uint64, lane int, v bool) {
	m := uint64(1) << uint(lane)
	if v {
		*row |= m
	} else {
		*row &^= m
	}
}

// forEachLane invokes f(lane) for every set bit in mask, cheapest-first.
func forEachLane(mask uint64, f func(lane int)) {
	for m := mask; m != 0; m &= m - 1 {
		f(bits.TrailingZeros64(m))
	}
}
