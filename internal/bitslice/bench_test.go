package bitslice

import (
	"fmt"
	"testing"

	"ssrmin/internal/core"
)

// BenchmarkBitsliceBatch measures the fig12-style SSRmin convergence
// sweep — 64 seeded runs to legitimacy under the subset daemon — through
// the scalar statemodel oracle and through the bit-sliced batch kernel.
// One op is one 64-seed batch on both paths, so ns/op is directly
// comparable and the seeds/s ratio between the batch and scalar rows is
// the recorded speedup (`make bench-batch` → BENCH_batch.json).
func BenchmarkBitsliceBatch(b *testing.B) {
	for _, tc := range []struct{ n, k int }{{8, 12}, {16, 20}, {32, 40}} {
		bound := core.New(tc.n, tc.k).ConvergenceStepBound()

		b.Run(fmt.Sprintf("scalar/n=%d,K=%d", tc.n, tc.k), func(b *testing.B) {
			var steps int
			for i := 0; i < b.N; i++ {
				for lane := 0; lane < Lanes; lane++ {
					s, ok := ScalarSSRminRun(tc.n, tc.k, Subset, int64(i), lane, bound)
					if !ok {
						b.Fatalf("seed %d lane %d did not converge within %d steps", i, lane, bound)
					}
					steps += s
				}
			}
			b.ReportMetric(float64(b.N*Lanes)/b.Elapsed().Seconds(), "seeds/s")
			b.ReportMetric(float64(steps)/b.Elapsed().Seconds(), "steps/s")
		})

		b.Run(fmt.Sprintf("batch/n=%d,K=%d", tc.n, tc.k), func(b *testing.B) {
			batch := NewSSRmin(tc.n, tc.k, Subset)
			var steps int
			for i := 0; i < b.N; i++ {
				batch.SeedLanes(int64(i))
				laneSteps, converged := batch.Run(bound)
				if converged != allLanes {
					b.Fatalf("seed %d: lanes %#x did not converge within %d steps", i, ^converged, bound)
				}
				for _, s := range laneSteps {
					steps += s
				}
			}
			b.ReportMetric(float64(b.N*Lanes)/b.Elapsed().Seconds(), "seeds/s")
			b.ReportMetric(float64(steps)/b.Elapsed().Seconds(), "steps/s")
		})
	}
}
