package bitslice

import (
	"fmt"

	"ssrmin/internal/core"
	"ssrmin/internal/statemodel"
)

// SSRmin is a 64-lane bit-sliced batch of the paper's SSRmin algorithm.
// X digits live plane-transposed (planes words per node, bit L of plane
// p = bit p of lane L's digit); the RTS and TRA flags are one word per
// node. All buffers are allocated once in NewSSRmin; stepping is pure
// word arithmetic.
type SSRmin struct {
	n, k, planes int
	daemon       DaemonKind

	x   []uint64 // digit planes, x[i*planes : (i+1)*planes]
	rts []uint64 // one word per node
	tra []uint64

	kc   []uint64 // broadcast planes of the constant K
	inc  []uint64 // scratch digit: incremented predecessor
	save []uint64 // scratch digit: node n-1's pre-step value

	// Per-node rule masks of the step in flight: guard, enabled,
	// rules R1/R3 (flag writers), and R2|R4 (the X writers).
	g, en, r1, r3, cmd []uint64

	lanes [Lanes]RNG
	draws [Lanes]uint64
	coins [Lanes]uint64
}

// NewSSRmin builds an all-zero batch for ring size n and alphabet K
// under the given daemon protocol. Seed lanes with SeedLanes (or poke
// states with SetLaneState) before running.
func NewSSRmin(n, k int, d DaemonKind) *SSRmin {
	if n < 3 || n > Lanes {
		panic(fmt.Sprintf("bitslice: ring size %d outside [3,%d]", n, Lanes))
	}
	if k <= n {
		panic(fmt.Sprintf("bitslice: need K > n, got K=%d n=%d", k, n))
	}
	planes := planesFor(k)
	b := &SSRmin{
		n: n, k: k, planes: planes, daemon: d,
		x:    make([]uint64, n*planes),
		rts:  make([]uint64, n),
		tra:  make([]uint64, n),
		kc:   make([]uint64, planes),
		inc:  make([]uint64, planes),
		save: make([]uint64, planes),
		g:    make([]uint64, n),
		en:   make([]uint64, n),
		r1:   make([]uint64, n),
		r3:   make([]uint64, n),
		cmd:  make([]uint64, n),
	}
	broadcastK(b.kc, k)
	return b
}

// N returns the ring size.
func (b *SSRmin) N() int { return b.n }

// K returns the digit alphabet size.
func (b *SSRmin) K() int { return b.k }

// digit returns node i's plane slice.
func (b *SSRmin) digit(i int) []uint64 { return b.x[i*b.planes : (i+1)*b.planes] }

// SeedLanes samples all 64 lanes' initial configurations, lane L from
// SeedStream(seed, L) with one SampleSSRmin draw per node — exactly the
// draws the scalar oracle makes — and leaves each lane's stream
// positioned for the daemon coins of step one.
func (b *SSRmin) SeedLanes(seed int64) {
	for lane := 0; lane < Lanes; lane++ {
		r := SeedStream(seed, lane)
		for i := 0; i < b.n; i++ {
			b.SetLaneState(lane, i, SampleSSRmin(&r, b.k))
		}
		b.lanes[lane] = r
	}
}

// SetLaneState overwrites node i's state in one lane.
func (b *SSRmin) SetLaneState(lane, i int, s core.State) {
	setDigitLane(b.digit(i), lane, s.X%b.k)
	setFlagLane(&b.rts[i], lane, s.RTS)
	setFlagLane(&b.tra[i], lane, s.TRA)
}

// LaneConfig extracts one lane's configuration in scalar form.
func (b *SSRmin) LaneConfig(lane int) statemodel.Config[core.State] {
	c := make(statemodel.Config[core.State], b.n)
	for i := 0; i < b.n; i++ {
		c[i] = core.State{
			X:   digitLane(b.digit(i), lane),
			RTS: b.rts[i]>>uint(lane)&1 == 1,
			TRA: b.tra[i]>>uint(lane)&1 == 1,
		}
	}
	return c
}

// Step advances every lane by one daemon step and returns the mask of
// lanes that had no enabled process (deadlocked lanes, untouched).
func (b *SSRmin) Step() uint64 { return b.step(allLanes) }

// LegitMask returns the mask of lanes currently in a legitimate
// configuration (the exact predicate of core.Algorithm.Legitimate).
func (b *SSRmin) LegitMask() uint64 { return b.legitMask() }

// Run seeds nothing and steps the batch until every lane either reaches
// a legitimate configuration, deadlocks, or exhausts maxSteps. It
// returns each lane's transition count at retirement — matching
// statemodel.Simulator.RunUntil(Legitimate, maxSteps) draw-for-draw —
// and the mask of lanes that converged.
func (b *SSRmin) Run(maxSteps int) (steps [Lanes]int, converged uint64) {
	var done uint64
	for t := 0; ; t++ {
		legit := b.legitMask()
		newly := legit &^ done
		forEachLane(newly, func(lane int) { steps[lane] = t })
		done |= newly
		converged |= newly
		if done == allLanes {
			return steps, converged
		}
		if t >= maxSteps {
			forEachLane(^done, func(lane int) { steps[lane] = maxSteps })
			return steps, converged
		}
		stuck := b.step(^done) &^ done
		forEachLane(stuck, func(lane int) { steps[lane] = t })
		done |= stuck
		if done == allLanes {
			return steps, converged
		}
	}
}

// step performs one composite-atomicity daemon step on the lanes in
// active. Pass 1 reads the old configuration into per-node rule masks
// and accumulates the subset daemon's selection try; pass 2 commits,
// walking the ring descending (with node n-1's old digit stashed) so
// every command still reads pre-step neighbor digits in place. Returns
// the active lanes with no enabled process.
//
//allocgate:hot
func (b *SSRmin) step(active uint64) (stuck uint64) {
	n := b.n
	subset := b.daemon == Subset
	if subset {
		for lane := range b.draws {
			b.draws[lane] = b.lanes[lane].Next()
		}
		transpose64(&b.draws, &b.coins)
	}

	var anyEn, anySel uint64
	for i := 0; i < n; i++ {
		pred, succ := i-1, i+1
		if i == 0 {
			pred = n - 1
		}
		if succ == n {
			succ = 0
		}
		g := eqDigit(b.digit(i), b.digit(pred))
		if i != 0 {
			g = ^g
		}
		sR, sT := b.rts[i], b.tra[i]
		pR, pT := b.rts[pred], b.tra[pred]
		nR, nT := b.rts[succ], b.tra[succ]

		self10 := sR &^ sT
		self01 := sT &^ sR
		self00 := ^(sR | sT)
		succ01 := nT &^ nR
		pred10 := pR &^ pT

		r1 := g &^ self10
		r2 := g & self10 & succ01
		r4 := g & self10 &^ succ01 &^ (^(pR | pT) & ^(nR | nT))
		r3 := ^g & pred10 &^ self01
		r5 := ^g &^ r3 &^ self00 &^ (pred10 & self01)

		en := (r1 | r2 | r3 | r4 | r5) & active
		b.g[i], b.en[i] = g, en
		b.r1[i], b.r3[i] = r1, r3
		b.cmd[i] = r2 | r4
		anyEn |= en
		if subset {
			anySel |= en & b.coins[i]
		}
	}
	stuck = active &^ anyEn

	// Lanes whose coin pick selected nothing fall back to every enabled
	// process; the synchronous daemon always takes everything enabled.
	fallback := allLanes
	if subset {
		fallback = anyEn &^ anySel
	}

	copy(b.save, b.digit(n-1))
	for i := n - 1; i >= 0; i-- {
		sel := b.en[i]
		if subset {
			sel &= b.coins[i] | fallback
		}
		b.rts[i] = (b.rts[i] &^ sel) | (sel & b.r1[i])
		b.tra[i] = (b.tra[i] &^ sel) | (sel & b.r3[i])
		if m := sel & b.cmd[i]; m != 0 {
			var src []uint64
			if i == 0 {
				incModK(b.inc, b.save, b.kc)
				src = b.inc
			} else {
				src = b.digit(i - 1)
			}
			selDigit(b.digit(i), src, m)
		}
	}
	return stuck
}

// legitMask evaluates core.Algorithm.Legitimate lane-parallel: exactly
// one Dijkstra guard, the strict-form digit condition, and no handshake
// violation anywhere on the ring.
//
//allocgate:hot
func (b *SSRmin) legitMask() uint64 {
	n := b.n
	var seen, two uint64
	for i := 0; i < n; i++ {
		pred := i - 1
		if i == 0 {
			pred = n - 1
		}
		g := eqDigit(b.digit(i), b.digit(pred))
		if i != 0 {
			g = ^g
		}
		b.g[i] = g
		two |= seen & g
		seen |= g
	}
	exactly := seen &^ two
	if exactly == 0 {
		return 0
	}

	// Handshake discipline: every node outside {holder, holder's
	// successor} is ⟨0.0⟩; the holder is ⟨0.1⟩ or ⟨1.0⟩; a holder at
	// ⟨0.1⟩ demands successor ⟨0.0⟩, a holder at ⟨1.0⟩ allows successor
	// ⟨0.0⟩ or ⟨0.1⟩.
	var viol uint64
	for i := 0; i < n; i++ {
		pred, succ := i-1, i+1
		if i == 0 {
			pred = n - 1
		}
		if succ == n {
			succ = 0
		}
		g, hp := b.g[i], b.g[pred]
		sR, sT := b.rts[i], b.tra[i]
		nR, nT := b.rts[succ], b.tra[succ]
		p01 := sT &^ sR
		p10 := sR &^ sT
		viol |= ^g &^ hp & (sR | sT)
		viol |= g &^ (p01 | p10)
		viol |= g & p01 & (nR | nT)
		viol |= g & p10 & nR
	}

	// Strict form: with the unique guard at holder h > 0 the ring is
	// (A,…,A,B,…,B) with x₀ = A, xₙ₋₁ = B, and legitimacy needs
	// A = B+1 mod K; a guard at node 0 means a constant ring, which is
	// always in strict form.
	incModK(b.inc, b.digit(n-1), b.kc)
	xok := b.g[0] | eqDigit(b.digit(0), b.inc)
	return exactly & xok &^ viol
}
