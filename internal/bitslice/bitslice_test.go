package bitslice

import (
	"testing"

	"ssrmin/internal/core"
	"ssrmin/internal/dijkstra"
	"ssrmin/internal/statemodel"
)

// TestTranspose64 pins the bit-matrix orientation: out[i] bit L must be
// in[L] bit i, checked against a naive per-bit transpose.
func TestTranspose64(t *testing.T) {
	var in, out, want [Lanes]uint64
	r := SeedStream(7, 0)
	for i := range in {
		in[i] = r.Next()
	}
	for i := 0; i < Lanes; i++ {
		for l := 0; l < Lanes; l++ {
			want[i] |= (in[l] >> uint(i) & 1) << uint(l)
		}
	}
	transpose64(&in, &out)
	if out != want {
		t.Fatalf("transpose64 orientation wrong")
	}
}

// TestIncModK sweeps every digit for several alphabets, including the
// power-of-two case where the truncated K constant is zero.
func TestIncModK(t *testing.T) {
	for _, k := range []int{5, 8, 9, 16, 17, 33} {
		planes := planesFor(k)
		src := make([]uint64, planes)
		dst := make([]uint64, planes)
		kc := make([]uint64, planes)
		broadcastK(kc, k)
		for v := 0; v < k; v++ {
			for lane := 0; lane < Lanes; lane++ {
				setDigitLane(src, lane, (v+lane)%k)
			}
			incModK(dst, src, kc)
			for lane := 0; lane < Lanes; lane++ {
				want := ((v+lane)%k + 1) % k
				if got := digitLane(dst, lane); got != want {
					t.Fatalf("K=%d lane=%d: inc(%d) = %d, want %d", k, lane, (v+lane)%k, got, want)
				}
			}
		}
	}
}

// TestRNGMatchesScalarStream checks SeedStream determinism and lane
// decorrelation (no two of the first lanes share their first draws).
func TestRNGMatchesScalarStream(t *testing.T) {
	seen := map[uint64]int{}
	for lane := 0; lane < Lanes; lane++ {
		a, b := SeedStream(42, lane), SeedStream(42, lane)
		if a.Next() != b.Next() || a.Next() != b.Next() {
			t.Fatalf("lane %d: SeedStream not deterministic", lane)
		}
		c := SeedStream(42, lane)
		first := c.Next()
		if prev, dup := seen[first]; dup {
			t.Fatalf("lanes %d and %d share their first draw", prev, lane)
		}
		seen[first] = lane
	}
}

// checkLane compares one extracted lane against a scalar configuration.
func checkLaneSSRmin(t *testing.T, b *SSRmin, lane int, want statemodel.Config[core.State], at string) {
	t.Helper()
	got := b.LaneConfig(lane)
	if !got.Equal(want) {
		t.Fatalf("%s: lane %d diverged\n batch:  %v\n scalar: %v", at, lane, got, want)
	}
}

// TestSSRminMatchesScalar steps seeded batches against 64 scalar
// simulators configuration-for-configuration, and checks the legitimacy
// mask against core.Algorithm.Legitimate at every step.
func TestSSRminMatchesScalar(t *testing.T) {
	for _, tc := range []struct {
		n, k  int
		kind  DaemonKind
		seed  int64
		steps int
	}{
		{5, 7, Subset, 1, 120},
		{5, 8, Synchronous, 2, 120},
		{8, 16, Subset, 3, 80},
		{13, 17, Subset, 4, 60},
		{64, 65, Subset, 5, 25},
	} {
		alg := core.New(tc.n, tc.k)
		b := NewSSRmin(tc.n, tc.k, tc.kind)
		b.SeedLanes(tc.seed)

		sims := make([]*statemodel.Simulator[core.State], Lanes)
		for lane := 0; lane < Lanes; lane++ {
			rng := SeedStream(tc.seed, lane)
			init := make(statemodel.Config[core.State], tc.n)
			for i := range init {
				init[i] = SampleSSRmin(&rng, tc.k)
			}
			r := rng // pin the stream copy for this lane's daemon
			sims[lane] = statemodel.NewSimulator[core.State](alg, scalarDaemon(tc.kind, &r), init)
			checkLaneSSRmin(t, b, lane, init, "seeding")
		}
		for s := 0; s < tc.steps; s++ {
			legit := b.LegitMask()
			for lane := 0; lane < Lanes; lane++ {
				if got, want := legit>>uint(lane)&1 == 1, alg.Legitimate(sims[lane].Config()); got != want {
					t.Fatalf("n=%d step %d lane %d: legit mask %v, scalar %v", tc.n, s, lane, got, want)
				}
			}
			if stuck := b.Step(); stuck != 0 {
				t.Fatalf("n=%d step %d: unexpected deadlock mask %#x", tc.n, s, stuck)
			}
			for lane := 0; lane < Lanes; lane++ {
				if _, ok := sims[lane].Step(); !ok {
					t.Fatalf("n=%d step %d lane %d: scalar deadlock", tc.n, s, lane)
				}
				checkLaneSSRmin(t, b, lane, sims[lane].Config(), "stepping")
			}
		}
	}
}

// TestSSTokenMatchesScalar is the SSToken twin of the test above.
func TestSSTokenMatchesScalar(t *testing.T) {
	for _, tc := range []struct {
		n, k  int
		kind  DaemonKind
		seed  int64
		steps int
	}{
		{5, 7, Subset, 11, 120},
		{5, 8, Synchronous, 12, 120},
		{9, 16, Subset, 13, 80},
		{64, 66, Subset, 14, 25},
	} {
		alg := dijkstra.New(tc.n, tc.k)
		b := NewSSToken(tc.n, tc.k, tc.kind)
		b.SeedLanes(tc.seed)

		sims := make([]*statemodel.Simulator[dijkstra.State], Lanes)
		for lane := 0; lane < Lanes; lane++ {
			rng := SeedStream(tc.seed, lane)
			init := make(statemodel.Config[dijkstra.State], tc.n)
			for i := range init {
				init[i] = SampleSSToken(&rng, tc.k)
			}
			r := rng
			sims[lane] = statemodel.NewSimulator[dijkstra.State](alg, scalarDaemon(tc.kind, &r), init)
			if !b.LaneConfig(lane).Equal(init) {
				t.Fatalf("n=%d lane %d: seeding diverged", tc.n, lane)
			}
		}
		for s := 0; s < tc.steps; s++ {
			legit := b.LegitMask()
			for lane := 0; lane < Lanes; lane++ {
				if got, want := legit>>uint(lane)&1 == 1, alg.Legitimate(sims[lane].Config()); got != want {
					t.Fatalf("n=%d step %d lane %d: legit mask %v, scalar %v", tc.n, s, lane, got, want)
				}
			}
			if stuck := b.Step(); stuck != 0 {
				t.Fatalf("n=%d step %d: unexpected deadlock mask %#x", tc.n, s, stuck)
			}
			for lane := 0; lane < Lanes; lane++ {
				if _, ok := sims[lane].Step(); !ok {
					t.Fatalf("n=%d step %d lane %d: scalar deadlock", tc.n, s, lane)
				}
				if got, want := b.LaneConfig(lane), sims[lane].Config(); !got.Equal(want) {
					t.Fatalf("n=%d step %d lane %d diverged\n batch:  %v\n scalar: %v", tc.n, s, lane, got, want)
				}
			}
		}
	}
}

// TestRunMatchesScalarRunUntil pins the whole convergence loop — step
// counts and converged flags — against RunUntil per lane, for both
// algorithms and both daemons.
func TestRunMatchesScalarRunUntil(t *testing.T) {
	for _, kind := range []DaemonKind{Synchronous, Subset} {
		for _, seed := range []int64{1, 99} {
			n, k := 8, 12
			bound := core.New(n, k).ConvergenceStepBound()
			b := NewSSRmin(n, k, kind)
			b.SeedLanes(seed)
			steps, converged := b.Run(bound)
			for lane := 0; lane < Lanes; lane++ {
				ws, wok := ScalarSSRminRun(n, k, kind, seed, lane, bound)
				if steps[lane] != ws || (converged>>uint(lane)&1 == 1) != wok {
					t.Fatalf("ssrmin %v seed %d lane %d: batch (%d,%v) scalar (%d,%v)",
						kind, seed, lane, steps[lane], converged>>uint(lane)&1 == 1, ws, wok)
				}
			}

			d := NewSSToken(n, k, kind)
			d.SeedLanes(seed)
			dBound := 3 * dijkstra.New(n, k).ConvergenceBound()
			dSteps, dConv := d.Run(dBound)
			for lane := 0; lane < Lanes; lane++ {
				ws, wok := ScalarSSTokenRun(n, k, kind, seed, lane, dBound)
				if dSteps[lane] != ws || (dConv>>uint(lane)&1 == 1) != wok {
					t.Fatalf("sstoken %v seed %d lane %d: batch (%d,%v) scalar (%d,%v)",
						kind, seed, lane, dSteps[lane], dConv>>uint(lane)&1 == 1, ws, wok)
				}
			}
		}
	}
}

// TestRunRetiresLanesAtBudget forces a tiny step budget and checks the
// non-converged lanes come back with steps = maxSteps and a zero
// converged bit.
func TestRunRetiresLanesAtBudget(t *testing.T) {
	b := NewSSRmin(8, 12, Subset)
	b.SeedLanes(3)
	steps, converged := b.Run(2)
	for lane := 0; lane < Lanes; lane++ {
		ok := converged>>uint(lane)&1 == 1
		if !ok && steps[lane] != 2 {
			t.Fatalf("lane %d: not converged but steps=%d, want 2", lane, steps[lane])
		}
		if ok && steps[lane] > 2 {
			t.Fatalf("lane %d: converged with steps=%d past budget", lane, steps[lane])
		}
	}
}
