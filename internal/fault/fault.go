// Package fault injects the transient faults that self-stabilization
// tolerates: corruption of local states (soft errors), corruption of
// neighbor caches (message corruption absorbed into Z_i), and message-loss
// bursts on the network. All injection is deterministic from a seed so
// that every experiment is reproducible.
package fault

import (
	"math/rand"

	"ssrmin/internal/cst"
	"ssrmin/internal/msgnet"
	"ssrmin/internal/statemodel"
)

// Injector is a seeded source of faults.
type Injector struct {
	rng *rand.Rand
}

// NewInjector returns an injector with its own RNG stream.
func NewInjector(seed int64) *Injector {
	return &Injector{rng: rand.New(rand.NewSource(seed))}
}

// Rand exposes the injector's RNG for custom draw functions.
func (in *Injector) Rand() *rand.Rand { return in.rng }

// CorruptConfig overwrites count distinct random entries of cfg with
// states drawn by draw. It mutates cfg in place and returns the indices
// hit. count is clamped to len(cfg).
func CorruptConfig[S comparable](in *Injector, cfg statemodel.Config[S], count int, draw func(*rand.Rand) S) []int {
	if count > len(cfg) {
		count = len(cfg)
	}
	perm := in.rng.Perm(len(cfg))[:count]
	for _, i := range perm {
		cfg[i] = draw(in.rng)
	}
	return perm
}

// CorruptStates overwrites the local states of count random ring members
// of a CST ring. Only current members are targeted: corrupting a node
// that churn has detached would be invisible (and, through a later join,
// indistinguishable from the joiner's arbitrary start state anyway). On
// a churn-free ring the draws are identical to a permutation over all
// node ids.
func CorruptStates[S comparable](in *Injector, r *cst.Ring[S], count int, draw func(*rand.Rand) S) []int {
	members := r.Members()
	if count > len(members) {
		count = len(members)
	}
	perm := in.rng.Perm(len(members))[:count]
	hit := make([]int, 0, count)
	for _, mi := range perm {
		i := members[mi]
		r.Nodes[i].SetState(draw(in.rng))
		hit = append(hit, i)
	}
	return hit
}

// CorruptCaches overwrites count random cache entries (a random neighbor
// cache of a random member each) of a CST ring. The corrupted slot is one
// of the node's *current* neighbors, so the injection stays valid after
// churn has rewired the ring.
func CorruptCaches[S comparable](in *Injector, r *cst.Ring[S], count int, draw func(*rand.Rand) S) {
	members := r.Members()
	for j := 0; j < count; j++ {
		i := members[in.rng.Intn(len(members))]
		pred, succ := r.Nodes[i].Neighbors()
		k := pred
		if in.rng.Intn(2) != 0 {
			k = succ
		}
		r.Nodes[i].SetCache(k, draw(in.rng))
	}
}

// LossBurst is an msgnet handler (attach it as an extra, link-less node)
// that alternates the network between lossless phases and bursts during
// which the configured per-link LossProb applies. It models an interferer
// that periodically jams the radio. P is the network's frame type; the
// controller never touches payloads.
type LossBurst[P any] struct {
	// Net is the network whose LossEnabled gate is toggled.
	Net *msgnet.Network[P]
	// Quiet is the duration of each lossless phase.
	Quiet msgnet.Time
	// Burst is the duration of each lossy phase.
	Burst msgnet.Time
}

const (
	timerStartBurst = 1
	timerEndBurst   = 2
)

// Start implements msgnet.Handler.
func (lb *LossBurst[P]) Start(ctx *msgnet.Context[P]) {
	lb.Net.LossEnabled = false
	ctx.After(lb.Quiet, timerStartBurst)
}

// Receive implements msgnet.Handler; a LossBurst node has no links.
func (lb *LossBurst[P]) Receive(ctx *msgnet.Context[P], from int, payload P) {}

// Timer implements msgnet.Handler.
func (lb *LossBurst[P]) Timer(ctx *msgnet.Context[P], kind int) {
	switch kind {
	case timerStartBurst:
		lb.Net.LossEnabled = true
		ctx.After(lb.Burst, timerEndBurst)
	case timerEndBurst:
		lb.Net.LossEnabled = false
		ctx.After(lb.Quiet, timerStartBurst)
	}
}
