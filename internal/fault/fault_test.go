package fault

import (
	"math/rand"
	"testing"

	"ssrmin/internal/core"
	"ssrmin/internal/cst"
	"ssrmin/internal/msgnet"
	"ssrmin/internal/statemodel"
	"ssrmin/internal/verify"
)

func drawSSRmin(k int) func(*rand.Rand) core.State {
	return func(rng *rand.Rand) core.State {
		return core.State{X: rng.Intn(k), RTS: rng.Intn(2) == 0, TRA: rng.Intn(2) == 0}
	}
}

func TestCorruptConfig(t *testing.T) {
	in := NewInjector(1)
	a := core.New(6, 7)
	cfg := a.InitialLegitimate()
	orig := cfg.Clone()
	hit := CorruptConfig[core.State](in, cfg, 3, drawSSRmin(7))
	if len(hit) != 3 {
		t.Fatalf("hit %d entries, want 3", len(hit))
	}
	seen := map[int]bool{}
	for _, i := range hit {
		if seen[i] {
			t.Fatalf("index %d corrupted twice", i)
		}
		seen[i] = true
	}
	// Untouched entries must be identical.
	for i := range cfg {
		if !seen[i] && cfg[i] != orig[i] {
			t.Errorf("index %d changed without being hit", i)
		}
	}
	// Clamping.
	if got := CorruptConfig[core.State](in, cfg, 100, drawSSRmin(7)); len(got) != len(cfg) {
		t.Errorf("clamp failed: %d", len(got))
	}
}

func TestCorruptStatesAndCaches(t *testing.T) {
	a := core.New(5, 6)
	r := cst.NewRing[core.State](a, a.InitialLegitimate(), cst.Options[core.State]{
		Link: msgnet.LinkParams{Delay: 0.01}, Refresh: 0.05, Seed: 1, CoherentCaches: true,
	})
	in := NewInjector(2)
	CorruptStates[core.State](in, r, 2, drawSSRmin(6))
	CorruptCaches[core.State](in, r, 4, drawSSRmin(6))
	// The ring is now (very likely) incoherent; more importantly, it must
	// re-stabilize: run and check the trailing window.
	var tl verify.Timeline
	r.Net.Observer = func(now msgnet.Time) {
		if now >= 20 {
			tl.Record(float64(now), r.Census(core.HasToken))
		}
	}
	r.Net.Run(40)
	tl.Close(float64(r.Net.Now()))
	if min := tl.MinCount(); min < 1 {
		t.Fatalf("no re-stabilization after corruption: min=%d", min)
	}
	if max := tl.MaxCount(); max > 2 {
		t.Fatalf("token bound broken after settling: max=%d", max)
	}
}

func TestLossBurstTogglesGate(t *testing.T) {
	a := core.New(5, 6)
	r := cst.NewRing[core.State](a, a.InitialLegitimate(), cst.Options[core.State]{
		Link: msgnet.LinkParams{Delay: 0.01, LossProb: 1}, Refresh: 0.05, Seed: 3, CoherentCaches: true,
	})
	lb := &LossBurst[core.State]{Net: r.Net, Quiet: 1, Burst: 0.5}
	r.Net.AddNode(lb)

	// Sample the gate over time via the observer.
	lossyTime, quietTime := 0.0, 0.0
	last := 0.0
	r.Net.Observer = func(now msgnet.Time) {
		dt := float64(now) - last
		last = float64(now)
		if r.Net.LossEnabled {
			lossyTime += dt
		} else {
			quietTime += dt
		}
	}
	r.Net.Run(15)
	if lossyTime == 0 || quietTime == 0 {
		t.Fatalf("gate never toggled: lossy=%v quiet=%v", lossyTime, quietTime)
	}
	// Despite 100%-loss bursts, the system must still make progress during
	// quiet phases (messages only flow then).
	if r.RuleExecutions() == 0 {
		t.Fatal("no progress under loss bursts")
	}
	if st := r.Net.Stats(); st.Lost == 0 {
		t.Fatalf("no message was ever lost: %+v", st)
	}
}

// TestSelfStabilizationAfterRepeatedFaults hammers the ring with periodic
// state corruption and verifies it always returns to the 1–2 token regime
// between hits.
func TestSelfStabilizationAfterRepeatedFaults(t *testing.T) {
	a := core.New(5, 6)
	r := cst.NewRing[core.State](a, a.InitialLegitimate(), cst.Options[core.State]{
		Link: msgnet.LinkParams{Delay: 0.01, Jitter: 0.002}, Refresh: 0.05, Seed: 4, CoherentCaches: true,
	})
	in := NewInjector(5)
	for round := 0; round < 5; round++ {
		CorruptStates[core.State](in, r, 2, drawSSRmin(6))
		CorruptCaches[core.State](in, r, 2, drawSSRmin(6))
		// Let it settle, then verify a clean observation window.
		settleUntil := r.Net.Now() + 20
		r.Net.Observer = nil
		r.Net.Run(settleUntil)
		var tl verify.Timeline
		r.Net.Observer = func(now msgnet.Time) {
			tl.Record(float64(now), r.Census(core.HasToken))
		}
		end := r.Net.Now() + 5
		r.Net.Run(end)
		tl.Close(float64(r.Net.Now()))
		if min := tl.MinCount(); min < 1 {
			t.Fatalf("round %d: min=%d after settling", round, min)
		}
		if max := tl.MaxCount(); max > 2 {
			t.Fatalf("round %d: max=%d after settling", round, max)
		}
	}
}

func TestInjectorDeterminism(t *testing.T) {
	a := core.New(6, 7)
	run := func() statemodel.Config[core.State] {
		in := NewInjector(42)
		cfg := a.InitialLegitimate()
		CorruptConfig[core.State](in, cfg, 4, drawSSRmin(7))
		return cfg
	}
	if !run().Equal(run()) {
		t.Error("same-seed injectors diverged")
	}
}
