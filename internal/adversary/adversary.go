// Package adversary searches for worst-case behaviours by local search:
// given an algorithm, a daemon and a measure (e.g. steps to legitimacy),
// it hill-climbs over initial configurations with random restarts to find
// starts that are much worse than random sampling finds. The Theorem 2
// experiment uses it to tighten the empirical convergence-time curve
// toward the true worst case, which the exhaustive checker provides for
// n ≤ 4 as ground truth.
package adversary

import (
	"math/rand"

	"ssrmin/internal/statemodel"
)

// Measure evaluates how "bad" an initial configuration is; larger is
// worse. It must be deterministic for a given configuration (use a fixed
// daemon seed inside).
type Measure[S comparable] func(init statemodel.Config[S]) int

// Options tunes the search.
type Options struct {
	// Restarts is the number of random restarts.
	Restarts int
	// Budget is the number of neighbor evaluations per restart.
	Budget int
	// Seed drives the search's randomness.
	Seed int64
}

// Result is the best (worst-case) configuration found.
type Result[S comparable] struct {
	// Config is the worst initial configuration found.
	Config statemodel.Config[S]
	// Score is its measure.
	Score int
	// Evaluations counts measure invocations.
	Evaluations int
}

// ClimbResult is the best candidate a generic hill climb found.
type ClimbResult[T any] struct {
	// Best is the highest-scoring candidate.
	Best T
	// Score is its measure.
	Score int
	// Evaluations counts measure invocations.
	Evaluations int
}

// Climb hill-climbs with random restarts over an arbitrary candidate
// space: draw seeds each restart, neighbor proposes a mutant of the
// current candidate, and a mutant is kept when measure (larger is worse,
// i.e. better for the adversary) does not decrease. neighbor must return
// a NEW candidate and leave its argument untouched — the climb aliases
// candidates instead of cloning, since only neighbor knows how to copy T.
// The result is a pure function of the seed, so any find is replayable.
func Climb[T any](
	draw func(rng *rand.Rand) T,
	neighbor func(rng *rand.Rand, cur T) T,
	measure func(T) int,
	opts Options,
) ClimbResult[T] {
	if opts.Restarts <= 0 {
		opts.Restarts = 5
	}
	if opts.Budget <= 0 {
		opts.Budget = 200
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	var best ClimbResult[T]
	started := false
	for restart := 0; restart < opts.Restarts; restart++ {
		cur := draw(rng)
		curScore := measure(cur)
		best.Evaluations++
		if !started || curScore > best.Score {
			started = true
			best.Best = cur
			best.Score = curScore
		}
		for i := 0; i < opts.Budget; i++ {
			cand := neighbor(rng, cur)
			score := measure(cand)
			best.Evaluations++
			if score >= curScore {
				cur, curScore = cand, score
				if score > best.Score {
					best.Best = cand
					best.Score = score
				}
			}
		}
	}
	return best
}

// Search hill-climbs over configurations: starting from a random
// configuration (drawn by draw), it repeatedly mutates one process's state
// (via mutate) and keeps the mutant when the measure does not decrease.
// It is Climb specialized to Config[S] with the single-process neighbor
// move; the RNG draw order (position, then state) is part of the
// contract — same-seed searches reproduce bit for bit.
func Search[S comparable](
	n int,
	draw func(rng *rand.Rand) statemodel.Config[S],
	mutate func(rng *rand.Rand, s S) S,
	measure Measure[S],
	opts Options,
) Result[S] {
	r := Climb[statemodel.Config[S]](
		draw,
		func(rng *rand.Rand, cur statemodel.Config[S]) statemodel.Config[S] {
			cand := cur.Clone()
			p := rng.Intn(n)
			cand[p] = mutate(rng, cand[p])
			return cand
		},
		func(c statemodel.Config[S]) int { return measure(c) },
		opts,
	)
	return Result[S]{Config: r.Best, Score: r.Score, Evaluations: r.Evaluations}
}
