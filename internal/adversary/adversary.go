// Package adversary searches for worst-case behaviours by local search:
// given an algorithm, a daemon and a measure (e.g. steps to legitimacy),
// it hill-climbs over initial configurations with random restarts to find
// starts that are much worse than random sampling finds. The Theorem 2
// experiment uses it to tighten the empirical convergence-time curve
// toward the true worst case, which the exhaustive checker provides for
// n ≤ 4 as ground truth.
package adversary

import (
	"math/rand"

	"ssrmin/internal/statemodel"
)

// Measure evaluates how "bad" an initial configuration is; larger is
// worse. It must be deterministic for a given configuration (use a fixed
// daemon seed inside).
type Measure[S comparable] func(init statemodel.Config[S]) int

// Options tunes the search.
type Options struct {
	// Restarts is the number of random restarts.
	Restarts int
	// Budget is the number of neighbor evaluations per restart.
	Budget int
	// Seed drives the search's randomness.
	Seed int64
}

// Result is the best (worst-case) configuration found.
type Result[S comparable] struct {
	// Config is the worst initial configuration found.
	Config statemodel.Config[S]
	// Score is its measure.
	Score int
	// Evaluations counts measure invocations.
	Evaluations int
}

// Search hill-climbs over configurations: starting from a random
// configuration (drawn by draw), it repeatedly mutates one process's state
// (via mutate) and keeps the mutant when the measure does not decrease.
func Search[S comparable](
	n int,
	draw func(rng *rand.Rand) statemodel.Config[S],
	mutate func(rng *rand.Rand, s S) S,
	measure Measure[S],
	opts Options,
) Result[S] {
	if opts.Restarts <= 0 {
		opts.Restarts = 5
	}
	if opts.Budget <= 0 {
		opts.Budget = 200
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	var best Result[S]
	for restart := 0; restart < opts.Restarts; restart++ {
		cur := draw(rng)
		curScore := measure(cur)
		best.Evaluations++
		if best.Config == nil || curScore > best.Score {
			best.Config = cur.Clone()
			best.Score = curScore
		}
		for i := 0; i < opts.Budget; i++ {
			cand := cur.Clone()
			p := rng.Intn(n)
			cand[p] = mutate(rng, cand[p])
			score := measure(cand)
			best.Evaluations++
			if score >= curScore {
				cur, curScore = cand, score
				if score > best.Score {
					best.Config = cand.Clone()
					best.Score = score
				}
			}
		}
	}
	return best
}
