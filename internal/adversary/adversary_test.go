package adversary

import (
	"math/rand"
	"testing"

	"ssrmin/internal/check"
	"ssrmin/internal/core"
	"ssrmin/internal/daemon"
	"ssrmin/internal/statemodel"
)

func drawSSRmin(a *core.Algorithm) func(*rand.Rand) statemodel.Config[core.State] {
	return func(rng *rand.Rand) statemodel.Config[core.State] {
		c := make(statemodel.Config[core.State], a.N())
		for i := range c {
			c[i] = core.State{X: rng.Intn(a.K()), RTS: rng.Intn(2) == 1, TRA: rng.Intn(2) == 1}
		}
		return c
	}
}

func mutateSSRmin(a *core.Algorithm) func(*rand.Rand, core.State) core.State {
	return func(rng *rand.Rand, s core.State) core.State {
		switch rng.Intn(3) {
		case 0:
			s.X = rng.Intn(a.K())
		case 1:
			s.RTS = !s.RTS
		default:
			s.TRA = !s.TRA
		}
		return s
	}
}

// convergenceMeasure counts steps to legitimacy under a deterministic
// adversarial daemon.
func convergenceMeasure(a *core.Algorithm) Measure[core.State] {
	return func(init statemodel.Config[core.State]) int {
		d := daemon.NewRuleBiased(rand.New(rand.NewSource(7)),
			core.RuleReadySecondary, core.RuleRecvSecondary, core.RuleFixNoG)
		sim := statemodel.NewSimulator[core.State](a, d, init)
		steps, ok := sim.RunUntil(a.Legitimate, a.ConvergenceStepBound())
		if !ok {
			return a.ConvergenceStepBound() + 1 // would contradict Theorem 2
		}
		return steps
	}
}

// TestSearchBeatsRandomSampling verifies the hill climber finds worse
// starts than the random baseline it embeds, and never exceeds the
// theorem's budget.
func TestSearchBeatsRandomSampling(t *testing.T) {
	a := core.New(6, 7)
	measure := convergenceMeasure(a)

	// Random baseline: best of the same number of evaluations.
	rng := rand.New(rand.NewSource(3))
	draw := drawSSRmin(a)
	randomBest := 0
	const evals = 1000
	for i := 0; i < evals; i++ {
		if s := measure(draw(rng)); s > randomBest {
			randomBest = s
		}
	}

	res := Search[core.State](a.N(), draw, mutateSSRmin(a), measure,
		Options{Restarts: 5, Budget: 199, Seed: 3})
	if res.Evaluations != evals {
		t.Fatalf("evaluations = %d, want %d", res.Evaluations, evals)
	}
	if res.Score > a.ConvergenceStepBound() {
		t.Fatalf("search found a non-converging start: %v", res.Config)
	}
	if res.Score < randomBest {
		t.Fatalf("hill climb (%d) worse than random sampling (%d)", res.Score, randomBest)
	}
	t.Logf("n=6: random best %d steps, adversarial search %d steps", randomBest, res.Score)
}

// TestSearchApproachesExactWorstCase compares the search against the
// model checker's exact worst case on n=3 (16 steps): the heuristic must
// land within a reasonable factor — and must never exceed it under any
// deterministic daemon choice (the exact value maximizes over ALL
// daemons).
func TestSearchApproachesExactWorstCase(t *testing.T) {
	a := core.New(3, 4)
	c := check.New[core.State](a, 0)
	conv := c.CheckConvergence(a.Legitimate)
	if !conv.Converges {
		t.Fatal("base convergence broken")
	}

	res := Search[core.State](a.N(), drawSSRmin(a), mutateSSRmin(a),
		convergenceMeasure(a), Options{Restarts: 10, Budget: 150, Seed: 1})
	if res.Score > conv.WorstSteps {
		t.Fatalf("search found %d steps, above the exact worst case %d — impossible", res.Score, conv.WorstSteps)
	}
	if res.Score < conv.WorstSteps/3 {
		t.Errorf("search found only %d steps vs exact %d", res.Score, conv.WorstSteps)
	}
	t.Logf("n=3: search %d steps vs exact worst case %d", res.Score, conv.WorstSteps)
}

func TestSearchDefaults(t *testing.T) {
	a := core.New(3, 4)
	res := Search[core.State](a.N(), drawSSRmin(a), mutateSSRmin(a),
		convergenceMeasure(a), Options{Seed: 2})
	if res.Config == nil || res.Evaluations != 5*(200+1) {
		t.Fatalf("defaults not applied: %+v", res)
	}
}

func TestSearchDeterministic(t *testing.T) {
	a := core.New(4, 5)
	run := func() Result[core.State] {
		return Search[core.State](a.N(), drawSSRmin(a), mutateSSRmin(a),
			convergenceMeasure(a), Options{Restarts: 2, Budget: 50, Seed: 11})
	}
	r1, r2 := run(), run()
	if r1.Score != r2.Score || !r1.Config.Equal(r2.Config) {
		t.Fatal("same-seed searches diverged")
	}
}

// TestClimbGenericCandidates runs the generic climb over a non-config
// candidate type (a pair of ints scored by a rugged objective): it must
// be deterministic per seed and never worse than its own restart draws.
func TestClimbGenericCandidates(t *testing.T) {
	type pt struct{ x, y int }
	draw := func(rng *rand.Rand) pt { return pt{x: rng.Intn(100), y: rng.Intn(100)} }
	neighbor := func(rng *rand.Rand, cur pt) pt {
		if rng.Intn(2) == 0 {
			cur.x += rng.Intn(11) - 5
		} else {
			cur.y += rng.Intn(11) - 5
		}
		return cur
	}
	score := func(p pt) int { return -(p.x-42)*(p.x-42) - (p.y-17)*(p.y-17) }

	r1 := Climb[pt](draw, neighbor, score, Options{Restarts: 4, Budget: 100, Seed: 9})
	r2 := Climb[pt](draw, neighbor, score, Options{Restarts: 4, Budget: 100, Seed: 9})
	if r1 != r2 {
		t.Fatalf("same-seed climbs diverged: %+v vs %+v", r1, r2)
	}
	if r1.Evaluations != 4*101 {
		t.Fatalf("evaluations = %d, want 404", r1.Evaluations)
	}
	if r1.Score < -200 {
		t.Fatalf("climb stayed far from the optimum: %+v", r1)
	}
}

// TestSearchMatchesClimbSpecialization pins the refactor: Search must be
// exactly Climb with the single-process neighbor move, so a hand-rolled
// Climb with that neighbor reproduces Search's result bit for bit.
func TestSearchMatchesClimbSpecialization(t *testing.T) {
	a := core.New(4, 5)
	measure := convergenceMeasure(a)
	opts := Options{Restarts: 3, Budget: 60, Seed: 21}

	res := Search[core.State](a.N(), drawSSRmin(a), mutateSSRmin(a), measure, opts)
	mut := mutateSSRmin(a)
	climbed := Climb[statemodel.Config[core.State]](
		drawSSRmin(a),
		func(rng *rand.Rand, cur statemodel.Config[core.State]) statemodel.Config[core.State] {
			cand := cur.Clone()
			p := rng.Intn(a.N())
			cand[p] = mut(rng, cand[p])
			return cand
		},
		func(c statemodel.Config[core.State]) int { return measure(c) },
		opts,
	)
	if res.Score != climbed.Score || !res.Config.Equal(climbed.Best) {
		t.Fatalf("Search and Climb specialization diverged: %d vs %d", res.Score, climbed.Score)
	}
}
