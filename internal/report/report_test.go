package report

import (
	"strings"
	"testing"
)

func sample() *Table {
	t := New("Convergence", "n", "steps", "bound")
	t.AddRow(3, 16, 571.0)
	t.AddRow(4, 43, 1012.25)
	return t
}

func TestParseFormat(t *testing.T) {
	for s, want := range map[string]Format{
		"": Text, "text": Text, "md": Markdown, "markdown": Markdown, "csv": CSV, "CSV": CSV,
	} {
		got, err := ParseFormat(s)
		if err != nil || got != want {
			t.Errorf("ParseFormat(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParseFormat("yaml"); err == nil {
		t.Error("ParseFormat accepted yaml")
	}
}

func TestRenderText(t *testing.T) {
	var b strings.Builder
	if err := sample().Render(&b, Text); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"Convergence", "n  steps  bound", "---", "4  43     1012"} {
		if !strings.Contains(out, want) {
			t.Errorf("text output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, " \n") {
		t.Error("text output has trailing spaces")
	}
}

func TestRenderMarkdown(t *testing.T) {
	var b strings.Builder
	if err := sample().Render(&b, Markdown); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"### Convergence", "| n | steps | bound |", "| --- | --- | --- |", "| 3 | 16 | 571 |"} {
		if !strings.Contains(out, want) {
			t.Errorf("markdown missing %q:\n%s", want, out)
		}
	}
	// Pipe escaping.
	p := New("", "a")
	p.AddRow("x|y")
	b.Reset()
	p.Render(&b, Markdown)
	if !strings.Contains(b.String(), `x\|y`) {
		t.Errorf("pipe not escaped: %s", b.String())
	}
}

func TestRenderCSV(t *testing.T) {
	var b strings.Builder
	if err := sample().Render(&b, CSV); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if len(lines) != 3 || lines[0] != "n,steps,bound" || lines[1] != "3,16,571" {
		t.Fatalf("csv output:\n%s", b.String())
	}
}

func TestRowsAndBadFormat(t *testing.T) {
	tb := sample()
	if tb.Rows() != 2 {
		t.Errorf("Rows = %d", tb.Rows())
	}
	if err := tb.Render(&strings.Builder{}, Format(99)); err == nil {
		t.Error("bad format accepted")
	}
}
