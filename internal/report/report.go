// Package report renders experiment tables in multiple formats — aligned
// text for the terminal, GitHub markdown for documents, CSV for plotting —
// from one data structure, so experiment code builds rows once and the
// caller picks the output.
package report

import (
	"encoding/csv"
	"fmt"
	"io"
	"strings"
)

// Format selects an output renderer.
type Format int

// Supported formats.
const (
	// Text is an aligned fixed-width table.
	Text Format = iota
	// Markdown is a GitHub-flavored markdown table.
	Markdown
	// CSV is comma-separated values with a header record.
	CSV
)

// ParseFormat maps a CLI string to a Format.
func ParseFormat(s string) (Format, error) {
	switch strings.ToLower(s) {
	case "", "text":
		return Text, nil
	case "md", "markdown":
		return Markdown, nil
	case "csv":
		return CSV, nil
	}
	return Text, fmt.Errorf("report: unknown format %q (want text|md|csv)", s)
}

// Table is a header plus rows of stringified cells.
type Table struct {
	// Title labels the table (emitted as a comment/header where the
	// format allows).
	Title  string
	header []string
	rows   [][]string
}

// New creates a table with the given column headers.
func New(title string, header ...string) *Table {
	return &Table{Title: title, header: header}
}

// AddRow appends a row; cells are formatted like fmt %v with float64
// compacted to 4 significant digits.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.4g", v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

// Rows returns the number of data rows.
func (t *Table) Rows() int { return len(t.rows) }

// Render writes the table in the chosen format.
func (t *Table) Render(w io.Writer, f Format) error {
	switch f {
	case Text:
		return t.renderText(w)
	case Markdown:
		return t.renderMarkdown(w)
	case CSV:
		return t.renderCSV(w)
	}
	return fmt.Errorf("report: bad format %d", f)
}

func (t *Table) widths() []int {
	width := make([]int, len(t.header))
	for i, h := range t.header {
		width[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(width) && len(c) > width[i] {
				width[i] = len(c)
			}
		}
	}
	return width
}

func (t *Table) renderText(w io.Writer) error {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	width := t.widths()
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			if i == len(cells)-1 {
				b.WriteString(c)
			} else {
				fmt.Fprintf(&b, "%-*s", width[i], c)
			}
		}
		b.WriteByte('\n')
	}
	line(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", width[i])
	}
	line(sep)
	for _, row := range t.rows {
		line(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func (t *Table) renderMarkdown(w io.Writer) error {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "### %s\n\n", t.Title)
	}
	writeRow := func(cells []string) {
		b.WriteString("|")
		for _, c := range cells {
			b.WriteString(" ")
			b.WriteString(strings.ReplaceAll(c, "|", "\\|"))
			b.WriteString(" |")
		}
		b.WriteByte('\n')
	}
	writeRow(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = "---"
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func (t *Table) renderCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.header); err != nil {
		return err
	}
	for _, row := range t.rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
