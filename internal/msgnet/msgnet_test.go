package msgnet

import (
	"math/rand"
	"testing"
)

// echoNode records deliveries and timers; on Start it optionally sends a
// payload and arms a timer.
type echoNode struct {
	sendTo    int
	payload   any
	timerIn   Time
	received  []any
	from      []int
	timerHits int
	times     []Time
}

func (e *echoNode) Start(ctx *Context[any]) {
	if e.payload != nil {
		ctx.Send(e.sendTo, e.payload)
	}
	if e.timerIn > 0 {
		ctx.After(e.timerIn, 7)
	}
}

func (e *echoNode) Receive(ctx *Context[any], from int, payload any) {
	e.received = append(e.received, payload)
	e.from = append(e.from, from)
	e.times = append(e.times, ctx.Now())
}

func (e *echoNode) Timer(ctx *Context[any], kind int) {
	if kind == 7 {
		e.timerHits++
	}
}

func TestDeliveryWithDelay(t *testing.T) {
	a := &echoNode{sendTo: 1, payload: "hi"}
	b := &echoNode{}
	net := New([]Handler[any]{a, b}, 1)
	net.AddLink(0, 1, LinkParams{Delay: 0.5})
	net.Run(10)
	if len(b.received) != 1 || b.received[0] != "hi" {
		t.Fatalf("received %v", b.received)
	}
	if b.from[0] != 0 {
		t.Errorf("from = %d", b.from[0])
	}
	if b.times[0] != 0.5 {
		t.Errorf("delivered at %v, want 0.5", b.times[0])
	}
	st := net.Stats()
	if st.Sent != 1 || st.Delivered != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestNoLinkNoDelivery(t *testing.T) {
	a := &echoNode{sendTo: 1, payload: "x"}
	b := &echoNode{}
	net := New([]Handler[any]{a, b}, 1)
	net.Run(10)
	if len(b.received) != 0 {
		t.Fatalf("received %v without a link", b.received)
	}
}

func TestTimerFires(t *testing.T) {
	a := &echoNode{timerIn: 2}
	net := New([]Handler[any]{a}, 1)
	net.Run(10)
	if a.timerHits != 1 {
		t.Errorf("timer hits = %d", a.timerHits)
	}
	if net.Stats().Timers != 1 {
		t.Errorf("stats.Timers = %d", net.Stats().Timers)
	}
}

// chattyNode sends k messages back-to-back at start.
type chattyNode struct {
	to, k int
	got   int
}

func (c *chattyNode) Start(ctx *Context[any]) {
	for i := 0; i < c.k; i++ {
		ctx.Send(c.to, i)
	}
}
func (c *chattyNode) Receive(ctx *Context[any], from int, payload any) { c.got++ }
func (c *chattyNode) Timer(ctx *Context[any], kind int)                {}

func TestBusyLinkSuppressesSends(t *testing.T) {
	// Five instantaneous sends at t=0 on a link with delay: only the first
	// may enter; the rest are suppressed (one message per direction).
	a := &chattyNode{to: 1, k: 5}
	b := &chattyNode{}
	net := New([]Handler[any]{a, b}, 1)
	net.AddLink(0, 1, LinkParams{Delay: 1})
	net.Run(10)
	st := net.Stats()
	if st.Sent != 1 || st.Suppressed != 4 {
		t.Fatalf("stats = %+v, want 1 sent / 4 suppressed", st)
	}
	if b.got != 1 {
		t.Errorf("b received %d", b.got)
	}
}

func TestZeroDelayLinkIsNotBusy(t *testing.T) {
	// With zero delay the link frees instantly, so all sends pass.
	a := &chattyNode{to: 1, k: 3}
	b := &chattyNode{}
	net := New([]Handler[any]{a, b}, 1)
	net.AddLink(0, 1, LinkParams{})
	net.Run(10)
	if b.got != 3 {
		t.Errorf("b received %d, want 3", b.got)
	}
}

func TestLossAndGate(t *testing.T) {
	a := &chattyNode{to: 1, k: 1}
	b := &chattyNode{}
	net := New([]Handler[any]{a, b}, 3)
	net.AddLink(0, 1, LinkParams{LossProb: 1})
	net.Run(10)
	if b.got != 0 || net.Stats().Lost != 1 {
		t.Fatalf("loss failed: got=%d stats=%+v", b.got, net.Stats())
	}

	// Gate off: same topology, loss disabled.
	a2 := &chattyNode{to: 1, k: 1}
	b2 := &chattyNode{}
	net2 := New([]Handler[any]{a2, b2}, 3)
	net2.AddLink(0, 1, LinkParams{LossProb: 1})
	net2.LossEnabled = false
	net2.Run(10)
	if b2.got != 1 {
		t.Fatalf("LossEnabled=false still lost the message")
	}
}

func TestDuplication(t *testing.T) {
	a := &chattyNode{to: 1, k: 1}
	b := &chattyNode{}
	net := New([]Handler[any]{a, b}, 5)
	net.AddLink(0, 1, LinkParams{Delay: 1, DupProb: 1})
	net.Run(10)
	if b.got != 2 || net.Stats().Duplicated != 1 {
		t.Fatalf("dup failed: got=%d stats=%+v", b.got, net.Stats())
	}
}

// TestDuplicateOccupiesLink is the regression test for the model-gap bug
// where a duplicated delivery bypassed the one-message-per-link rule: the
// duplicate must hold the link, so no new frame can be in flight
// concurrently with it.
func TestDuplicateOccupiesLink(t *testing.T) {
	a := &chattyNode{}
	b := &chattyNode{}
	net := New([]Handler[any]{a, b}, 11)
	net.AddLink(0, 1, LinkParams{Delay: 1, Jitter: 0.5, DupProb: 1})
	var dups []Time
	net.Tap = func(e TapEvent) {
		if e.Kind == TapDup {
			dups = append(dups, e.At)
		}
	}
	net.Run(0) // run Start callbacks only; no traffic yet
	ctx := &Context[any]{net: net, node: 0}
	if !ctx.Send(1, "x") {
		t.Fatal("first send refused on an idle link")
	}
	if len(dups) != 1 || dups[0] != 0 {
		t.Fatalf("TapDup events = %v, want one at t=0", dups)
	}
	for b.got == 0 {
		if !net.Step() {
			t.Fatal("queue drained before the original arrived")
		}
	}
	// The original arrived, but the duplicate is still in transit: the
	// link must refuse the next frame (one message per direction at a
	// time). This is exactly the send the pre-fix code admitted.
	if ctx.Send(1, "y") {
		t.Fatal("send admitted while the duplicate was still in flight")
	}
	if net.Stats().Suppressed != 1 {
		t.Fatalf("stats = %+v, want the busy-link refusal counted as Suppressed", net.Stats())
	}
	for b.got < 2 {
		if !net.Step() {
			t.Fatal("queue drained before the duplicate arrived")
		}
	}
	// The duplicate has landed; the medium is free again.
	if !ctx.Send(1, "z") {
		t.Fatal("link still busy after the duplicate arrived")
	}
}

// TestLostFrameHoldsMedium pins the loss coin's link-model semantics: a
// lost frame occupied the medium for its flight time, so a send attempted
// right behind it is suppressed, not lost.
func TestLostFrameHoldsMedium(t *testing.T) {
	a := &chattyNode{}
	b := &chattyNode{}
	net := New([]Handler[any]{a, b}, 3)
	net.AddLink(0, 1, LinkParams{Delay: 1, LossProb: 1})
	net.Run(0)
	ctx := &Context[any]{net: net, node: 0}
	if ctx.Send(1, "x") {
		t.Fatal("lossy send reported success")
	}
	if st := net.Stats(); st.Lost != 1 {
		t.Fatalf("stats = %+v, want 1 lost", st)
	}
	if ctx.Send(1, "y") {
		t.Fatal("send admitted while garbage was in flight")
	}
	if st := net.Stats(); st.Lost != 1 || st.Suppressed != 1 {
		t.Fatalf("stats = %+v, want the second send suppressed, not lost", st)
	}
	net.Run(2) // past the lost frame's flight window
	if ctx.Send(1, "z") {
		t.Fatal("lossy send reported success")
	}
	if st := net.Stats(); st.Lost != 2 || st.Suppressed != 1 {
		t.Fatalf("stats = %+v, want the late send to reach the loss coin", st)
	}
}

// TestCorruptedFrameHoldsMedium is the same audit for the corruption coin
// in checksum-discard mode.
func TestCorruptedFrameHoldsMedium(t *testing.T) {
	a := &chattyNode{}
	b := &chattyNode{}
	net := New([]Handler[any]{a, b}, 3)
	net.AddLink(0, 1, LinkParams{Delay: 1, CorruptProb: 1})
	net.Run(0)
	ctx := &Context[any]{net: net, node: 0}
	if ctx.Send(1, "x") {
		t.Fatal("corrupted send reported success without a hook")
	}
	if ctx.Send(1, "y") {
		t.Fatal("send admitted while the damaged frame was in flight")
	}
	if st := net.Stats(); st.Corrupted != 1 || st.Suppressed != 1 {
		t.Fatalf("stats = %+v, want 1 corrupted + 1 suppressed", st)
	}
	net.Run(2)
	ctx.Send(1, "z")
	if st := net.Stats(); st.Corrupted != 2 || st.Suppressed != 1 {
		t.Fatalf("stats = %+v, want the late send to reach the corruption coin", st)
	}
}

// TestSeededCoinDrawOrderPinned locks the RNG draw order of send(): loss
// coin, corruption coin, arrival jitter, duplication coin, duplicate
// jitter. A mirror RNG replays the documented order and predicts the exact
// outcome and timing of every attempt; reordering the draws in send()
// diverges from the prediction and fails this test for any seed.
func TestSeededCoinDrawOrderPinned(t *testing.T) {
	const seed = 99
	p := LinkParams{Delay: 1, Jitter: 0.25, LossProb: 0.3, CorruptProb: 0.2, DupProb: 0.4}
	const period = 2.0 // > Delay + 2*Jitter, so the link is free every time
	const attempts = 50

	// Driver: one send per timer tick. Timers draw nothing from the
	// network RNG, so every draw belongs to a send attempt.
	sent := 0
	a := &funcNode{
		start: func(ctx *Context[any]) { ctx.After(period, 0) },
		timer: func(ctx *Context[any], _ int) {
			ctx.Send(1, sent)
			sent++
			if sent < attempts {
				ctx.After(period, 0)
			}
		},
	}
	b := &funcNode{}
	var got []TapEvent
	net := New([]Handler[any]{a, b}, seed)
	net.AddLink(0, 1, p)
	net.Tap = func(e TapEvent) {
		if e.Kind != TapTimer {
			got = append(got, e)
		}
	}
	net.Run(attempts*period + 10)

	// Mirror prediction from an identical RNG, following the documented
	// draw order.
	mirror := rand.New(rand.NewSource(seed))
	type pred struct {
		kind TapKind
		at   Time
	}
	var want []pred
	var deliveries []Time
	for i := 0; i < attempts; i++ {
		now := Time((i + 1)) * period
		if mirror.Float64() < p.LossProb {
			mirror.Float64() // arrival jitter of the garbage frame
			want = append(want, pred{TapLost, now})
			continue
		}
		if mirror.Float64() < p.CorruptProb {
			mirror.Float64() // arrival jitter of the discarded frame
			want = append(want, pred{TapCorrupted, now})
			continue
		}
		at := now + p.Delay + Time(mirror.Float64())*p.Jitter
		want = append(want, pred{TapSend, now})
		deliveries = append(deliveries, at)
		if mirror.Float64() < p.DupProb {
			want = append(want, pred{TapDup, now})
			deliveries = append(deliveries, at+Time(mirror.Float64())*p.Jitter)
		}
	}
	for _, at := range deliveries {
		want = append(want, pred{TapDeliver, at})
	}

	// Compare per kind: send-side events in attempt order, deliveries as a
	// time-sorted multiset (events interleave in global time order).
	byKind := func(es []TapEvent, k TapKind) []Time {
		var out []Time
		for _, e := range es {
			if e.Kind == k {
				out = append(out, e.At)
			}
		}
		return out
	}
	wantByKind := func(k TapKind) []Time {
		var out []Time
		for _, w := range want {
			if w.kind == k {
				out = append(out, w.at)
			}
		}
		return out
	}
	for _, k := range []TapKind{TapLost, TapCorrupted, TapSend, TapDup, TapDeliver} {
		g, w := byKind(got, k), wantByKind(k)
		if k == TapDeliver {
			sortTimes(g)
			sortTimes(w)
		}
		if len(g) != len(w) {
			t.Fatalf("%v: %d events, mirror predicts %d — RNG draw order changed", k, len(g), len(w))
		}
		for i := range g {
			if g[i] != w[i] {
				t.Fatalf("%v[%d] at %v, mirror predicts %v — RNG draw order changed", k, i, g[i], w[i])
			}
		}
	}
	if len(wantByKind(TapLost)) == 0 || len(wantByKind(TapCorrupted)) == 0 || len(wantByKind(TapDup)) == 0 {
		t.Fatal("seed exercised too few coin outcomes; pick another seed")
	}
}

func sortTimes(ts []Time) {
	for i := 1; i < len(ts); i++ {
		for j := i; j > 0 && ts[j] < ts[j-1]; j-- {
			ts[j], ts[j-1] = ts[j-1], ts[j]
		}
	}
}

func TestRingLinks(t *testing.T) {
	nodes := []Handler[any]{&echoNode{}, &echoNode{}, &echoNode{}}
	net := New(nodes, 1)
	net.RingLinks(LinkParams{Delay: 0.1})
	if len(net.links) != 6 {
		t.Errorf("ring of 3 has %d directed links, want 6", len(net.links))
	}
}

func TestDeterminismSameSeed(t *testing.T) {
	run := func(seed int64) (Stats, Time) {
		a := &echoNode{sendTo: 1, payload: 1, timerIn: 0.3}
		b := &echoNode{sendTo: 0, payload: 2, timerIn: 0.7}
		net := New([]Handler[any]{a, b}, seed)
		net.AddLink(0, 1, LinkParams{Delay: 0.2, Jitter: 0.3, LossProb: 0.2})
		net.AddLink(1, 0, LinkParams{Delay: 0.2, Jitter: 0.3, LossProb: 0.2})
		net.Run(5)
		return net.Stats(), net.Now()
	}
	s1, t1 := run(42)
	s2, t2 := run(42)
	if s1 != s2 || t1 != t2 {
		t.Errorf("same seed diverged: %+v@%v vs %+v@%v", s1, t1, s2, t2)
	}
}

func TestObserverRunsPerEvent(t *testing.T) {
	a := &echoNode{sendTo: 1, payload: "m", timerIn: 1}
	b := &echoNode{}
	net := New([]Handler[any]{a, b}, 1)
	net.AddLink(0, 1, LinkParams{Delay: 0.5})
	obs := 0
	net.Observer = func(now Time) { obs++ }
	net.Run(10)
	// One observation after Start + one per event (delivery + timer).
	if obs != 3 {
		t.Errorf("observer ran %d times, want 3", obs)
	}
}

func TestRunAdvancesClockToHorizon(t *testing.T) {
	net := New([]Handler[any]{&echoNode{}}, 1)
	net.Run(42)
	if net.Now() != 42 {
		t.Errorf("Now = %v, want 42", net.Now())
	}
}

func TestEventOrderDeterministicTies(t *testing.T) {
	// Two timers at the same instant fire in scheduling order.
	var order []int
	a := &funcNode{start: func(ctx *Context[any]) { ctx.After(1, 0) }, timer: func(ctx *Context[any], _ int) { order = append(order, ctx.ID()) }}
	b := &funcNode{start: func(ctx *Context[any]) { ctx.After(1, 0) }, timer: func(ctx *Context[any], _ int) { order = append(order, ctx.ID()) }}
	net := New([]Handler[any]{a, b}, 1)
	net.Run(2)
	if len(order) != 2 || order[0] != 0 || order[1] != 1 {
		t.Errorf("tie order = %v", order)
	}
}

func TestBadLinkParamsPanic(t *testing.T) {
	net := New([]Handler[any]{&echoNode{}, &echoNode{}}, 1)
	defer func() {
		if recover() == nil {
			t.Error("AddLink accepted LossProb=2")
		}
	}()
	net.AddLink(0, 1, LinkParams{LossProb: 2})
}

func TestNegativeTimerPanics(t *testing.T) {
	a := &funcNode{start: func(ctx *Context[any]) { ctx.After(-1, 0) }}
	net := New([]Handler[any]{a}, 1)
	defer func() {
		if recover() == nil {
			t.Error("negative timer accepted")
		}
	}()
	net.Run(1)
}

type funcNode struct {
	start func(*Context[any])
	recv  func(*Context[any], int, any)
	timer func(*Context[any], int)
}

func (f *funcNode) Start(ctx *Context[any]) {
	if f.start != nil {
		f.start(ctx)
	}
}
func (f *funcNode) Receive(ctx *Context[any], from int, payload any) {
	if f.recv != nil {
		f.recv(ctx, from, payload)
	}
}
func (f *funcNode) Timer(ctx *Context[any], kind int) {
	if f.timer != nil {
		f.timer(ctx, kind)
	}
}

func TestCorruptionDropMode(t *testing.T) {
	// Without a Corrupt hook, corrupted frames are discarded (checksum
	// model) and still occupy the medium.
	a := &chattyNode{to: 1, k: 1}
	b := &chattyNode{}
	net := New([]Handler[any]{a, b}, 7)
	net.AddLink(0, 1, LinkParams{Delay: 1, CorruptProb: 1})
	net.Run(10)
	if b.got != 0 {
		t.Fatalf("corrupted frame delivered without a hook: got=%d", b.got)
	}
	if net.Stats().Corrupted != 1 {
		t.Fatalf("stats = %+v", net.Stats())
	}
}

func TestCorruptionHookRewritesPayload(t *testing.T) {
	a := &echoNode{sendTo: 1, payload: 100}
	b := &echoNode{}
	net := New([]Handler[any]{a, b}, 7)
	net.AddLink(0, 1, LinkParams{Delay: 0.1, CorruptProb: 1})
	net.Corrupt = func(rng *rand.Rand, payload any) any { return payload.(int) + 1 }
	net.Run(10)
	if len(b.received) != 1 || b.received[0] != 101 {
		t.Fatalf("received %v, want corrupted 101", b.received)
	}
	if net.Stats().Corrupted != 1 || net.Stats().Sent != 1 {
		t.Fatalf("stats = %+v", net.Stats())
	}
}

func TestCorruptProbValidation(t *testing.T) {
	net := New([]Handler[any]{&echoNode{}, &echoNode{}}, 1)
	defer func() {
		if recover() == nil {
			t.Error("AddLink accepted CorruptProb=-1")
		}
	}()
	net.AddLink(0, 1, LinkParams{CorruptProb: -1})
}

func TestAddNodeAfterStartPanics(t *testing.T) {
	net := New([]Handler[any]{&echoNode{}}, 1)
	net.Run(0)
	defer func() {
		if recover() == nil {
			t.Error("AddNode after start accepted")
		}
	}()
	net.AddNode(&echoNode{})
}

func TestLinkOutage(t *testing.T) {
	a := &chattyNode{to: 1, k: 1}
	b := &chattyNode{}
	net := New([]Handler[any]{a, b}, 1)
	net.AddLink(0, 1, LinkParams{Delay: 0.1})
	net.SetLinkUp(0, 1, false)
	net.Run(5)
	if b.got != 0 || net.Stats().Lost != 1 {
		t.Fatalf("outage failed: got=%d stats=%+v", b.got, net.Stats())
	}
	// Raise the link again; a fresh sender gets through.
	net.SetLinkUp(0, 1, true)
	c2 := &Context[any]{net: net, node: 0}
	if !c2.Send(1, "late") {
		t.Fatal("send after outage failed")
	}
	net.Run(10)
	if b.got != 1 {
		t.Fatalf("post-outage delivery failed: got=%d", b.got)
	}
}

func TestSetLinkUpUnknownPanics(t *testing.T) {
	net := New([]Handler[any]{&echoNode{}}, 1)
	defer func() {
		if recover() == nil {
			t.Error("SetLinkUp on missing link accepted")
		}
	}()
	net.SetLinkUp(0, 1, false)
}
