package msgnet

import (
	"math/rand"
	"testing"
)

// echoNode records deliveries and timers; on Start it optionally sends a
// payload and arms a timer.
type echoNode struct {
	sendTo    int
	payload   any
	timerIn   Time
	received  []any
	from      []int
	timerHits int
	times     []Time
}

func (e *echoNode) Start(ctx *Context) {
	if e.payload != nil {
		ctx.Send(e.sendTo, e.payload)
	}
	if e.timerIn > 0 {
		ctx.After(e.timerIn, 7)
	}
}

func (e *echoNode) Receive(ctx *Context, from int, payload any) {
	e.received = append(e.received, payload)
	e.from = append(e.from, from)
	e.times = append(e.times, ctx.Now())
}

func (e *echoNode) Timer(ctx *Context, kind int) {
	if kind == 7 {
		e.timerHits++
	}
}

func TestDeliveryWithDelay(t *testing.T) {
	a := &echoNode{sendTo: 1, payload: "hi"}
	b := &echoNode{}
	net := New([]Handler{a, b}, 1)
	net.AddLink(0, 1, LinkParams{Delay: 0.5})
	net.Run(10)
	if len(b.received) != 1 || b.received[0] != "hi" {
		t.Fatalf("received %v", b.received)
	}
	if b.from[0] != 0 {
		t.Errorf("from = %d", b.from[0])
	}
	if b.times[0] != 0.5 {
		t.Errorf("delivered at %v, want 0.5", b.times[0])
	}
	st := net.Stats()
	if st.Sent != 1 || st.Delivered != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestNoLinkNoDelivery(t *testing.T) {
	a := &echoNode{sendTo: 1, payload: "x"}
	b := &echoNode{}
	net := New([]Handler{a, b}, 1)
	net.Run(10)
	if len(b.received) != 0 {
		t.Fatalf("received %v without a link", b.received)
	}
}

func TestTimerFires(t *testing.T) {
	a := &echoNode{timerIn: 2}
	net := New([]Handler{a}, 1)
	net.Run(10)
	if a.timerHits != 1 {
		t.Errorf("timer hits = %d", a.timerHits)
	}
	if net.Stats().Timers != 1 {
		t.Errorf("stats.Timers = %d", net.Stats().Timers)
	}
}

// chattyNode sends k messages back-to-back at start.
type chattyNode struct {
	to, k int
	got   int
}

func (c *chattyNode) Start(ctx *Context) {
	for i := 0; i < c.k; i++ {
		ctx.Send(c.to, i)
	}
}
func (c *chattyNode) Receive(ctx *Context, from int, payload any) { c.got++ }
func (c *chattyNode) Timer(ctx *Context, kind int)                {}

func TestBusyLinkSuppressesSends(t *testing.T) {
	// Five instantaneous sends at t=0 on a link with delay: only the first
	// may enter; the rest are suppressed (one message per direction).
	a := &chattyNode{to: 1, k: 5}
	b := &chattyNode{}
	net := New([]Handler{a, b}, 1)
	net.AddLink(0, 1, LinkParams{Delay: 1})
	net.Run(10)
	st := net.Stats()
	if st.Sent != 1 || st.Suppressed != 4 {
		t.Fatalf("stats = %+v, want 1 sent / 4 suppressed", st)
	}
	if b.got != 1 {
		t.Errorf("b received %d", b.got)
	}
}

func TestZeroDelayLinkIsNotBusy(t *testing.T) {
	// With zero delay the link frees instantly, so all sends pass.
	a := &chattyNode{to: 1, k: 3}
	b := &chattyNode{}
	net := New([]Handler{a, b}, 1)
	net.AddLink(0, 1, LinkParams{})
	net.Run(10)
	if b.got != 3 {
		t.Errorf("b received %d, want 3", b.got)
	}
}

func TestLossAndGate(t *testing.T) {
	a := &chattyNode{to: 1, k: 1}
	b := &chattyNode{}
	net := New([]Handler{a, b}, 3)
	net.AddLink(0, 1, LinkParams{LossProb: 1})
	net.Run(10)
	if b.got != 0 || net.Stats().Lost != 1 {
		t.Fatalf("loss failed: got=%d stats=%+v", b.got, net.Stats())
	}

	// Gate off: same topology, loss disabled.
	a2 := &chattyNode{to: 1, k: 1}
	b2 := &chattyNode{}
	net2 := New([]Handler{a2, b2}, 3)
	net2.AddLink(0, 1, LinkParams{LossProb: 1})
	net2.LossEnabled = false
	net2.Run(10)
	if b2.got != 1 {
		t.Fatalf("LossEnabled=false still lost the message")
	}
}

func TestDuplication(t *testing.T) {
	a := &chattyNode{to: 1, k: 1}
	b := &chattyNode{}
	net := New([]Handler{a, b}, 5)
	net.AddLink(0, 1, LinkParams{Delay: 1, DupProb: 1})
	net.Run(10)
	if b.got != 2 || net.Stats().Duplicated != 1 {
		t.Fatalf("dup failed: got=%d stats=%+v", b.got, net.Stats())
	}
}

func TestRingLinks(t *testing.T) {
	nodes := []Handler{&echoNode{}, &echoNode{}, &echoNode{}}
	net := New(nodes, 1)
	net.RingLinks(LinkParams{Delay: 0.1})
	if len(net.links) != 6 {
		t.Errorf("ring of 3 has %d directed links, want 6", len(net.links))
	}
}

func TestDeterminismSameSeed(t *testing.T) {
	run := func(seed int64) (Stats, Time) {
		a := &echoNode{sendTo: 1, payload: 1, timerIn: 0.3}
		b := &echoNode{sendTo: 0, payload: 2, timerIn: 0.7}
		net := New([]Handler{a, b}, seed)
		net.AddLink(0, 1, LinkParams{Delay: 0.2, Jitter: 0.3, LossProb: 0.2})
		net.AddLink(1, 0, LinkParams{Delay: 0.2, Jitter: 0.3, LossProb: 0.2})
		net.Run(5)
		return net.Stats(), net.Now()
	}
	s1, t1 := run(42)
	s2, t2 := run(42)
	if s1 != s2 || t1 != t2 {
		t.Errorf("same seed diverged: %+v@%v vs %+v@%v", s1, t1, s2, t2)
	}
}

func TestObserverRunsPerEvent(t *testing.T) {
	a := &echoNode{sendTo: 1, payload: "m", timerIn: 1}
	b := &echoNode{}
	net := New([]Handler{a, b}, 1)
	net.AddLink(0, 1, LinkParams{Delay: 0.5})
	obs := 0
	net.Observer = func(now Time) { obs++ }
	net.Run(10)
	// One observation after Start + one per event (delivery + timer).
	if obs != 3 {
		t.Errorf("observer ran %d times, want 3", obs)
	}
}

func TestRunAdvancesClockToHorizon(t *testing.T) {
	net := New([]Handler{&echoNode{}}, 1)
	net.Run(42)
	if net.Now() != 42 {
		t.Errorf("Now = %v, want 42", net.Now())
	}
}

func TestEventOrderDeterministicTies(t *testing.T) {
	// Two timers at the same instant fire in scheduling order.
	var order []int
	a := &funcNode{start: func(ctx *Context) { ctx.After(1, 0) }, timer: func(ctx *Context, _ int) { order = append(order, ctx.ID()) }}
	b := &funcNode{start: func(ctx *Context) { ctx.After(1, 0) }, timer: func(ctx *Context, _ int) { order = append(order, ctx.ID()) }}
	net := New([]Handler{a, b}, 1)
	net.Run(2)
	if len(order) != 2 || order[0] != 0 || order[1] != 1 {
		t.Errorf("tie order = %v", order)
	}
}

func TestBadLinkParamsPanic(t *testing.T) {
	net := New([]Handler{&echoNode{}, &echoNode{}}, 1)
	defer func() {
		if recover() == nil {
			t.Error("AddLink accepted LossProb=2")
		}
	}()
	net.AddLink(0, 1, LinkParams{LossProb: 2})
}

func TestNegativeTimerPanics(t *testing.T) {
	a := &funcNode{start: func(ctx *Context) { ctx.After(-1, 0) }}
	net := New([]Handler{a}, 1)
	defer func() {
		if recover() == nil {
			t.Error("negative timer accepted")
		}
	}()
	net.Run(1)
}

type funcNode struct {
	start func(*Context)
	recv  func(*Context, int, any)
	timer func(*Context, int)
}

func (f *funcNode) Start(ctx *Context) {
	if f.start != nil {
		f.start(ctx)
	}
}
func (f *funcNode) Receive(ctx *Context, from int, payload any) {
	if f.recv != nil {
		f.recv(ctx, from, payload)
	}
}
func (f *funcNode) Timer(ctx *Context, kind int) {
	if f.timer != nil {
		f.timer(ctx, kind)
	}
}

func TestCorruptionDropMode(t *testing.T) {
	// Without a Corrupt hook, corrupted frames are discarded (checksum
	// model) and still occupy the medium.
	a := &chattyNode{to: 1, k: 1}
	b := &chattyNode{}
	net := New([]Handler{a, b}, 7)
	net.AddLink(0, 1, LinkParams{Delay: 1, CorruptProb: 1})
	net.Run(10)
	if b.got != 0 {
		t.Fatalf("corrupted frame delivered without a hook: got=%d", b.got)
	}
	if net.Stats().Corrupted != 1 {
		t.Fatalf("stats = %+v", net.Stats())
	}
}

func TestCorruptionHookRewritesPayload(t *testing.T) {
	a := &echoNode{sendTo: 1, payload: 100}
	b := &echoNode{}
	net := New([]Handler{a, b}, 7)
	net.AddLink(0, 1, LinkParams{Delay: 0.1, CorruptProb: 1})
	net.Corrupt = func(rng *rand.Rand, payload any) any { return payload.(int) + 1 }
	net.Run(10)
	if len(b.received) != 1 || b.received[0] != 101 {
		t.Fatalf("received %v, want corrupted 101", b.received)
	}
	if net.Stats().Corrupted != 1 || net.Stats().Sent != 1 {
		t.Fatalf("stats = %+v", net.Stats())
	}
}

func TestCorruptProbValidation(t *testing.T) {
	net := New([]Handler{&echoNode{}, &echoNode{}}, 1)
	defer func() {
		if recover() == nil {
			t.Error("AddLink accepted CorruptProb=-1")
		}
	}()
	net.AddLink(0, 1, LinkParams{CorruptProb: -1})
}

func TestAddNodeAfterStartPanics(t *testing.T) {
	net := New([]Handler{&echoNode{}}, 1)
	net.Run(0)
	defer func() {
		if recover() == nil {
			t.Error("AddNode after start accepted")
		}
	}()
	net.AddNode(&echoNode{})
}

func TestLinkOutage(t *testing.T) {
	a := &chattyNode{to: 1, k: 1}
	b := &chattyNode{}
	net := New([]Handler{a, b}, 1)
	net.AddLink(0, 1, LinkParams{Delay: 0.1})
	net.SetLinkUp(0, 1, false)
	net.Run(5)
	if b.got != 0 || net.Stats().Lost != 1 {
		t.Fatalf("outage failed: got=%d stats=%+v", b.got, net.Stats())
	}
	// Raise the link again; a fresh sender gets through.
	net.SetLinkUp(0, 1, true)
	c2 := &Context{net: net, node: 0}
	if !c2.Send(1, "late") {
		t.Fatal("send after outage failed")
	}
	net.Run(10)
	if b.got != 1 {
		t.Fatalf("post-outage delivery failed: got=%d", b.got)
	}
}

func TestSetLinkUpUnknownPanics(t *testing.T) {
	net := New([]Handler{&echoNode{}}, 1)
	defer func() {
		if recover() == nil {
			t.Error("SetLinkUp on missing link accepted")
		}
	}()
	net.SetLinkUp(0, 1, false)
}
