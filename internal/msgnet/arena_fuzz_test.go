package msgnet

import (
	"testing"
)

// FuzzArenaInvariants interleaves schedule (push), cancel (remove) and
// deliver (pop) operations driven by fuzzed bytes and, after every
// operation, re-validates the arena from first principles via check():
// the heap and free list must always partition the slot slab — no event
// live twice, none leaked — with exact pos back-pointers and the 4-ary
// heap property. A parallel model (a plain slice) additionally checks
// that pops come out in exact (at, seq) order, the property every seeded
// trace rests on.
func FuzzArenaInvariants(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7})
	f.Add([]byte{0, 0, 0, 0, 9, 9, 9, 9, 3, 3, 3, 3})
	f.Add([]byte{255, 254, 253, 1, 1, 1, 128, 64, 32, 16, 8, 4, 2, 1})
	f.Add([]byte{7, 7, 7, 7, 7, 7, 7, 7, 7, 7, 7, 7, 7, 7, 7, 7, 200})
	f.Fuzz(func(t *testing.T, ops []byte) {
		a := NewArena[int]()
		// model holds the slot index of every live event, insertion-ordered.
		var model []int32
		var seq uint64
		minLive := func() int32 {
			best := model[0]
			for _, s := range model[1:] {
				if a.before(s, best) {
					best = s
				}
			}
			return best
		}
		dropFromModel := func(s int32) {
			for i, m := range model {
				if m == s {
					model = append(model[:i], model[i+1:]...)
					return
				}
			}
			t.Fatalf("slot %d popped but not in model", s)
		}
		for i, b := range ops {
			switch {
			case b < 128: // schedule: at derived from the byte, ties common
				e := event[int]{at: Time(b % 16), seq: seq, load: i}
				seq++
				before := a.Len()
				a.push(&e)
				if a.Len() != before+1 {
					t.Fatalf("op %d: push did not grow the heap", i)
				}
				// The pushed slot is wherever the sift left it; recover it
				// by its unique sequence number.
				model = append(model, slotBySeq(t, a, e.seq))
			case b < 192: // deliver: pop the minimum
				if a.Len() == 0 {
					continue
				}
				wantSlot := minLive()
				want := a.slots[wantSlot]
				got := a.pop()
				if got.at != want.at || got.seq != want.seq {
					t.Fatalf("op %d: popped (at=%v seq=%d), model expects (at=%v seq=%d)",
						i, got.at, got.seq, want.at, want.seq)
				}
				dropFromModel(wantSlot)
			default: // cancel: remove a pseudo-random live slot
				if a.Len() == 0 {
					continue
				}
				s := model[int(b)%len(model)]
				e := a.remove(s)
				if a.slots[s].pos != freePos {
					t.Fatalf("op %d: removed slot %d still has pos %d", i, s, a.slots[s].pos)
				}
				_ = e
				dropFromModel(s)
			}
			if err := a.check(); err != nil {
				t.Fatalf("op %d (byte %d): arena invariant broken: %v", i, b, err)
			}
			if a.Len() != len(model) {
				t.Fatalf("op %d: arena holds %d events, model %d", i, a.Len(), len(model))
			}
		}
		// Drain: the survivors must come out in exact (at, seq) order.
		var prev event[int]
		first := true
		for a.Len() > 0 {
			e := a.pop()
			if !first && (e.at < prev.at || (e.at == prev.at && e.seq < prev.seq)) {
				t.Fatalf("drain out of order: (at=%v seq=%d) after (at=%v seq=%d)",
					e.at, e.seq, prev.at, prev.seq)
			}
			prev, first = e, false
			if err := a.check(); err != nil {
				t.Fatalf("drain: arena invariant broken: %v", err)
			}
		}
		// Everything released: a Reset-free full drain leaves slots == free.
		if err := a.check(); err != nil {
			t.Fatalf("after drain: %v", err)
		}
	})
}

// slotBySeq finds the live slot holding the event with the given seq.
func slotBySeq(t *testing.T, a *Arena[int], seq uint64) int32 {
	t.Helper()
	for _, en := range a.heap {
		if en.seq == seq {
			return en.slot
		}
	}
	t.Fatalf("pushed event seq %d not found in heap", seq)
	return -1
}

// TestArenaResetKeepsCapacity pins reset-not-reallocate: Reset empties
// the arena but keeps the grown slot storage for the next simulation.
func TestArenaResetKeepsCapacity(t *testing.T) {
	a := NewArena[string]()
	for i := 0; i < 100; i++ {
		e := event[string]{at: Time(i), seq: uint64(i), load: "x"}
		a.push(&e)
	}
	grown := a.Cap()
	if grown < 100 {
		t.Fatalf("Cap = %d after 100 pushes", grown)
	}
	a.Reset()
	if a.Len() != 0 {
		t.Fatalf("Len = %d after Reset", a.Len())
	}
	if a.Cap() != grown {
		t.Fatalf("Reset dropped capacity: %d -> %d", grown, a.Cap())
	}
	if err := a.check(); err != nil {
		t.Fatalf("after Reset: %v", err)
	}
}

// TestArenaFreeListRecycles pins the intrusive free list: popped slots
// are reused before the slab grows.
func TestArenaFreeListRecycles(t *testing.T) {
	a := NewArena[int]()
	for i := 0; i < 8; i++ {
		e := event[int]{at: Time(i), seq: uint64(i)}
		a.push(&e)
	}
	for i := 0; i < 8; i++ {
		a.pop()
	}
	slab := len(a.slots)
	for i := 0; i < 8; i++ {
		e := event[int]{at: Time(i), seq: uint64(100 + i)}
		a.push(&e)
	}
	if len(a.slots) != slab {
		t.Fatalf("slab grew %d -> %d although %d slots were free", slab, len(a.slots), slab)
	}
	if err := a.check(); err != nil {
		t.Fatal(err)
	}
}

// TestLegacyPopClearsSlot is the regression test for the leak fixed in
// this change: the legacy heap's Pop must nil the vacated backing-array
// slot instead of pinning the dead *event for the rest of the run.
func TestLegacyPopClearsSlot(t *testing.T) {
	h := &legacyHeap[int]{}
	*h = append(*h, &event[int]{at: 1}, &event[int]{at: 2})
	// container/heap calls Pop after swapping the min to the end; call it
	// directly the same way.
	if got := h.Pop().(*event[int]); got.at != 2 {
		t.Fatalf("popped at=%v", got.at)
	}
	backing := (*h)[:cap(*h)][len(*h)]
	if backing != nil {
		t.Fatal("Pop left the dead *event pinned in the backing array")
	}
}
