// Package msgnet is a deterministic discrete-event simulator for
// asynchronous message-passing networks, the substrate of Section 5 of the
// paper. Nodes exchange messages over directed links with configurable
// propagation delay, jitter, loss and duplication; nodes also set local
// timers. Every source of nondeterminism draws from one seeded RNG, so a
// simulation is a pure function of (topology, handlers, seed).
//
// The paper's link model is honored: "each communication link can transmit
// only one message in each direction at a time — a node v_i can send a
// message to v_j only if there is no message transiting on the link." A
// Send while the link is busy is therefore silently dropped (the result is
// reported so callers can count suppressions). This back-pressure is what
// keeps the cached sensornet transform's echo storm finite.
package msgnet

import (
	"container/heap"
	"fmt"
	"math/rand"

	"ssrmin/internal/obs"
)

// Time is simulated time in seconds.
type Time float64

// LinkParams configures one directed link.
type LinkParams struct {
	// Delay is the base propagation delay of a message.
	Delay Time
	// Jitter adds a uniform random extra delay in [0, Jitter).
	Jitter Time
	// LossProb is the probability that a message is lost in transit.
	LossProb float64
	// DupProb is the probability that a message is delivered twice (the
	// duplicate arrives after an extra jitter draw). A duplicate is the
	// same frame echoing on the medium, so it keeps the link busy until
	// its own arrival: the one-message-per-direction rule applies to the
	// duplicate too.
	DupProb float64
	// CorruptProb is the probability that a message is delivered with a
	// corrupted payload, produced by the network's Corrupt hook. Without a
	// hook, corruption degenerates to loss.
	CorruptProb float64
}

// Handler is the behaviour of one node.
type Handler interface {
	// Start runs once at time zero, before any delivery.
	Start(ctx *Context)
	// Receive runs on each message delivery.
	Receive(ctx *Context, from int, payload any)
	// Timer runs when a timer set via Context.After fires.
	Timer(ctx *Context, kind int)
}

// Context is the interface a handler uses to interact with the network. A
// Context is only valid for the duration of the callback it is passed to.
type Context struct {
	net  *Network
	node int
}

// ID returns the node's index.
func (c *Context) ID() int { return c.node }

// Now returns the current simulated time.
func (c *Context) Now() Time { return c.net.now }

// Rand returns the simulation RNG (shared, deterministic).
func (c *Context) Rand() *rand.Rand { return c.net.rng }

// N returns the number of nodes.
func (c *Context) N() int { return len(c.net.handlers) }

// Send transmits payload to node `to` over the configured link. It
// reports whether the message entered the link: false when no link exists,
// when the link is still busy with an earlier message (the paper's
// one-message-per-direction rule), or when the loss coin eats it.
func (c *Context) Send(to int, payload any) bool {
	return c.net.send(c.node, to, payload)
}

// After schedules a timer callback for the node after d time units. Kind
// is handed back to the Timer callback.
func (c *Context) After(d Time, kind int) {
	if d < 0 {
		panic("msgnet: negative timer delay")
	}
	c.net.push(&event{
		at:    c.net.now + d,
		kind:  evTimer,
		node:  c.node,
		tkind: kind,
	})
}

type evKind uint8

const (
	evTimer evKind = iota
	evDeliver
)

type event struct {
	at    Time
	seq   uint64 // tiebreaker for determinism
	kind  evKind
	node  int // destination node
	from  int // sender (evDeliver)
	tkind int // timer kind (evTimer)
	load  any // payload (evDeliver)
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() any     { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }

type link struct {
	params LinkParams
	// busyUntil is the delivery time of the message currently in transit;
	// the link accepts a new message only when now >= busyUntil.
	busyUntil Time
	// down marks an outage: every send is dropped while true.
	down bool
}

// TapKind classifies a TapEvent.
type TapKind uint8

// Tap event kinds.
const (
	// TapSend: a message entered a link (From -> Node).
	TapSend TapKind = iota
	// TapSuppressed: a send was refused because the link was busy.
	TapSuppressed
	// TapLost: the loss coin (or a cut link) ate a message.
	TapLost
	// TapCorrupted: the corruption coin hit a message.
	TapCorrupted
	// TapDeliver: a message was delivered (From -> Node).
	TapDeliver
	// TapTimer: a timer fired at Node.
	TapTimer
	// TapDup: the duplication coin scheduled a second delivery of the
	// frame just sent (From -> Node). Emitted at send time; the duplicate's
	// arrival is a plain TapDeliver.
	TapDup
)

// String returns a short mnemonic.
func (k TapKind) String() string {
	switch k {
	case TapSend:
		return "send"
	case TapSuppressed:
		return "suppressed"
	case TapLost:
		return "lost"
	case TapCorrupted:
		return "corrupted"
	case TapDeliver:
		return "deliver"
	case TapTimer:
		return "timer"
	case TapDup:
		return "dup"
	}
	return "unknown"
}

// TapEvent is one network-level action.
type TapEvent struct {
	// At is the simulated time of the action.
	At Time
	// Kind classifies it.
	Kind TapKind
	// Node is the acting/receiving node; From the sender where relevant.
	Node, From int
}

func (n *Network) tap(e TapEvent) {
	if n.Tap != nil {
		n.Tap(e)
	}
}

// Stats counts network-level events.
type Stats struct {
	// Sent counts messages accepted onto a link.
	Sent int
	// Suppressed counts sends refused because the link was busy.
	Suppressed int
	// Lost counts messages eaten by the loss coin.
	Lost int
	// Duplicated counts extra deliveries scheduled by the duplication
	// coin. A duplicate occupies its link until it arrives, so sends
	// attempted in that window count under Suppressed, exactly as for an
	// ordinary in-flight message.
	Duplicated int
	// Corrupted counts messages hit by the corruption coin.
	Corrupted int
	// Delivered counts Receive callbacks.
	Delivered int
	// Timers counts Timer callbacks.
	Timers int
}

// Network is a discrete-event simulation instance.
type Network struct {
	handlers []Handler
	links    map[[2]int]*link
	pq       eventHeap
	now      Time
	seq      uint64
	rng      *rand.Rand
	started  bool

	// Observer, when non-nil, runs after every processed event (and once
	// after all Start callbacks). Observers read global state through the
	// handlers, e.g. to record token-count timelines.
	Observer func(now Time)

	// LossEnabled gates the LossProb coins; fault schedules flip it.
	LossEnabled bool

	// Tap, when non-nil, receives a TapEvent for every network-level
	// action (send, suppression, loss, corruption, delivery, timer) — the
	// feed for space-time diagrams and debugging.
	Tap func(TapEvent)

	// Corrupt, when non-nil, rewrites a payload hit by a CorruptProb coin
	// (e.g. into a random state). When nil, corrupted messages are
	// dropped instead — a checksum would have rejected them anyway.
	Corrupt func(rng *rand.Rand, payload any) any

	// Obs, when non-nil, receives message send/recv/drop counters and
	// events; times are simulated seconds. Suppressed, lost and
	// checksum-discarded messages all count as drops.
	Obs *obs.Observer

	stats Stats
}

// New creates a network of the given handlers with no links. Seed fixes
// all randomness.
func New(handlers []Handler, seed int64) *Network {
	return &Network{
		handlers:    handlers,
		links:       make(map[[2]int]*link),
		rng:         rand.New(rand.NewSource(seed)),
		LossEnabled: true,
	}
}

// AddNode appends an extra handler (e.g. a fault controller with no
// links) and returns its node id. It must be called before the simulation
// starts.
func (n *Network) AddNode(h Handler) int {
	if n.started {
		panic("msgnet: AddNode after start")
	}
	n.handlers = append(n.handlers, h)
	return len(n.handlers) - 1
}

// AddLink installs a directed link from a to b.
func (n *Network) AddLink(a, b int, p LinkParams) {
	if p.Delay < 0 || p.Jitter < 0 || p.LossProb < 0 || p.LossProb > 1 ||
		p.DupProb < 0 || p.DupProb > 1 || p.CorruptProb < 0 || p.CorruptProb > 1 {
		panic(fmt.Sprintf("msgnet: bad link params %+v", p))
	}
	n.links[[2]int{a, b}] = &link{params: p}
}

// RingLinks installs bidirectional ring links between consecutive nodes
// with identical parameters.
func (n *Network) RingLinks(p LinkParams) {
	size := len(n.handlers)
	for i := 0; i < size; i++ {
		j := (i + 1) % size
		n.AddLink(i, j, p)
		n.AddLink(j, i, p)
	}
}

// Stats returns a copy of the network counters.
func (n *Network) Stats() Stats { return n.stats }

// Now returns current simulated time.
func (n *Network) Now() Time { return n.now }

func (n *Network) push(e *event) {
	e.seq = n.seq
	n.seq++
	heap.Push(&n.pq, e)
}

// SetLinkUp raises or cuts the directed link from a to b. Messages sent
// into a cut link are dropped (and counted as lost). Cutting both
// directions of one ring edge simulates a cable cut / radio outage.
func (n *Network) SetLinkUp(a, b int, up bool) {
	l, ok := n.links[[2]int{a, b}]
	if !ok {
		panic(fmt.Sprintf("msgnet: no link %d->%d", a, b))
	}
	l.down = !up
}

func (n *Network) send(from, to int, payload any) bool {
	l, ok := n.links[[2]int{from, to}]
	if !ok {
		return false
	}
	if l.down {
		n.stats.Lost++
		n.tap(TapEvent{At: n.now, Kind: TapLost, Node: to, From: from})
		if o := n.Obs; o != nil {
			o.MsgDropped(float64(n.now), to, from)
		}
		return false
	}
	if n.now < l.busyUntil {
		n.stats.Suppressed++
		n.tap(TapEvent{At: n.now, Kind: TapSuppressed, Node: to, From: from})
		if o := n.Obs; o != nil {
			o.MsgDropped(float64(n.now), to, from)
		}
		return false
	}
	// RNG draw order per admitted send attempt is part of the seeded-trace
	// contract (TestSeededCoinDrawOrderPinned): loss coin, corruption coin,
	// arrival jitter, duplication coin, duplicate-arrival jitter. Coins
	// whose probability is zero draw nothing. Reordering these draws
	// silently shifts every seeded trace downstream.
	if n.LossEnabled && l.params.LossProb > 0 && n.rng.Float64() < l.params.LossProb {
		// The message occupies the link for its nominal flight time even
		// though it will never arrive (the medium was busy transmitting
		// garbage).
		n.stats.Lost++
		n.tap(TapEvent{At: n.now, Kind: TapLost, Node: to, From: from})
		if o := n.Obs; o != nil {
			o.MsgDropped(float64(n.now), to, from)
		}
		l.busyUntil = n.now + l.params.Delay + n.jitter(l)
		return false
	}
	if l.params.CorruptProb > 0 && n.rng.Float64() < l.params.CorruptProb {
		n.stats.Corrupted++
		n.tap(TapEvent{At: n.now, Kind: TapCorrupted, Node: to, From: from})
		if n.Corrupt == nil {
			// No corruption hook: model a checksum that discards the
			// damaged frame (it still occupied the medium).
			if o := n.Obs; o != nil {
				o.MsgDropped(float64(n.now), to, from)
			}
			l.busyUntil = n.now + l.params.Delay + n.jitter(l)
			return false
		}
		payload = n.Corrupt(n.rng, payload)
	}
	at := n.now + l.params.Delay + n.jitter(l)
	l.busyUntil = at
	n.push(&event{at: at, kind: evDeliver, node: to, from: from, load: payload})
	n.stats.Sent++
	n.tap(TapEvent{At: n.now, Kind: TapSend, Node: to, From: from})
	if o := n.Obs; o != nil {
		o.MsgSent(float64(n.now), from, to)
	}
	if l.params.DupProb > 0 && n.rng.Float64() < l.params.DupProb {
		// The duplicate is the same frame echoing on the medium, so it
		// occupies the link until its own (later) arrival — Section 5's
		// one-message-per-direction rule, which the graceful-handover
		// argument's back-pressure depends on.
		dupAt := at + n.jitter(l)
		l.busyUntil = dupAt
		n.push(&event{at: dupAt, kind: evDeliver, node: to, from: from, load: payload})
		n.stats.Duplicated++
		n.tap(TapEvent{At: n.now, Kind: TapDup, Node: to, From: from})
	}
	return true
}

func (n *Network) jitter(l *link) Time {
	if l.params.Jitter <= 0 {
		return 0
	}
	return Time(n.rng.Float64()) * l.params.Jitter
}

// start invokes Start on every handler (once).
func (n *Network) start() {
	if n.started {
		return
	}
	n.started = true
	for i, h := range n.handlers {
		h.Start(&Context{net: n, node: i})
	}
	if n.Observer != nil {
		n.Observer(n.now)
	}
}

// Step processes the next event. It reports false when the queue is empty.
func (n *Network) Step() bool {
	n.start()
	if n.pq.Len() == 0 {
		return false
	}
	e := heap.Pop(&n.pq).(*event)
	if e.at < n.now {
		panic("msgnet: event in the past")
	}
	n.now = e.at
	ctx := &Context{net: n, node: e.node}
	switch e.kind {
	case evDeliver:
		n.stats.Delivered++
		n.tap(TapEvent{At: n.now, Kind: TapDeliver, Node: e.node, From: e.from})
		if o := n.Obs; o != nil {
			o.MsgRecv(float64(n.now), e.node, e.from)
		}
		n.handlers[e.node].Receive(ctx, e.from, e.load)
	case evTimer:
		n.stats.Timers++
		n.tap(TapEvent{At: n.now, Kind: TapTimer, Node: e.node})
		n.handlers[e.node].Timer(ctx, e.tkind)
	}
	if n.Observer != nil {
		n.Observer(n.now)
	}
	return true
}

// Run processes events until simulated time exceeds until or the event
// queue drains. It returns the number of events processed.
func (n *Network) Run(until Time) int {
	n.start()
	count := 0
	for n.pq.Len() > 0 && n.pq[0].at <= until {
		n.Step()
		count++
	}
	if n.now < until {
		n.now = until
	}
	return count
}
