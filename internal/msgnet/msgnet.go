// Package msgnet is a deterministic discrete-event simulator for
// asynchronous message-passing networks, the substrate of Section 5 of the
// paper. Nodes exchange messages over directed links with configurable
// propagation delay, jitter, loss and duplication; nodes also set local
// timers. Every source of nondeterminism draws from one seeded RNG, so a
// simulation is a pure function of (topology, handlers, seed).
//
// The paper's link model is honored: "each communication link can transmit
// only one message in each direction at a time — a node v_i can send a
// message to v_j only if there is no message transiting on the link." A
// Send while the link is busy is therefore silently dropped (the result is
// reported so callers can count suppressions). This back-pressure is what
// keeps the cached sensornet transform's echo storm finite.
//
// The event queue has two interchangeable engines. The default is a
// zero-allocation arena (see Arena): value-typed events in an index-based
// 4-ary heap with an intrusive free list, payloads held as the concrete
// type parameter P instead of boxed in `any`. Setting Legacy before the
// first event selects the seed implementation's boxed container/heap
// queue, kept as the differential reference (see engine_diff_test.go): the
// (at, seq) tie-break makes the pop order — and therefore every seeded
// trace — independent of which engine runs it.
package msgnet

import (
	"container/heap"
	"fmt"
	"math/rand"

	"ssrmin/internal/obs"
)

// Time is simulated time in seconds.
type Time float64

// LinkParams configures one directed link.
type LinkParams struct {
	// Delay is the base propagation delay of a message.
	Delay Time
	// Jitter adds a uniform random extra delay in [0, Jitter).
	Jitter Time
	// LossProb is the probability that a message is lost in transit.
	LossProb float64
	// DupProb is the probability that a message is delivered twice (the
	// duplicate arrives after an extra jitter draw). A duplicate is the
	// same frame echoing on the medium, so it keeps the link busy until
	// its own arrival: the one-message-per-direction rule applies to the
	// duplicate too.
	DupProb float64
	// CorruptProb is the probability that a message is delivered with a
	// corrupted payload, produced by the network's Corrupt hook. Without a
	// hook, corruption degenerates to loss.
	CorruptProb float64
}

// Handler is the behaviour of one node. P is the network's frame type:
// handlers receive payloads as concrete values, never boxed.
type Handler[P any] interface {
	// Start runs once at time zero, before any delivery.
	Start(ctx *Context[P])
	// Receive runs on each message delivery.
	Receive(ctx *Context[P], from int, payload P)
	// Timer runs when a timer set via Context.After fires.
	Timer(ctx *Context[P], kind int)
}

// Context is the interface a handler uses to interact with the network. A
// Context is only valid for the duration of the callback it is passed to.
type Context[P any] struct {
	net  *Network[P]
	node int
}

// ID returns the node's index.
func (c *Context[P]) ID() int { return c.node }

// Now returns the current simulated time.
func (c *Context[P]) Now() Time { return c.net.now }

// Rand returns the simulation RNG (shared, deterministic).
func (c *Context[P]) Rand() *rand.Rand { return c.net.rng }

// N returns the number of nodes.
func (c *Context[P]) N() int { return len(c.net.handlers) }

// Send transmits payload to node `to` over the configured link. It
// reports whether the message entered the link: false when no link exists,
// when the link is still busy with an earlier message (the paper's
// one-message-per-direction rule), or when the loss coin eats it.
func (c *Context[P]) Send(to int, payload P) bool {
	return c.net.send(c.node, to, payload)
}

// After schedules a timer callback for the node after d time units. Kind
// is handed back to the Timer callback.
func (c *Context[P]) After(d Time, kind int) {
	if d < 0 {
		panic("msgnet: negative timer delay")
	}
	c.net.pushTimer(c.net.now+d, int32(c.node), int32(kind))
}

type evKind uint8

const (
	evTimer evKind = iota
	evDeliver
)

// event is one scheduled occurrence. It is a value type: the arena engine
// stores events in place and recycles the slots, so a simulated message
// costs no heap allocation. The legacy reference engine boxes the same
// struct behind a pointer, exactly as the seed implementation did.
type event[P any] struct {
	at   Time
	seq  uint64 // tiebreaker for determinism
	load P      // payload (evDeliver)
	// next links free arena slots (intrusive free list); pos marks the
	// slot live (livePos) or free (freePos). Both are unused by the
	// legacy engine.
	next, pos int32
	node      int32 // destination node
	from      int32 // sender (evDeliver)
	tkind     int32 // timer kind (evTimer)
	kind      evKind
}

type link struct {
	params LinkParams
	// busyUntil is the delivery time of the message currently in transit;
	// the link accepts a new message only when now >= busyUntil.
	busyUntil Time
	// down marks an outage: every send is dropped while true.
	down bool
}

// TapKind classifies a TapEvent.
type TapKind uint8

// Tap event kinds.
const (
	// TapSend: a message entered a link (From -> Node).
	TapSend TapKind = iota
	// TapSuppressed: a send was refused because the link was busy.
	TapSuppressed
	// TapLost: the loss coin (or a cut link) ate a message.
	TapLost
	// TapCorrupted: the corruption coin hit a message.
	TapCorrupted
	// TapDeliver: a message was delivered (From -> Node).
	TapDeliver
	// TapTimer: a timer fired at Node.
	TapTimer
	// TapDup: the duplication coin scheduled a second delivery of the
	// frame just sent (From -> Node). Emitted at send time; the duplicate's
	// arrival is a plain TapDeliver.
	TapDup
)

// String returns a short mnemonic.
func (k TapKind) String() string {
	switch k {
	case TapSend:
		return "send"
	case TapSuppressed:
		return "suppressed"
	case TapLost:
		return "lost"
	case TapCorrupted:
		return "corrupted"
	case TapDeliver:
		return "deliver"
	case TapTimer:
		return "timer"
	case TapDup:
		return "dup"
	}
	return "unknown"
}

// TapEvent is one network-level action. It is deliberately not generic:
// tap consumers (space-time diagrams, the crosscheck link monitor) watch
// the network layer and never need the payload type.
type TapEvent struct {
	// At is the simulated time of the action.
	At Time
	// Kind classifies it.
	Kind TapKind
	// Node is the acting/receiving node; From the sender where relevant.
	Node, From int
}

func (n *Network[P]) tap(e TapEvent) {
	if n.Tap != nil {
		n.Tap(e)
	}
}

// Stats counts network-level events.
type Stats struct {
	// Sent counts messages accepted onto a link.
	Sent int
	// Suppressed counts sends refused because the link was busy.
	Suppressed int
	// Lost counts messages eaten by the loss coin.
	Lost int
	// Duplicated counts extra deliveries scheduled by the duplication
	// coin. A duplicate occupies its link until it arrives, so sends
	// attempted in that window count under Suppressed, exactly as for an
	// ordinary in-flight message.
	Duplicated int
	// Corrupted counts messages hit by the corruption coin.
	Corrupted int
	// Delivered counts Receive callbacks.
	Delivered int
	// Timers counts Timer callbacks.
	Timers int
}

// Network is a discrete-event simulation instance over frame type P.
type Network[P any] struct {
	handlers []Handler[P]
	links    map[[2]int]*link
	// linkAt is the compiled link table — linkAt[from*n+to] — built when
	// the simulation starts so the per-send map lookup leaves the hot
	// path. Entries alias the map's *link values, so SetLinkUp outages
	// are visible through both.
	linkAt  []*link
	arena   *Arena[P]
	legacy  *legacyHeap[P]
	now     Time
	seq     uint64
	rng     *rand.Rand
	started bool
	// ctx is the reusable callback context handed out by the arena
	// engine; the legacy engine allocates a fresh Context per callback,
	// as the seed implementation did.
	ctx Context[P]

	// Observer, when non-nil, runs after every processed event (and once
	// after all Start callbacks). Observers read global state through the
	// handlers, e.g. to record token-count timelines.
	Observer func(now Time)

	// LossEnabled gates the LossProb coins; fault schedules flip it.
	LossEnabled bool

	// Tap, when non-nil, receives a TapEvent for every network-level
	// action (send, suppression, loss, corruption, delivery, timer) — the
	// feed for space-time diagrams and debugging.
	Tap func(TapEvent)

	// Corrupt, when non-nil, rewrites a payload hit by a CorruptProb coin
	// (e.g. into a random state). When nil, corrupted messages are
	// dropped instead — a checksum would have rejected them anyway.
	Corrupt func(rng *rand.Rand, payload P) P

	// Obs, when non-nil, receives message send/recv/drop counters and
	// events; times are simulated seconds. Suppressed, lost and
	// checksum-discarded messages all count as drops.
	Obs *obs.Observer

	// Legacy, when set before the first event is scheduled, runs the
	// simulation on the seed implementation's boxed container/heap queue
	// instead of the arena. Kept as the differential reference engine:
	// both engines must produce bit-identical tap streams for any seed.
	Legacy bool

	stats Stats
}

// New creates a network of the given handlers with no links. Seed fixes
// all randomness.
func New[P any](handlers []Handler[P], seed int64) *Network[P] {
	n := &Network[P]{
		handlers:    handlers,
		links:       make(map[[2]int]*link),
		rng:         rand.New(rand.NewSource(seed)),
		LossEnabled: true,
	}
	n.ctx.net = n
	return n
}

// UseArena installs a caller-owned event arena (e.g. one drawn from a
// parsweep.Pool) so consecutive simulations reuse the same slot storage
// instead of growing a fresh one. The arena is Reset. It must be called
// before any event is scheduled and is incompatible with Legacy.
func (n *Network[P]) UseArena(a *Arena[P]) {
	if n.started {
		panic("msgnet: UseArena after start")
	}
	if n.Legacy || n.legacy != nil {
		panic("msgnet: UseArena on a Legacy-engine network")
	}
	if n.arena != nil && n.arena.Len() > 0 {
		panic("msgnet: UseArena after events were scheduled")
	}
	a.Reset()
	n.arena = a
}

// AddNode appends an extra handler (e.g. a fault controller with no
// links) and returns its node id. It must be called before the simulation
// starts.
func (n *Network[P]) AddNode(h Handler[P]) int {
	if n.started {
		panic("msgnet: AddNode after start")
	}
	n.handlers = append(n.handlers, h)
	return len(n.handlers) - 1
}

// AddLink installs a directed link from a to b.
func (n *Network[P]) AddLink(a, b int, p LinkParams) {
	if p.Delay < 0 || p.Jitter < 0 || p.LossProb < 0 || p.LossProb > 1 ||
		p.DupProb < 0 || p.DupProb > 1 || p.CorruptProb < 0 || p.CorruptProb > 1 {
		panic(fmt.Sprintf("msgnet: bad link params %+v", p))
	}
	//lint:ignore hotpath topology setup, runs once per ring
	l := &link{params: p}
	n.links[[2]int{a, b}] = l
	if n.linkAt != nil {
		nn := len(n.handlers)
		if a >= 0 && a < nn && b >= 0 && b < nn {
			n.linkAt[a*nn+b] = l
		}
	}
}

// RingLinks installs bidirectional ring links between consecutive nodes
// with identical parameters.
func (n *Network[P]) RingLinks(p LinkParams) {
	size := len(n.handlers)
	for i := 0; i < size; i++ {
		j := (i + 1) % size
		n.AddLink(i, j, p)
		n.AddLink(j, i, p)
	}
}

// Stats returns a copy of the network counters.
func (n *Network[P]) Stats() Stats { return n.stats }

// Now returns current simulated time.
func (n *Network[P]) Now() Time { return n.now }

// ensureQueue picks the event engine the first time one is needed.
func (n *Network[P]) ensureQueue() {
	if n.legacy != nil || n.arena != nil {
		return
	}
	if n.Legacy {
		//lint:ignore hotpath engine selection, runs once per simulation
		n.legacy = new(legacyHeap[P])
		return
	}
	n.arena = NewArena[P]()
}

// push schedules *e, stamping its sequence number. It takes a pointer so
// the 72-byte event is written once by the caller and copied once into
// its engine slot, not passed through intermediate frames.
func (n *Network[P]) push(e *event[P]) {
	e.seq = n.seq
	n.seq++
	n.ensureQueue()
	if n.legacy != nil {
		boxed := *e
		heap.Push(n.legacy, &boxed)
		return
	}
	n.arena.push(e)
}

// pushDeliver schedules a delivery without staging the event on the
// caller's stack: on the arena engine the fields are written straight
// into the recycled slot.
func (n *Network[P]) pushDeliver(at Time, to, from int32, payload *P) {
	if n.legacy != nil || n.arena == nil {
		e := event[P]{at: at, kind: evDeliver, node: to, from: from, load: *payload}
		n.push(&e)
		return
	}
	seq := n.seq
	n.seq++
	a := n.arena
	s := a.alloc()
	sl := &a.slots[s]
	sl.at = at
	sl.seq = seq
	sl.load = *payload
	sl.next = freePos
	sl.pos = livePos
	sl.node = to
	sl.from = from
	sl.tkind = 0
	sl.kind = evDeliver
	a.heap = append(a.heap, heapEntry{})
	a.up(len(a.heap)-1, heapEntry{at: at, seq: seq, slot: s})
}

// pushTimer is pushDeliver for timer events.
func (n *Network[P]) pushTimer(at Time, node, tkind int32) {
	if n.legacy != nil || n.arena == nil {
		e := event[P]{at: at, kind: evTimer, node: node, tkind: tkind}
		n.push(&e)
		return
	}
	seq := n.seq
	n.seq++
	a := n.arena
	s := a.alloc()
	sl := &a.slots[s]
	var zero P
	sl.at = at
	sl.seq = seq
	sl.load = zero
	sl.next = freePos
	sl.pos = livePos
	sl.node = node
	sl.from = 0
	sl.tkind = tkind
	sl.kind = evTimer
	a.heap = append(a.heap, heapEntry{})
	a.up(len(a.heap)-1, heapEntry{at: at, seq: seq, slot: s})
}

func (n *Network[P]) qLen() int {
	if n.legacy != nil {
		return n.legacy.Len()
	}
	if n.arena == nil {
		return 0
	}
	return n.arena.Len()
}

// qPeekAt returns the timestamp of the next event; the queue must be
// non-empty.
func (n *Network[P]) qPeekAt() Time {
	if n.legacy != nil {
		return (*n.legacy)[0].at
	}
	return n.arena.heap[0].at
}

func (n *Network[P]) qPop() event[P] {
	if n.legacy != nil {
		return *heap.Pop(n.legacy).(*event[P])
	}
	return n.arena.pop()
}

// callbackCtx returns the Context for a callback at node. The arena
// engine reuses one Context per network; the legacy engine allocates, as
// the seed implementation did.
func (n *Network[P]) callbackCtx(node int) *Context[P] {
	if n.legacy != nil || n.Legacy {
		//lint:ignore hotpath legacy reference engine allocates by design
		return &Context[P]{net: n, node: node}
	}
	n.ctx.node = node
	return &n.ctx
}

// SetLinkUp raises or cuts the directed link from a to b. Messages sent
// into a cut link are dropped (and counted as lost). Cutting both
// directions of one ring edge simulates a cable cut / radio outage.
func (n *Network[P]) SetLinkUp(a, b int, up bool) {
	l, ok := n.links[[2]int{a, b}]
	if !ok {
		panic(fmt.Sprintf("msgnet: no link %d->%d", a, b))
	}
	l.down = !up
}

// HasLink reports whether the directed link a->b currently exists (cut
// links exist; removed links do not).
func (n *Network[P]) HasLink(a, b int) bool {
	_, ok := n.links[[2]int{a, b}]
	return ok
}

// RemoveLink tears down the directed link from a to b (ring churn: the
// edge no longer exists, unlike a SetLinkUp outage which keeps it cut but
// present). Frames already in transit on the link are NOT cancelled —
// they were on the medium when the topology changed and still arrive;
// receivers are expected to discard frames from ex-neighbors. Removing a
// link that does not exist is a no-op, so churn orchestration need not
// track which edges survived earlier splices.
func (n *Network[P]) RemoveLink(a, b int) {
	delete(n.links, [2]int{a, b})
	if n.linkAt != nil {
		nn := len(n.handlers)
		if a >= 0 && a < nn && b >= 0 && b < nn {
			n.linkAt[a*nn+b] = nil
		}
	}
}

// Rand returns the simulation RNG. External drivers (fault injectors,
// churn orchestration) draw from it so their randomness shares the one
// seeded stream that makes a run a pure function of (topology, seed).
func (n *Network[P]) Rand() *rand.Rand { return n.rng }

// SendFrom injects a send from node `from` outside a handler callback —
// the hook churn orchestration uses to make a freshly joined node
// announce its state at the splice instant. It is the same path as
// Context.Send: the link-busy rule, loss/corruption/duplication coins and
// tap stream all apply identically.
func (n *Network[P]) SendFrom(from, to int, payload P) bool {
	return n.send(from, to, payload)
}

// StartTimer arms a timer for node after d time units, outside a handler
// callback (churn orchestration arming a joiner's refresh timer). Kind is
// handed back to the node's Timer callback, exactly as Context.After.
func (n *Network[P]) StartTimer(node int, d Time, kind int) {
	if d < 0 {
		panic("msgnet: negative timer delay")
	}
	if node < 0 || node >= len(n.handlers) {
		panic(fmt.Sprintf("msgnet: StartTimer for unknown node %d", node))
	}
	n.pushTimer(n.now+d, int32(node), int32(kind))
}

// linkFromTo resolves the directed link on the hot path: one bounds check
// and one slice index once the table is compiled, with the construction
// map as the pre-start fallback.
func (n *Network[P]) linkFromTo(from, to int) *link {
	if n.linkAt != nil {
		nn := len(n.handlers)
		if from < 0 || from >= nn || to < 0 || to >= nn {
			return nil
		}
		return n.linkAt[from*nn+to]
	}
	return n.links[[2]int{from, to}]
}

func (n *Network[P]) send(from, to int, payload P) bool {
	l := n.linkFromTo(from, to)
	if l == nil {
		return false
	}
	if l.down {
		n.stats.Lost++
		n.tap(TapEvent{At: n.now, Kind: TapLost, Node: to, From: from})
		if o := n.Obs; o != nil {
			o.MsgDropped(float64(n.now), to, from)
		}
		return false
	}
	if n.now < l.busyUntil {
		n.stats.Suppressed++
		n.tap(TapEvent{At: n.now, Kind: TapSuppressed, Node: to, From: from})
		if o := n.Obs; o != nil {
			o.MsgDropped(float64(n.now), to, from)
		}
		return false
	}
	// RNG draw order per admitted send attempt is part of the seeded-trace
	// contract (TestSeededCoinDrawOrderPinned): loss coin, corruption coin,
	// arrival jitter, duplication coin, duplicate-arrival jitter. Coins
	// whose probability is zero draw nothing. Reordering these draws
	// silently shifts every seeded trace downstream.
	if n.LossEnabled && l.params.LossProb > 0 && n.rng.Float64() < l.params.LossProb {
		// The message occupies the link for its nominal flight time even
		// though it will never arrive (the medium was busy transmitting
		// garbage).
		n.stats.Lost++
		n.tap(TapEvent{At: n.now, Kind: TapLost, Node: to, From: from})
		if o := n.Obs; o != nil {
			o.MsgDropped(float64(n.now), to, from)
		}
		l.busyUntil = n.now + l.params.Delay + n.jitter(l)
		return false
	}
	if l.params.CorruptProb > 0 && n.rng.Float64() < l.params.CorruptProb {
		n.stats.Corrupted++
		n.tap(TapEvent{At: n.now, Kind: TapCorrupted, Node: to, From: from})
		if n.Corrupt == nil {
			// No corruption hook: model a checksum that discards the
			// damaged frame (it still occupied the medium).
			if o := n.Obs; o != nil {
				o.MsgDropped(float64(n.now), to, from)
			}
			l.busyUntil = n.now + l.params.Delay + n.jitter(l)
			return false
		}
		payload = n.Corrupt(n.rng, payload)
	}
	at := n.now + l.params.Delay + n.jitter(l)
	l.busyUntil = at
	n.pushDeliver(at, int32(to), int32(from), &payload)
	n.stats.Sent++
	n.tap(TapEvent{At: n.now, Kind: TapSend, Node: to, From: from})
	if o := n.Obs; o != nil {
		o.MsgSent(float64(n.now), from, to)
	}
	if l.params.DupProb > 0 && n.rng.Float64() < l.params.DupProb {
		// The duplicate is the same frame echoing on the medium, so it
		// occupies the link until its own (later) arrival — Section 5's
		// one-message-per-direction rule, which the graceful-handover
		// argument's back-pressure depends on.
		dupAt := at + n.jitter(l)
		l.busyUntil = dupAt
		n.pushDeliver(dupAt, int32(to), int32(from), &payload)
		n.stats.Duplicated++
		n.tap(TapEvent{At: n.now, Kind: TapDup, Node: to, From: from})
	}
	return true
}

func (n *Network[P]) jitter(l *link) Time {
	if l.params.Jitter <= 0 {
		return 0
	}
	return Time(n.rng.Float64()) * l.params.Jitter
}

// compileLinks freezes the construction-time link map into the dense
// from*n+to table. Runs once at start; iteration order is irrelevant
// because every key writes a distinct slot.
func (n *Network[P]) compileLinks() {
	nn := len(n.handlers)
	n.linkAt = make([]*link, nn*nn)
	for key, l := range n.links {
		if key[0] >= 0 && key[0] < nn && key[1] >= 0 && key[1] < nn {
			n.linkAt[key[0]*nn+key[1]] = l
		}
	}
}

// start invokes Start on every handler (once).
func (n *Network[P]) start() {
	if n.started {
		return
	}
	n.started = true
	n.ensureQueue()
	n.compileLinks()
	for i := range n.handlers {
		n.handlers[i].Start(n.callbackCtx(i))
	}
	if n.Observer != nil {
		n.Observer(n.now)
	}
}

// Step processes the next event. It reports false when the queue is empty.
func (n *Network[P]) Step() bool {
	n.start()
	if n.qLen() == 0 {
		return false
	}
	e := n.qPop()
	n.dispatch(&e)
	return true
}

// dispatch advances the clock to *e and runs its callback.
func (n *Network[P]) dispatch(e *event[P]) {
	if e.at < n.now {
		panic("msgnet: event in the past")
	}
	n.now = e.at
	node := int(e.node)
	ctx := n.callbackCtx(node)
	switch e.kind {
	case evDeliver:
		n.stats.Delivered++
		n.tap(TapEvent{At: n.now, Kind: TapDeliver, Node: node, From: int(e.from)})
		if o := n.Obs; o != nil {
			o.MsgRecv(float64(n.now), node, int(e.from))
		}
		n.handlers[node].Receive(ctx, int(e.from), e.load)
	case evTimer:
		n.stats.Timers++
		n.tap(TapEvent{At: n.now, Kind: TapTimer, Node: node})
		n.handlers[node].Timer(ctx, int(e.tkind))
	}
	if n.Observer != nil {
		n.Observer(n.now)
	}
}

// Run processes events until simulated time exceeds until or the event
// queue drains. It returns the number of events processed.
func (n *Network[P]) Run(until Time) int {
	n.start()
	count := 0
	if a := n.arena; a != nil {
		// Arena fast loop: peek/pop directly on the engine, one event
		// copy per step, no per-step engine re-dispatch.
		var e event[P]
		for len(a.heap) > 0 && a.heap[0].at <= until {
			a.popInto(&e)
			n.dispatch(&e)
			count++
		}
	} else {
		for n.qLen() > 0 && n.qPeekAt() <= until {
			n.Step()
			count++
		}
	}
	if n.now < until {
		n.now = until
	}
	return count
}
