// The legacy event queue: the seed implementation's boxed-pointer
// container/heap, kept verbatim (allocations included) as the
// differential reference for the arena engine. A Network with Legacy set
// runs on this queue and must produce a bit-identical tap stream to the
// arena engine for any seed — engine_diff_test.go enforces it. Do not
// optimize this path; its cost is the baseline BENCH_msgnet.json measures
// against.
package msgnet

// legacyHeap implements container/heap over boxed events with the same
// (at, seq) order as the arena heap.
type legacyHeap[P any] []*event[P]

func (h legacyHeap[P]) Len() int { return len(h) }
func (h legacyHeap[P]) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h legacyHeap[P]) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

func (h *legacyHeap[P]) Push(x any) {
	*h = append(*h, x.(*event[P]))
}

func (h *legacyHeap[P]) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	// Nil the vacated slot: the seed version kept the dead *event pointer
	// alive in the backing array for the rest of the run, pinning every
	// popped event (and its payload) against the garbage collector.
	old[n-1] = nil
	*h = old[:n-1]
	return e
}
