// The zero-allocation event engine: a value-typed event arena with an
// intrusive free list, ordered by a 4-ary min-heap whose nodes carry the
// (at, seq) sort key inline. Pushing or popping an event moves small
// value entries, never pointers, and a released slot's payload is zeroed
// so the arena retains nothing — the per-message heap allocation and
// `any` boxing of the legacy engine both disappear. Three layout choices
// keep the sift paths (the only per-event work left) cache-friendly:
// four children per node halves the tree depth and keeps a sibling group
// in one or two cache lines; the inline keys mean a comparison never
// dereferences back into the slot slab; and sifts move a hole instead of
// swapping, writing each displaced entry exactly once and touching no
// other memory. The price is that remove (cancellation) scans the heap
// for its entry — O(live events) — which is fine because the simulator
// never cancels: delivery and timer events always fire.
package msgnet

import "fmt"

// arity is the heap fan-out. Four children per node keeps a whole sibling
// group in one or two cache lines of the entry slice.
const arity = 4

// freePos in a slot's pos field marks it free (on the free list); live
// slots have pos == livePos. The heap does not track per-slot positions —
// that would cost the sift paths a random-access store per level.
const (
	freePos = -1
	livePos = 0
)

// heapEntry is one node of the priority queue: the (at, seq) sort key
// copied inline next to the slot index it orders, so sift comparisons
// stay within the entry slice.
type heapEntry struct {
	at   Time
	seq  uint64
	slot int32
}

// Arena is the reusable storage of the zero-alloc event engine: a slab of
// value-typed event slots plus the keyed heap that orders them. A zero
// Arena is NOT ready to use; call NewArena. Arenas are reusable across
// simulations via Network.UseArena + Reset (reset-not-reallocate), which
// is how parsweep worker pools keep an N-seed sweep at near-zero
// steady-state allocation. An Arena must never be shared by two live
// networks at once.
type Arena[P any] struct {
	slots []event[P]
	heap  []heapEntry
	free  int32 // head of the intrusive free list, freePos when empty
}

// NewArena returns an empty arena.
func NewArena[P any]() *Arena[P] {
	return &Arena[P]{free: freePos}
}

// Len returns the number of scheduled (live) events.
func (a *Arena[P]) Len() int { return len(a.heap) }

// Cap returns the number of event slots the arena has grown to; Reset
// keeps them.
func (a *Arena[P]) Cap() int { return cap(a.slots) }

// Reset empties the arena for reuse, keeping the slot and heap storage.
// Slots are zeroed so payload pointers from the previous simulation are
// not retained.
func (a *Arena[P]) Reset() {
	clear(a.slots)
	a.slots = a.slots[:0]
	a.heap = a.heap[:0]
	a.free = freePos
}

// alloc returns a free slot index, recycling the free list before growing
// the slab.
//
//allocgate:hot
func (a *Arena[P]) alloc() int32 {
	if s := a.free; s >= 0 {
		a.free = a.slots[s].next
		return s
	}
	a.slots = append(a.slots, event[P]{})
	return int32(len(a.slots) - 1)
}

// release puts a slot back on the free list, dropping its payload so the
// arena keeps nothing alive.
//
//allocgate:hot
func (a *Arena[P]) release(s int32) {
	var zero P
	sl := &a.slots[s]
	sl.load = zero
	sl.next = a.free
	sl.pos = freePos
	a.free = s
}

// less is the (at, seq) tie-break that makes pop order — and every seeded
// trace — engine-independent.
func less(x, y heapEntry) bool {
	if x.at != y.at {
		return x.at < y.at
	}
	return x.seq < y.seq
}

// before reports whether slot x's event is ordered before slot y's; the
// slot-indexed twin of less, used by tests that model the arena.
func (a *Arena[P]) before(x, y int32) bool {
	ex, ey := &a.slots[x], &a.slots[y]
	if ex.at != ey.at {
		return ex.at < ey.at
	}
	return ex.seq < ey.seq
}

// push schedules *e. The event is copied once into an arena slot;
// nothing escapes to the garbage collector and e is not retained.
//
//allocgate:hot
func (a *Arena[P]) push(e *event[P]) {
	s := a.alloc()
	e.next = freePos
	e.pos = livePos
	a.slots[s] = *e
	a.heap = append(a.heap, heapEntry{})
	a.up(len(a.heap)-1, heapEntry{at: e.at, seq: e.seq, slot: s})
}

// pop removes and returns the minimum event, releasing its slot.
func (a *Arena[P]) pop() event[P] {
	var e event[P]
	a.popInto(&e)
	return e
}

// popInto removes the minimum event into *e, releasing its slot. The
// out-parameter form lets the run loop reuse one stack slot per step
// instead of copying the event through every return frame.
//
//allocgate:hot
func (a *Arena[P]) popInto(e *event[P]) {
	s := a.heap[0].slot
	*e = a.slots[s]
	last := len(a.heap) - 1
	moved := a.heap[last]
	a.heap = a.heap[:last]
	if last > 0 {
		a.down(0, moved)
	}
	a.release(s)
}

// remove cancels the scheduled event in slot s (which must be live) and
// returns it, releasing the slot. It scans the heap for the entry — the
// hot loop never cancels, so cancellation pays for the sift paths'
// freedom from position bookkeeping.
func (a *Arena[P]) remove(s int32) event[P] {
	e := a.slots[s]
	i := 0
	for a.heap[i].slot != s {
		i++
	}
	last := len(a.heap) - 1
	moved := a.heap[last]
	a.heap = a.heap[:last]
	if i != last {
		// moved may belong above or below the hole; try both directions
		// (at most one sift actually moves it).
		a.down(i, moved)
		j := 0
		for a.heap[j].slot != moved.slot {
			j++
		}
		a.up(j, moved)
	}
	a.release(s)
	return e
}

// up sifts entry e toward the root starting from the hole at heap index
// i. Each displaced entry is written once.
//
//allocgate:hot
func (a *Arena[P]) up(i int, e heapEntry) {
	for i > 0 {
		p := (i - 1) / arity
		if !less(e, a.heap[p]) {
			break
		}
		a.heap[i] = a.heap[p]
		i = p
	}
	a.heap[i] = e
}

// down sifts entry e toward the leaves starting from the hole at heap
// index i.
//
//allocgate:hot
func (a *Arena[P]) down(i int, e heapEntry) {
	n := len(a.heap)
	for {
		first := i*arity + 1
		if first >= n {
			break
		}
		// Scan the sibling group with the running minimum in registers:
		// each entry is loaded exactly once.
		best := first
		bk := a.heap[first]
		last := first + arity
		if last > n {
			last = n
		}
		for c := first + 1; c < last; c++ {
			if ck := a.heap[c]; less(ck, bk) {
				best, bk = c, ck
			}
		}
		if !less(bk, e) {
			break
		}
		a.heap[i] = bk
		i = best
	}
	a.heap[i] = e
}

// check validates the arena invariants — exercised by FuzzArenaInvariants.
// It confirms that the heap and the free list partition the slot slab (no
// event is live twice, none is lost), that every heap entry's inline key
// agrees with its slot and every slot's live/free marker matches which
// side it is on, and that the 4-ary heap property holds under the
// (at, seq) order.
func (a *Arena[P]) check() error {
	//lint:ignore hotpath invariant checker, test-only path
	live := make(map[int32]int, len(a.heap))
	for i, en := range a.heap {
		s := en.slot
		if s < 0 || int(s) >= len(a.slots) {
			return fmt.Errorf("heap[%d] slot %d out of range (%d slots)", i, s, len(a.slots))
		}
		if prev, dup := live[s]; dup {
			return fmt.Errorf("slot %d live twice: heap[%d] and heap[%d]", s, prev, i)
		}
		live[s] = i
		if a.slots[s].pos == freePos {
			return fmt.Errorf("slot %d at heap[%d] is marked free", s, i)
		}
		if en.at != a.slots[s].at || en.seq != a.slots[s].seq {
			return fmt.Errorf("heap[%d] key (at=%v seq=%d) disagrees with slot %d (at=%v seq=%d)",
				i, en.at, en.seq, s, a.slots[s].at, a.slots[s].seq)
		}
		if i > 0 {
			p := (i - 1) / arity
			if less(en, a.heap[p]) {
				return fmt.Errorf("heap property violated: heap[%d] before its parent heap[%d]", i, p)
			}
		}
	}
	freeCount := 0
	for s := a.free; s >= 0; s = a.slots[s].next {
		if int(s) >= len(a.slots) {
			return fmt.Errorf("free list index %d out of range (%d slots)", s, len(a.slots))
		}
		if at, dup := live[s]; dup {
			return fmt.Errorf("slot %d on the free list and live at heap[%d]", s, at)
		}
		if a.slots[s].pos != freePos {
			return fmt.Errorf("free slot %d has pos %d, want %d", s, a.slots[s].pos, freePos)
		}
		freeCount++
		if freeCount > len(a.slots) {
			return fmt.Errorf("free list cycle (walked %d > %d slots)", freeCount, len(a.slots))
		}
	}
	if len(a.heap)+freeCount != len(a.slots) {
		return fmt.Errorf("slot leak: %d live + %d free != %d slots", len(a.heap), freeCount, len(a.slots))
	}
	return nil
}
