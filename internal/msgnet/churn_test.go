package msgnet

import "testing"

// TestRemoveLinkKeepsInFlightFrames: a frame already in transit when its
// link is removed still arrives (it was on the medium), but no new send
// can enter the removed link.
func TestRemoveLinkKeepsInFlightFrames(t *testing.T) {
	a := &echoNode{sendTo: 1, payload: "in-flight"}
	b := &echoNode{}
	net := New([]Handler[any]{a, b}, 1)
	net.AddLink(0, 1, LinkParams{Delay: 1})
	// Put the first frame on the wire, then remove the link at t=0.5,
	// mid-flight.
	net.Run(0.5)
	net.RemoveLink(0, 1)
	if net.SendFrom(0, 1, "after-removal") {
		t.Fatal("send entered a removed link")
	}
	net.Run(10)
	if len(b.received) != 1 || b.received[0] != "in-flight" {
		t.Fatalf("received %v, want just the in-flight frame", b.received)
	}
}

func TestRemoveLinkMissingIsNoop(t *testing.T) {
	net := New([]Handler[any]{&echoNode{}, &echoNode{}}, 1)
	net.RemoveLink(0, 1) // never existed: must not panic
	net.Run(1)
	net.RemoveLink(1, 0) // post-start, still absent
}

// TestRemoveLinkAfterStartUpdatesCompiledTable: removal must be visible
// through the compiled linkAt table, not only the construction map.
func TestRemoveLinkAfterStartUpdatesCompiledTable(t *testing.T) {
	a := &chattyNode{to: 1, k: 0}
	b := &chattyNode{}
	net := New([]Handler[any]{a, b}, 1)
	net.AddLink(0, 1, LinkParams{})
	net.Run(1) // compiles the table
	if !net.SendFrom(0, 1, "x") {
		t.Fatal("send on a live link failed")
	}
	net.RemoveLink(0, 1)
	if net.SendFrom(0, 1, "y") {
		t.Fatal("send entered the link after removal")
	}
	net.Run(10)
	if b.got != 1 {
		t.Fatalf("b received %d, want 1", b.got)
	}
}

// TestSendFromRespectsBusyRule: an externally injected send is subject to
// the same one-message-per-direction rule as a handler send.
func TestSendFromRespectsBusyRule(t *testing.T) {
	a := &chattyNode{}
	b := &chattyNode{}
	net := New([]Handler[any]{a, b}, 1)
	net.AddLink(0, 1, LinkParams{Delay: 1})
	net.Run(0)
	if !net.SendFrom(0, 1, "first") {
		t.Fatal("first send refused on an idle link")
	}
	if net.SendFrom(0, 1, "second") {
		t.Fatal("second send entered a busy link")
	}
	st := net.Stats()
	if st.Sent != 1 || st.Suppressed != 1 {
		t.Fatalf("stats = %+v, want 1 sent / 1 suppressed", st)
	}
}

func TestStartTimerFiresExternally(t *testing.T) {
	a := &echoNode{}
	net := New([]Handler[any]{a}, 1)
	net.Run(1)
	net.StartTimer(0, 2, 7)
	net.Run(10)
	if a.timerHits != 1 {
		t.Fatalf("timer hits = %d, want 1", a.timerHits)
	}
}

func TestStartTimerValidation(t *testing.T) {
	net := New([]Handler[any]{&echoNode{}}, 1)
	for _, tc := range []struct {
		name string
		call func()
	}{
		{"negative delay", func() { net.StartTimer(0, -1, 0) }},
		{"unknown node", func() { net.StartTimer(5, 1, 0) }},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", tc.name)
				}
			}()
			tc.call()
		}()
	}
}
