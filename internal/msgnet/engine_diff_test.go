// Differential test of the two event engines: the legacy boxed
// container/heap queue (the seed implementation, kept as the reference)
// and the zero-alloc arena must produce bit-identical behaviour for any
// seed. The (at, seq) tie-break makes pop order engine-independent, and
// both engines feed the same send() draw order, so the full tap stream —
// every send, suppression, loss, corruption, duplication, delivery and
// timer, with exact timestamps — must match event for event.
package msgnet_test

import (
	"math/rand"
	"testing"

	"ssrmin/internal/core"
	"ssrmin/internal/cst"
	"ssrmin/internal/fault"
	"ssrmin/internal/msgnet"
)

// runEngine drives a CST ring of the paper's SSRmin algorithm through a
// lossy, jittery, duplicating, corrupting network — every coin and both
// event kinds exercised, plus mid-run state/cache faults — and returns
// the full tap stream, final stats and clock. legacy selects the
// reference engine.
func runEngine(t *testing.T, seed int64, legacy bool) ([]msgnet.TapEvent, msgnet.Stats, msgnet.Time) {
	t.Helper()
	const n = 5
	const k = n + 1
	alg := core.New(n, k)
	draw := func(r *rand.Rand) core.State {
		return core.State{X: r.Intn(k), RTS: r.Intn(2) == 1, TRA: r.Intn(2) == 1}
	}
	r := cst.NewRing[core.State](alg, alg.InitialLegitimate(), cst.Options[core.State]{
		Link: msgnet.LinkParams{
			Delay: 0.01, Jitter: 0.003,
			LossProb: 0.1, DupProb: 0.2, CorruptProb: 0.05,
		},
		Refresh:        0.05,
		Seed:           seed,
		CoherentCaches: false,
		RandomState:    draw,
	})
	r.Net.Legacy = legacy
	r.Net.Corrupt = func(rng *rand.Rand, payload core.State) core.State { return draw(rng) }

	var taps []msgnet.TapEvent
	r.Net.Tap = func(e msgnet.TapEvent) { taps = append(taps, e) }

	// Mid-run transient faults so the engines also agree across state and
	// cache corruption (and the extra traffic they provoke).
	inj := fault.NewInjector(seed + 1)
	r.Net.Run(1.0)
	fault.CorruptStates(inj, r, 2, draw)
	r.Net.Run(2.0)
	fault.CorruptCaches(inj, r, n, draw)
	r.Net.Run(3.0)
	return taps, r.Net.Stats(), r.Net.Now()
}

func TestEnginesProduceIdenticalTapStreams(t *testing.T) {
	const seeds = 32
	total := 0
	for seed := int64(1); seed <= seeds; seed++ {
		legacyTaps, legacyStats, legacyNow := runEngine(t, seed, true)
		arenaTaps, arenaStats, arenaNow := runEngine(t, seed, false)
		if len(legacyTaps) != len(arenaTaps) {
			t.Fatalf("seed %d: legacy engine emitted %d tap events, arena %d",
				seed, len(legacyTaps), len(arenaTaps))
		}
		for i := range legacyTaps {
			if legacyTaps[i] != arenaTaps[i] {
				t.Fatalf("seed %d: tap stream diverges at event %d: legacy %+v, arena %+v",
					seed, i, legacyTaps[i], arenaTaps[i])
			}
		}
		if legacyStats != arenaStats {
			t.Fatalf("seed %d: stats diverge: legacy %+v, arena %+v", seed, legacyStats, arenaStats)
		}
		if legacyNow != arenaNow {
			t.Fatalf("seed %d: clocks diverge: legacy %v, arena %v", seed, legacyNow, arenaNow)
		}
		if legacyStats.Lost == 0 || legacyStats.Duplicated == 0 || legacyStats.Corrupted == 0 ||
			legacyStats.Suppressed == 0 {
			t.Fatalf("seed %d exercised too few behaviours to be a fair differential: %+v",
				seed, legacyStats)
		}
		total += len(legacyTaps)
	}
	if total == 0 {
		t.Fatal("differential compared zero tap events")
	}
}

// TestArenaReuseAcrossRunsIsDeterministic pins the reset-not-reallocate
// contract: a simulation on a recycled arena (UseArena after a previous,
// different run) behaves bit-identically to one on a fresh arena.
func TestArenaReuseAcrossRunsIsDeterministic(t *testing.T) {
	run := func(arena *msgnet.Arena[core.State], seed int64) []msgnet.TapEvent {
		taps, _, _ := runEngineWithArena(t, seed, arena)
		return taps
	}
	fresh3 := run(nil, 3)
	arena := msgnet.NewArena[core.State]()
	run(arena, 17) // dirty the arena with an unrelated simulation
	reused3 := run(arena, 3)
	if len(fresh3) != len(reused3) {
		t.Fatalf("recycled arena emitted %d tap events, fresh %d", len(reused3), len(fresh3))
	}
	for i := range fresh3 {
		if fresh3[i] != reused3[i] {
			t.Fatalf("recycled arena diverges at event %d: fresh %+v, reused %+v",
				i, fresh3[i], reused3[i])
		}
	}
	if arena.Cap() == 0 {
		t.Fatal("arena never grew; the reuse test exercised nothing")
	}
}

func runEngineWithArena(t *testing.T, seed int64, arena *msgnet.Arena[core.State]) ([]msgnet.TapEvent, msgnet.Stats, msgnet.Time) {
	t.Helper()
	const n = 5
	const k = n + 1
	alg := core.New(n, k)
	draw := func(r *rand.Rand) core.State {
		return core.State{X: r.Intn(k), RTS: r.Intn(2) == 1, TRA: r.Intn(2) == 1}
	}
	r := cst.NewRing[core.State](alg, alg.InitialLegitimate(), cst.Options[core.State]{
		Link: msgnet.LinkParams{
			Delay: 0.01, Jitter: 0.003,
			LossProb: 0.1, DupProb: 0.2, CorruptProb: 0.05,
		},
		Refresh:        0.05,
		Seed:           seed,
		CoherentCaches: false,
		RandomState:    draw,
		Arena:          arena,
	})
	r.Net.Corrupt = func(rng *rand.Rand, payload core.State) core.State { return draw(rng) }
	var taps []msgnet.TapEvent
	r.Net.Tap = func(e msgnet.TapEvent) { taps = append(taps, e) }
	r.Net.Run(2.0)
	return taps, r.Net.Stats(), r.Net.Now()
}
