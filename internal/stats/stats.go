// Package stats provides the small statistics toolkit the experiment
// harness uses: summary statistics, percentiles, histograms, and
// least-squares polynomial fits used to check the O(n²) convergence shape
// of Theorem 2 against measured step counts.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Summary holds the usual five-ish numbers of a sample.
type Summary struct {
	N        int
	Min, Max float64
	Mean     float64
	Stddev   float64
	Median   float64
	P90, P99 float64
}

// Summarize computes a Summary of xs. It returns a zero Summary for an
// empty sample.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs), Min: xs[0], Max: xs[0]}
	sum := 0.0
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(len(xs))
	ss := 0.0
	for _, x := range xs {
		d := x - s.Mean
		ss += d * d
	}
	if len(xs) > 1 {
		s.Stddev = math.Sqrt(ss / float64(len(xs)-1))
	}
	s.Median = Percentile(xs, 50)
	s.P90 = Percentile(xs, 90)
	s.P99 = Percentile(xs, 99)
	return s
}

func (s Summary) String() string {
	return fmt.Sprintf("n=%d min=%.4g mean=%.4g median=%.4g p90=%.4g p99=%.4g max=%.4g sd=%.4g",
		s.N, s.Min, s.Mean, s.Median, s.P90, s.P99, s.Max, s.Stddev)
}

// Percentile returns the p-th percentile (0 ≤ p ≤ 100) of xs using linear
// interpolation between closest ranks. It does not modify xs.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Ints converts an int sample to float64 for the other helpers.
func Ints(xs []int) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = float64(x)
	}
	return out
}

// Histogram builds a fixed-width histogram with the given number of
// buckets over [min, max].
type Histogram struct {
	Min, Max float64
	Buckets  []int
	Under    int // samples below Min
	Over     int // samples above Max
}

// NewHistogram creates a histogram. buckets must be positive and max > min.
func NewHistogram(min, max float64, buckets int) *Histogram {
	if buckets <= 0 || max <= min {
		panic(fmt.Sprintf("stats: bad histogram bounds [%v,%v]/%d", min, max, buckets))
	}
	return &Histogram{Min: min, Max: max, Buckets: make([]int, buckets)}
}

// Add records a sample.
func (h *Histogram) Add(x float64) {
	switch {
	case x < h.Min:
		h.Under++
	case x > h.Max:
		h.Over++
	default:
		i := int((x - h.Min) / (h.Max - h.Min) * float64(len(h.Buckets)))
		if i == len(h.Buckets) {
			i--
		}
		h.Buckets[i]++
	}
}

// Total returns the number of samples recorded, including out-of-range.
func (h *Histogram) Total() int {
	t := h.Under + h.Over
	for _, b := range h.Buckets {
		t += b
	}
	return t
}

// Render draws an ASCII bar chart with the given maximum bar width.
func (h *Histogram) Render(width int) string {
	var b strings.Builder
	max := 1
	for _, c := range h.Buckets {
		if c > max {
			max = c
		}
	}
	span := (h.Max - h.Min) / float64(len(h.Buckets))
	for i, c := range h.Buckets {
		bar := strings.Repeat("#", c*width/max)
		fmt.Fprintf(&b, "[%8.3g, %8.3g) %6d %s\n", h.Min+float64(i)*span, h.Min+float64(i+1)*span, c, bar)
	}
	return b.String()
}

// PolyFit fits y ≈ Σ coef[j]·x^j of the given degree by least squares,
// solving the normal equations with Gaussian elimination. It returns the
// coefficients lowest-degree first. It panics if the system is singular
// (e.g. fewer distinct x values than degree+1).
func PolyFit(xs, ys []float64, degree int) []float64 {
	if len(xs) != len(ys) {
		panic("stats: PolyFit length mismatch")
	}
	m := degree + 1
	if len(xs) < m {
		panic("stats: PolyFit needs at least degree+1 points")
	}
	// Normal equations: A·coef = b with A[j][k] = Σ x^(j+k), b[j] = Σ y·x^j.
	pow := make([]float64, 2*m-1)
	for _, x := range xs {
		p := 1.0
		for j := range pow {
			pow[j] += p
			p *= x
		}
	}
	a := make([][]float64, m)
	b := make([]float64, m)
	for j := 0; j < m; j++ {
		a[j] = make([]float64, m)
		for k := 0; k < m; k++ {
			a[j][k] = pow[j+k]
		}
	}
	for i, x := range xs {
		p := 1.0
		for j := 0; j < m; j++ {
			b[j] += ys[i] * p
			p *= x
		}
	}
	return solve(a, b)
}

// EvalPoly evaluates a coefficient vector (lowest-degree first) at x.
func EvalPoly(coef []float64, x float64) float64 {
	y := 0.0
	for j := len(coef) - 1; j >= 0; j-- {
		y = y*x + coef[j]
	}
	return y
}

// RSquared returns the coefficient of determination of the fit coef on
// (xs, ys).
func RSquared(coef []float64, xs, ys []float64) float64 {
	if len(xs) != len(ys) || len(xs) == 0 {
		panic("stats: RSquared length mismatch")
	}
	mean := 0.0
	for _, y := range ys {
		mean += y
	}
	mean /= float64(len(ys))
	ssRes, ssTot := 0.0, 0.0
	for i, x := range xs {
		d := ys[i] - EvalPoly(coef, x)
		ssRes += d * d
		t := ys[i] - mean
		ssTot += t * t
	}
	if ssTot == 0 {
		if ssRes == 0 {
			return 1
		}
		return 0
	}
	return 1 - ssRes/ssTot
}

// GrowthExponent estimates the exponent b of y ≈ a·x^b by linear
// regression on log–log scale. All inputs must be positive. The
// convergence experiment uses it to confirm that worst-case step counts
// grow roughly quadratically in n.
func GrowthExponent(xs, ys []float64) float64 {
	if len(xs) != len(ys) || len(xs) < 2 {
		panic("stats: GrowthExponent needs ≥2 points")
	}
	lx := make([]float64, len(xs))
	ly := make([]float64, len(ys))
	for i := range xs {
		if xs[i] <= 0 || ys[i] <= 0 {
			panic("stats: GrowthExponent needs positive data")
		}
		lx[i] = math.Log(xs[i])
		ly[i] = math.Log(ys[i])
	}
	coef := PolyFit(lx, ly, 1)
	return coef[1]
}

// solve performs Gaussian elimination with partial pivoting on a·x = b.
func solve(a [][]float64, b []float64) []float64 {
	m := len(a)
	for col := 0; col < m; col++ {
		// Pivot.
		piv := col
		for r := col + 1; r < m; r++ {
			if math.Abs(a[r][col]) > math.Abs(a[piv][col]) {
				piv = r
			}
		}
		if math.Abs(a[piv][col]) < 1e-12 {
			panic("stats: singular system in PolyFit")
		}
		a[col], a[piv] = a[piv], a[col]
		b[col], b[piv] = b[piv], b[col]
		// Eliminate.
		for r := col + 1; r < m; r++ {
			f := a[r][col] / a[col][col]
			for k := col; k < m; k++ {
				a[r][k] -= f * a[col][k]
			}
			b[r] -= f * b[col]
		}
	}
	x := make([]float64, m)
	for r := m - 1; r >= 0; r-- {
		x[r] = b[r]
		for k := r + 1; k < m; k++ {
			x[r] -= a[r][k] * x[k]
		}
		x[r] /= a[r][r]
	}
	return x
}
