package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{4, 1, 3, 2})
	if s.N != 4 || s.Min != 1 || s.Max != 4 {
		t.Errorf("Summary = %+v", s)
	}
	if !almost(s.Mean, 2.5) {
		t.Errorf("Mean = %v", s.Mean)
	}
	if !almost(s.Median, 2.5) {
		t.Errorf("Median = %v", s.Median)
	}
	// Sample stddev of 1..4 is sqrt(5/3).
	if !almost(s.Stddev, math.Sqrt(5.0/3.0)) {
		t.Errorf("Stddev = %v", s.Stddev)
	}
	if s.String() == "" {
		t.Error("empty summary string")
	}
	if z := Summarize(nil); z.N != 0 {
		t.Errorf("empty summary = %+v", z)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{10, 20, 30, 40, 50}
	if got := Percentile(xs, 0); got != 10 {
		t.Errorf("P0 = %v", got)
	}
	if got := Percentile(xs, 100); got != 50 {
		t.Errorf("P100 = %v", got)
	}
	if got := Percentile(xs, 50); got != 30 {
		t.Errorf("P50 = %v", got)
	}
	if got := Percentile(xs, 25); got != 20 {
		t.Errorf("P25 = %v", got)
	}
	if got := Percentile(xs, 10); !almost(got, 14) {
		t.Errorf("P10 = %v, want 14", got)
	}
	if !math.IsNaN(Percentile(nil, 50)) {
		t.Error("P50 of empty should be NaN")
	}
	// Input must not be reordered.
	if xs[0] != 10 {
		t.Error("Percentile mutated input")
	}
	unsorted := []float64{30, 10, 50, 20, 40}
	if got := Percentile(unsorted, 50); got != 30 {
		t.Errorf("P50 unsorted = %v", got)
	}
}

func TestInts(t *testing.T) {
	fs := Ints([]int{1, 2, 3})
	if len(fs) != 3 || fs[2] != 3.0 {
		t.Errorf("Ints = %v", fs)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	for _, x := range []float64{0, 1.9, 2, 5, 9.99, 10, -1, 11} {
		h.Add(x)
	}
	if h.Under != 1 || h.Over != 1 {
		t.Errorf("Under=%d Over=%d", h.Under, h.Over)
	}
	if h.Buckets[0] != 2 { // 0 and 1.9
		t.Errorf("bucket0 = %d", h.Buckets[0])
	}
	if h.Buckets[1] != 1 { // 2
		t.Errorf("bucket1 = %d", h.Buckets[1])
	}
	if h.Buckets[4] != 2 { // 9.99 and 10 (top edge folds in)
		t.Errorf("bucket4 = %d", h.Buckets[4])
	}
	if h.Total() != 8 {
		t.Errorf("Total = %d", h.Total())
	}
	if out := h.Render(20); !strings.Contains(out, "#") {
		t.Error("Render produced no bars")
	}
}

func TestHistogramValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewHistogram accepted bad bounds")
		}
	}()
	NewHistogram(5, 5, 3)
}

func TestPolyFitExact(t *testing.T) {
	// y = 2 + 3x + 0.5x².
	var xs, ys []float64
	for x := 0.0; x < 8; x++ {
		xs = append(xs, x)
		ys = append(ys, 2+3*x+0.5*x*x)
	}
	coef := PolyFit(xs, ys, 2)
	if !almost(coef[0], 2) || !almost(coef[1], 3) || !almost(coef[2], 0.5) {
		t.Errorf("coef = %v", coef)
	}
	if r2 := RSquared(coef, xs, ys); !almost(r2, 1) {
		t.Errorf("R² = %v", r2)
	}
	if y := EvalPoly(coef, 10); !almost(y, 2+30+50) {
		t.Errorf("EvalPoly(10) = %v", y)
	}
}

func TestPolyFitLeastSquares(t *testing.T) {
	// Noisy linear data: the fit should be close, not exact.
	xs := []float64{1, 2, 3, 4, 5, 6}
	ys := []float64{2.1, 3.9, 6.2, 7.8, 10.1, 11.9}
	coef := PolyFit(xs, ys, 1)
	if math.Abs(coef[1]-2) > 0.1 {
		t.Errorf("slope = %v, want ≈2", coef[1])
	}
	if r2 := RSquared(coef, xs, ys); r2 < 0.99 {
		t.Errorf("R² = %v", r2)
	}
}

func TestGrowthExponent(t *testing.T) {
	// y = 4x² exactly.
	xs := []float64{3, 5, 8, 13, 20}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 4 * x * x
	}
	if b := GrowthExponent(xs, ys); !almost(b, 2) {
		t.Errorf("exponent = %v, want 2", b)
	}
	// y = 7x.
	for i, x := range xs {
		ys[i] = 7 * x
	}
	if b := GrowthExponent(xs, ys); !almost(b, 1) {
		t.Errorf("exponent = %v, want 1", b)
	}
}

func TestPolyFitQuickProperty(t *testing.T) {
	// For any quadratic with moderate coefficients, fitting recovers it.
	f := func(a, b, c int8) bool {
		ca, cb, cc := float64(a)/10, float64(b)/10, float64(c)/10
		var xs, ys []float64
		for x := -3.0; x <= 3; x += 0.5 {
			xs = append(xs, x)
			ys = append(ys, ca+cb*x+cc*x*x)
		}
		coef := PolyFit(xs, ys, 2)
		return math.Abs(coef[0]-ca) < 1e-6 && math.Abs(coef[1]-cb) < 1e-6 && math.Abs(coef[2]-cc) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
