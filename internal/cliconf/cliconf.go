// Package cliconf centralizes the flag vocabulary shared by the ssrmin
// command-line tools (cmd/ssrmin-sim, cmd/ssrmin-mp, cmd/ssrmin-live,
// cmd/ssrmin-node, cmd/experiments): ring shape (-n, -k), scheduling
// (-daemon, -p), run length (-steps), and randomization (-seed, -random).
// It also owns the daemon registry behind the -daemon flag; the root
// package's ParseDaemon delegates here so the CLI and the library accept
// the same names.
package cliconf

import (
	"flag"
	"fmt"
	"math/rand"
	"strings"

	"ssrmin/internal/core"
	"ssrmin/internal/daemon"
	"ssrmin/internal/statemodel"
)

// DaemonSpec is one entry of the scheduler registry.
type DaemonSpec struct {
	// Name is the -daemon flag value ("central", "sync", ...).
	Name string
	// Label is a descriptive display name for reports ("central-random").
	Label string
	// Help is a one-line description for usage text.
	Help string
	// New builds the daemon. p is only consulted by schedulers with an
	// inclusion probability; the others ignore it.
	New func(seed int64, p float64) statemodel.Daemon
}

// daemons is the single source of truth for scheduler names, shared by
// the CLI flags and ssrmin.ParseDaemon.
var daemons = []DaemonSpec{
	{"central", "central-random", "one random enabled process per step",
		func(seed int64, _ float64) statemodel.Daemon {
			return daemon.NewCentralRandom(rand.New(rand.NewSource(seed)))
		}},
	{"sync", "synchronous", "every enabled process each step",
		func(_ int64, _ float64) statemodel.Daemon { return daemon.Synchronous{} }},
	{"distributed", "distributed(p)", "each enabled process with probability p",
		func(seed int64, p float64) statemodel.Daemon {
			return daemon.NewRandomSubset(rand.New(rand.NewSource(seed)), p)
		}},
	{"quiet", "quiet-adversary", "prefers the non-Dijkstra rules 1, 3, 5",
		func(seed int64, _ float64) statemodel.Daemon {
			return daemon.NewRuleBiased(rand.New(rand.NewSource(seed)),
				core.RuleReadySecondary, core.RuleRecvSecondary, core.RuleFixNoG)
		}},
	{"starve", "starver(P0)", "never schedules P0 unless it is the only enabled process",
		func(seed int64, _ float64) statemodel.Daemon {
			return daemon.NewStarver(rand.New(rand.NewSource(seed)), 0)
		}},
}

// Daemons returns a copy of the scheduler registry.
func Daemons() []DaemonSpec {
	out := make([]DaemonSpec, len(daemons))
	copy(out, daemons)
	return out
}

// DaemonNames lists the registered scheduler names in registry order.
func DaemonNames() []string {
	names := make([]string, len(daemons))
	for i, d := range daemons {
		names[i] = d.Name
	}
	return names
}

// ParseDaemon builds the named scheduler, seeding its randomness with
// seed; p is the inclusion probability of "distributed".
func ParseDaemon(name string, seed int64, p float64) (statemodel.Daemon, error) {
	for _, d := range daemons {
		if d.Name == name {
			return d.New(seed, p), nil
		}
	}
	return nil, fmt.Errorf("unknown daemon %q (want one of %s)",
		name, strings.Join(DaemonNames(), " | "))
}

// Config collects the shared flag values. Bind the groups a command
// needs onto its FlagSet, flag.Parse, then read the fields.
type Config struct {
	N     int
	K     int
	Steps int

	Daemon string
	P      float64

	Seed   int64
	Random bool

	Workers       int
	LegacyRuntime bool
}

// BindRing registers -n (default defN) and -k.
func (c *Config) BindRing(fs *flag.FlagSet, defN int) {
	fs.IntVar(&c.N, "n", defN, "ring size (≥ 3)")
	fs.IntVar(&c.K, "k", 0, "counter space K (> n; default n+1)")
}

// BindSchedule registers -daemon and -p.
func (c *Config) BindSchedule(fs *flag.FlagSet) {
	fs.StringVar(&c.Daemon, "daemon", "central",
		"scheduler: "+strings.Join(DaemonNames(), " | "))
	fs.Float64Var(&c.P, "p", 0.5, "inclusion probability for -daemon distributed")
}

// BindSteps registers -steps (default defSteps).
func (c *Config) BindSteps(fs *flag.FlagSet, defSteps int) {
	fs.IntVar(&c.Steps, "steps", defSteps, "number of transitions to run")
}

// BindSeed registers just -seed (default defSeed), for tools whose
// initial configuration is not flag-selectable.
func (c *Config) BindSeed(fs *flag.FlagSet, defSeed int64) {
	fs.Int64Var(&c.Seed, "seed", defSeed, "base random seed")
}

// BindRandom registers -seed (default defSeed) and -random.
func (c *Config) BindRandom(fs *flag.FlagSet, defSeed int64) {
	fs.Int64Var(&c.Seed, "seed", defSeed, "random seed")
	fs.BoolVar(&c.Random, "random", false,
		"start from a random configuration instead of the legitimate one")
}

// BindRuntime registers -workers and -legacy-runtime, the live tier's
// backend selection shared by ssrmin-live, ssrmin-node and the soak
// harness.
func (c *Config) BindRuntime(fs *flag.FlagSet) {
	fs.IntVar(&c.Workers, "workers", 0,
		"sharded engine worker loops (0 = GOMAXPROCS, clamped to ring size)")
	fs.BoolVar(&c.LegacyRuntime, "legacy-runtime", false,
		"use the goroutine-per-node live runtime instead of the sharded engine")
}

// ResolveK applies the K default (n+1) and returns the result.
func (c *Config) ResolveK() int {
	if c.K == 0 {
		c.K = c.N + 1
	}
	return c.K
}

// NewDaemon builds the scheduler selected by the bound -daemon, -seed and
// -p flags.
func (c *Config) NewDaemon() (statemodel.Daemon, error) {
	return ParseDaemon(c.Daemon, c.Seed, c.P)
}
