package cliconf

import (
	"flag"
	"reflect"
	"testing"
)

func TestParseDaemonKnownNames(t *testing.T) {
	for _, name := range DaemonNames() {
		d, err := ParseDaemon(name, 1, 0.5)
		if err != nil {
			t.Fatalf("ParseDaemon(%q): %v", name, err)
		}
		if d == nil {
			t.Fatalf("ParseDaemon(%q) returned nil daemon", name)
		}
		if d.Name() == "" {
			t.Errorf("daemon %q has empty Name()", name)
		}
	}
}

func TestParseDaemonUnknown(t *testing.T) {
	if _, err := ParseDaemon("nope", 1, 0.5); err == nil {
		t.Fatal("want error for unknown daemon name")
	}
}

func TestDaemonNames(t *testing.T) {
	want := []string{"central", "sync", "distributed", "quiet", "starve"}
	if got := DaemonNames(); !reflect.DeepEqual(got, want) {
		t.Errorf("DaemonNames() = %v, want %v", got, want)
	}
}

func TestBindAndResolve(t *testing.T) {
	var c Config
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	c.BindRing(fs, 5)
	c.BindSteps(fs, 15)
	c.BindSchedule(fs)
	c.BindRandom(fs, 1)
	if err := fs.Parse([]string{"-n", "7", "-daemon", "distributed", "-p", "0.25", "-seed", "9", "-random"}); err != nil {
		t.Fatal(err)
	}
	if c.N != 7 || c.Steps != 15 || c.Daemon != "distributed" || c.P != 0.25 || c.Seed != 9 || !c.Random {
		t.Errorf("parsed config = %+v", c)
	}
	if k := c.ResolveK(); k != 8 {
		t.Errorf("ResolveK() = %d, want n+1 = 8", k)
	}
	d, err := c.NewDaemon()
	if err != nil {
		t.Fatal(err)
	}
	if d == nil {
		t.Fatal("NewDaemon returned nil")
	}
}

func TestResolveKExplicit(t *testing.T) {
	c := Config{N: 5, K: 9}
	if k := c.ResolveK(); k != 9 {
		t.Errorf("ResolveK() = %d, want explicit 9", k)
	}
}
