package cliconf

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"runtime/trace"
)

// Profile is the shared profiling flag set of the CLIs: -cpuprofile,
// -memprofile and -traceprofile, each naming an output file. Bind it to
// a FlagSet, call Start after parsing and defer Stop; see the README's
// "Profiling" note for reading the outputs with `go tool pprof` /
// `go tool trace`.
type Profile struct {
	// CPU, Mem and Trace are the output paths ("" disables each).
	CPU, Mem, Trace string

	cpuFile   *os.File
	traceFile *os.File
}

// Bind registers the profiling flags on fs.
func (p *Profile) Bind(fs *flag.FlagSet) {
	fs.StringVar(&p.CPU, "cpuprofile", "", "write a CPU profile to `file` (go tool pprof)")
	fs.StringVar(&p.Mem, "memprofile", "", "write a heap profile to `file` on exit (go tool pprof)")
	fs.StringVar(&p.Trace, "traceprofile", "", "write a runtime execution trace to `file` (go tool trace)")
}

// Start begins CPU profiling and execution tracing as requested. On
// error, anything already started is stopped.
func (p *Profile) Start() error {
	if p.CPU != "" {
		f, err := os.Create(p.CPU)
		if err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return fmt.Errorf("cpuprofile: %w", err)
		}
		p.cpuFile = f
	}
	if p.Trace != "" {
		f, err := os.Create(p.Trace)
		if err != nil {
			p.Stop()
			return fmt.Errorf("traceprofile: %w", err)
		}
		if err := trace.Start(f); err != nil {
			f.Close()
			p.Stop()
			return fmt.Errorf("traceprofile: %w", err)
		}
		p.traceFile = f
	}
	return nil
}

// Stop finishes every profile Start began and writes the heap profile if
// -memprofile was given. Call it exactly once, before the process exits
// (os.Exit skips deferred calls — run Stop first).
func (p *Profile) Stop() error {
	var first error
	if p.cpuFile != nil {
		pprof.StopCPUProfile()
		if err := p.cpuFile.Close(); err != nil && first == nil {
			first = fmt.Errorf("cpuprofile: %w", err)
		}
		p.cpuFile = nil
	}
	if p.traceFile != nil {
		trace.Stop()
		if err := p.traceFile.Close(); err != nil && first == nil {
			first = fmt.Errorf("traceprofile: %w", err)
		}
		p.traceFile = nil
	}
	if p.Mem != "" {
		f, err := os.Create(p.Mem)
		if err != nil {
			if first == nil {
				first = fmt.Errorf("memprofile: %w", err)
			}
		} else {
			runtime.GC() // materialize the steady-state heap
			if err := pprof.WriteHeapProfile(f); err != nil && first == nil {
				first = fmt.Errorf("memprofile: %w", err)
			}
			if err := f.Close(); err != nil && first == nil {
				first = fmt.Errorf("memprofile: %w", err)
			}
		}
		p.Mem = "" // write at most once
	}
	return first
}
