package cliconf

import (
	"flag"
	"io"
	"strconv"
	"strings"
	"testing"
)

// FuzzParseDaemon pins the registry-lookup contract: exactly one of
// (daemon, error) is non-nil, registered names always build, and the
// error for an unknown name quotes it and lists the alternatives.
// p is clamped into [0,1] — out-of-range inclusion probabilities are a
// documented constructor panic, not a parse failure.
func FuzzParseDaemon(f *testing.F) {
	for _, name := range DaemonNames() {
		f.Add(name, int64(1), 0.5)
	}
	f.Add("", int64(0), 0.0)
	f.Add("Central", int64(-1), 1.0)
	f.Add("no such scheduler", int64(42), 0.25)
	f.Fuzz(func(t *testing.T, name string, seed int64, p float64) {
		if !(p >= 0 && p <= 1) {
			p = 0.5
		}
		d, err := ParseDaemon(name, seed, p)
		if (d == nil) == (err == nil) {
			t.Fatalf("ParseDaemon(%q) = %v, %v: want exactly one of daemon and error", name, d, err)
		}
		registered := false
		for _, n := range DaemonNames() {
			if n == name {
				registered = true
			}
		}
		if registered && err != nil {
			t.Fatalf("ParseDaemon(%q) rejected a registered name: %v", name, err)
		}
		if !registered {
			if err == nil {
				t.Fatalf("ParseDaemon(%q) accepted an unregistered name", name)
			}
			if !strings.Contains(err.Error(), strconv.Quote(name)) {
				t.Fatalf("error %q does not quote the offending name %q", err, name)
			}
			for _, n := range DaemonNames() {
				if !strings.Contains(err.Error(), n) {
					t.Fatalf("error %q does not list registered daemon %q", err, n)
				}
			}
		}
	})
}

// FuzzConfigFlags drives the full flag-binding surface with arbitrary
// textual values: parsing either fails cleanly or yields a Config whose
// ResolveK and NewDaemon uphold their contracts. Nothing may panic.
func FuzzConfigFlags(f *testing.F) {
	f.Add("5", "7", "central", "0.5", "42")
	f.Add("3", "0", "distributed", "1", "-1")
	f.Add("-3", "x", "sync", "nope", "9999999999")
	f.Add("", "", "", "", "")
	f.Fuzz(func(t *testing.T, n, k, daemonName, p, seed string) {
		fs := flag.NewFlagSet("fuzz", flag.ContinueOnError)
		fs.SetOutput(io.Discard)
		var c Config
		c.BindRing(fs, 5)
		c.BindSchedule(fs)
		c.BindSteps(fs, 100)
		c.BindRandom(fs, 1)
		err := fs.Parse([]string{
			"-n", n, "-k", k, "-daemon", daemonName, "-p", p, "-seed", seed,
		})
		if err != nil {
			return // rejected at the flag layer: fine
		}
		kBefore := c.K
		got := c.ResolveK()
		if got != c.K {
			t.Fatalf("ResolveK returned %d but stored %d", got, c.K)
		}
		if kBefore == 0 && c.K != c.N+1 {
			t.Fatalf("ResolveK defaulted K to %d, want n+1 = %d", c.K, c.N+1)
		}
		if kBefore != 0 && c.K != kBefore {
			t.Fatalf("ResolveK overwrote explicit K=%d with %d", kBefore, c.K)
		}
		if !(c.P >= 0 && c.P <= 1) {
			return // out-of-range p is a documented constructor panic
		}
		d, err := c.NewDaemon()
		if (d == nil) == (err == nil) {
			t.Fatalf("NewDaemon() = %v, %v: want exactly one of daemon and error", d, err)
		}
	})
}
