package inclusion

import (
	"math"
	"sync"
	"testing"
)

func TestTrackerBasics(t *testing.T) {
	tr := NewTracker(3)
	if tr.ActiveCount() != 0 {
		t.Fatal("fresh tracker not idle")
	}
	tr.Set(0, true, 1)
	tr.Set(2, true, 2)
	if tr.ActiveCount() != 2 {
		t.Fatalf("count = %d", tr.ActiveCount())
	}
	set := tr.ActiveSet()
	if len(set) != 2 || set[0] != 0 || set[1] != 2 {
		t.Fatalf("ActiveSet = %v", set)
	}
	// Redundant transition ignored.
	tr.Set(0, true, 3)
	if got := len(tr.Events()); got != 2 {
		t.Fatalf("events = %d, want 2", got)
	}
	tr.Set(0, false, 4)
	if tr.ActiveCount() != 1 {
		t.Fatalf("count = %d", tr.ActiveCount())
	}
}

func TestTrackerOutOfRangePanics(t *testing.T) {
	tr := NewTracker(2)
	defer func() {
		if recover() == nil {
			t.Error("out-of-range station accepted")
		}
	}()
	tr.Set(5, true, 0)
}

func TestCoverageGaps(t *testing.T) {
	tr := NewTracker(2)
	// Idle until t=1, covered 1..3, gap 3..5, covered 5..9, gap 9..10.
	tr.Set(0, true, 1)
	tr.Set(0, false, 3)
	tr.Set(1, true, 5)
	tr.Set(1, false, 9)
	gaps := tr.CoverageGaps(0, 10)
	want := []Gap{{0, 1}, {3, 5}, {9, 10}}
	if len(gaps) != len(want) {
		t.Fatalf("gaps = %v, want %v", gaps, want)
	}
	for i := range want {
		if gaps[i] != want[i] {
			t.Fatalf("gaps = %v, want %v", gaps, want)
		}
	}
	if tr.Covered(0, 10) {
		t.Error("Covered should be false")
	}
	if !tr.Covered(5, 9) {
		t.Error("Covered(5,9) should be true")
	}
	if g := gaps[1]; g.Len() != 2 {
		t.Errorf("gap length = %v", g.Len())
	}
}

func TestCoverageWithOverlap(t *testing.T) {
	tr := NewTracker(2)
	// Overlapping activity: 0 active 0..6, 1 active 4..10: no gap in 0..10.
	tr.Set(0, true, 0)
	tr.Set(1, true, 4)
	tr.Set(0, false, 6)
	tr.Set(1, false, 10)
	if gaps := tr.CoverageGaps(0, 10); len(gaps) != 0 {
		t.Fatalf("gaps = %v, want none", gaps)
	}
	// Window entered mid-activity.
	if !tr.Covered(2, 8) {
		t.Error("Covered(2,8) should be true")
	}
}

func TestGapsOnlyRetention(t *testing.T) {
	tr := NewTracker(3)
	tr.SetGapsOnly()
	tr.Set(0, true, 1)  // 0 -> 1: keep
	tr.Set(1, true, 2)  // 1 -> 2: drop
	tr.Set(1, false, 3) // 2 -> 1: drop
	tr.Set(0, false, 4) // 1 -> 0: keep
	tr.Set(2, true, 5)  // 0 -> 1: keep
	if got := len(tr.Events()); got != 3 {
		t.Fatalf("kept %d events, want 3", got)
	}
	gaps := tr.CoverageGaps(0, 6)
	want := []Gap{{0, 1}, {4, 5}}
	if len(gaps) != 2 || gaps[0] != want[0] || gaps[1] != want[1] {
		t.Fatalf("gaps = %v, want %v", gaps, want)
	}
}

func TestDutyCycles(t *testing.T) {
	tr := NewTracker(2)
	tr.Set(0, true, 0)
	tr.Set(0, false, 4)
	tr.Set(1, true, 4)
	tr.Set(1, false, 10)
	dc := tr.DutyCycles(0, 10)
	if math.Abs(dc[0]-0.4) > 1e-9 || math.Abs(dc[1]-0.6) > 1e-9 {
		t.Fatalf("duty cycles = %v", dc)
	}
	// Open interval at the end: station still active at window close.
	tr2 := NewTracker(1)
	tr2.Set(0, true, 2)
	dc2 := tr2.DutyCycles(0, 10)
	if math.Abs(dc2[0]-0.8) > 1e-9 {
		t.Fatalf("open-ended duty = %v", dc2)
	}
}

func TestTrackerConcurrent(t *testing.T) {
	tr := NewTracker(8)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				tr.Set(id, i%2 == 0, float64(i))
			}
		}(g)
	}
	wg.Wait()
	if c := tr.ActiveCount(); c < 0 || c > 8 {
		t.Fatalf("count = %d", c)
	}
}

func TestEnergyModel(t *testing.T) {
	m := NewEnergyModel(3, 100, 10, 2)
	active := []bool{true, false, false}
	m.Elapse(5, active)
	l := m.Levels()
	if l[0] != 50 {
		t.Errorf("active battery = %v, want 50", l[0])
	}
	if l[1] != 100 || l[2] != 100 {
		t.Errorf("idle batteries = %v, capped at 100", l[1:])
	}
	if m.MinLevel() != 50 {
		t.Errorf("MinLevel = %v", m.MinLevel())
	}
	if m.Depleted() {
		t.Error("not depleted yet")
	}
	m.Elapse(10, active)
	if m.Levels()[0] != 0 {
		t.Errorf("battery should floor at 0, got %v", m.Levels()[0])
	}
	if !m.Depleted() {
		t.Error("should be depleted")
	}
}

func TestEnergyModelRotationSustains(t *testing.T) {
	// With rotation (duty cycle 1/4) and recharge ≥ drain/3, no battery
	// depletes: the arithmetic behind the paper's energy story.
	m := NewEnergyModel(4, 100, 9, 3.1)
	active := make([]bool, 4)
	turn := 0
	for step := 0; step < 10000; step++ {
		for i := range active {
			active[i] = i == turn
		}
		m.Elapse(0.1, active)
		if step%10 == 9 {
			turn = (turn + 1) % 4
		}
	}
	if m.Depleted() {
		t.Fatalf("rotation depleted a battery: %v", m.Levels())
	}
}

func TestEnergyModelValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("bad parameters accepted")
		}
	}()
	NewEnergyModel(0, 1, 1, 1)
}

func TestEnergyModelMaskMismatch(t *testing.T) {
	m := NewEnergyModel(2, 10, 1, 1)
	defer func() {
		if recover() == nil {
			t.Error("mask mismatch accepted")
		}
	}()
	m.Elapse(1, []bool{true})
}

func TestRotationStats(t *testing.T) {
	tr := NewTracker(2)
	// Station 0 activates at 0, 10, 20; station 1 at 5.
	tr.Set(0, true, 0)
	tr.Set(0, false, 2)
	tr.Set(1, true, 5)
	tr.Set(1, false, 6)
	tr.Set(0, true, 10)
	tr.Set(0, false, 12)
	tr.Set(0, true, 20)
	rs := tr.Rotation(0, 25)
	if rs.Activations[0] != 3 || rs.Activations[1] != 1 {
		t.Fatalf("activations = %v", rs.Activations)
	}
	// Gaps for station 0: 10 and 10.
	if math.Abs(rs.MeanGap-10) > 1e-9 || rs.MaxGap != 10 {
		t.Fatalf("gaps mean=%v max=%v", rs.MeanGap, rs.MaxGap)
	}
	// Window excluding early events.
	rs = tr.Rotation(9, 25)
	if rs.Activations[0] != 2 || rs.Activations[1] != 0 {
		t.Fatalf("windowed activations = %v", rs.Activations)
	}
}
