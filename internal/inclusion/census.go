// Compiled token census: the mutual inclusion predicates (who holds the
// primary/secondary token) depend only on a process's (pred, self, succ)
// view and on whether it is the bottom process, so — like the model
// checker's transition tables — they compile into two dense per-class
// tables over encoded state triples. The exhaustive Theorem 1 scan then
// counts privileged processes by pure table probes on configuration IDs,
// never materializing a View.
package inclusion

import (
	"ssrmin/internal/statemodel"
)

// CensusTable holds, per position class (0 = bottom, 1 = other) and per
// statemodel.TripleIndex-encoded (pred, self, succ) triple, the token
// predicates' values: bit 0 = primary holder, bit 1 = secondary holder.
type CensusTable struct {
	q    int
	bits [statemodel.ViewClasses][]uint8
}

// CompileCensus evaluates the primary- and secondary-token predicates on
// every (class, pred, self, succ) combination over the given state
// enumeration of a ring of size n. The predicates must read the view's
// position only through Bottom() — the same statemodel.PositionUniform
// contract the model checker's tables rely on.
func CompileCensus[S comparable](states []S, n int, primary, secondary func(statemodel.View[S]) bool) *CensusTable {
	q := len(states)
	t := &CensusTable{q: q}
	for class := 0; class < statemodel.ViewClasses; class++ {
		tab := make([]uint8, q*q*q)
		for p := 0; p < q; p++ {
			for s := 0; s < q; s++ {
				for u := 0; u < q; u++ {
					v := statemodel.ClassView(class, n, states[p], states[s], states[u])
					var b uint8
					if primary(v) {
						b |= 1
					}
					if secondary(v) {
						b |= 2
					}
					tab[statemodel.TripleIndex(q, p, s, u)] = b
				}
			}
		}
		t.bits[class] = tab
	}
	return t
}

// Counts tallies the token census of one configuration given its encoded
// per-position triples (triples[i] is position i's TripleIndex; position 0
// is the bottom class). privileged counts processes holding either token —
// the mutual inclusion measure of Theorem 1.
func (t *CensusTable) Counts(triples []uint32) (primary, secondary, privileged int) {
	for i, tr := range triples {
		class := 0
		if i != 0 {
			class = 1
		}
		b := t.bits[class][tr]
		if b&1 != 0 {
			primary++
		}
		if b&2 != 0 {
			secondary++
		}
		if b != 0 {
			privileged++
		}
	}
	return primary, secondary, privileged
}
