// Package inclusion is the application layer of the mutual inclusion
// problem: it turns "who currently holds a token" into "which stations are
// actively monitoring", tracks continuity of coverage (the paper's
// requirement that there is no instant at which no node observes the
// environment), and models the energy budget of the motivating
// IoT/security-camera scenario — active stations drain their battery,
// inactive ones recharge.
package inclusion

import (
	"fmt"
	"sort"
	"sync"
)

// Tracker records per-node activity transitions and computes coverage. It
// is safe for concurrent use — live rings report transitions from node
// goroutines.
type Tracker struct {
	mu     sync.Mutex
	n      int
	active []bool
	count  int
	events []Event

	// gapsOnly trims memory: when set, only transitions of the global
	// count to/from zero are retained.
	gapsOnly bool
}

// Event is one activity transition.
type Event struct {
	// At is the timestamp (caller-defined clock: simulated seconds or
	// wall-clock seconds).
	At float64
	// Node is the station index.
	Node int
	// Active is the new activity state.
	Active bool
	// TotalActive is the global number of active stations after the
	// transition.
	TotalActive int
}

// NewTracker creates a tracker for n stations, all initially inactive.
func NewTracker(n int) *Tracker {
	return &Tracker{n: n, active: make([]bool, n)}
}

// SetGapsOnly trims event retention to global zero-crossings.
func (t *Tracker) SetGapsOnly() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.gapsOnly = true
}

// Set records station `node` switching to `active` at time `at`. Redundant
// transitions (same state) are ignored.
func (t *Tracker) Set(node int, active bool, at float64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if node < 0 || node >= t.n {
		panic(fmt.Sprintf("inclusion: station %d out of range", node))
	}
	if t.active[node] == active {
		return
	}
	t.active[node] = active
	if active {
		t.count++
	} else {
		t.count--
	}
	if t.gapsOnly && !(t.count == 0 || (active && t.count == 1)) {
		// Keep only zero-crossings: entering a gap (count hits 0) and
		// leaving one (count rises from 0 to 1).
		return
	}
	t.events = append(t.events, Event{At: at, Node: node, Active: active, TotalActive: t.count})
}

// ActiveCount returns the current number of active stations.
func (t *Tracker) ActiveCount() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.count
}

// ActiveSet returns the indices of currently active stations.
func (t *Tracker) ActiveSet() []int {
	t.mu.Lock()
	defer t.mu.Unlock()
	var out []int
	for i, a := range t.active {
		if a {
			out = append(out, i)
		}
	}
	return out
}

// Events returns a copy of the recorded transitions.
func (t *Tracker) Events() []Event {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Event, len(t.events))
	copy(out, t.events)
	return out
}

// Gap is a period with zero active stations.
type Gap struct {
	From, To float64
}

// Len returns the gap duration.
func (g Gap) Len() float64 { return g.To - g.From }

// CoverageGaps scans the transition log between start and end and returns
// every period with zero active stations. If the log starts with zero
// stations active (no prior event), the leading period counts as a gap.
// The caller must ensure no transitions are being recorded concurrently.
func (t *Tracker) CoverageGaps(start, end float64) []Gap {
	events := t.Events()
	sort.SliceStable(events, func(i, j int) bool { return events[i].At < events[j].At })
	var gaps []Gap
	cur := start
	// Replay to find the active count entering the window.
	countAt := 0
	for _, e := range events {
		if e.At >= start {
			break
		}
		countAt = e.TotalActive
	}
	zero := countAt == 0
	for _, e := range events {
		if e.At < start || e.At > end {
			continue
		}
		if zero && e.TotalActive > 0 {
			if e.At > cur {
				gaps = append(gaps, Gap{From: cur, To: e.At})
			}
			zero = false
		} else if !zero && e.TotalActive == 0 {
			cur = e.At
			zero = true
		}
	}
	if zero && end > cur {
		gaps = append(gaps, Gap{From: cur, To: end})
	}
	return gaps
}

// Covered reports whether coverage was continuous (no positive-length gap)
// in [start, end].
func (t *Tracker) Covered(start, end float64) bool {
	for _, g := range t.CoverageGaps(start, end) {
		if g.Len() > 0 {
			return false
		}
	}
	return true
}

// DutyCycles returns, per station, the fraction of [start, end] it was
// active, computed from the transition log.
func (t *Tracker) DutyCycles(start, end float64) []float64 {
	events := t.Events()
	sort.SliceStable(events, func(i, j int) bool { return events[i].At < events[j].At })
	active := make([]bool, t.n)
	since := make([]float64, t.n)
	busy := make([]float64, t.n)
	for i := range since {
		since[i] = start
	}
	for _, e := range events {
		if e.At > end {
			break
		}
		at := e.At
		if at < start {
			active[e.Node] = e.Active
			continue
		}
		if active[e.Node] && !e.Active {
			busy[e.Node] += at - since[e.Node]
		}
		if !active[e.Node] && e.Active {
			since[e.Node] = at
		}
		active[e.Node] = e.Active
	}
	for i := range busy {
		if active[i] {
			busy[i] += end - since[i]
		}
	}
	span := end - start
	out := make([]float64, t.n)
	for i := range out {
		if span > 0 {
			out[i] = busy[i] / span
		}
	}
	return out
}

// EnergyModel advances station batteries: an active station drains
// DrainActive per time unit, an idle one recharges Recharge per time unit
// up to Capacity. It reproduces the paper's motivation: mutual inclusion
// keeps one station watching while the rest harvest energy.
type EnergyModel struct {
	// Capacity is the maximum battery level.
	Capacity float64
	// DrainActive is the drain rate while active.
	DrainActive float64
	// Recharge is the recharge rate while idle.
	Recharge float64

	levels []float64
}

// NewEnergyModel creates a model with every battery full.
func NewEnergyModel(n int, capacity, drainActive, recharge float64) *EnergyModel {
	if n <= 0 || capacity <= 0 {
		panic("inclusion: bad energy model parameters")
	}
	m := &EnergyModel{Capacity: capacity, DrainActive: drainActive, Recharge: recharge,
		levels: make([]float64, n)}
	for i := range m.levels {
		m.levels[i] = capacity
	}
	return m
}

// Elapse advances all batteries by dt given the set of active stations.
func (m *EnergyModel) Elapse(dt float64, active []bool) {
	if len(active) != len(m.levels) {
		panic("inclusion: active mask length mismatch")
	}
	for i := range m.levels {
		if active[i] {
			m.levels[i] -= m.DrainActive * dt
			if m.levels[i] < 0 {
				m.levels[i] = 0
			}
		} else {
			m.levels[i] += m.Recharge * dt
			if m.levels[i] > m.Capacity {
				m.levels[i] = m.Capacity
			}
		}
	}
}

// Levels returns a copy of the battery levels.
func (m *EnergyModel) Levels() []float64 {
	out := make([]float64, len(m.levels))
	copy(out, m.levels)
	return out
}

// MinLevel returns the lowest battery level.
func (m *EnergyModel) MinLevel() float64 {
	min := m.levels[0]
	for _, l := range m.levels[1:] {
		if l < min {
			min = l
		}
	}
	return min
}

// Depleted reports whether any battery is empty.
func (m *EnergyModel) Depleted() bool { return m.MinLevel() <= 0 }

// RotationStats summarizes how the privilege rotates among stations:
// per-station activation counts and the distribution of "uncovered-by-me"
// intervals (time between a station's consecutive activations).
type RotationStats struct {
	// Activations counts activation events per station.
	Activations []int
	// MeanGap and MaxGap summarize, across all stations, the time between
	// a station's consecutive activations.
	MeanGap, MaxGap float64
}

// Rotation computes rotation statistics from the transition log over
// [start, end].
func (t *Tracker) Rotation(start, end float64) RotationStats {
	events := t.Events()
	sort.SliceStable(events, func(i, j int) bool { return events[i].At < events[j].At })
	stats := RotationStats{Activations: make([]int, t.n)}
	lastAct := make([]float64, t.n)
	for i := range lastAct {
		lastAct[i] = -1
	}
	var gaps []float64
	for _, e := range events {
		if e.At < start || e.At > end || !e.Active {
			continue
		}
		stats.Activations[e.Node]++
		if lastAct[e.Node] >= 0 {
			gaps = append(gaps, e.At-lastAct[e.Node])
		}
		lastAct[e.Node] = e.At
	}
	for _, g := range gaps {
		stats.MeanGap += g
		if g > stats.MaxGap {
			stats.MaxGap = g
		}
	}
	if len(gaps) > 0 {
		stats.MeanGap /= float64(len(gaps))
	}
	return stats
}
