package inclusion

import (
	"testing"

	"ssrmin/internal/core"
	"ssrmin/internal/statemodel"
)

// TestCensusTableMatchesDirect exhaustively compares the compiled census
// against the direct SSRmin token predicates on every (class, pred, self,
// succ) combination of the n=4, K=5 instance.
func TestCensusTableMatchesDirect(t *testing.T) {
	a := core.New(4, 5)
	states := a.AllStates()
	ct := CompileCensus(states, a.N(), core.HasPrimary, core.HasSecondary)
	idx := func(s core.State) int {
		for i, x := range states {
			if x == s {
				return i
			}
		}
		t.Fatalf("state %v not enumerated", s)
		return -1
	}
	for class := 0; class < statemodel.ViewClasses; class++ {
		for _, p := range states {
			for _, s := range states {
				for _, u := range states {
					v := statemodel.ClassView(class, a.N(), p, s, u)
					tr := statemodel.TripleIndex(len(states), idx(p), idx(s), idx(u))
					b := ct.bits[class][tr]
					if wantP := core.HasPrimary(v); b&1 != 0 != wantP {
						t.Fatalf("primary mismatch at class %d view %v", class, v)
					}
					if wantS := core.HasSecondary(v); b&2 != 0 != wantS {
						t.Fatalf("secondary mismatch at class %d view %v", class, v)
					}
				}
			}
		}
	}
}

// TestCensusCountsTheorem1 spot-checks the Theorem 1 invariant on the
// canonical legitimate configuration: one primary, one secondary,
// privileged within [1, 2].
func TestCensusCountsTheorem1(t *testing.T) {
	a := core.New(5, 6)
	states := a.AllStates()
	idx := map[core.State]int{}
	for i, s := range states {
		idx[s] = i
	}
	ct := CompileCensus(states, a.N(), core.HasPrimary, core.HasSecondary)
	cfg := a.InitialLegitimate()
	triples := make([]uint32, a.N())
	for i := range triples {
		v := cfg.View(i)
		triples[i] = uint32(statemodel.TripleIndex(len(states), idx[v.Pred], idx[v.Self], idx[v.Succ]))
	}
	prim, sec, priv := ct.Counts(triples)
	if prim != 1 || sec != 1 || priv < 1 || priv > 2 {
		t.Fatalf("census of γ0 = (%d, %d, %d), want (1, 1, 1..2)", prim, sec, priv)
	}
}
