package synchro

import (
	"testing"

	"ssrmin/internal/core"
	"ssrmin/internal/daemon"
	"ssrmin/internal/dijkstra"
	"ssrmin/internal/msgnet"
	"ssrmin/internal/statemodel"
	"ssrmin/internal/verify"
)

func newSSRminRing(n, k int, seed int64, loss float64) (*core.Algorithm, *Ring[core.State]) {
	a := core.New(n, k)
	r := NewRing[core.State](a, a.InitialLegitimate(),
		msgnet.LinkParams{Delay: 0.01, Jitter: 0.002, LossProb: loss}, 0.05, seed)
	return a, r
}

// TestLockstepMatchesSynchronousDaemon proves the synchronizer exact: the
// sequence of per-round state vectors equals a reference simulation under
// the synchronous daemon, round for round.
func TestLockstepMatchesSynchronousDaemon(t *testing.T) {
	a, r := newSSRminRing(5, 6, 1, 0)

	// Reference: synchronous daemon in the state-reading model.
	ref := statemodel.NewSimulator[core.State](a, daemon.Synchronous{}, a.InitialLegitimate())
	refAt := []statemodel.Config[core.State]{ref.Config()}
	for i := 0; i < 200; i++ {
		ref.Step()
		refAt = append(refAt, ref.Config())
	}

	// Track each node's state at each completed round.
	type snap struct {
		round int
		state core.State
	}
	history := make([][]snap, 5)
	for i, nd := range r.Nodes {
		history[i] = append(history[i], snap{0, nd.State()})
	}
	r.Net.Observer = func(now msgnet.Time) {
		for i, nd := range r.Nodes {
			last := history[i][len(history[i])-1]
			if nd.Round() != last.round {
				history[i] = append(history[i], snap{nd.Round(), nd.State()})
			}
		}
	}
	r.Net.Run(20)

	for i := range history {
		for _, s := range history[i] {
			if s.round >= len(refAt) {
				continue
			}
			if refAt[s.round][i] != s.state {
				t.Fatalf("node %d at round %d: %v, reference %v", i, s.round, s.state, refAt[s.round][i])
			}
		}
		if len(history[i]) < 20 {
			t.Fatalf("node %d completed only %d rounds in 20s", i, len(history[i]))
		}
	}
}

func TestRoundSkewBounded(t *testing.T) {
	_, r := newSSRminRing(6, 7, 3, 0.1)
	maxSkew := 0
	r.Net.Observer = func(now msgnet.Time) {
		if s := r.MaxRoundSkew(); s > maxSkew {
			maxSkew = s
		}
	}
	r.Net.Run(30)
	// Adjacent nodes differ by ≤1 round, so the skew around a ring of 6 is
	// at most 3.
	if maxSkew > 3 {
		t.Fatalf("round skew reached %d", maxSkew)
	}
	if r.MinRound() < 50 {
		t.Fatalf("only %d rounds completed under 10%% loss", r.MinRound())
	}
}

// TestProgressUnderLoss verifies retransmission drives rounds forward even
// with heavy loss.
func TestProgressUnderLoss(t *testing.T) {
	_, r := newSSRminRing(5, 6, 7, 0.4)
	r.Net.Run(60)
	if r.MinRound() < 10 {
		t.Fatalf("only %d rounds under 40%% loss", r.MinRound())
	}
	if r.RuleExecutions() == 0 {
		t.Fatal("no rules executed")
	}
}

// TestSSRminKeepsInvariantUnderSynchronizer: SSRmin's predicates stay in
// [1,2] under this transform as well.
func TestSSRminKeepsInvariantUnderSynchronizer(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		_, r := newSSRminRing(5, 6, seed, 0)
		mon := verify.Monitor{Bounds: verify.SSRminBounds}
		r.Net.Observer = func(now msgnet.Time) {
			mon.Observe(float64(now), r.Census(core.HasToken))
		}
		r.Net.Run(10)
		if !mon.OK() {
			t.Fatalf("seed %d: %v", seed, mon.Violations[0])
		}
	}
}

// TestDijkstraStillGapsUnderSynchronizer is the headline negative result:
// even the exact synchronizer leaves zero-token instants for the plain
// token ring — the model gap is in the predicates, not the scheduling.
func TestDijkstraStillGapsUnderSynchronizer(t *testing.T) {
	a := dijkstra.New(5, 6)
	r := NewRing[dijkstra.State](a, a.InitialLegitimate(),
		msgnet.LinkParams{Delay: 0.01, Jitter: 0.002}, 0.05, 2)
	var tl verify.Timeline
	r.Net.Observer = func(now msgnet.Time) {
		tl.Record(float64(now), r.Census(dijkstra.HasToken))
	}
	r.Net.Run(20)
	tl.Close(float64(r.Net.Now()))
	if tl.Duration(0) <= 0 {
		t.Fatal("expected zero-token instants for SSToken under the synchronizer")
	}
	t.Logf("SSToken under α-synchronizer: %.1f%% of time with zero tokens", 100*tl.Fraction(0))
}

func TestNodeValidation(t *testing.T) {
	a := core.New(3, 4)
	defer func() {
		if recover() == nil {
			t.Error("zero refresh accepted")
		}
	}()
	NewNode[core.State](a, 0, core.State{}, 0)
}

func TestRingValidation(t *testing.T) {
	a := core.New(3, 4)
	defer func() {
		if recover() == nil {
			t.Error("bad init length accepted")
		}
	}()
	NewRing[core.State](a, statemodel.Config[core.State]{{}}, msgnet.LinkParams{}, 0.05, 1)
}
