// Package synchro is an α-synchronizer transform: the heavyweight
// alternative to the cached sensornet transform for executing a
// state-reading-model algorithm in a message-passing network.
//
// Execution proceeds in rounds. In round r every node broadcasts its
// round-r state to both neighbors, waits until it knows both neighbors'
// round-r states, then executes its enabled rule (if any) against that
// consistent view and advances to round r+1 — exactly the synchronous
// distributed daemon of the state-reading model, simulated with messages.
// Each broadcast piggybacks the previous round's state so that a neighbor
// that is one round behind (after a lost or suppressed frame) can still
// assemble its view; a retransmission timer makes every round eventually
// complete under message loss.
//
// The point of this package is the experiment it powers: even this exact,
// expensive simulation of the state-reading model does NOT give mutual
// inclusion for a plain token ring — between the instants at which
// neighboring nodes apply their round-r rules, an observer (and the nodes
// themselves, through their latest known neighbor states) still passes
// through zero-token configurations. The model gap is in the *predicates*,
// not the scheduler; that is why the paper fixes it with token conditions
// (SSRmin) rather than with a stronger transformation. See Section 1.3 and
// the "transforms" experiment.
package synchro

import (
	"fmt"

	"ssrmin/internal/msgnet"
	"ssrmin/internal/statemodel"
)

// packet is the round message: the sender's current round and state, plus
// its previous round's state for late neighbors.
type packet[S comparable] struct {
	Round int
	State S
	Prev  S
}

// Node is one α-synchronized process.
type Node[S comparable] struct {
	alg     statemodel.Algorithm[S]
	id, n   int
	round   int
	state   S
	prev    S
	refresh msgnet.Time

	// roundState[k] holds neighbor k's state for the round it is keyed
	// by; entries for rounds below the node's own round are garbage
	// collected on advance.
	roundState map[int]map[int]S // neighbor -> round -> state
	// latest[k] is neighbor k's newest known state (any round) — the
	// "cache" the token predicates read.
	latest map[int]S
	// latestRound[k] is the round of latest[k].
	latestRound map[int]int

	// Rounds counts completed rounds; RuleExecutions counts applied rules.
	Rounds         int
	RuleExecutions int
}

const timerResend = 1

// NewNode creates a synchronized node at round 0.
func NewNode[S comparable](alg statemodel.Algorithm[S], id int, init S, refresh msgnet.Time) *Node[S] {
	if refresh <= 0 {
		panic("synchro: refresh must be positive")
	}
	return &Node[S]{
		alg:         alg,
		id:          id,
		n:           alg.N(),
		state:       init,
		prev:        init,
		refresh:     refresh,
		roundState:  map[int]map[int]S{},
		latest:      map[int]S{},
		latestRound: map[int]int{},
	}
}

func (nd *Node[S]) pred() int { return (nd.id - 1 + nd.n) % nd.n }
func (nd *Node[S]) succ() int { return (nd.id + 1) % nd.n }

// State returns the node's current local state.
func (nd *Node[S]) State() S { return nd.state }

// Round returns the node's current round number.
func (nd *Node[S]) Round() int { return nd.round }

// View returns the node's view through its latest known neighbor states —
// what its token predicates can actually observe.
func (nd *Node[S]) View() statemodel.View[S] {
	return statemodel.View[S]{
		I:    nd.id,
		N:    nd.n,
		Self: nd.state,
		Pred: nd.latest[nd.pred()],
		Succ: nd.latest[nd.succ()],
	}
}

// SeedLatest initializes the latest-known neighbor states (for census
// continuity before the first packets arrive).
func (nd *Node[S]) SeedLatest(pred, succ S) {
	nd.latest[nd.pred()] = pred
	nd.latest[nd.succ()] = succ
}

// Start implements msgnet.Handler.
func (nd *Node[S]) Start(ctx *msgnet.Context[packet[S]]) {
	nd.broadcast(ctx)
	phase := msgnet.Time(ctx.Rand().Float64()) * nd.refresh
	ctx.After(phase, timerResend)
}

// Receive implements msgnet.Handler. The packet arrives as the
// network's concrete frame type — no boxing, no type assertion.
func (nd *Node[S]) Receive(ctx *msgnet.Context[packet[S]], from int, p packet[S]) {
	if from != nd.pred() && from != nd.succ() {
		panic(fmt.Sprintf("synchro: node %d received from non-neighbor %d", nd.id, from))
	}
	if p.Round >= nd.latestRound[from] {
		nd.latestRound[from] = p.Round
		nd.latest[from] = p.State
	}
	nd.note(from, p.Round, p.State)
	if p.Round > 0 {
		nd.note(from, p.Round-1, p.Prev)
	}
	nd.advance(ctx)
}

// Timer implements msgnet.Handler: retransmit the current round packet so
// that rounds complete under loss and link back-pressure.
func (nd *Node[S]) Timer(ctx *msgnet.Context[packet[S]], kind int) {
	if kind != timerResend {
		return
	}
	nd.broadcast(ctx)
	ctx.After(nd.refresh, timerResend)
}

// note records neighbor `from`'s state for a round, ignoring rounds the
// node has already passed.
func (nd *Node[S]) note(from, round int, s S) {
	if round < nd.round {
		return
	}
	m := nd.roundState[from]
	if m == nil {
		m = map[int]S{}
		nd.roundState[from] = m
	}
	m[round] = s
}

// advance completes as many rounds as the collected neighbor states allow.
func (nd *Node[S]) advance(ctx *msgnet.Context[packet[S]]) {
	for {
		ps, okP := nd.roundState[nd.pred()][nd.round]
		ss, okS := nd.roundState[nd.succ()][nd.round]
		if !okP || !okS {
			return
		}
		v := statemodel.View[S]{I: nd.id, N: nd.n, Self: nd.state, Pred: ps, Succ: ss}
		nd.prev = nd.state
		if rule := nd.alg.EnabledRule(v); rule != 0 {
			nd.state = nd.alg.Apply(v, rule)
			nd.RuleExecutions++
		}
		delete(nd.roundState[nd.pred()], nd.round)
		delete(nd.roundState[nd.succ()], nd.round)
		nd.round++
		nd.Rounds++
		nd.broadcast(ctx)
	}
}

func (nd *Node[S]) broadcast(ctx *msgnet.Context[packet[S]]) {
	p := packet[S]{Round: nd.round, State: nd.state, Prev: nd.prev}
	ctx.Send(nd.pred(), p)
	ctx.Send(nd.succ(), p)
}

// Ring wires synchronized nodes over an msgnet simulation.
type Ring[S comparable] struct {
	// Net is the underlying event simulation; its frame type is the
	// round packet.
	Net *msgnet.Network[packet[S]]
	// Nodes holds the synchronized nodes by process id.
	Nodes []*Node[S]
}

// NewRing builds an α-synchronized ring: every node starts at round 0 with
// init states and coherent latest-known caches.
func NewRing[S comparable](alg statemodel.Algorithm[S], init statemodel.Config[S], link msgnet.LinkParams, refresh msgnet.Time, seed int64) *Ring[S] {
	n := alg.N()
	if len(init) != n {
		panic(fmt.Sprintf("synchro: init length %d != n %d", len(init), n))
	}
	nodes := make([]*Node[S], n)
	handlers := make([]msgnet.Handler[packet[S]], n)
	for i := 0; i < n; i++ {
		nodes[i] = NewNode[S](alg, i, init[i], refresh)
		handlers[i] = nodes[i]
	}
	for i, nd := range nodes {
		nd.SeedLatest(init[(i-1+n)%n], init[(i+1)%n])
	}
	net := msgnet.New(handlers, seed)
	net.RingLinks(link)
	return &Ring[S]{Net: net, Nodes: nodes}
}

// Census counts nodes whose latest-known view satisfies holder.
func (r *Ring[S]) Census(holder func(statemodel.View[S]) bool) int {
	count := 0
	for _, nd := range r.Nodes {
		if holder(nd.View()) {
			count++
		}
	}
	return count
}

// MinRound returns the lowest round any node has reached.
func (r *Ring[S]) MinRound() int {
	min := r.Nodes[0].Round()
	for _, nd := range r.Nodes[1:] {
		if nd.Round() < min {
			min = nd.Round()
		}
	}
	return min
}

// MaxRoundSkew returns the largest round difference between any two nodes;
// the α-synchronizer guarantees it stays ≤ a small constant.
func (r *Ring[S]) MaxRoundSkew() int {
	min, max := r.Nodes[0].Round(), r.Nodes[0].Round()
	for _, nd := range r.Nodes[1:] {
		if nd.Round() < min {
			min = nd.Round()
		}
		if nd.Round() > max {
			max = nd.Round()
		}
	}
	return max - min
}

// States returns the true state vector. Note that states of different
// nodes may belong to different rounds (skew ≤ MaxRoundSkew).
func (r *Ring[S]) States() statemodel.Config[S] {
	cfg := make(statemodel.Config[S], len(r.Nodes))
	for i, nd := range r.Nodes {
		cfg[i] = nd.State()
	}
	return cfg
}

// RuleExecutions sums applied rules across nodes.
func (r *Ring[S]) RuleExecutions() int {
	total := 0
	for _, nd := range r.Nodes {
		total += nd.RuleExecutions
	}
	return total
}
