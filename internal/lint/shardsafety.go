// shardsafety: shard-index provenance analysis for the sharded engine.
// Each Engine worker owns one arc of the ring; inside a worker function
// every access to the per-node arrays (nodes, links) must be indexed by a
// node the arc owns, and every event record enqueued locally must be
// destined for an owned node — the only sanctioned way to affect another
// shard is the SPSC ring send path behind the gate function. The analyzer
// tracks where each node index came from (owned parameter, neighbor
// arithmetic, unknown) through straight-line assignments and flags the
// accesses and calls whose provenance is not owned.
//
// Annotations (in a function's doc comment):
//
//	//shardsafety:worker [owns=<path>,...]
//	    The function runs in worker context: its body is checked, and the
//	    listed parameters (or parameter fields, e.g. rec.node) are node
//	    indices owned by the calling shard's arc. Call sites inside other
//	    workers must pass owned values at those positions.
//
//	//shardsafety:neighbor
//	    The function maps a node index to a neighbor's index; its result
//	    is foreign — usable as a message destination through the gate,
//	    never as an array index or a local enqueue destination.
//
//	//shardsafety:gate
//	    The function is the sanctioned shard-crossing point: callers may
//	    hand it records with foreign destinations, and its own body is
//	    exempt from the checks (it is the code that routes between the
//	    local heap and the SPSC rings).
//
//	//shardsafety:source
//	    The function materializes an event record the calling shard owns
//	    (a heap pop): after a call, the pointed-to record's node field is
//	    owned.
//
// The analysis is a forward pass over each worker body in source order;
// branches are walked in order and the last write wins. That is exact for
// the engine's straight-line worker functions and errs toward "unknown"
// elsewhere — unknown is rejected where owned is required, so a genuinely
// safe-but-opaque flow (the boxed reference twin's heap.Pop) carries an
// explicit //lint:ignore waiver instead of silently passing.
package lint

import (
	"go/ast"
	"go/types"
	"regexp"
	"strings"
)

// ShardSafety is the shard-ownership provenance analyzer.
var ShardSafety = &Analyzer{
	Name:     "shardsafety",
	Doc:      "worker loops may only touch state owned by their arc; cross-shard effects must ride the SPSC gate",
	Packages: []string{"ssrmin/internal/runtime"},
	Run:      runShardSafety,
}

// shardArrays are the Engine fields holding per-node state; indexing them
// inside a worker demands an owned index.
var shardArrays = map[string]bool{"nodes": true, "links": true}

var shardAnnRe = regexp.MustCompile(`^//shardsafety:(worker|neighbor|gate|source)(?:\s+(.*))?$`)

type shardRole struct {
	kind string   // worker, neighbor, gate, source
	owns []string // worker: owned parameter paths ("node", "rec.node")
	decl *ast.FuncDecl
}

// shardRoles indexes every annotated function of the package by its
// *types.Func object, so call sites resolve through the type checker.
func shardRoles(pass *Pass) map[types.Object]*shardRole {
	roles := map[types.Object]*shardRole{}
	for _, f := range pass.Pkg.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Doc == nil {
				continue
			}
			for _, c := range fd.Doc.List {
				m := shardAnnRe.FindStringSubmatch(strings.TrimSpace(c.Text))
				if m == nil {
					continue
				}
				role := &shardRole{kind: m[1], decl: fd}
				for _, arg := range strings.Fields(m[2]) {
					if paths, ok := strings.CutPrefix(arg, "owns="); ok && role.kind == "worker" {
						role.owns = append(role.owns, strings.Split(paths, ",")...)
					} else {
						pass.Reportf(fd.Pos(), "shardsafety: unknown annotation argument %q", arg)
					}
				}
				obj := pass.Pkg.Info.Defs[fd.Name]
				if prev, dup := roles[obj]; dup {
					pass.Reportf(fd.Pos(), "shardsafety: %s has conflicting annotations (%s and %s)", fd.Name.Name, prev.kind, role.kind)
					continue
				}
				roles[obj] = role
			}
		}
	}
	return roles
}

func runShardSafety(pass *Pass) {
	roles := shardRoles(pass)
	if len(roles) == 0 {
		return
	}
	for _, role := range roles {
		if role.kind == "worker" {
			checkWorkerBody(pass, roles, role)
		}
	}
}

// prov is the provenance lattice of a node-index value.
type prov int

const (
	provUnknown prov = iota // not tracked: rejected where owned is required
	provConst               // literal / untyped constant: neutral in arithmetic
	provOwned               // derived from an owned index
	provForeign             // derived from a neighbor call: another arc's index
)

// combine joins the provenance of an arithmetic expression's operands:
// foreign poisons, owned survives constants, anything else is unknown.
func combine(a, b prov) prov {
	switch {
	case a == provForeign || b == provForeign:
		return provForeign
	case a == provConst:
		return b
	case b == provConst:
		return a
	case a == b:
		return a
	}
	return provUnknown
}

// shardFlow is the per-function forward pass: vars holds whole-variable
// provenance, fields holds "var.field" provenance for event records.
type shardFlow struct {
	pass   *Pass
	roles  map[types.Object]*shardRole
	fn     *shardRole
	vars   map[string]prov
	fields map[string]prov
}

func checkWorkerBody(pass *Pass, roles map[types.Object]*shardRole, role *shardRole) {
	if role.decl.Body == nil {
		return
	}
	fl := &shardFlow{pass: pass, roles: roles, fn: role, vars: map[string]prov{}, fields: map[string]prov{}}
	declared := paramNames(role.decl)
	for _, path := range role.owns {
		root := path
		if i := strings.IndexByte(path, '.'); i >= 0 {
			root = path[:i]
			fl.fields[path] = provOwned
		} else {
			fl.vars[path] = provOwned
		}
		if !declared[root] {
			pass.Reportf(role.decl.Pos(), "shardsafety: owns path %q does not name a parameter of %s", path, role.decl.Name.Name)
		}
	}
	fl.walkStmts(role.decl.Body.List)
}

func paramNames(decl *ast.FuncDecl) map[string]bool {
	out := map[string]bool{}
	lists := []*ast.FieldList{decl.Recv, decl.Type.Params}
	for _, l := range lists {
		if l == nil {
			continue
		}
		for _, f := range l.List {
			for _, n := range f.Names {
				out[n.Name] = true
			}
		}
	}
	return out
}

func (fl *shardFlow) walkStmts(stmts []ast.Stmt) {
	for _, s := range stmts {
		fl.walkStmt(s)
	}
}

func (fl *shardFlow) walkStmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		fl.walkStmts(s.List)
	case *ast.AssignStmt:
		fl.checkExprs(s.Rhs)
		fl.recordAssign(s)
		for _, lhs := range s.Lhs {
			fl.checkExpr(lhs)
		}
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				fl.checkExprs(vs.Values)
				for i, name := range vs.Names {
					if i < len(vs.Values) {
						fl.setVar(name.Name, vs.Values[i])
					}
				}
			}
		}
	case *ast.ExprStmt:
		fl.checkExpr(s.X)
	case *ast.IfStmt:
		if s.Init != nil {
			fl.walkStmt(s.Init)
		}
		fl.checkExpr(s.Cond)
		fl.walkStmt(s.Body)
		if s.Else != nil {
			fl.walkStmt(s.Else)
		}
	case *ast.ForStmt:
		if s.Init != nil {
			fl.walkStmt(s.Init)
		}
		if s.Cond != nil {
			fl.checkExpr(s.Cond)
		}
		fl.walkStmt(s.Body)
		if s.Post != nil {
			fl.walkStmt(s.Post)
		}
	case *ast.RangeStmt:
		fl.checkExpr(s.X)
		fl.walkStmt(s.Body)
	case *ast.SwitchStmt:
		if s.Init != nil {
			fl.walkStmt(s.Init)
		}
		if s.Tag != nil {
			fl.checkExpr(s.Tag)
		}
		for _, c := range s.Body.List {
			cc := c.(*ast.CaseClause)
			fl.checkExprs(cc.List)
			fl.walkStmts(cc.Body)
		}
	case *ast.ReturnStmt:
		fl.checkExprs(s.Results)
	case *ast.IncDecStmt:
		fl.checkExpr(s.X)
	}
}

// recordAssign updates provenance for v = expr, v.field = expr, and keyed
// composite-literal initializations of event records.
func (fl *shardFlow) recordAssign(s *ast.AssignStmt) {
	if len(s.Lhs) != len(s.Rhs) {
		for _, lhs := range s.Lhs {
			if id, ok := lhs.(*ast.Ident); ok {
				fl.vars[id.Name] = provUnknown
			}
		}
		return
	}
	for i, lhs := range s.Lhs {
		switch lhs := lhs.(type) {
		case *ast.Ident:
			fl.setVar(lhs.Name, s.Rhs[i])
		case *ast.SelectorExpr:
			if base, ok := lhs.X.(*ast.Ident); ok {
				fl.fields[base.Name+"."+lhs.Sel.Name] = fl.provOf(s.Rhs[i])
			}
		}
	}
}

// setVar binds name to the provenance of rhs; a keyed composite literal
// additionally seeds the per-field map (rec := eventRec{node: peer, …}).
func (fl *shardFlow) setVar(name string, rhs ast.Expr) {
	fl.vars[name] = fl.provOf(rhs)
	if lit, ok := ast.Unparen(rhs).(*ast.CompositeLit); ok {
		for _, el := range lit.Elts {
			kv, ok := el.(*ast.KeyValueExpr)
			if !ok {
				continue
			}
			if key, ok := kv.Key.(*ast.Ident); ok {
				fl.fields[name+"."+key.Name] = fl.provOf(kv.Value)
			}
		}
	}
}

// provOf computes the provenance of an index-like expression.
func (fl *shardFlow) provOf(e ast.Expr) prov {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		if p, ok := fl.vars[e.Name]; ok {
			return p
		}
		if _, isConst := fl.pass.ObjectOf(e).(*types.Const); isConst {
			return provConst
		}
		return provUnknown
	case *ast.BasicLit:
		return provConst
	case *ast.SelectorExpr:
		if base, ok := e.X.(*ast.Ident); ok {
			if p, ok := fl.fields[base.Name+"."+e.Sel.Name]; ok {
				return p
			}
		}
		if obj, ok := fl.selObj(e); ok {
			if _, isConst := obj.(*types.Const); isConst {
				return provConst
			}
		}
		return provUnknown
	case *ast.UnaryExpr:
		return fl.provOf(e.X)
	case *ast.BinaryExpr:
		return combine(fl.provOf(e.X), fl.provOf(e.Y))
	case *ast.IndexExpr:
		// Reading a per-node array at an owned index yields an owned
		// value (nd := &e.nodes[node]).
		if sel, ok := ast.Unparen(e.X).(*ast.SelectorExpr); ok && shardArrays[sel.Sel.Name] {
			return fl.provOf(e.Index)
		}
		return provUnknown
	case *ast.CallExpr:
		if role := fl.calleeRole(e); role != nil && role.kind == "neighbor" {
			return provForeign
		}
		// Integer conversions are transparent (int32(node)).
		if id, ok := ast.Unparen(e.Fun).(*ast.Ident); ok && len(e.Args) == 1 {
			if _, isType := fl.pass.ObjectOf(id).(*types.TypeName); isType {
				return fl.provOf(e.Args[0])
			}
		}
		return provUnknown
	}
	return provUnknown
}

func (fl *shardFlow) selObj(e *ast.SelectorExpr) (types.Object, bool) {
	obj := fl.pass.Pkg.Info.Uses[e.Sel]
	return obj, obj != nil
}

func (fl *shardFlow) checkExprs(exprs []ast.Expr) {
	for _, e := range exprs {
		fl.checkExpr(e)
	}
}

// checkExpr enforces the two rules on every sub-expression: per-node
// array indices must be owned, and calls into worker functions must pass
// owned values at their owns positions.
func (fl *shardFlow) checkExpr(e ast.Expr) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.IndexExpr:
			sel, ok := ast.Unparen(n.X).(*ast.SelectorExpr)
			if !ok || !shardArrays[sel.Sel.Name] {
				return true
			}
			if p := fl.provOf(n.Index); p != provOwned && p != provConst {
				fl.pass.Reportf(n.Index.Pos(),
					"shardsafety: %s indexes %s with a %s node index %s — workers may only touch state owned by their arc",
					fl.fn.decl.Name.Name, sel.Sel.Name, provName(p), exprKey(n.Index))
			}
		case *ast.CallExpr:
			fl.checkCall(n)
		}
		return true
	})
}

// checkCall verifies owned provenance at the owns positions of a
// worker-annotated callee. Gate callees are exempt by design.
func (fl *shardFlow) checkCall(call *ast.CallExpr) {
	role := fl.calleeRole(call)
	if role == nil {
		return
	}
	switch role.kind {
	case "source":
		// The popped record's destination becomes owned: pop(&rec).
		if len(call.Args) == 1 {
			if arg, ok := stripAddr(call.Args[0]).(*ast.Ident); ok {
				fl.fields[arg.Name+".node"] = provOwned
				fl.vars[arg.Name] = provOwned
			}
		}
	case "worker":
		params := flatParamNames(role.decl)
		for _, path := range role.owns {
			root, field := path, ""
			if i := strings.IndexByte(path, '.'); i >= 0 {
				root, field = path[:i], path[i+1:]
			}
			pos := -1
			for i, name := range params {
				if name == root {
					pos = i
					break
				}
			}
			if pos < 0 || pos >= len(call.Args) {
				continue
			}
			arg := stripAddr(call.Args[pos])
			p := fl.argProv(arg, field)
			if p != provOwned {
				fl.pass.Reportf(call.Args[pos].Pos(),
					"shardsafety: %s passes a %s value for %s of worker %s — only the owning arc may enqueue or step this node",
					fl.fn.decl.Name.Name, provName(p), path, role.decl.Name.Name)
			}
		}
	}
}

// argProv resolves the provenance of a call argument, descending into the
// record field an owns path names (rec.node).
func (fl *shardFlow) argProv(arg ast.Expr, field string) prov {
	if field == "" {
		return fl.provOf(arg)
	}
	switch arg := ast.Unparen(arg).(type) {
	case *ast.Ident:
		if p, ok := fl.fields[arg.Name+"."+field]; ok {
			return p
		}
		return fl.vars[arg.Name]
	case *ast.CompositeLit:
		for _, el := range arg.Elts {
			kv, ok := el.(*ast.KeyValueExpr)
			if !ok {
				continue
			}
			if key, ok := kv.Key.(*ast.Ident); ok && key.Name == field {
				return fl.provOf(kv.Value)
			}
		}
	}
	return provUnknown
}

func (fl *shardFlow) calleeRole(call *ast.CallExpr) *shardRole {
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = fl.pass.ObjectOf(fun)
	case *ast.SelectorExpr:
		obj = fl.pass.Pkg.Info.Uses[fun.Sel]
	}
	if obj == nil {
		return nil
	}
	// Generic instantiation: annotations live on the generic decl, whose
	// object is the origin.
	if f, ok := obj.(*types.Func); ok {
		obj = f.Origin()
	}
	return fl.roles[obj]
}

func stripAddr(e ast.Expr) ast.Expr {
	if u, ok := ast.Unparen(e).(*ast.UnaryExpr); ok {
		return ast.Unparen(u.X)
	}
	return ast.Unparen(e)
}

// flatParamNames flattens the non-receiver parameter names in call-site
// argument order.
func flatParamNames(decl *ast.FuncDecl) []string {
	var out []string
	if decl.Type.Params == nil {
		return out
	}
	for _, f := range decl.Type.Params.List {
		if len(f.Names) == 0 {
			out = append(out, "")
			continue
		}
		for _, n := range f.Names {
			out = append(out, n.Name)
		}
	}
	return out
}

func provName(p prov) string {
	switch p {
	case provOwned:
		return "owned"
	case provForeign:
		return "foreign"
	case provConst:
		return "constant"
	}
	return "unknown-provenance"
}
