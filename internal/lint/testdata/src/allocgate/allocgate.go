// Fixture for the allocgate analyzer: two hot functions with deliberate
// heap allocations (a returned pointer and a variable-size make), one
// clean hot function, and an unannotated allocator the gate must ignore.
package allocgate

type box struct{ v int }

//allocgate:hot
func hotAlloc(n int) *box {
	b := &box{v: n} // want `hot function hotAlloc allocates on the heap`
	return b
}

//allocgate:hot
func hotSlice(n int) int {
	s := make([]int, n) // want `hot function hotSlice allocates on the heap`
	sum := 0
	for _, v := range s {
		sum += v
	}
	return sum
}

//allocgate:hot
func hotClean(a, b int) int {
	return a + b
}

func coldAlloc(n int) *box {
	return &box{v: n}
}
