// Fixture for the allocgate analyzer: two hot functions with deliberate
// heap allocations (a returned pointer and a variable-size make), one
// clean hot function, and an unannotated allocator the gate must ignore.
package allocgate

type box struct{ v int }

//allocgate:hot
func hotAlloc(n int) *box {
	b := &box{v: n} // want `hot function hotAlloc allocates on the heap`
	return b
}

//allocgate:hot
func hotSlice(n int) int {
	s := make([]int, n) // want `hot function hotSlice allocates on the heap`
	sum := 0
	for _, v := range s {
		sum += v
	}
	return sum
}

//allocgate:hot
func hotClean(a, b int) int {
	return a + b
}

// kernel mimics a bit-sliced step kernel: preallocated plane buffers,
// pure word arithmetic. The clean variant reuses its scratch; the dirty
// one allocates the scratch digit every step.
type kernel struct {
	x, inc []uint64
}

//allocgate:hot
func (k *kernel) stepClean(m uint64) {
	for p := range k.x {
		k.inc[p] = (k.x[p] &^ m) | (k.inc[p] & m)
	}
}

//allocgate:hot
func (k *kernel) stepDirty(m uint64) uint64 {
	scratch := make([]uint64, len(k.x)) // want `hot function stepDirty allocates on the heap`
	var acc uint64
	for p := range k.x {
		scratch[p] = k.x[p] & m
		acc |= scratch[p]
	}
	return acc
}

func coldAlloc(n int) *box {
	return &box{v: n}
}
