// Package deprecated is the fixture for the deprecated analyzer: every
// way the legacy option-struct shims can sneak back into a call site,
// next to the functional-options idiom that replaces them.
package deprecated

import (
	"time"

	"ssrmin"
)

// BadMP builds a message-passing simulation through the legacy struct.
func BadMP() *ssrmin.MPSimulation {
	return ssrmin.NewMPSimulation(5, ssrmin.MPOptions{Seed: 1}) // want `deprecated option shim ssrmin\.MPOptions; migrate to functional options`
}

// BadLive configures a live ring the pre-options way.
func BadLive() *ssrmin.LiveRing {
	opts := ssrmin.LiveOptions{Delay: time.Millisecond, Seed: 2} // want `deprecated option shim ssrmin\.LiveOptions; migrate to functional options`
	return ssrmin.NewLiveRing(5, opts)
}

// BadAlias declares a helper against the historical alias name.
func BadAlias(extra ...ssrmin.SimOption) *ssrmin.Simulation { // want `deprecated option shim ssrmin\.SimOption; migrate to Option`
	return ssrmin.NewSimulation(5, extra...)
}

// GoodMP is the migrated form of BadMP: same run, options vocabulary.
func GoodMP() *ssrmin.MPSimulation {
	return ssrmin.NewMPSimulation(5, ssrmin.WithSeed(1))
}

// GoodLive is the migrated form of BadLive.
func GoodLive() *ssrmin.LiveRing {
	return ssrmin.NewLiveRing(5,
		ssrmin.WithDelay(time.Millisecond), ssrmin.WithSeed(2))
}

// GoodAlias uses the canonical Option name.
func GoodAlias(extra ...ssrmin.Option) *ssrmin.Simulation {
	return ssrmin.NewSimulation(5, extra...)
}
