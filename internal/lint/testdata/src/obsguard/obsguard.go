// Package obsguard is the fixture for the obsguard analyzer: unguarded
// observer/sink calls and stray event allocation, next to each guard
// idiom the repository actually uses.
package obsguard

import "ssrmin/internal/obs"

// Net mimics a hot-path simulation struct carrying optional
// observability.
type Net struct {
	Obs  *obs.Observer
	sink obs.Sink
	now  int
}

// BadSend fires an observer method with no nil check in sight.
func (n *Net) BadSend(from, to int) {
	n.Obs.MsgSent(float64(n.now), from, to) // want `hot-path call n.Obs.MsgSent on \*obs.Observer is not dominated by a nil check`
}

// BadSink calls through the interface field unguarded: a latent panic,
// and the event literal allocates on the no-observer path.
func (n *Net) BadSink() {
	n.sink.Emit(obs.Event{Kind: obs.KindMsgSent}) // want `hot-path call n.sink.Emit on obs.Sink is not dominated by a nil check` `obs.Event constructed outside an observer nil-guard`
}

// BadEvent allocates an event outside any guard.
func (n *Net) BadEvent() obs.Event {
	ev := obs.Event{Kind: obs.KindRuleFired, Node: 1} // want `obs.Event constructed outside an observer nil-guard`
	return ev
}

// GoodSend uses the bind-and-check idiom.
func (n *Net) GoodSend(from, to int) {
	if o := n.Obs; o != nil {
		o.MsgSent(float64(n.now), from, to)
	}
}

// GoodField checks the field expression itself.
func (n *Net) GoodField() {
	if n.Obs != nil {
		n.Obs.Step(float64(n.now), 1)
	}
}

// GoodEarly guards with an early return.
func (n *Net) GoodEarly(moves int) {
	if n.Obs == nil {
		return
	}
	n.Obs.Step(float64(n.now), moves)
}

// GoodEvent confines allocation to the sink-present branch.
func (n *Net) GoodEvent() {
	if n.sink != nil {
		n.sink.Emit(obs.Event{Kind: obs.KindHandover, Node: 2, Gained: true})
	}
}

// GoodChained: inside the observer guard even a dynamically obtained
// sink passes.
func (n *Net) GoodChained() {
	if o := n.Obs; o != nil {
		o.Sink().Emit(obs.Event{Kind: obs.KindConverged})
	}
}

// WaivedSend demonstrates an inline suppression with a reason.
func (n *Net) WaivedSend() {
	n.Obs.Step(float64(n.now), 0) //lint:ignore obsguard cold path, called once at shutdown
}
