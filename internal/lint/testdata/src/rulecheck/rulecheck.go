// Fixture for the rulecheck analyzer: local copies of the SSToken
// guard/command pair, deliberately perturbed, annotated against the
// registered "dijkstra" reference. The sweep diffs this source against
// the tables compiled from the real internal/dijkstra package, so each
// perturbation surfaces as a concrete (view → transition) witness.
package rulecheck

// State mirrors dijkstra.State's layout (one counter field).
type State struct{ X int }

// View mirrors statemodel.View's canonical field order.
type View struct {
	I    int
	N    int
	Self State
	Pred State
	Succ State
}

func (v View) Bottom() bool { return v.I == 0 }

// Alg mirrors dijkstra.Algorithm's configuration fields.
type Alg struct {
	n, k int
}

// EnabledRule has the bottom guard inverted: real SSToken enables the
// bottom process on counter equality, this copy on inequality.
//
//rulecheck:relation dijkstra
func (a *Alg) EnabledRule(v View) int { // want `source EnabledRule disagrees with the compiled rule table .*64 of 128 valuations differ`
	if v.Bottom() {
		if v.Self.X != v.Pred.X {
			return 1
		}
		return 0
	}
	if v.Self.X != v.Pred.X {
		return 1
	}
	return 0
}

// Apply increments in both arms: real SSToken copies the predecessor's
// counter at non-bottom processes.
//
//rulecheck:relation dijkstra
func (a *Alg) Apply(v View, rule int) State { // want `source Apply disagrees with the compiled next-state table`
	if v.Bottom() {
		return State{X: (v.Pred.X + 1) % a.k}
	}
	return State{X: (v.Pred.X + 1) % a.k}
}

// GoodGuard is the faithful SSToken token condition.
//
//rulecheck:guard dijkstra token
func GoodGuard(v View) bool {
	if v.I == 0 {
		return v.Self.X == v.Pred.X
	}
	return v.Self.X != v.Pred.X
}

// GoodGuardX is GoodGuard on bare counters — the args= form.
//
//rulecheck:guard dijkstra token args=I,Self.X,Pred.X
func GoodGuardX(i, selfX, predX int) bool {
	if i == 0 {
		return selfX == predX
	}
	return selfX != predX
}

// BadGuard inverts the bottom case.
//
//rulecheck:guard dijkstra token
func BadGuard(v View) bool { // want `guard group "token" is not pointwise equal`
	if v.I == 0 {
		return v.Self.X != v.Pred.X
	}
	return v.Self.X != v.Pred.X
}

type node struct {
	state State
	alg   *Alg
}

// goodStep follows the composite-atomicity shape of Algorithm 4.
//
//rulecheck:step
func (nd *node) goodStep(v View) {
	rule := nd.alg.EnabledRule(v)
	if rule == 0 {
		return
	}
	nd.state = nd.alg.Apply(v, rule)
}

// badStep applies the rule to a different view than the one the rule was
// evaluated on.
//
//rulecheck:step
func (nd *node) badStep(v, w View) {
	rule := nd.alg.EnabledRule(v)
	if rule != 0 {
		nd.state = nd.alg.Apply(w, rule) // want `Apply must be called with the same`
	}
}
