// Package determinism is the fixture for the determinism analyzer:
// map-order leaks, wall-clock reads, and global math/rand draws, next to
// the commutative and sorted idioms that stay legal.
package determinism

import (
	"fmt"
	"io"
	"math/rand"
	"sort"
	"time"
)

// EmitCounts prints map entries in iteration order.
func EmitCounts(w io.Writer, counts map[string]int) {
	for k, v := range counts { // want `iteration over map feeds ordered output \(fmt.Fprintf\)`
		fmt.Fprintf(w, "%s=%d\n", k, v)
	}
}

// SumCounts is a commutative reduction: order-free, not flagged.
func SumCounts(counts map[string]int) int {
	total := 0
	for _, v := range counts {
		total += v
	}
	return total
}

// SortedEmit collects keys, sorts them, then prints: the blessed idiom.
func SortedEmit(w io.Writer, counts map[string]int) {
	keys := make([]string, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(w, "%s=%d\n", k, counts[k])
	}
}

// CollectUnsorted materializes the iteration order into a slice and
// never repairs it.
func CollectUnsorted(counts map[string]int) []string {
	var keys []string
	for k := range counts { // want `iteration over map feeds ordered output \(append\)`
		keys = append(keys, k)
	}
	return keys
}

// Jitter draws from the global source and reads the wall clock.
func Jitter() time.Duration {
	n := rand.Intn(10) // want `global math/rand.Intn uses the shared unseeded source`
	_ = time.Now()     // want `time.Now in a deterministic package`
	return time.Duration(n)
}

// SeededJitter threads an explicit source: legal.
func SeededJitter(r *rand.Rand) int {
	return r.Intn(10)
}

// Describe builds a string across a map: order-dependent.
func Describe(m map[int]string) string {
	s := ""
	for _, v := range m { // want `iteration over map feeds ordered output \(string concatenation\)`
		s += v
	}
	return s
}

// DumpDebug carries an explicit waiver: suppressed, so no finding.
func DumpDebug(w io.Writer, m map[string]int) {
	//lint:ignore determinism debug-only dump, not part of any golden
	for k, v := range m {
		fmt.Fprintf(w, "%s=%d\n", k, v)
	}
}
