// Package locality is the fixture for the locality analyzer: every
// construct the state-reading model of Section 2.1 forbids inside guard
// and command functions, next to the clean idioms it must keep quiet on.
package locality

import (
	"fmt"

	"ssrmin/internal/statemodel"
)

// St is a struct state, to exercise nested neighbor-field selectors.
type St struct{ X, Phase int }

// debugCount is package-level state no view function may touch.
var debugCount int

// Alg is an algorithm skeleton with a mutable pointer-receiver field.
type Alg struct{ steps int }

// Guard is named like a guard and breaks every guard rule at once.
func (a *Alg) Guard(v statemodel.View[int]) bool {
	debugCount++        // want `mutates package-level variable debugCount`
	fmt.Println(v.Self) // want `guard Guard performs I/O`
	return v.Self != v.Pred
}

// EnabledRule mutates the algorithm through its pointer receiver.
func (a *Alg) EnabledRule(v statemodel.View[int]) int {
	a.steps++ // want `writes through pointer a`
	if v.Self == v.Pred {
		return 1
	}
	return 0
}

// Apply writes both neighbor components of the view.
func Apply(v statemodel.View[St]) St {
	v.Pred.X = 0  // want `writes to the Pred component of a View`
	v.Succ = St{} // want `writes to the Succ component of a View`
	return v.Self
}

// Notify leaks a step observation through a channel.
func Notify(v statemodel.View[int], ch chan int) int {
	ch <- v.Self // want `Notify sends on a channel`
	return v.Self
}

// GoodGuard reads both neighbors and stays pure.
func GoodGuard(v statemodel.View[St]) bool {
	localCopy := v.Self
	localCopy.X++
	return localCopy.X > v.Pred.X && v.Succ.Phase == v.Self.Phase
}

// NextState is a clean command: every write is step-local.
func NextState(v statemodel.View[St]) St {
	seen := map[int]bool{}
	seen[v.Pred.X] = true
	seen[v.Succ.X] = true
	out := v.Self
	if seen[out.X] {
		out.Phase++
	}
	return out
}
