// Package hotpath is the fixture for the hotpath analyzer: any-typed
// struct fields and per-call allocations outside constructors are
// flagged; constructors, amortizing allocations (append, make-slice),
// and waivered cold paths are not.
package hotpath

// queue mimics the event container of a message-passing engine.
type queue struct {
	payload  any         // want `field payload is typed any`
	boxed    interface{} // want `field boxed is typed any`
	Stringer             // want `embeds an empty interface`
	seq      uint64
	slots    []int
}

// Stringer is empty on purpose: embedding it is the same box as a field.
type Stringer interface{}

// generic shows the sanctioned payload idiom: a field typed by a
// parameter constrained by any is concrete at every instantiation and
// must not be flagged.
type generic[P any] struct {
	payload P
	seq     uint64
}

// typed is the concrete counterpart; nothing here is a finding.
type typed struct {
	payload int
	names   []string
}

// NewQueue is a constructor: the one shape allowed to allocate.
func NewQueue() *queue {
	q := &queue{slots: make([]int, 0, 16)}
	m := make(map[int]int)
	_ = m
	return q
}

// schedule sits on the per-event path; each of these forms is one heap
// allocation per scheduled event.
func schedule(q *queue, v int) *typed {
	e := &typed{payload: v}    // want `allocates a composite literal per call`
	p := new(typed)            // want `calls new\(\) per invocation`
	seen := make(map[int]bool) // want `builds a map per invocation`
	_ = seen
	_ = p
	return e
}

// deliver shows the allowed forms: value composites, append growth, and
// slice make all amortize or stay on the stack.
func deliver(q *queue, v int) typed {
	e := typed{payload: v}
	q.slots = append(q.slots, v)
	buf := make([]int, 0, 4)
	_ = buf
	return e
}

// drain shows a closure on the hot path being scanned too.
func drain(q *queue) func() *typed {
	return func() *typed {
		return new(typed) // want `calls new\(\) per invocation`
	}
}

// rebuild is a cold path with an explicit, justified waiver.
func rebuild(q *queue) map[int]int {
	//lint:ignore hotpath one-shot diagnostic helper, never on the event path
	idx := make(map[int]int, len(q.slots))
	for i, s := range q.slots {
		idx[s] = i
	}
	return idx
}

// shadowedNew proves only the predeclared builtins count: a local
// function named new or make is not an allocation.
func shadowedNew(q *queue) int {
	new := func() int { return 1 }
	make := func(n int) int { return n }
	return new() + make(2)
}
