// Package hotpath is the fixture for the hotpath analyzer: any-typed
// struct fields and per-call allocations outside constructors are
// flagged; constructors, amortizing allocations (append, make-slice),
// and waivered cold paths are not.
package hotpath

// queue mimics the event container of a message-passing engine.
type queue struct {
	payload  any         // want `field payload is typed any`
	boxed    interface{} // want `field boxed is typed any`
	Stringer             // want `embeds an empty interface`
	seq      uint64
	slots    []int
}

// Stringer is empty on purpose: embedding it is the same box as a field.
type Stringer interface{}

// generic shows the sanctioned payload idiom: a field typed by a
// parameter constrained by any is concrete at every instantiation and
// must not be flagged.
type generic[P any] struct {
	payload P
	seq     uint64
}

// typed is the concrete counterpart; nothing here is a finding.
type typed struct {
	payload int
	names   []string
}

// NewQueue is a constructor: the one shape allowed to allocate.
func NewQueue() *queue {
	q := &queue{slots: make([]int, 0, 16)}
	m := make(map[int]int)
	_ = m
	return q
}

// schedule sits on the per-event path; each of these forms is one heap
// allocation per scheduled event.
func schedule(q *queue, v int) *typed {
	e := &typed{payload: v}    // want `allocates a composite literal per call`
	p := new(typed)            // want `calls new\(\) per invocation`
	seen := make(map[int]bool) // want `builds a map per invocation`
	_ = seen
	_ = p
	return e
}

// deliver shows the allowed forms: value composites, append growth, and
// slice make all amortize or stay on the stack.
func deliver(q *queue, v int) typed {
	e := typed{payload: v}
	q.slots = append(q.slots, v)
	buf := make([]int, 0, 4)
	_ = buf
	return e
}

// drain shows a closure on the hot path being scanned too.
func drain(q *queue) func() *typed {
	return func() *typed {
		return new(typed) // want `calls new\(\) per invocation`
	}
}

// rebuild is a cold path with an explicit, justified waiver.
func rebuild(q *queue) map[int]int {
	//lint:ignore hotpath one-shot diagnostic helper, never on the event path
	idx := make(map[int]int, len(q.slots))
	for i, s := range q.slots {
		idx[s] = i
	}
	return idx
}

// batch mimics a bit-sliced lane kernel: plane-transposed words plus a
// per-lane done mask, all preallocated by its constructor.
type batch struct {
	planes []uint64
	done   uint64
}

// NewBatch is the construction site — the only place the kernel's
// buffers may be allocated.
func NewBatch(n int) *batch {
	return &batch{planes: make([]uint64, n)}
}

// stepBatch is the per-step kernel shape: pure word arithmetic over the
// preallocated planes, nothing flagged.
func stepBatch(b *batch, m uint64) {
	for p := range b.planes {
		b.planes[p] = (b.planes[p] &^ m) | (b.planes[p] >> 1 & m)
	}
	b.done |= m
}

// stepBatchDirty regresses the kernel: a fresh scratch batch and a
// per-lane map built once per step instead of once per construction.
func stepBatchDirty(b *batch, m uint64) uint64 {
	tmp := &batch{planes: b.planes} // want `allocates a composite literal per call`
	lanes := make(map[int]uint64)   // want `builds a map per invocation`
	for p := range tmp.planes {
		lanes[p] = tmp.planes[p] & m
	}
	return lanes[0]
}

// shadowedNew proves only the predeclared builtins count: a local
// function named new or make is not an allocation.
func shadowedNew(q *queue) int {
	new := func() int { return 1 }
	make := func(n int) int { return n }
	return new() + make(2)
}
