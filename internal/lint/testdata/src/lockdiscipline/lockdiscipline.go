// Package lockdiscipline is the fixture for the lockdiscipline analyzer:
// mutexes leaked on early returns, fall-offs and goroutines, sleeps
// inside select loops, next to the disciplined shapes.
package lockdiscipline

import (
	"sync"
	"time"
)

// Box guards a counter with a mutex.
type Box struct {
	mu sync.Mutex
	n  int
}

// BadEarlyReturn leaks the mutex on the early path.
func (b *Box) BadEarlyReturn(limit int) int {
	b.mu.Lock()
	if b.n > limit {
		return b.n // want `return in BadEarlyReturn while b.mu is locked`
	}
	b.mu.Unlock()
	return 0
}

// BadFallOff never unlocks at all.
func (b *Box) BadFallOff() {
	b.mu.Lock()
	b.n++
} // want `BadFallOff falls off the end with b.mu still locked`

// BadWorker leaks the lock inside a spawned goroutine.
func (b *Box) BadWorker() {
	go func() {
		b.mu.Lock()
		b.n++
	}() // want `function literal in BadWorker exits with b.mu still locked`
}

// GoodDefer is the canonical shape.
func (b *Box) GoodDefer(limit int) int {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.n > limit {
		return b.n
	}
	b.n++
	return b.n
}

// GoodBothPaths unlocks explicitly on every path.
func (b *Box) GoodBothPaths(limit int) int {
	b.mu.Lock()
	if b.n > limit {
		b.mu.Unlock()
		return limit
	}
	b.mu.Unlock()
	return 0
}

// Registry uses reader locking.
type Registry struct {
	mu sync.RWMutex
	m  map[string]int
}

// BadReadLeak forgets the RUnlock.
func (r *Registry) BadReadLeak(k string) int {
	r.mu.RLock()
	return r.m[k] // want `return in BadReadLeak while r.mu.R is locked`
}

// GoodRead pairs RLock with a deferred RUnlock.
func (r *Registry) GoodRead(k string) int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.m[k]
}

// BadPoll sleeps inside a select loop.
func BadPoll(ch <-chan int, done <-chan struct{}) int {
	total := 0
	for {
		select {
		case v := <-ch:
			total += v
		case <-done:
			return total
		}
		time.Sleep(10 * time.Millisecond) // want `bare time.Sleep inside a select loop`
	}
}

// GoodPoll rate-limits with a ticker case instead.
func GoodPoll(ch <-chan int, done <-chan struct{}) int {
	total := 0
	tick := time.NewTicker(10 * time.Millisecond)
	defer tick.Stop()
	for {
		select {
		case v := <-ch:
			total += v
		case <-tick.C:
		case <-done:
			return total
		}
	}
}
