// Fixture for the shardsafety analyzer: a miniature sharded engine whose
// worker leaks across its arc in the three ways the analyzer guards —
// indexing per-node state with a foreign index, enqueueing a record with
// a foreign destination, and calling a worker with a foreign node at an
// owns position. The gate call with the same foreign record is legal.
package shardsafety

type rec struct {
	node    int
	payload int
}

type shard struct{ heap []rec }

// pop materializes the next record of the shard's heap; its destination
// is owned by construction.
//
//shardsafety:source
func (sh *shard) pop(r *rec) {}

type engine struct {
	nodes []int
	links []int
}

// succ maps a node index to its ring successor — another arc's index.
//
//shardsafety:neighbor
func (e *engine) succ(node int) int { return node + 1 }

// emit is the sanctioned shard-crossing point.
//
//shardsafety:gate
func (e *engine) emit(sh *shard, r rec) {}

// push enqueues a record destined for an owned node.
//
//shardsafety:worker owns=r.node
func (e *engine) push(sh *shard, r rec) {
	sh.heap = append(sh.heap, r)
}

// announce steps an owned node.
//
//shardsafety:worker owns=node
func (e *engine) announce(sh *shard, node int) {
	e.nodes[node]++
}

// epoch drains one record and touches both its own arc and its neighbor's.
//
//shardsafety:worker
func (e *engine) epoch(sh *shard) {
	var r rec
	sh.pop(&r)
	e.nodes[r.node]++
	e.links[r.node+1]--
	peer := e.succ(r.node)
	e.nodes[peer]++ // want `epoch indexes nodes with a foreign node index peer`
	out := rec{node: peer, payload: r.payload}
	e.emit(sh, out)
	e.push(sh, out)      // want `epoch passes a foreign value for r.node of worker push`
	e.announce(sh, peer) // want `epoch passes a foreign value for node of worker announce`
	e.announce(sh, r.node)
}
