// Symbolic IR for the rulecheck analyzer: a tiny guarded-command fragment
// of Go — bounded integers, booleans, plain structs, conditionals,
// switches and calls — compiled out of typed ASTs and evaluated
// exhaustively over view valuations.
//
// The pipeline is deliberately two-phase. compileFunc lowers an
// *ast.FuncDecl into a self-contained symFunc: identifiers become frame
// slots, struct fields become indices resolved through go/types,
// constants are folded via the type-checker's value tables, and every
// call — same package, cross package (Package.Dep), or method (through
// types.Selections) — is resolved to its callee's FuncDecl and compiled
// recursively, so the resulting IR references nothing but other symFuncs.
// Evaluation then runs the IR over a plain []symVal frame with no AST,
// no type information and no maps on the path — cheap enough to sweep
// all |Q|³ × classes valuations of a transition relation per lint run.
//
// Anything outside the fragment (loops, pointers, maps, channels,
// closures, recursion, non-scalar types) fails compilation with a
// positioned error; rulecheck surfaces that as a finding. The single
// deliberate exception: panic(...) compiles without looking at its
// arguments — dead defensive branches like dijkstra.Apply's unknown-rule
// panic must not drag fmt.Sprintf into the fragment — and only errors
// if an evaluation actually reaches it.
package lint

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strconv"
	"strings"
)

// ---------------------------------------------------------------------------
// Values
// ---------------------------------------------------------------------------

type symKind uint8

const (
	symInt symKind = iota
	symBool
	symStruct
)

// symVal is one runtime value of the fragment: an integer, a boolean, or
// a struct of fragment values (fields in source declaration order).
type symVal struct {
	kind  symKind
	n     int64 // the integer, or 0/1 for booleans
	elems []symVal
}

func symIntVal(n int64) symVal { return symVal{kind: symInt, n: n} }

func symBoolVal(b bool) symVal {
	v := symVal{kind: symBool}
	if b {
		v.n = 1
	}
	return v
}

func symStructVal(fields ...symVal) symVal {
	return symVal{kind: symStruct, elems: fields}
}

func (v symVal) isTrue() bool { return v.n != 0 }

// key renders a canonical identity string: booleans as 0/1, structs as
// dot-joined fields in parentheses. Equal keys ⇔ equal values.
func (v symVal) key() string {
	if v.kind != symStruct {
		return strconv.FormatInt(v.n, 10)
	}
	parts := make([]string, len(v.elems))
	for i, e := range v.elems {
		parts[i] = e.key()
	}
	return "(" + strings.Join(parts, ".") + ")"
}

// withField returns v with field i replaced — a functional update, so
// struct values copied between frame slots never alias.
func (v symVal) withField(i int, f symVal) symVal {
	elems := append([]symVal(nil), v.elems...)
	elems[i] = f
	v.elems = elems
	return v
}

// ---------------------------------------------------------------------------
// Errors
// ---------------------------------------------------------------------------

// symError is a positioned compilation or evaluation failure.
type symError struct {
	pos token.Pos
	msg string
}

func (e *symError) Error() string { return e.msg }

func symErrf(pos token.Pos, format string, args ...any) error {
	return &symError{pos: pos, msg: fmt.Sprintf(format, args...)}
}

// symErrPos extracts the position of a symError, or token.NoPos.
func symErrPos(err error) token.Pos {
	if se, ok := err.(*symError); ok {
		return se.pos
	}
	return token.NoPos
}

// ---------------------------------------------------------------------------
// IR
// ---------------------------------------------------------------------------

type symExpr interface{ exprPos() token.Pos }

type eConst struct {
	pos token.Pos
	v   symVal
}

type eSlot struct {
	pos  token.Pos
	slot int
	name string
}

type eField struct {
	pos  token.Pos
	x    symExpr
	idx  int
	name string
}

type eUnary struct {
	pos token.Pos
	op  token.Token
	x   symExpr
}

type eBinary struct {
	pos  token.Pos
	op   token.Token
	x, y symExpr
}

type eCall struct {
	pos  token.Pos
	fn   *symFunc
	args []symExpr
}

type eStruct struct {
	pos    token.Pos
	fields []symExpr
}

func (e *eConst) exprPos() token.Pos  { return e.pos }
func (e *eSlot) exprPos() token.Pos   { return e.pos }
func (e *eField) exprPos() token.Pos  { return e.pos }
func (e *eUnary) exprPos() token.Pos  { return e.pos }
func (e *eBinary) exprPos() token.Pos { return e.pos }
func (e *eCall) exprPos() token.Pos   { return e.pos }
func (e *eStruct) exprPos() token.Pos { return e.pos }

type symStmt interface{ stmtPos() token.Pos }

// symLval is an assignable location: a frame slot plus an optional chain
// of struct-field indices below it. slot −1 is the blank identifier.
type symLval struct {
	pos  token.Pos
	slot int
	path []int
}

type sAssign struct {
	pos    token.Pos
	lhs    []symLval
	rhs    []symExpr
	spread bool // single multi-valued call on the right
}

type sReturn struct {
	pos   token.Pos
	exprs []symExpr
}

type sIf struct {
	pos       token.Pos
	cond      symExpr
	then, els []symStmt
}

type symCase struct {
	vals []symExpr // nil for default
	body []symStmt
}

type sSwitch struct {
	pos    token.Pos
	tag    symExpr // nil for a tagless switch
	cases  []symCase
	def    []symStmt
	hasDef bool
}

type sPanic struct{ pos token.Pos }

func (s *sAssign) stmtPos() token.Pos { return s.pos }
func (s *sReturn) stmtPos() token.Pos { return s.pos }
func (s *sIf) stmtPos() token.Pos     { return s.pos }
func (s *sSwitch) stmtPos() token.Pos { return s.pos }
func (s *sPanic) stmtPos() token.Pos  { return s.pos }

// symFunc is one compiled function: slots for the receiver, parameters
// and locals, and a statement body referencing only other symFuncs.
type symFunc struct {
	name       string
	nslots     int
	paramSlots []int // receiver first when present; −1 discards the argument
	results    int
	// resultSlots/resultInit carry named results: their slots are
	// zero-initialized before the body runs and naked returns read them
	// back. nil when the results are unnamed.
	resultSlots []int
	resultInit  []symVal
	body        []symStmt
}

// ---------------------------------------------------------------------------
// Compiler
// ---------------------------------------------------------------------------

// symCompiler caches compiled functions across a rulecheck run and
// detects recursion (outside the fragment).
type symCompiler struct {
	funcs  map[string]*symFunc
	active map[string]bool
}

func newSymCompiler() *symCompiler {
	return &symCompiler{funcs: map[string]*symFunc{}, active: map[string]bool{}}
}

// symScope is the per-function compilation context: the package whose
// type info resolves this body, and the object→slot table.
type symScope struct {
	c     *symCompiler
	pkg   *Package
	fn    *symFunc
	slots map[types.Object]int
}

func (sc *symScope) newSlot(obj types.Object) int {
	s := sc.fn.nslots
	sc.fn.nslots++
	if obj != nil {
		sc.slots[obj] = s
	}
	return s
}

func funcCacheKey(pkgPath, recv, name string) string {
	return pkgPath + "|" + recv + "|" + name
}

// recvTypeName extracts the receiver type name of a FuncDecl, looking
// through pointers and type-parameter lists.
func recvTypeName(decl *ast.FuncDecl) string {
	if decl.Recv == nil || len(decl.Recv.List) == 0 {
		return ""
	}
	t := decl.Recv.List[0].Type
	for {
		switch tt := t.(type) {
		case *ast.StarExpr:
			t = tt.X
		case *ast.IndexExpr:
			t = tt.X
		case *ast.IndexListExpr:
			t = tt.X
		case *ast.ParenExpr:
			t = tt.X
		case *ast.Ident:
			return tt.Name
		default:
			return ""
		}
	}
}

// findFuncDecl locates the declaration of (recvName, funcName) in pkg.
func findFuncDecl(pkg *Package, recvName, funcName string) *ast.FuncDecl {
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Name.Name != funcName {
				continue
			}
			if recvTypeName(fd) == recvName {
				return fd
			}
		}
	}
	return nil
}

// compileFunc lowers decl (declared in pkg) into a symFunc, resolving and
// compiling every callee transitively.
func (c *symCompiler) compileFunc(pkg *Package, decl *ast.FuncDecl) (*symFunc, error) {
	key := funcCacheKey(pkg.Path, recvTypeName(decl), decl.Name.Name)
	if fn, ok := c.funcs[key]; ok {
		return fn, nil
	}
	if c.active[key] {
		return nil, symErrf(decl.Pos(), "recursive call to %s is outside the symbolic fragment", decl.Name.Name)
	}
	c.active[key] = true
	defer delete(c.active, key)

	if decl.Body == nil {
		return nil, symErrf(decl.Pos(), "%s has no body", decl.Name.Name)
	}
	fn := &symFunc{name: decl.Name.Name}
	sc := &symScope{c: c, pkg: pkg, fn: fn, slots: map[types.Object]int{}}

	bindField := func(field *ast.Field) {
		if len(field.Names) == 0 {
			fn.paramSlots = append(fn.paramSlots, -1)
			return
		}
		for _, name := range field.Names {
			if name.Name == "_" {
				fn.paramSlots = append(fn.paramSlots, -1)
				continue
			}
			fn.paramSlots = append(fn.paramSlots, sc.newSlot(pkg.Info.Defs[name]))
		}
	}
	if decl.Recv != nil {
		for _, f := range decl.Recv.List {
			bindField(f)
		}
	}
	if decl.Type.Params != nil {
		for _, f := range decl.Type.Params.List {
			bindField(f)
		}
	}
	if decl.Type.Results != nil {
		for _, f := range decl.Type.Results.List {
			if len(f.Names) == 0 {
				fn.results++
				continue
			}
			for _, name := range f.Names {
				if name.Name == "_" {
					return nil, symErrf(name.Pos(), "%s: blank named result is outside the symbolic fragment", decl.Name.Name)
				}
				obj := pkg.Info.Defs[name]
				z, err := symZeroVal(name.Pos(), obj.Type())
				if err != nil {
					return nil, err
				}
				fn.resultSlots = append(fn.resultSlots, sc.newSlot(obj))
				fn.resultInit = append(fn.resultInit, z)
				fn.results++
			}
		}
		if fn.resultSlots != nil && len(fn.resultSlots) != fn.results {
			return nil, symErrf(decl.Pos(), "%s: mixed named and unnamed results are outside the symbolic fragment", decl.Name.Name)
		}
	}

	body, err := sc.compileStmts(decl.Body.List)
	if err != nil {
		return nil, err
	}
	fn.body = body
	c.funcs[key] = fn
	return fn, nil
}

func (sc *symScope) compileStmts(stmts []ast.Stmt) ([]symStmt, error) {
	var out []symStmt
	for _, s := range stmts {
		cs, err := sc.compileStmt(s)
		if err != nil {
			return nil, err
		}
		out = append(out, cs...)
	}
	return out, nil
}

func (sc *symScope) compileStmt(s ast.Stmt) ([]symStmt, error) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		return sc.compileStmts(s.List)

	case *ast.ReturnStmt:
		if len(s.Results) == 0 {
			if sc.fn.resultSlots == nil {
				return nil, symErrf(s.Pos(), "naked return without named results is outside the symbolic fragment")
			}
			ret := &sReturn{pos: s.Pos()}
			for _, slot := range sc.fn.resultSlots {
				ret.exprs = append(ret.exprs, &eSlot{pos: s.Pos(), slot: slot})
			}
			return []symStmt{ret}, nil
		}
		ret := &sReturn{pos: s.Pos()}
		for _, r := range s.Results {
			e, err := sc.compileExpr(r)
			if err != nil {
				return nil, err
			}
			ret.exprs = append(ret.exprs, e)
		}
		return []symStmt{ret}, nil

	case *ast.IfStmt:
		if s.Init != nil {
			return nil, symErrf(s.Pos(), "if with init statement is outside the symbolic fragment")
		}
		cond, err := sc.compileExpr(s.Cond)
		if err != nil {
			return nil, err
		}
		then, err := sc.compileStmts(s.Body.List)
		if err != nil {
			return nil, err
		}
		var els []symStmt
		if s.Else != nil {
			els, err = sc.compileStmt(s.Else)
			if err != nil {
				return nil, err
			}
		}
		return []symStmt{&sIf{pos: s.Pos(), cond: cond, then: then, els: els}}, nil

	case *ast.AssignStmt:
		return sc.compileAssign(s)

	case *ast.SwitchStmt:
		return sc.compileSwitch(s)

	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
				if b, ok := sc.pkg.Info.ObjectOf(id).(*types.Builtin); ok && b.Name() == "panic" {
					// Arguments deliberately not compiled: the branch is
					// an error only if evaluation reaches it.
					return []symStmt{&sPanic{pos: s.Pos()}}, nil
				}
			}
		}
		return nil, symErrf(s.Pos(), "expression statement is outside the symbolic fragment")

	default:
		return nil, symErrf(s.Pos(), "%T is outside the symbolic fragment (ints, bools, structs, if/switch, calls only)", s)
	}
}

func (sc *symScope) compileAssign(s *ast.AssignStmt) ([]symStmt, error) {
	if s.Tok != token.ASSIGN && s.Tok != token.DEFINE {
		return nil, symErrf(s.Pos(), "%s assignment is outside the symbolic fragment", s.Tok)
	}
	as := &sAssign{pos: s.Pos()}
	if len(s.Rhs) == 1 && len(s.Lhs) > 1 {
		e, err := sc.compileExpr(s.Rhs[0])
		if err != nil {
			return nil, err
		}
		if _, ok := e.(*eCall); !ok {
			return nil, symErrf(s.Pos(), "multi-assignment from a non-call is outside the symbolic fragment")
		}
		as.rhs = []symExpr{e}
		as.spread = true
	} else {
		if len(s.Rhs) != len(s.Lhs) {
			return nil, symErrf(s.Pos(), "unbalanced assignment")
		}
		for _, r := range s.Rhs {
			e, err := sc.compileExpr(r)
			if err != nil {
				return nil, err
			}
			as.rhs = append(as.rhs, e)
		}
	}
	for _, l := range s.Lhs {
		lv, err := sc.compileLval(l, s.Tok == token.DEFINE)
		if err != nil {
			return nil, err
		}
		as.lhs = append(as.lhs, lv)
	}
	return []symStmt{as}, nil
}

func (sc *symScope) compileLval(e ast.Expr, define bool) (symLval, error) {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		if e.Name == "_" {
			return symLval{pos: e.Pos(), slot: -1}, nil
		}
		obj := sc.pkg.Info.ObjectOf(e)
		if obj == nil {
			return symLval{}, symErrf(e.Pos(), "cannot resolve %s", e.Name)
		}
		if slot, ok := sc.slots[obj]; ok {
			return symLval{pos: e.Pos(), slot: slot}, nil
		}
		if !define {
			return symLval{}, symErrf(e.Pos(), "assignment to non-local %s is outside the symbolic fragment", e.Name)
		}
		return symLval{pos: e.Pos(), slot: sc.newSlot(obj)}, nil

	case *ast.SelectorExpr:
		// A field write: resolve the base lvalue, then append the field
		// index. Writes through pointers would mutate the caller's value
		// — semantics the functional evaluator does not model — so the
		// base must be a plain struct chain.
		if bt := sc.pkg.Info.TypeOf(e.X); bt != nil {
			if _, isPtr := bt.Underlying().(*types.Pointer); isPtr {
				return symLval{}, symErrf(e.Pos(), "write through pointer %s is outside the symbolic fragment", exprKey(e.X))
			}
		}
		base, err := sc.compileLval(e.X, false)
		if err != nil {
			return symLval{}, err
		}
		if base.slot < 0 {
			return symLval{}, symErrf(e.Pos(), "cannot write a field of the blank identifier")
		}
		st, ok := symStructOf(sc.pkg.Info.TypeOf(e.X))
		if !ok {
			return symLval{}, symErrf(e.Pos(), "field write on non-struct %s", exprKey(e.X))
		}
		idx := symFieldIndex(st, e.Sel.Name)
		if idx < 0 {
			return symLval{}, symErrf(e.Pos(), "no field %s", e.Sel.Name)
		}
		base.pos = e.Pos()
		base.path = append(append([]int(nil), base.path...), idx)
		return base, nil
	}
	return symLval{}, symErrf(e.Pos(), "%T is not assignable in the symbolic fragment", e)
}

func (sc *symScope) compileSwitch(s *ast.SwitchStmt) ([]symStmt, error) {
	if s.Init != nil {
		return nil, symErrf(s.Pos(), "switch with init statement is outside the symbolic fragment")
	}
	sw := &sSwitch{pos: s.Pos()}
	if s.Tag != nil {
		tag, err := sc.compileExpr(s.Tag)
		if err != nil {
			return nil, err
		}
		sw.tag = tag
	}
	for _, cl := range s.Body.List {
		cc, ok := cl.(*ast.CaseClause)
		if !ok {
			return nil, symErrf(cl.Pos(), "unexpected %T in switch", cl)
		}
		body, err := sc.compileStmts(cc.Body)
		if err != nil {
			return nil, err
		}
		if cc.List == nil {
			sw.def = body
			sw.hasDef = true
			continue
		}
		kase := symCase{body: body}
		for _, v := range cc.List {
			e, err := sc.compileExpr(v)
			if err != nil {
				return nil, err
			}
			kase.vals = append(kase.vals, e)
		}
		sw.cases = append(sw.cases, kase)
	}
	return []symStmt{sw}, nil
}

// ---------------------------------------------------------------------------
// Expression compilation
// ---------------------------------------------------------------------------

func (sc *symScope) compileExpr(e ast.Expr) (symExpr, error) {
	// Constant folding through the type checker covers literals, named
	// constants (local and imported) and constant arithmetic.
	if tv, ok := sc.pkg.Info.Types[e]; ok && tv.Value != nil {
		v, err := symConstVal(e.Pos(), tv.Value)
		if err != nil {
			return nil, err
		}
		return &eConst{pos: e.Pos(), v: v}, nil
	}

	switch e := e.(type) {
	case *ast.ParenExpr:
		return sc.compileExpr(e.X)

	case *ast.Ident:
		obj := sc.pkg.Info.ObjectOf(e)
		if obj == nil {
			return nil, symErrf(e.Pos(), "cannot resolve %s", e.Name)
		}
		if slot, ok := sc.slots[obj]; ok {
			return &eSlot{pos: e.Pos(), slot: slot, name: e.Name}, nil
		}
		return nil, symErrf(e.Pos(), "free identifier %s is outside the symbolic fragment", e.Name)

	case *ast.SelectorExpr:
		st, ok := symStructOf(sc.pkg.Info.TypeOf(e.X))
		if !ok {
			return nil, symErrf(e.Pos(), "selector base %s is not a fragment struct", exprKey(e.X))
		}
		idx := symFieldIndex(st, e.Sel.Name)
		if idx < 0 {
			return nil, symErrf(e.Pos(), "%s is not a struct field (methods are only callable)", e.Sel.Name)
		}
		x, err := sc.compileExpr(e.X)
		if err != nil {
			return nil, err
		}
		return &eField{pos: e.Pos(), x: x, idx: idx, name: e.Sel.Name}, nil

	case *ast.UnaryExpr:
		if e.Op != token.NOT && e.Op != token.SUB {
			return nil, symErrf(e.Pos(), "unary %s is outside the symbolic fragment", e.Op)
		}
		x, err := sc.compileExpr(e.X)
		if err != nil {
			return nil, err
		}
		return &eUnary{pos: e.Pos(), op: e.Op, x: x}, nil

	case *ast.BinaryExpr:
		switch e.Op {
		case token.ADD, token.SUB, token.MUL, token.QUO, token.REM,
			token.EQL, token.NEQ, token.LSS, token.LEQ, token.GTR, token.GEQ,
			token.LAND, token.LOR:
		default:
			return nil, symErrf(e.Pos(), "binary %s is outside the symbolic fragment", e.Op)
		}
		x, err := sc.compileExpr(e.X)
		if err != nil {
			return nil, err
		}
		y, err := sc.compileExpr(e.Y)
		if err != nil {
			return nil, err
		}
		return &eBinary{pos: e.Pos(), op: e.Op, x: x, y: y}, nil

	case *ast.CallExpr:
		return sc.compileCall(e)

	case *ast.CompositeLit:
		return sc.compileCompositeLit(e)
	}
	return nil, symErrf(e.Pos(), "%T is outside the symbolic fragment", e)
}

func (sc *symScope) compileCall(call *ast.CallExpr) (symExpr, error) {
	// Integer type conversions are the identity in the fragment.
	if tv, ok := sc.pkg.Info.Types[call.Fun]; ok && tv.IsType() {
		if len(call.Args) != 1 {
			return nil, symErrf(call.Pos(), "malformed conversion")
		}
		if b, ok := tv.Type.Underlying().(*types.Basic); ok && b.Info()&types.IsInteger != 0 {
			return sc.compileExpr(call.Args[0])
		}
		return nil, symErrf(call.Pos(), "conversion to %s is outside the symbolic fragment", tv.Type)
	}

	var callee *symFunc
	var recvArg symExpr
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj := sc.pkg.Info.ObjectOf(fun)
		if _, ok := obj.(*types.Builtin); ok {
			return nil, symErrf(call.Pos(), "builtin %s is outside the symbolic fragment", fun.Name)
		}
		fobj, ok := obj.(*types.Func)
		if !ok {
			return nil, symErrf(call.Pos(), "call of non-function %s", fun.Name)
		}
		fn, err := sc.resolveCallee(call.Pos(), pkgPathOf(fobj), "", fobj.Name())
		if err != nil {
			return nil, err
		}
		callee = fn

	case *ast.SelectorExpr:
		if sel, ok := sc.pkg.Info.Selections[fun]; ok && sel.Kind() == types.MethodVal {
			m, ok := sel.Obj().(*types.Func)
			if !ok {
				return nil, symErrf(call.Pos(), "unresolvable method %s", fun.Sel.Name)
			}
			sig, _ := m.Type().(*types.Signature)
			if sig == nil || sig.Recv() == nil {
				return nil, symErrf(call.Pos(), "method %s has no receiver signature", m.Name())
			}
			recvNamed := namedFrom(sig.Recv().Type())
			if recvNamed == nil {
				return nil, symErrf(call.Pos(), "interface or unnamed receiver for %s is outside the symbolic fragment", m.Name())
			}
			fn, err := sc.resolveCallee(call.Pos(), pkgPathOf(m), recvNamed.Obj().Name(), m.Name())
			if err != nil {
				return nil, err
			}
			callee = fn
			r, err := sc.compileExpr(fun.X)
			if err != nil {
				return nil, err
			}
			recvArg = r
		} else {
			// Package-qualified function: pkg.Func(...).
			fobj, ok := sc.pkg.Info.ObjectOf(fun.Sel).(*types.Func)
			if !ok {
				return nil, symErrf(call.Pos(), "call of %s is outside the symbolic fragment", fun.Sel.Name)
			}
			fn, err := sc.resolveCallee(call.Pos(), pkgPathOf(fobj), "", fobj.Name())
			if err != nil {
				return nil, err
			}
			callee = fn
		}

	default:
		return nil, symErrf(call.Pos(), "indirect call is outside the symbolic fragment")
	}

	out := &eCall{pos: call.Pos(), fn: callee}
	if recvArg != nil {
		out.args = append(out.args, recvArg)
	}
	for _, a := range call.Args {
		ce, err := sc.compileExpr(a)
		if err != nil {
			return nil, err
		}
		out.args = append(out.args, ce)
	}
	if len(out.args) != len(callee.paramSlots) {
		return nil, symErrf(call.Pos(), "call of %s with %d args, want %d", callee.name, len(out.args), len(callee.paramSlots))
	}
	return out, nil
}

func (sc *symScope) resolveCallee(pos token.Pos, pkgPath, recvName, funcName string) (*symFunc, error) {
	dep := sc.pkg.Dep(pkgPath)
	if dep == nil {
		return nil, symErrf(pos, "body of %s.%s is not available (package %s not loaded from source)", recvName, funcName, pkgPath)
	}
	decl := findFuncDecl(dep, recvName, funcName)
	if decl == nil {
		return nil, symErrf(pos, "declaration of %s (receiver %q) not found in %s", funcName, recvName, pkgPath)
	}
	fn, err := sc.c.compileFunc(dep, decl)
	if err != nil {
		return nil, err
	}
	return fn, nil
}

func (sc *symScope) compileCompositeLit(lit *ast.CompositeLit) (symExpr, error) {
	st, ok := symStructOf(sc.pkg.Info.TypeOf(lit))
	if !ok {
		return nil, symErrf(lit.Pos(), "non-struct composite literal is outside the symbolic fragment")
	}
	fields := make([]symExpr, st.NumFields())
	if len(lit.Elts) > 0 {
		if _, keyed := lit.Elts[0].(*ast.KeyValueExpr); keyed {
			for _, el := range lit.Elts {
				kv, ok := el.(*ast.KeyValueExpr)
				if !ok {
					return nil, symErrf(el.Pos(), "mixed keyed and positional literal")
				}
				key, ok := kv.Key.(*ast.Ident)
				if !ok {
					return nil, symErrf(kv.Pos(), "non-identifier literal key")
				}
				idx := symFieldIndex(st, key.Name)
				if idx < 0 {
					return nil, symErrf(kv.Pos(), "no field %s", key.Name)
				}
				e, err := sc.compileExpr(kv.Value)
				if err != nil {
					return nil, err
				}
				fields[idx] = e
			}
		} else {
			if len(lit.Elts) != st.NumFields() {
				return nil, symErrf(lit.Pos(), "positional literal with %d of %d fields", len(lit.Elts), st.NumFields())
			}
			for i, el := range lit.Elts {
				e, err := sc.compileExpr(el)
				if err != nil {
					return nil, err
				}
				fields[i] = e
			}
		}
	}
	for i := range fields {
		if fields[i] == nil {
			z, err := symZeroVal(lit.Pos(), st.Field(i).Type())
			if err != nil {
				return nil, err
			}
			fields[i] = &eConst{pos: lit.Pos(), v: z}
		}
	}
	return &eStruct{pos: lit.Pos(), fields: fields}, nil
}

// ---------------------------------------------------------------------------
// Type helpers
// ---------------------------------------------------------------------------

// symStructOf unwraps t (pointers, named types, generic instances) to a
// struct usable in the fragment.
func symStructOf(t types.Type) (*types.Struct, bool) {
	if t == nil {
		return nil, false
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	st, ok := t.Underlying().(*types.Struct)
	return st, ok
}

// symFieldIndex finds the declared index of a direct (non-embedded)
// field.
func symFieldIndex(st *types.Struct, name string) int {
	for i := 0; i < st.NumFields(); i++ {
		if st.Field(i).Name() == name {
			return i
		}
	}
	return -1
}

func symConstVal(pos token.Pos, v constant.Value) (symVal, error) {
	switch v.Kind() {
	case constant.Int:
		n, ok := constant.Int64Val(v)
		if !ok {
			return symVal{}, symErrf(pos, "constant %s overflows the fragment's int64", v)
		}
		return symIntVal(n), nil
	case constant.Bool:
		return symBoolVal(constant.BoolVal(v)), nil
	}
	return symVal{}, symErrf(pos, "constant kind %v is outside the symbolic fragment", v.Kind())
}

// symZeroVal is the fragment zero value of t.
func symZeroVal(pos token.Pos, t types.Type) (symVal, error) {
	if b, ok := t.Underlying().(*types.Basic); ok {
		switch {
		case b.Info()&types.IsInteger != 0:
			return symIntVal(0), nil
		case b.Info()&types.IsBoolean != 0:
			return symBoolVal(false), nil
		}
		return symVal{}, symErrf(pos, "zero value of %s is outside the symbolic fragment", t)
	}
	if st, ok := t.Underlying().(*types.Struct); ok {
		fields := make([]symVal, st.NumFields())
		for i := range fields {
			z, err := symZeroVal(pos, st.Field(i).Type())
			if err != nil {
				return symVal{}, err
			}
			fields[i] = z
		}
		return symStructVal(fields...), nil
	}
	return symVal{}, symErrf(pos, "zero value of %s is outside the symbolic fragment", t)
}

// ---------------------------------------------------------------------------
// Evaluator
// ---------------------------------------------------------------------------

// symEval runs compiled functions; the step budget bounds every top-level
// call (the fragment has no loops, so hitting it means a compiler bug).
type symEval struct {
	steps int
	limit int
}

func newSymEval() *symEval { return &symEval{limit: 100_000} }

// call evaluates fn on args (receiver first when the function has one)
// and returns its results.
func (ev *symEval) call(fn *symFunc, args []symVal) ([]symVal, error) {
	ev.steps = 0
	return ev.invoke(fn, args)
}

func (ev *symEval) invoke(fn *symFunc, args []symVal) ([]symVal, error) {
	if len(args) != len(fn.paramSlots) {
		return nil, fmt.Errorf("symir: %s called with %d args, want %d", fn.name, len(args), len(fn.paramSlots))
	}
	frame := make([]symVal, fn.nslots)
	for i, slot := range fn.paramSlots {
		if slot >= 0 {
			frame[slot] = args[i]
		}
	}
	for i, slot := range fn.resultSlots {
		frame[slot] = fn.resultInit[i]
	}
	ret, returned, err := ev.execStmts(fn.body, frame)
	if err != nil {
		return nil, err
	}
	if !returned {
		return nil, fmt.Errorf("symir: %s completed without returning", fn.name)
	}
	if len(ret) != fn.results {
		return nil, fmt.Errorf("symir: %s returned %d values, want %d", fn.name, len(ret), fn.results)
	}
	return ret, nil
}

func (ev *symEval) execStmts(stmts []symStmt, frame []symVal) ([]symVal, bool, error) {
	for _, s := range stmts {
		ev.steps++
		if ev.steps > ev.limit {
			return nil, false, fmt.Errorf("symir: step budget exceeded")
		}
		switch s := s.(type) {
		case *sReturn:
			var out []symVal
			if len(s.exprs) == 1 {
				vals, err := ev.evalMulti(s.exprs[0], frame)
				if err != nil {
					return nil, false, err
				}
				out = vals
			} else {
				for _, e := range s.exprs {
					v, err := ev.eval(e, frame)
					if err != nil {
						return nil, false, err
					}
					out = append(out, v)
				}
			}
			return out, true, nil

		case *sIf:
			cond, err := ev.eval(s.cond, frame)
			if err != nil {
				return nil, false, err
			}
			branch := s.then
			if !cond.isTrue() {
				branch = s.els
			}
			ret, returned, err := ev.execStmts(branch, frame)
			if err != nil || returned {
				return ret, returned, err
			}

		case *sAssign:
			var vals []symVal
			if s.spread {
				vs, err := ev.evalMulti(s.rhs[0], frame)
				if err != nil {
					return nil, false, err
				}
				vals = vs
			} else {
				for _, e := range s.rhs {
					v, err := ev.eval(e, frame)
					if err != nil {
						return nil, false, err
					}
					vals = append(vals, v)
				}
			}
			if len(vals) != len(s.lhs) {
				return nil, false, fmt.Errorf("symir: assignment of %d values to %d targets", len(vals), len(s.lhs))
			}
			for i, lv := range s.lhs {
				if lv.slot < 0 {
					continue
				}
				frame[lv.slot] = setPath(frame[lv.slot], lv.path, vals[i])
			}

		case *sSwitch:
			body, err := ev.pickCase(s, frame)
			if err != nil {
				return nil, false, err
			}
			ret, returned, err := ev.execStmts(body, frame)
			if err != nil || returned {
				return ret, returned, err
			}

		case *sPanic:
			return nil, false, symErrf(s.pos, "evaluation reached a panic statement")

		default:
			return nil, false, fmt.Errorf("symir: unknown statement %T", s)
		}
	}
	return nil, false, nil
}

func (ev *symEval) pickCase(s *sSwitch, frame []symVal) ([]symStmt, error) {
	var tag *symVal
	if s.tag != nil {
		v, err := ev.eval(s.tag, frame)
		if err != nil {
			return nil, err
		}
		tag = &v
	}
	for _, c := range s.cases {
		for _, ve := range c.vals {
			v, err := ev.eval(ve, frame)
			if err != nil {
				return nil, err
			}
			if tag != nil {
				if v.n == tag.n && v.kind != symStruct {
					return c.body, nil
				}
			} else if v.isTrue() {
				return c.body, nil
			}
		}
	}
	if s.hasDef {
		return s.def, nil
	}
	return nil, nil
}

// setPath functionally replaces the value at a field path inside root.
func setPath(root symVal, path []int, v symVal) symVal {
	if len(path) == 0 {
		return v
	}
	return root.withField(path[0], setPath(root.elems[path[0]], path[1:], v))
}

func (ev *symEval) eval(e symExpr, frame []symVal) (symVal, error) {
	vals, err := ev.evalMulti(e, frame)
	if err != nil {
		return symVal{}, err
	}
	if len(vals) != 1 {
		return symVal{}, fmt.Errorf("symir: %d-valued expression in single-value context", len(vals))
	}
	return vals[0], nil
}

func (ev *symEval) evalMulti(e symExpr, frame []symVal) ([]symVal, error) {
	ev.steps++
	if ev.steps > ev.limit {
		return nil, fmt.Errorf("symir: step budget exceeded")
	}
	switch e := e.(type) {
	case *eConst:
		return []symVal{e.v}, nil

	case *eSlot:
		return []symVal{frame[e.slot]}, nil

	case *eField:
		x, err := ev.eval(e.x, frame)
		if err != nil {
			return nil, err
		}
		if x.kind != symStruct || e.idx >= len(x.elems) {
			return nil, symErrf(e.pos, "field %s on non-struct value", e.name)
		}
		return []symVal{x.elems[e.idx]}, nil

	case *eUnary:
		x, err := ev.eval(e.x, frame)
		if err != nil {
			return nil, err
		}
		switch e.op {
		case token.NOT:
			return []symVal{symBoolVal(!x.isTrue())}, nil
		case token.SUB:
			return []symVal{symIntVal(-x.n)}, nil
		}
		return nil, symErrf(e.pos, "bad unary %s", e.op)

	case *eBinary:
		return ev.evalBinary(e, frame)

	case *eCall:
		args := make([]symVal, len(e.args))
		for i, a := range e.args {
			v, err := ev.eval(a, frame)
			if err != nil {
				return nil, err
			}
			args[i] = v
		}
		return ev.invoke(e.fn, args)

	case *eStruct:
		fields := make([]symVal, len(e.fields))
		for i, f := range e.fields {
			v, err := ev.eval(f, frame)
			if err != nil {
				return nil, err
			}
			fields[i] = v
		}
		return []symVal{symStructVal(fields...)}, nil
	}
	return nil, fmt.Errorf("symir: unknown expression %T", e)
}

func (ev *symEval) evalBinary(e *eBinary, frame []symVal) ([]symVal, error) {
	if e.op == token.LAND || e.op == token.LOR {
		x, err := ev.eval(e.x, frame)
		if err != nil {
			return nil, err
		}
		if (e.op == token.LAND && !x.isTrue()) || (e.op == token.LOR && x.isTrue()) {
			return []symVal{x}, nil
		}
		y, err := ev.eval(e.y, frame)
		if err != nil {
			return nil, err
		}
		return []symVal{y}, nil
	}
	x, err := ev.eval(e.x, frame)
	if err != nil {
		return nil, err
	}
	y, err := ev.eval(e.y, frame)
	if err != nil {
		return nil, err
	}
	switch e.op {
	case token.ADD:
		return []symVal{symIntVal(x.n + y.n)}, nil
	case token.SUB:
		return []symVal{symIntVal(x.n - y.n)}, nil
	case token.MUL:
		return []symVal{symIntVal(x.n * y.n)}, nil
	case token.QUO, token.REM:
		if y.n == 0 {
			return nil, symErrf(e.pos, "division by zero")
		}
		if e.op == token.QUO {
			return []symVal{symIntVal(x.n / y.n)}, nil
		}
		return []symVal{symIntVal(x.n % y.n)}, nil
	case token.EQL:
		return []symVal{symBoolVal(x.key() == y.key())}, nil
	case token.NEQ:
		return []symVal{symBoolVal(x.key() != y.key())}, nil
	case token.LSS:
		return []symVal{symBoolVal(x.n < y.n)}, nil
	case token.LEQ:
		return []symVal{symBoolVal(x.n <= y.n)}, nil
	case token.GTR:
		return []symVal{symBoolVal(x.n > y.n)}, nil
	case token.GEQ:
		return []symVal{symBoolVal(x.n >= y.n)}, nil
	}
	return nil, symErrf(e.pos, "bad binary %s", e.op)
}
