// allocgate: a static gate on hot-path heap allocations. Functions
// annotated //allocgate:hot (the msgnet arena, the sharded engine's event
// loop, the cst fast paths) are the ones whose benchmarks claim
// 0 allocs/op; the analyzer runs the real compiler's escape analysis
// (go build -gcflags=-m) over the module and flags any "escapes to heap"
// or "moved to heap" decision landing inside an annotated function's
// body. A refactor that silently introduces an allocation then fails
// `make lint` instead of waiting for someone to re-read the bench
// deltas.
//
// The escape output is produced once per (module root, build target) and
// shared across packages. Generic functions only get escape decisions
// when something instantiates them, so module packages are analyzed via
// a whole-module `go build ./...` (the cmd binaries instantiate every
// engine); fixture packages under testdata — excluded from ./... by the
// go tool — are built by their explicit directory.
//
// Findings anchor at the allocating line, so a deliberate allocation is
// waived with //lint:ignore allocgate on that line, not on the function.
package lint

import (
	"fmt"
	"go/ast"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
)

// AllocGate is the escape-analysis hot-path gate.
var AllocGate = &Analyzer{
	Name: "allocgate",
	Doc:  "//allocgate:hot functions must not gain heap allocations (compiler escape analysis as a lint gate)",
	Packages: []string{
		"ssrmin/internal/msgnet",
		"ssrmin/internal/cst",
		"ssrmin/internal/runtime",
		"ssrmin/internal/bitslice",
	},
	Run: runAllocGate,
}

var allocHotRe = regexp.MustCompile(`^//allocgate:hot$`)

// escLine is one escape decision of the compiler.
type escLine struct {
	file string // absolute path
	line int
	msg  string
}

var (
	escMu    sync.Mutex
	escCache = map[string][]escLine{}
	escFail  = map[string]error{}
)

// escapeOutput runs go build -gcflags=-m for target under root, memoized
// for the process lifetime (the lint binary analyzes each target once).
func escapeOutput(root, target string) ([]escLine, error) {
	key := root + "\x00" + target
	escMu.Lock()
	defer escMu.Unlock()
	if err, ok := escFail[key]; ok {
		return nil, err
	}
	if lines, ok := escCache[key]; ok {
		return lines, nil
	}
	lines, err := runEscapeBuild(root, target)
	if err != nil {
		escFail[key] = err
		return nil, err
	}
	escCache[key] = lines
	return lines, nil
}

var escLineRe = regexp.MustCompile(`^(.+\.go):(\d+):\d+: (.*)$`)

func runEscapeBuild(root, target string) ([]escLine, error) {
	cmd := exec.Command("go", "build", "-gcflags=-m", target)
	cmd.Dir = root
	out, err := cmd.CombinedOutput()
	if err != nil {
		return nil, fmt.Errorf("go build -gcflags=-m %s: %v\n%s", target, err, trimOutput(out))
	}
	var lines []escLine
	seen := map[string]bool{}
	for _, raw := range strings.Split(string(out), "\n") {
		m := escLineRe.FindStringSubmatch(raw)
		if m == nil {
			continue
		}
		msg := m[3]
		if !strings.Contains(msg, "escapes to heap") && !strings.Contains(msg, "moved to heap") {
			continue
		}
		file := m[1]
		if !filepath.IsAbs(file) {
			file = filepath.Join(root, file)
		}
		var line int
		fmt.Sscanf(m[2], "%d", &line)
		key := fmt.Sprintf("%s:%d:%s", file, line, msg)
		if seen[key] {
			continue
		}
		seen[key] = true
		lines = append(lines, escLine{file: file, line: line, msg: msg})
	}
	return lines, nil
}

func trimOutput(out []byte) string {
	s := string(out)
	if len(s) > 2000 {
		s = s[:2000] + "…"
	}
	return s
}

func runAllocGate(pass *Pass) {
	var hot []*ast.FuncDecl
	for _, f := range pass.Pkg.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Doc == nil {
				continue
			}
			for _, c := range fd.Doc.List {
				if allocHotRe.MatchString(strings.TrimSpace(c.Text)) {
					hot = append(hot, fd)
					break
				}
			}
		}
	}
	if len(hot) == 0 {
		return
	}
	l := pass.Pkg.loader
	if l == nil {
		pass.Reportf(hot[0].Pos(), "allocgate: package %s has no module loader; cannot run escape analysis", pass.Pkg.Path)
		return
	}
	target, err := allocTarget(l, pass.Pkg)
	if err != nil {
		pass.Reportf(hot[0].Pos(), "allocgate: %v", err)
		return
	}
	escapes, err := escapeOutput(l.Root, target)
	if err != nil {
		pass.Reportf(hot[0].Pos(), "allocgate: %v", err)
		return
	}

	fset := pass.Pkg.Fset
	for _, decl := range hot {
		start := fset.Position(decl.Pos())
		end := fset.Position(decl.End())
		file, err := filepath.Abs(start.Filename)
		if err != nil {
			file = start.Filename
		}
		tf := fset.File(decl.Pos())
		for _, esc := range escapes {
			if esc.file != file || esc.line < start.Line || esc.line > end.Line {
				continue
			}
			pos := decl.Pos()
			if esc.line <= tf.LineCount() {
				pos = tf.LineStart(esc.line)
			}
			pass.Reportf(pos, "allocgate: hot function %s allocates on the heap: %s", decl.Name.Name, esc.msg)
		}
	}
}

// allocTarget picks the build target for pkg: the whole module for
// module packages (so cmd binaries instantiate the generic hot paths),
// the explicit directory for fixture packages outside the import graph.
func allocTarget(l *Loader, pkg *Package) (string, error) {
	if pkg.Path == l.Module || strings.HasPrefix(pkg.Path, l.Module+"/") {
		return "./...", nil
	}
	abs, err := filepath.Abs(pkg.Dir)
	if err != nil {
		return "", err
	}
	rel, err := filepath.Rel(l.Root, abs)
	if err != nil || strings.HasPrefix(rel, "..") {
		return "", fmt.Errorf("package dir %s is outside module root %s", pkg.Dir, l.Root)
	}
	return "./" + filepath.ToSlash(rel), nil
}
