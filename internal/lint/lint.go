// Package lint is a small static-analysis framework built entirely on the
// standard library (go/parser, go/ast, go/types, go/importer — no
// golang.org/x/tools), plus the domain analyzers that make this
// repository's model discipline machine-checked:
//
//   - locality: in algorithm packages, guards are side-effect-free and
//     commands never write a neighbor's view — the state-reading model of
//     Section 2.1, which every lemma of the paper assumes.
//   - determinism: trace/report/simulation packages may not iterate maps
//     into ordered output, read wall-clock time, or draw from the global
//     math/rand — seeded executions must stay bit-identical.
//   - obsguard: hot-path calls on observer/sink fields are dominated by
//     nil checks and allocate nothing on the no-observer path, keeping the
//     instrumentation overhead bar (<5%, BENCH_obs.json) structural.
//   - lockdiscipline: mutexes unlock on every return path and select
//     loops do not busy-wait with bare time.Sleep.
//   - hotpath: no any-typed fields or per-event allocations in the
//     arena-backed engine packages (msgnet, cst, runtime).
//   - deprecated: no new in-repo uses of the MPOptions/LiveOptions
//     option-struct shims the functional-options API replaced.
//
// The framework deliberately mirrors the shape of golang.org/x/tools'
// go/analysis (Analyzer, Pass, Reportf, "// want" fixture tests) so the
// analyzers could migrate there if the repository ever took the
// dependency, but it loads and type-checks packages itself: module-local
// imports resolve straight from the source tree, everything else through
// the stdlib source importer.
package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Diagnostic is one finding, positioned and attributed to an analyzer.
type Diagnostic struct {
	// Analyzer is the name of the analyzer that produced the finding.
	Analyzer string `json:"analyzer"`
	// File is the path of the offending file as given to the loader.
	File string `json:"file"`
	// Line and Col are 1-based.
	Line int `json:"line"`
	Col  int `json:"col"`
	// Message describes the violation.
	Message string `json:"message"`
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s [%s]", d.File, d.Line, d.Col, d.Message, d.Analyzer)
}

// Analyzer is one named check over a type-checked package.
type Analyzer struct {
	// Name is the analyzer identifier, used in output and in
	// //lint:ignore comments.
	Name string
	// Doc is a one-line description of the enforced invariant.
	Doc string
	// Packages lists the import paths the analyzer applies to when the
	// runner selects analyzers automatically; empty means every package.
	Packages []string
	// Run inspects pass.Pkg and reports findings via pass.Reportf.
	Run func(pass *Pass)
}

// AppliesTo reports whether the analyzer covers the given import path.
func (a *Analyzer) AppliesTo(path string) bool {
	if len(a.Packages) == 0 {
		return true
	}
	for _, p := range a.Packages {
		if p == path {
			return true
		}
	}
	return false
}

// All returns the analyzer suite in stable order.
func All() []*Analyzer {
	return []*Analyzer{Locality, Determinism, ObsGuard, LockDiscipline, Hotpath, Deprecated, RuleCheck, ShardSafety, AllocGate}
}

// Lookup resolves an analyzer by name.
func Lookup(name string) *Analyzer {
	for _, a := range All() {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// Package is a parsed and type-checked package ready for analysis.
type Package struct {
	// Path is the import path (or the bare fixture name for testdata).
	Path string
	// Dir is the directory the files were read from.
	Dir string
	// Fset positions all files.
	Fset *token.FileSet
	// Files are the parsed non-test files, sorted by file name.
	Files []*ast.File
	// Types is the type-checked package object.
	Types *types.Package
	// Info carries the type-checker's fact tables.
	Info *types.Info

	loader  *Loader
	parents map[ast.Node]ast.Node
}

// Dep returns the fully loaded package (AST + type info) of a
// module-local import path this package depends on, or nil when the
// path was never loaded through the same loader. Cross-package
// analyses (rulecheck's symbolic inlining) resolve callee bodies
// through it.
func (p *Package) Dep(path string) *Package {
	if p.loader == nil {
		return nil
	}
	if path == p.Path {
		return p
	}
	return p.loader.pkgs[path]
}

// Pass is one (analyzer, package) run.
type Pass struct {
	// Analyzer is the running analyzer.
	Analyzer *Analyzer
	// Pkg is the package under analysis.
	Pkg *Package

	diags []Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Pkg.Fset.Position(pos)
	p.diags = append(p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		File:     position.Filename,
		Line:     position.Line,
		Col:      position.Column,
		Message:  fmt.Sprintf(format, args...),
	})
}

// TypeOf returns the static type of e, or nil.
func (p *Pass) TypeOf(e ast.Expr) types.Type { return p.Pkg.Info.TypeOf(e) }

// ObjectOf resolves an identifier to its object, or nil.
func (p *Pass) ObjectOf(id *ast.Ident) types.Object { return p.Pkg.Info.ObjectOf(id) }

// Parent returns the syntactic parent of n within its file, or nil.
func (p *Pass) Parent(n ast.Node) ast.Node { return p.Pkg.parents[n] }

// RunAnalyzers executes the given analyzers on pkg and returns the merged,
// suppression-filtered, position-sorted findings.
func RunAnalyzers(pkg *Package, analyzers ...*Analyzer) []Diagnostic {
	sup := collectIgnores(pkg)
	var out []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{Analyzer: a, Pkg: pkg}
		a.Run(pass)
		for _, d := range pass.diags {
			if !sup.suppressed(d) {
				out = append(out, d)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].File != out[j].File {
			return out[i].File < out[j].File
		}
		if out[i].Line != out[j].Line {
			return out[i].Line < out[j].Line
		}
		if out[i].Col != out[j].Col {
			return out[i].Col < out[j].Col
		}
		return out[i].Analyzer < out[j].Analyzer
	})
	return out
}

// ---------------------------------------------------------------------------
// //lint:ignore suppressions
// ---------------------------------------------------------------------------

var ignoreRe = regexp.MustCompile(`^//lint:ignore\s+(\S+)\s+(.+)$`)

// parseWaiver parses one //lint:ignore comment into the waived analyzer
// names (a comma list, "*" waives every analyzer) and the mandatory
// reason. ok is false for comments that are not waivers or that omit the
// reason — those suppress nothing. This is the single entry point the
// suppression pass and the FuzzWaiverParse target share.
func parseWaiver(text string) (analyzers []string, reason string, ok bool) {
	m := ignoreRe.FindStringSubmatch(text)
	if m == nil || strings.TrimSpace(m[2]) == "" {
		return nil, "", false
	}
	for _, name := range strings.Split(m[1], ",") {
		if name != "" {
			analyzers = append(analyzers, name)
		}
	}
	if len(analyzers) == 0 {
		return nil, "", false
	}
	return analyzers, strings.TrimSpace(m[2]), true
}

type ignoreKey struct {
	file string
	line int
	name string // analyzer name or "*"
}

type suppressions map[ignoreKey]bool

// collectIgnores gathers //lint:ignore <analyzer> <reason> comments. A
// suppression covers findings of the named analyzer (or every analyzer,
// for "*") on the comment's own line and on the following line, so both
//
//	x := unsorted() //lint:ignore determinism summed, order-free
//
// and
//
//	//lint:ignore determinism summed, order-free
//	x := unsorted()
//
// work. The reason is mandatory: a bare //lint:ignore suppresses nothing.
func collectIgnores(pkg *Package) suppressions {
	sup := suppressions{}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				names, _, ok := parseWaiver(c.Text)
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				for _, name := range names {
					sup[ignoreKey{pos.Filename, pos.Line, name}] = true
					sup[ignoreKey{pos.Filename, pos.Line + 1, name}] = true
				}
			}
		}
	}
	return sup
}

func (s suppressions) suppressed(d Diagnostic) bool {
	return s[ignoreKey{d.File, d.Line, d.Analyzer}] || s[ignoreKey{d.File, d.Line, "*"}]
}

// ---------------------------------------------------------------------------
// Loading
// ---------------------------------------------------------------------------

// Loader parses and type-checks packages of one module, resolving
// module-local imports from source and delegating the rest (the standard
// library) to the stdlib source importer. Loaded dependencies are cached,
// so checking all analyzer targets shares one statemodel/obs checking
// pass.
type Loader struct {
	// Root is the absolute module root directory.
	Root string
	// Module is the module path from go.mod.
	Module string
	// Fset positions every file loaded through this loader.
	Fset *token.FileSet

	std   types.ImporterFrom
	cache map[string]*types.Package
	// pkgs retains the full Package (AST, type info, parent links) of
	// every module-local package loaded through this loader — both
	// analysis targets and their module-local imports — so analyzers
	// can resolve cross-package function bodies (Package.Dep).
	pkgs map[string]*Package
}

// NewLoader creates a loader for the module rooted at root (found by
// walking up from dir to the nearest go.mod when root is a subdirectory).
func NewLoader(dir string) (*Loader, error) {
	root, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	for {
		if _, err := os.Stat(filepath.Join(root, "go.mod")); err == nil {
			break
		}
		parent := filepath.Dir(root)
		if parent == root {
			return nil, fmt.Errorf("lint: no go.mod above %s", dir)
		}
		root = parent
	}
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	module := ""
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			module = strings.TrimSpace(strings.Trim(strings.TrimSpace(rest), `"`))
			break
		}
	}
	if module == "" {
		return nil, fmt.Errorf("lint: no module directive in %s/go.mod", root)
	}
	fset := token.NewFileSet()
	l := &Loader{Root: root, Module: module, Fset: fset,
		cache: map[string]*types.Package{}, pkgs: map[string]*Package{}}
	std, ok := importer.ForCompiler(fset, "source", nil).(types.ImporterFrom)
	if !ok {
		return nil, fmt.Errorf("lint: source importer does not implement ImporterFrom")
	}
	l.std = std
	return l, nil
}

// ImportPath derives the module import path of dir ("." → module root).
func (l *Loader) ImportPath(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	rel, err := filepath.Rel(l.Root, abs)
	if err != nil {
		return "", err
	}
	if rel == "." {
		return l.Module, nil
	}
	if strings.HasPrefix(rel, "..") {
		return "", fmt.Errorf("lint: %s is outside module %s", dir, l.Root)
	}
	return l.Module + "/" + filepath.ToSlash(rel), nil
}

// Load parses and type-checks the package in dir under the given import
// path. Test files are skipped; comments are kept (suppressions and
// fixture expectations live there). Loads are cached by import path, so
// a package reached both as an analysis target and as a dependency is
// parsed and checked once and shares one object identity space.
func (l *Loader) Load(dir, path string) (*Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	files, err := l.parseDir(dir)
	if err != nil {
		return nil, err
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no buildable Go files in %s", dir)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(path, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", path, err)
	}
	pkg := &Package{
		Path:   path,
		Dir:    dir,
		Fset:   l.Fset,
		Files:  files,
		Types:  tpkg,
		Info:   info,
		loader: l,
	}
	pkg.parents = map[ast.Node]ast.Node{}
	for _, f := range files {
		buildParents(f, pkg.parents)
	}
	l.pkgs[path] = pkg
	l.cache[path] = tpkg
	return pkg, nil
}

// LoadDir loads the package in dir with its import path derived from the
// module layout.
func (l *Loader) LoadDir(dir string) (*Package, error) {
	path, err := l.ImportPath(dir)
	if err != nil {
		return nil, err
	}
	return l.Load(dir, path)
}

func (l *Loader) parseDir(dir string) ([]*ast.File, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasSuffix(name, "_test.go") || strings.HasPrefix(name, ".") {
			continue
		}
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// Import implements types.Importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	return l.ImportFrom(path, l.Root, 0)
}

// ImportFrom implements types.ImporterFrom: module-local paths load as
// full packages (AST and type info retained for Package.Dep); everything
// else goes to the stdlib source importer.
func (l *Loader) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if p, ok := l.cache[path]; ok {
		return p, nil
	}
	if path == l.Module || strings.HasPrefix(path, l.Module+"/") {
		sub := strings.TrimPrefix(strings.TrimPrefix(path, l.Module), "/")
		pdir := filepath.Join(l.Root, filepath.FromSlash(sub))
		pkg, err := l.Load(pdir, path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	pkg, err := l.std.ImportFrom(path, dir, mode)
	if err == nil {
		l.cache[path] = pkg
	}
	return pkg, err
}

// ---------------------------------------------------------------------------
// Shared AST/type helpers used by the analyzers
// ---------------------------------------------------------------------------

// buildParents records the syntactic parent of every node under root.
func buildParents(root ast.Node, parents map[ast.Node]ast.Node) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if len(stack) > 0 {
			parents[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		return true
	})
}

// namedFrom unwraps pointers and returns the named type of t (looking
// through instantiated generics), or nil.
func namedFrom(t types.Type) *types.Named {
	if t == nil {
		return nil
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	n, _ := t.(*types.Named)
	return n
}

// isNamed reports whether t (possibly behind a pointer) is the named type
// pkgSuffix.name, matching the defining package by import-path suffix so
// the check works for both "ssrmin/internal/obs" and fixture loads.
func isNamed(t types.Type, pkgSuffix, name string) bool {
	n := namedFrom(t)
	if n == nil || n.Obj() == nil || n.Obj().Pkg() == nil {
		return false
	}
	if n.Obj().Name() != name {
		return false
	}
	p := n.Obj().Pkg().Path()
	return p == pkgSuffix || strings.HasSuffix(p, "/"+pkgSuffix) || strings.HasSuffix(p, pkgSuffix)
}

// exprKey renders a stable textual key for an expression (identifiers and
// selector chains); it returns "" for expressions too dynamic to compare.
func exprKey(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		base := exprKey(e.X)
		if base == "" {
			return ""
		}
		return base + "." + e.Sel.Name
	case *ast.ParenExpr:
		return exprKey(e.X)
	case *ast.IndexExpr:
		base := exprKey(e.X)
		if base == "" {
			return ""
		}
		if lit, ok := e.Index.(*ast.BasicLit); ok {
			return base + "[" + lit.Value + "]"
		}
		return ""
	}
	return ""
}

// pkgPathOf returns the import path of the package an identifier's object
// belongs to, or "".
func pkgPathOf(obj types.Object) string {
	if obj == nil || obj.Pkg() == nil {
		return ""
	}
	return obj.Pkg().Path()
}

// isPkgFunc reports whether call invokes the package-level function
// path.name (path matched exactly).
func isPkgFunc(info *types.Info, call *ast.CallExpr, path, name string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	obj := info.ObjectOf(sel.Sel)
	fn, ok := obj.(*types.Func)
	if !ok {
		return false
	}
	return fn.Name() == name && pkgPathOf(fn) == path
}

// enclosingFunc walks up the parent chain to the enclosing function
// declaration or literal and returns its body.
func enclosingFunc(parents map[ast.Node]ast.Node, n ast.Node) *ast.BlockStmt {
	for cur := n; cur != nil; cur = parents[cur] {
		switch f := cur.(type) {
		case *ast.FuncDecl:
			return f.Body
		case *ast.FuncLit:
			return f.Body
		}
	}
	return nil
}

// unquote strips Go quoting from a string literal, returning the raw text
// on failure.
func unquote(s string) string {
	u, err := strconv.Unquote(s)
	if err != nil {
		return s
	}
	return u
}
