package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// Deprecated finishes the functional-options migration structurally: the
// legacy MPOptions/LiveOptions option structs (and the SimOption alias)
// still compile — they implement Option so third-party call sites keep
// working — but no code inside this repository may introduce new uses.
// The analyzer flags every reference to a shim type outside its defining
// package; the golden API tests, which deliberately pin the shims'
// behaviour against the options vocabulary, live in _test.go files the
// lint loader never parses.
var Deprecated = &Analyzer{
	Name: "deprecated",
	Doc:  "no in-repo uses of the deprecated MPOptions/LiveOptions option-struct shims",
	Packages: []string{
		"ssrmin/cmd/ssrmin-sim",
		"ssrmin/cmd/ssrmin-mp",
		"ssrmin/cmd/ssrmin-live",
		"ssrmin/examples/handover",
		"ssrmin/examples/cameranet",
		"ssrmin/examples/faultdemo",
		"ssrmin/examples/quickstart",
	},
	Run: runDeprecated,
}

// deprecatedShims maps each shim type to its replacement, named in the
// diagnostic so the fix is mechanical.
var deprecatedShims = map[string]string{
	"MPOptions":   "functional options (WithSeed, WithDelay, ...)",
	"LiveOptions": "functional options (WithSeed, WithDelay, ...)",
	"SimOption":   "Option",
}

func runDeprecated(pass *Pass) {
	// The defining package keeps the shims (and their apply methods) for
	// backward compatibility; only uses elsewhere are regressions.
	if isRootSSRmin(pass.Pkg.Path) {
		return
	}
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			obj := pass.Pkg.Info.Uses[id]
			tn, ok := obj.(*types.TypeName)
			if !ok {
				return true
			}
			repl, hit := deprecatedShims[tn.Name()]
			if !hit || !isRootSSRmin(pkgPathOf(obj)) {
				return true
			}
			pass.Reportf(id.Pos(),
				"deprecated option shim ssrmin.%s; migrate to %s", tn.Name(), repl)
			return true
		})
	}
}

// isRootSSRmin matches the root package's import path, tolerating a
// module prefix so fixture loads resolve too.
func isRootSSRmin(path string) bool {
	return path == "ssrmin" || strings.HasSuffix(path, "/ssrmin")
}
