package lint

import (
	"go/ast"
	"go/types"
)

// Locality enforces the state-reading model of Section 2.1 inside the
// algorithm packages: a process may read its neighbors' states but write
// only its own. Concretely, in every function that takes a
// statemodel.View:
//
//   - No assignment may target the Pred or Succ component of a View (a
//     "neighbor write" — the exact violation Hoepman-style model breaks
//     smuggle into ring proofs).
//   - No write may escape the function through a pointer base, a
//     package-level variable, a non-local map, or a channel send:
//     algorithm structs are immutable during execution, so EnabledRule
//     and Apply stay pure functions of the view.
//
// Guard functions (EnabledRule methods, Guard*/Has* predicates returning
// bool) additionally may not perform I/O: a guard is evaluated
// speculatively by daemons and checkers, often many times per transition,
// and must be observationally silent.
var Locality = &Analyzer{
	Name: "locality",
	Doc:  "guards are side-effect-free; commands never write a neighbor's view",
	Packages: []string{
		"ssrmin/internal/core",
		"ssrmin/internal/dijkstra",
		"ssrmin/internal/inclusion",
		"ssrmin/internal/herman",
		"ssrmin/internal/compose",
	},
	Run: runLocality,
}

// isViewType reports whether t is (an instantiation of) statemodel.View.
func isViewType(t types.Type) bool { return isNamed(t, "internal/statemodel", "View") }

// viewFuncKind classifies a function declaration for the locality check.
type viewFuncKind int

const (
	notViewFunc viewFuncKind = iota
	viewCommand              // takes a View; may compute a new self state
	viewGuard                // takes a View and is a predicate/rule selector
)

func classifyViewFunc(info *types.Info, fd *ast.FuncDecl) viewFuncKind {
	if fd.Body == nil || fd.Type.Params == nil {
		return notViewFunc
	}
	hasView := false
	for _, field := range fd.Type.Params.List {
		if isViewType(info.TypeOf(field.Type)) {
			hasView = true
			break
		}
	}
	if !hasView {
		return notViewFunc
	}
	name := fd.Name.Name
	if name == "EnabledRule" || len(name) > 5 && name[:5] == "Guard" || name == "Guard" {
		return viewGuard
	}
	// A View function returning a single bool is a predicate (HasToken,
	// HasPrimary, ...): hold it to the guard standard too.
	if fd.Type.Results != nil && fd.Type.Results.NumFields() == 1 {
		if b, ok := info.TypeOf(fd.Type.Results.List[0].Type).(*types.Basic); ok && b.Kind() == types.Bool {
			return viewGuard
		}
	}
	return viewCommand
}

func runLocality(pass *Pass) {
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			kind := classifyViewFunc(info, fd)
			if kind == notViewFunc {
				continue
			}
			checkViewFunc(pass, fd, kind)
		}
	}
}

func checkViewFunc(pass *Pass, fd *ast.FuncDecl, kind viewFuncKind) {
	info := pass.Pkg.Info
	body := fd.Body
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				checkLocalityWrite(pass, fd, body, lhs, kind)
			}
		case *ast.IncDecStmt:
			checkLocalityWrite(pass, fd, body, n.X, kind)
		case *ast.SendStmt:
			pass.Reportf(n.Pos(),
				"%s sends on a channel inside a state-reading %s; model functions must be pure over the view",
				fd.Name.Name, kindNoun(kind))
		case *ast.CallExpr:
			if kind == viewGuard && isIOCall(info, n) {
				pass.Reportf(n.Pos(),
					"guard %s performs I/O; guards are evaluated speculatively and must be silent",
					fd.Name.Name)
			}
		}
		return true
	})
}

func kindNoun(kind viewFuncKind) string {
	if kind == viewGuard {
		return "guard"
	}
	return "command"
}

// checkLocalityWrite inspects one assignment target inside a view
// function.
func checkLocalityWrite(pass *Pass, fd *ast.FuncDecl, body *ast.BlockStmt, lhs ast.Expr, kind viewFuncKind) {
	info := pass.Pkg.Info
	// Neighbor-view writes: any selector chain passing through the Pred or
	// Succ field of a View value.
	if field, ok := neighborViewField(info, lhs); ok {
		pass.Reportf(lhs.Pos(),
			"%s writes to the %s component of a View: the state-reading model lets a process write only its own state (Section 2.1)",
			fd.Name.Name, field)
		return
	}
	base := baseExpr(lhs)
	id, ok := base.(*ast.Ident)
	if !ok {
		// Writing through a parenthesized/call/deref base: escapes the
		// function.
		if _, isStar := base.(*ast.StarExpr); isStar {
			pass.Reportf(lhs.Pos(),
				"%s writes through a pointer inside a state-reading %s; the write outlives the atomic step",
				fd.Name.Name, kindNoun(kind))
		}
		return
	}
	if id.Name == "_" {
		return
	}
	obj := info.ObjectOf(id)
	if obj == nil {
		return
	}
	v, ok := obj.(*types.Var)
	if !ok {
		return
	}
	// Package-level variables: shared mutable state.
	if v.Parent() == pass.Pkg.Types.Scope() {
		pass.Reportf(lhs.Pos(),
			"%s mutates package-level variable %s; algorithm state lives only in the configuration",
			fd.Name.Name, id.Name)
		return
	}
	// A plain rebinding of a local (or of the by-value View copy itself)
	// is fine. What is not fine is storing through a pointer-typed local
	// or receiver: `a.steps++` on a pointer receiver persists across the
	// atomic step and makes the algorithm stateful.
	if lhs != id { // selector or index store: a.field = x, m[k] = v
		if _, isPtr := v.Type().Underlying().(*types.Pointer); isPtr {
			if declaredIn(v, body) && !isParamOrRecv(fd, info, v) {
				// A pointer the function itself created (e.g. &local):
				// still local to the step.
				return
			}
			pass.Reportf(lhs.Pos(),
				"%s writes through pointer %s inside a state-reading %s; EnabledRule/Apply must be pure functions of the view",
				fd.Name.Name, id.Name, kindNoun(kind))
			return
		}
		if _, isMap := v.Type().Underlying().(*types.Map); isMap && !declaredIn(v, body) {
			pass.Reportf(lhs.Pos(),
				"%s writes into non-local map %s inside a state-reading %s",
				fd.Name.Name, id.Name, kindNoun(kind))
		}
	}
}

// neighborViewField reports whether expr contains a selection of the Pred
// or Succ field on a View-typed value and names the field.
func neighborViewField(info *types.Info, expr ast.Expr) (string, bool) {
	for {
		sel, ok := expr.(*ast.SelectorExpr)
		if !ok {
			return "", false
		}
		if (sel.Sel.Name == "Pred" || sel.Sel.Name == "Succ") && isViewType(info.TypeOf(sel.X)) {
			return sel.Sel.Name, true
		}
		expr = sel.X
	}
}

// baseExpr strips selectors, indexes and parens down to the root
// expression of an lvalue.
func baseExpr(e ast.Expr) ast.Expr {
	for {
		switch x := e.(type) {
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			return x
		default:
			return e
		}
	}
}

// declaredIn reports whether v's declaration position lies inside block.
func declaredIn(v *types.Var, block *ast.BlockStmt) bool {
	return v.Pos() > block.Pos() && v.Pos() < block.End()
}

// isParamOrRecv reports whether v is one of fd's parameters or its
// receiver.
func isParamOrRecv(fd *ast.FuncDecl, info *types.Info, v *types.Var) bool {
	match := func(fl *ast.FieldList) bool {
		if fl == nil {
			return false
		}
		for _, f := range fl.List {
			for _, name := range f.Names {
				if info.ObjectOf(name) == v {
					return true
				}
			}
		}
		return false
	}
	return match(fd.Recv) || match(fd.Type.Params)
}

// isIOCall reports whether call is an obvious I/O or logging call: any
// fmt/log/os function with output behaviour, or a Write/WriteString method.
func isIOCall(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	obj := info.ObjectOf(sel.Sel)
	fn, ok := obj.(*types.Func)
	if !ok {
		return false
	}
	switch pkgPathOf(fn) {
	case "fmt":
		switch fn.Name() {
		case "Print", "Printf", "Println", "Fprint", "Fprintf", "Fprintln":
			return true
		}
	case "log":
		return true
	case "os":
		switch fn.Name() {
		case "WriteFile", "Create", "OpenFile", "Remove", "RemoveAll", "Exit":
			return true
		}
	}
	return false
}
