package lint

import (
	"strings"
	"testing"
)

// FuzzWaiverParse drives parseWaiver — the single entry point of the
// //lint:ignore suppression syntax — with arbitrary comment text and
// checks the invariants every caller relies on: an accepted waiver
// always carries at least one non-empty, separator-free analyzer name
// and a non-empty trimmed reason, and only text that actually starts
// with the marker is ever accepted.
func FuzzWaiverParse(f *testing.F) {
	seeds := []string{
		"//lint:ignore determinism summed, order-free",
		"//lint:ignore obsguard,locality covers two analyzers",
		"//lint:ignore * blanket waiver with reason",
		"//lint:ignore determinism",
		"//lint:ignore",
		"//lint:ignore  hotpath \t extra   spacing around the reason ",
		"//lint:ignore hotpath,allocgate the overflow spill boxes the record by design",
		"//lint:ignore ,,, commas but no names",
		"// lint:ignore determinism a space breaks the marker",
		"//lint:ignorexdeterminism glued marker",
		"plain text, not a comment",
		"",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, text string) {
		analyzers, reason, ok := parseWaiver(text)
		if !ok {
			if analyzers != nil || reason != "" {
				t.Fatalf("rejected waiver %q leaked results (%v, %q)", text, analyzers, reason)
			}
			return
		}
		if !strings.HasPrefix(text, "//lint:ignore") {
			t.Fatalf("accepted %q without the //lint:ignore marker", text)
		}
		if len(analyzers) == 0 {
			t.Fatalf("accepted %q with no analyzer names", text)
		}
		for _, a := range analyzers {
			if a == "" {
				t.Fatalf("accepted %q with an empty analyzer name: %v", text, analyzers)
			}
			if strings.ContainsAny(a, ", \t\n\r") {
				t.Fatalf("analyzer name %q from %q contains a separator", a, text)
			}
		}
		if reason == "" || strings.TrimSpace(reason) != reason {
			t.Fatalf("accepted %q with an untrimmed or empty reason %q", text, reason)
		}
	})
}
