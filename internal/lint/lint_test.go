package lint

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
)

// The loader is shared by every test in the package: type-checking the
// standard library from source is the expensive part, and one Loader
// caches it across all fixture and repo loads.
var (
	loaderOnce   sync.Once
	sharedLoader *Loader
	sharedErr    error
)

func testLoader(t *testing.T) *Loader {
	t.Helper()
	loaderOnce.Do(func() {
		sharedLoader, sharedErr = NewLoader(".")
	})
	if sharedErr != nil {
		t.Fatalf("NewLoader: %v", sharedErr)
	}
	return sharedLoader
}

func loadFixture(t *testing.T, name string) *Package {
	t.Helper()
	pkg, err := testLoader(t).Load(filepath.Join("testdata", "src", name), name)
	if err != nil {
		t.Fatalf("load fixture %s: %v", name, err)
	}
	return pkg
}

// want expectations live in fixture comments: // want `re` `re` ...
// Each backquoted (or double-quoted) pattern must match exactly one
// diagnostic on the comment's line, and vice versa.
var (
	wantMarker  = regexp.MustCompile(`//\s*want\s+(.+)$`)
	wantPattern = regexp.MustCompile("`([^`]+)`" + `|"((?:[^"\\]|\\.)*)"`)
)

type wantCase struct {
	re      *regexp.Regexp
	matched bool
}

func parseWants(t *testing.T, pkg *Package) map[string][]*wantCase {
	t.Helper()
	wants := map[string][]*wantCase{}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantMarker.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
				for _, pm := range wantPattern.FindAllStringSubmatch(m[1], -1) {
					pat := pm[1]
					if pat == "" {
						pat = pm[2]
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s: bad want pattern %q: %v", key, pat, err)
					}
					wants[key] = append(wants[key], &wantCase{re: re})
				}
			}
		}
	}
	return wants
}

func TestFixtures(t *testing.T) {
	cases := []struct {
		name     string
		analyzer *Analyzer
	}{
		{"locality", Locality},
		{"determinism", Determinism},
		{"obsguard", ObsGuard},
		{"lockdiscipline", LockDiscipline},
		{"hotpath", Hotpath},
		{"deprecated", Deprecated},
		{"rulecheck", RuleCheck},
		{"shardsafety", ShardSafety},
		{"allocgate", AllocGate},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			pkg := loadFixture(t, tc.name)
			diags := RunAnalyzers(pkg, tc.analyzer)
			wants := parseWants(t, pkg)
			for _, d := range diags {
				key := fmt.Sprintf("%s:%d", d.File, d.Line)
				found := false
				for _, w := range wants[key] {
					if !w.matched && w.re.MatchString(d.Message) {
						w.matched = true
						found = true
						break
					}
				}
				if !found {
					t.Errorf("unexpected diagnostic: %s", d)
				}
			}
			for key, ws := range wants {
				for _, w := range ws {
					if !w.matched {
						t.Errorf("%s: want %q never reported", key, w.re)
					}
				}
			}
			if len(diags) < 2 {
				t.Errorf("fixture produced %d findings, want at least 2 demonstrated cases", len(diags))
			}
		})
	}
}

// TestRuleCheckLiveAnnotations guards rulecheck against silently
// becoming a no-op: the real dijkstra package must expose exactly the
// annotations the equivalence proof is built on (two relation halves,
// three token-guard group members). A refactor that detaches a doc
// comment would otherwise skip the sweep without any finding.
func TestRuleCheckLiveAnnotations(t *testing.T) {
	if testing.Short() {
		t.Skip("loads a real package; skipping in -short")
	}
	l := testLoader(t)
	dir := filepath.Join(l.Root, "internal", "dijkstra")
	pkg, err := l.Load(dir, "ssrmin/internal/dijkstra")
	if err != nil {
		t.Fatalf("load dijkstra: %v", err)
	}
	pass := &Pass{Analyzer: RuleCheck, Pkg: pkg}
	counts := map[string]int{}
	for _, a := range ruleCheckAnnotations(pass) {
		counts[a.kind]++
	}
	if counts["relation"] != 2 || counts["guard"] != 3 {
		t.Errorf("dijkstra annotations = %v, want 2 relation halves and 3 guard members", counts)
	}
	if diags := RunAnalyzers(pkg, RuleCheck); len(diags) != 0 {
		for _, d := range diags {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
}

// TestRepoPackagesClean runs every analyzer over its declared target
// packages in the real tree and demands silence: the audited state of the
// repository is itself a regression test.
func TestRepoPackagesClean(t *testing.T) {
	if testing.Short() {
		t.Skip("repo-wide lint is covered by make lint; skipping in -short")
	}
	l := testLoader(t)
	pkgs := map[string]*Package{}
	for _, a := range All() {
		for _, path := range a.Packages {
			pkg, ok := pkgs[path]
			if !ok {
				dir := filepath.Join(l.Root, filepath.FromSlash(strings.TrimPrefix(path, l.Module+"/")))
				var err error
				pkg, err = l.Load(dir, path)
				if err != nil {
					t.Fatalf("load %s: %v", path, err)
				}
				pkgs[path] = pkg
			}
			for _, d := range RunAnalyzers(pkg, a) {
				t.Errorf("%s: %s", path, d)
			}
		}
	}
}

func TestIgnoreParsing(t *testing.T) {
	src := `package p
//lint:ignore determinism
var a = 1
//lint:ignore determinism summed, order-free
var b = 2
//lint:ignore obsguard,locality covers two analyzers
var c = 3
//lint:ignore * blanket waiver with reason
var d = 4
`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	pkg := &Package{Fset: fset, Files: []*ast.File{f}}
	sup := collectIgnores(pkg)
	at := func(analyzer string, line int) bool {
		return sup.suppressed(Diagnostic{Analyzer: analyzer, File: "p.go", Line: line})
	}
	if at("determinism", 3) {
		t.Error("a bare //lint:ignore without a reason must suppress nothing")
	}
	if !at("determinism", 5) {
		t.Error("ignore with reason must cover the following line")
	}
	if !at("determinism", 4) {
		t.Error("ignore with reason must cover its own line")
	}
	if !at("obsguard", 7) || !at("locality", 7) {
		t.Error("comma-separated analyzer list must cover both names")
	}
	if at("determinism", 7) {
		t.Error("ignore must not leak to unnamed analyzers")
	}
	if !at("lockdiscipline", 9) {
		t.Error("the * wildcard must cover every analyzer")
	}
}

// TestIgnoreEndOfLine covers the end-of-line waiver form: the comment
// trails the flagged statement instead of sitting on its own line.
func TestIgnoreEndOfLine(t *testing.T) {
	src := `package p
var a = 1 //lint:ignore determinism trailing waiver with reason
var b = 2 //lint:ignore obsguard,locality,hotpath trailing multi-analyzer list
var c = 3 //lint:ignore determinism
var d = 4
`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	pkg := &Package{Fset: fset, Files: []*ast.File{f}}
	sup := collectIgnores(pkg)
	at := func(analyzer string, line int) bool {
		return sup.suppressed(Diagnostic{Analyzer: analyzer, File: "p.go", Line: line})
	}
	if !at("determinism", 2) {
		t.Error("end-of-line waiver must cover its own line")
	}
	if !at("determinism", 3) {
		t.Error("end-of-line waiver must cover the following line, like the own-line form")
	}
	if !at("obsguard", 3) || !at("locality", 3) || !at("hotpath", 3) {
		t.Error("end-of-line multi-analyzer list must cover every named analyzer")
	}
	if at("obsguard", 2) {
		t.Error("end-of-line waiver must not reach the preceding line")
	}
	if at("determinism", 4) {
		t.Error("a reasonless end-of-line waiver must suppress nothing")
	}
	if at("determinism", 5) {
		t.Error("an end-of-line waiver must not extend beyond the following line")
	}
}

// TestIgnoreInTestFiles pins that waiver semantics apply to whatever
// files a Package carries, including _test.go sources: an analyzer run
// over a package with test files must honor their waivers identically.
func TestIgnoreInTestFiles(t *testing.T) {
	lib := `package p
var a = 1
`
	test := `package p
//lint:ignore determinism seeded test fixture, order-free
var fixture = 2
var naked = 3 //lint:ignore locality,obsguard test shim reaches across the ring
var bare = 4
`
	fset := token.NewFileSet()
	libF, err := parser.ParseFile(fset, "p.go", lib, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	testF, err := parser.ParseFile(fset, "p_test.go", test, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	pkg := &Package{Fset: fset, Files: []*ast.File{libF, testF}}
	sup := collectIgnores(pkg)
	at := func(analyzer, file string, line int) bool {
		return sup.suppressed(Diagnostic{Analyzer: analyzer, File: file, Line: line})
	}
	if !at("determinism", "p_test.go", 3) || !at("determinism", "p_test.go", 2) {
		t.Error("own-line waiver in a _test.go file must cover itself and the next line")
	}
	if !at("locality", "p_test.go", 4) || !at("obsguard", "p_test.go", 4) {
		t.Error("end-of-line multi-analyzer waiver in a _test.go file must apply")
	}
	if at("determinism", "p_test.go", 5) {
		t.Error("waiver must not leak to unrelated lines of the test file")
	}
	if at("determinism", "p.go", 2) || at("determinism", "p.go", 3) {
		t.Error("a test-file waiver must not suppress findings in sibling files")
	}
}

func TestDiagnosticJSONAndString(t *testing.T) {
	d := Diagnostic{
		Analyzer: "obsguard",
		File:     "internal/msgnet/msgnet.go",
		Line:     12,
		Col:      3,
		Message:  "unguarded call",
	}
	blob, err := json.Marshal(d)
	if err != nil {
		t.Fatal(err)
	}
	want := `{"analyzer":"obsguard","file":"internal/msgnet/msgnet.go","line":12,"col":3,"message":"unguarded call"}`
	if string(blob) != want {
		t.Errorf("JSON = %s, want %s", blob, want)
	}
	if got := d.String(); got != "internal/msgnet/msgnet.go:12:3: unguarded call [obsguard]" {
		t.Errorf("String = %q", got)
	}
}

func TestRegistry(t *testing.T) {
	if len(All()) != 9 {
		t.Fatalf("All() = %d analyzers, want 9", len(All()))
	}
	seen := map[string]bool{}
	for _, a := range All() {
		if a.Name == "" || a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %+v incompletely declared", a)
		}
		if seen[a.Name] {
			t.Errorf("duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
		if Lookup(a.Name) != a {
			t.Errorf("Lookup(%q) did not round-trip", a.Name)
		}
		if len(a.Packages) == 0 {
			t.Errorf("%s declares no target packages", a.Name)
		}
		for _, p := range a.Packages {
			if !a.AppliesTo(p) {
				t.Errorf("%s.AppliesTo(%q) = false for its own target", a.Name, p)
			}
		}
		if a.AppliesTo("ssrmin/internal/doesnotexist") {
			t.Errorf("%s applies to an undeclared package", a.Name)
		}
	}
	if Lookup("nope") != nil {
		t.Error("Lookup of unknown analyzer must return nil")
	}
}
