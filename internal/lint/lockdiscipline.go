package lint

import "go/ast"

// LockDiscipline checks the two concurrency hygiene rules of the live
// packages:
//
//   - A sync.Mutex/RWMutex acquired in a function is released on every
//     path out of it: either the Lock is immediately followed by a defer
//     of the matching Unlock, or every return (and the fall-off end of
//     the function) is preceded by one. The check is a small forward
//     abstract interpretation over the statement tree — branches merge
//     pessimistically, so a single early return inside one arm of an if
//     that skips the Unlock is caught.
//   - A for-loop that multiplexes on channels via select must not also
//     call bare time.Sleep: sleeping inside a select loop delays shutdown
//     (ctx.Done is not observed while sleeping) and busy-waits where a
//     timer channel belongs.
var LockDiscipline = &Analyzer{
	Name: "lockdiscipline",
	Doc:  "mutexes unlock on every return path; select loops never busy-sleep",
	Packages: []string{
		"ssrmin/internal/runtime",
		"ssrmin/internal/parsweep",
		"ssrmin/internal/netring",
	},
	Run: runLockDiscipline,
}

func runLockDiscipline(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkLockPaths(pass, fd)
		}
		ast.Inspect(f, func(n ast.Node) bool {
			if loop, ok := n.(*ast.ForStmt); ok {
				checkSelectSleep(pass, loop.Body)
			}
			if loop, ok := n.(*ast.RangeStmt); ok {
				checkSelectSleep(pass, loop.Body)
			}
			return true
		})
	}
}

// ---------------------------------------------------------------------------
// Rule 1: unlock on every path
// ---------------------------------------------------------------------------

// lockState is the abstract state of one mutex expression.
type lockState int

const (
	unlocked lockState = iota
	locked
	deferred // a defer guarantees the unlock, terminally safe
)

// lockEnv maps mutex keys ("n.mu", "panicMu") to their abstract state.
type lockEnv map[string]lockState

func (e lockEnv) clone() lockEnv {
	c := make(lockEnv, len(e))
	for k, v := range e {
		c[k] = v
	}
	return c
}

// merge keeps a mutex locked only when both branches leave it locked;
// a defer in either branch wins (the unlock is scheduled regardless).
func (e lockEnv) merge(o lockEnv) {
	for k, v := range o {
		cur, ok := e[k]
		switch {
		case v == deferred || cur == deferred:
			e[k] = deferred
		case !ok:
			// Locked only on the other path: treat as unlocked here to
			// stay conservative about false positives.
			if v == locked {
				e[k] = unlocked
			}
		case cur == locked && v == locked:
			e[k] = locked
		default:
			e[k] = unlocked
		}
	}
	for k, cur := range e {
		if _, ok := o[k]; !ok && cur == locked {
			e[k] = unlocked
		}
	}
}

type lockChecker struct {
	pass *Pass
	fd   *ast.FuncDecl
}

func checkLockPaths(pass *Pass, fd *ast.FuncDecl) {
	lc := &lockChecker{pass: pass, fd: fd}
	env := lockEnv{}
	lc.block(fd.Body.List, env)
	if !terminates(fd.Body) { // a trailing return is reported by checkExit
		for key, st := range env {
			if st == locked {
				pass.Reportf(fd.Body.Rbrace,
					"%s falls off the end with %s still locked; unlock it or defer the unlock at the Lock site",
					fd.Name.Name, key)
			}
		}
	}
	// Every function literal (goroutine bodies, deferred closures, worker
	// funcs) is an independent lock scope: check each one on its own. The
	// statement walk above never descends into literals.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			lc.funcLit(lit)
		}
		return true
	})
}

// mutexCall recognizes X.Lock/Unlock/RLock/RUnlock on a sync.(RW)Mutex
// and returns the mutex key and whether it is an acquire.
func (lc *lockChecker) mutexCall(call *ast.CallExpr) (key string, acquire, isMutex bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false, false
	}
	switch sel.Sel.Name {
	case "Lock", "RLock":
		acquire = true
	case "Unlock", "RUnlock":
	default:
		return "", false, false
	}
	t := lc.pass.TypeOf(sel.X)
	if t == nil {
		return "", false, false
	}
	if !isNamed(t, "sync", "Mutex") && !isNamed(t, "sync", "RWMutex") {
		return "", false, false
	}
	key = exprKey(sel.X)
	if key == "" {
		return "", false, false
	}
	// RLock/RUnlock pair separately from Lock/Unlock on an RWMutex.
	if sel.Sel.Name == "RLock" || sel.Sel.Name == "RUnlock" {
		key += ".R"
	}
	return key, acquire, true
}

// block interprets a statement list, mutating env and reporting returns
// that leave a mutex held.
func (lc *lockChecker) block(stmts []ast.Stmt, env lockEnv) {
	for _, s := range stmts {
		lc.stmt(s, env)
	}
}

func (lc *lockChecker) stmt(s ast.Stmt, env lockEnv) {
	switch s := s.(type) {
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if key, acquire, isMutex := lc.mutexCall(call); isMutex {
				if acquire {
					env[key] = locked
				} else if env[key] != deferred {
					env[key] = unlocked
				}
				return
			}
		}
	case *ast.DeferStmt:
		if key, acquire, isMutex := lc.mutexCall(s.Call); isMutex && !acquire {
			env[key] = deferred
		}
	case *ast.ReturnStmt:
		lc.checkExit(s, env, "return")
	case *ast.BranchStmt:
		// break/continue/goto: out of scope for the path analysis.
	case *ast.BlockStmt:
		lc.block(s.List, env)
	case *ast.IfStmt:
		if s.Init != nil {
			lc.stmt(s.Init, env)
		}
		thenEnv := env.clone()
		lc.block(s.Body.List, thenEnv)
		elseEnv := env.clone()
		if s.Else != nil {
			lc.stmt(s.Else, elseEnv)
		}
		if terminates(s.Body) {
			// Only the else path continues.
			replace(env, elseEnv)
			return
		}
		thenEnv.merge(elseEnv)
		replace(env, thenEnv)
	case *ast.ForStmt:
		if s.Init != nil {
			lc.stmt(s.Init, env)
		}
		bodyEnv := env.clone()
		lc.block(s.Body.List, bodyEnv)
		env.merge(bodyEnv)
	case *ast.RangeStmt:
		bodyEnv := env.clone()
		lc.block(s.Body.List, bodyEnv)
		env.merge(bodyEnv)
	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		lc.branches(s, env)
	case *ast.LabeledStmt:
		lc.stmt(s.Stmt, env)
	}
}

// branches interprets all case bodies of a switch/select with isolated
// copies and merges them pessimistically.
func (lc *lockChecker) branches(s ast.Stmt, env lockEnv) {
	var bodies [][]ast.Stmt
	switch s := s.(type) {
	case *ast.SwitchStmt:
		if s.Init != nil {
			lc.stmt(s.Init, env)
		}
		for _, c := range s.Body.List {
			bodies = append(bodies, c.(*ast.CaseClause).Body)
		}
	case *ast.TypeSwitchStmt:
		for _, c := range s.Body.List {
			bodies = append(bodies, c.(*ast.CaseClause).Body)
		}
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			bodies = append(bodies, c.(*ast.CommClause).Body)
		}
	}
	if len(bodies) == 0 {
		return
	}
	merged := env.clone()
	lc.block(bodies[0], merged)
	for _, b := range bodies[1:] {
		be := env.clone()
		lc.block(b, be)
		merged.merge(be)
	}
	replace(env, merged)
}

// funcLit checks a function literal as an independent function body.
func (lc *lockChecker) funcLit(lit *ast.FuncLit) {
	env := lockEnv{}
	lc.block(lit.Body.List, env)
	if terminates(lit.Body) {
		return
	}
	for key, st := range env {
		if st == locked {
			lc.pass.Reportf(lit.Body.Rbrace,
				"function literal in %s exits with %s still locked", lc.fd.Name.Name, key)
		}
	}
}

func (lc *lockChecker) checkExit(s ast.Stmt, env lockEnv, how string) {
	for key, st := range env {
		if st == locked {
			lc.pass.Reportf(s.Pos(),
				"%s in %s while %s is locked and no unlock is deferred; this path leaks the mutex",
				how, lc.fd.Name.Name, key)
		}
	}
}

func replace(dst, src lockEnv) {
	for k := range dst {
		delete(dst, k)
	}
	for k, v := range src {
		dst[k] = v
	}
}

// ---------------------------------------------------------------------------
// Rule 2: no bare time.Sleep inside select loops
// ---------------------------------------------------------------------------

// checkSelectSleep flags time.Sleep calls in a loop body that also
// contains a select statement.
func checkSelectSleep(pass *Pass, body *ast.BlockStmt) {
	hasSelect := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.SelectStmt:
			hasSelect = true
			return false
		case *ast.FuncLit:
			return false
		}
		return true
	})
	if !hasSelect {
		return
	}
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if isPkgFunc(pass.Pkg.Info, call, "time", "Sleep") {
			pass.Reportf(call.Pos(),
				"bare time.Sleep inside a select loop blocks shutdown and busy-waits; use a timer/ticker case in the select instead")
		}
		return true
	})
}
