package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// ObsGuard enforces the hot-path contract of the observability layer
// (BENCH_obs.json's <5% no-op overhead bar):
//
//   - Every call on a *obs.Observer or obs.Sink that is reached through a
//     struct field must be dominated by a nil check on the very value it
//     calls through. Observer methods are individually nil-safe, but an
//     unguarded call still evaluates its arguments and pays a call on
//     every hot-path event; a Sink is an interface, so an unguarded call
//     is a latent panic.
//   - No obs.Event composite literal (and no fmt.Sprint*-style
//     formatting) may execute outside such a guard in a hot-path package:
//     event construction belongs exclusively to the observer-present
//     branch.
//
// The accepted guard shapes are exactly the idioms the repository uses:
//
//	if o := r.obsv; o != nil { o.MsgSent(...) }
//	if s.Obs != nil { s.Obs.Step(...) }
//	if o == nil { return } ... o.RuleFired(...)
var ObsGuard = &Analyzer{
	Name: "obsguard",
	Doc:  "observer/sink calls are nil-guarded and allocate nothing on the no-observer path",
	Packages: []string{
		"ssrmin/internal/statemodel",
		"ssrmin/internal/msgnet",
		"ssrmin/internal/runtime",
		"ssrmin/internal/check",
	},
	Run: runObsGuard,
}

func isObserverType(t types.Type) bool { return isNamed(t, "internal/obs", "Observer") }
func isSinkType(t types.Type) bool     { return isNamed(t, "internal/obs", "Sink") }
func isEventType(t types.Type) bool    { return isNamed(t, "internal/obs", "Event") }

func runObsGuard(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkObsCall(pass, n)
			case *ast.CompositeLit:
				if isEventType(pass.TypeOf(n)) && !nilGuarded(pass, n, "") {
					pass.Reportf(n.Pos(),
						"obs.Event constructed outside an observer nil-guard: event allocation must be confined to the observer-present branch")
				}
			}
			return true
		})
	}
}

// checkObsCall validates one method call whose receiver is an Observer or
// Sink.
func checkObsCall(pass *Pass, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	recv := sel.X
	t := pass.TypeOf(recv)
	var kind string
	switch {
	case isObserverType(t):
		kind = "*obs.Observer"
	case isSinkType(t):
		kind = "obs.Sink"
	default:
		return
	}
	// Accessor calls that *retrieve* the observer/sink (x.Observer(),
	// o.Sink()) are not emissions; only method calls on a value of the
	// type are checked, which the type switch above already ensures.
	key := exprKey(recv)
	if key == "" {
		// Receiver is itself a call or other dynamic expression — e.g.
		// chained x.Observer().Step(...). It cannot be matched against a
		// specific nil check, so any enclosing observer guard counts.
		if !nilGuarded(pass, call, "") {
			pass.Reportf(call.Pos(),
				"call on dynamically obtained %s is not inside an observer nil-guard; bind it to a variable and check it against nil", kind)
		}
		return
	}
	if !nilGuarded(pass, call, key) {
		pass.Reportf(call.Pos(),
			"hot-path call %s.%s on %s is not dominated by a nil check; wrap it in `if o := %s; o != nil { ... }`",
			key, sel.Sel.Name, kind, key)
	}
}

// nilGuarded reports whether node n sits in a region dominated by a nil
// check. With key != "", the check must test exactly that expression;
// with key == "", any non-nil test of an Observer/Sink-typed expression
// counts (used for Event literals, which only need *some* observer
// guard).
func nilGuarded(pass *Pass, n ast.Node, key string) bool {
	parents := pass.Pkg.parents
	for cur := ast.Node(n); cur != nil; cur = parents[cur] {
		parent := parents[cur]
		switch p := parent.(type) {
		case *ast.IfStmt:
			// Inside the then-branch of `if X != nil` (possibly with an
			// init like `if o := expr; o != nil`).
			if cur == ast.Node(p.Body) && condHasNotNil(pass, p.Cond, key) {
				return true
			}
			// Inside the else-branch of `if X == nil`.
			if cur == ast.Node(p.Else) && condHasIsNil(pass, p.Cond, key) {
				return true
			}
		case *ast.BlockStmt:
			// An earlier `if X == nil { return }` in the same block
			// dominates everything after it.
			for _, stmt := range p.List {
				if stmt.End() >= cur.Pos() {
					break
				}
				ifs, ok := stmt.(*ast.IfStmt)
				if !ok || !condHasIsNil(pass, ifs.Cond, key) {
					continue
				}
				if terminates(ifs.Body) {
					return true
				}
			}
		case *ast.FuncDecl, *ast.FuncLit:
			// Guards never cross function-literal boundaries: a closure
			// may run long after the check. Except: the common idiom
			// captures a checked local (`if o := ...; o != nil { f :=
			// func() { o.X() } }`), which the IfStmt case above already
			// accepted while walking inside the literal. Stop here.
			return false
		}
	}
	return false
}

// condHasNotNil reports whether cond contains `X != nil` (for key == "",
// any observer/sink-typed X; otherwise exactly key), possibly under `&&`.
func condHasNotNil(pass *Pass, cond ast.Expr, key string) bool {
	return condSearch(pass, cond, key, token.NEQ)
}

// condHasIsNil is the `X == nil` counterpart.
func condHasIsNil(pass *Pass, cond ast.Expr, key string) bool {
	return condSearch(pass, cond, key, token.EQL)
}

func condSearch(pass *Pass, cond ast.Expr, key string, op token.Token) bool {
	switch c := cond.(type) {
	case *ast.ParenExpr:
		return condSearch(pass, c.X, key, op)
	case *ast.BinaryExpr:
		if c.Op == token.LAND || c.Op == token.LOR {
			return condSearch(pass, c.X, key, op) || condSearch(pass, c.Y, key, op)
		}
		if c.Op != op {
			return false
		}
		x, y := c.X, c.Y
		if isNilIdent(y) {
			return matchGuardExpr(pass, x, key)
		}
		if isNilIdent(x) {
			return matchGuardExpr(pass, y, key)
		}
	}
	return false
}

func isNilIdent(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "nil"
}

func matchGuardExpr(pass *Pass, e ast.Expr, key string) bool {
	if key != "" {
		return exprKey(e) == key
	}
	t := pass.TypeOf(e)
	return isObserverType(t) || isSinkType(t)
}

// terminates reports whether a block certainly leaves the enclosing
// scope (its last statement returns, branches, panics, or is an
// if/else whose arms all do).
func terminates(b *ast.BlockStmt) bool {
	if b == nil || len(b.List) == 0 {
		return false
	}
	return stmtTerminates(b.List[len(b.List)-1])
}

func stmtTerminates(s ast.Stmt) bool {
	switch s := s.(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	case *ast.BlockStmt:
		return terminates(s)
	case *ast.IfStmt:
		return s.Else != nil && terminates(s.Body) && stmtTerminates(s.Else)
	case *ast.LabeledStmt:
		return stmtTerminates(s.Stmt)
	}
	return false
}
