// rulecheck: symbolic rule extraction and tier-equivalence proof. The
// analyzer lifts annotated guard/command functions into the symbolic IR
// (symir.go), exhaustively evaluates them over every view valuation of a
// small reference instance, and diffs the synthesized transition relation
// bit for bit against internal/check's compiled tables — the tables the
// model checker actually executes. A divergence between what the source
// says and what the compiled tiers do becomes a lint finding with a
// concrete (view → transition) witness, at `make lint` time instead of a
// lucky differential seed.
//
// Annotations (in a function's doc comment):
//
//	//rulecheck:relation <name>
//	    The function is one half of the named transition relation:
//	    EnabledRule (one view parameter, returning the rule number) or
//	    Apply (view and rule parameters, returning the next state). Both
//	    halves must be annotated; the pair is swept over all
//	    (class, pred, self, succ) valuations of the registered reference
//	    instance and compared against check.(*Engine).Tables().
//	    Registered names: "dijkstra" (SSToken) and "ssrmin".
//
//	//rulecheck:guard <relation> <group> [args=<path>,...]
//	    The boolean function belongs to a pointwise-equivalence group:
//	    every member must agree on every view valuation of the relation's
//	    instance. Members take either the view itself or, with args=, a
//	    list of view paths (e.g. args=I,Self.X,Pred.X) naming the scalars
//	    to pass — how Guard, GuardX and HasToken are proven to be the
//	    same predicate.
//
//	//rulecheck:step
//	    The function is an execution-tier step: structurally it must
//	    derive the rule from exactly one EnabledRule call on a view,
//	    guard every Apply with that same (view, rule) pair, and assign
//	    the result to a .state field — the composite-atomicity shape of
//	    Algorithm 4 that keeps the live tiers faithful to the state
//	    model.
package lint

import (
	"fmt"
	"go/ast"
	"regexp"
	"sort"
	"strings"

	"ssrmin/internal/check"
	"ssrmin/internal/core"
	"ssrmin/internal/dijkstra"
	"ssrmin/internal/statemodel"
)

// RuleCheck is the symbolic rule-extraction and equivalence analyzer.
var RuleCheck = &Analyzer{
	Name: "rulecheck",
	Doc:  "annotated guard/command source must match internal/check's compiled transition tables on every view valuation",
	Packages: []string{
		"ssrmin/internal/dijkstra",
		"ssrmin/internal/core",
		"ssrmin/internal/cst",
		"ssrmin/internal/runtime",
	},
	Run: runRuleCheck,
}

// relN and relK fix the reference instance every relation is swept on:
// the smallest ring SSRmin admits (n = 3) with the smallest legal
// counter space (K = 4). Position-uniform algorithms (the only ones
// check compiles) depend on n and K only through Bottom() and mod-K
// arithmetic, so equality on this instance is equality of the rule text.
const (
	relN = 3
	relK = 4
)

// relRef is one registered relation: the reference instance's state
// space in checker index order, its compiled ground-truth tables, and
// the receiver bindings symbolic evaluation substitutes for the
// algorithm's configuration fields.
type relRef struct {
	name   string
	states []symVal
	render []string
	index  map[string]int
	tables check.Tables
	bind   map[string]int64
}

func buildRelation(name string) (*relRef, error) {
	ref := &relRef{name: name, index: map[string]int{}, bind: map[string]int64{"n": relN, "k": relK}}
	switch name {
	case "dijkstra":
		alg := dijkstra.New(relN, relK)
		eng, err := check.New[dijkstra.State](alg, 0).Compile(1)
		if err != nil {
			return nil, err
		}
		ref.tables = eng.Tables()
		// Field order mirrors the source struct declaration (State{X}).
		for _, s := range alg.AllStates() {
			ref.states = append(ref.states, symStructVal(symIntVal(int64(s.X))))
			ref.render = append(ref.render, s.String())
		}
	case "ssrmin":
		alg := core.New(relN, relK)
		eng, err := check.New[core.State](alg, 0).Compile(1)
		if err != nil {
			return nil, err
		}
		ref.tables = eng.Tables()
		// Field order mirrors the source struct declaration
		// (State{X, RTS, TRA}).
		for _, s := range alg.AllStates() {
			ref.states = append(ref.states, symStructVal(symIntVal(int64(s.X)), symBoolVal(s.RTS), symBoolVal(s.TRA)))
			ref.render = append(ref.render, s.String())
		}
	default:
		return nil, fmt.Errorf("unknown relation %q (registered: dijkstra, ssrmin)", name)
	}
	for i, s := range ref.states {
		ref.index[s.key()] = i
	}
	return ref, nil
}

// ---------------------------------------------------------------------------
// Annotation scanning
// ---------------------------------------------------------------------------

var ruleCheckAnnRe = regexp.MustCompile(`^//rulecheck:(relation|guard|step)(?:\s+(.*))?$`)

type rcAnnotation struct {
	kind string
	args []string
	decl *ast.FuncDecl
}

func ruleCheckAnnotations(pass *Pass) []rcAnnotation {
	var out []rcAnnotation
	for _, f := range pass.Pkg.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Doc == nil {
				continue
			}
			for _, c := range fd.Doc.List {
				m := ruleCheckAnnRe.FindStringSubmatch(strings.TrimSpace(c.Text))
				if m == nil {
					continue
				}
				out = append(out, rcAnnotation{kind: m[1], args: strings.Fields(m[2]), decl: fd})
			}
		}
	}
	return out
}

func runRuleCheck(pass *Pass) {
	anns := ruleCheckAnnotations(pass)
	if len(anns) == 0 {
		return
	}
	comp := newSymCompiler()
	relations := map[string]*relationDecls{}
	guards := map[string]*guardGroup{}
	var relOrder, groupOrder []string

	for _, a := range anns {
		switch a.kind {
		case "relation":
			if len(a.args) != 1 {
				pass.Reportf(a.decl.Pos(), "rulecheck: relation annotation needs exactly one name")
				continue
			}
			name := a.args[0]
			rd := relations[name]
			if rd == nil {
				rd = &relationDecls{}
				relations[name] = rd
				relOrder = append(relOrder, name)
			}
			rd.add(pass, a.decl)
		case "guard":
			if len(a.args) < 2 {
				pass.Reportf(a.decl.Pos(), "rulecheck: guard annotation needs <relation> <group> [args=...]")
				continue
			}
			key := a.args[0] + "/" + a.args[1]
			g := guards[key]
			if g == nil {
				g = &guardGroup{rel: a.args[0], name: a.args[1]}
				guards[key] = g
				groupOrder = append(groupOrder, key)
			}
			member := guardMember{decl: a.decl}
			for _, extra := range a.args[2:] {
				if paths, ok := strings.CutPrefix(extra, "args="); ok {
					member.args = strings.Split(paths, ",")
				} else {
					pass.Reportf(a.decl.Pos(), "rulecheck: unknown guard annotation argument %q", extra)
				}
			}
			g.members = append(g.members, member)
		case "step":
			checkStepDiscipline(pass, a.decl)
		}
	}

	for _, name := range relOrder {
		checkRelation(pass, comp, name, relations[name])
	}
	for _, key := range groupOrder {
		checkGuardGroup(pass, comp, guards[key])
	}
}

// ---------------------------------------------------------------------------
// Relation equivalence
// ---------------------------------------------------------------------------

type relationDecls struct {
	enabled, apply *ast.FuncDecl
}

func (rd *relationDecls) add(pass *Pass, decl *ast.FuncDecl) {
	params := 0
	if decl.Type.Params != nil {
		for _, f := range decl.Type.Params.List {
			n := len(f.Names)
			if n == 0 {
				n = 1
			}
			params += n
		}
	}
	var slot **ast.FuncDecl
	switch params {
	case 1:
		slot = &rd.enabled
	case 2:
		slot = &rd.apply
	default:
		pass.Reportf(decl.Pos(), "rulecheck: relation function %s must take (view) or (view, rule), has %d parameters", decl.Name.Name, params)
		return
	}
	if *slot != nil {
		pass.Reportf(decl.Pos(), "rulecheck: duplicate relation role for %s (already declared by %s)", decl.Name.Name, (*slot).Name.Name)
		return
	}
	*slot = decl
}

func checkRelation(pass *Pass, comp *symCompiler, name string, rd *relationDecls) {
	anchor := rd.enabled
	if anchor == nil {
		anchor = rd.apply
	}
	if rd.enabled == nil || rd.apply == nil {
		missing := "EnabledRule half (one view parameter)"
		if rd.apply == nil {
			missing = "Apply half (view and rule parameters)"
		}
		pass.Reportf(anchor.Pos(), "rulecheck: relation %q is missing its %s", name, missing)
		return
	}
	ref, err := buildRelation(name)
	if err != nil {
		pass.Reportf(anchor.Pos(), "rulecheck: %v", err)
		return
	}
	enFn, enRecv, ok := compileRelationFunc(pass, comp, ref, rd.enabled)
	if !ok {
		return
	}
	apFn, apRecv, ok := compileRelationFunc(pass, comp, ref, rd.apply)
	if !ok {
		return
	}
	viewOf, ok := viewBuilder(pass, ref, rd.enabled)
	if !ok {
		return
	}

	ev := newSymEval()
	nStates := len(ref.states)
	type witness struct {
		class, p, s, u int
		got, want      string
	}
	var ruleBad, nextBad *witness
	ruleMism, nextMism := 0, 0

	for class := 0; class < statemodel.ViewClasses; class++ {
		for p := 0; p < nStates; p++ {
			for s := 0; s < nStates; s++ {
				for u := 0; u < nStates; u++ {
					t := statemodel.TripleIndex(nStates, p, s, u)
					view := viewOf(class, p, s, u)
					out, err := ev.call(enFn, withRecv(enRecv, view))
					if err != nil {
						reportSymError(pass, rd.enabled, name, err)
						return
					}
					got := out[0].n
					want := int64(ref.tables.Rule[class][t])
					if got != want {
						ruleMism++
						if ruleBad == nil {
							ruleBad = &witness{class, p, s, u, fmt.Sprintf("%d", got), fmt.Sprintf("%d", want)}
						}
						continue
					}
					if got == 0 {
						continue
					}
					next, err := ev.call(apFn, withRecv(apRecv, view, symIntVal(got)))
					if err != nil {
						reportSymError(pass, rd.apply, name, err)
						return
					}
					idx, ok := ref.index[next[0].key()]
					if !ok {
						pass.Reportf(rd.apply.Pos(), "rulecheck: relation %q: Apply at class=%s pred=%s self=%s succ=%s leaves the state space (%s)",
							name, className(class), ref.render[p], ref.render[s], ref.render[u], next[0].key())
						return
					}
					if int32(idx) != ref.tables.Next[class][t] {
						nextMism++
						if nextBad == nil {
							nextBad = &witness{class, p, s, u, ref.render[idx], ref.render[ref.tables.Next[class][t]]}
						}
					}
				}
			}
		}
	}

	total := statemodel.ViewClasses * nStates * nStates * nStates
	if ruleBad != nil {
		pass.Reportf(rd.enabled.Pos(),
			"rulecheck: relation %q: source %s disagrees with the compiled rule table at class=%s pred=%s self=%s succ=%s: source enables rule %s, table has %s (%d of %d valuations differ)",
			name, rd.enabled.Name.Name, className(ruleBad.class), ref.render[ruleBad.p], ref.render[ruleBad.s], ref.render[ruleBad.u],
			ruleBad.got, ruleBad.want, ruleMism, total)
	}
	if nextBad != nil {
		pass.Reportf(rd.apply.Pos(),
			"rulecheck: relation %q: source %s disagrees with the compiled next-state table at class=%s pred=%s self=%s succ=%s: source yields %s, table has %s (%d of %d valuations differ)",
			name, rd.apply.Name.Name, className(nextBad.class), ref.render[nextBad.p], ref.render[nextBad.s], ref.render[nextBad.u],
			nextBad.got, nextBad.want, nextMism, total)
	}
}

func className(class int) string {
	if class == 0 {
		return "bottom"
	}
	return "other"
}

func withRecv(recv *symVal, args ...symVal) []symVal {
	if recv == nil {
		return args
	}
	return append([]symVal{*recv}, args...)
}

// compileRelationFunc compiles one relation half and builds its receiver
// value (the algorithm's configuration fields bound to the reference
// instance), when it has one.
func compileRelationFunc(pass *Pass, comp *symCompiler, ref *relRef, decl *ast.FuncDecl) (*symFunc, *symVal, bool) {
	fn, err := comp.compileFunc(pass.Pkg, decl)
	if err != nil {
		reportSymError(pass, decl, ref.name, err)
		return nil, nil, false
	}
	if decl.Recv == nil {
		return fn, nil, true
	}
	recvType := pass.Pkg.Info.TypeOf(decl.Recv.List[0].Type)
	st, ok := symStructOf(recvType)
	if !ok {
		pass.Reportf(decl.Pos(), "rulecheck: receiver of %s is not a struct", decl.Name.Name)
		return nil, nil, false
	}
	fields := make([]symVal, st.NumFields())
	for i := 0; i < st.NumFields(); i++ {
		v, ok := ref.bind[st.Field(i).Name()]
		if !ok {
			pass.Reportf(decl.Pos(), "rulecheck: receiver field %s of %s has no binding in relation %q (known: n, k)",
				st.Field(i).Name(), decl.Name.Name, ref.name)
			return nil, nil, false
		}
		fields[i] = symIntVal(v)
	}
	recv := symStructVal(fields...)
	return fn, &recv, true
}

// viewBuilder resolves the view parameter's struct layout once and
// returns a constructor for (class, pred, self, succ) valuations.
func viewBuilder(pass *Pass, ref *relRef, decl *ast.FuncDecl) (func(class, p, s, u int) symVal, bool) {
	if decl.Type.Params == nil || len(decl.Type.Params.List) == 0 {
		pass.Reportf(decl.Pos(), "rulecheck: %s has no view parameter", decl.Name.Name)
		return nil, false
	}
	st, ok := symStructOf(pass.Pkg.Info.TypeOf(decl.Type.Params.List[0].Type))
	if !ok {
		pass.Reportf(decl.Pos(), "rulecheck: view parameter of %s is not a struct", decl.Name.Name)
		return nil, false
	}
	type fieldRole int
	const (
		roleI fieldRole = iota
		roleN
		roleSelf
		rolePred
		roleSucc
	)
	roles := make([]fieldRole, st.NumFields())
	for i := 0; i < st.NumFields(); i++ {
		switch st.Field(i).Name() {
		case "I":
			roles[i] = roleI
		case "N":
			roles[i] = roleN
		case "Self":
			roles[i] = roleSelf
		case "Pred":
			roles[i] = rolePred
		case "Succ":
			roles[i] = roleSucc
		default:
			pass.Reportf(decl.Pos(), "rulecheck: view field %s of %s is not one of I, N, Self, Pred, Succ", st.Field(i).Name(), decl.Name.Name)
			return nil, false
		}
	}
	return func(class, p, s, u int) symVal {
		fields := make([]symVal, len(roles))
		for i, r := range roles {
			switch r {
			case roleI:
				fields[i] = symIntVal(int64(class))
			case roleN:
				fields[i] = symIntVal(relN)
			case roleSelf:
				fields[i] = ref.states[s]
			case rolePred:
				fields[i] = ref.states[p]
			case roleSucc:
				fields[i] = ref.states[u]
			}
		}
		return symStructVal(fields...)
	}, true
}

func reportSymError(pass *Pass, decl *ast.FuncDecl, rel string, err error) {
	pos := symErrPos(err)
	if !pos.IsValid() {
		pos = decl.Pos()
	}
	pass.Reportf(pos, "rulecheck: relation %q: cannot extract %s symbolically: %v", rel, decl.Name.Name, err)
}

// ---------------------------------------------------------------------------
// Guard groups
// ---------------------------------------------------------------------------

type guardMember struct {
	decl *ast.FuncDecl
	args []string // view paths; nil means the member takes the view itself
}

type guardGroup struct {
	rel, name string
	members   []guardMember
}

func checkGuardGroup(pass *Pass, comp *symCompiler, g *guardGroup) {
	if len(g.members) < 2 {
		pass.Reportf(g.members[0].decl.Pos(), "rulecheck: guard group %q has a single member — nothing to compare against", g.name)
		return
	}
	ref, err := buildRelation(g.rel)
	if err != nil {
		pass.Reportf(g.members[0].decl.Pos(), "rulecheck: guard group %q: %v", g.name, err)
		return
	}
	viewOf, ok := viewBuilder(pass, ref, viewMember(g))
	if !ok {
		return
	}
	type compiled struct {
		member guardMember
		fn     *symFunc
		recv   *symVal
	}
	var fns []compiled
	for _, m := range g.members {
		fn, recv, ok := compileRelationFunc(pass, comp, ref, m.decl)
		if !ok {
			return
		}
		fns = append(fns, compiled{member: m, fn: fn, recv: recv})
	}
	ev := newSymEval()
	nStates := len(ref.states)
	mismatches := 0
	var first string
	var firstDecl *ast.FuncDecl
	for class := 0; class < statemodel.ViewClasses; class++ {
		for p := 0; p < nStates; p++ {
			for s := 0; s < nStates; s++ {
				for u := 0; u < nStates; u++ {
					view := viewOf(class, p, s, u)
					var base bool
					for i, c := range fns {
						args, err := memberArgs(c.member, view)
						if err != nil {
							pass.Reportf(c.member.decl.Pos(), "rulecheck: guard group %q: %v", g.name, err)
							return
						}
						out, err := ev.call(c.fn, withRecv(c.recv, args...))
						if err != nil {
							reportSymError(pass, c.member.decl, g.rel, err)
							return
						}
						got := out[0].isTrue()
						if i == 0 {
							base = got
							continue
						}
						if got != base {
							mismatches++
							if firstDecl == nil {
								firstDecl = c.member.decl
								first = fmt.Sprintf("%s=%t but %s=%t at class=%s pred=%s self=%s succ=%s",
									fns[0].member.decl.Name.Name, base, c.member.decl.Name.Name, got,
									className(class), ref.render[p], ref.render[s], ref.render[u])
							}
						}
					}
				}
			}
		}
	}
	if firstDecl != nil {
		total := statemodel.ViewClasses * nStates * nStates * nStates
		pass.Reportf(firstDecl.Pos(), "rulecheck: guard group %q is not pointwise equal: %s (%d of %d valuations differ)",
			g.name, first, mismatches, total)
	}
}

// viewMember picks a member whose parameter is the view itself, to read
// the view struct layout from; args= members only see scalars.
func viewMember(g *guardGroup) *ast.FuncDecl {
	for _, m := range g.members {
		if m.args == nil {
			return m.decl
		}
	}
	return g.members[0].decl
}

func memberArgs(m guardMember, view symVal) ([]symVal, error) {
	if m.args == nil {
		return []symVal{view}, nil
	}
	out := make([]symVal, len(m.args))
	for i, path := range m.args {
		v := view
		for _, part := range strings.Split(path, ".") {
			idx := viewPathIndex(part)
			if idx < 0 || v.kind != symStruct || idx >= len(v.elems) {
				return nil, fmt.Errorf("bad view path %q in args=", path)
			}
			v = v.elems[idx]
		}
		out[i] = v
	}
	return out, nil
}

// viewPathIndex maps a view path component to its field index in the
// canonical statemodel.View layout (I, N, Self, Pred, Succ) or, below a
// state, the relation's state struct (resolved by conventional names).
func viewPathIndex(part string) int {
	switch part {
	case "I":
		return 0
	case "N":
		return 1
	case "Self":
		return 2
	case "Pred":
		return 3
	case "Succ":
		return 4
	case "X":
		return 0
	case "RTS":
		return 1
	case "TRA":
		return 2
	}
	return -1
}

// ---------------------------------------------------------------------------
// Step discipline
// ---------------------------------------------------------------------------

// checkStepDiscipline structurally verifies an execution-tier step
// function: exactly one EnabledRule call whose result is bound to a rule
// variable, and every Apply call uses that same (view, rule) pair with
// the result assigned to a .state field.
func checkStepDiscipline(pass *Pass, decl *ast.FuncDecl) {
	if decl.Body == nil {
		return
	}
	var enabledCalls, applyCalls []*ast.CallExpr
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
			switch sel.Sel.Name {
			case "EnabledRule":
				enabledCalls = append(enabledCalls, call)
			case "Apply":
				applyCalls = append(applyCalls, call)
			}
		}
		return true
	})
	if len(enabledCalls) != 1 {
		pass.Reportf(decl.Pos(), "rulecheck: step function %s has %d EnabledRule calls, want exactly 1 (one rule evaluation per step)",
			decl.Name.Name, len(enabledCalls))
		return
	}
	en := enabledCalls[0]
	if len(en.Args) != 1 {
		pass.Reportf(en.Pos(), "rulecheck: step function %s: EnabledRule must take the view", decl.Name.Name)
		return
	}
	viewKey := exprKey(en.Args[0])
	ruleVar := ""
	if assign, ok := pass.Parent(en).(*ast.AssignStmt); ok && len(assign.Lhs) == 1 && len(assign.Rhs) == 1 {
		if id, ok := assign.Lhs[0].(*ast.Ident); ok {
			ruleVar = id.Name
		}
	}
	if viewKey == "" || ruleVar == "" {
		pass.Reportf(en.Pos(), "rulecheck: step function %s must bind `rule := alg.EnabledRule(view)` to a variable", decl.Name.Name)
		return
	}
	if len(applyCalls) == 0 {
		pass.Reportf(decl.Pos(), "rulecheck: step function %s never calls Apply — the enabled rule is dropped", decl.Name.Name)
		return
	}
	for _, ap := range applyCalls {
		if len(ap.Args) != 2 || exprKey(ap.Args[0]) != viewKey || exprKey(ap.Args[1]) != ruleVar {
			pass.Reportf(ap.Pos(), "rulecheck: step function %s: Apply must be called with the same (%s, %s) pair EnabledRule evaluated — applying a rule to a different view breaks composite atomicity",
				decl.Name.Name, viewKey, ruleVar)
			continue
		}
		assign, ok := pass.Parent(ap).(*ast.AssignStmt)
		if !ok || len(assign.Lhs) != 1 || !strings.HasSuffix(exprKey(assign.Lhs[0]), ".state") {
			pass.Reportf(ap.Pos(), "rulecheck: step function %s: Apply's result must be assigned to the node's .state field", decl.Name.Name)
		}
	}
}

// sortedRelationNames is a test hook: the registered relation names.
func sortedRelationNames() []string {
	names := []string{"dijkstra", "ssrmin"}
	sort.Strings(names)
	return names
}
