package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// Hotpath enforces the zero-allocation discipline of the message-passing
// tier (the packages the per-event cost model of EXPERIMENTS.md is
// measured on). Two classes of regression sneak back in most easily and
// are flagged here:
//
//   - A struct field typed `any` / `interface{}`. Boxing the payload is
//     how the legacy engine paid one heap allocation per scheduled
//     event; payloads must stay concrete (usually a type parameter), so
//     an empty-interface field in a hot-path package is a design
//     regression, not a style nit.
//
//   - A per-call heap allocation — new(T), &CompositeLit, or make(map)
//     — outside a constructor. Constructors (functions whose name starts
//     with "New") run once per simulation and may allocate; everything
//     else in these packages can sit on a per-event path, where an
//     allocation multiplied by millions of events is the exact cost the
//     arena engine exists to remove.
//
// Cold paths that genuinely need an allocation (setup helpers, the
// legacy reference engine, test-only validators) carry an explicit
// //lint:ignore hotpath <reason> waiver so every exception is visible
// and justified in the diff.
var Hotpath = &Analyzer{
	Name: "hotpath",
	Doc:  "no any-typed fields or per-event allocations in hot-path packages",
	Packages: []string{
		"ssrmin/internal/msgnet",
		"ssrmin/internal/cst",
		"ssrmin/internal/runtime",
		"ssrmin/internal/bitslice",
	},
	Run: runHotpath,
}

func runHotpath(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.StructType:
				checkBoxedFields(pass, n)
			case *ast.FuncDecl:
				if n.Body == nil || isConstructor(n) {
					return false
				}
				checkAllocations(pass, n)
				return false
			}
			return true
		})
	}
}

// isConstructor reports whether the declaration is a New*-prefixed
// function: the one shape allowed to allocate, because it runs once per
// simulation rather than once per event.
func isConstructor(fn *ast.FuncDecl) bool {
	return strings.HasPrefix(fn.Name.Name, "New")
}

// checkBoxedFields flags struct fields whose type is the empty
// interface. Type parameters constrained by `any` are not fields and
// never reach here.
func checkBoxedFields(pass *Pass, st *ast.StructType) {
	for _, field := range st.Fields.List {
		t := pass.TypeOf(field.Type)
		if t == nil {
			continue
		}
		// A type parameter constrained by `any` is the unboxed idiom this
		// analyzer exists to protect, not a violation: event[P]'s payload
		// field is concrete at every instantiation.
		if _, isTypeParam := t.(*types.TypeParam); isTypeParam {
			continue
		}
		iface, ok := t.Underlying().(*types.Interface)
		if !ok || !iface.Empty() {
			continue
		}
		// Name the field(s) in the diagnostic; embedded fields have no
		// names and fall back to the type's own text position.
		if len(field.Names) == 0 {
			pass.Reportf(field.Type.Pos(),
				"hot-path struct embeds an empty interface; payloads must stay unboxed")
			continue
		}
		for _, name := range field.Names {
			pass.Reportf(name.Pos(),
				"hot-path struct field %s is typed any; use a concrete type or a type parameter",
				name.Name)
		}
	}
}

// checkAllocations flags per-call heap allocations inside fn's body:
// new(T), &CompositeLit, and make(map). Growing a slice with append and
// make([]T, n) are deliberately exempt — they amortize, the flagged
// forms do not. Function literals inside fn are scanned too: a closure
// on a hot path allocates on the same path.
func checkAllocations(pass *Pass, fn *ast.FuncDecl) {
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.UnaryExpr:
			if n.Op.String() != "&" {
				return true
			}
			if _, ok := n.X.(*ast.CompositeLit); ok {
				pass.Reportf(n.Pos(),
					"%s allocates a composite literal per call; hoist it into a constructor or reuse a slot",
					fn.Name.Name)
			}
		case *ast.CallExpr:
			id, ok := n.Fun.(*ast.Ident)
			if !ok {
				return true
			}
			// Only the predeclared builtins count, not local shadows.
			if obj := pass.ObjectOf(id); obj != nil {
				if _, isBuiltin := obj.(*types.Builtin); !isBuiltin {
					return true
				}
			}
			switch id.Name {
			case "new":
				pass.Reportf(n.Pos(),
					"%s calls new() per invocation; hot-path events live in the arena, not the heap",
					fn.Name.Name)
			case "make":
				if len(n.Args) == 0 {
					return true
				}
				t := pass.TypeOf(n.Args[0])
				if t == nil {
					return true
				}
				if _, ok := t.Underlying().(*types.Map); ok {
					pass.Reportf(n.Pos(),
						"%s builds a map per invocation; precompute it or index by slot",
						fn.Name.Name)
				}
			}
		}
		return true
	})
}
