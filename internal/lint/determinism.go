package lint

import (
	"go/ast"
	"go/types"
)

// Determinism enforces bit-identical seeded executions in the packages
// whose output is pinned by goldens (trace tables, reports, the
// discrete-event network, the model checker): no map iteration feeding
// ordered output, no wall-clock reads, no draws from the global math/rand.
//
// Map iteration is only flagged when the loop body is order-sensitive —
// it appends, writes, emits, sends, or builds strings. Pure reductions
// (counting, summing, set membership) commute and stay legal; anything
// else must sort its keys first or carry an explicit
// //lint:ignore determinism <reason>.
var Determinism = &Analyzer{
	Name: "determinism",
	Doc:  "no map-order, wall-clock, or global-rand nondeterminism in seeded/golden packages",
	Packages: []string{
		"ssrmin/internal/statemodel",
		"ssrmin/internal/trace",
		"ssrmin/internal/report",
		"ssrmin/internal/stats",
		"ssrmin/internal/msgnet",
		"ssrmin/internal/check",
	},
	Run: runDeterminism,
}

func runDeterminism(pass *Pass) {
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.RangeStmt:
				checkMapRange(pass, n)
			case *ast.CallExpr:
				if isPkgFunc(info, n, "time", "Now") {
					pass.Reportf(n.Pos(),
						"time.Now in a deterministic package: model time must come from the simulation clock or the step index")
				}
			case *ast.SelectorExpr:
				checkGlobalRand(pass, n)
			}
			return true
		})
	}
}

// globalRandAllowed lists the math/rand package-level identifiers that do
// not touch the shared global source.
var globalRandAllowed = map[string]bool{
	"New":       true,
	"NewSource": true,
	"NewZipf":   true,
	"Rand":      true, // the type, in declarations
	"Source":    true,
	"Source64":  true,
}

// checkGlobalRand flags uses of math/rand's global-source functions
// (rand.Intn, rand.Float64, rand.Seed, ...): every draw must come from a
// seed-threaded *rand.Rand.
func checkGlobalRand(pass *Pass, sel *ast.SelectorExpr) {
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return
	}
	pkgName, ok := pass.ObjectOf(id).(*types.PkgName)
	if !ok || pkgName.Imported().Path() != "math/rand" {
		return
	}
	if fn, ok := pass.ObjectOf(sel.Sel).(*types.Func); ok && !globalRandAllowed[fn.Name()] {
		pass.Reportf(sel.Pos(),
			"global math/rand.%s uses the shared unseeded source; thread a seeded *rand.Rand instead",
			sel.Sel.Name)
	}
}

// checkMapRange flags `range m` over a map when the body is
// order-sensitive.
func checkMapRange(pass *Pass, rng *ast.RangeStmt) {
	t := pass.TypeOf(rng.X)
	if t == nil {
		return
	}
	if _, ok := t.Underlying().(*types.Map); !ok {
		return
	}
	reason, sensitive := orderSensitive(pass, rng.Body)
	if !sensitive {
		return
	}
	if reason == "append" && appendTargetsSorted(pass, rng) {
		// The collect-keys-then-sort idiom: every slice appended to in the
		// loop is passed to a sort.*/slices.Sort* call after it, which
		// erases the iteration order.
		return
	}
	pass.Reportf(rng.Pos(),
		"iteration over map feeds ordered output (%s); map order is random per execution — sort the keys first",
		reason)
}

// appendTargetsSorted reports whether every slice appended to inside rng's
// body is subsequently handed to a sort call in the enclosing function.
func appendTargetsSorted(pass *Pass, rng *ast.RangeStmt) bool {
	info := pass.Pkg.Info
	targets := map[string]bool{}
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) == 0 {
			return true
		}
		id, ok := call.Fun.(*ast.Ident)
		if !ok || id.Name != "append" {
			return true
		}
		if _, isBuiltin := info.ObjectOf(id).(*types.Builtin); !isBuiltin {
			return true
		}
		key := exprKey(call.Args[0])
		if key == "" {
			key = "\x00unsortable"
		}
		targets[key] = false
		return true
	})
	if len(targets) == 0 {
		return false
	}
	fn := enclosingFunc(pass.Pkg.parents, rng)
	if fn == nil {
		return false
	}
	ast.Inspect(fn, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rng.End() {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		fobj, ok := info.ObjectOf(sel.Sel).(*types.Func)
		if !ok {
			return true
		}
		if p := pkgPathOf(fobj); p != "sort" && p != "slices" {
			return true
		}
		for _, arg := range call.Args {
			if k := exprKey(arg); k != "" {
				if _, tracked := targets[k]; tracked {
					targets[k] = true
				}
			}
		}
		return true
	})
	for _, sorted := range targets {
		if !sorted {
			return false
		}
	}
	return true
}

// orderSensitive reports whether executing body under two different
// iteration orders can produce different observable results, with a short
// description of the first order-sensitive construct found.
func orderSensitive(pass *Pass, body *ast.BlockStmt) (string, bool) {
	info := pass.Pkg.Info
	reason := ""
	ast.Inspect(body, func(n ast.Node) bool {
		if reason != "" {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			if id, ok := n.Fun.(*ast.Ident); ok && id.Name == "append" {
				if _, isBuiltin := info.ObjectOf(id).(*types.Builtin); isBuiltin {
					reason = "append"
					return false
				}
			}
			if name, ok := orderSensitiveCallee(info, n); ok {
				reason = name
				return false
			}
		case *ast.SendStmt:
			reason = "channel send"
			return false
		case *ast.AssignStmt:
			// s += x on a string builds order-dependent output.
			if n.Tok.String() == "+=" && len(n.Lhs) == 1 {
				if b, ok := info.TypeOf(n.Lhs[0]).Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
					reason = "string concatenation"
					return false
				}
			}
		}
		return true
	})
	return reason, reason != ""
}

// orderSensitiveCallee recognizes calls that commit the iteration order to
// an ordered medium: writers, printers, emitters, table/trace builders.
func orderSensitiveCallee(info *types.Info, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	fn, ok := info.ObjectOf(sel.Sel).(*types.Func)
	if !ok {
		return "", false
	}
	name := fn.Name()
	switch name {
	case "Write", "WriteString", "WriteByte", "WriteRune", "Emit",
		"AddRow", "Record", "Append", "Push", "Enqueue":
		return name, true
	}
	if pkgPathOf(fn) == "fmt" {
		switch name {
		case "Print", "Printf", "Println", "Fprint", "Fprintf", "Fprintln":
			return "fmt." + name, true
		}
	}
	return "", false
}
