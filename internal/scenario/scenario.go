// Package scenario runs declarative, JSON-described message-passing
// experiments: algorithm, ring size, link characteristics, and a timed
// fault script (state corruption, cache corruption, link cuts and heals).
// It gives the CLI a reproducible, shareable experiment format — a run is
// a pure function of the scenario document.
package scenario

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"sort"

	"ssrmin/internal/core"
	"ssrmin/internal/cst"
	"ssrmin/internal/dijkstra"
	"ssrmin/internal/fault"
	"ssrmin/internal/msgnet"
	"ssrmin/internal/statemodel"
	"ssrmin/internal/synchro"
	"ssrmin/internal/verify"
)

// Fault is one scripted fault event.
type Fault struct {
	// At is the simulated time of injection (seconds).
	At float64 `json:"at"`
	// Type is one of "states", "caches", "cut", "heal", "loss-on",
	// "loss-off" — or a churn event: "join" (a new node splices in after
	// node Node), "leave" (node Node leaves the ring), "splice" (the
	// Count members following Node are removed and the ring reconnects).
	Type string `json:"type"`
	// Count is how many states/cache entries to corrupt (states/caches),
	// or the arc length of a splice (default 1).
	Count int `json:"count,omitempty"`
	// Link is the ring edge to cut or heal, as the lower endpoint: the
	// edge between node Link and node Link+1 (mod n).
	Link int `json:"link,omitempty"`
	// Node anchors a churn event: the join insertion point, the leaver,
	// or the node whose following arc a splice removes. Joined nodes get
	// ids n, n+1, ... in join order and are valid anchors for later
	// events.
	Node int `json:"node,omitempty"`
}

// IsChurn reports whether the fault is a ring-topology event.
func (f Fault) IsChurn() bool {
	return f.Type == "join" || f.Type == "leave" || f.Type == "splice"
}

// Link describes the ring links.
type Link struct {
	// Delay is the base propagation delay (seconds; default 0.01).
	Delay float64 `json:"delay"`
	// Jitter is the uniform extra delay bound (seconds).
	Jitter float64 `json:"jitter,omitempty"`
	// Loss is the per-message loss probability.
	Loss float64 `json:"loss,omitempty"`
	// Dup is the per-message duplication probability.
	Dup float64 `json:"dup,omitempty"`
	// Corrupt is the per-message payload corruption probability.
	Corrupt float64 `json:"corrupt,omitempty"`
}

// Scenario is one declarative experiment.
type Scenario struct {
	// Name labels the scenario in reports.
	Name string `json:"name"`
	// Algorithm is "ssrmin" (default) or "sstoken".
	Algorithm string `json:"algorithm,omitempty"`
	// Transform is "cst" (default) or "synchro" (the α-synchronizer).
	// Fault scripts and Hold are only supported under "cst".
	Transform string `json:"transform,omitempty"`
	// N is the ring size; K the counter space (default N+1).
	N int `json:"n"`
	K int `json:"k,omitempty"`
	// Horizon is the simulated duration in seconds.
	Horizon float64 `json:"horizon"`
	// Link configures every ring link.
	Link Link `json:"link"`
	// Refresh is the CST announcement period (default 5×delay).
	Refresh float64 `json:"refresh,omitempty"`
	// Hold is the critical-section dwell (seconds).
	Hold float64 `json:"hold,omitempty"`
	// Seed fixes all randomness.
	Seed int64 `json:"seed"`
	// RandomStart draws an arbitrary initial configuration; otherwise the
	// canonical legitimate one is used.
	RandomStart bool `json:"randomStart,omitempty"`
	// IncoherentCaches seeds caches with random states.
	IncoherentCaches bool `json:"incoherentCaches,omitempty"`
	// SettleBefore discards census observations before this time when
	// computing the report (for stabilization scenarios).
	SettleBefore float64 `json:"settleBefore,omitempty"`
	// Faults is the timed fault script.
	Faults []Fault `json:"faults,omitempty"`
}

// Result is the measured outcome of one scenario run.
type Result struct {
	Name string `json:"name"`
	// MinCensus/MaxCensus over the (post-settle) observation window.
	MinCensus int `json:"minCensus"`
	MaxCensus int `json:"maxCensus"`
	// Fractions maps census value -> fraction of observed time.
	Fractions map[int]float64 `json:"fractions"`
	// Violations counts observed instants outside [1,2].
	Violations int `json:"violations"`
	// LastBad is the last time the census left [1,2], or -1.
	LastBad float64 `json:"lastBad"`
	// RuleExecutions and message statistics.
	RuleExecutions int          `json:"ruleExecutions"`
	Net            msgnet.Stats `json:"net"`
}

// Load parses a JSON document containing either one scenario object or an
// array of them. Decoding is strict: an unknown field — usually a
// misspelled knob like "horizn" — is an error, not a parameter silently
// left at its default.
func Load(r io.Reader) ([]Scenario, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("scenario: read: %w", err)
	}
	// Sniff the first non-space byte to pick object vs array, so a typo in
	// an array document reports the field error instead of "not an object".
	isArray := false
	for _, b := range data {
		if b == ' ' || b == '\t' || b == '\r' || b == '\n' {
			continue
		}
		isArray = b == '['
		break
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if isArray {
		var many []Scenario
		if err := dec.Decode(&many); err != nil {
			return nil, fmt.Errorf("scenario: parse: %w", err)
		}
		return many, nil
	}
	var one Scenario
	if err := dec.Decode(&one); err != nil {
		return nil, fmt.Errorf("scenario: parse: %w", err)
	}
	return []Scenario{one}, nil
}

// Validate checks the scenario and fills defaults in place.
func (s *Scenario) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("scenario: missing name")
	}
	switch s.Algorithm {
	case "":
		s.Algorithm = "ssrmin"
	case "ssrmin", "sstoken":
	default:
		return fmt.Errorf("scenario %q: unknown algorithm %q", s.Name, s.Algorithm)
	}
	switch s.Transform {
	case "":
		s.Transform = "cst"
	case "cst":
	case "synchro":
		if len(s.Faults) > 0 || s.Hold != 0 {
			return fmt.Errorf("scenario %q: faults/hold are not supported under the synchro transform", s.Name)
		}
	default:
		return fmt.Errorf("scenario %q: unknown transform %q", s.Name, s.Transform)
	}
	minN := 3
	if s.Algorithm == "sstoken" {
		minN = 2
	}
	if s.N < minN {
		return fmt.Errorf("scenario %q: n = %d too small", s.Name, s.N)
	}
	if s.K == 0 {
		s.K = s.N + 1
	}
	if s.K <= s.N {
		return fmt.Errorf("scenario %q: K = %d must exceed n = %d", s.Name, s.K, s.N)
	}
	if s.Horizon <= 0 {
		return fmt.Errorf("scenario %q: horizon must be positive", s.Name)
	}
	if s.Link.Delay == 0 {
		s.Link.Delay = 0.01
	}
	if s.Refresh == 0 {
		s.Refresh = 5 * s.Link.Delay
	}
	for _, p := range []float64{s.Link.Loss, s.Link.Dup, s.Link.Corrupt} {
		if p < 0 || p > 1 {
			return fmt.Errorf("scenario %q: probability %v out of range", s.Name, p)
		}
	}
	for i, f := range s.Faults {
		switch f.Type {
		case "states", "caches":
			if f.Count <= 0 {
				return fmt.Errorf("scenario %q: fault %d needs a positive count", s.Name, i)
			}
		case "cut", "heal":
			if f.Link < 0 || f.Link >= s.N {
				return fmt.Errorf("scenario %q: fault %d link %d out of range", s.Name, i, f.Link)
			}
		case "loss-on", "loss-off":
		case "join", "leave":
			if f.Node < 0 {
				return fmt.Errorf("scenario %q: fault %d node %d out of range", s.Name, i, f.Node)
			}
		case "splice":
			if f.Node < 0 {
				return fmt.Errorf("scenario %q: fault %d node %d out of range", s.Name, i, f.Node)
			}
			if f.Count == 0 {
				s.Faults[i].Count = 1
			} else if f.Count < 0 {
				return fmt.Errorf("scenario %q: fault %d needs a positive count", s.Name, i)
			}
		default:
			return fmt.Errorf("scenario %q: fault %d has unknown type %q", s.Name, i, f.Type)
		}
		if f.At < 0 || f.At > s.Horizon {
			return fmt.Errorf("scenario %q: fault %d at %v outside horizon", s.Name, i, f.At)
		}
	}
	// Churn events must form a realizable plan, and the counter space must
	// dominate the largest ring the plan grows (the K > n requirement,
	// applied to every size the ring passes through).
	if _, maxSize, err := ChurnPlan(s.N, s.Faults); err != nil {
		return fmt.Errorf("scenario %q: %w", s.Name, err)
	} else if s.K <= maxSize {
		return fmt.Errorf("scenario %q: K = %d must exceed the churn plan's max ring size %d", s.Name, s.K, maxSize)
	}
	return nil
}

// Run executes the scenario and returns its measurements.
func (s Scenario) Run() (Result, error) {
	if err := s.Validate(); err != nil {
		return Result{}, err
	}
	link := msgnet.LinkParams{
		Delay:       msgnet.Time(s.Link.Delay),
		Jitter:      msgnet.Time(s.Link.Jitter),
		LossProb:    s.Link.Loss,
		DupProb:     s.Link.Dup,
		CorruptProb: s.Link.Corrupt,
	}
	switch s.Algorithm {
	case "ssrmin":
		if s.Transform == "synchro" {
			return runSynchro[core.State](s, newSSRminBundle(s), link)
		}
		return runGeneric[core.State](s, newSSRminBundle(s), link)
	case "sstoken":
		if s.Transform == "synchro" {
			return runSynchro[dijkstra.State](s, newSSTokenBundle(s), link)
		}
		return runGeneric[dijkstra.State](s, newSSTokenBundle(s), link)
	}
	return Result{}, fmt.Errorf("scenario %q: unreachable algorithm", s.Name)
}

// bundle packages the per-algorithm pieces the generic runner needs.
type bundle[S comparable] struct {
	alg    statemodel.Algorithm[S]
	init   statemodel.Config[S]
	draw   func(*rand.Rand) S
	holder func(statemodel.View[S]) bool
}

func newSSRminBundle(s Scenario) bundle[core.State] {
	a := core.New(s.N, s.K)
	draw := func(rng *rand.Rand) core.State {
		return core.State{X: rng.Intn(s.K), RTS: rng.Intn(2) == 1, TRA: rng.Intn(2) == 1}
	}
	init := a.InitialLegitimate()
	if s.RandomStart {
		rng := rand.New(rand.NewSource(s.Seed))
		init = make(statemodel.Config[core.State], s.N)
		for i := range init {
			init[i] = draw(rng)
		}
	}
	return bundle[core.State]{alg: a, init: init, draw: draw, holder: core.HasToken}
}

func newSSTokenBundle(s Scenario) bundle[dijkstra.State] {
	a := dijkstra.New(s.N, s.K)
	draw := func(rng *rand.Rand) dijkstra.State { return dijkstra.State{X: rng.Intn(s.K)} }
	init := a.InitialLegitimate()
	if s.RandomStart {
		rng := rand.New(rand.NewSource(s.Seed))
		init = make(statemodel.Config[dijkstra.State], s.N)
		for i := range init {
			init[i] = draw(rng)
		}
	}
	return bundle[dijkstra.State]{alg: a, init: init, draw: draw, holder: dijkstra.HasToken}
}

func runGeneric[S comparable](s Scenario, b bundle[S], link msgnet.LinkParams) (Result, error) {
	spare, _, err := ChurnPlan(s.N, s.Faults)
	if err != nil {
		return Result{}, fmt.Errorf("scenario %q: %w", s.Name, err)
	}
	ring := cst.NewRing[S](b.alg, b.init, cst.Options[S]{
		Link:           link,
		Refresh:        msgnet.Time(s.Refresh),
		Hold:           msgnet.Time(s.Hold),
		Seed:           s.Seed,
		CoherentCaches: !s.IncoherentCaches,
		RandomState:    b.draw,
		Spare:          spare,
	})
	if link.CorruptProb > 0 {
		ring.Net.Corrupt = func(rng *rand.Rand, payload S) S { return b.draw(rng) }
	}

	var tl verify.Timeline
	res := Result{Name: s.Name, LastBad: -1, Fractions: map[int]float64{}}
	ring.Net.Observer = func(now msgnet.Time) {
		c := ring.Census(b.holder)
		if float64(now) >= s.SettleBefore {
			tl.Record(float64(now), c)
		}
		if c < 1 || c > 2 {
			res.LastBad = float64(now)
			if float64(now) >= s.SettleBefore {
				res.Violations++
			}
		}
	}

	faults := append([]Fault(nil), s.Faults...)
	sort.SliceStable(faults, func(i, j int) bool { return faults[i].At < faults[j].At })
	inj := fault.NewInjector(s.Seed + 1)
	for _, f := range faults {
		ring.Net.Run(msgnet.Time(f.At))
		switch f.Type {
		case "states":
			fault.CorruptStates[S](inj, ring, f.Count, b.draw)
		case "caches":
			fault.CorruptCaches[S](inj, ring, f.Count, b.draw)
		case "cut":
			setEdge(ring.Net, f.Link, (f.Link+1)%s.N, false)
		case "heal":
			setEdge(ring.Net, f.Link, (f.Link+1)%s.N, true)
		case "loss-on":
			ring.Net.LossEnabled = true
		case "loss-off":
			ring.Net.LossEnabled = false
		case "join":
			ring.Join(f.Node, b.draw(inj.Rand()))
		case "leave":
			ring.Leave(f.Node)
		case "splice":
			ring.Splice(f.Node, f.Count)
		}
	}
	ring.Net.Run(msgnet.Time(s.Horizon))

	tl.Close(float64(ring.Net.Now()))
	res.MinCensus = tl.MinCount()
	res.MaxCensus = tl.MaxCount()
	for _, c := range tl.Counts() {
		res.Fractions[c] = tl.Fraction(c)
	}
	res.RuleExecutions = ring.RuleExecutions()
	res.Net = ring.Net.Stats()
	return res, nil
}

// setEdge cuts or heals both directions of one ring edge, skipping
// directions that churn has already removed from the topology — a cut of
// a spliced-away edge is a no-op, not a crash.
func setEdge[S comparable](net *msgnet.Network[S], a, b int, up bool) {
	if net.HasLink(a, b) {
		net.SetLinkUp(a, b, up)
	}
	if net.HasLink(b, a) {
		net.SetLinkUp(b, a, up)
	}
}

// runSynchro executes the scenario under the α-synchronizer transform.
func runSynchro[S comparable](s Scenario, b bundle[S], link msgnet.LinkParams) (Result, error) {
	ring := synchro.NewRing[S](b.alg, b.init, link, msgnet.Time(s.Refresh), s.Seed)
	var tl verify.Timeline
	res := Result{Name: s.Name, LastBad: -1, Fractions: map[int]float64{}}
	ring.Net.Observer = func(now msgnet.Time) {
		c := ring.Census(b.holder)
		if float64(now) >= s.SettleBefore {
			tl.Record(float64(now), c)
		}
		if c < 1 || c > 2 {
			res.LastBad = float64(now)
			if float64(now) >= s.SettleBefore {
				res.Violations++
			}
		}
	}
	ring.Net.Run(msgnet.Time(s.Horizon))
	tl.Close(float64(ring.Net.Now()))
	res.MinCensus = tl.MinCount()
	res.MaxCensus = tl.MaxCount()
	for _, c := range tl.Counts() {
		res.Fractions[c] = tl.Fraction(c)
	}
	res.RuleExecutions = ring.RuleExecutions()
	res.Net = ring.Net.Stats()
	return res, nil
}

// WriteResult renders a result as indented JSON.
func WriteResult(w io.Writer, r Result) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
