package scenario

import (
	"strings"
	"testing"
)

func TestChurnPlanTrajectory(t *testing.T) {
	faults := []Fault{
		{At: 5, Type: "join", Node: 2},              // [0 1 2 6 3 4 5]
		{At: 10, Type: "leave", Node: 4},            // [0 1 2 6 3 5]
		{At: 15, Type: "splice", Node: 0, Count: 2}, // [0 6 3 5]
		{At: 20, Type: "join", Node: 6},             // [0 6 7 3 5]
	}
	joins, maxSize, err := ChurnPlan(6, faults)
	if err != nil {
		t.Fatalf("ChurnPlan: %v", err)
	}
	if joins != 2 {
		t.Fatalf("joins = %d, want 2", joins)
	}
	if maxSize != 7 {
		t.Fatalf("maxSize = %d, want 7", maxSize)
	}
}

func TestChurnPlanOrdersByTime(t *testing.T) {
	// Written out of order: the leave of node 4 at t=10 is only legal
	// because the join at t=5 has already created node 4.
	faults := []Fault{
		{At: 10, Type: "leave", Node: 4},
		{At: 5, Type: "join", Node: 0},
		{At: 2, Type: "leave", Node: 1},
	}
	joins, maxSize, err := ChurnPlan(4, faults)
	if err != nil {
		t.Fatalf("ChurnPlan: %v", err)
	}
	if joins != 1 || maxSize != 4 {
		t.Fatalf("joins, maxSize = %d, %d, want 1, 4", joins, maxSize)
	}
}

func TestChurnPlanRejections(t *testing.T) {
	cases := []struct {
		name   string
		n      int
		faults []Fault
		want   string
	}{
		{"anchor not a member", 4, []Fault{
			{At: 1, Type: "leave", Node: 2},
			{At: 2, Type: "join", Node: 2},
		}, "not a ring member"},
		{"leave bottom", 4, []Fault{{At: 1, Type: "leave", Node: 0}}, "removes node 0"},
		{"leave below three", 3, []Fault{{At: 1, Type: "leave", Node: 1}}, "below 3 members"},
		{"splice below three", 5, []Fault{{At: 1, Type: "splice", Node: 0, Count: 3}}, "below 3 members"},
		{"splice wraps onto bottom", 5, []Fault{{At: 1, Type: "splice", Node: 3, Count: 2}}, "removes node 0"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, _, err := ChurnPlan(tc.n, tc.faults)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("ChurnPlan err = %v, want substring %q", err, tc.want)
			}
		})
	}
}

func TestValidateChurnRejections(t *testing.T) {
	cases := []struct {
		name string
		edit func(*Scenario)
		want string
	}{
		{"negative join node", func(s *Scenario) {
			s.Faults = []Fault{{At: 1, Type: "join", Node: -1}}
		}, "out of range"},
		{"negative splice count", func(s *Scenario) {
			s.Faults = []Fault{{At: 1, Type: "splice", Node: 0, Count: -2}}
		}, "positive count"},
		{"unrealizable plan", func(s *Scenario) {
			s.Faults = []Fault{{At: 1, Type: "leave", Node: 0}}
		}, "removes node 0"},
		{"K below max ring size", func(s *Scenario) {
			s.K = 6
			s.Faults = []Fault{{At: 1, Type: "join", Node: 0}}
		}, "max ring size"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := base()
			tc.edit(&s)
			err := s.Validate()
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("Validate err = %v, want substring %q", err, tc.want)
			}
		})
	}
}

func TestValidateDefaultsSpliceCount(t *testing.T) {
	s := base()
	s.K = 10
	s.Faults = []Fault{{At: 1, Type: "splice", Node: 0}}
	if err := s.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if s.Faults[0].Count != 1 {
		t.Fatalf("splice count defaulted to %d, want 1", s.Faults[0].Count)
	}
}

// TestRunWithChurnScript drives joins, a leave, and a splice through the
// msgnet tier and checks the ring re-stabilizes to a census of one or two
// holders after the final topology change.
func TestRunWithChurnScript(t *testing.T) {
	s := Scenario{
		Name:    "churn-run",
		N:       5,
		K:       10,
		Horizon: 60,
		Link:    Link{Delay: 0.01, Jitter: 0.002},
		Seed:    3,
		Faults: []Fault{
			{At: 5, Type: "join", Node: 1},
			{At: 10, Type: "join", Node: 5},
			{At: 15, Type: "leave", Node: 3},
			{At: 20, Type: "splice", Node: 0, Count: 2},
		},
		SettleBefore: 40,
	}
	res, err := s.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Violations != 0 {
		t.Fatalf("violations after settle = %d (last bad at %v)", res.Violations, res.LastBad)
	}
	if res.MinCensus < 1 || res.MaxCensus > 2 {
		t.Fatalf("census range [%d, %d] after settle, want within [1, 2]", res.MinCensus, res.MaxCensus)
	}
}

// TestCutOfSplicedEdgeIsNoop replays the ISSUE's crash candidate: a cut
// scheduled on an edge that an earlier splice already removed from the
// topology must be ignored, not panic.
func TestCutOfSplicedEdgeIsNoop(t *testing.T) {
	s := Scenario{
		Name:    "cut-after-splice",
		N:       5,
		K:       10,
		Horizon: 40,
		Link:    Link{Delay: 0.01},
		Seed:    1,
		Faults: []Fault{
			{At: 5, Type: "splice", Node: 1, Count: 1}, // removes node 2, edges 1-2 and 2-3
			{At: 10, Type: "cut", Link: 2},             // edge 2-3 is gone
			{At: 12, Type: "heal", Link: 2},
		},
		SettleBefore: 25,
	}
	res, err := s.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.MinCensus < 1 || res.MaxCensus > 2 {
		t.Fatalf("census range [%d, %d] after settle, want within [1, 2]", res.MinCensus, res.MaxCensus)
	}
}

func TestLoadRejectsMisspelledChurnField(t *testing.T) {
	doc := `{"name": "x", "n": 5, "horizon": 5, "seed": 1,
		"faults": [{"at": 1, "type": "join", "nodde": 2}]}`
	_, err := Load(strings.NewReader(doc))
	if err == nil || !strings.Contains(err.Error(), "nodde") {
		t.Fatalf("Load err = %v, want unknown-field error naming nodde", err)
	}
}
