package scenario

import (
	"fmt"
	"sort"
)

// ChurnPlan simulates the ring-membership trajectory a fault script's
// churn events produce on an n-node ring, in injection (time) order. It
// returns the number of joins (= the spare nodes the ring must
// preallocate) and the largest ring size reached (the K > maxSize bound
// every execution tier needs), or an error when the plan is unrealizable:
// an event anchored on a node that is not a member at that time, node 0
// (the Dijkstra bottom the stabilization argument hangs on) leaving, or
// the ring shrinking below 3 members. Joined nodes get ids n, n+1, ... in
// join order and are valid anchors for later events.
func ChurnPlan(n int, faults []Fault) (joins, maxSize int, err error) {
	ring := make([]int, n)
	for i := range ring {
		ring[i] = i
	}
	maxSize = n

	ordered := append([]Fault(nil), faults...)
	sort.SliceStable(ordered, func(i, j int) bool { return ordered[i].At < ordered[j].At })

	idxOf := func(node int) int {
		for i, v := range ring {
			if v == node {
				return i
			}
		}
		return -1
	}

	for _, f := range ordered {
		if !f.IsChurn() {
			continue
		}
		at := idxOf(f.Node)
		if at < 0 {
			return 0, 0, fmt.Errorf("churn plan: %s at t=%v anchored on %d, not a ring member then", f.Type, f.At, f.Node)
		}
		switch f.Type {
		case "join":
			j := n + joins
			joins++
			ring = append(ring, 0)
			copy(ring[at+2:], ring[at+1:])
			ring[at+1] = j
			if len(ring) > maxSize {
				maxSize = len(ring)
			}
		case "leave":
			if f.Node == 0 {
				return 0, 0, fmt.Errorf("churn plan: leave at t=%v removes node 0 (bottom)", f.At)
			}
			if len(ring)-1 < 3 {
				return 0, 0, fmt.Errorf("churn plan: leave at t=%v shrinks the ring below 3 members", f.At)
			}
			ring = append(ring[:at], ring[at+1:]...)
		case "splice":
			count := f.Count
			if count == 0 {
				count = 1
			}
			if count < 0 {
				return 0, 0, fmt.Errorf("churn plan: splice at t=%v has negative count", f.At)
			}
			if len(ring)-count < 3 {
				return 0, 0, fmt.Errorf("churn plan: splice of %d at t=%v shrinks the ring below 3 members", count, f.At)
			}
			// ring[0] is always node 0 (it can never be removed), so an
			// arc running past the end of the slice would wrap onto it.
			for i := 0; i < count; i++ {
				victim := at + 1
				if victim >= len(ring) || ring[victim] == 0 {
					return 0, 0, fmt.Errorf("churn plan: splice at t=%v removes node 0 (bottom)", f.At)
				}
				ring = append(ring[:victim], ring[victim+1:]...)
			}
		}
	}
	return joins, maxSize, nil
}
