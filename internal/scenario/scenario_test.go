package scenario

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func base() Scenario {
	return Scenario{
		Name:    "t",
		N:       5,
		Horizon: 5,
		Link:    Link{Delay: 0.01, Jitter: 0.002},
		Seed:    1,
	}
}

func TestValidateDefaults(t *testing.T) {
	s := base()
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.Algorithm != "ssrmin" || s.K != 6 || s.Refresh != 0.05 {
		t.Fatalf("defaults not applied: %+v", s)
	}
}

func TestValidateRejections(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Scenario)
	}{
		{"no name", func(s *Scenario) { s.Name = "" }},
		{"bad alg", func(s *Scenario) { s.Algorithm = "paxos" }},
		{"small n", func(s *Scenario) { s.N = 2 }},
		{"bad k", func(s *Scenario) { s.K = 4 }},
		{"no horizon", func(s *Scenario) { s.Horizon = 0 }},
		{"bad loss", func(s *Scenario) { s.Link.Loss = 2 }},
		{"fault count", func(s *Scenario) { s.Faults = []Fault{{At: 1, Type: "states"}} }},
		{"fault type", func(s *Scenario) { s.Faults = []Fault{{At: 1, Type: "meteor"}} }},
		{"fault link", func(s *Scenario) { s.Faults = []Fault{{At: 1, Type: "cut", Link: 9}} }},
		{"fault time", func(s *Scenario) { s.Faults = []Fault{{At: 99, Type: "loss-on"}} }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := base()
			tc.mut(&s)
			if err := s.Validate(); err == nil {
				t.Errorf("validation accepted %+v", s)
			}
		})
	}
}

func TestLoadSingleAndArray(t *testing.T) {
	one := `{"name":"a","n":5,"horizon":3,"link":{"delay":0.01},"seed":1}`
	ss, err := Load(strings.NewReader(one))
	if err != nil || len(ss) != 1 || ss[0].Name != "a" {
		t.Fatalf("single load: %v %v", ss, err)
	}
	many := `[{"name":"a","n":5,"horizon":3,"link":{"delay":0.01},"seed":1},
	          {"name":"b","n":4,"horizon":2,"link":{"delay":0.02},"seed":2,"algorithm":"sstoken"}]`
	ss, err = Load(strings.NewReader(many))
	if err != nil || len(ss) != 2 || ss[1].Algorithm != "sstoken" {
		t.Fatalf("array load: %v %v", ss, err)
	}
	if _, err := Load(strings.NewReader("{nope")); err == nil {
		t.Error("bad JSON accepted")
	}
}

// TestLoadRejectsUnknownFields: a misspelled knob must be a load error,
// not an experiment silently run with the parameter at its default.
func TestLoadRejectsUnknownFields(t *testing.T) {
	misspelled := `{"name":"a","n":5,"horizn":3,"link":{"delay":0.01},"seed":1}`
	if _, err := Load(strings.NewReader(misspelled)); err == nil || !strings.Contains(err.Error(), "horizn") {
		t.Errorf("misspelled field not rejected: %v", err)
	}
	nested := `[{"name":"a","n":5,"horizon":3,"link":{"dellay":0.01},"seed":1}]`
	if _, err := Load(strings.NewReader(nested)); err == nil || !strings.Contains(err.Error(), "dellay") {
		t.Errorf("misspelled nested field in array not rejected: %v", err)
	}
}

func TestRunSSRminClean(t *testing.T) {
	s := base()
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.MinCensus < 1 || res.MaxCensus > 2 || res.Violations != 0 {
		t.Fatalf("clean run violated bounds: %+v", res)
	}
	if res.RuleExecutions == 0 || res.Net.Sent == 0 {
		t.Fatal("no progress recorded")
	}
	if res.LastBad != -1 {
		t.Fatalf("LastBad = %v on a clean run", res.LastBad)
	}
}

func TestRunSSTokenShowsGap(t *testing.T) {
	s := base()
	s.Algorithm = "sstoken"
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.MinCensus != 0 {
		t.Fatalf("SSToken scenario should reach census 0: %+v", res)
	}
}

func TestRunWithFaultScript(t *testing.T) {
	s := base()
	s.Horizon = 60
	s.SettleBefore = 40
	s.Faults = []Fault{
		{At: 5, Type: "states", Count: 2},
		{At: 10, Type: "caches", Count: 2},
		{At: 15, Type: "cut", Link: 1},
		{At: 20, Type: "heal", Link: 1},
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	// After the settle window the system must be back in the 1–2 regime.
	if res.Violations != 0 || res.MinCensus < 1 || res.MaxCensus > 2 {
		t.Fatalf("did not re-stabilize after fault script: %+v", res)
	}
}

func TestRunDeterministic(t *testing.T) {
	s := base()
	s.Link.Loss = 0.1
	r1, err1 := s.Run()
	r2, err2 := s.Run()
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if r1.RuleExecutions != r2.RuleExecutions || r1.Net != r2.Net {
		t.Fatalf("same scenario diverged: %+v vs %+v", r1, r2)
	}
}

func TestWriteResult(t *testing.T) {
	s := base()
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := WriteResult(&b, res); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"name"`, `"minCensus"`, `"ruleExecutions"`} {
		if !strings.Contains(b.String(), want) {
			t.Errorf("JSON missing %s:\n%s", want, b.String())
		}
	}
}

// TestShippedScenarioFiles loads and runs every scenario document shipped
// in the repository's scenarios/ directory.
func TestShippedScenarioFiles(t *testing.T) {
	files, err := filepath.Glob("../../scenarios/*.json")
	if err != nil || len(files) == 0 {
		t.Fatalf("no shipped scenarios found: %v", err)
	}
	for _, f := range files {
		fh, err := os.Open(f)
		if err != nil {
			t.Fatal(err)
		}
		ss, err := Load(fh)
		fh.Close()
		if err != nil {
			t.Fatalf("%s: %v", f, err)
		}
		for _, s := range ss {
			res, err := s.Run()
			if err != nil {
				t.Fatalf("%s/%s: %v", f, s.Name, err)
			}
			if s.Algorithm != "sstoken" && (res.MinCensus < 1 || res.MaxCensus > 2) {
				t.Errorf("%s/%s: census [%d,%d] out of bounds", f, s.Name, res.MinCensus, res.MaxCensus)
			}
		}
	}
}

func TestSynchroTransform(t *testing.T) {
	s := base()
	s.Transform = "synchro"
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.MinCensus < 1 || res.MaxCensus > 2 || res.Violations != 0 {
		t.Fatalf("ssrmin under synchro violated bounds: %+v", res)
	}

	s2 := base()
	s2.Transform = "synchro"
	s2.Algorithm = "sstoken"
	res2, err := s2.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res2.MinCensus != 0 {
		t.Fatalf("sstoken under synchro should show the gap: %+v", res2)
	}
}

func TestSynchroTransformValidation(t *testing.T) {
	s := base()
	s.Transform = "synchro"
	s.Faults = []Fault{{At: 1, Type: "loss-on"}}
	if err := s.Validate(); err == nil {
		t.Error("faults under synchro accepted")
	}
	s = base()
	s.Transform = "warp"
	if err := s.Validate(); err == nil {
		t.Error("unknown transform accepted")
	}
}
