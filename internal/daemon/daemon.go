// Package daemon provides schedulers ("daemons") for the state-reading
// execution model of internal/statemodel.
//
// The paper assumes the *unfair distributed daemon*: at every step an
// adversary may activate any nonempty subset of the enabled processes, and
// it owes no fairness to anybody — a continuously enabled process may be
// starved forever. Correctness claims therefore quantify over all daemons.
// This package supplies the daemons the experiments exercise:
//
//   - Central (exactly one process per step): round-robin, random,
//     lowest-index, highest-index.
//   - Synchronous (every enabled process moves).
//   - RandomSubset (each enabled process tossed in with probability p).
//   - RuleBiased (prefers or avoids given rule numbers — the adversary of
//     Lemma 5 that stalls Dijkstra-moves as long as possible).
//   - Starver (永久 starves a fixed victim set whenever legally possible —
//     a canonical unfairness witness).
//   - Seq (replays a scripted selection sequence — used by golden tests to
//     reproduce the exact executions of Figures 1 and 4).
//
// All randomized daemons take an explicit *rand.Rand so that every
// experiment is reproducible from its seed.
package daemon

import (
	"fmt"
	"math/rand"

	"ssrmin/internal/statemodel"
)

// Central activates exactly one enabled process per step, chosen by a
// pluggable picker. It models the central daemon of the paper.
type Central struct {
	name string
	pick func(enabled []statemodel.Move) statemodel.Move
}

// Name implements statemodel.Daemon.
func (c *Central) Name() string { return c.name }

// Select implements statemodel.Daemon.
func (c *Central) Select(enabled []statemodel.Move) []statemodel.Move {
	return []statemodel.Move{c.pick(enabled)}
}

// NewCentralRandom returns a central daemon choosing uniformly at random.
func NewCentralRandom(rng *rand.Rand) *Central {
	return &Central{
		name: "central-random",
		pick: func(enabled []statemodel.Move) statemodel.Move {
			return enabled[rng.Intn(len(enabled))]
		},
	}
}

// NewCentralLowest returns a central daemon always choosing the enabled
// process with the lowest index.
func NewCentralLowest() *Central {
	return &Central{
		name: "central-lowest",
		pick: func(enabled []statemodel.Move) statemodel.Move { return enabled[0] },
	}
}

// NewCentralHighest returns a central daemon always choosing the enabled
// process with the highest index.
func NewCentralHighest() *Central {
	return &Central{
		name: "central-highest",
		pick: func(enabled []statemodel.Move) statemodel.Move { return enabled[len(enabled)-1] },
	}
}

// NewCentralRoundRobin returns a central daemon that cycles a cursor over
// process indices and picks the first enabled process at or after the
// cursor. n is the ring size.
func NewCentralRoundRobin(n int) *Central {
	cursor := 0
	return &Central{
		name: "central-roundrobin",
		pick: func(enabled []statemodel.Move) statemodel.Move {
			// enabled is sorted by process index.
			for _, m := range enabled {
				if m.Process >= cursor {
					cursor = (m.Process + 1) % n
					return m
				}
			}
			m := enabled[0]
			cursor = (m.Process + 1) % n
			return m
		},
	}
}

// Synchronous activates every enabled process at every step. It is the
// maximal distributed daemon and the usual worst case for token-count
// arguments.
type Synchronous struct{}

// Name implements statemodel.Daemon.
func (Synchronous) Name() string { return "synchronous" }

// Select implements statemodel.Daemon.
func (Synchronous) Select(enabled []statemodel.Move) []statemodel.Move {
	out := make([]statemodel.Move, len(enabled))
	copy(out, enabled)
	return out
}

// RandomSubset includes each enabled process independently with probability
// P; if the coin flips leave the set empty it falls back to one uniformly
// random process, because a daemon must select a nonempty set.
type RandomSubset struct {
	rng *rand.Rand
	// P is the inclusion probability of each enabled process.
	P float64
}

// NewRandomSubset returns a distributed daemon with inclusion probability p.
func NewRandomSubset(rng *rand.Rand, p float64) *RandomSubset {
	if p < 0 || p > 1 {
		panic(fmt.Sprintf("daemon: inclusion probability %v out of [0,1]", p))
	}
	return &RandomSubset{rng: rng, P: p}
}

// Name implements statemodel.Daemon.
func (d *RandomSubset) Name() string { return fmt.Sprintf("distributed-random(p=%.2f)", d.P) }

// Select implements statemodel.Daemon.
func (d *RandomSubset) Select(enabled []statemodel.Move) []statemodel.Move {
	var out []statemodel.Move
	for _, m := range enabled {
		if d.rng.Float64() < d.P {
			out = append(out, m)
		}
	}
	if len(out) == 0 {
		out = append(out, enabled[d.rng.Intn(len(enabled))])
	}
	return out
}

// RuleBiased is an adversarial distributed daemon over rule numbers: if any
// enabled move executes a rule in Prefer, it selects exactly the preferred
// moves; only when every enabled move is non-preferred does it fall back to
// a single arbitrary move. With Prefer = {1, 3, 5} for SSRmin it realizes
// the executions of Lemma 5 that delay the Dijkstra part (Rules 2 and 4) as
// long as possible.
type RuleBiased struct {
	// Prefer is the set of rule numbers to run eagerly.
	Prefer map[int]bool
	rng    *rand.Rand
}

// NewRuleBiased returns a RuleBiased daemon preferring the given rules.
func NewRuleBiased(rng *rand.Rand, prefer ...int) *RuleBiased {
	set := make(map[int]bool, len(prefer))
	for _, r := range prefer {
		set[r] = true
	}
	return &RuleBiased{Prefer: set, rng: rng}
}

// Name implements statemodel.Daemon.
func (d *RuleBiased) Name() string { return fmt.Sprintf("rule-biased%v", keys(d.Prefer)) }

// Select implements statemodel.Daemon.
func (d *RuleBiased) Select(enabled []statemodel.Move) []statemodel.Move {
	var preferred []statemodel.Move
	for _, m := range enabled {
		if d.Prefer[m.Rule] {
			preferred = append(preferred, m)
		}
	}
	if len(preferred) > 0 {
		return preferred
	}
	return []statemodel.Move{enabled[d.rng.Intn(len(enabled))]}
}

// Starver is an unfairness witness: it never activates a process in the
// victim set while any non-victim is enabled. Only when the victims are the
// only enabled processes does it grudgingly activate one of them. Under an
// unfair daemon an algorithm must converge even against this scheduler.
type Starver struct {
	// Victims holds the starved process indices.
	Victims map[int]bool
	rng     *rand.Rand
}

// NewStarver returns a Starver daemon for the given victim processes.
func NewStarver(rng *rand.Rand, victims ...int) *Starver {
	set := make(map[int]bool, len(victims))
	for _, v := range victims {
		set[v] = true
	}
	return &Starver{Victims: set, rng: rng}
}

// Name implements statemodel.Daemon.
func (d *Starver) Name() string { return fmt.Sprintf("starver%v", keys(d.Victims)) }

// Select implements statemodel.Daemon.
func (d *Starver) Select(enabled []statemodel.Move) []statemodel.Move {
	var free []statemodel.Move
	for _, m := range enabled {
		if !d.Victims[m.Process] {
			free = append(free, m)
		}
	}
	if len(free) > 0 {
		return free
	}
	return []statemodel.Move{enabled[d.rng.Intn(len(enabled))]}
}

// Seq replays a scripted schedule: at step t it activates exactly the
// processes of Script[t] that are enabled. If the script is exhausted, or
// no scripted process is enabled, it falls back to the lowest-index enabled
// process. Golden tests use Seq to pin down the exact executions shown in
// the paper's figures.
type Seq struct {
	// Script lists, per step, the process indices to activate.
	Script [][]int
	t      int
}

// NewSeq returns a scripted daemon.
func NewSeq(script [][]int) *Seq { return &Seq{Script: script} }

// Name implements statemodel.Daemon.
func (d *Seq) Name() string { return "scripted" }

// Select implements statemodel.Daemon.
func (d *Seq) Select(enabled []statemodel.Move) []statemodel.Move {
	var want []int
	if d.t < len(d.Script) {
		want = d.Script[d.t]
	}
	d.t++
	var out []statemodel.Move
	for _, m := range enabled {
		for _, p := range want {
			if m.Process == p {
				out = append(out, m)
				break
			}
		}
	}
	if len(out) == 0 {
		out = append(out, enabled[0])
	}
	return out
}

func keys(set map[int]bool) []int {
	out := make([]int, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	// Insertion-sort for determinism of names; the sets are tiny.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}
