package daemon

import (
	"math/rand"
	"testing"

	"ssrmin/internal/statemodel"
)

func moves(ps ...int) []statemodel.Move {
	out := make([]statemodel.Move, len(ps))
	for i, p := range ps {
		out[i] = statemodel.Move{Process: p, Rule: 1}
	}
	return out
}

func movesWithRules(pairs ...[2]int) []statemodel.Move {
	out := make([]statemodel.Move, len(pairs))
	for i, pr := range pairs {
		out[i] = statemodel.Move{Process: pr[0], Rule: pr[1]}
	}
	return out
}

func contains(sel []statemodel.Move, m statemodel.Move) bool {
	for _, s := range sel {
		if s == m {
			return true
		}
	}
	return false
}

func assertSubset(t *testing.T, sel, enabled []statemodel.Move) {
	t.Helper()
	if len(sel) == 0 {
		t.Fatal("daemon selected empty set")
	}
	for _, m := range sel {
		if !contains(enabled, m) {
			t.Fatalf("daemon selected %v not in enabled %v", m, enabled)
		}
	}
}

func TestCentralVariantsPickOne(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	enabled := moves(1, 3, 5)
	for _, d := range []statemodel.Daemon{
		NewCentralRandom(rng),
		NewCentralLowest(),
		NewCentralHighest(),
		NewCentralRoundRobin(8),
	} {
		for i := 0; i < 50; i++ {
			sel := d.Select(enabled)
			if len(sel) != 1 {
				t.Fatalf("%s selected %d moves", d.Name(), len(sel))
			}
			assertSubset(t, sel, enabled)
		}
	}
	if got := NewCentralLowest().Select(enabled)[0].Process; got != 1 {
		t.Errorf("central-lowest picked P%d, want P1", got)
	}
	if got := NewCentralHighest().Select(enabled)[0].Process; got != 5 {
		t.Errorf("central-highest picked P%d, want P5", got)
	}
}

func TestCentralRoundRobinCycles(t *testing.T) {
	d := NewCentralRoundRobin(6)
	enabled := moves(0, 2, 4)
	var picks []int
	for i := 0; i < 6; i++ {
		picks = append(picks, d.Select(enabled)[0].Process)
	}
	want := []int{0, 2, 4, 0, 2, 4}
	for i := range want {
		if picks[i] != want[i] {
			t.Fatalf("round-robin picks %v, want %v", picks, want)
		}
	}
}

func TestSynchronousSelectsAll(t *testing.T) {
	enabled := moves(0, 1, 2, 3)
	sel := Synchronous{}.Select(enabled)
	if len(sel) != 4 {
		t.Fatalf("synchronous selected %d of 4", len(sel))
	}
	// Must be a copy, not an alias.
	sel[0].Process = 99
	if enabled[0].Process == 99 {
		t.Error("Synchronous aliases the enabled slice")
	}
}

func TestRandomSubsetNonemptyAndSeeded(t *testing.T) {
	enabled := moves(0, 1, 2, 3, 4)
	d := NewRandomSubset(rand.New(rand.NewSource(9)), 0.0)
	for i := 0; i < 100; i++ {
		sel := d.Select(enabled)
		if len(sel) != 1 {
			t.Fatalf("p=0 must fall back to a single move, got %d", len(sel))
		}
		assertSubset(t, sel, enabled)
	}
	d = NewRandomSubset(rand.New(rand.NewSource(9)), 1.0)
	if sel := d.Select(enabled); len(sel) != 5 {
		t.Fatalf("p=1 must select everything, got %d", len(sel))
	}
	// Same seed, same choices.
	a := NewRandomSubset(rand.New(rand.NewSource(4)), 0.5)
	b := NewRandomSubset(rand.New(rand.NewSource(4)), 0.5)
	for i := 0; i < 50; i++ {
		sa, sb := a.Select(enabled), b.Select(enabled)
		if len(sa) != len(sb) {
			t.Fatal("same-seed daemons diverged")
		}
		for j := range sa {
			if sa[j] != sb[j] {
				t.Fatal("same-seed daemons diverged")
			}
		}
	}
}

func TestRandomSubsetValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewRandomSubset accepted p=2")
		}
	}()
	NewRandomSubset(rand.New(rand.NewSource(0)), 2)
}

func TestRuleBiasedPrefersRules(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	d := NewRuleBiased(rng, 1, 3, 5)
	enabled := movesWithRules([2]int{0, 2}, [2]int{1, 3}, [2]int{2, 5}, [2]int{3, 4})
	sel := d.Select(enabled)
	if len(sel) != 2 {
		t.Fatalf("selected %v, want the two preferred moves", sel)
	}
	for _, m := range sel {
		if m.Rule != 3 && m.Rule != 5 {
			t.Fatalf("selected non-preferred %v", m)
		}
	}
	// Only non-preferred enabled: falls back to one of them.
	enabled = movesWithRules([2]int{0, 2}, [2]int{3, 4})
	sel = d.Select(enabled)
	if len(sel) != 1 {
		t.Fatalf("fallback selected %d moves", len(sel))
	}
	assertSubset(t, sel, enabled)
}

func TestStarverAvoidsVictims(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	d := NewStarver(rng, 0, 2)
	enabled := moves(0, 1, 2, 3)
	sel := d.Select(enabled)
	for _, m := range sel {
		if m.Process == 0 || m.Process == 2 {
			t.Fatalf("starver selected victim %v", m)
		}
	}
	if len(sel) != 2 {
		t.Fatalf("starver selected %v, want both non-victims", sel)
	}
	// Only victims enabled: must select one anyway.
	sel = d.Select(moves(0, 2))
	if len(sel) != 1 {
		t.Fatalf("starver fallback selected %d", len(sel))
	}
}

func TestSeqReplaysScript(t *testing.T) {
	d := NewSeq([][]int{{2}, {0, 1}, {7}})
	enabled := moves(0, 1, 2)
	if sel := d.Select(enabled); len(sel) != 1 || sel[0].Process != 2 {
		t.Fatalf("step 0: %v", sel)
	}
	if sel := d.Select(enabled); len(sel) != 2 {
		t.Fatalf("step 1: %v", sel)
	}
	// Scripted process not enabled: fallback to lowest.
	if sel := d.Select(enabled); len(sel) != 1 || sel[0].Process != 0 {
		t.Fatalf("step 2 fallback: %v", sel)
	}
	// Script exhausted: fallback.
	if sel := d.Select(enabled); len(sel) != 1 || sel[0].Process != 0 {
		t.Fatalf("step 3 exhausted: %v", sel)
	}
}

func TestNames(t *testing.T) {
	rng := rand.New(rand.NewSource(0))
	for _, d := range []statemodel.Daemon{
		NewCentralRandom(rng), NewCentralLowest(), NewCentralHighest(),
		NewCentralRoundRobin(4), Synchronous{}, NewRandomSubset(rng, 0.5),
		NewRuleBiased(rng, 1, 3), NewStarver(rng, 2, 0), NewSeq(nil),
	} {
		if d.Name() == "" {
			t.Errorf("%T has empty name", d)
		}
	}
	if got := NewStarver(rng, 2, 0).Name(); got != "starver[0 2]" {
		t.Errorf("starver name %q, want sorted victims", got)
	}
}
