package runtime

// Engine is the sharded event-loop rebuild of the live tier: instead of
// one goroutine per node and wall-clock channel links (Ring, kept as the
// legacy deployment), it simulates the same Algorithm-4 semantics in
// virtual time — nodes partitioned into contiguous ring arcs, one worker
// loop per shard, arena-backed event queues, and lock-free SPSC rings for
// the sends that cross a shard boundary. No allocation happens on the
// hot path, which is what lets one process sustain rings of 100k+ nodes
// (see BENCH_runtime.json).
//
// # Determinism
//
// The engine is deterministic for a fixed seed, independent of the worker
// count. Every event carries the key (at, origin, seq) — virtual time,
// originating node, and that node's monotonic counter — and each shard
// processes its events in key order. Conservative synchronization does
// the rest: virtual time advances in epochs of length Delay (the
// lookahead), and because a frame admitted at time t arrives at
// t + Delay + jitter, every arrival lands in a strictly later epoch than
// its send. Within one epoch, then, nodes only consume events that were
// already queued at the epoch's start, so nodes never race: any
// interleaving of the per-node event sequences yields the same states,
// the same taps and the same stats. The differential test pins this
// bit-identically against the boxed Reference engine across seeds and
// worker counts.
//
// # Two modes
//
// RunUntil advances virtual time as fast as the CPU allows — the mode
// benches, crosscheck and large-n experiments use. Start/Stop pace
// virtual time 1:1 against the wall clock and accept live Inject and
// census queries, which is how NewLiveRing deploys the engine as a
// drop-in for the goroutine Ring.

import (
	"container/heap"
	"context"
	"fmt"
	"math/rand"
	goruntime "runtime"
	"sort"
	"sync"
	"time"

	"ssrmin/internal/obs"
	"ssrmin/internal/statemodel"
)

// engNode is one simulated node: its state, neighbor caches, and the
// word-sized PRNG and counters the determinism scheme needs. All fields
// are owned by the node's shard; nothing here is shared.
type engNode[S comparable] struct {
	state     S
	cachePred S
	cacheSucc S
	rng       prng
	seq       uint32 // monotonic action counter: event keys and tap ords
	wasPriv   bool
	// censusPriv mirrors the installed privilege predicate for the
	// shard-local census accumulators. It is deliberately separate from
	// wasPriv: wasPriv starts false so the first observer Handover edge
	// fires correctly, while censusPriv is initialized from the real
	// initial views at freeze time.
	censusPriv bool
}

// engLink is one directed link. busyUntil implements the
// one-message-per-direction rule; the PRNG draws jitter and loss. Both
// are owned by the sending node's shard.
type engLink struct {
	busyUntil float64
	rng       prng
}

// engShard is one worker's territory: the contiguous node arc [lo, hi),
// its event arena and heap, the SPSC rings toward the neighbor shards,
// and shard-local counters (summed on demand at barriers).
type engShard[S comparable] struct {
	id     int32
	lo, hi int32

	slots []eventSlot[S]
	free  int32
	heap  []heapEntry

	outLeft, outRight *spsc[S] // produced here, consumed by neighbor shards
	inLeft, inRight   *spsc[S] // aliases of the neighbors' out rings

	tapBuf []TapEvent

	events, sent, carried, dropped, rules int64

	// priv is the shard-local census accumulator: how many of this
	// shard's nodes currently satisfy the installed privilege predicate.
	// Maintained incrementally by notifyPriv and the churn hooks, summed
	// at barriers by TrackedCensus — replacing the O(n) snapshot scan.
	priv int64

	_ [64]byte // counters above are hot; keep shards off each other's lines
}

// EngineStats aggregates the engine's counters.
type EngineStats struct {
	// Events is the number of events dispatched.
	Events int64
	// Sent, Carried and Dropped count frames admitted into links,
	// delivered, and suppressed or lost.
	Sent, Carried, Dropped int64
	// Rules is the number of rule executions.
	Rules int64
}

// Engine is a sharded virtual-time execution of a CST-transformed ring
// algorithm. Build with NewEngine, optionally set Reference, then either
// RunUntil (fast virtual time) or Start/Stop (wall-clock paced).
type Engine[S comparable] struct {
	// Reference, when set before the first run, replaces the sharded
	// arena engine with a boxed container/heap event queue processed by
	// a single loop — the differential twin, mirroring
	// msgnet.Network.Legacy. Behavior is bit-identical by construction;
	// the test suite enforces it.
	Reference bool

	alg statemodel.Algorithm[S]
	n   int // founding ring size (= alg.N()); views carry this N
	// total = n + spares: the full node/link capacity, the size every
	// structural array is carved over.
	total int

	delay, jitter, refresh, loss float64

	nodes   []engNode[S]
	links   []engLink // 2i = i→succ, 2i+1 = i→pred (Ring's indexing)
	shards  []engShard[S]
	shardOf []int32
	w       int

	// Live ring topology. predOf/succOf replace the founding-ring modulo
	// so churn can rewire mid-run; active marks membership (spares and
	// leavers are false); members counts the true entries.
	predOf, succOf []int32
	active         []bool
	members        int
	spareNext      int
	churn          []churnOp[S]
	churnIdx       int

	refQ    *refQueue[S]
	pending []eventRec[S] // initial announces, timers and scheduled injects

	holder func(statemodel.View[S]) bool
	onPriv func(id int, holds bool)
	obsv   *obs.Observer
	taps   bool

	now    float64
	frozen bool

	workCh    []chan float64
	barrier   sync.WaitGroup
	workerWG  sync.WaitGroup
	workersUp bool

	mu       sync.Mutex
	started  bool
	stopped  bool
	ctrl     chan func()
	quit     chan struct{}
	done     chan struct{}
	driverWG sync.WaitGroup
}

// NewEngine builds an engine over init. Workers (Options.Workers)
// defaults to GOMAXPROCS and is clamped to [1, n]; Delay and Refresh
// must be positive (Delay is the conservative lookahead). Cache seeding
// follows NewRing exactly: CoherentCaches, RandomState, or self-copies.
func NewEngine[S comparable](alg statemodel.Algorithm[S], init statemodel.Config[S], opts Options[S]) *Engine[S] {
	n := alg.N()
	if len(init) != n {
		panic(fmt.Sprintf("runtime: init length %d != n %d", len(init), n))
	}
	if opts.Refresh <= 0 {
		panic("runtime: Refresh must be positive")
	}
	if opts.Delay <= 0 {
		panic("runtime: Engine requires a positive Delay (it is the epoch lookahead)")
	}
	if opts.Spare < 0 {
		panic("runtime: negative Spare")
	}
	total := n + opts.Spare
	e := &Engine[S]{
		alg:       alg,
		n:         n,
		total:     total,
		delay:     opts.Delay.Seconds(),
		jitter:    opts.Jitter.Seconds(),
		refresh:   opts.Refresh.Seconds(),
		loss:      opts.LossProb,
		w:         resolveWorkers(opts.Workers, total),
		members:   n,
		spareNext: n,
	}
	e.nodes = make([]engNode[S], total)
	e.links = make([]engLink, 2*total)
	e.shardOf = make([]int32, total)
	e.predOf = make([]int32, total)
	e.succOf = make([]int32, total)
	e.active = make([]bool, total)

	seedRNG := rand.New(rand.NewSource(opts.Seed))
	var mix prng = prng(uint64(opts.Seed)*0x9E3779B97F4A7C15 + 0x6A09E667F3BCC909)
	for i := 0; i < total; i++ {
		nd := &e.nodes[i]
		nd.rng = prng(mix.next())
		if i >= n {
			// Dormant spare: detached, silent until a ScheduleJoin wakes it.
			e.predOf[i], e.succOf[i] = -1, -1
			continue
		}
		pred, succ := (i-1+n)%n, (i+1)%n
		e.predOf[i], e.succOf[i] = int32(pred), int32(succ)
		e.active[i] = true
		nd.state = init[i]
		if opts.CoherentCaches {
			nd.cachePred, nd.cacheSucc = init[pred], init[succ]
		} else if opts.RandomState != nil {
			nd.cachePred, nd.cacheSucc = opts.RandomState(seedRNG), opts.RandomState(seedRNG)
		} else {
			nd.cachePred, nd.cacheSucc = init[i], init[i]
		}
	}
	for i := range e.links {
		e.links[i].rng = prng(mix.next())
	}

	// Every node's opening moves: announce at t=0, then refresh on a
	// randomly phased timer (so timers do not beat in lockstep).
	e.pending = make([]eventRec[S], 0, 2*n)
	for i := 0; i < n; i++ {
		nd := &e.nodes[i]
		e.pending = append(e.pending, eventRec[S]{
			at: 0, key2: key2(int32(i), nd.seq), node: int32(i), kind: evInit,
		})
		nd.seq++
		phase := e.refresh * nd.rng.float64()
		e.pending = append(e.pending, eventRec[S]{
			at: phase, key2: key2(int32(i), nd.seq), node: int32(i), kind: evTimer,
		})
		nd.seq++
	}
	return e
}

func resolveWorkers(w, n int) int {
	if w <= 0 {
		w = goruntime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

func key2(node int32, seq uint32) uint64 {
	return uint64(uint32(node))<<32 | uint64(seq)
}

// ---------------------------------------------------------------------------
// Configuration (before the first run)
// ---------------------------------------------------------------------------

// SetPrivilegeCallback installs holder as the node-local privilege
// predicate and cb as the notification hook. Must be called before the
// first run. With more than one worker, cb is invoked concurrently from
// worker loops and must be safe for that.
func (e *Engine[S]) SetPrivilegeCallback(holder func(statemodel.View[S]) bool, cb func(id int, holds bool)) {
	if e.frozen {
		panic("runtime: SetPrivilegeCallback after the engine started")
	}
	e.holder = holder
	e.onPriv = cb
}

// SetObserver installs o: rule firings, sends, deliveries, drops and
// handovers are emitted with virtual-time timestamps. When holder is
// non-nil it becomes the privilege predicate if none is installed.
// Counters are exact under any worker count; with more than one worker
// the sink's event order across shards is not deterministic.
func (e *Engine[S]) SetObserver(o *obs.Observer, holder func(statemodel.View[S]) bool) {
	if e.frozen {
		panic("runtime: SetObserver after the engine started")
	}
	e.obsv = o
	if e.holder == nil {
		e.holder = holder
	}
}

// EnableTaps turns on the deterministic execution trace (Taps). Must be
// called before the first run.
func (e *Engine[S]) EnableTaps() {
	if e.frozen {
		panic("runtime: EnableTaps after the engine started")
	}
	e.taps = true
}

// churnOp is one scheduled ring-topology change, applied at the epoch
// boundary containing its time.
type churnOp[S comparable] struct {
	at    float64
	kind  uint8 // opJoin, opLeave, opSplice
	node  int32 // join/splice anchor, or the leaver
	count int32 // splice arc length
	state S     // joiner's initial state
}

const (
	opJoin uint8 = iota
	opLeave
	opSplice
)

// ScheduleJoin schedules the next dormant spare to splice into the ring
// between node `after` and its successor at virtual time at, starting
// from state s. Must be called before the first run; joiner ids are
// assigned n, n+1, ... in join order. Churn collapses the engine to one
// worker: the shard arcs and their SPSC adjacency assume a static ring.
func (e *Engine[S]) ScheduleJoin(at float64, after int, s S) {
	e.scheduleChurn(at, churnOp[S]{at: at, kind: opJoin, node: int32(after), state: s})
}

// ScheduleLeave schedules node v to leave the ring at virtual time at.
// Node 0 (the Dijkstra bottom) can never leave.
func (e *Engine[S]) ScheduleLeave(at float64, v int) {
	if v == 0 {
		panic("runtime: node 0 (bottom) cannot leave the ring")
	}
	e.scheduleChurn(at, churnOp[S]{at: at, kind: opLeave, node: int32(v)})
}

// ScheduleSplice schedules the removal of the count consecutive members
// following `after` at virtual time at, reconnecting the ring with one
// fresh edge.
func (e *Engine[S]) ScheduleSplice(at float64, after, count int) {
	if count < 1 {
		panic("runtime: splice count must be >= 1")
	}
	e.scheduleChurn(at, churnOp[S]{at: at, kind: opSplice, node: int32(after), count: int32(count)})
}

func (e *Engine[S]) scheduleChurn(at float64, op churnOp[S]) {
	if e.frozen {
		panic("runtime: churn scheduled after the engine started")
	}
	if at < 0 {
		panic("runtime: churn scheduled in the past")
	}
	if op.node < 0 || int(op.node) >= e.total {
		panic(fmt.Sprintf("runtime: churn node %d out of range", op.node))
	}
	e.churn = append(e.churn, op)
}

// ScheduleInject schedules a transient fault: at virtual time at, node's
// state is overwritten with s (and announced, exactly like a live
// Inject). Must be called before the first run; this is how crosscheck
// and the tests pre-plan deterministic fault storms.
func (e *Engine[S]) ScheduleInject(at float64, node int, s S) {
	if e.frozen {
		panic("runtime: ScheduleInject after the engine started")
	}
	if node < 0 || node >= e.n {
		panic(fmt.Sprintf("runtime: node %d out of range", node))
	}
	if at < 0 {
		panic("runtime: ScheduleInject in the past")
	}
	nd := &e.nodes[node]
	e.pending = append(e.pending, eventRec[S]{
		at: at, key2: key2(int32(node), nd.seq), node: int32(node), kind: evInject, payload: s,
	})
	nd.seq++
}

// freeze finalizes the topology on the first run: resolves the worker
// count, carves the shard arcs, wires the SPSC rings and distributes the
// pending events. Reference mode collapses to one shard over a boxed
// global queue.
func (e *Engine[S]) freeze() {
	if e.frozen {
		return
	}
	e.frozen = true
	if len(e.churn) > 0 || e.total > e.n {
		// Churn rewires neighbor relations mid-run; the SPSC rings only
		// connect adjacent shard arcs, so a rewired ring must run on one
		// worker. (The Reference twin is unaffected — it is already one.)
		e.w = 1
		// Equal times apply in schedule order; ops land at the epoch
		// boundary containing their timestamp.
		sortChurn(e.churn)
	}
	if e.Reference {
		e.w = 1
		e.refQ = newRefQueue[S](len(e.pending))
	}
	w := e.w
	e.shards = make([]engShard[S], w)
	base, rem := e.total/w, e.total%w
	lo := 0
	for i := 0; i < w; i++ {
		size := base
		if i < rem {
			size++
		}
		sh := &e.shards[i]
		sh.id, sh.lo, sh.hi = int32(i), int32(lo), int32(lo+size)
		sh.free = -1
		for j := lo; j < lo+size; j++ {
			e.shardOf[j] = int32(i)
		}
		lo += size
	}
	if w > 1 {
		left := make([]spsc[S], w)
		right := make([]spsc[S], w)
		for i := 0; i < w; i++ {
			sh := &e.shards[i]
			sh.outLeft, sh.outRight = &left[i], &right[i]
			sh.inLeft = &right[(i-1+w)%w] // left neighbor's out-to-successor ring
			sh.inRight = &left[(i+1)%w]   // right neighbor's out-to-predecessor ring
		}
		e.workCh = make([]chan float64, w)
		for i := range e.workCh {
			e.workCh[i] = make(chan float64)
		}
	}
	if e.holder != nil {
		// Seed the shard-local census accumulators from the initial
		// views; notifyPriv keeps them current from here on.
		for i := range e.nodes {
			if !e.active[i] {
				continue
			}
			nd := &e.nodes[i]
			v := statemodel.View[S]{I: i, N: e.n, Self: nd.state, Pred: nd.cachePred, Succ: nd.cacheSucc}
			if e.holder(v) {
				nd.censusPriv = true
				e.shards[e.shardOf[i]].priv++
			}
		}
	}
	for _, rec := range e.pending {
		e.emitLocal(&e.shards[e.shardOf[rec.node]], rec)
	}
	e.pending = nil
}

// ---------------------------------------------------------------------------
// Epoch machinery
// ---------------------------------------------------------------------------

// RunUntil advances virtual time in whole epochs until Now() >= t, as
// fast as possible. It must not be mixed with Start; use one mode per
// engine.
func (e *Engine[S]) RunUntil(t float64) {
	e.freeze()
	for e.now < t {
		e.stepEpoch()
	}
}

// Now returns the current virtual time in seconds.
func (e *Engine[S]) Now() float64 {
	var t float64
	e.do(func() { t = e.now })
	return t
}

// Workers returns the resolved worker count.
func (e *Engine[S]) Workers() int {
	if e.Reference {
		return 1
	}
	return e.w
}

// stepEpoch runs one epoch (T, T+Delay]: every shard drains its inbound
// rings, then processes its events with at < T+Delay in key order.
// Scheduled churn ops whose time falls inside the epoch are applied at
// its start — between epochs no event is in flight within a shard, so
// rewiring here cannot race a dispatch.
func (e *Engine[S]) stepEpoch() {
	horizon := e.now + e.delay
	for e.churnIdx < len(e.churn) && e.churn[e.churnIdx].at < horizon {
		e.applyChurn(&e.churn[e.churnIdx])
		e.churnIdx++
	}
	switch {
	case e.refQ != nil:
		e.refEpoch(horizon)
	case e.w == 1:
		e.shardEpoch(&e.shards[0], horizon)
	default:
		e.parallelEpoch(horizon)
	}
	e.now = horizon
}

// shardEpoch drains the shard's inbound rings, then processes every
// event below the horizon in (at, key2) order.
//
//shardsafety:worker
func (e *Engine[S]) shardEpoch(sh *engShard[S], horizon float64) {
	if sh.inLeft != nil {
		sh.inLeft.drainInto(sh)
		sh.inRight.drainInto(sh)
	}
	var rec eventRec[S]
	for len(sh.heap) > 0 && sh.heap[0].at < horizon {
		sh.pop(&rec)
		e.dispatch(sh, &rec)
	}
}

func (e *Engine[S]) parallelEpoch(horizon float64) {
	e.ensureWorkers()
	e.barrier.Add(e.w)
	for i := range e.workCh {
		e.workCh[i] <- horizon
	}
	e.barrier.Wait()
}

func (e *Engine[S]) ensureWorkers() {
	e.mu.Lock()
	if e.workersUp {
		e.mu.Unlock()
		return
	}
	e.workersUp = true
	e.mu.Unlock()
	for i := 0; i < e.w; i++ {
		e.workerWG.Add(1)
		go e.worker(i)
	}
}

func (e *Engine[S]) worker(i int) {
	defer e.workerWG.Done()
	sh := &e.shards[i]
	for horizon := range e.workCh[i] {
		e.shardEpoch(sh, horizon)
		e.barrier.Done()
	}
}

// stopWorkers shuts the worker loops down (idempotent). Callers must
// guarantee no epoch is in flight.
func (e *Engine[S]) stopWorkers() {
	e.mu.Lock()
	up := e.workersUp
	e.workersUp = false
	e.mu.Unlock()
	if !up {
		return
	}
	for _, ch := range e.workCh {
		close(ch)
	}
	e.workerWG.Wait()
}

// ---------------------------------------------------------------------------
// Event dispatch — Algorithm 4, one event at a time
// ---------------------------------------------------------------------------

// dispatch routes one owned event to its handler.
//
//shardsafety:worker owns=rec.node
//allocgate:hot
func (e *Engine[S]) dispatch(sh *engShard[S], rec *eventRec[S]) {
	sh.events++
	nd := &e.nodes[rec.node]
	if !e.active[rec.node] {
		// The destination left the ring (or never joined): in-flight
		// frames die on arrival and lapsed nodes let their timer chains
		// end. Mirrors the msgnet tier's detached-node discard.
		if rec.kind == evFromPred || rec.kind == evFromSucc {
			sh.dropped++
		}
		return
	}
	switch rec.kind {
	case evFromPred:
		// key2's high word is the sender. A frame from an ex-neighbor was
		// already on the medium when churn rewired the ring: discard it
		// rather than poison a cache slot describing a different node.
		if from := int32(rec.key2 >> 32); from != e.predOf[rec.node] {
			sh.dropped++
			return
		}
		nd.cachePred = rec.payload
		sh.carried++
		e.tap(sh, nd, rec.at, rec.node, TapDeliver, e.pred(rec.node), 0)
		if o := e.obsv; o != nil {
			o.MsgRecv(rec.at, int(rec.node), int(e.pred(rec.node)))
		}
		e.step(sh, rec.at, rec.node)
	case evFromSucc:
		if from := int32(rec.key2 >> 32); from != e.succOf[rec.node] {
			sh.dropped++
			return
		}
		nd.cacheSucc = rec.payload
		sh.carried++
		e.tap(sh, nd, rec.at, rec.node, TapDeliver, e.succ(rec.node), 0)
		if o := e.obsv; o != nil {
			o.MsgRecv(rec.at, int(rec.node), int(e.succ(rec.node)))
		}
		e.step(sh, rec.at, rec.node)
	case evInit:
		e.announce(sh, rec.at, rec.node)
	case evTimer:
		e.tap(sh, nd, rec.at, rec.node, TapTimer, -1, 0)
		e.announce(sh, rec.at, rec.node)
		next := eventRec[S]{
			at: rec.at + e.refresh, key2: key2(rec.node, nd.seq), node: rec.node, kind: evTimer,
		}
		nd.seq++
		e.emitLocal(sh, next)
	case evInject:
		nd.state = rec.payload
		e.tap(sh, nd, rec.at, rec.node, TapInject, -1, 0)
		e.notifyPriv(sh, rec.at, rec.node)
		e.announce(sh, rec.at, rec.node)
	}
}

// step executes at most one rule and announces — the mirror of
// liveNode.step.
//
//rulecheck:step
//shardsafety:worker owns=node
//allocgate:hot
func (e *Engine[S]) step(sh *engShard[S], at float64, node int32) {
	nd := &e.nodes[node]
	v := statemodel.View[S]{I: int(node), N: e.n, Self: nd.state, Pred: nd.cachePred, Succ: nd.cacheSucc}
	if rule := e.alg.EnabledRule(v); rule != 0 {
		nd.state = e.alg.Apply(v, rule)
		sh.rules++
		e.tap(sh, nd, at, node, TapRule, -1, int32(rule))
		if o := e.obsv; o != nil {
			o.RuleFired(at, int(node), rule)
		}
	}
	e.notifyPriv(sh, at, node)
	e.announce(sh, at, node)
}

// announce offers the state to both outgoing links, predecessor first —
// the same order liveNode.announce uses.
//
//shardsafety:worker owns=node
//allocgate:hot
func (e *Engine[S]) announce(sh *engShard[S], at float64, node int32) {
	e.send(sh, at, node, false)
	e.send(sh, at, node, true)
}

// send admits the node's state into one directed link, or drops it when
// the link is busy (one message per direction) or the loss draw hits.
// Jitter, then loss, drawn from the link's own PRNG — the relay's order.
//
//shardsafety:worker owns=node
//allocgate:hot
func (e *Engine[S]) send(sh *engShard[S], at float64, node int32, toSucc bool) {
	nd := &e.nodes[node]
	var lidx, peer int32
	var kind uint8
	if toSucc {
		lidx, peer, kind = 2*node, e.succ(node), evFromPred
	} else {
		lidx, peer, kind = 2*node+1, e.pred(node), evFromSucc
	}
	lk := &e.links[lidx]
	if at < lk.busyUntil {
		sh.dropped++
		e.tap(sh, nd, at, node, TapSuppressed, peer, 0)
		if o := e.obsv; o != nil {
			o.MsgDropped(at, int(peer), int(node))
		}
		return
	}
	d := e.delay
	if e.jitter > 0 {
		d += e.jitter * lk.rng.float64()
	}
	lk.busyUntil = at + d
	if e.loss > 0 && lk.rng.float64() < e.loss {
		sh.dropped++
		e.tap(sh, nd, at, node, TapLost, peer, 0)
		if o := e.obsv; o != nil {
			o.MsgDropped(at, int(peer), int(node))
		}
		return
	}
	sh.sent++
	e.tap(sh, nd, at, node, TapSend, peer, 0)
	if o := e.obsv; o != nil {
		o.MsgSent(at, int(node), int(peer))
	}
	rec := eventRec[S]{at: at + d, key2: key2(node, nd.seq), node: peer, kind: kind, payload: nd.state}
	nd.seq++
	e.emit(sh, rec, toSucc)
}

// emit routes a message arrival to its destination shard: same shard
// goes straight into the arena heap; a boundary crossing rides the SPSC
// ring of the send's direction (exact even at W=2, where both neighbor
// shards are the same shard).
//
//shardsafety:gate
//allocgate:hot
func (e *Engine[S]) emit(sh *engShard[S], rec eventRec[S], toSucc bool) {
	if e.refQ != nil {
		//lint:ignore allocgate the boxed reference twin allocates one refEvent per record by design
		e.refPush(rec)
		return
	}
	if e.shardOf[rec.node] == sh.id {
		sh.push(rec)
		return
	}
	if toSucc {
		sh.outRight.pushRing(rec)
	} else {
		sh.outLeft.pushRing(rec)
	}
}

// emitLocal inserts an event whose destination is owned by sh (timers,
// injects, pre-run distribution).
//
//shardsafety:worker owns=rec.node
//allocgate:hot
func (e *Engine[S]) emitLocal(sh *engShard[S], rec eventRec[S]) {
	if e.refQ != nil {
		//lint:ignore allocgate the boxed reference twin allocates one refEvent per record by design
		e.refPush(rec)
		return
	}
	sh.push(rec)
}

// tap records one observable action into the shard's tap buffer.
//
//shardsafety:worker owns=nd
//allocgate:hot
func (e *Engine[S]) tap(sh *engShard[S], nd *engNode[S], at float64, src int32, kind TapKind, peer, rule int32) {
	if !e.taps {
		return
	}
	sh.tapBuf = append(sh.tapBuf, TapEvent{At: at, Src: src, Ord: nd.seq, Kind: kind, Peer: peer, Rule: rule})
	nd.seq++
}

// notifyPriv re-evaluates the privilege predicate after a node's view
// changed and fires the handover callbacks on edges.
//
//shardsafety:worker owns=node
//allocgate:hot
func (e *Engine[S]) notifyPriv(sh *engShard[S], at float64, node int32) {
	if e.holder == nil {
		return
	}
	nd := &e.nodes[node]
	v := statemodel.View[S]{I: int(node), N: e.n, Self: nd.state, Pred: nd.cachePred, Succ: nd.cacheSucc}
	holds := e.holder(v)
	if e.onPriv != nil {
		e.onPriv(int(node), holds)
	}
	if o := e.obsv; o != nil && holds != nd.wasPriv {
		o.Handover(at, int(node), holds)
	}
	nd.wasPriv = holds
	if holds != nd.censusPriv {
		if holds {
			sh.priv++
		} else {
			sh.priv--
		}
		nd.censusPriv = holds
	}
}

// pred and succ map a node to its ring neighbors — foreign indices from
// a worker's point of view, usable only as message destinations. The
// lookup tables replace the founding-ring modulo so churn can rewire
// them; on a static ring they hold exactly the modulo values.
//
//shardsafety:neighbor
func (e *Engine[S]) pred(node int32) int32 { return e.predOf[node] }

//shardsafety:neighbor
func (e *Engine[S]) succ(node int32) int32 { return e.succOf[node] }

// ---------------------------------------------------------------------------
// Churn application (epoch boundaries, single worker)
// ---------------------------------------------------------------------------

// sortChurn orders ops by time, schedule order breaking ties.
func sortChurn[S comparable](ops []churnOp[S]) {
	sort.SliceStable(ops, func(i, j int) bool { return ops[i].at < ops[j].at })
}

// applyChurn rewires the ring for one op. It runs between epochs on the
// driving goroutine, so every node and link is safe to touch. Frames in
// flight toward a rewired node survive in the event heap; dispatch drops
// the ones whose sender is no longer the receiver's neighbor, mirroring
// the msgnet tier's stale-frame discard.
func (e *Engine[S]) applyChurn(op *churnOp[S]) {
	switch op.kind {
	case opJoin:
		e.applyJoin(op.at, op.node, op.state)
	case opLeave:
		e.detachArc(op.node, 1)
	case opSplice:
		e.detachArc(e.succOf[op.node], op.count)
	}
}

func (e *Engine[S]) applyJoin(at float64, after int32, state S) {
	if !e.active[after] {
		panic(fmt.Sprintf("runtime: join anchor %d is not a ring member", after))
	}
	if e.spareNext >= e.total {
		panic("runtime: no dormant spare left to join")
	}
	j := int32(e.spareNext)
	e.spareNext++
	a, b := after, e.succOf[after]
	e.succOf[a], e.predOf[b] = j, j
	e.predOf[j], e.succOf[j] = a, b
	e.active[j] = true
	e.members++
	nd := &e.nodes[j]
	nd.state = state
	// The joiner has not heard from either neighbor yet: self-seeded
	// caches, healed by the announcement exchange the evInit triggers.
	nd.cachePred, nd.cacheSucc = state, state
	nd.censusPriv = false
	if e.holder != nil {
		v := statemodel.View[S]{I: int(j), N: e.n, Self: nd.state, Pred: nd.cachePred, Succ: nd.cacheSucc}
		if e.holder(v) {
			nd.censusPriv = true
			e.shards[e.shardOf[j]].priv++
		}
	}
	// The rewired edges are fresh physical links: idle, like the msgnet
	// tier's AddLink.
	e.links[2*a].busyUntil = 0
	e.links[2*b+1].busyUntil = 0
	e.links[2*j].busyUntil = 0
	e.links[2*j+1].busyUntil = 0
	sh := &e.shards[e.shardOf[j]]
	e.emitLocal(sh, eventRec[S]{at: at, key2: key2(j, nd.seq), node: j, kind: evInit})
	nd.seq++
	phase := e.refresh * nd.rng.float64()
	e.emitLocal(sh, eventRec[S]{at: at + phase, key2: key2(j, nd.seq), node: j, kind: evTimer})
	nd.seq++
}

// detachArc removes the count consecutive members starting at first and
// reconnects their outer neighbors with one fresh edge — Leave is the
// count==1 case.
func (e *Engine[S]) detachArc(first int32, count int32) {
	if first >= 0 && !e.active[first] {
		panic(fmt.Sprintf("runtime: churn removes non-member %d", first))
	}
	if e.members-int(count) < 3 {
		panic("runtime: churn would shrink the ring below 3 members")
	}
	v := first
	a := e.predOf[first]
	for i := int32(0); i < count; i++ {
		if v == 0 {
			panic("runtime: churn arc contains node 0 (bottom)")
		}
		if !e.active[v] {
			panic(fmt.Sprintf("runtime: churn removes non-member %d", v))
		}
		next := e.succOf[v]
		e.predOf[v], e.succOf[v] = -1, -1
		e.active[v] = false
		e.members--
		if nd := &e.nodes[v]; nd.censusPriv {
			e.shards[e.shardOf[v]].priv--
			nd.censusPriv = false
		}
		v = next
	}
	b := v
	e.succOf[a], e.predOf[b] = b, a
	e.links[2*a].busyUntil = 0
	e.links[2*b+1].busyUntil = 0
}

// ---------------------------------------------------------------------------
// Reads (safe in both modes: direct when idle, via the pacer when live)
// ---------------------------------------------------------------------------

// Snapshots returns every node's (state, caches) at the current virtual
// time — a true instantaneous cut of the virtual execution.
func (e *Engine[S]) Snapshots() []Snapshot[S] {
	out := make([]Snapshot[S], e.n)
	e.do(func() {
		for i := range e.nodes {
			nd := &e.nodes[i]
			out[i] = Snapshot[S]{State: nd.state, CachePred: nd.cachePred, CacheSucc: nd.cacheSucc}
		}
	})
	return out
}

// Census counts the nodes whose view satisfies holder.
func (e *Engine[S]) Census(holder func(statemodel.View[S]) bool) int {
	count := 0
	e.do(func() { count = len(e.holdersNow(holder, nil)) })
	return count
}

// TrackedCensus returns the census of the installed privilege predicate
// (SetPrivilegeCallback / SetObserver) from the shard-local accumulators
// — an O(workers) merge instead of Census's O(n) node scan, the
// difference between sampling and stalling at million-node rings. The
// second result is false when no predicate is installed, in which case
// callers fall back to Census.
func (e *Engine[S]) TrackedCensus() (int, bool) {
	if e.holder == nil {
		return 0, false
	}
	count := 0
	e.do(func() {
		e.freeze()
		for i := range e.shards {
			count += int(e.shards[i].priv)
		}
	})
	return count, true
}

// Holders returns the ids of nodes whose view satisfies holder.
func (e *Engine[S]) Holders(holder func(statemodel.View[S]) bool) []int {
	var out []int
	e.do(func() { out = e.holdersNow(holder, out) })
	return out
}

func (e *Engine[S]) holdersNow(holder func(statemodel.View[S]) bool, out []int) []int {
	for i := range e.nodes {
		if !e.active[i] {
			continue
		}
		nd := &e.nodes[i]
		v := statemodel.View[S]{I: i, N: e.n, Self: nd.state, Pred: nd.cachePred, Succ: nd.cacheSucc}
		if holder(v) {
			out = append(out, i)
		}
	}
	return out
}

// MemberCount returns the current ring size.
func (e *Engine[S]) MemberCount() int {
	var m int
	e.do(func() { m = e.members })
	return m
}

// Members returns the active node ids in ring order, starting at node 0
// (the bottom, which can never leave) and following successor pointers.
func (e *Engine[S]) Members() []int {
	var out []int
	e.do(func() {
		out = make([]int, 0, e.members)
		i := int32(0)
		for {
			out = append(out, int(i))
			i = e.succOf[i]
			if i == 0 {
				break
			}
			if len(out) > e.total {
				panic("runtime: successor pointers do not close a ring")
			}
		}
	})
	return out
}

// RuleExecutions sums rule executions across shards.
func (e *Engine[S]) RuleExecutions() int64 { return e.Stats().Rules }

// LinkStats aggregates carried and dropped frame counts — the Ring's
// accessor, same meaning.
func (e *Engine[S]) LinkStats() (carried, dropped int64) {
	s := e.Stats()
	return s.Carried, s.Dropped
}

// Stats sums the shard counters.
func (e *Engine[S]) Stats() EngineStats {
	var s EngineStats
	e.do(func() {
		for i := range e.shards {
			sh := &e.shards[i]
			s.Events += sh.events
			s.Sent += sh.sent
			s.Carried += sh.carried
			s.Dropped += sh.dropped
			s.Rules += sh.rules
		}
	})
	return s
}

// Taps returns the execution trace so far (EnableTaps must have been
// called), canonically ordered by (At, Src, Ord). The stream is
// bit-identical across worker counts and against the Reference engine.
func (e *Engine[S]) Taps() []TapEvent {
	var out []TapEvent
	e.do(func() {
		total := 0
		for i := range e.shards {
			total += len(e.shards[i].tapBuf)
		}
		out = make([]TapEvent, 0, total)
		for i := range e.shards {
			out = append(out, e.shards[i].tapBuf...)
		}
	})
	sortTaps(out)
	return out
}

// WatchCensus samples the holder census every interval for the given
// wall-clock duration — meaningful in paced mode, where virtual time
// tracks the wall clock. It runs in the caller's goroutine.
func (e *Engine[S]) WatchCensus(holder func(statemodel.View[S]) bool, d, interval time.Duration) CensusStats {
	stats := CensusStats{Min: 1 << 30, Max: -1, At: map[int]int{}}
	seen := map[int]bool{}
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		hs := e.Holders(holder)
		c := len(hs)
		stats.Samples++
		stats.At[c]++
		if c < stats.Min {
			stats.Min = c
		}
		if c > stats.Max {
			stats.Max = c
		}
		for _, h := range hs {
			seen[h] = true
		}
		time.Sleep(interval)
	}
	stats.DistinctHolders = len(seen)
	return stats
}

// ---------------------------------------------------------------------------
// Paced mode: Start / Stop / Inject
// ---------------------------------------------------------------------------

// Start launches the pacer with a background context.
func (e *Engine[S]) Start() { e.StartContext(context.Background()) }

// StartContext launches a driver goroutine that paces virtual time 1:1
// against the wall clock (one virtual second per wall second) and
// services queries and injects between epochs.
func (e *Engine[S]) StartContext(ctx context.Context) {
	e.mu.Lock()
	if e.started {
		e.mu.Unlock()
		panic("runtime: double Start")
	}
	e.started = true
	e.ctrl = make(chan func())
	e.quit = make(chan struct{})
	e.done = make(chan struct{})
	e.mu.Unlock()
	e.freeze()
	e.driverWG.Add(1)
	go e.drive(ctx)
}

// Stop halts the pacer and the worker loops and waits for them. It is
// idempotent and safe to call from multiple goroutines. An engine used
// only through RunUntil should also call Stop when done if it ran with
// more than one worker.
func (e *Engine[S]) Stop() {
	e.mu.Lock()
	wasStarted := e.started
	if e.started && !e.stopped {
		e.stopped = true
		close(e.quit)
	}
	e.mu.Unlock()
	if wasStarted {
		e.driverWG.Wait()
	}
	e.stopWorkers()
}

// Inject overwrites a node's state at the next epoch boundary — a live
// transient fault. It always reports true (the engine has no queue to
// overflow); the bool mirrors Ring.Inject.
func (e *Engine[S]) Inject(node int, s S) bool {
	if node < 0 || node >= e.n {
		panic(fmt.Sprintf("runtime: node %d out of range", node))
	}
	e.do(func() {
		e.freeze()
		nd := &e.nodes[node]
		rec := eventRec[S]{
			at: e.now, key2: key2(int32(node), nd.seq), node: int32(node), kind: evInject, payload: s,
		}
		nd.seq++
		e.emitLocal(&e.shards[e.shardOf[node]], rec)
	})
	return true
}

// drive is the pacer loop: run epochs while virtual time lags the wall
// clock, otherwise sleep on a timer — interruptible by control ops,
// context cancellation and Stop.
func (e *Engine[S]) drive(ctx context.Context) {
	defer e.driverWG.Done()
	defer close(e.done)
	start := time.Now()
	base := e.now
	timer := time.NewTimer(time.Hour)
	defer timer.Stop()
	for {
		wall := time.Since(start).Seconds()
		if e.now-base <= wall {
			select {
			case <-ctx.Done():
				return
			case <-e.quit:
				return
			case op := <-e.ctrl:
				op()
			default:
				e.stepEpoch()
			}
			continue
		}
		if !timer.Stop() {
			select {
			case <-timer.C:
			default:
			}
		}
		timer.Reset(time.Duration((e.now - base - wall) * float64(time.Second)))
		select {
		case <-ctx.Done():
			return
		case <-e.quit:
			return
		case op := <-e.ctrl:
			op()
		case <-timer.C:
		}
	}
}

// do runs f with exclusive access to the engine state: directly when the
// pacer is not running (single-goroutine fast mode), or on the driver
// goroutine between epochs when it is. If the pacer stops while we wait,
// the engine is quiescent and f runs directly.
func (e *Engine[S]) do(f func()) {
	e.mu.Lock()
	live := e.started && !e.stopped
	e.mu.Unlock()
	if !live {
		f()
		return
	}
	ran := make(chan struct{})
	select {
	case e.ctrl <- func() { f(); close(ran) }:
		<-ran
	case <-e.done:
		f()
	}
}

// ---------------------------------------------------------------------------
// Boxed reference queue (the differential twin's event store)
// ---------------------------------------------------------------------------

// refEvent boxes one event — deliberately heap-allocated, like the
// legacy msgnet queue the arena replaced.
type refEvent[S comparable] struct{ rec eventRec[S] }

// refQueue is a container/heap min-queue of boxed events ordered by the
// same (at, key2) key the shard heaps use.
type refQueue[S comparable] struct{ evs []*refEvent[S] }

func newRefQueue[S comparable](capHint int) *refQueue[S] {
	//lint:ignore hotpath one-time queue construction off the hot path
	return &refQueue[S]{evs: make([]*refEvent[S], 0, capHint)}
}

func (q *refQueue[S]) Len() int { return len(q.evs) }
func (q *refQueue[S]) Less(i, j int) bool {
	a, b := q.evs[i].rec, q.evs[j].rec
	return a.at < b.at || (a.at == b.at && a.key2 < b.key2)
}
func (q *refQueue[S]) Swap(i, j int) { q.evs[i], q.evs[j] = q.evs[j], q.evs[i] }
func (q *refQueue[S]) Push(x any)    { q.evs = append(q.evs, x.(*refEvent[S])) }
func (q *refQueue[S]) Pop() any {
	last := len(q.evs) - 1
	ev := q.evs[last]
	q.evs[last] = nil
	q.evs = q.evs[:last]
	return ev
}

// refPush boxes rec into the reference queue.
func (e *Engine[S]) refPush(rec eventRec[S]) {
	//lint:ignore hotpath the boxed reference engine allocates per event by design
	heap.Push(e.refQ, &refEvent[S]{rec: rec})
}

// refEpoch processes the global queue through horizon — the single-loop
// reference execution the sharded engine must match bit for bit.
//
//shardsafety:worker
func (e *Engine[S]) refEpoch(horizon float64) {
	sh := &e.shards[0]
	var rec eventRec[S]
	for e.refQ.Len() > 0 && e.refQ.evs[0].rec.at < horizon {
		ev := heap.Pop(e.refQ).(*refEvent[S])
		rec = ev.rec
		// The boxed reference twin is single-threaded: shard 0 owns the
		// whole ring, so the heap.Pop record is owned even though its
		// provenance is opaque to the analyzer (container/heap returns
		// `any`).
		//lint:ignore shardsafety the reference twin runs every node on shard 0; records popped from the global queue are owned by construction
		e.dispatch(sh, &rec)
	}
}
