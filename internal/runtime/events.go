package runtime

// Event plumbing for the sharded virtual-time engine: the per-shard slot
// arena with an index-based 4-ary heap (the internal/msgnet arena pattern
// transplanted to the live tier), the lock-free SPSC rings that carry
// cross-shard sends, the 8-byte splitmix64 PRNG that replaces *rand.Rand
// on the hot path, and the tap stream the differential test pins
// bit-identical between the sharded and the boxed reference engine.

import (
	"sort"
	"sync/atomic"
)

// ---------------------------------------------------------------------------
// splitmix64
// ---------------------------------------------------------------------------

// prng is an 8-byte splitmix64 generator. A *rand.Rand costs ~5KB of
// state; at 100k nodes with one generator per node and per directed link
// that is half a gigabyte, so the engine carries one word instead.
type prng uint64

func (p *prng) next() uint64 {
	*p += 0x9E3779B97F4A7C15
	z := uint64(*p)
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	return z
}

// float64 returns a uniform draw in [0, 1).
func (p *prng) float64() float64 {
	return float64(p.next()>>11) / (1 << 53)
}

// ---------------------------------------------------------------------------
// Event records, slot arena, 4-ary heap
// ---------------------------------------------------------------------------

// Event kinds. Deliveries carry the direction so the receiver knows which
// neighbor cache to overwrite without looking the sender up.
const (
	evInit     uint8 = iota // the t=0 announcement every node starts with
	evTimer                 // periodic refresh announcement (Algorithm 4)
	evFromPred              // state announcement arriving from the predecessor
	evFromSucc              // state announcement arriving from the successor
	evInject                // scheduled transient fault: overwrite the state
)

// eventRec is one pending event in value form — what crosses shard
// boundaries through the SPSC rings and what the dispatcher consumes.
// key2 packs (origin node << 32 | origin sequence number): together with
// at it is the globally unique, deterministic event ordering key.
type eventRec[S comparable] struct {
	at      float64
	key2    uint64
	node    int32 // destination node
	kind    uint8
	payload S
}

// eventSlot is an arena slot: the payload part of an eventRec plus the
// free-list link. The (at, key2) ordering key lives in the heap entry so
// sifts move 24 bytes regardless of the state type's size.
type eventSlot[S comparable] struct {
	node    int32
	kind    uint8
	next    int32 // free-list link; -1 terminates
	payload S
}

// heapEntry is one 4-ary heap element: the ordering key inline, the
// payload behind an arena index.
type heapEntry struct {
	at   float64
	key2 uint64
	slot int32
}

func heapLess(a, b heapEntry) bool {
	return a.at < b.at || (a.at == b.at && a.key2 < b.key2)
}

// alloc grabs a free slot index, growing the arena when the free list is
// dry. Growth appends (amortized, allocation-free in steady state).
//
//allocgate:hot
func (sh *engShard[S]) alloc() int32 {
	if sh.free >= 0 {
		idx := sh.free
		sh.free = sh.slots[idx].next
		return idx
	}
	sh.slots = append(sh.slots, eventSlot[S]{})
	return int32(len(sh.slots) - 1)
}

// release returns a slot to the free list.
//
//allocgate:hot
func (sh *engShard[S]) release(idx int32) {
	sh.slots[idx].next = sh.free
	sh.free = idx
}

// push inserts rec into the shard's arena and heap.
//
//shardsafety:worker owns=rec.node
//allocgate:hot
func (sh *engShard[S]) push(rec eventRec[S]) {
	idx := sh.alloc()
	s := &sh.slots[idx]
	s.node, s.kind, s.payload = rec.node, rec.kind, rec.payload
	sh.heap = append(sh.heap, heapEntry{})
	sh.up(len(sh.heap)-1, heapEntry{at: rec.at, key2: rec.key2, slot: idx})
}

// pop removes the minimum event into rec and releases its slot. The heap
// must be non-empty. The popped record's destination is owned by the
// shard: only owned-destination records ever enter a shard's heap.
//
//shardsafety:source
//allocgate:hot
func (sh *engShard[S]) pop(rec *eventRec[S]) {
	top := sh.heap[0]
	last := len(sh.heap) - 1
	ent := sh.heap[last]
	sh.heap = sh.heap[:last]
	if last > 0 {
		sh.down(0, ent)
	}
	s := &sh.slots[top.slot]
	rec.at, rec.key2 = top.at, top.key2
	rec.node, rec.kind, rec.payload = s.node, s.kind, s.payload
	sh.release(top.slot)
}

// up sifts ent from hole i toward the root (hole-based: ent is written
// exactly once, at its final position).
//
//allocgate:hot
func (sh *engShard[S]) up(i int, ent heapEntry) {
	for i > 0 {
		parent := (i - 1) / 4
		if !heapLess(ent, sh.heap[parent]) {
			break
		}
		sh.heap[i] = sh.heap[parent]
		i = parent
	}
	sh.heap[i] = ent
}

// down sifts ent from hole i toward the leaves.
//
//allocgate:hot
func (sh *engShard[S]) down(i int, ent heapEntry) {
	n := len(sh.heap)
	for {
		first := 4*i + 1
		if first >= n {
			break
		}
		best := first
		end := first + 4
		if end > n {
			end = n
		}
		for c := first + 1; c < end; c++ {
			if heapLess(sh.heap[c], sh.heap[best]) {
				best = c
			}
		}
		if !heapLess(sh.heap[best], ent) {
			break
		}
		sh.heap[i] = sh.heap[best]
		i = best
	}
	sh.heap[i] = ent
}

// ---------------------------------------------------------------------------
// SPSC rings
// ---------------------------------------------------------------------------

// spscCap bounds one ring's fixed buffer. Each ring serves exactly one
// directed boundary link, and the one-message-per-direction rule spaces
// admitted sends at least Delay (= one epoch) apart, so at most two
// entries are pushed per epoch and each is consumed one epoch later:
// steady-state occupancy never exceeds four. A backlog beyond the fixed
// buffer (a delay ≫ epoch workload, or a future scheduler relaxing the
// two-per-epoch cadence) spills into an unbounded overflow stack instead
// of panicking — correctness never depends on the ring size, only the
// fast path does.
const spscCap = 16

// spscNode boxes one overflowed record on the spill stack.
type spscNode[S comparable] struct {
	rec  eventRec[S]
	next *spscNode[S]
}

// spsc is a single-producer single-consumer ring buffer carrying
// cross-shard event records. The producer shard pushes during its epoch;
// the consumer drains at the start of its own epochs. Entries pushed
// concurrently with a drain are simply picked up one epoch later — their
// arrival times are beyond the next horizon anyway.
type spsc[S comparable] struct {
	buf  [spscCap]eventRec[S]
	_    [64]byte      // keep head and tail on separate cache lines
	head atomic.Uint32 // consumer cursor
	_    [64]byte
	tail atomic.Uint32 // producer cursor

	// ovf is the overflow stack, used only when the fixed buffer is
	// full. The producer CAS-pushes (a plain store would race the
	// consumer's Swap below), the consumer swaps the whole stack out.
	// Stack order is irrelevant: every drained record goes through the
	// shard heap, which orders by the unique (at, key2).
	ovf atomic.Pointer[spscNode[S]]
}

//allocgate:hot
func (q *spsc[S]) pushRing(rec eventRec[S]) {
	t := q.tail.Load()
	if t-q.head.Load() < spscCap {
		q.buf[t%spscCap] = rec
		q.tail.Store(t + 1)
		return
	}
	//lint:ignore hotpath,allocgate the overflow spill boxes the record by design; the fixed ring serves the steady state alloc-free
	n := &spscNode[S]{rec: rec}
	for {
		n.next = q.ovf.Load()
		if q.ovf.CompareAndSwap(n.next, n) {
			return
		}
	}
}

// drainInto moves every visible entry — ring first, then the overflow
// stack — into the shard's heap. It is the receiving side of the SPSC
// crossing: everything it drains was addressed to sh by the sender's
// gate, so its pushes are exempt from provenance checks.
//
//shardsafety:gate
//allocgate:hot
func (q *spsc[S]) drainInto(sh *engShard[S]) {
	h := q.head.Load()
	for t := q.tail.Load(); h != t; h++ {
		sh.push(q.buf[h%spscCap])
	}
	q.head.Store(h)
	for n := q.ovf.Swap(nil); n != nil; n = n.next {
		sh.push(n.rec)
	}
}

// ---------------------------------------------------------------------------
// Taps
// ---------------------------------------------------------------------------

// TapKind discriminates TapEvent records.
type TapKind uint8

// Tap kinds: every observable action of a node's event processing.
const (
	// TapSend: Src admitted an announcement into the link toward Peer.
	TapSend TapKind = iota
	// TapSuppressed: Src tried to send toward Peer while the link was
	// busy — the one-message-per-direction drop.
	TapSuppressed
	// TapLost: the frame Src sent toward Peer was lost in transit.
	TapLost
	// TapDeliver: Src received (and processed) an announcement from Peer.
	TapDeliver
	// TapRule: Src executed rule Rule.
	TapRule
	// TapTimer: Src's refresh timer fired.
	TapTimer
	// TapInject: a transient fault overwrote Src's state.
	TapInject
)

// TapEvent is one entry of the engine's deterministic execution trace.
// The differential test pins the full tap stream bit-identical between
// the sharded engine (any worker count) and the boxed reference engine.
type TapEvent struct {
	// At is the virtual time of the action.
	At float64
	// Src is the node whose event processing emitted the tap.
	Src int32
	// Ord is Src's monotonic action counter — (At, Src, Ord) totally
	// orders the stream independently of shard interleaving.
	Ord uint32
	// Kind discriminates the record.
	Kind TapKind
	// Peer is the other endpoint for message taps, -1 otherwise.
	Peer int32
	// Rule is the executed rule for TapRule, 0 otherwise.
	Rule int32
}

// sortTaps orders a tap stream by (At, Src, Ord) — each node's taps stay
// in emission order (At is non-decreasing and Ord strictly increasing per
// node), and the interleaving across nodes is canonical.
func sortTaps(taps []TapEvent) {
	sort.Slice(taps, func(i, j int) bool {
		a, b := taps[i], taps[j]
		if a.At != b.At {
			return a.At < b.At
		}
		if a.Src != b.Src {
			return a.Src < b.Src
		}
		return a.Ord < b.Ord
	})
}
