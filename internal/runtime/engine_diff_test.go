package runtime

import (
	"math/rand"
	"reflect"
	"testing"
	"time"

	"ssrmin/internal/core"
	"ssrmin/internal/statemodel"
)

// diffRun captures everything the differential test compares.
type diffRun struct {
	taps   []TapEvent
	stats  EngineStats
	snaps  []Snapshot[core.State]
	now    float64
	census []int // TrackedCensus samples at the mid and final horizons
}

// diffScenario derives a full engine configuration from the seed so the
// sweep covers ring sizes, jitter on/off, lossy links, incoherent cache
// starts and mid-run fault injections without hand-writing 16 cases.
func diffScenario(seed int64) (*core.Algorithm, statemodel.Config[core.State], Options[core.State], [](struct {
	at   float64
	node int
	s    core.State
})) {
	sizes := []int{5, 8, 17}
	n := sizes[int(seed)%len(sizes)]
	a := core.New(n, n+2)
	opts := Options[core.State]{
		Delay:   10 * time.Millisecond,
		Refresh: 60 * time.Millisecond,
		Seed:    seed,
	}
	if seed%2 == 0 {
		opts.Jitter = 3 * time.Millisecond
	}
	if seed%4 == 1 {
		opts.LossProb = 0.15
	}
	init := a.InitialLegitimate()
	if seed%3 == 2 {
		// Arbitrary start with incoherent caches — the stabilization regime.
		rng := rand.New(rand.NewSource(seed * 7))
		for i := range init {
			init[i] = core.State{X: rng.Intn(a.K()), RTS: rng.Intn(2) == 1, TRA: rng.Intn(2) == 1}
		}
		opts.RandomState = func(r *rand.Rand) core.State {
			return core.State{X: r.Intn(a.K()), RTS: r.Intn(2) == 1, TRA: r.Intn(2) == 1}
		}
	} else {
		opts.CoherentCaches = true
	}
	faults := [](struct {
		at   float64
		node int
		s    core.State
	}){
		{at: 0.8, node: int(seed) % n, s: core.State{X: int(seed+3) % a.K(), RTS: true, TRA: true}},
		{at: 1.3, node: int(seed*5) % n, s: core.State{X: int(seed+1) % a.K()}},
	}
	return a, init, opts, faults
}

func runDiff(t *testing.T, seed int64, workers int, reference bool, horizon float64) diffRun {
	t.Helper()
	a, init, opts, faults := diffScenario(seed)
	opts.Workers = workers
	e := NewEngine[core.State](a, init, opts)
	e.Reference = reference
	e.EnableTaps()
	e.SetPrivilegeCallback(core.HasToken, nil)
	for _, f := range faults {
		e.ScheduleInject(f.at, f.node, f.s)
	}
	var census []int
	for _, h := range []float64{horizon / 2, horizon} {
		e.RunUntil(h)
		tracked, ok := e.TrackedCensus()
		if !ok {
			t.Fatalf("seed %d: TrackedCensus unavailable with a privilege callback installed", seed)
		}
		if scan := e.Census(core.HasToken); tracked != scan {
			t.Fatalf("seed %d w=%d at t=%v: tracked census %d != scanned census %d",
				seed, workers, h, tracked, scan)
		}
		census = append(census, tracked)
	}
	r := diffRun{taps: e.Taps(), stats: e.Stats(), snaps: e.Snapshots(), now: e.Now(), census: census}
	e.Stop()
	return r
}

// TestEngineMatchesReference is the acceptance-criteria differential
// sweep: across 16 seeds and every worker count from 1 to 4, the sharded
// arena engine's full tap stream, stats, final snapshots and clock must
// be bit-identical to the boxed single-loop Reference engine.
func TestEngineMatchesReference(t *testing.T) {
	const horizon = 2.0
	for seed := int64(1); seed <= 16; seed++ {
		want := runDiff(t, seed, 1, true, horizon)
		if len(want.taps) == 0 || want.stats.Events == 0 {
			t.Fatalf("seed %d: reference run degenerate: %d taps, %+v", seed, len(want.taps), want.stats)
		}
		for _, w := range []int{1, 2, 3, 4} {
			got := runDiff(t, seed, w, false, horizon)
			if got.stats != want.stats {
				t.Errorf("seed %d w=%d: stats diverged:\n got %+v\nwant %+v", seed, w, got.stats, want.stats)
			}
			if got.now != want.now {
				t.Errorf("seed %d w=%d: clock diverged: %v vs %v", seed, w, got.now, want.now)
			}
			if !reflect.DeepEqual(got.snaps, want.snaps) {
				t.Errorf("seed %d w=%d: final snapshots diverged", seed, w)
			}
			if !reflect.DeepEqual(got.census, want.census) {
				t.Errorf("seed %d w=%d: census samples diverged: %v vs %v", seed, w, got.census, want.census)
			}
			if !reflect.DeepEqual(got.taps, want.taps) {
				i := 0
				for i < len(got.taps) && i < len(want.taps) && got.taps[i] == want.taps[i] {
					i++
				}
				var g, x TapEvent
				if i < len(got.taps) {
					g = got.taps[i]
				}
				if i < len(want.taps) {
					x = want.taps[i]
				}
				t.Errorf("seed %d w=%d: taps diverged at %d/%d:\n got %+v\nwant %+v",
					seed, w, i, len(want.taps), g, x)
			}
		}
	}
}

// TestEngineWorkerCountInvariance re-runs one lossy jittered scenario at
// a longer horizon across asymmetric worker counts — shard arcs of very
// different sizes must still replay the same execution.
func TestEngineWorkerCountInvariance(t *testing.T) {
	const horizon = 4.0
	want := runDiff(t, 4, 1, false, horizon)
	for _, w := range []int{2, 3, 4} {
		got := runDiff(t, 4, w, false, horizon)
		if got.stats != want.stats || !reflect.DeepEqual(got.taps, want.taps) || !reflect.DeepEqual(got.snaps, want.snaps) {
			t.Errorf("w=%d diverged from w=1 at horizon %v", w, horizon)
		}
	}
}

// TestEngineRerunReproducible: constructing the same engine twice yields
// the same execution — no hidden global state.
func TestEngineRerunReproducible(t *testing.T) {
	a := runDiff(t, 9, 2, false, 2.0)
	b := runDiff(t, 9, 2, false, 2.0)
	if a.stats != b.stats || !reflect.DeepEqual(a.taps, b.taps) {
		t.Fatal("identical construction diverged across runs")
	}
}
