package runtime

import (
	"math/rand"
	"sync/atomic"
	"testing"
	"time"

	"ssrmin/internal/core"
	"ssrmin/internal/obs"
	"ssrmin/internal/statemodel"
)

func engineOpts(seed int64, workers int) Options[core.State] {
	return Options[core.State]{
		Delay:          10 * time.Millisecond,
		Jitter:         2 * time.Millisecond,
		Refresh:        50 * time.Millisecond,
		Seed:           seed,
		CoherentCaches: true,
		Workers:        workers,
	}
}

func newSSRminEngine(n, k int, opts Options[core.State]) (*core.Algorithm, *Engine[core.State]) {
	a := core.New(n, k)
	return a, NewEngine[core.State](a, a.InitialLegitimate(), opts)
}

// sampleCensus advances the engine epoch by epoch to horizon and records
// the census extremes at every boundary plus every holder seen.
func sampleCensus(e *Engine[core.State], horizon float64) (minC, maxC int, seen map[int]bool) {
	minC, maxC = 1<<30, -1
	seen = map[int]bool{}
	for e.Now() < horizon {
		e.RunUntil(e.Now() + 0.01)
		hs := e.Holders(core.HasToken)
		if len(hs) < minC {
			minC = len(hs)
		}
		if len(hs) > maxC {
			maxC = len(hs)
		}
		for _, h := range hs {
			seen[h] = true
		}
	}
	return minC, maxC, seen
}

// TestEngineMutualInclusion checks the paper's core guarantee on the
// sharded engine: from a legitimate coherent start the virtual-time
// census never leaves [1, 2], and the privilege visits every node.
// Unlike the goroutine ring's sampled wall-clock census, every epoch
// boundary here is a true instantaneous cut of the execution.
func TestEngineMutualInclusion(t *testing.T) {
	for _, w := range []int{1, 2, 4} {
		a, e := newSSRminEngine(5, 6, engineOpts(1, w))
		minC, maxC, seen := sampleCensus(e, 10)
		if minC < 1 || maxC > 2 {
			t.Errorf("w=%d: census left [1,2]: min=%d max=%d", w, minC, maxC)
		}
		if len(seen) != a.N() {
			t.Errorf("w=%d: privilege visited %d/%d nodes", w, len(seen), a.N())
		}
		if e.RuleExecutions() == 0 {
			t.Errorf("w=%d: no rule executions", w)
		}
		e.Stop()
	}
}

// TestEngineMinimumRing is the n=3 edge: the smallest legal ring, with
// every worker count from degenerate to one-node-per-shard.
func TestEngineMinimumRing(t *testing.T) {
	for _, w := range []int{1, 2, 3} {
		_, e := newSSRminEngine(3, 4, engineOpts(2, w))
		if got := e.Workers(); got != w {
			t.Fatalf("Workers()=%d want %d", got, w)
		}
		minC, maxC, seen := sampleCensus(e, 10)
		if minC < 1 || maxC > 2 {
			t.Errorf("n=3 w=%d: census left [1,2]: min=%d max=%d", w, minC, maxC)
		}
		if len(seen) != 3 {
			t.Errorf("n=3 w=%d: privilege visited %d/3 nodes", w, len(seen))
		}
		e.Stop()
	}
}

// TestEngineUnevenShards exercises n not divisible by the worker count
// (arc sizes differ) and checks the shard arcs tile the ring exactly.
func TestEngineUnevenShards(t *testing.T) {
	_, e := newSSRminEngine(7, 8, engineOpts(3, 3))
	e.RunUntil(1)
	defer e.Stop()
	covered := 0
	for i := range e.shards {
		sh := &e.shards[i]
		if sh.lo != int32(covered) {
			t.Fatalf("shard %d starts at %d, want %d", i, sh.lo, covered)
		}
		covered = int(sh.hi)
		for j := sh.lo; j < sh.hi; j++ {
			if e.shardOf[j] != sh.id {
				t.Fatalf("node %d mapped to shard %d, not %d", j, e.shardOf[j], sh.id)
			}
		}
	}
	if covered != 7 {
		t.Fatalf("shards cover %d/7 nodes", covered)
	}
	if minC, maxC, _ := sampleCensus(e, 5); minC < 1 || maxC > 2 {
		t.Errorf("census left [1,2]: min=%d max=%d", minC, maxC)
	}
}

// TestEngineWorkerClamp: more workers than nodes collapses to n shards;
// zero workers resolves to GOMAXPROCS (at least 1).
func TestEngineWorkerClamp(t *testing.T) {
	_, e := newSSRminEngine(3, 4, engineOpts(1, 64))
	if got := e.Workers(); got != 3 {
		t.Errorf("Workers()=%d want clamp to n=3", got)
	}
	_, e2 := newSSRminEngine(5, 6, engineOpts(1, 0))
	if got := e2.Workers(); got < 1 {
		t.Errorf("Workers()=%d want >= 1", got)
	}
}

// TestEngineCrossShardBoundary pins the boundary-link routing at W=2,
// where a shard's left and right neighbor are the same shard and routing
// must go by direction, not by shard id. A ring of 4 with 2 shards makes
// every second link a boundary link.
func TestEngineCrossShardBoundary(t *testing.T) {
	_, e := newSSRminEngine(4, 5, engineOpts(4, 2))
	e.RunUntil(5)
	defer e.Stop()
	s := e.Stats()
	if s.Carried == 0 {
		t.Fatal("no frames crossed the ring")
	}
	// Both boundary directions must have carried traffic: nodes 0 and 3
	// (shard 0's ends at W=2 over n=4: arcs [0,2) and [2,4)) talk across.
	if minC, maxC, seen := sampleCensus(e, 10); minC < 1 || maxC > 2 || len(seen) != 4 {
		t.Errorf("boundary run: census [%d,%d], visited %d/4", minC, maxC, len(seen))
	}
}

// TestEngineInjectRecovers schedules transient faults and requires the
// census to return to [1,2] within the convergence budget.
func TestEngineInjectRecovers(t *testing.T) {
	for _, w := range []int{1, 3} {
		_, e := newSSRminEngine(5, 6, engineOpts(5, w))
		e.ScheduleInject(1.0, 2, core.State{X: 4, RTS: true, TRA: true})
		e.ScheduleInject(1.05, 4, core.State{X: 1})
		e.RunUntil(6) // » O(n²) rule executions at n=5
		if minC, maxC, _ := sampleCensus(e, 10); minC < 1 || maxC > 2 {
			t.Errorf("w=%d: census did not recover: [%d,%d]", w, minC, maxC)
		}
		e.Stop()
	}
}

// TestEngineIncoherentStartStabilizes starts from garbage states and
// incoherent caches over lossy links — the Theorem 4 regime — and
// requires convergence to the 1–2 band.
func TestEngineIncoherentStartStabilizes(t *testing.T) {
	a := core.New(5, 7)
	init := statemodel.Config[core.State]{
		{X: 3, RTS: true, TRA: true}, {X: 1}, {X: 6, TRA: true}, {X: 2, RTS: true}, {X: 2},
	}
	e := NewEngine[core.State](a, init, Options[core.State]{
		Delay:    10 * time.Millisecond,
		Jitter:   3 * time.Millisecond,
		LossProb: 0.05,
		Refresh:  50 * time.Millisecond,
		Seed:     6,
		Workers:  2,
		RandomState: func(rng *rand.Rand) core.State {
			return core.State{X: rng.Intn(7), RTS: rng.Intn(2) == 1, TRA: rng.Intn(2) == 1}
		},
	})
	e.RunUntil(20) // settle
	defer e.Stop()
	if minC, maxC, _ := sampleCensus(e, 25); minC < 1 || maxC > 2 {
		t.Errorf("census out of [1,2] after settling: [%d,%d]", minC, maxC)
	}
}

// TestEngineObserver wires an observer and checks its counters agree
// exactly with the engine's own stats.
func TestEngineObserver(t *testing.T) {
	o := obs.New(nil)
	_, e := newSSRminEngine(5, 6, engineOpts(7, 2))
	e.SetObserver(o, core.HasToken)
	e.RunUntil(5)
	defer e.Stop()
	s := e.Stats()
	if s.Rules == 0 || s.Sent == 0 || s.Carried == 0 {
		t.Fatalf("degenerate run: %+v", s)
	}
	if got := o.C.RuleFired.Load(); got != s.Rules {
		t.Errorf("observer rules %d != stats %d", got, s.Rules)
	}
	if got := o.C.MsgSent.Load(); got != s.Sent {
		t.Errorf("observer sent %d != stats %d", got, s.Sent)
	}
	if got := o.C.MsgRecv.Load(); got != s.Carried {
		t.Errorf("observer recv %d != stats %d", got, s.Carried)
	}
	if got := o.C.MsgDropped.Load(); got != s.Dropped {
		t.Errorf("observer dropped %d != stats %d", got, s.Dropped)
	}
	if o.C.Handovers.Load() == 0 {
		t.Error("no handovers observed")
	}
}

// TestEnginePrivilegeCallback: every node reports becoming privileged.
// Callbacks fire from worker loops, so the sinks are atomic.
func TestEnginePrivilegeCallback(t *testing.T) {
	a, e := newSSRminEngine(5, 6, engineOpts(8, 2))
	var became [5]atomic.Int64
	e.SetPrivilegeCallback(core.HasToken, func(id int, holds bool) {
		if holds {
			became[id].Add(1)
		}
	})
	e.RunUntil(10)
	defer e.Stop()
	for i := 0; i < a.N(); i++ {
		if became[i].Load() == 0 {
			t.Errorf("node %d never became privileged", i)
		}
	}
}

// TestEnginePaced drives the engine in wall-clock paced mode — the
// NewLiveRing deployment path: Start, live census sampling, a live
// Inject, Stop (idempotent).
func TestEnginePaced(t *testing.T) {
	_, e := newSSRminEngine(5, 6, Options[core.State]{
		Delay:          500 * time.Microsecond,
		Jitter:         200 * time.Microsecond,
		Refresh:        2 * time.Millisecond,
		Seed:           9,
		CoherentCaches: true,
		Workers:        2,
	})
	e.Start()
	stats := e.WatchCensus(core.HasToken, 200*time.Millisecond, 100*time.Microsecond)
	if stats.Samples < 50 {
		t.Fatalf("only %d samples", stats.Samples)
	}
	if stats.Min < 1 || stats.Max > 2 {
		t.Fatalf("paced census left [1,2]: %+v", stats)
	}
	if stats.DistinctHolders < 3 {
		t.Errorf("only %d distinct holders in 200ms", stats.DistinctHolders)
	}
	if !e.Inject(2, core.State{X: 4, RTS: true, TRA: true}) {
		t.Fatal("live inject refused")
	}
	time.Sleep(50 * time.Millisecond)
	post := e.WatchCensus(core.HasToken, 100*time.Millisecond, 100*time.Microsecond)
	if post.Min < 1 || post.Max > 2 {
		t.Fatalf("census did not recover after live inject: %+v", post)
	}
	if e.RuleExecutions() == 0 {
		t.Error("no rule executions")
	}
	e.Stop()
	e.Stop() // idempotent
}

// TestEnginePacedTracksWallClock: after 150ms of wall time the paced
// virtual clock should be within coarse scheduling slack of 150ms.
func TestEnginePacedTracksWallClock(t *testing.T) {
	_, e := newSSRminEngine(5, 6, engineOpts(10, 1))
	e.Start()
	defer e.Stop()
	time.Sleep(150 * time.Millisecond)
	if now := e.Now(); now < 0.05 || now > 1.0 {
		t.Errorf("virtual clock at %.3fs after 150ms wall", now)
	}
}

func TestEngineDoubleStartPanics(t *testing.T) {
	_, e := newSSRminEngine(5, 6, engineOpts(1, 1))
	e.Start()
	defer e.Stop()
	defer func() {
		if recover() == nil {
			t.Error("double Start accepted")
		}
	}()
	e.Start()
}

func TestEngineConfigAfterRunPanics(t *testing.T) {
	_, e := newSSRminEngine(5, 6, engineOpts(1, 1))
	e.RunUntil(0.1)
	for name, f := range map[string]func(){
		"SetObserver":          func() { e.SetObserver(obs.New(nil), nil) },
		"SetPrivilegeCallback": func() { e.SetPrivilegeCallback(core.HasToken, nil) },
		"EnableTaps":           func() { e.EnableTaps() },
		"ScheduleInject":       func() { e.ScheduleInject(1, 0, core.State{}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s after first run accepted", name)
				}
			}()
			f()
		}()
	}
}

func TestEngineValidation(t *testing.T) {
	a := core.New(3, 4)
	cases := map[string]func(){
		"short init": func() {
			NewEngine[core.State](a, statemodel.Config[core.State]{{}, {}}, Options[core.State]{
				Delay: time.Millisecond, Refresh: time.Millisecond,
			})
		},
		"zero delay": func() {
			NewEngine[core.State](a, a.InitialLegitimate(), Options[core.State]{Refresh: time.Millisecond})
		},
		"zero refresh": func() {
			NewEngine[core.State](a, a.InitialLegitimate(), Options[core.State]{Delay: time.Millisecond})
		},
	}
	for name, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s accepted", name)
				}
			}()
			f()
		}()
	}
}

// TestEngineAgainstGoroutineRing cross-validates the two live backends
// statistically: same options, same predicate — both must keep the
// census in [1,2] and circulate the privilege around the whole ring.
// (The bit-identical comparison is against the Reference engine; the
// goroutine ring is wall-clock and nondeterministic by nature.)
func TestEngineAgainstGoroutineRing(t *testing.T) {
	opts := Options[core.State]{
		Delay:          500 * time.Microsecond,
		Jitter:         200 * time.Microsecond,
		Refresh:        2 * time.Millisecond,
		Seed:           1,
		CoherentCaches: true,
	}
	a := core.New(5, 6)
	ring := NewRing[core.State](a, a.InitialLegitimate(), opts)
	ring.Start()
	ringStats := ring.WatchCensus(core.HasToken, 200*time.Millisecond, 100*time.Microsecond)
	ring.Stop()

	eng := NewEngine[core.State](a, a.InitialLegitimate(), opts)
	minC, maxC, seen := sampleCensus(eng, 0.2)
	eng.Stop()

	if ringStats.Min < 1 || ringStats.Max > 2 {
		t.Errorf("goroutine ring census [%d,%d]", ringStats.Min, ringStats.Max)
	}
	if minC < 1 || maxC > 2 {
		t.Errorf("engine census [%d,%d]", minC, maxC)
	}
	if len(seen) != 5 {
		t.Errorf("engine circulated over %d/5 nodes in 200 virtual ms", len(seen))
	}
}
