// Package runtime executes CST-transformed ring algorithms as a live
// concurrent system: one goroutine per node, Go channels as the
// communication links, wall-clock delays, and probabilistic message loss.
// It is the deployment the discrete-event simulation (internal/cst over
// internal/msgnet) models, and what the paper's motivating application —
// a self-organizing camera network with continuous coverage — runs on.
//
// Faithfulness to the paper's network model:
//
//   - Links carry one message per direction at a time: sends into a busy
//     link are dropped, never queued unboundedly.
//   - Each node keeps caches of its neighbors' states and announces its
//     own state on change and periodically (Algorithm 4).
//   - Token conditions are evaluated on the node's own state and caches.
//
// Each node publishes an immutable snapshot of (state, caches) through an
// atomic pointer after every change, so observers can sample the global
// census without locks. Sampling is not an instantaneous global cut — no
// observer of a distributed system has one — but node-local snapshots are
// internally consistent, which is all the token predicates need.
package runtime

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"ssrmin/internal/obs"
	"ssrmin/internal/statemodel"
)

// Options configures a live ring.
type Options[S comparable] struct {
	// Delay is the base link propagation delay.
	Delay time.Duration
	// Jitter adds a uniform random extra delay in [0, Jitter).
	Jitter time.Duration
	// LossProb is the per-message loss probability.
	LossProb float64
	// Refresh is the periodic state-announcement interval.
	Refresh time.Duration
	// Seed drives all randomness (per-goroutine RNGs are derived from it).
	Seed int64
	// CoherentCaches seeds caches with true neighbor states; otherwise
	// RandomState (or the node's own state) seeds them.
	CoherentCaches bool
	// RandomState draws arbitrary states for incoherent cache seeding.
	RandomState func(*rand.Rand) S
	// Workers sets the sharded Engine's worker loop count (0 means
	// GOMAXPROCS, clamped to [1, n]). The goroutine-per-node Ring
	// ignores it.
	Workers int
	// Spare preallocates dormant extra nodes (ids n..n+Spare-1) on the
	// sharded Engine for mid-run ScheduleJoin churn; an engine with spares
	// or scheduled churn runs on one worker (the shard arcs assume a
	// static ring). The goroutine-per-node Ring ignores it.
	Spare int
}

// Snapshot is one node's published view: its own state and its neighbor
// caches. It is immutable once published.
type Snapshot[S comparable] struct {
	// State is the node's local state q_i.
	State S
	// CachePred is Z_i[v_{i-1}], CacheSucc is Z_i[v_{i+1}].
	CachePred, CacheSucc S
}

// Ring is a running (or runnable) live ring.
type Ring[S comparable] struct {
	alg   statemodel.Algorithm[S]
	n     int
	opts  Options[S]
	nodes []*liveNode[S]
	links []*link[S] // 2n directed links

	ctx     context.Context
	cancel  context.CancelFunc
	wg      sync.WaitGroup
	mu      sync.Mutex
	started bool
	stopped bool

	obsv *obs.Observer
	t0   time.Time
}

type link[S comparable] struct {
	in, out  chan S
	from, to int
	delay    time.Duration
	jitter   time.Duration
	loss     float64
	dropped  atomic.Int64
	carried  atomic.Int64
}

type liveNode[S comparable] struct {
	alg        statemodel.Algorithm[S]
	id, n      int
	state      S
	cachePred  S
	cacheSucc  S
	fromPred   chan S
	fromSucc   chan S
	inject     chan S
	toPred     *link[S]
	toSucc     *link[S]
	refresh    time.Duration
	rng        *rand.Rand
	snap       atomic.Pointer[Snapshot[S]]
	executions atomic.Int64
	// OnPrivilege, when non-nil, is called (from the node goroutine) every
	// time the node evaluates its own privilege after a change; the
	// application layer uses it to switch activity on and off.
	OnPrivilege func(id int, holds bool)
	holder      func(statemodel.View[S]) bool
	wasPriv     bool
	ring        *Ring[S]
}

// NewRing builds a live ring over init. Call Start to launch it and Stop
// (or cancel via StartContext) to tear it down.
func NewRing[S comparable](alg statemodel.Algorithm[S], init statemodel.Config[S], opts Options[S]) *Ring[S] {
	n := alg.N()
	if len(init) != n {
		panic(fmt.Sprintf("runtime: init length %d != n %d", len(init), n))
	}
	if opts.Refresh <= 0 {
		panic("runtime: Refresh must be positive")
	}
	r := &Ring[S]{alg: alg, n: n, opts: opts, t0: time.Now()}
	seedRNG := rand.New(rand.NewSource(opts.Seed))

	// Directed links: index 2i   = i -> i+1 (to successor),
	//                 index 2i+1 = i -> i-1 (to predecessor).
	r.links = make([]*link[S], 2*n)
	for i := range r.links {
		node := i / 2
		peer := (node + 1) % n
		if i%2 == 1 {
			peer = (node - 1 + n) % n
		}
		r.links[i] = &link[S]{
			in:     make(chan S, 1),
			out:    make(chan S, 1),
			from:   node,
			to:     peer,
			delay:  opts.Delay,
			jitter: opts.Jitter,
			loss:   opts.LossProb,
		}
	}

	r.nodes = make([]*liveNode[S], n)
	for i := 0; i < n; i++ {
		pred, succ := (i-1+n)%n, (i+1)%n
		nd := &liveNode[S]{
			alg:      alg,
			id:       i,
			n:        n,
			state:    init[i],
			fromPred: r.links[2*pred].out,   // pred -> me (pred's to-successor link)
			fromSucc: r.links[2*succ+1].out, // succ -> me (succ's to-predecessor link)
			inject:   make(chan S, 4),
			toPred:   r.links[2*i+1],
			toSucc:   r.links[2*i],
			refresh:  opts.Refresh,
			rng:      rand.New(rand.NewSource(seedRNG.Int63())),
			ring:     r,
		}
		if opts.CoherentCaches {
			nd.cachePred, nd.cacheSucc = init[pred], init[succ]
		} else if opts.RandomState != nil {
			nd.cachePred, nd.cacheSucc = opts.RandomState(seedRNG), opts.RandomState(seedRNG)
		} else {
			nd.cachePred, nd.cacheSucc = init[i], init[i]
		}
		nd.publish()
		r.nodes[i] = nd
	}
	return r
}

// SetPrivilegeCallback installs holder as the node-local privilege
// predicate and cb as the notification hook, for all nodes. Must be called
// before Start.
func (r *Ring[S]) SetPrivilegeCallback(holder func(statemodel.View[S]) bool, cb func(id int, holds bool)) {
	if r.started {
		panic("runtime: SetPrivilegeCallback after Start")
	}
	for _, nd := range r.nodes {
		nd.holder = holder
		nd.OnPrivilege = cb
	}
}

// SetObserver installs o on the ring: rule firings and message
// send/recv/drop events are emitted from the node and relay goroutines
// (times are wall-clock seconds since Start). When holder is non-nil it
// is installed as the privilege predicate on nodes that have none, so
// privilege handovers are detected and emitted too. Must be called
// before Start.
func (r *Ring[S]) SetObserver(o *obs.Observer, holder func(statemodel.View[S]) bool) {
	if r.started {
		panic("runtime: SetObserver after Start")
	}
	r.obsv = o
	for _, nd := range r.nodes {
		if nd.holder == nil {
			nd.holder = holder
		}
	}
}

// since returns seconds of wall-clock time since the ring started.
func (r *Ring[S]) since() float64 { return time.Since(r.t0).Seconds() }

// Start launches the ring with a background context.
func (r *Ring[S]) Start() { r.StartContext(context.Background()) }

// StartContext launches every link relay and node goroutine under ctx.
func (r *Ring[S]) StartContext(ctx context.Context) {
	r.mu.Lock()
	if r.started {
		r.mu.Unlock()
		panic("runtime: double Start")
	}
	r.started = true
	r.mu.Unlock()
	r.t0 = time.Now()
	r.ctx, r.cancel = context.WithCancel(ctx)
	for i, l := range r.links {
		r.wg.Add(1)
		lrng := rand.New(rand.NewSource(r.opts.Seed + 7919*int64(i+1)))
		go r.relay(l, lrng)
	}
	for _, nd := range r.nodes {
		r.wg.Add(1)
		go r.runNode(nd)
	}
}

// Stop tears the ring down and waits for every goroutine — nodes and
// link relays, including relays mid-delivery of an in-flight frame — to
// exit. It is idempotent and safe to call from multiple goroutines
// concurrently (all callers return only once the ring is fully drained).
func (r *Ring[S]) Stop() {
	r.mu.Lock()
	if !r.started || r.stopped {
		r.mu.Unlock()
		return
	}
	r.stopped = true
	r.mu.Unlock()
	r.cancel()
	r.wg.Wait()
}

// relay carries messages over one directed link: at most one in service at
// a time, with delay, jitter and loss.
func (r *Ring[S]) relay(l *link[S], rng *rand.Rand) {
	defer r.wg.Done()
	for {
		select {
		case <-r.ctx.Done():
			return
		case s := <-l.in:
			d := l.delay
			if l.jitter > 0 {
				d += time.Duration(rng.Int63n(int64(l.jitter)))
			}
			if d > 0 {
				select {
				case <-r.ctx.Done():
					return
				case <-time.After(d):
				}
			}
			if l.loss > 0 && rng.Float64() < l.loss {
				l.dropped.Add(1)
				if o := r.obsv; o != nil {
					o.MsgDropped(r.since(), l.to, l.from)
				}
				continue
			}
			// Deliver; if the receiver's buffer is full the message is
			// dropped (the medium cannot hold more than one frame).
			select {
			case l.out <- s:
				l.carried.Add(1)
				if o := r.obsv; o != nil {
					o.MsgRecv(r.since(), l.to, l.from)
				}
			default:
				l.dropped.Add(1)
				if o := r.obsv; o != nil {
					o.MsgDropped(r.since(), l.to, l.from)
				}
			}
		}
	}
}

// runNode is the per-node event loop: Algorithm 4 against live channels.
func (r *Ring[S]) runNode(nd *liveNode[S]) {
	defer r.wg.Done()
	// Random phase so refresh timers do not beat in lockstep.
	phase := time.Duration(nd.rng.Int63n(int64(nd.refresh)))
	timer := time.NewTimer(phase)
	defer timer.Stop()

	nd.announce()
	for {
		select {
		case <-r.ctx.Done():
			return
		case s := <-nd.fromPred:
			nd.cachePred = s
			nd.step()
		case s := <-nd.fromSucc:
			nd.cacheSucc = s
			nd.step()
		case s := <-nd.inject:
			// A transient fault: the local state is overwritten in place
			// (soft error). The node carries on; self-stabilization is
			// what repairs the damage.
			nd.state = s
			nd.publish()
			nd.notifyPrivilege()
			nd.announce()
		case <-timer.C:
			nd.announce()
			timer.Reset(nd.refresh)
		}
	}
}

// step executes at most one rule and announces the state.
//
//rulecheck:step
func (nd *liveNode[S]) step() {
	v := nd.view()
	if rule := nd.alg.EnabledRule(v); rule != 0 {
		nd.state = nd.alg.Apply(v, rule)
		nd.executions.Add(1)
		if o := nd.ring.obsv; o != nil {
			o.RuleFired(nd.ring.since(), nd.id, rule)
		}
	}
	nd.publish()
	nd.notifyPrivilege()
	nd.announce()
}

func (nd *liveNode[S]) view() statemodel.View[S] {
	return statemodel.View[S]{I: nd.id, N: nd.n, Self: nd.state, Pred: nd.cachePred, Succ: nd.cacheSucc}
}

func (nd *liveNode[S]) publish() {
	//lint:ignore hotpath the legacy ring's lock-free sampling needs a fresh immutable snapshot per publish
	nd.snap.Store(&Snapshot[S]{State: nd.state, CachePred: nd.cachePred, CacheSucc: nd.cacheSucc})
}

func (nd *liveNode[S]) notifyPrivilege() {
	if nd.holder == nil {
		return
	}
	holds := nd.holder(nd.view())
	if nd.OnPrivilege != nil {
		nd.OnPrivilege(nd.id, holds)
	}
	if o := nd.ring.obsv; o != nil && holds != nd.wasPriv {
		o.Handover(nd.ring.since(), nd.id, holds)
	}
	nd.wasPriv = holds
}

// announce sends the state into both outgoing links, dropping on busy.
func (nd *liveNode[S]) announce() {
	nd.send(nd.toPred)
	nd.send(nd.toSucc)
}

// send offers the state to one outgoing link, dropping when the link is
// still holding an undelivered frame (one message per direction).
func (nd *liveNode[S]) send(l *link[S]) {
	select {
	case l.in <- nd.state:
		if o := nd.ring.obsv; o != nil {
			o.MsgSent(nd.ring.since(), l.from, l.to)
		}
	default:
		if o := nd.ring.obsv; o != nil {
			o.MsgDropped(nd.ring.since(), l.to, l.from)
		}
	}
}

// Inject overwrites a node's local state with s — a live transient fault
// (soft error). It reports whether the fault was enqueued; a node whose
// fault queue is full (already being hammered) drops it.
func (r *Ring[S]) Inject(node int, s S) bool {
	if node < 0 || node >= r.n {
		panic(fmt.Sprintf("runtime: node %d out of range", node))
	}
	select {
	case r.nodes[node].inject <- s:
		return true
	default:
		return false
	}
}

// Snapshots returns the current published snapshot of every node.
func (r *Ring[S]) Snapshots() []Snapshot[S] {
	out := make([]Snapshot[S], r.n)
	for i, nd := range r.nodes {
		out[i] = *nd.snap.Load()
	}
	return out
}

// Census counts the nodes whose published view satisfies holder.
func (r *Ring[S]) Census(holder func(statemodel.View[S]) bool) int {
	count := 0
	for i, nd := range r.nodes {
		s := nd.snap.Load()
		v := statemodel.View[S]{I: i, N: r.n, Self: s.State, Pred: s.CachePred, Succ: s.CacheSucc}
		if holder(v) {
			count++
		}
	}
	return count
}

// Holders returns the ids of nodes whose published view satisfies holder.
func (r *Ring[S]) Holders(holder func(statemodel.View[S]) bool) []int {
	var out []int
	for i, nd := range r.nodes {
		s := nd.snap.Load()
		v := statemodel.View[S]{I: i, N: r.n, Self: s.State, Pred: s.CachePred, Succ: s.CacheSucc}
		if holder(v) {
			out = append(out, i)
		}
	}
	return out
}

// RuleExecutions sums rule executions across nodes.
func (r *Ring[S]) RuleExecutions() int64 {
	var total int64
	for _, nd := range r.nodes {
		total += nd.executions.Load()
	}
	return total
}

// LinkStats aggregates carried and dropped message counts over all links.
func (r *Ring[S]) LinkStats() (carried, dropped int64) {
	for _, l := range r.links {
		carried += l.carried.Load()
		dropped += l.dropped.Load()
	}
	return carried, dropped
}

// CensusStats summarizes a sampling run of WatchCensus.
type CensusStats struct {
	// Samples is the number of observations taken.
	Samples int
	// Min and Max are the extreme censuses observed.
	Min, Max int
	// At counts observations per census value.
	At map[int]int
	// DistinctHolders counts how many distinct nodes were ever privileged.
	DistinctHolders int
}

// WatchCensus samples the holder census every interval for the given
// duration and returns the distribution. It runs in the caller's
// goroutine.
func (r *Ring[S]) WatchCensus(holder func(statemodel.View[S]) bool, d, interval time.Duration) CensusStats {
	stats := CensusStats{Min: 1 << 30, Max: -1, At: map[int]int{}}
	holders := map[int]bool{}
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		c := r.Census(holder)
		stats.Samples++
		stats.At[c]++
		if c < stats.Min {
			stats.Min = c
		}
		if c > stats.Max {
			stats.Max = c
		}
		for _, h := range r.Holders(holder) {
			holders[h] = true
		}
		time.Sleep(interval)
	}
	stats.DistinctHolders = len(holders)
	return stats
}
