package runtime

import (
	"context"
	"sync/atomic"
	"testing"
	"time"

	"ssrmin/internal/core"
	"ssrmin/internal/dijkstra"
	"ssrmin/internal/statemodel"
)

func liveSSRmin(n, k int, opts Options[core.State]) (*core.Algorithm, *Ring[core.State]) {
	a := core.New(n, k)
	return a, NewRing[core.State](a, a.InitialLegitimate(), opts)
}

func fastOpts() Options[core.State] {
	return Options[core.State]{
		Delay:          500 * time.Microsecond,
		Jitter:         200 * time.Microsecond,
		Refresh:        2 * time.Millisecond,
		Seed:           1,
		CoherentCaches: true,
	}
}

func TestStartStop(t *testing.T) {
	_, r := liveSSRmin(5, 6, fastOpts())
	r.Start()
	time.Sleep(20 * time.Millisecond)
	r.Stop()
	// Stop is idempotent.
	r.Stop()
	if r.RuleExecutions() == 0 {
		t.Error("no rule executions in 20ms")
	}
	carried, _ := r.LinkStats()
	if carried == 0 {
		t.Error("no message carried")
	}
}

func TestDoubleStartPanics(t *testing.T) {
	_, r := liveSSRmin(5, 6, fastOpts())
	r.Start()
	defer r.Stop()
	defer func() {
		if recover() == nil {
			t.Error("double Start accepted")
		}
	}()
	r.Start()
}

func TestContextCancelStopsRing(t *testing.T) {
	_, r := liveSSRmin(5, 6, fastOpts())
	ctx, cancel := context.WithCancel(context.Background())
	r.StartContext(ctx)
	time.Sleep(10 * time.Millisecond)
	cancel()
	done := make(chan struct{})
	go func() { r.wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("goroutines did not exit after context cancel")
	}
}

// TestLiveCirculation checks that the privilege visits every node of a
// live ring within a generous wall-clock budget.
func TestLiveCirculation(t *testing.T) {
	a, r := liveSSRmin(5, 6, fastOpts())
	r.Start()
	defer r.Stop()
	visited := map[int]bool{}
	deadline := time.Now().Add(3 * time.Second)
	for len(visited) < a.N() && time.Now().Before(deadline) {
		for _, h := range r.Holders(core.HasToken) {
			visited[h] = true
		}
		time.Sleep(200 * time.Microsecond)
	}
	if len(visited) != a.N() {
		t.Fatalf("privilege visited %d/%d nodes: %v", len(visited), a.N(), visited)
	}
}

// TestLiveMutualInclusion samples the census of a live SSRmin ring started
// legitimate and coherent: the observed census should stay within 1–2.
// (Sampling is not an instantaneous global cut, so we tolerate nothing —
// the predicate's model gap tolerance is designed exactly so that stale
// reads still show a holder.)
func TestLiveMutualInclusion(t *testing.T) {
	_, r := liveSSRmin(5, 6, fastOpts())
	r.Start()
	defer r.Stop()
	stats := r.WatchCensus(core.HasToken, 300*time.Millisecond, 100*time.Microsecond)
	if stats.Samples < 100 {
		t.Fatalf("only %d samples", stats.Samples)
	}
	if stats.Min < 1 {
		t.Fatalf("census dipped to %d (zero-coverage instant observed): %+v", stats.Min, stats.At)
	}
	if stats.Max > 2 {
		t.Fatalf("census rose to %d: %+v", stats.Max, stats.At)
	}
	if stats.DistinctHolders < 3 {
		t.Errorf("only %d distinct holders in 300ms", stats.DistinctHolders)
	}
}

// TestLiveDijkstraShowsGaps runs plain SSToken live: sampled census should
// hit zero — the wall-clock demonstration of Figure 11.
func TestLiveDijkstraShowsGaps(t *testing.T) {
	a := dijkstra.New(5, 6)
	r := NewRing[dijkstra.State](a, a.InitialLegitimate(), Options[dijkstra.State]{
		Delay:          500 * time.Microsecond,
		Jitter:         200 * time.Microsecond,
		Refresh:        2 * time.Millisecond,
		Seed:           2,
		CoherentCaches: true,
	})
	r.Start()
	defer r.Stop()
	stats := r.WatchCensus(dijkstra.HasToken, 300*time.Millisecond, 100*time.Microsecond)
	if stats.Min != 0 {
		t.Fatalf("expected zero-token samples for live SSToken, min=%d %+v", stats.Min, stats.At)
	}
}

// TestLiveStabilizationFromArbitrary starts from garbage states and
// incoherent caches over lossy links and requires the ring to reach and
// hold the 1–2 regime.
func TestLiveStabilizationFromArbitrary(t *testing.T) {
	a := core.New(5, 7)
	init := statemodel.Config[core.State]{
		{X: 3, RTS: true, TRA: true}, {X: 1}, {X: 6, TRA: true}, {X: 2, RTS: true}, {X: 2},
	}
	r := NewRing[core.State](a, init, Options[core.State]{
		Delay:    500 * time.Microsecond,
		Jitter:   300 * time.Microsecond,
		LossProb: 0.05,
		Refresh:  2 * time.Millisecond,
		Seed:     3,
	})
	r.Start()
	defer r.Stop()
	time.Sleep(500 * time.Millisecond) // settle: » O(n²) rule executions
	stats := r.WatchCensus(core.HasToken, 200*time.Millisecond, 100*time.Microsecond)
	if stats.Min < 1 || stats.Max > 2 {
		t.Fatalf("census out of [1,2] after settling: %+v", stats)
	}
}

// TestPrivilegeCallback exercises the application hook: every node must
// report becoming privileged at least once, and transitions must come from
// the owning node id.
func TestPrivilegeCallback(t *testing.T) {
	a, r := liveSSRmin(5, 6, fastOpts())
	var became [5]atomic.Int64
	r.SetPrivilegeCallback(core.HasToken, func(id int, holds bool) {
		if holds {
			became[id].Add(1)
		}
	})
	r.Start()
	defer r.Stop()
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		all := true
		for i := 0; i < a.N(); i++ {
			if became[i].Load() == 0 {
				all = false
			}
		}
		if all {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("not every node became privileged: %v", []int64{
		became[0].Load(), became[1].Load(), became[2].Load(), became[3].Load(), became[4].Load(),
	})
}

func TestSetPrivilegeCallbackAfterStartPanics(t *testing.T) {
	_, r := liveSSRmin(5, 6, fastOpts())
	r.Start()
	defer r.Stop()
	defer func() {
		if recover() == nil {
			t.Error("SetPrivilegeCallback after Start accepted")
		}
	}()
	r.SetPrivilegeCallback(core.HasToken, nil)
}

func TestSnapshotsShape(t *testing.T) {
	_, r := liveSSRmin(5, 6, fastOpts())
	snaps := r.Snapshots()
	if len(snaps) != 5 {
		t.Fatalf("%d snapshots", len(snaps))
	}
	// Before start, snapshot = init with coherent caches.
	if snaps[1].CachePred != (core.State{X: 0, TRA: true}) {
		t.Errorf("P1 cache of P0 = %v", snaps[1].CachePred)
	}
}

func TestNewRingValidation(t *testing.T) {
	a := core.New(3, 4)
	defer func() {
		if recover() == nil {
			t.Error("bad init length accepted")
		}
	}()
	NewRing[core.State](a, statemodel.Config[core.State]{{}, {}}, Options[core.State]{Refresh: time.Millisecond})
}

// TestLiveFaultInjectionRecovers hits a running ring with live soft
// errors and verifies the census returns to [1,2] and stays there.
func TestLiveFaultInjectionRecovers(t *testing.T) {
	a, r := liveSSRmin(5, 6, fastOpts())
	r.Start()
	defer r.Stop()
	time.Sleep(20 * time.Millisecond)

	for round := 0; round < 3; round++ {
		if !r.Inject(round%a.N(), core.State{X: (round * 3) % 6, RTS: true, TRA: true}) {
			t.Fatal("injection dropped")
		}
		r.Inject((round+2)%a.N(), core.State{X: (round + 1) % 6})
		time.Sleep(150 * time.Millisecond) // » worst-case recovery at n=5
		stats := r.WatchCensus(core.HasToken, 100*time.Millisecond, 100*time.Microsecond)
		if stats.Min < 1 || stats.Max > 2 {
			t.Fatalf("round %d: census %+v after fault", round, stats)
		}
	}
}

func TestInjectValidation(t *testing.T) {
	_, r := liveSSRmin(5, 6, fastOpts())
	defer func() {
		if recover() == nil {
			t.Error("Inject out of range accepted")
		}
	}()
	r.Inject(99, core.State{})
}
