package runtime

// Stop/drain regression tests for the live tier (ISSUE 7 bugfix
// satellite): stopping a ring or engine mid-handover — with frames in
// flight and injects landing — must drain every goroutine instead of
// leaking them, and Stop must be safe to call concurrently. Run under
// make test-race-core.

import (
	goruntime "runtime"
	"sync"
	"testing"
	"time"

	"ssrmin/internal/core"
)

// waitGoroutines polls until the goroutine count drops back to at most
// want (GC/timer goroutines wind down asynchronously after Stop).
func waitGoroutines(t *testing.T, want int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if goruntime.NumGoroutine() <= want {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	buf := make([]byte, 1<<16)
	n := goruntime.Stack(buf, true)
	t.Fatalf("goroutines leaked: %d > %d\n%s", goruntime.NumGoroutine(), want, buf[:n])
}

// TestRingStopDrainsMidHandover starts the goroutine ring, lets frames
// pile into every link, injects faults right up to the stop, and then
// requires every node/relay goroutine to exit.
func TestRingStopDrainsMidHandover(t *testing.T) {
	before := goruntime.NumGoroutine()
	for round := 0; round < 5; round++ {
		a := core.New(7, 8)
		r := NewRing[core.State](a, a.InitialLegitimate(), Options[core.State]{
			Delay:          300 * time.Microsecond,
			Jitter:         150 * time.Microsecond,
			Refresh:        time.Millisecond,
			Seed:           int64(round + 1),
			CoherentCaches: true,
		})
		r.Start()
		// Stop while handovers are in full swing: no settling sleep, just
		// enough traffic that links are busy when the context cancels.
		for i := 0; i < 7; i++ {
			r.Inject(i, core.State{X: i, RTS: i%2 == 0, TRA: i%2 == 1})
		}
		time.Sleep(2 * time.Millisecond)
		r.Stop()
	}
	waitGoroutines(t, before)
}

// TestRingStopConcurrent hammers Stop from many goroutines at once —
// every caller must return, exactly one drain must happen, and the race
// detector must stay quiet.
func TestRingStopConcurrent(t *testing.T) {
	before := goruntime.NumGoroutine()
	a := core.New(5, 6)
	r := NewRing[core.State](a, a.InitialLegitimate(), Options[core.State]{
		Delay:          300 * time.Microsecond,
		Jitter:         100 * time.Microsecond,
		Refresh:        time.Millisecond,
		Seed:           1,
		CoherentCaches: true,
	})
	r.Start()
	time.Sleep(5 * time.Millisecond)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			r.Stop()
		}()
	}
	wg.Wait()
	waitGoroutines(t, before)
}

// TestEngineStopDrainsWorkers: the sharded engine's pacer and worker
// loops must all exit on Stop, in both paced and fast-virtual use.
func TestEngineStopDrainsWorkers(t *testing.T) {
	before := goruntime.NumGoroutine()

	a := core.New(6, 7)
	e := NewEngine[core.State](a, a.InitialLegitimate(), Options[core.State]{
		Delay:          300 * time.Microsecond,
		Jitter:         100 * time.Microsecond,
		Refresh:        time.Millisecond,
		Seed:           1,
		CoherentCaches: true,
		Workers:        3,
	})
	e.Start()
	for i := 0; i < 6; i++ {
		e.Inject(i, core.State{X: i, RTS: i%2 == 0})
	}
	time.Sleep(2 * time.Millisecond)
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			e.Stop()
		}()
	}
	wg.Wait()

	// Fast-virtual mode with workers up also drains on Stop.
	e2 := NewEngine[core.State](a, a.InitialLegitimate(), Options[core.State]{
		Delay:          time.Millisecond,
		Refresh:        5 * time.Millisecond,
		Seed:           2,
		CoherentCaches: true,
		Workers:        3,
	})
	e2.RunUntil(0.5)
	e2.Stop()
	e2.Stop() // idempotent

	waitGoroutines(t, before)
}

// TestRingContextCancelDrains: cancelling the start context (rather than
// calling Stop) must also wind the goroutines down; Stop afterwards
// still returns.
func TestRingContextCancelDrains(t *testing.T) {
	before := goruntime.NumGoroutine()
	a := core.New(5, 6)
	r := NewRing[core.State](a, a.InitialLegitimate(), Options[core.State]{
		Delay:          300 * time.Microsecond,
		Refresh:        time.Millisecond,
		Seed:           3,
		CoherentCaches: true,
	})
	r.Start()
	time.Sleep(2 * time.Millisecond)
	r.Stop()
	waitGoroutines(t, before)
}
