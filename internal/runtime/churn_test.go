package runtime

import (
	"reflect"
	"testing"

	"ssrmin/internal/core"
)

// churnEngine builds an SSRmin engine with spare capacity for joins; K is
// sized for the largest ring the tests grow to.
func churnEngine(n, k, spare int, seed int64) (*core.Algorithm, *Engine[core.State]) {
	a := core.New(n, k)
	opts := engineOpts(seed, 0)
	opts.Spare = spare
	return a, NewEngine[core.State](a, a.InitialLegitimate(), opts)
}

func TestEngineChurnClampsToOneWorker(t *testing.T) {
	_, e := churnEngine(6, 9, 1, 1)
	e.ScheduleJoin(0.5, 2, core.State{X: 3})
	e.RunUntil(0.01)
	if w := e.Workers(); w != 1 {
		t.Fatalf("Workers = %d with churn scheduled, want 1", w)
	}
}

func TestEngineJoinExtendsRing(t *testing.T) {
	_, e := churnEngine(5, 9, 2, 1)
	e.ScheduleJoin(1.0, 2, core.State{X: 3})
	e.RunUntil(0.5)
	if got := e.Members(); !reflect.DeepEqual(got, []int{0, 1, 2, 3, 4}) {
		t.Fatalf("Members before join = %v", got)
	}
	// The join instant perturbs the census (stale caches on the rewired
	// edges) — that transient is what the monitors' settle windows grace.
	// Let it settle, then the bounds must hold again.
	e.RunUntil(2.5)
	if got := e.Members(); !reflect.DeepEqual(got, []int{0, 1, 2, 5, 3, 4}) {
		t.Fatalf("Members after join = %v", got)
	}
	if e.MemberCount() != 6 {
		t.Fatalf("MemberCount = %d, want 6", e.MemberCount())
	}
	minC, maxC, seen := sampleCensus(e, 6)
	if minC < 1 || maxC > 2 {
		t.Errorf("census range [%d, %d] after join settled, want within [1, 2]", minC, maxC)
	}
	if !seen[5] {
		t.Error("privilege never visited the joiner")
	}
}

func TestEngineLeaveShrinksRing(t *testing.T) {
	_, e := churnEngine(5, 9, 0, 1)
	e.ScheduleLeave(1.0, 3)
	e.RunUntil(2.5) // settle past the leave transient
	minC, maxC, seen := sampleCensus(e, 8)
	if got := e.Members(); !reflect.DeepEqual(got, []int{0, 1, 2, 4}) {
		t.Fatalf("Members after leave = %v", got)
	}
	if minC < 1 || maxC > 2 {
		t.Errorf("census range [%d, %d] after leave settled, want within [1, 2]", minC, maxC)
	}
	for _, m := range e.Members() {
		if !seen[m] {
			t.Errorf("privilege never visited survivor %d", m)
		}
	}
	if len(e.Holders(core.HasToken)) > 0 {
		for _, h := range e.Holders(core.HasToken) {
			if h == 3 {
				t.Error("detached node 3 still reported as holder")
			}
		}
	}
}

func TestEngineSpliceDropsStaleFrames(t *testing.T) {
	_, e := churnEngine(6, 9, 0, 1)
	e.ScheduleSplice(1.0, 0, 2) // removes members 1 and 2
	before := e.Stats()
	e.RunUntil(2.5) // settle past the splice transient
	minC, maxC, _ := sampleCensus(e, 8)
	if got := e.Members(); !reflect.DeepEqual(got, []int{0, 3, 4, 5}) {
		t.Fatalf("Members after splice = %v", got)
	}
	if minC < 1 || maxC > 2 {
		t.Errorf("census range [%d, %d] after splice settled, want within [1, 2]", minC, maxC)
	}
	// Frames in flight toward the removed arc (or from ex-neighbors)
	// must be dropped, not delivered into stale cache slots.
	if after := e.Stats(); after.Dropped == before.Dropped {
		t.Log("note: no stale frames were in flight at the splice instant")
	}
}

func TestEngineChurnMatchesReference(t *testing.T) {
	run := func(ref bool) ([]TapEvent, EngineStats, []int) {
		_, e := churnEngine(6, 10, 1, 7)
		e.Reference = ref
		e.EnableTaps()
		e.ScheduleJoin(0.8, 3, core.State{X: 5})
		e.ScheduleLeave(2.0, 4)
		e.ScheduleSplice(4.0, 0, 2)
		e.RunUntil(8)
		return e.Taps(), e.Stats(), e.Members()
	}
	taps, stats, members := run(false)
	refTaps, refStats, refMembers := run(true)
	if !reflect.DeepEqual(members, refMembers) {
		t.Fatalf("membership diverged: %v vs %v", members, refMembers)
	}
	if stats != refStats {
		t.Fatalf("stats diverged:\nsharded   %+v\nreference %+v", stats, refStats)
	}
	if len(taps) != len(refTaps) {
		t.Fatalf("tap count diverged: %d vs %d", len(taps), len(refTaps))
	}
	for i := range taps {
		if taps[i] != refTaps[i] {
			t.Fatalf("tap %d diverged: %+v vs %+v", i, taps[i], refTaps[i])
		}
	}
}

func TestEngineChurnGuards(t *testing.T) {
	t.Run("leave bottom", func(t *testing.T) {
		_, e := churnEngine(5, 9, 0, 1)
		defer func() {
			if recover() == nil {
				t.Error("no panic")
			}
		}()
		e.ScheduleLeave(1, 0)
	})
	t.Run("shrink below 3", func(t *testing.T) {
		_, e := churnEngine(4, 9, 0, 1)
		e.ScheduleLeave(1, 1)
		e.ScheduleLeave(2, 2)
		defer func() {
			if recover() == nil {
				t.Error("no panic")
			}
		}()
		e.RunUntil(5)
	})
	t.Run("splice through bottom", func(t *testing.T) {
		_, e := churnEngine(6, 9, 0, 1)
		e.ScheduleSplice(1, 4, 3)
		defer func() {
			if recover() == nil {
				t.Error("no panic")
			}
		}()
		e.RunUntil(5)
	})
	t.Run("join without spare", func(t *testing.T) {
		_, e := churnEngine(5, 9, 0, 1)
		e.ScheduleJoin(1, 0, core.State{})
		defer func() {
			if recover() == nil {
				t.Error("no panic")
			}
		}()
		e.RunUntil(5)
	})
	t.Run("churn after freeze", func(t *testing.T) {
		_, e := churnEngine(5, 9, 1, 1)
		e.RunUntil(1)
		defer func() {
			if recover() == nil {
				t.Error("no panic")
			}
		}()
		e.ScheduleJoin(2, 0, core.State{})
	})
}

func TestEngineChurnDeterministic(t *testing.T) {
	run := func() ([]TapEvent, EngineStats) {
		_, e := churnEngine(6, 10, 2, 3)
		e.EnableTaps()
		e.ScheduleJoin(0.7, 1, core.State{X: 2})
		e.ScheduleSplice(2.5, 0, 2)
		e.ScheduleJoin(4.0, 0, core.State{X: 7})
		e.RunUntil(8)
		return e.Taps(), e.Stats()
	}
	t1, s1 := run()
	t2, s2 := run()
	if s1 != s2 || !reflect.DeepEqual(t1, t2) {
		t.Fatal("churn execution not deterministic across identical runs")
	}
}

// TestEngineTrackedCensusAcrossChurn pins the shard-local census
// accumulators against the O(n) snapshot scan through every churn kind:
// the joiner's initial view must be counted, leavers and spliced arcs
// must be uncounted, and the running notifyPriv increments must keep the
// two answers equal at every sample point in between.
func TestEngineTrackedCensusAcrossChurn(t *testing.T) {
	_, e := churnEngine(6, 12, 2, 3)
	e.SetPrivilegeCallback(core.HasToken, nil)
	e.ScheduleJoin(0.6, 2, core.State{X: 3})
	e.ScheduleLeave(1.1, 4)
	e.ScheduleSplice(1.6, 0, 2)
	for h := 0.1; h < 2.6; h += 0.1 {
		e.RunUntil(h)
		tracked, ok := e.TrackedCensus()
		if !ok {
			t.Fatal("TrackedCensus unavailable with a privilege callback installed")
		}
		if scan := e.Census(core.HasToken); tracked != scan {
			t.Fatalf("t=%v: tracked census %d != scanned census %d (members %v)",
				h, tracked, scan, e.Members())
		}
	}
}
