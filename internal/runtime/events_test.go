package runtime

import (
	"sync"
	"testing"
)

// drainShard pops every event out of sh's heap in order.
func drainShard(sh *engShard[int]) []eventRec[int] {
	var out []eventRec[int]
	for len(sh.heap) > 0 {
		var rec eventRec[int]
		sh.pop(&rec)
		out = append(out, rec)
	}
	return out
}

// TestSPSCOverflowDrain regression-tests the overflow growth path: a
// backlog far beyond the fixed ring (the delay ≫ epoch shape that used
// to panic on the 17th push) spills into the overflow stack, and a
// single drain recovers every record through the shard heap in (at,
// key2) order.
func TestSPSCOverflowDrain(t *testing.T) {
	q := &spsc[int]{}
	const total = 3*spscCap + 5
	for i := 0; i < total; i++ {
		q.pushRing(eventRec[int]{at: float64(i), key2: uint64(i), node: 0, payload: i})
		if i < spscCap && q.ovf.Load() != nil {
			t.Fatalf("push %d spilled to the overflow stack while the ring had room", i)
		}
	}
	if q.ovf.Load() == nil {
		t.Fatalf("pushing %d records never engaged the overflow stack", total)
	}
	sh := &engShard[int]{free: -1}
	q.drainInto(sh)
	if q.ovf.Load() != nil {
		t.Fatal("drainInto left records on the overflow stack")
	}
	recs := drainShard(sh)
	if len(recs) != total {
		t.Fatalf("drained %d records, want %d", len(recs), total)
	}
	for i, rec := range recs {
		if rec.key2 != uint64(i) || rec.payload != i {
			t.Fatalf("record %d = {key2:%d payload:%d}, want {key2:%d payload:%d}",
				i, rec.key2, rec.payload, i, i)
		}
	}
}

// TestSPSCOverflowConcurrent races one producer against one consumer
// across the ring/overflow boundary; under -race this pins the
// CAS-push / Swap-drain protocol on the overflow stack.
func TestSPSCOverflowConcurrent(t *testing.T) {
	q := &spsc[int]{}
	const total = 20000
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < total; i++ {
			q.pushRing(eventRec[int]{at: float64(i), key2: uint64(i), payload: i})
		}
	}()
	sh := &engShard[int]{free: -1}
	seen := make([]bool, total)
	got := 0
	for got < total {
		q.drainInto(sh)
		for len(sh.heap) > 0 {
			var rec eventRec[int]
			sh.pop(&rec)
			if rec.payload < 0 || rec.payload >= total || seen[rec.payload] {
				t.Fatalf("record %d duplicated or out of range", rec.payload)
			}
			seen[rec.payload] = true
			got++
		}
	}
	wg.Wait()
	q.drainInto(sh)
	if extra := len(sh.heap); extra != 0 {
		t.Fatalf("consumer saw %d records beyond the %d produced", extra, total)
	}
}
