package crosscheck

import (
	"path/filepath"
	"testing"

	"ssrmin/internal/msgnet"
	"ssrmin/internal/obs"
	"ssrmin/internal/scenario"
)

func clean(n int, seed int64) Scenario {
	return Scenario{
		Name:    "t",
		N:       n,
		Seed:    seed,
		Horizon: 10,
		Link:    scenario.Link{Delay: 0.01, Jitter: 0.002},
		Engines: []string{EngineState, EngineMsgnet},
	}
}

func TestValidateDefaults(t *testing.T) {
	s := clean(4, 1)
	s.Engines = nil
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.K != 5 || s.Steps == 0 || s.Daemon != "central-random" ||
		s.Refresh != 0.05 || s.Settle != 5 || s.LiveScale != 0.01 || len(s.Engines) != 3 {
		t.Fatalf("defaults not applied: %+v", s)
	}
}

func TestValidateRejections(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Scenario)
	}{
		{"no name", func(s *Scenario) { s.Name = "" }},
		{"small n", func(s *Scenario) { s.N = 2 }},
		{"bad k", func(s *Scenario) { s.K = 3 }},
		{"no horizon", func(s *Scenario) { s.Horizon = 0 }},
		{"bad daemon", func(s *Scenario) { s.Daemon = "chaos-monkey" }},
		{"bad engine", func(s *Scenario) { s.Engines = []string{"quantum"} }},
		{"bad dup", func(s *Scenario) { s.Link.Dup = 2 }},
		{"bad fault", func(s *Scenario) { s.Faults = []scenario.Fault{{At: 1, Type: "meteor"}} }},
		{"late fault", func(s *Scenario) { s.Faults = []scenario.Fault{{At: 99, Type: "loss-on"}} }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := clean(4, 1)
			tc.mut(&s)
			if err := s.Validate(); err == nil {
				t.Errorf("validation accepted %+v", s)
			}
		})
	}
}

// TestCleanScenarioAllEnginesAgree is the harness's own sanity check: a
// legitimate coherent start must satisfy every invariant in the
// deterministic tiers, and the differential verdict must be unanimous.
func TestCleanScenarioAllEnginesAgree(t *testing.T) {
	rep, err := Run(clean(5, 1))
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("clean scenario violated invariants: %v", rep.Violations())
	}
	if d := rep.Diff(); d != "" {
		t.Fatalf("diff on a clean scenario: %s", d)
	}
	for _, e := range rep.Engines {
		if e.Observations == 0 || e.RuleExecutions == 0 {
			t.Errorf("%s: observations=%d ruleExecs=%d — engine did not run",
				e.Engine, e.Observations, e.RuleExecutions)
		}
		if e.MinCensus < 1 || e.MaxCensus > 2 {
			t.Errorf("%s: census range [%d,%d]", e.Engine, e.MinCensus, e.MaxCensus)
		}
	}
}

// TestDuplicationScenarioIsConformant is the harness-level regression
// test for the duplicated-delivery bug: with duplication enabled, the
// link monitor must see zero one-message-per-direction violations.
// Reverting the busyUntil fix in msgnet.send makes this fail.
func TestDuplicationScenarioIsConformant(t *testing.T) {
	s := clean(4, 7)
	s.Link.Dup = 0.3
	s.Engines = []string{EngineMsgnet}
	rep, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range rep.Violations() {
		if v.Kind == "link" {
			t.Fatalf("duplicate bypassed the one-message-per-link rule: %v", v)
		}
	}
	if !rep.OK() {
		t.Fatalf("dup scenario violated invariants: %v", rep.Violations())
	}
}

// TestFaultStormConverges drives the same seeded fault script through the
// state and msgnet tiers: both must re-stabilize within their settle
// windows.
func TestFaultStormConverges(t *testing.T) {
	s := clean(5, 3)
	s.Horizon = 30
	s.Settle = 15
	s.Link.Loss = 0.05
	s.RandomStart = true
	s.IncoherentCaches = true
	s.Faults = []scenario.Fault{
		{At: 4, Type: "states", Count: 2},
		{At: 8, Type: "caches", Count: 3},
	}
	rep, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("fault storm violated invariants: %v", rep.Violations())
	}
}

// TestLiveEngineClean runs the goroutine tier briefly on a legitimate
// coherent start; like runtime's own TestLiveMutualInclusion, the sampled
// census must stay within [1,2] with zero tolerance.
func TestLiveEngineClean(t *testing.T) {
	s := clean(5, 1)
	s.Horizon = 5
	s.LiveScale = 0.02 // 100ms of wall clock
	s.Engines = []string{EngineLive}
	rep, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("live engine violated invariants: %v", rep.Violations())
	}
	if rep.Engines[0].Observations < 10 {
		t.Fatalf("only %d live samples", rep.Engines[0].Observations)
	}
}

func TestRunWithObsCounts(t *testing.T) {
	o := obs.New(nil)
	s := clean(4, 2)
	if _, err := RunWithObs(s, o); err != nil {
		t.Fatal(err)
	}
	if o.C.RuleFired.Load() == 0 || o.C.MsgSent.Load() == 0 {
		t.Errorf("observer counters empty: rules=%d msgs=%d",
			o.C.RuleFired.Load(), o.C.MsgSent.Load())
	}
}

// TestLinkMonitorConfirmsGhostFrame feeds the monitor a synthetic tap
// stream reproducing the pre-fix behaviour: a send admitted while a
// duplicate was still in transit.
func TestLinkMonitorConfirmsGhostFrame(t *testing.T) {
	m := NewLinkMonitor()
	ev := func(k msgnet.TapKind, at msgnet.Time) msgnet.TapEvent {
		return msgnet.TapEvent{At: at, Kind: k, From: 0, Node: 1}
	}
	m.Tap(ev(msgnet.TapSend, 0))      // frame 1 admitted
	m.Tap(ev(msgnet.TapDup, 0))       // duplicate of frame 1 scheduled
	m.Tap(ev(msgnet.TapDeliver, 1))   // frame 1 arrives
	m.Tap(ev(msgnet.TapSend, 1.2))    // frame 2 admitted — dup still in flight
	m.Tap(ev(msgnet.TapDeliver, 1.5)) // the duplicate arrives: confirms the breach
	m.Tap(ev(msgnet.TapDeliver, 2.2)) // frame 2 arrives
	vs := m.Finish()
	if len(vs) != 1 || vs[0].Kind != "link" || vs[0].At != 1.2 {
		t.Fatalf("violations = %v, want one link violation at t=1.2", vs)
	}
}

// TestLinkMonitorToleratesExactTies: a send admitted at exactly the
// instant the outstanding frame arrives is legal — the medium frees at
// the arrival instant, and tap ordering may report the send first.
func TestLinkMonitorToleratesExactTies(t *testing.T) {
	m := NewLinkMonitor()
	ev := func(k msgnet.TapKind, at msgnet.Time) msgnet.TapEvent {
		return msgnet.TapEvent{At: at, Kind: k, From: 0, Node: 1}
	}
	m.Tap(ev(msgnet.TapSend, 0))
	m.Tap(ev(msgnet.TapSend, 1))    // admitted at the arrival instant...
	m.Tap(ev(msgnet.TapDeliver, 1)) // ...which the tap reports just after
	m.Tap(ev(msgnet.TapDeliver, 2))
	if vs := m.Finish(); len(vs) != 0 {
		t.Fatalf("tie flagged as violation: %v", vs)
	}
}

// TestShrinkMinimizesFailingScenario builds a scenario that genuinely
// violates (a settle window far too short for a cold random start) and
// checks the shrinker returns a smaller scenario that still violates.
func TestShrinkMinimizesFailingScenario(t *testing.T) {
	s := Scenario{
		Name:             "shrinkme",
		N:                6,
		Seed:             7,
		Horizon:          10,
		Settle:           0.001,
		Link:             scenario.Link{Delay: 0.01, Jitter: 0.002, Loss: 0.1},
		RandomStart:      true,
		IncoherentCaches: true,
		Engines:          []string{EngineMsgnet},
		Faults:           []scenario.Fault{{At: 5, Type: "states", Count: 2}},
	}
	rep, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK() {
		t.Skip("seed did not produce a violating base scenario")
	}
	shrunk, spent := Shrink(s, 40)
	if spent == 0 || spent > 40 {
		t.Fatalf("shrink spent %d runs", spent)
	}
	rep2, err := Run(shrunk)
	if err != nil {
		t.Fatal(err)
	}
	if rep2.OK() {
		t.Fatal("shrunk scenario no longer violates")
	}
	if shrunk.N > s.N || shrunk.Horizon > s.Horizon || len(shrunk.Faults) > len(s.Faults) {
		t.Fatalf("shrink did not reduce: %+v", shrunk)
	}
}

func TestWriteLoadReproRoundTrip(t *testing.T) {
	dir := t.TempDir()
	r := Repro{Note: "test", Found: "unit test", Scenario: clean(4, 9)}
	path, err := WriteRepro(dir, r)
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Dir(path) != dir {
		t.Fatalf("repro written to %s", path)
	}
	got, err := LoadRepros(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Note != "test" || got[0].Scenario.N != 4 {
		t.Fatalf("round trip lost data: %+v", got)
	}
}

func TestLoadReprosMissingDir(t *testing.T) {
	got, err := LoadRepros(filepath.Join(t.TempDir(), "nope"))
	if err != nil || got != nil {
		t.Fatalf("missing dir: %v %v", got, err)
	}
}

// TestReproFixturesStayFixed replays every committed regression fixture:
// scenarios that once violated an invariant must now run clean. This is
// how a soak-found bug stays fixed forever.
func TestReproFixturesStayFixed(t *testing.T) {
	repros, err := LoadRepros(filepath.Join("..", "..", "testdata", "repros"))
	if err != nil {
		t.Fatal(err)
	}
	if len(repros) == 0 {
		t.Fatal("no committed repro fixtures found")
	}
	for _, r := range repros {
		t.Run(r.Scenario.Name, func(t *testing.T) {
			rep, err := Run(r.Scenario)
			if err != nil {
				t.Fatal(err)
			}
			if !rep.OK() {
				t.Fatalf("fixture regressed (%s): %v", r.Note, rep.Violations())
			}
		})
	}
}
