// Package crosscheck is a differential conformance harness: it executes
// one seeded scenario through every execution tier of the repository —
// the state-reading simulator (internal/statemodel), the discrete-event
// message-passing simulation (internal/cst over internal/msgnet), and the
// live goroutine ring (internal/runtime) — and evaluates the paper's
// invariants continuously in each:
//
//   - mutual inclusion: 1 ≤ #privileged ≤ 2 after convergence (Theorems
//     1 and 3, checked via internal/verify's census);
//   - graceful handover: no zero-token instant outside a settle window
//     (subsumed by the lower census bound);
//   - convergence within the bound: in the state-reading engine the
//     settle window after a perturbation is exactly the paper's O(n²)
//     step bound (core.ConvergenceStepBound), so a census violation past
//     it is a convergence failure;
//   - the link model: each communication link transmits at most one
//     message per direction at a time, checked from the outside via the
//     network tap (LinkMonitor), duplicates included.
//
// The differential part: a correct system yields the verdict "no
// violations" in every tier. A model-gap bug — an engine more permissive
// than the model the theorems are proved against — makes exactly one tier
// diverge, which is how the duplicated-delivery bug in msgnet.send was
// pinned (see testdata/repros/). On a violation the harness auto-shrinks
// the scenario to a minimal reproduction (Shrink) and writes it as a
// regression fixture that go test replays forever.
package crosscheck

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"ssrmin/internal/core"
	"ssrmin/internal/cst"
	"ssrmin/internal/daemon"
	"ssrmin/internal/fault"
	"ssrmin/internal/msgnet"
	"ssrmin/internal/obs"
	"ssrmin/internal/runtime"
	"ssrmin/internal/scenario"
	"ssrmin/internal/statemodel"
	"ssrmin/internal/verify"
)

// Engine names accepted in Scenario.Engines.
const (
	// EngineState is the state-reading simulator (internal/statemodel);
	// its time axis is the daemon step index.
	EngineState = "state"
	// EngineMsgnet is the discrete-event message-passing simulation
	// (internal/cst over internal/msgnet); its time axis is simulated
	// seconds.
	EngineMsgnet = "msgnet"
	// EngineLive is the goroutine-per-node runtime (internal/runtime);
	// its time axis is wall-clock seconds divided by LiveScale, i.e. the
	// same simulated-seconds axis as EngineMsgnet.
	EngineLive = "live"
)

// AllEngines lists every execution tier, in checking order.
var AllEngines = []string{EngineState, EngineMsgnet, EngineLive}

// Scenario is one seeded cross-engine experiment. The zero value is not
// runnable; Validate fills defaults.
type Scenario struct {
	// Name labels the scenario in reports and repro fixtures.
	Name string `json:"name"`
	// N is the ring size (≥ 3); K the Dijkstra counter space (default N+1).
	N int `json:"n"`
	K int `json:"k,omitempty"`
	// Seed fixes all randomness in every engine.
	Seed int64 `json:"seed"`
	// Horizon is the simulated duration in seconds (msgnet and, scaled by
	// LiveScale, live).
	Horizon float64 `json:"horizon"`
	// Steps is the state-reading engine's transition budget; the default
	// is twice the paper's convergence bound.
	Steps int `json:"steps,omitempty"`
	// Daemon schedules the state-reading engine: "central-random"
	// (default), "synchronous", or "distributed".
	Daemon string `json:"daemon,omitempty"`
	// Link configures every ring link of the message-passing engines.
	// Dup and Corrupt apply to msgnet only (Go channels neither duplicate
	// nor corrupt); Loss applies to msgnet and live. Every corrupted frame
	// counts as a transient fault and opens a Settle window — under
	// continuous corruption the census invariant is only required to hold
	// in corruption-free stretches longer than Settle.
	Link scenario.Link `json:"link"`
	// Refresh is the CST announcement period (default 5×delay).
	Refresh float64 `json:"refresh,omitempty"`
	// RandomStart draws an arbitrary initial configuration from the seed;
	// all engines start from the same configuration.
	RandomStart bool `json:"randomStart,omitempty"`
	// IncoherentCaches seeds neighbor caches with random states (msgnet
	// and live engines).
	IncoherentCaches bool `json:"incoherentCaches,omitempty"`
	// Settle is the census grace window, in simulated seconds, after t=0
	// (when the start is perturbed) and after every fault. Default
	// Horizon/2. The state engine uses the paper's step bound instead.
	Settle float64 `json:"settle,omitempty"`
	// MaxSeparation is the settled bound on the ring distance between the
	// primary and the secondary token holder (default 1: in a legitimate
	// configuration the holders are the same process or neighbors).
	MaxSeparation int `json:"maxSeparation,omitempty"`
	// Faults is the timed fault script (internal/scenario vocabulary).
	// "states" applies to every engine; "caches", "cut", "heal",
	// "loss-on", "loss-off" and the churn events "join"/"leave"/"splice"
	// apply to the message-passing tiers (churn: msgnet and the sharded
	// live engine; the state tier keeps its fixed ring and ignores them,
	// and the legacy live backend rejects them).
	Faults []scenario.Fault `json:"faults,omitempty"`
	// Engines selects the tiers to run (default all three).
	Engines []string `json:"engines,omitempty"`
	// LiveScale converts simulated seconds to wall-clock seconds for the
	// live engine's legacy goroutine backend (default 0.01: a 10 s
	// horizon runs for 100 ms). The default sharded engine backend runs
	// in fast virtual time and ignores it.
	LiveScale float64 `json:"liveScale,omitempty"`
	// LiveWorkers is the sharded engine's worker-loop count (0 =
	// GOMAXPROCS, clamped to [1, n]).
	LiveWorkers int `json:"liveWorkers,omitempty"`
	// LiveLegacy runs the live tier on the goroutine-per-node runtime
	// (wall-clock, LiveScale-paced) instead of the sharded virtual-time
	// engine.
	LiveLegacy bool `json:"liveLegacy,omitempty"`
}

// Validate checks the scenario and fills defaults in place.
func (s *Scenario) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("crosscheck: missing scenario name")
	}
	if s.N < 3 {
		return fmt.Errorf("crosscheck %q: n = %d too small for SSRmin", s.Name, s.N)
	}
	if s.K == 0 {
		s.K = s.N + 1
	}
	if s.K <= s.N {
		return fmt.Errorf("crosscheck %q: K = %d must exceed n = %d", s.Name, s.K, s.N)
	}
	if s.Horizon <= 0 {
		return fmt.Errorf("crosscheck %q: horizon must be positive", s.Name)
	}
	if s.Steps == 0 {
		s.Steps = 2 * core.New(s.N, s.K).ConvergenceStepBound()
	}
	if s.Steps < 1 {
		return fmt.Errorf("crosscheck %q: steps must be positive", s.Name)
	}
	switch s.Daemon {
	case "":
		s.Daemon = "central-random"
	case "central-random", "synchronous", "distributed":
	default:
		return fmt.Errorf("crosscheck %q: unknown daemon %q", s.Name, s.Daemon)
	}
	if s.Link.Delay == 0 {
		s.Link.Delay = 0.01
	}
	if s.Refresh == 0 {
		s.Refresh = 5 * s.Link.Delay
	}
	for _, p := range []float64{s.Link.Loss, s.Link.Dup, s.Link.Corrupt} {
		if p < 0 || p > 1 {
			return fmt.Errorf("crosscheck %q: probability %v out of range", s.Name, p)
		}
	}
	if s.Settle == 0 {
		s.Settle = s.Horizon / 2
	}
	if s.Settle < 0 || s.Settle > s.Horizon {
		return fmt.Errorf("crosscheck %q: settle %v outside (0, horizon]", s.Name, s.Settle)
	}
	if s.MaxSeparation == 0 {
		s.MaxSeparation = 1
	}
	if s.MaxSeparation < 0 {
		return fmt.Errorf("crosscheck %q: maxSeparation must be positive", s.Name)
	}
	if s.LiveScale == 0 {
		s.LiveScale = 0.01
	}
	if s.LiveScale < 0 {
		return fmt.Errorf("crosscheck %q: liveScale must be positive", s.Name)
	}
	if len(s.Engines) == 0 {
		s.Engines = append([]string(nil), AllEngines...)
	}
	for _, e := range s.Engines {
		switch e {
		case EngineState, EngineMsgnet, EngineLive:
		default:
			return fmt.Errorf("crosscheck %q: unknown engine %q", s.Name, e)
		}
	}
	churn := false
	for i, f := range s.Faults {
		switch f.Type {
		case "states", "caches":
			if f.Count <= 0 {
				return fmt.Errorf("crosscheck %q: fault %d needs a positive count", s.Name, i)
			}
		case "cut", "heal":
			if f.Link < 0 || f.Link >= s.N {
				return fmt.Errorf("crosscheck %q: fault %d link %d out of range", s.Name, i, f.Link)
			}
		case "loss-on", "loss-off":
		case "join", "leave":
			churn = true
			if f.Node < 0 {
				return fmt.Errorf("crosscheck %q: fault %d node %d out of range", s.Name, i, f.Node)
			}
		case "splice":
			churn = true
			if f.Node < 0 {
				return fmt.Errorf("crosscheck %q: fault %d node %d out of range", s.Name, i, f.Node)
			}
			if f.Count == 0 {
				s.Faults[i].Count = 1
			} else if f.Count < 0 {
				return fmt.Errorf("crosscheck %q: fault %d needs a positive count", s.Name, i)
			}
		default:
			return fmt.Errorf("crosscheck %q: fault %d has unknown type %q", s.Name, i, f.Type)
		}
		if f.At < 0 || f.At > s.Horizon {
			return fmt.Errorf("crosscheck %q: fault %d at %v outside horizon", s.Name, i, f.At)
		}
	}
	if churn {
		if s.LiveLegacy {
			for _, e := range s.Engines {
				if e == EngineLive {
					return fmt.Errorf("crosscheck %q: churn faults need the sharded live backend (liveLegacy is set)", s.Name)
				}
			}
		}
		if _, maxSize, err := scenario.ChurnPlan(s.N, s.Faults); err != nil {
			return fmt.Errorf("crosscheck %q: %w", s.Name, err)
		} else if s.K <= maxSize {
			return fmt.Errorf("crosscheck %q: K = %d must exceed the churn plan's max ring size %d", s.Name, s.K, maxSize)
		}
	}
	return nil
}

// sortedFaults returns the fault script in injection order.
func (s Scenario) sortedFaults() []scenario.Fault {
	fs := append([]scenario.Fault(nil), s.Faults...)
	sort.SliceStable(fs, func(i, j int) bool { return fs[i].At < fs[j].At })
	return fs
}

// perturbedStart reports whether the initial configuration itself needs a
// settle window.
func (s Scenario) perturbedStart() bool { return s.RandomStart || s.IncoherentCaches }

// Violation is one invariant breach in one engine.
type Violation struct {
	// Engine is the tier that broke the invariant.
	Engine string `json:"engine"`
	// Kind is "census" (token count left [1,2] after settling), "link"
	// (one-message-per-direction rule broken), or "deadlock" (the state
	// engine ran out of enabled moves — Lemma 4 says it never should).
	Kind string `json:"kind"`
	// At is the instant on the engine's native time axis.
	At float64 `json:"at"`
	// Detail is a human-readable description.
	Detail string `json:"detail"`
}

func (v Violation) String() string {
	return fmt.Sprintf("[%s/%s] t=%v: %s", v.Engine, v.Kind, v.At, v.Detail)
}

// EngineResult is one tier's verdict.
type EngineResult struct {
	// Engine names the tier.
	Engine string `json:"engine"`
	// Observations counts census observations fed to the checker.
	Observations int `json:"observations"`
	// MinCensus and MaxCensus are the extreme censuses over the whole run
	// (settle windows included).
	MinCensus int `json:"minCensus"`
	MaxCensus int `json:"maxCensus"`
	// LastBad is the last instant the census left [1,2] anywhere in the
	// run, or -1; comparing it against the settle deadline is the
	// convergence measure.
	LastBad float64 `json:"lastBad"`
	// RuleExecutions counts guarded-command executions in this tier.
	RuleExecutions int64 `json:"ruleExecutions"`
	// SeparationObs counts the instants the separation invariant was
	// evaluable (exactly one primary and one secondary holder).
	SeparationObs int `json:"separationObs,omitempty"`
	// MaxSeparation is the largest settled ring distance observed between
	// the primary and secondary token holders, or -1 if never evaluable
	// outside a settle window.
	MaxSeparation int `json:"maxSeparation,omitempty"`
	// Violations lists every invariant breach.
	Violations []Violation `json:"violations,omitempty"`
}

// OK reports whether the tier's run satisfied every invariant.
func (r EngineResult) OK() bool { return len(r.Violations) == 0 }

// Report is the cross-engine outcome of one scenario.
type Report struct {
	// Scenario is the validated scenario that ran.
	Scenario Scenario `json:"scenario"`
	// Engines holds one verdict per executed tier, in execution order.
	Engines []EngineResult `json:"engines"`
}

// Violations aggregates every engine's violations.
func (r Report) Violations() []Violation {
	var out []Violation
	for _, e := range r.Engines {
		out = append(out, e.Violations...)
	}
	return out
}

// OK reports whether every tier agreed that every invariant held.
func (r Report) OK() bool { return len(r.Violations()) == 0 }

// Diff names the tiers whose verdicts disagree with the majority outcome
// — the differential signal. An empty string means all tiers agree; a
// non-empty string names the divergent engines (a model-gap bug makes
// exactly the buggy tier diverge).
func (r Report) Diff() string {
	var ok, bad []string
	for _, e := range r.Engines {
		if e.OK() {
			ok = append(ok, e.Engine)
		} else {
			bad = append(bad, e.Engine)
		}
	}
	if len(ok) == 0 || len(bad) == 0 {
		return ""
	}
	return fmt.Sprintf("engines %v violate invariants that engines %v preserve", bad, ok)
}

// Run validates sc and executes it through every selected engine.
func Run(sc Scenario) (Report, error) { return RunWithObs(sc, nil) }

// RunWithObs is Run with an observability hook: o (which may be shared
// across concurrent runs — its counters are atomic) receives per-engine
// rule/message counters and events.
func RunWithObs(sc Scenario, o *obs.Observer) (Report, error) {
	return RunWithRes(sc, o, nil)
}

// Resources is the reusable per-worker state of a scenario sweep: one
// worker thread hands the same Resources to every scenario it executes,
// so steady-state sweeps allocate next to nothing. The zero value is
// NOT ready; use NewResources. A Resources must not be shared by
// concurrently executing runs (parsweep.MapWith guarantees this when
// the sweep's Pool builds them).
type Resources struct {
	// Arena is the message-passing engine's event arena, reset (not
	// reallocated) for each scenario's network.
	Arena *msgnet.Arena[core.State]
}

// NewResources builds an empty resource set; parsweep.Pool-compatible.
func NewResources() *Resources {
	return &Resources{Arena: msgnet.NewArena[core.State]()}
}

// RunWithRes is RunWithObs with reusable per-worker resources; res may
// be nil, in which case each engine allocates privately (the RunWithObs
// behaviour). Resource reuse cannot change results: the event arena is
// reset between runs and the engines' RNG streams depend only on the
// scenario seed — the msgnet engine differential test pins this.
func RunWithRes(sc Scenario, o *obs.Observer, res *Resources) (Report, error) {
	if err := sc.Validate(); err != nil {
		return Report{}, err
	}
	rep := Report{Scenario: sc}
	for _, e := range sc.Engines {
		switch e {
		case EngineState:
			rep.Engines = append(rep.Engines, runState(sc, o))
		case EngineMsgnet:
			rep.Engines = append(rep.Engines, runMsgnet(sc, o, res))
		case EngineLive:
			rep.Engines = append(rep.Engines, runLive(sc, o))
		}
	}
	return rep, nil
}

// initialConfig derives the shared starting configuration of all engines
// from the scenario seed; the draw matches internal/scenario's.
func initialConfig(sc Scenario) statemodel.Config[core.State] {
	a := core.New(sc.N, sc.K)
	if !sc.RandomStart {
		return a.InitialLegitimate()
	}
	rng := rand.New(rand.NewSource(sc.Seed))
	cfg := make(statemodel.Config[core.State], sc.N)
	for i := range cfg {
		cfg[i] = drawState(rng, sc.K)
	}
	return cfg
}

func drawState(rng *rand.Rand, k int) core.State {
	return core.State{X: rng.Intn(k), RTS: rng.Intn(2) == 1, TRA: rng.Intn(2) == 1}
}

func makeDaemon(sc Scenario) statemodel.Daemon {
	switch sc.Daemon {
	case "synchronous":
		return daemon.Synchronous{}
	case "distributed":
		return daemon.NewRandomSubset(rand.New(rand.NewSource(sc.Seed+2)), 0.5)
	default:
		return daemon.NewCentralRandom(rand.New(rand.NewSource(sc.Seed + 2)))
	}
}

// runState executes the scenario in the state-reading model. Faults of
// type "states" are injected at the step index proportional to their
// scheduled time; the settle window after a perturbation is the paper's
// convergence bound in steps, so a census violation past it doubles as a
// violation of the O(n²) convergence theorem.
func runState(sc Scenario, o *obs.Observer) EngineResult {
	alg := core.New(sc.N, sc.K)
	cfg := initialConfig(sc)
	d := makeDaemon(sc)
	bound := float64(alg.ConvergenceStepBound())
	chk := newCensusChecker(EngineState, bound)
	sep := NewSeparationMonitor(EngineState, sc.MaxSeparation, chk.windows)
	if sc.perturbedStart() {
		chk.perturb(0)
	}
	inj := fault.NewInjector(sc.Seed + 1)

	members := make([]int, sc.N)
	for i := range members {
		members[i] = i
	}
	observe := func(t float64, c statemodel.Config[core.State]) {
		chk.observe(t, verify.Count(c).Privileged)
		prim, secd := holdersOf(c)
		sep.Observe(t, members, prim, secd)
	}

	res := EngineResult{Engine: EngineState}
	globalStep := 0
	observe(0, cfg)

	runTo := func(target int) {
		if target <= globalStep {
			return
		}
		sim := statemodel.NewSimulator[core.State](alg, d, cfg)
		if o != nil {
			sim.Obs = o
		}
		base := globalStep
		sim.OnStep = func(step int, moves []statemodel.Move, c statemodel.Config[core.State]) {
			res.RuleExecutions += int64(len(moves))
			observe(float64(base+step), c)
		}
		done := sim.Run(target - globalStep)
		globalStep += done
		cfg = sim.Config()
		if done < target-base {
			res.Violations = append(res.Violations, Violation{
				Engine: EngineState, Kind: "deadlock", At: float64(globalStep),
				Detail: fmt.Sprintf("no enabled process after %d steps (Lemma 4 violated)", globalStep),
			})
		}
	}

	for _, f := range sc.sortedFaults() {
		if f.Type != "states" {
			continue
		}
		step := int(f.At / sc.Horizon * float64(sc.Steps))
		runTo(step)
		fault.CorruptConfig[core.State](inj, cfg, f.Count, func(r *rand.Rand) core.State {
			return drawState(r, sc.K)
		})
		chk.perturb(float64(globalStep))
		observe(float64(globalStep), cfg)
	}
	runTo(sc.Steps)

	chk.finish(&res)
	sep.finish(&res)
	return res
}

// runMsgnet executes the scenario as a CST ring over the discrete-event
// network, with the census observed after every event and the link model
// checked from the outside by a LinkMonitor on the network tap.
func runMsgnet(sc Scenario, o *obs.Observer, shared *Resources) EngineResult {
	alg := core.New(sc.N, sc.K)
	init := initialConfig(sc)
	draw := func(r *rand.Rand) core.State { return drawState(r, sc.K) }
	var arena *msgnet.Arena[core.State]
	if shared != nil {
		arena = shared.Arena
	}
	spare, _, _ := scenario.ChurnPlan(sc.N, sc.Faults) // plan validated in Validate
	ring := cst.NewRing[core.State](alg, init, cst.Options[core.State]{
		Link: msgnet.LinkParams{
			Delay:       msgnet.Time(sc.Link.Delay),
			Jitter:      msgnet.Time(sc.Link.Jitter),
			LossProb:    sc.Link.Loss,
			DupProb:     sc.Link.Dup,
			CorruptProb: sc.Link.Corrupt,
		},
		Refresh:        msgnet.Time(sc.Refresh),
		Seed:           sc.Seed,
		CoherentCaches: !sc.IncoherentCaches,
		RandomState:    draw,
		Arena:          arena,
		Spare:          spare,
	})
	if sc.Link.Corrupt > 0 {
		ring.Net.Corrupt = func(rng *rand.Rand, payload core.State) core.State { return draw(rng) }
	}
	if o != nil {
		ring.Net.Obs = o
	}

	mon := NewLinkMonitor()
	chk := newCensusChecker(EngineMsgnet, sc.Settle)
	sep := NewSeparationMonitor(EngineMsgnet, sc.MaxSeparation, chk.windows)
	if sc.perturbedStart() {
		chk.perturb(0)
	}
	// A corrupted frame is a transient fault the moment it lands in a
	// neighbor cache: self-stabilization promises recovery after faults
	// stop, not closure while they keep arriving, so each corruption opens
	// a settle window like any scheduled fault. The link monitor is not
	// affected — the one-message-per-direction rule holds unconditionally.
	ring.Net.Tap = func(e msgnet.TapEvent) {
		if e.Kind == msgnet.TapCorrupted {
			chk.perturb(float64(e.At))
		}
		mon.Tap(e)
	}
	// Ring membership only changes at churn faults, so the order is cached
	// between them rather than re-walked on every event.
	var members []int
	membersStale := true
	ring.Net.Observer = func(now msgnet.Time) {
		t := float64(now)
		chk.observe(t, ring.Census(core.HasToken))
		if membersStale {
			members = ring.Members()
			membersStale = false
		}
		sep.Observe(t, members, ring.Holders(core.HasPrimary), ring.Holders(core.HasSecondary))
	}

	inj := fault.NewInjector(sc.Seed + 1)
	for _, f := range sc.sortedFaults() {
		ring.Net.Run(msgnet.Time(f.At))
		switch f.Type {
		case "states":
			fault.CorruptStates[core.State](inj, ring, f.Count, draw)
		case "caches":
			fault.CorruptCaches[core.State](inj, ring, f.Count, draw)
		case "cut":
			setEdge(ring.Net, f.Link, (f.Link+1)%sc.N, false)
		case "heal":
			setEdge(ring.Net, f.Link, (f.Link+1)%sc.N, true)
		case "loss-on":
			ring.Net.LossEnabled = true
		case "loss-off":
			ring.Net.LossEnabled = false
		case "join":
			ring.Join(f.Node, draw(inj.Rand()))
			membersStale = true
		case "leave":
			ring.Leave(f.Node)
			membersStale = true
		case "splice":
			ring.Splice(f.Node, f.Count)
			membersStale = true
		}
		chk.perturb(f.At)
	}
	ring.Net.Run(msgnet.Time(sc.Horizon))

	res := EngineResult{Engine: EngineMsgnet, RuleExecutions: int64(ring.RuleExecutions())}
	res.Violations = append(res.Violations, mon.Finish()...)
	chk.finish(&res)
	sep.finish(&res)
	return res
}

// setEdge cuts or heals both directions of one ring edge, skipping
// directions that churn has already removed from the topology — a cut of
// a spliced-away edge is a no-op, not a crash.
func setEdge(net *msgnet.Network[core.State], a, b int, up bool) {
	if net.HasLink(a, b) {
		net.SetLinkUp(a, b, up)
	}
	if net.HasLink(b, a) {
		net.SetLinkUp(b, a, up)
	}
}

// runLive executes the scenario on the live tier. The default backend is
// the sharded event engine in fast virtual time: faults are pre-scheduled
// at their exact simulated instants, the census is observed at every
// epoch boundary (a true instantaneous cut), and wall-clock speed is
// whatever the CPU delivers — which is what lets the harness crosscheck
// rings of 100k+ nodes. Scenario.LiveLegacy selects the original
// goroutine-per-node backend, wall-clock paced by LiveScale.
func runLive(sc Scenario, o *obs.Observer) EngineResult {
	if !sc.LiveLegacy {
		return runLiveEngine(sc, o)
	}
	return runLiveLegacy(sc, o)
}

// runLiveEngine is the sharded-engine live run (virtual time, no scaling).
func runLiveEngine(sc Scenario, o *obs.Observer) EngineResult {
	alg := core.New(sc.N, sc.K)
	init := initialConfig(sc)
	draw := func(r *rand.Rand) core.State { return drawState(r, sc.K) }
	spare, _, _ := scenario.ChurnPlan(sc.N, sc.Faults) // plan validated in Validate
	eng := runtime.NewEngine[core.State](alg, init, runtime.Options[core.State]{
		Delay:          simDur(sc.Link.Delay),
		Jitter:         simDur(sc.Link.Jitter),
		LossProb:       sc.Link.Loss,
		Refresh:        simDur(sc.Refresh),
		Seed:           sc.Seed,
		CoherentCaches: !sc.IncoherentCaches,
		RandomState:    draw,
		Workers:        sc.LiveWorkers,
		Spare:          spare,
	})
	if o != nil {
		eng.SetObserver(o, core.HasToken)
	} else {
		// Install the predicate even without an observer, so the census
		// sampling below reads the shard-local accumulators instead of
		// rescanning every node each Delay tick.
		eng.SetPrivilegeCallback(core.HasToken, nil)
	}

	chk := newCensusChecker(EngineLive, sc.Settle)
	sep := NewSeparationMonitor(EngineLive, sc.MaxSeparation, chk.windows)
	if sc.perturbedStart() {
		chk.perturb(0)
	}
	// Pre-schedule the whole fault script at exact virtual instants; the
	// draw order matches the legacy backend's (permutation, then states,
	// per fault in time order). Churn is pre-scheduled the same way, with
	// joiner states drawn in the same per-fault order the msgnet tier uses.
	faults := sc.sortedFaults()
	inj := fault.NewInjector(sc.Seed + 1)
	for _, f := range faults {
		switch f.Type {
		case "states":
			perm := inj.Rand().Perm(sc.N)
			count := f.Count
			if count > sc.N {
				count = sc.N
			}
			for _, node := range perm[:count] {
				eng.ScheduleInject(f.At, node, drawState(inj.Rand(), sc.K))
			}
		case "join":
			eng.ScheduleJoin(f.At, f.Node, drawState(inj.Rand(), sc.K))
		case "leave":
			eng.ScheduleLeave(f.At, f.Node)
		case "splice":
			eng.ScheduleSplice(f.At, f.Node, f.Count)
		}
	}

	var members []int
	membersStale := true
	fi := 0
	for eng.Now() < sc.Horizon {
		eng.RunUntil(eng.Now() + sc.Link.Delay)
		now := eng.Now()
		for fi < len(faults) && faults[fi].At <= now {
			chk.perturb(faults[fi].At)
			if faults[fi].IsChurn() {
				membersStale = true
			}
			fi++
		}
		census, tracked := eng.TrackedCensus()
		if !tracked {
			census = eng.Census(core.HasToken)
		}
		chk.observe(now, census)
		if membersStale {
			members = eng.Members()
			membersStale = false
		}
		sep.Observe(now, members, eng.Holders(core.HasPrimary), eng.Holders(core.HasSecondary))
	}
	eng.Stop()

	res := EngineResult{Engine: EngineLive, RuleExecutions: eng.RuleExecutions()}
	chk.finish(&res)
	sep.finish(&res)
	return res
}

// runLiveLegacy executes the scenario on the goroutine-per-node runtime,
// sampling the published census and injecting "states" faults at their
// scaled wall-clock instants. Times in the result are reported on the
// simulated-seconds axis (wall time ÷ LiveScale).
func runLiveLegacy(sc Scenario, o *obs.Observer) EngineResult {
	alg := core.New(sc.N, sc.K)
	init := initialConfig(sc)
	draw := func(r *rand.Rand) core.State { return drawState(r, sc.K) }
	ring := runtime.NewRing[core.State](alg, init, runtime.Options[core.State]{
		Delay:          scaled(sc.Link.Delay, sc.LiveScale),
		Jitter:         scaled(sc.Link.Jitter, sc.LiveScale),
		LossProb:       sc.Link.Loss,
		Refresh:        scaled(sc.Refresh, sc.LiveScale),
		Seed:           sc.Seed,
		CoherentCaches: !sc.IncoherentCaches,
		RandomState:    draw,
	})
	if o != nil {
		ring.SetObserver(o, core.HasToken)
	}

	chk := newCensusChecker(EngineLive, sc.Settle)
	sep := NewSeparationMonitor(EngineLive, sc.MaxSeparation, chk.windows)
	members := make([]int, sc.N)
	for i := range members {
		members[i] = i
	}
	if sc.perturbedStart() {
		chk.perturb(0)
	}
	faults := sc.sortedFaults()
	inj := fault.NewInjector(sc.Seed + 1)

	interval := scaled(sc.Link.Delay/4, sc.LiveScale)
	if interval < 100*time.Microsecond {
		interval = 100 * time.Microsecond
	}
	total := scaled(sc.Horizon, sc.LiveScale)

	ring.Start()
	start := time.Now()
	for {
		elapsed := time.Since(start)
		simNow := elapsed.Seconds() / sc.LiveScale
		for len(faults) > 0 && faults[0].At <= simNow {
			f := faults[0]
			faults = faults[1:]
			if f.Type == "states" {
				perm := inj.Rand().Perm(sc.N)
				count := f.Count
				if count > sc.N {
					count = sc.N
				}
				for _, node := range perm[:count] {
					ring.Inject(node, drawState(inj.Rand(), sc.K))
				}
			}
			chk.perturb(f.At)
		}
		chk.observe(simNow, ring.Census(core.HasToken))
		sep.Observe(simNow, members, ring.Holders(core.HasPrimary), ring.Holders(core.HasSecondary))
		if elapsed >= total {
			break
		}
		time.Sleep(interval)
	}
	ring.Stop()

	res := EngineResult{Engine: EngineLive, RuleExecutions: ring.RuleExecutions()}
	chk.finish(&res)
	sep.finish(&res)
	return res
}

func scaled(simSeconds, scale float64) time.Duration {
	return time.Duration(simSeconds * scale * float64(time.Second))
}

// simDur converts simulated seconds to the engine's Duration options
// unscaled — one virtual second per simulated second.
func simDur(simSeconds float64) time.Duration {
	return time.Duration(simSeconds * float64(time.Second))
}

// censusChecker evaluates the census invariant over one engine's run:
// outside the settle windows (after t=0 when the start is perturbed, and
// after every fault) the census must stay within SSRmin's [1,2] bounds.
// The windows live in a shared settleWindows so companion monitors (the
// separation monitor) grace exactly the same instants, deadline included.
type censusChecker struct {
	engine     string
	windows    *settleWindows
	bounds     verify.CSBounds
	violations []Violation
	truncated  int
	observed   int
	minC, maxC int
	lastBad    float64
}

func newCensusChecker(engine string, grace float64) *censusChecker {
	return &censusChecker{
		engine:  engine,
		windows: &settleWindows{grace: grace},
		bounds:  verify.SSRminBounds,
		minC:    -1,
		maxC:    -1,
		lastBad: -1,
	}
}

// perturb opens a settle window at instant t.
func (c *censusChecker) perturb(t float64) { c.windows.perturb(t) }

// graced reports whether instant t falls inside a settle window.
func (c *censusChecker) graced(t float64) bool { return c.windows.graced(t) }

func (c *censusChecker) observe(t float64, census int) {
	c.observed++
	if c.minC == -1 || census < c.minC {
		c.minC = census
	}
	if census > c.maxC {
		c.maxC = census
	}
	if c.bounds.Check(census) {
		return
	}
	c.lastBad = t
	if c.graced(t) {
		return
	}
	if len(c.violations) >= maxViolations {
		c.truncated++
		return
	}
	c.violations = append(c.violations, Violation{
		Engine: c.engine, Kind: "census", At: t,
		Detail: fmt.Sprintf("%d privileged processes, outside %v (settled)", census, c.bounds),
	})
}

// finish folds the checker's outcome into res.
func (c *censusChecker) finish(res *EngineResult) {
	res.Observations = c.observed
	res.MinCensus = c.minC
	res.MaxCensus = c.maxC
	res.LastBad = c.lastBad
	res.Violations = append(res.Violations, c.violations...)
	if c.truncated > 0 {
		res.Violations = append(res.Violations, Violation{
			Engine: c.engine, Kind: "census", At: -1,
			Detail: fmt.Sprintf("%d further census violations truncated", c.truncated),
		})
	}
}
