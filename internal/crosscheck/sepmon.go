// Token-separation monitoring: the graceful-handover geometry behind
// Theorem 3. In a legitimate SSRmin configuration the primary and
// secondary token holders are the same process or ring neighbors, so the
// ring distance between them — the handover gap Dastidar & Herman bound
// for their unidirectional rings — must settle to at most one hop. A
// larger settled separation means a token escaped the handshake: the two
// privileges circulate independently, which the census alone cannot see
// (it still counts two holders).
package crosscheck

import (
	"fmt"

	"ssrmin/internal/core"
	"ssrmin/internal/statemodel"
)

// settleWindows tracks perturbation instants and answers whether an
// instant is inside a settle window. Both ends are closed: an instant
// exactly on the deadline (t == perturb + grace) is still graced,
// matching the LinkMonitor's tolerance of exact arrival-instant ties —
// invariants are required to hold strictly after the window, and every
// checker sharing a windows instance applies the same boundary rule.
type settleWindows struct {
	grace    float64
	perturbs []float64 // nondecreasing perturbation instants
}

// perturb opens a settle window at instant t.
func (w *settleWindows) perturb(t float64) { w.perturbs = append(w.perturbs, t) }

// graced reports whether instant t falls inside a settle window.
func (w *settleWindows) graced(t float64) bool {
	for i := len(w.perturbs) - 1; i >= 0; i-- {
		if w.perturbs[i] <= t {
			return t-w.perturbs[i] <= w.grace
		}
	}
	return false
}

// SeparationMonitor verifies the separation invariant over one engine's
// run: outside settle windows, whenever the configuration has exactly one
// primary and exactly one secondary token holder, the ring distance
// between them must not exceed the scenario's MaxSeparation. Instants
// with any other holder multiplicity are skipped — the census checker
// owns those.
type SeparationMonitor struct {
	engine     string
	max        int
	windows    *settleWindows
	observed   int
	maxSeen    int // largest settled separation observed
	violations []Violation
	truncated  int
}

// NewSeparationMonitor returns a monitor enforcing distance ≤ max outside
// the settle windows of w. The windows instance is shared with the
// engine's census checker so both invariants see identical grace
// boundaries.
func NewSeparationMonitor(engine string, max int, w *settleWindows) *SeparationMonitor {
	return &SeparationMonitor{engine: engine, max: max, windows: w, maxSeen: -1}
}

// Observe feeds one instant: the ring membership in ring order and the
// primary/secondary holder sets. Holder sets that are not singletons are
// skipped, as is a holder that is not (yet) a ring member mid-churn.
func (m *SeparationMonitor) Observe(t float64, members, primaries, secondaries []int) {
	if len(primaries) != 1 || len(secondaries) != 1 {
		return
	}
	dist := ringDistance(members, primaries[0], secondaries[0])
	if dist < 0 {
		return
	}
	m.observed++
	if m.windows.graced(t) {
		return
	}
	if dist > m.maxSeen {
		m.maxSeen = dist
	}
	if dist <= m.max {
		return
	}
	if len(m.violations) >= maxViolations {
		m.truncated++
		return
	}
	m.violations = append(m.violations, Violation{
		Engine: m.engine, Kind: "separation", At: t,
		Detail: fmt.Sprintf("primary holder %d and secondary holder %d are %d hops apart (settled bound %d)",
			primaries[0], secondaries[0], dist, m.max),
	})
}

// finish folds the monitor's outcome into res.
func (m *SeparationMonitor) finish(res *EngineResult) {
	res.SeparationObs = m.observed
	res.MaxSeparation = m.maxSeen
	res.Violations = append(res.Violations, m.violations...)
	if m.truncated > 0 {
		res.Violations = append(res.Violations, Violation{
			Engine: m.engine, Kind: "separation", At: -1,
			Detail: fmt.Sprintf("%d further separation violations truncated", m.truncated),
		})
	}
}

// ringDistance returns the minimal hop count between nodes a and b along
// the ring given by members (the membership in ring order), or -1 if
// either node is not a member.
func ringDistance(members []int, a, b int) int {
	ia, ib := -1, -1
	for i, v := range members {
		if v == a {
			ia = i
		}
		if v == b {
			ib = i
		}
	}
	if ia < 0 || ib < 0 {
		return -1
	}
	d := ia - ib
	if d < 0 {
		d = -d
	}
	if back := len(members) - d; back < d {
		return back
	}
	return d
}

// holdersOf splits a configuration into its primary- and secondary-token
// holder sets (the state tier's analogue of Ring.Holders).
func holdersOf(c statemodel.Config[core.State]) (prim, sec []int) {
	for i := range c {
		v := c.View(i)
		if core.HasPrimary(v) {
			prim = append(prim, i)
		}
		if core.HasSecondary(v) {
			sec = append(sec, i)
		}
	}
	return prim, sec
}
