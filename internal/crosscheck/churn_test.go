package crosscheck

import (
	"fmt"
	"strings"
	"testing"

	"ssrmin/internal/scenario"
)

// TestChurnScenarioConverges drives joins, a leave, and a splice through
// the msgnet and sharded-live tiers: the census, link-rule, and
// separation invariants must all hold once the ring re-settles.
func TestChurnScenarioConverges(t *testing.T) {
	s := Scenario{
		Name:    "churn-storm",
		N:       5,
		K:       10,
		Seed:    3,
		Horizon: 40,
		Settle:  15,
		Link:    scenario.Link{Delay: 0.01, Jitter: 0.002},
		Engines: []string{EngineMsgnet, EngineLive},
		Faults: []scenario.Fault{
			{At: 4, Type: "join", Node: 1},
			{At: 8, Type: "leave", Node: 3},
			{At: 12, Type: "splice", Node: 0, Count: 1},
		},
	}
	rep, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("churn scenario violated invariants: %v", rep.Violations())
	}
	for _, e := range rep.Engines {
		if e.SeparationObs == 0 {
			t.Errorf("%s: separation invariant never evaluable", e.Engine)
		}
		if e.MaxSeparation > 1 {
			t.Errorf("%s: settled separation reached %d", e.Engine, e.MaxSeparation)
		}
	}
}

// TestChurnCutOfSplicedEdgeIsNoop schedules a cut on an edge a splice
// already removed; the msgnet tier must treat it as a no-op.
func TestChurnCutOfSplicedEdgeIsNoop(t *testing.T) {
	s := Scenario{
		Name:    "cut-after-splice",
		N:       5,
		K:       10,
		Seed:    1,
		Horizon: 30,
		Settle:  12,
		Link:    scenario.Link{Delay: 0.01},
		Engines: []string{EngineMsgnet},
		Faults: []scenario.Fault{
			{At: 4, Type: "splice", Node: 1, Count: 1},
			{At: 8, Type: "cut", Link: 2},
			{At: 9, Type: "heal", Link: 2},
		},
	}
	rep, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("violations: %v", rep.Violations())
	}
}

func TestValidateChurnRejections(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Scenario)
		want string
	}{
		{"legacy live backend", func(s *Scenario) {
			s.LiveLegacy = true
			s.Engines = []string{EngineLive}
			s.Faults = []scenario.Fault{{At: 1, Type: "join", Node: 0}}
		}, "liveLegacy"},
		{"K below churn max size", func(s *Scenario) {
			s.K = 5
			s.Faults = []scenario.Fault{{At: 1, Type: "join", Node: 0}}
		}, "max ring size"},
		{"unrealizable plan", func(s *Scenario) {
			s.Faults = []scenario.Fault{{At: 1, Type: "leave", Node: 0}}
		}, "removes node 0"},
		{"negative separation bound", func(s *Scenario) {
			s.MaxSeparation = -1
		}, "maxSeparation"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := clean(4, 1)
			tc.mut(&s)
			err := s.Validate()
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("Validate err = %v, want substring %q", err, tc.want)
			}
		})
	}
}

// TestGracedSettleDeadlineInclusive pins the settle-window boundary
// semantics: an instant exactly on the deadline (perturb + grace) is
// still graced — the same closed-boundary rule the link monitor applies
// to exact arrival-instant ties — and the first violating instant is
// strictly after it.
func TestGracedSettleDeadlineInclusive(t *testing.T) {
	chk := newCensusChecker(EngineMsgnet, 5)
	chk.perturb(10)
	chk.observe(15, 0) // t == deadline: inside the window
	if len(chk.violations) != 0 {
		t.Fatalf("violation at the settle deadline: %v", chk.violations)
	}
	chk.observe(15.000001, 0) // strictly past the deadline
	if len(chk.violations) != 1 {
		t.Fatalf("no violation past the deadline: %v", chk.violations)
	}

	sep := NewSeparationMonitor(EngineMsgnet, 1, chk.windows)
	members := []int{0, 1, 2, 3, 4, 5}
	sep.Observe(15, members, []int{0}, []int{3}) // same deadline, same verdict
	if len(sep.violations) != 0 {
		t.Fatalf("separation violation at the settle deadline: %v", sep.violations)
	}
	sep.Observe(15.000001, members, []int{0}, []int{3})
	if len(sep.violations) != 1 {
		t.Fatalf("no separation violation past the deadline: %v", sep.violations)
	}
}

func TestSeparationMonitorSemantics(t *testing.T) {
	w := &settleWindows{grace: 1}
	m := NewSeparationMonitor(EngineState, 1, w)
	members := []int{0, 1, 2, 3, 4}

	m.Observe(5, members, []int{0}, []int{4}) // wraparound neighbors: distance 1
	m.Observe(6, members, []int{2}, []int{2}) // same holder: distance 0
	m.Observe(7, members, []int{0, 1}, []int{2})
	m.Observe(7.5, members, []int{0}, nil) // non-singleton sets: skipped
	m.Observe(8, members, []int{9}, []int{0})
	if m.observed != 2 || len(m.violations) != 0 {
		t.Fatalf("observed=%d violations=%v, want 2 clean observations", m.observed, m.violations)
	}

	m.Observe(9, members, []int{0}, []int{2}) // distance 2: a token escaped
	if len(m.violations) != 1 || m.violations[0].Kind != "separation" {
		t.Fatalf("violations = %v, want one separation violation", m.violations)
	}
	w.perturb(10)
	m.Observe(10.5, members, []int{0}, []int{2}) // same distance, but graced
	if len(m.violations) != 1 {
		t.Fatalf("graced observation reported: %v", m.violations)
	}
	if m.maxSeen != 2 {
		t.Fatalf("maxSeen = %d, want 2", m.maxSeen)
	}
}

// TestShrinkPreservesViolationSignature feeds the greedy loop a synthetic
// landscape where fault 0 causes a census violation, fault 1 a link
// violation, and fault 2 nothing. A signature-blind shrinker would drop
// fault 0 (the scenario "still fails" via the link violation); the
// shrinker must instead remove only the inert fault and keep both
// violations reproducible.
func TestShrinkPreservesViolationSignature(t *testing.T) {
	s := clean(5, 1)
	s.Engines = []string{EngineMsgnet}
	s.Faults = []scenario.Fault{
		{At: 1, Type: "states", Count: 1},
		{At: 2, Type: "caches", Count: 1},
		{At: 3, Type: "loss-on"},
	}
	runs := 0
	fake := func(c Scenario) (Report, error) {
		runs++
		res := EngineResult{Engine: EngineMsgnet}
		for _, f := range c.Faults {
			switch f.Type {
			case "states":
				res.Violations = append(res.Violations, Violation{Engine: EngineMsgnet, Kind: "census", At: f.At})
			case "caches":
				res.Violations = append(res.Violations, Violation{Engine: EngineMsgnet, Kind: "link", At: f.At})
			}
		}
		return Report{Scenario: c, Engines: []EngineResult{res}}, nil
	}
	shrunk, spent := shrinkWith(s, 100, fake)
	if spent != runs {
		t.Fatalf("spent = %d but runner ran %d times", spent, runs)
	}
	kinds := map[string]bool{}
	for _, f := range shrunk.Faults {
		kinds[f.Type] = true
	}
	if !kinds["states"] || !kinds["caches"] {
		t.Fatalf("shrink traded a violation away: remaining faults %+v", shrunk.Faults)
	}
	if kinds["loss-on"] {
		t.Fatalf("shrink kept the inert fault: %+v", shrunk.Faults)
	}
}

// TestShrinkWithRespectsBudget: the runner must never be invoked more
// than budget times, and a budget too small to even confirm the original
// violation returns the scenario unchanged.
func TestShrinkWithRespectsBudget(t *testing.T) {
	s := clean(4, 1)
	s.Faults = []scenario.Fault{{At: 1, Type: "states", Count: 1}}
	runs := 0
	fake := func(c Scenario) (Report, error) {
		runs++
		return Report{Scenario: c, Engines: []EngineResult{{
			Engine:     EngineMsgnet,
			Violations: []Violation{{Engine: EngineMsgnet, Kind: "census", At: 1}},
		}}}, nil
	}
	for _, budget := range []int{0, 1, 3} {
		runs = 0
		_, spent := shrinkWith(s, budget, fake)
		if runs > budget || spent != runs {
			t.Fatalf("budget %d: runner ran %d times, spent %d", budget, runs, spent)
		}
	}
}

// TestChurnTiersAgree sweeps a few seeds over a churn script and demands
// a unanimous verdict from the msgnet and sharded-live tiers.
func TestChurnTiersAgree(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			s := Scenario{
				Name:    "churn-agree",
				N:       6,
				K:       12,
				Seed:    seed,
				Horizon: 30,
				Settle:  12,
				Link:    scenario.Link{Delay: 0.01, Jitter: 0.002, Loss: 0.02},
				Engines: []string{EngineMsgnet, EngineLive},
				Faults: []scenario.Fault{
					{At: 3, Type: "join", Node: 2},
					{At: 6, Type: "splice", Node: 1, Count: 2},
				},
			}
			rep, err := Run(s)
			if err != nil {
				t.Fatal(err)
			}
			if !rep.OK() {
				t.Fatalf("violations: %v (diff: %s)", rep.Violations(), rep.Diff())
			}
		})
	}
}
