// Scenario shrinking and regression-fixture persistence. When the soak
// harness finds a violating scenario it greedily minimizes it — fewer
// engines, fewer faults, a shorter horizon, fewer nodes, fewer fault
// coins — while the violation persists, then writes the minimal repro to
// testdata/repros/ where go test replays it forever.
package crosscheck

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"ssrmin/internal/scenario"
)

// Shrink greedily reduces a violating scenario to a smaller one that
// still violates, spending at most budget re-runs (each candidate costs
// one run). It returns the smallest violating scenario found and the
// number of runs spent. sc must already be a violating scenario; if it is
// not, Shrink returns it unchanged.
//
// Shrink preserves the violation, not just "a" violation: every candidate
// must re-exhibit the full (engine, kind) signature of the original run,
// so a greedy removal cannot trade the bug being minimized for a
// different one (e.g. drop the fault behind a link violation because the
// shorter scenario still breaks the census).
func Shrink(sc Scenario, budget int) (Scenario, int) {
	return shrinkWith(sc, budget, Run)
}

// violationSignature is the set of (engine, kind) pairs of a report.
func violationSignature(rep Report) map[[2]string]bool {
	sig := map[[2]string]bool{}
	for _, v := range rep.Violations() {
		sig[[2]string{v.Engine, v.Kind}] = true
	}
	return sig
}

// shrinkWith is Shrink with an injectable runner, for testing the greedy
// loop against synthetic violation landscapes.
func shrinkWith(sc Scenario, budget int, run func(Scenario) (Report, error)) (Scenario, int) {
	if err := sc.Validate(); err != nil {
		return sc, 0
	}
	if budget < 1 {
		return sc, 0
	}
	spent := 1
	rep0, err := run(sc)
	if err != nil || rep0.OK() {
		return sc, spent
	}
	target := violationSignature(rep0)
	fails := func(c Scenario) bool {
		if spent >= budget {
			return false
		}
		spent++
		rep, err := run(c)
		if err != nil || rep.OK() {
			return false
		}
		sig := violationSignature(rep)
		for k := range target {
			if !sig[k] {
				return false
			}
		}
		return true
	}

	// Keep only the engines that actually violate: re-running the clean
	// tiers adds nothing to the repro.
	{
		var bad []string
		for _, e := range rep0.Engines {
			if !e.OK() {
				bad = append(bad, e.Engine)
			}
		}
		if len(bad) > 0 && len(bad) < len(sc.Engines) {
			cand := sc
			cand.Engines = bad
			if fails(cand) {
				sc = cand
			}
		}
	}

	for pass := 0; pass < 4; pass++ {
		improved := false
		try := func(mut func(*Scenario)) {
			cand := sc
			cand.Faults = cloneFaults(sc.Faults)
			cand.Engines = append([]string(nil), sc.Engines...)
			mut(&cand)
			if cand.Validate() == nil && fails(cand) {
				sc = cand
				improved = true
			}
		}
		for i := len(sc.Faults) - 1; i >= 0; i-- {
			i := i
			try(func(c *Scenario) { c.Faults = append(c.Faults[:i], c.Faults[i+1:]...) })
		}
		try(func(c *Scenario) {
			c.Horizon /= 2
			c.Settle /= 2
			c.Steps /= 2
			c.Faults = dropLateFaults(c.Faults, c.Horizon)
		})
		try(func(c *Scenario) {
			c.N--
			if c.K <= c.N {
				c.K = c.N + 1
			}
			c.Faults = clampFaultLinks(c.Faults, c.N)
			c.Steps = 0 // re-derive from the smaller ring's bound
		})
		try(func(c *Scenario) { c.Link.Loss = 0 })
		try(func(c *Scenario) { c.Link.Corrupt = 0 })
		try(func(c *Scenario) { c.Link.Dup = 0 })
		try(func(c *Scenario) { c.Link.Jitter = 0 })
		if !improved || spent >= budget {
			break
		}
	}
	return sc, spent
}

func cloneFaults(fs []scenario.Fault) []scenario.Fault { return append([]scenario.Fault(nil), fs...) }

func dropLateFaults(fs []scenario.Fault, horizon float64) []scenario.Fault {
	var out []scenario.Fault
	for _, f := range fs {
		if f.At <= horizon {
			out = append(out, f)
		}
	}
	return out
}

func clampFaultLinks(fs []scenario.Fault, n int) []scenario.Fault {
	var out []scenario.Fault
	for _, f := range fs {
		if (f.Type == "cut" || f.Type == "heal") && f.Link >= n {
			continue
		}
		out = append(out, f)
	}
	return out
}

// Repro is a persisted regression fixture: a scenario that once violated
// an invariant, plus its provenance. After the fix, replaying the
// scenario must be clean, which TestReproFixturesStayFixed asserts.
type Repro struct {
	// Note describes the bug the scenario caught.
	Note string `json:"note"`
	// Found records how the scenario was discovered (tool, sweep).
	Found string `json:"found,omitempty"`
	// Scenario is the (usually shrunk) violating scenario.
	Scenario Scenario `json:"scenario"`
}

// WriteRepro persists r under dir as <name>-seed<seed>.json and returns
// the path. An existing fixture of the same name is overwritten.
func WriteRepro(dir string, r Repro) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", fmt.Errorf("crosscheck: repro dir: %w", err)
	}
	name := fmt.Sprintf("%s-seed%d.json", sanitize(r.Scenario.Name), r.Scenario.Seed)
	path := filepath.Join(dir, name)
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(r); err != nil {
		return "", fmt.Errorf("crosscheck: encode repro: %w", err)
	}
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		return "", fmt.Errorf("crosscheck: write repro: %w", err)
	}
	return path, nil
}

// LoadRepros reads every *.json fixture under dir, in name order.
// Decoding is strict: an unknown field in a fixture is an error, not a
// silently ignored key.
func LoadRepros(dir string) ([]Repro, error) {
	entries, err := os.ReadDir(dir)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("crosscheck: repro dir: %w", err)
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".json") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	var out []Repro
	for _, name := range names {
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			return nil, fmt.Errorf("crosscheck: read repro %s: %w", name, err)
		}
		dec := json.NewDecoder(bytes.NewReader(data))
		dec.DisallowUnknownFields()
		var r Repro
		if err := dec.Decode(&r); err != nil {
			return nil, fmt.Errorf("crosscheck: repro %s: %w", name, err)
		}
		out = append(out, r)
	}
	return out, nil
}

func sanitize(name string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_':
			return r
		default:
			return '-'
		}
	}, name)
}
