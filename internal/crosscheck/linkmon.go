// Link-model conformance monitoring: Section 5's rule that "each
// communication link can transmit only one message in each direction at a
// time", checked from outside the network implementation via the tap.
package crosscheck

import (
	"fmt"

	"ssrmin/internal/msgnet"
)

// maxViolations bounds the violations any single monitor or checker
// records; a broken run produces one violation per event, and the first
// few dozen carry all the signal.
const maxViolations = 64

// LinkMonitor watches a Network's tap stream and confirms that every
// directed link carries at most one frame at a time: a send may be
// admitted only when every previously admitted frame — duplicates
// included — has already arrived. Admissions that tie exactly with the
// last arrival's instant are legal (the medium frees at the arrival
// instant), which matters because the tap reports a delivery only when
// its event is processed, possibly after a same-instant send.
//
// The monitor deliberately recomputes link occupancy from first
// principles (send/dup/deliver events) instead of trusting the network's
// busyUntil bookkeeping — it exists to catch exactly the class of bug
// where that bookkeeping and the paper's model disagree, as the
// duplicated-delivery bug did.
type LinkMonitor struct {
	links      map[[2]int]*linkOccupancy
	violations []Violation
	truncated  int
}

type linkOccupancy struct {
	// outstanding counts admitted frames (sends + scheduled duplicates)
	// not yet delivered.
	outstanding int
	// pending records admissions that happened while frames were still
	// outstanding; each is confirmed as a violation by the first
	// outstanding delivery strictly after its instant, or cleared by
	// deliveries at exactly its instant.
	pending []pendingAdmission
}

type pendingAdmission struct {
	at        msgnet.Time
	remaining int // outstanding frames that must land at exactly `at`
}

// NewLinkMonitor returns an empty monitor; install its Tap on a Network.
func NewLinkMonitor() *LinkMonitor {
	return &LinkMonitor{links: map[[2]int]*linkOccupancy{}}
}

// Tap consumes one network tap event. Install as (or call from) the
// Network's Tap hook.
func (m *LinkMonitor) Tap(e msgnet.TapEvent) {
	switch e.Kind {
	case msgnet.TapSend, msgnet.TapDup, msgnet.TapDeliver:
	default:
		return
	}
	key := [2]int{e.From, e.Node}
	l := m.links[key]
	if l == nil {
		l = &linkOccupancy{}
		m.links[key] = l
	}
	switch e.Kind {
	case msgnet.TapSend:
		if l.outstanding > 0 {
			l.pending = append(l.pending, pendingAdmission{at: e.At, remaining: l.outstanding})
		}
		l.outstanding++
	case msgnet.TapDup:
		if l.outstanding == 0 {
			m.report(Violation{
				Engine: EngineMsgnet, Kind: "link", At: float64(e.At),
				Detail: fmt.Sprintf("link %d->%d: duplicate scheduled with no frame in flight", e.From, e.Node),
			})
			return
		}
		l.outstanding++
	case msgnet.TapDeliver:
		if l.outstanding == 0 {
			m.report(Violation{
				Engine: EngineMsgnet, Kind: "link", At: float64(e.At),
				Detail: fmt.Sprintf("link %d->%d: delivery with no admitted frame", e.From, e.Node),
			})
			return
		}
		if len(l.pending) > 0 {
			p := &l.pending[0]
			if e.At > p.at {
				m.report(Violation{
					Engine: EngineMsgnet, Kind: "link", At: float64(p.at),
					Detail: fmt.Sprintf("link %d->%d: send admitted at t=%v while a frame still in transit arrived at t=%v (one-message-per-direction rule)",
						e.From, e.Node, p.at, e.At),
				})
				l.pending = l.pending[1:]
			} else {
				p.remaining--
				if p.remaining == 0 {
					l.pending = l.pending[1:]
				}
			}
		}
		l.outstanding--
	}
}

func (m *LinkMonitor) report(v Violation) {
	if len(m.violations) >= maxViolations {
		m.truncated++
		return
	}
	m.violations = append(m.violations, v)
}

// Finish returns the confirmed violations. Admissions still awaiting a
// confirming delivery when the run ends are dropped: the horizon cut the
// evidence short, so they are not reported.
func (m *LinkMonitor) Finish() []Violation {
	out := append([]Violation(nil), m.violations...)
	if m.truncated > 0 {
		out = append(out, Violation{
			Engine: EngineMsgnet, Kind: "link", At: -1,
			Detail: fmt.Sprintf("%d further link violations truncated", m.truncated),
		})
	}
	return out
}
