package netring

import (
	"net"
	"testing"
	"time"

	"ssrmin/internal/core"
)

func startRing(t *testing.T, n int) *Ring {
	t.Helper()
	r, err := StartLocalRing(n, n+1, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(r.Stop)
	return r
}

func TestStartLocalRingValidation(t *testing.T) {
	if _, err := StartLocalRing(2, 3, time.Millisecond); err == nil {
		t.Error("n=2 accepted")
	}
	if _, err := StartLocalRing(5, 5, time.Millisecond); err == nil {
		t.Error("K=n accepted")
	}
}

func TestNewNodeValidation(t *testing.T) {
	if _, err := NewNode(Config{ID: 0, N: 5, K: 6}, core.State{}); err == nil {
		t.Error("missing listener accepted")
	}
	l, _ := net.Listen("tcp", "127.0.0.1:0")
	defer l.Close()
	if _, err := NewNode(Config{ID: 0, N: 2, K: 6, Listener: l}, core.State{}); err == nil {
		t.Error("n=2 accepted")
	}
}

// TestCirculationOverTCP is the end-to-end deployment test: the privilege
// must visit every node over real sockets.
func TestCirculationOverTCP(t *testing.T) {
	r := startRing(t, 5)
	visited := map[int]bool{}
	deadline := time.Now().Add(10 * time.Second)
	for len(visited) < 5 && time.Now().Before(deadline) {
		for _, h := range r.Holders() {
			visited[h] = true
		}
		time.Sleep(500 * time.Microsecond)
	}
	if len(visited) != 5 {
		t.Fatalf("privilege visited %d/5 nodes over TCP: %v", len(visited), visited)
	}
	if r.RuleExecutions() == 0 {
		t.Fatal("no rules executed")
	}
}

// TestMutualInclusionOverTCP samples the census: with model-gap-tolerant
// predicates it must stay within [1, 2] even over real sockets with real
// latencies.
func TestMutualInclusionOverTCP(t *testing.T) {
	r := startRing(t, 5)
	time.Sleep(50 * time.Millisecond) // let the first announcements land
	min, max := 1<<30, -1
	for i := 0; i < 2000; i++ {
		c := r.Census()
		if c < min {
			min = c
		}
		if c > max {
			max = c
		}
		time.Sleep(200 * time.Microsecond)
	}
	if min < 1 {
		t.Fatalf("census dipped to %d over TCP", min)
	}
	if max > 2 {
		t.Fatalf("census rose to %d over TCP", max)
	}
}

// TestInjectRecoversOverTCP hits a live TCP node with a transient fault
// and verifies the ring returns to the 1–2 regime.
func TestInjectRecoversOverTCP(t *testing.T) {
	r := startRing(t, 5)
	time.Sleep(50 * time.Millisecond)
	r.Nodes[2].Inject(core.State{X: 4, RTS: true, TRA: true})
	r.Nodes[4].Inject(core.State{X: 1, TRA: true})
	time.Sleep(300 * time.Millisecond) // recovery
	min, max := 1<<30, -1
	for i := 0; i < 500; i++ {
		c := r.Census()
		if c < min {
			min = c
		}
		if c > max {
			max = c
		}
		time.Sleep(200 * time.Microsecond)
	}
	if min < 1 || max > 2 {
		t.Fatalf("census [%d,%d] after fault injection", min, max)
	}
}

// TestNodeRestartHeals stops one node entirely and starts a replacement on
// the same address with a garbage state: the ring must resume circulating.
func TestNodeRestartHeals(t *testing.T) {
	r := startRing(t, 5)
	time.Sleep(50 * time.Millisecond)

	// Kill node 3 and remember its address.
	old := r.Nodes[3]
	addr := old.Addr()
	old.Stop()
	time.Sleep(50 * time.Millisecond)

	// Restart on the same address with garbage state.
	l, err := net.Listen("tcp", addr)
	if err != nil {
		t.Skipf("could not rebind %s: %v", addr, err)
	}
	repl, err := NewNode(Config{
		ID: 3, N: 5, K: 6,
		Listener: l,
		PredAddr: r.Nodes[2].Addr(),
		SuccAddr: r.Nodes[4].Addr(),
		Refresh:  10 * time.Millisecond,
	}, core.State{X: 3, RTS: true})
	if err != nil {
		t.Fatal(err)
	}
	repl.Start()
	r.Nodes[3] = repl

	// Circulation must resume and reach every node again.
	time.Sleep(300 * time.Millisecond)
	visited := map[int]bool{}
	deadline := time.Now().Add(10 * time.Second)
	for len(visited) < 5 && time.Now().Before(deadline) {
		for _, h := range r.Holders() {
			visited[h] = true
		}
		time.Sleep(500 * time.Microsecond)
	}
	if len(visited) != 5 {
		t.Fatalf("circulation did not resume after node restart: %v", visited)
	}
}

func TestStopIdempotent(t *testing.T) {
	r := startRing(t, 3)
	r.Stop()
	r.Stop()
}
