// Package netring deploys SSRmin over real TCP sockets: each node is an
// independent network service that listens for its neighbors' state
// announcements and pushes its own — the cached sensornet transform
// (Algorithm 4) with newline-delimited JSON over TCP in place of sensor
// broadcasts. It is the closest thing in this repository to the paper's
// wireless-sensor-node deployment: nodes share nothing but the wire, and
// every guarantee has to come from the algorithm.
//
//   - Announcements are pushed on change and re-pushed periodically, so
//     dropped connections and lost updates heal (self-stabilization needs
//     the periodic refresh, exactly as in Section 5).
//   - Outgoing connections reconnect with backoff; a down neighbor stalls
//     circulation but the local token predicates keep working off the
//     last cached state.
//   - Token predicates are evaluated on the node's own state and caches,
//     as everywhere else in this repository.
//
// The nodes of one ring can live in one process (see StartLocalRing, used
// by the tests), several processes, or several machines.
package netring

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"sync"
	"time"

	"ssrmin/internal/core"
	"ssrmin/internal/statemodel"
)

// Announcement is the wire message: one node's current state.
type Announcement struct {
	// From is the sender's ring index.
	From int `json:"from"`
	// X, RTS, TRA mirror core.State.
	X   int  `json:"x"`
	RTS bool `json:"rts"`
	TRA bool `json:"tra"`
}

// Config wires one node into the ring.
type Config struct {
	// ID is the node's ring index; N the ring size; K the counter space.
	ID, N, K int
	// Listener accepts neighbor connections. The caller owns address
	// selection (use net.Listen("tcp", "127.0.0.1:0") for tests).
	Listener net.Listener
	// PredAddr and SuccAddr are the neighbors' listen addresses.
	PredAddr, SuccAddr string
	// Refresh is the periodic announcement interval (default 50ms).
	Refresh time.Duration
	// DialTimeout bounds dialing and writes (default 250ms); failed
	// neighbors are retried on the refresh tick.
	DialTimeout time.Duration
	// MinInterval paces announcements (default 1ms): at most one
	// announcement per interval leaves the node, the way a real sensor
	// paces its radio. Changes made in between coalesce into the next
	// announcement (only the latest state matters).
	MinInterval time.Duration
}

// Node is one SSRmin process served over TCP.
type Node struct {
	cfg Config
	alg *core.Algorithm

	mu        sync.Mutex
	state     core.State
	cachePred core.State
	cacheSucc core.State
	execs     int

	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup

	// dirty wakes the announcer; all writes flow through the single
	// announcer goroutine so that announcements leave in state order (a
	// stale state must never overwrite a newer one in a neighbor's cache).
	dirty chan struct{}

	outPred net.Conn
	outSucc net.Conn
}

// NewNode creates a node with the given initial state. Caches start as the
// node's own state (incoherent until the first announcements arrive —
// self-stabilization covers the difference).
func NewNode(cfg Config, init core.State) (*Node, error) {
	if cfg.Listener == nil {
		return nil, fmt.Errorf("netring: node %d needs a listener", cfg.ID)
	}
	if cfg.N < 3 || cfg.K <= cfg.N {
		return nil, fmt.Errorf("netring: bad ring parameters n=%d K=%d", cfg.N, cfg.K)
	}
	if cfg.Refresh == 0 {
		cfg.Refresh = 50 * time.Millisecond
	}
	if cfg.DialTimeout == 0 {
		cfg.DialTimeout = 250 * time.Millisecond
	}
	if cfg.MinInterval == 0 {
		cfg.MinInterval = time.Millisecond
	}
	n := &Node{
		cfg:       cfg,
		alg:       core.New(cfg.N, cfg.K),
		state:     init,
		cachePred: init,
		cacheSucc: init,
		dirty:     make(chan struct{}, 1),
	}
	return n, nil
}

// Start launches the accept loop and the announcer.
func (n *Node) Start() {
	n.ctx, n.cancel = context.WithCancel(context.Background())
	n.wg.Add(2)
	go n.acceptLoop()
	go n.announceLoop()
}

// Stop closes the listener and all connections and waits for goroutines.
func (n *Node) Stop() {
	if n.cancel == nil {
		return
	}
	n.cancel()
	n.cfg.Listener.Close()
	n.wg.Wait()
	if n.outPred != nil {
		n.outPred.Close()
	}
	if n.outSucc != nil {
		n.outSucc.Close()
	}
}

// Addr returns the node's listen address.
func (n *Node) Addr() string { return n.cfg.Listener.Addr().String() }

func (n *Node) pred() int { return (n.cfg.ID - 1 + n.cfg.N) % n.cfg.N }
func (n *Node) succ() int { return (n.cfg.ID + 1) % n.cfg.N }

// Snapshot returns the node's state and caches.
func (n *Node) Snapshot() (self, cachePred, cacheSucc core.State) {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.state, n.cachePred, n.cacheSucc
}

// View builds the node's current view.
func (n *Node) View() statemodel.View[core.State] {
	self, p, s := n.Snapshot()
	return statemodel.View[core.State]{I: n.cfg.ID, N: n.cfg.N, Self: self, Pred: p, Succ: s}
}

// Privileged reports whether the node currently holds a token.
func (n *Node) Privileged() bool { return core.HasToken(n.View()) }

// RuleExecutions returns how many rules the node has executed.
func (n *Node) RuleExecutions() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.execs
}

// Inject overwrites the local state — a live transient fault.
func (n *Node) Inject(s core.State) {
	n.mu.Lock()
	n.state = s
	n.mu.Unlock()
	n.signal()
}

// signal wakes the announcer (coalescing: one pending wake suffices,
// because the announcer always reads the latest state).
func (n *Node) signal() {
	select {
	case n.dirty <- struct{}{}:
	default:
	}
}

// acceptLoop accepts neighbor connections and spawns a reader per
// connection.
func (n *Node) acceptLoop() {
	defer n.wg.Done()
	for {
		conn, err := n.cfg.Listener.Accept()
		if err != nil {
			return // listener closed by Stop
		}
		n.wg.Add(1)
		go n.readLoop(conn)
	}
}

// readLoop consumes announcements from one incoming connection.
func (n *Node) readLoop(conn net.Conn) {
	defer n.wg.Done()
	defer conn.Close()
	go func() { // close the connection when the node stops
		<-n.ctx.Done()
		conn.Close()
	}()
	sc := bufio.NewScanner(conn)
	for sc.Scan() {
		var a Announcement
		if err := json.Unmarshal(sc.Bytes(), &a); err != nil {
			continue // corrupt frame: drop; refresh will resend
		}
		n.receive(a)
	}
}

// receive applies Algorithm 4's message action.
func (n *Node) receive(a Announcement) {
	s := core.State{X: a.X, RTS: a.RTS, TRA: a.TRA}
	if s.X < 0 || s.X >= n.cfg.K {
		return // out-of-domain payload: drop
	}
	n.mu.Lock()
	switch a.From {
	case n.pred():
		n.cachePred = s
	case n.succ():
		n.cacheSucc = s
	default:
		n.mu.Unlock()
		return
	}
	v := statemodel.View[core.State]{I: n.cfg.ID, N: n.cfg.N, Self: n.state, Pred: n.cachePred, Succ: n.cacheSucc}
	if rule := n.alg.EnabledRule(v); rule != 0 {
		n.state = n.alg.Apply(v, rule)
		n.execs++
	}
	n.mu.Unlock()
	n.signal()
}

// announceLoop is the single writer: it pushes the latest state to both
// neighbors whenever signalled and on every refresh tick. Serializing all
// writes through one goroutine guarantees announcements leave in state
// order over each (FIFO) TCP connection.
func (n *Node) announceLoop() {
	defer n.wg.Done()
	t := time.NewTicker(n.cfg.Refresh)
	defer t.Stop()
	n.announceNow()
	for {
		select {
		case <-n.ctx.Done():
			return
		case <-n.dirty:
			n.announceNow()
			// Pace the radio: coalesce further changes for MinInterval.
			select {
			case <-n.ctx.Done():
				return
			case <-time.After(n.cfg.MinInterval):
			}
		case <-t.C:
			n.announceNow()
		}
	}
}

// announceNow pushes the current state to both neighbors, (re)dialing as
// needed. A neighbor that cannot be reached right now is skipped; the
// ticker retries. Only the announcer goroutine calls it.
func (n *Node) announceNow() {
	n.mu.Lock()
	a := Announcement{From: n.cfg.ID, X: n.state.X, RTS: n.state.RTS, TRA: n.state.TRA}
	n.mu.Unlock()
	payload, err := json.Marshal(a)
	if err != nil {
		return
	}
	payload = append(payload, '\n')
	n.outPred = n.push(n.outPred, n.cfg.PredAddr, payload)
	n.outSucc = n.push(n.outSucc, n.cfg.SuccAddr, payload)
}

// push writes payload over conn, re-dialing addr when conn is nil or the
// write fails. It returns the (possibly new, possibly nil) connection.
func (n *Node) push(conn net.Conn, addr string, payload []byte) net.Conn {
	if n.ctx.Err() != nil {
		return conn
	}
	if conn == nil {
		c, err := net.DialTimeout("tcp", addr, n.cfg.DialTimeout)
		if err != nil {
			return nil
		}
		conn = c
	}
	conn.SetWriteDeadline(time.Now().Add(n.cfg.DialTimeout))
	if _, err := conn.Write(payload); err != nil {
		conn.Close()
		return nil
	}
	return conn
}

// Ring is a convenience handle over a set of in-process nodes.
type Ring struct {
	// Nodes holds the ring members by index.
	Nodes []*Node
}

// StartLocalRing builds and starts an n-node ring on loopback TCP with
// ephemeral ports, starting from the canonical legitimate configuration.
func StartLocalRing(n, k int, refresh time.Duration) (*Ring, error) {
	if n < 3 || k <= n {
		return nil, fmt.Errorf("netring: bad parameters n=%d K=%d", n, k)
	}
	listeners := make([]net.Listener, n)
	for i := range listeners {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			for _, l2 := range listeners[:i] {
				l2.Close()
			}
			return nil, err
		}
		listeners[i] = l
	}
	alg := core.New(n, k)
	init := alg.InitialLegitimate()
	r := &Ring{Nodes: make([]*Node, n)}
	for i := 0; i < n; i++ {
		node, err := NewNode(Config{
			ID: i, N: n, K: k,
			Listener: listeners[i],
			PredAddr: listeners[(i-1+n)%n].Addr().String(),
			SuccAddr: listeners[(i+1)%n].Addr().String(),
			Refresh:  refresh,
		}, init[i])
		if err != nil {
			return nil, err
		}
		r.Nodes[i] = node
	}
	for _, node := range r.Nodes {
		node.Start()
	}
	return r, nil
}

// Stop terminates every node.
func (r *Ring) Stop() {
	for _, n := range r.Nodes {
		n.Stop()
	}
}

// Census counts privileged nodes as seen through their own caches.
func (r *Ring) Census() int {
	count := 0
	for _, n := range r.Nodes {
		if n.Privileged() {
			count++
		}
	}
	return count
}

// Holders returns the privileged node indices.
func (r *Ring) Holders() []int {
	var out []int
	for i, n := range r.Nodes {
		if n.Privileged() {
			out = append(out, i)
		}
	}
	return out
}

// RuleExecutions sums rule executions across the ring.
func (r *Ring) RuleExecutions() int {
	total := 0
	for _, n := range r.Nodes {
		total += n.RuleExecutions()
	}
	return total
}
