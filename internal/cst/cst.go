// Package cst implements the cached sensornet transform (CST) of Herman
// (2003), reproduced as Algorithm 4 of the paper: the standard scheme that
// executes a state-reading-model algorithm in a message-passing network.
//
// Each node keeps a cache Z_i[v_k] of every neighbor's local state. On
// receipt of a ⟨state, q⟩ message it refreshes the cache entry, executes
// at most one enabled rule against the cached neighborhood, and announces
// its own (possibly updated) state to both neighbors; an interval timer
// also re-announces the state periodically so that lost messages and
// corrupted caches heal — the ingredient that preserves self-stabilization
// in a lossy network.
//
// Token predicates are evaluated against the node's own state and its
// *caches* — exactly the reading the model-gap discussion of Section 5 is
// about: between a state update and the delivery of its announcement the
// caches are incoherent, and a naive algorithm (plain Dijkstra SSToken)
// passes through instants with zero token holders (Figure 11). SSRmin's
// token conditions are designed so that some node always holds a token
// through those transient periods (Theorem 3).
package cst

import (
	"fmt"
	"math/rand"

	"ssrmin/internal/msgnet"
	"ssrmin/internal/statemodel"
)

// Node is the CST wrapper of one process: an msgnet.Handler executing the
// wrapped algorithm against cached neighbor states.
type Node[S comparable] struct {
	alg statemodel.Algorithm[S]
	id  int
	n   int
	// predID and succID are the ring neighbor ids, precomputed so the
	// per-message path (neighbor check, cache refresh, announce) never
	// pays the modulo.
	predID int
	succID int
	state  S
	// cachePred and cacheSucc are the cache Z_i: one slot per ring
	// neighbor, held as plain fields (a ring node has exactly two
	// neighbors) so the hot receive/execute path touches no map.
	cachePred S
	cacheSucc S
	refresh   msgnet.Time

	// Hold is the critical-section dwell time: how long the node sits on
	// an enabled rule before executing it, modelling the application work
	// a privileged node performs (e.g. the camera actively monitoring).
	// Zero means execute synchronously on receipt, the literal Algorithm 4.
	Hold        msgnet.Time
	holdPending bool

	// RuleExecutions counts rules executed by this node.
	RuleExecutions int
	// StaleFrames counts discarded deliveries: frames that arrived from a
	// node that is not (any longer) a ring neighbor, or while detached —
	// the residue of churn rewiring, already on the medium when the
	// topology changed.
	StaleFrames int
	// OnExecute, when non-nil, is invoked after the node executes a rule.
	OnExecute func(now msgnet.Time, rule int)
}

const (
	timerRefresh = 1
	timerExecute = 2
)

// NewNode creates a CST node for process id of alg. Seed the caches with
// SetCache before the simulation starts (NewRing does this for whole
// rings).
func NewNode[S comparable](alg statemodel.Algorithm[S], id int, init S, refresh msgnet.Time) *Node[S] {
	if refresh <= 0 {
		panic("cst: refresh interval must be positive")
	}
	n := alg.N()
	return &Node[S]{
		alg:     alg,
		id:      id,
		n:       n,
		predID:  (id - 1 + n) % n,
		succID:  (id + 1) % n,
		state:   init,
		refresh: refresh,
	}
}

// pred and succ return the ring neighbor ids.
func (nd *Node[S]) pred() int { return nd.predID }
func (nd *Node[S]) succ() int { return nd.succID }

// SetNeighbors rewires the node's ring neighbors (churn). The cache slots
// keep their previous contents: the node has not yet heard from its new
// neighbor, so its view of that side is arbitrary until the next
// announcement arrives — the Theorem 4 incoherence that the refresh timer
// heals, and the reason churn opens a settle window in the monitors.
func (nd *Node[S]) SetNeighbors(pred, succ int) {
	nd.predID = pred
	nd.succID = succ
}

// Detach removes the node from the ring (a leave, or a not-yet-joined
// spare). A detached node ignores deliveries and timers and announces to
// nobody; Start on a detached node is a no-op, so dormant spares consume
// no events and draw nothing from the RNG until they join.
func (nd *Node[S]) Detach() {
	nd.predID = -1
	nd.succID = -1
	nd.holdPending = false
}

// Detached reports whether the node is outside the ring.
func (nd *Node[S]) Detached() bool { return nd.predID < 0 }

// Neighbors returns the node's current ring neighbor ids (-1, -1 when
// detached) — what fault injection must target instead of the founding
// (i±1) mod n once churn has rewired the ring.
func (nd *Node[S]) Neighbors() (pred, succ int) { return nd.predID, nd.succID }

// State returns the node's current local state q_i.
func (nd *Node[S]) State() S { return nd.state }

// SetState overwrites the local state (fault injection).
func (nd *Node[S]) SetState(s S) { nd.state = s }

// Cache returns the cached state of neighbor k (the zero state when k is
// not a ring neighbor, mirroring an absent map entry).
func (nd *Node[S]) Cache(k int) S {
	switch k {
	case nd.pred():
		return nd.cachePred
	case nd.succ():
		return nd.cacheSucc
	}
	var zero S
	return zero
}

// SetCache overwrites a cache entry (initialization or fault injection).
// k must be a ring neighbor of the node.
func (nd *Node[S]) SetCache(k int, s S) {
	// On two-node rings pred == succ; keep both slots in step, as the
	// single map entry did.
	ok := false
	if k == nd.pred() {
		nd.cachePred = s
		ok = true
	}
	if k == nd.succ() {
		nd.cacheSucc = s
		ok = true
	}
	if !ok {
		panic(fmt.Sprintf("cst: node %d has no neighbor %d", nd.id, k))
	}
}

// View builds the node's current view of the ring: its own state plus the
// cached neighbor states. All guard evaluation and all token predicates of
// the message-passing model go through this view.
//
//allocgate:hot
func (nd *Node[S]) View() statemodel.View[S] {
	return statemodel.View[S]{
		I:    nd.id,
		N:    nd.n,
		Self: nd.state,
		Pred: nd.cachePred,
		Succ: nd.cacheSucc,
	}
}

// Start implements msgnet.Handler: announce the initial state and arm the
// refresh timer with a random phase so nodes do not beat in lockstep.
// Detached spares do nothing (and draw nothing): they wake only when a
// join wires them in.
func (nd *Node[S]) Start(ctx *msgnet.Context[S]) {
	if nd.Detached() {
		return
	}
	nd.announce(ctx)
	phase := msgnet.Time(ctx.Rand().Float64()) * nd.refresh
	ctx.After(phase, timerRefresh)
}

// Receive implements msgnet.Handler: Algorithm 4's message action. The
// payload arrives as a concrete S — the network's frame type — so no
// type assertion or unboxing happens per message.
//
// A frame from a node that is not (any longer) a ring neighbor is
// discarded: after a splice, frames that were already on a removed link
// still arrive, and the receiver must treat them as stale rather than
// poison a cache slot that now describes a different neighbor.
func (nd *Node[S]) Receive(ctx *msgnet.Context[S], from int, s S) {
	if nd.Detached() || !nd.setCacheFast(from, s) {
		nd.StaleFrames++
		return
	}
	nd.executeOne(ctx)
	nd.announce(ctx)
}

// Timer implements msgnet.Handler: periodic re-announcement and deferred
// rule execution after the critical-section dwell. A detached node lets
// its timers lapse (the refresh chain is re-armed by the next join).
func (nd *Node[S]) Timer(ctx *msgnet.Context[S], kind int) {
	if nd.Detached() {
		return
	}
	switch kind {
	case timerRefresh:
		nd.announce(ctx)
		ctx.After(nd.refresh, timerRefresh)
	case timerExecute:
		nd.holdPending = false
		nd.executeNow(ctx)
		nd.announce(ctx)
	}
}

// executeOne runs at most one enabled rule against the cached view, either
// immediately (Hold == 0) or after the dwell time.
func (nd *Node[S]) executeOne(ctx *msgnet.Context[S]) {
	if nd.Hold <= 0 {
		nd.executeNow(ctx)
		return
	}
	if nd.holdPending {
		return
	}
	if nd.alg.EnabledRule(nd.View()) != 0 {
		nd.holdPending = true
		ctx.After(nd.Hold, timerExecute)
	}
}

// executeNow evaluates and applies the enabled rule, if any, against the
// current cached view.
//
//rulecheck:step
func (nd *Node[S]) executeNow(ctx *msgnet.Context[S]) {
	v := nd.View()
	rule := nd.alg.EnabledRule(v)
	if rule == 0 {
		return
	}
	nd.state = nd.alg.Apply(v, rule)
	nd.RuleExecutions++
	if nd.OnExecute != nil {
		nd.OnExecute(ctx.Now(), rule)
	}
}

// announce sends the current state to both neighbors (busy links swallow
// the send, per the one-message-per-direction link model).
func (nd *Node[S]) announce(ctx *msgnet.Context[S]) {
	ctx.Send(nd.pred(), nd.state)
	ctx.Send(nd.succ(), nd.state)
}

// Ring wires n CST nodes into a bidirectional ring over an msgnet
// simulation. Rings built with Options.Spare > 0 can be rewired mid-run
// with Join, Leave and Splice.
type Ring[S comparable] struct {
	// Net is the underlying event simulation; run it to advance time.
	Net *msgnet.Network[S]
	// Nodes holds the CST nodes, indexed by process id. With spares this
	// includes dormant not-yet-joined nodes; see Active.
	Nodes []*Node[S]

	// link is the parameter set applied to links created by churn ops.
	link msgnet.LinkParams
	// active[i] reports ring membership; members counts the true ones.
	active  []bool
	members int
	// spareNext is the id of the next dormant spare a Join will wake.
	spareNext int
}

// Options configures NewRing.
type Options[S comparable] struct {
	// Link is the parameter set of every directed ring link.
	Link msgnet.LinkParams
	// Refresh is the period of the cache-refresh timer.
	Refresh msgnet.Time
	// Seed drives all simulation randomness.
	Seed int64
	// Hold is the critical-section dwell time applied to every node (see
	// Node.Hold).
	Hold msgnet.Time
	// CoherentCaches, when true, seeds every cache with the neighbor's
	// true initial state (the "legitimate configuration with
	// cache-coherence" hypothesis of Theorem 3). When false, caches are
	// seeded with random states drawn via RandomState (arbitrary bad
	// incoherence, the Theorem 4 setting); if RandomState is nil the
	// node's own state is used instead.
	CoherentCaches bool
	// RandomState draws an arbitrary state for incoherent cache seeding.
	RandomState func(rng *rand.Rand) S
	// Arena, when non-nil, is installed on the network via UseArena so a
	// sweep's simulations reuse one event arena (reset, not reallocated,
	// between trials). The caller must not share a live arena between
	// concurrently running rings.
	Arena *msgnet.Arena[S]
	// Spare is the number of dormant extra nodes (ids n..n+Spare-1)
	// preallocated for mid-run joins. msgnet cannot grow its handler set
	// after the simulation starts, so every node a churn schedule may ever
	// join must exist — detached and silent — from the beginning.
	Spare int
}

// NewRing builds the network, one node per entry of init, plus
// opts.Spare dormant spares awaiting Join.
func NewRing[S comparable](alg statemodel.Algorithm[S], init statemodel.Config[S], opts Options[S]) *Ring[S] {
	n := alg.N()
	if len(init) != n {
		panic(fmt.Sprintf("cst: init length %d != n %d", len(init), n))
	}
	if opts.Spare < 0 {
		panic("cst: negative spare count")
	}
	total := n + opts.Spare
	nodes := make([]*Node[S], total)
	handlers := make([]msgnet.Handler[S], total)
	var zero S
	for i := 0; i < total; i++ {
		st := zero
		if i < n {
			st = init[i]
		}
		nodes[i] = NewNode[S](alg, i, st, opts.Refresh)
		nodes[i].Hold = opts.Hold
		if i >= n {
			nodes[i].Detach()
		}
		handlers[i] = nodes[i]
	}
	net := msgnet.New(handlers, opts.Seed)
	if opts.Arena != nil {
		net.UseArena(opts.Arena)
	}
	// Ring links between the n founding members only; spares are
	// link-less until they join. (RingLinks would wire the spares in, so
	// the loop is inlined here — same edges, same insertion order.)
	for i := 0; i < n; i++ {
		j := (i + 1) % n
		net.AddLink(i, j, opts.Link)
		net.AddLink(j, i, opts.Link)
	}
	seedRNG := rand.New(rand.NewSource(opts.Seed + 1))
	active := make([]bool, total)
	for i := 0; i < n; i++ {
		nd := nodes[i]
		active[i] = true
		p, s := (i-1+n)%n, (i+1)%n
		if opts.CoherentCaches {
			nd.SetCache(p, init[p])
			nd.SetCache(s, init[s])
		} else {
			nd.SetCache(p, drawState(seedRNG, opts, init[i]))
			nd.SetCache(s, drawState(seedRNG, opts, init[i]))
		}
	}
	return &Ring[S]{
		Net:       net,
		Nodes:     nodes,
		link:      opts.Link,
		active:    active,
		members:   n,
		spareNext: n,
	}
}

// Active reports whether node i is currently a ring member.
func (r *Ring[S]) Active(i int) bool { return r.active[i] }

// MemberCount returns the current ring size.
func (r *Ring[S]) MemberCount() int { return r.members }

// Members returns the active node ids in ring order, starting at node 0
// and following successor pointers. Node 0 (the Dijkstra bottom) can
// never leave, so it always anchors the walk.
func (r *Ring[S]) Members() []int {
	out := make([]int, 0, r.members)
	i := 0
	for {
		out = append(out, i)
		i = r.Nodes[i].succID
		if i == 0 {
			break
		}
		if len(out) > len(r.Nodes) {
			panic("cst: successor pointers do not close a ring")
		}
	}
	return out
}

// Join wakes the next dormant spare, splices it into the ring between
// `after` and after's current successor, and returns its id. The joiner
// starts from `state` with self-seeded (incoherent) caches, announces to
// both new neighbors immediately, and arms its refresh chain with a
// random phase — the message-passing analogue of a node powering on
// inside an already running ring.
func (r *Ring[S]) Join(after int, state S) int {
	if !r.active[after] {
		panic(fmt.Sprintf("cst: join anchor %d is not a ring member", after))
	}
	if r.spareNext >= len(r.Nodes) {
		panic("cst: no dormant spare left to join")
	}
	j := r.spareNext
	r.spareNext++
	a, b := after, r.Nodes[after].succID
	net := r.Net
	// The a—b edge is replaced by a—j—b. Frames already in transit on the
	// removed links still arrive and are discarded as stale.
	net.RemoveLink(a, b)
	net.RemoveLink(b, a)
	net.AddLink(a, j, r.link)
	net.AddLink(j, a, r.link)
	net.AddLink(j, b, r.link)
	net.AddLink(b, j, r.link)
	jn := r.Nodes[j]
	jn.state = state
	jn.SetNeighbors(a, b)
	// The joiner has not heard from either neighbor: seed its caches with
	// its own state (arbitrary incoherence, healed by the announcements).
	jn.cachePred = state
	jn.cacheSucc = state
	r.Nodes[a].succID = j
	r.Nodes[b].predID = j
	r.active[j] = true
	r.members++
	net.SendFrom(j, a, state)
	net.SendFrom(j, b, state)
	phase := msgnet.Time(net.Rand().Float64()) * jn.refresh
	net.StartTimer(j, phase, timerRefresh)
	return j
}

// Leave removes node v from the ring and reconnects its neighbors with
// fresh (idle) links. Node 0 — the Dijkstra bottom the stabilization
// argument hangs on — can never leave.
func (r *Ring[S]) Leave(v int) {
	if v == 0 {
		panic("cst: node 0 (bottom) cannot leave the ring")
	}
	if !r.active[v] {
		panic(fmt.Sprintf("cst: leave of non-member %d", v))
	}
	if r.members-1 < 3 {
		panic("cst: leave would shrink the ring below 3 members")
	}
	nd := r.Nodes[v]
	a, b := nd.predID, nd.succID
	net := r.Net
	net.RemoveLink(v, a)
	net.RemoveLink(a, v)
	net.RemoveLink(v, b)
	net.RemoveLink(b, v)
	net.AddLink(a, b, r.link)
	net.AddLink(b, a, r.link)
	r.Nodes[a].succID = b
	r.Nodes[b].predID = a
	nd.Detach()
	r.active[v] = false
	r.members--
}

// Splice removes the arc of count consecutive members following `after`
// and reconnects the ring with one fresh edge — a multi-node partition
// healing in a single topology change, the scenario the graceful-handover
// property is really about. The arc may not contain node 0 or wrap the
// whole ring.
func (r *Ring[S]) Splice(after, count int) {
	if !r.active[after] {
		panic(fmt.Sprintf("cst: splice anchor %d is not a ring member", after))
	}
	if count < 1 {
		panic("cst: splice count must be >= 1")
	}
	if r.members-count < 3 {
		panic("cst: splice would shrink the ring below 3 members")
	}
	//lint:ignore hotpath churn orchestration, cold path
	victims := make([]int, 0, count)
	v := r.Nodes[after].succID
	for i := 0; i < count; i++ {
		if v == 0 {
			panic("cst: splice arc contains node 0 (bottom)")
		}
		victims = append(victims, v)
		v = r.Nodes[v].succID
	}
	b := v
	net := r.Net
	for _, x := range victims {
		nd := r.Nodes[x]
		net.RemoveLink(x, nd.predID)
		net.RemoveLink(nd.predID, x)
		net.RemoveLink(x, nd.succID)
		net.RemoveLink(nd.succID, x)
		nd.Detach()
		r.active[x] = false
		r.members--
	}
	net.AddLink(after, b, r.link)
	net.AddLink(b, after, r.link)
	r.Nodes[after].succID = b
	r.Nodes[b].predID = after
}

func drawState[S comparable](rng *rand.Rand, opts Options[S], fallback S) S {
	if opts.RandomState != nil {
		return opts.RandomState(rng)
	}
	return fallback
}

// Census counts the nodes for which holder is true on their cached view —
// the number of token holders as the nodes themselves perceive it, which
// is the quantity Theorem 3 bounds.
func (r *Ring[S]) Census(holder func(statemodel.View[S]) bool) int {
	count := 0
	for i, nd := range r.Nodes {
		if !r.active[i] {
			continue
		}
		if holder(nd.View()) {
			count++
		}
	}
	return count
}

// Holders returns the ids of ring members whose cached view satisfies
// holder. Detached nodes hold nothing: a node outside the ring cannot be
// in the critical section.
func (r *Ring[S]) Holders(holder func(statemodel.View[S]) bool) []int {
	var out []int
	for i, nd := range r.Nodes {
		if !r.active[i] {
			continue
		}
		if holder(nd.View()) {
			out = append(out, i)
		}
	}
	return out
}

// States returns the vector of true local states (a configuration in the
// state-reading sense, ignoring caches).
func (r *Ring[S]) States() statemodel.Config[S] {
	cfg := make(statemodel.Config[S], len(r.Nodes))
	for i, nd := range r.Nodes {
		cfg[i] = nd.State()
	}
	return cfg
}

// Coherent reports whether every ring member's cache equals its true
// neighbor's state (Definition 2). Neighbors come from the live
// successor/predecessor pointers, so the check follows churn rewiring.
func (r *Ring[S]) Coherent() bool {
	for i, nd := range r.Nodes {
		if !r.active[i] {
			continue
		}
		p, s := nd.predID, nd.succID
		if nd.Cache(p) != r.Nodes[p].State() || nd.Cache(s) != r.Nodes[s].State() {
			return false
		}
	}
	return true
}

// RuleExecutions sums rule executions across all nodes.
func (r *Ring[S]) RuleExecutions() int {
	total := 0
	for _, nd := range r.Nodes {
		total += nd.RuleExecutions
	}
	return total
}

// setCacheFast refreshes the cache slot(s) for from on the message hot
// path (two comparisons, no map) and reports whether from is a ring
// neighbor — the receive path's validity check, folded in so each
// message pays for the comparisons once.
//
//allocgate:hot
func (nd *Node[S]) setCacheFast(from int, s S) bool {
	ok := false
	if from == nd.predID {
		nd.cachePred = s
		ok = true
	}
	if from == nd.succID {
		nd.cacheSucc = s
		ok = true
	}
	return ok
}
