// Package cst implements the cached sensornet transform (CST) of Herman
// (2003), reproduced as Algorithm 4 of the paper: the standard scheme that
// executes a state-reading-model algorithm in a message-passing network.
//
// Each node keeps a cache Z_i[v_k] of every neighbor's local state. On
// receipt of a ⟨state, q⟩ message it refreshes the cache entry, executes
// at most one enabled rule against the cached neighborhood, and announces
// its own (possibly updated) state to both neighbors; an interval timer
// also re-announces the state periodically so that lost messages and
// corrupted caches heal — the ingredient that preserves self-stabilization
// in a lossy network.
//
// Token predicates are evaluated against the node's own state and its
// *caches* — exactly the reading the model-gap discussion of Section 5 is
// about: between a state update and the delivery of its announcement the
// caches are incoherent, and a naive algorithm (plain Dijkstra SSToken)
// passes through instants with zero token holders (Figure 11). SSRmin's
// token conditions are designed so that some node always holds a token
// through those transient periods (Theorem 3).
package cst

import (
	"fmt"
	"math/rand"

	"ssrmin/internal/msgnet"
	"ssrmin/internal/statemodel"
)

// Node is the CST wrapper of one process: an msgnet.Handler executing the
// wrapped algorithm against cached neighbor states.
type Node[S comparable] struct {
	alg statemodel.Algorithm[S]
	id  int
	n   int
	// predID and succID are the ring neighbor ids, precomputed so the
	// per-message path (neighbor check, cache refresh, announce) never
	// pays the modulo.
	predID int
	succID int
	state  S
	// cachePred and cacheSucc are the cache Z_i: one slot per ring
	// neighbor, held as plain fields (a ring node has exactly two
	// neighbors) so the hot receive/execute path touches no map.
	cachePred S
	cacheSucc S
	refresh   msgnet.Time

	// Hold is the critical-section dwell time: how long the node sits on
	// an enabled rule before executing it, modelling the application work
	// a privileged node performs (e.g. the camera actively monitoring).
	// Zero means execute synchronously on receipt, the literal Algorithm 4.
	Hold        msgnet.Time
	holdPending bool

	// RuleExecutions counts rules executed by this node.
	RuleExecutions int
	// OnExecute, when non-nil, is invoked after the node executes a rule.
	OnExecute func(now msgnet.Time, rule int)
}

const (
	timerRefresh = 1
	timerExecute = 2
)

// NewNode creates a CST node for process id of alg. Seed the caches with
// SetCache before the simulation starts (NewRing does this for whole
// rings).
func NewNode[S comparable](alg statemodel.Algorithm[S], id int, init S, refresh msgnet.Time) *Node[S] {
	if refresh <= 0 {
		panic("cst: refresh interval must be positive")
	}
	n := alg.N()
	return &Node[S]{
		alg:     alg,
		id:      id,
		n:       n,
		predID:  (id - 1 + n) % n,
		succID:  (id + 1) % n,
		state:   init,
		refresh: refresh,
	}
}

// pred and succ return the ring neighbor ids.
func (nd *Node[S]) pred() int { return nd.predID }
func (nd *Node[S]) succ() int { return nd.succID }

// State returns the node's current local state q_i.
func (nd *Node[S]) State() S { return nd.state }

// SetState overwrites the local state (fault injection).
func (nd *Node[S]) SetState(s S) { nd.state = s }

// Cache returns the cached state of neighbor k (the zero state when k is
// not a ring neighbor, mirroring an absent map entry).
func (nd *Node[S]) Cache(k int) S {
	switch k {
	case nd.pred():
		return nd.cachePred
	case nd.succ():
		return nd.cacheSucc
	}
	var zero S
	return zero
}

// SetCache overwrites a cache entry (initialization or fault injection).
// k must be a ring neighbor of the node.
func (nd *Node[S]) SetCache(k int, s S) {
	// On two-node rings pred == succ; keep both slots in step, as the
	// single map entry did.
	ok := false
	if k == nd.pred() {
		nd.cachePred = s
		ok = true
	}
	if k == nd.succ() {
		nd.cacheSucc = s
		ok = true
	}
	if !ok {
		panic(fmt.Sprintf("cst: node %d has no neighbor %d", nd.id, k))
	}
}

// View builds the node's current view of the ring: its own state plus the
// cached neighbor states. All guard evaluation and all token predicates of
// the message-passing model go through this view.
//
//allocgate:hot
func (nd *Node[S]) View() statemodel.View[S] {
	return statemodel.View[S]{
		I:    nd.id,
		N:    nd.n,
		Self: nd.state,
		Pred: nd.cachePred,
		Succ: nd.cacheSucc,
	}
}

// Start implements msgnet.Handler: announce the initial state and arm the
// refresh timer with a random phase so nodes do not beat in lockstep.
func (nd *Node[S]) Start(ctx *msgnet.Context[S]) {
	nd.announce(ctx)
	phase := msgnet.Time(ctx.Rand().Float64()) * nd.refresh
	ctx.After(phase, timerRefresh)
}

// Receive implements msgnet.Handler: Algorithm 4's message action. The
// payload arrives as a concrete S — the network's frame type — so no
// type assertion or unboxing happens per message.
func (nd *Node[S]) Receive(ctx *msgnet.Context[S], from int, s S) {
	if !nd.setCacheFast(from, s) {
		panic(fmt.Sprintf("cst: node %d received from non-neighbor %d", nd.id, from))
	}
	nd.executeOne(ctx)
	nd.announce(ctx)
}

// Timer implements msgnet.Handler: periodic re-announcement and deferred
// rule execution after the critical-section dwell.
func (nd *Node[S]) Timer(ctx *msgnet.Context[S], kind int) {
	switch kind {
	case timerRefresh:
		nd.announce(ctx)
		ctx.After(nd.refresh, timerRefresh)
	case timerExecute:
		nd.holdPending = false
		nd.executeNow(ctx)
		nd.announce(ctx)
	}
}

// executeOne runs at most one enabled rule against the cached view, either
// immediately (Hold == 0) or after the dwell time.
func (nd *Node[S]) executeOne(ctx *msgnet.Context[S]) {
	if nd.Hold <= 0 {
		nd.executeNow(ctx)
		return
	}
	if nd.holdPending {
		return
	}
	if nd.alg.EnabledRule(nd.View()) != 0 {
		nd.holdPending = true
		ctx.After(nd.Hold, timerExecute)
	}
}

// executeNow evaluates and applies the enabled rule, if any, against the
// current cached view.
//
//rulecheck:step
func (nd *Node[S]) executeNow(ctx *msgnet.Context[S]) {
	v := nd.View()
	rule := nd.alg.EnabledRule(v)
	if rule == 0 {
		return
	}
	nd.state = nd.alg.Apply(v, rule)
	nd.RuleExecutions++
	if nd.OnExecute != nil {
		nd.OnExecute(ctx.Now(), rule)
	}
}

// announce sends the current state to both neighbors (busy links swallow
// the send, per the one-message-per-direction link model).
func (nd *Node[S]) announce(ctx *msgnet.Context[S]) {
	ctx.Send(nd.pred(), nd.state)
	ctx.Send(nd.succ(), nd.state)
}

// Ring wires n CST nodes into a bidirectional ring over an msgnet
// simulation.
type Ring[S comparable] struct {
	// Net is the underlying event simulation; run it to advance time.
	Net *msgnet.Network[S]
	// Nodes holds the CST nodes, indexed by process id.
	Nodes []*Node[S]
}

// Options configures NewRing.
type Options[S comparable] struct {
	// Link is the parameter set of every directed ring link.
	Link msgnet.LinkParams
	// Refresh is the period of the cache-refresh timer.
	Refresh msgnet.Time
	// Seed drives all simulation randomness.
	Seed int64
	// Hold is the critical-section dwell time applied to every node (see
	// Node.Hold).
	Hold msgnet.Time
	// CoherentCaches, when true, seeds every cache with the neighbor's
	// true initial state (the "legitimate configuration with
	// cache-coherence" hypothesis of Theorem 3). When false, caches are
	// seeded with random states drawn via RandomState (arbitrary bad
	// incoherence, the Theorem 4 setting); if RandomState is nil the
	// node's own state is used instead.
	CoherentCaches bool
	// RandomState draws an arbitrary state for incoherent cache seeding.
	RandomState func(rng *rand.Rand) S
	// Arena, when non-nil, is installed on the network via UseArena so a
	// sweep's simulations reuse one event arena (reset, not reallocated,
	// between trials). The caller must not share a live arena between
	// concurrently running rings.
	Arena *msgnet.Arena[S]
}

// NewRing builds the network, one node per entry of init.
func NewRing[S comparable](alg statemodel.Algorithm[S], init statemodel.Config[S], opts Options[S]) *Ring[S] {
	n := alg.N()
	if len(init) != n {
		panic(fmt.Sprintf("cst: init length %d != n %d", len(init), n))
	}
	nodes := make([]*Node[S], n)
	handlers := make([]msgnet.Handler[S], n)
	for i := 0; i < n; i++ {
		nodes[i] = NewNode[S](alg, i, init[i], opts.Refresh)
		nodes[i].Hold = opts.Hold
		handlers[i] = nodes[i]
	}
	net := msgnet.New(handlers, opts.Seed)
	if opts.Arena != nil {
		net.UseArena(opts.Arena)
	}
	net.RingLinks(opts.Link)
	seedRNG := rand.New(rand.NewSource(opts.Seed + 1))
	for i, nd := range nodes {
		p, s := (i-1+n)%n, (i+1)%n
		if opts.CoherentCaches {
			nd.SetCache(p, init[p])
			nd.SetCache(s, init[s])
		} else {
			nd.SetCache(p, drawState(seedRNG, opts, init[i]))
			nd.SetCache(s, drawState(seedRNG, opts, init[i]))
		}
	}
	return &Ring[S]{Net: net, Nodes: nodes}
}

func drawState[S comparable](rng *rand.Rand, opts Options[S], fallback S) S {
	if opts.RandomState != nil {
		return opts.RandomState(rng)
	}
	return fallback
}

// Census counts the nodes for which holder is true on their cached view —
// the number of token holders as the nodes themselves perceive it, which
// is the quantity Theorem 3 bounds.
func (r *Ring[S]) Census(holder func(statemodel.View[S]) bool) int {
	count := 0
	for _, nd := range r.Nodes {
		if holder(nd.View()) {
			count++
		}
	}
	return count
}

// Holders returns the ids of nodes whose cached view satisfies holder.
func (r *Ring[S]) Holders(holder func(statemodel.View[S]) bool) []int {
	var out []int
	for i, nd := range r.Nodes {
		if holder(nd.View()) {
			out = append(out, i)
		}
	}
	return out
}

// States returns the vector of true local states (a configuration in the
// state-reading sense, ignoring caches).
func (r *Ring[S]) States() statemodel.Config[S] {
	cfg := make(statemodel.Config[S], len(r.Nodes))
	for i, nd := range r.Nodes {
		cfg[i] = nd.State()
	}
	return cfg
}

// Coherent reports whether every cache equals the neighbor's true state
// (Definition 2).
func (r *Ring[S]) Coherent() bool {
	n := len(r.Nodes)
	for i, nd := range r.Nodes {
		p, s := (i-1+n)%n, (i+1)%n
		if nd.Cache(p) != r.Nodes[p].State() || nd.Cache(s) != r.Nodes[s].State() {
			return false
		}
	}
	return true
}

// RuleExecutions sums rule executions across all nodes.
func (r *Ring[S]) RuleExecutions() int {
	total := 0
	for _, nd := range r.Nodes {
		total += nd.RuleExecutions
	}
	return total
}

// setCacheFast refreshes the cache slot(s) for from on the message hot
// path (two comparisons, no map) and reports whether from is a ring
// neighbor — the receive path's validity check, folded in so each
// message pays for the comparisons once.
//
//allocgate:hot
func (nd *Node[S]) setCacheFast(from int, s S) bool {
	ok := false
	if from == nd.predID {
		nd.cachePred = s
		ok = true
	}
	if from == nd.succID {
		nd.cacheSucc = s
		ok = true
	}
	return ok
}
