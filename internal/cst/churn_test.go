package cst

import (
	"reflect"
	"testing"

	"ssrmin/internal/core"
	"ssrmin/internal/msgnet"
)

// churnRing builds an SSRmin ring with spare capacity for joins. K is
// sized for the largest ring the tests grow to.
func churnRing(n, k, spare int) (*core.Algorithm, *Ring[core.State]) {
	a := core.New(n, k)
	opts := defaultOpts()
	opts.Spare = spare
	return a, NewRing[core.State](a, a.InitialLegitimate(), opts)
}

func TestSpareNodesStayDormant(t *testing.T) {
	_, r := churnRing(5, 9, 2)
	if got := r.MemberCount(); got != 5 {
		t.Fatalf("MemberCount = %d, want 5", got)
	}
	for i := 5; i < 7; i++ {
		if r.Active(i) {
			t.Errorf("spare %d active before join", i)
		}
		if !r.Nodes[i].Detached() {
			t.Errorf("spare %d not detached", i)
		}
	}
	r.Net.Run(2)
	for i := 5; i < 7; i++ {
		if r.Nodes[i].RuleExecutions != 0 || r.Nodes[i].StaleFrames != 0 {
			t.Errorf("dormant spare %d saw traffic", i)
		}
	}
	if got := r.Members(); !reflect.DeepEqual(got, []int{0, 1, 2, 3, 4}) {
		t.Errorf("Members = %v", got)
	}
}

func TestJoinExtendsRing(t *testing.T) {
	_, r := churnRing(5, 9, 2)
	r.Net.Run(1)
	j := r.Join(2, core.State{X: 3})
	if j != 5 {
		t.Fatalf("joiner id = %d, want 5", j)
	}
	if got := r.Members(); !reflect.DeepEqual(got, []int{0, 1, 2, 5, 3, 4}) {
		t.Fatalf("Members after join = %v", got)
	}
	if r.MemberCount() != 6 || !r.Active(5) {
		t.Fatal("joiner not counted as member")
	}
	// The grown ring still circulates: the privilege visits every member,
	// including the joiner, and the census settles back into [1,2].
	visited := make(map[int]bool)
	r.Net.Observer = func(now msgnet.Time) {
		for _, h := range r.Holders(core.HasToken) {
			visited[h] = true
		}
	}
	r.Net.Run(8)
	for _, m := range r.Members() {
		if !visited[m] {
			t.Errorf("privilege never visited member %d after join", m)
		}
	}
	if c := r.Census(core.HasToken); c < 1 || c > 2 {
		t.Errorf("census = %d after settling, want 1..2", c)
	}
}

func TestLeaveShrinksRing(t *testing.T) {
	_, r := churnRing(5, 9, 0)
	r.Net.Run(1)
	r.Leave(2)
	if got := r.Members(); !reflect.DeepEqual(got, []int{0, 1, 3, 4}) {
		t.Fatalf("Members after leave = %v", got)
	}
	if r.Active(2) || !r.Nodes[2].Detached() {
		t.Fatal("left node still attached")
	}
	visited := make(map[int]bool)
	r.Net.Observer = func(now msgnet.Time) {
		for _, h := range r.Holders(core.HasToken) {
			visited[h] = true
		}
	}
	r.Net.Run(8)
	for _, m := range r.Members() {
		if !visited[m] {
			t.Errorf("privilege never visited member %d after leave", m)
		}
	}
	if c := r.Census(core.HasToken); c < 1 || c > 2 {
		t.Errorf("census = %d after settling, want 1..2", c)
	}
}

func TestSpliceRemovesArcAndDiscardsStaleFrames(t *testing.T) {
	_, r := churnRing(6, 9, 0)
	r.Net.Run(1)
	r.Splice(0, 2) // removes members 1 and 2, reconnects 0—3
	if got := r.Members(); !reflect.DeepEqual(got, []int{0, 3, 4, 5}) {
		t.Fatalf("Members after splice = %v", got)
	}
	if r.Nodes[0].succ() != 3 || r.Nodes[3].pred() != 0 {
		t.Fatal("splice did not reconnect 0—3")
	}
	r.Net.Run(8)
	// The announce storm keeps every link busy, so the splice is all but
	// guaranteed to catch frames mid-flight on removed links; survivors
	// must have discarded them rather than poison their caches.
	stale := 0
	for _, nd := range r.Nodes {
		stale += nd.StaleFrames
	}
	if stale == 0 {
		t.Error("no stale frames discarded — splice dynamics not exercised")
	}
	if c := r.Census(core.HasToken); c < 1 || c > 2 {
		t.Errorf("census = %d after settling, want 1..2", c)
	}
}

func TestJoinAfterSpliceReusesFreshSpare(t *testing.T) {
	_, r := churnRing(5, 9, 1)
	r.Net.Run(1)
	r.Leave(3)
	j := r.Join(1, core.State{X: 2})
	if got := r.Members(); !reflect.DeepEqual(got, []int{0, 1, j, 2, 4}) {
		t.Fatalf("Members = %v", got)
	}
	r.Net.Run(8)
	if c := r.Census(core.HasToken); c < 1 || c > 2 {
		t.Errorf("census = %d after churn sequence, want 1..2", c)
	}
}

func TestChurnGuards(t *testing.T) {
	for _, tc := range []struct {
		name string
		op   func(r *Ring[core.State])
	}{
		{"leave bottom", func(r *Ring[core.State]) { r.Leave(0) }},
		{"leave non-member", func(r *Ring[core.State]) { r.Leave(1); r.Leave(1) }},
		{"shrink below 3", func(r *Ring[core.State]) { r.Leave(1); r.Leave(2) }},
		{"splice through bottom", func(r *Ring[core.State]) { r.Splice(3, 2) }},
		{"splice whole ring", func(r *Ring[core.State]) { r.Splice(0, 4) }},
		{"join without spare", func(r *Ring[core.State]) { r.Join(0, core.State{}) }},
		{"join dead anchor", func(r *Ring[core.State]) { r.Leave(1); r.Join(1, core.State{}) }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			_, r := churnRing(4, 9, 0)
			r.Net.Run(0.5)
			defer func() {
				if recover() == nil {
					t.Error("no panic")
				}
			}()
			tc.op(r)
		})
	}
}

func TestChurnDeterministic(t *testing.T) {
	trace := func() []int {
		_, r := churnRing(5, 9, 1)
		r.Net.Run(1)
		r.Join(2, core.State{X: 4})
		r.Net.Run(3)
		r.Splice(0, 1)
		r.Net.Run(6)
		var sig []int
		for _, nd := range r.Nodes {
			sig = append(sig, nd.RuleExecutions, nd.StaleFrames)
		}
		sig = append(sig, r.Net.Stats().Delivered, r.Net.Stats().Suppressed)
		return sig
	}
	if a, b := trace(), trace(); !reflect.DeepEqual(a, b) {
		t.Fatalf("churn run not deterministic:\n%v\n%v", a, b)
	}
}
