package cst

import (
	"math/rand"
	"testing"

	"ssrmin/internal/core"
	"ssrmin/internal/dijkstra"
	"ssrmin/internal/msgnet"
	"ssrmin/internal/statemodel"
	"ssrmin/internal/verify"
)

func ssrminRing(n, k int, opts Options[core.State]) (*core.Algorithm, *Ring[core.State]) {
	a := core.New(n, k)
	return a, NewRing[core.State](a, a.InitialLegitimate(), opts)
}

func defaultOpts() Options[core.State] {
	return Options[core.State]{
		Link:           msgnet.LinkParams{Delay: 0.01, Jitter: 0.002},
		Refresh:        0.05,
		Seed:           1,
		CoherentCaches: true,
	}
}

func TestNodeValidation(t *testing.T) {
	a := core.New(3, 4)
	defer func() {
		if recover() == nil {
			t.Error("zero refresh accepted")
		}
	}()
	NewNode[core.State](a, 0, core.State{}, 0)
}

func TestSetCacheRejectsNonNeighbor(t *testing.T) {
	a := core.New(5, 6)
	nd := NewNode[core.State](a, 0, core.State{}, 1)
	defer func() {
		if recover() == nil {
			t.Error("SetCache accepted a non-neighbor")
		}
	}()
	nd.SetCache(2, core.State{})
}

func TestCoherentStart(t *testing.T) {
	_, r := ssrminRing(5, 6, defaultOpts())
	if !r.Coherent() {
		t.Fatal("coherent option did not produce coherent caches")
	}
}

func TestIncoherentStartWithRandomState(t *testing.T) {
	opts := defaultOpts()
	opts.CoherentCaches = false
	opts.RandomState = func(rng *rand.Rand) core.State {
		return core.State{X: rng.Intn(6), RTS: rng.Intn(2) == 0, TRA: rng.Intn(2) == 0}
	}
	_, r := ssrminRing(5, 6, opts)
	// With overwhelming probability at least one cache is wrong.
	if r.Coherent() {
		t.Log("warning: random caches happened to be coherent (unlikely)")
	}
}

// TestTokenCirculatesUnderCST runs SSRmin through the transform and checks
// that the ring makes progress: the privilege visits every node.
func TestTokenCirculatesUnderCST(t *testing.T) {
	a, r := ssrminRing(5, 6, defaultOpts())
	visited := make(map[int]bool)
	r.Net.Observer = func(now msgnet.Time) {
		for _, h := range r.Holders(core.HasToken) {
			visited[h] = true
		}
	}
	r.Net.Run(3)
	if len(visited) != a.N() {
		t.Fatalf("privilege visited %d of %d nodes: %v", len(visited), a.N(), visited)
	}
	if r.RuleExecutions() == 0 {
		t.Fatal("no rules executed")
	}
}

// TestTheorem3ModelGapTolerance is the headline model-gap experiment:
// starting from a legitimate configuration with cache coherence, at every
// instant of the message-passing execution the number of token holders is
// at least one and at most two — across seeds and link delays, with and
// without message loss.
func TestTheorem3ModelGapTolerance(t *testing.T) {
	for _, loss := range []float64{0, 0.2} {
		for seed := int64(1); seed <= 8; seed++ {
			opts := defaultOpts()
			opts.Seed = seed
			opts.Link.LossProb = loss
			a, r := ssrminRing(6, 7, opts)
			_ = a
			mon := verify.Monitor{Bounds: verify.SSRminBounds}
			r.Net.Observer = func(now msgnet.Time) {
				mon.Observe(float64(now), r.Census(core.HasToken))
			}
			r.Net.Run(5)
			if !mon.OK() {
				t.Fatalf("seed=%d loss=%v: token bound violated: %v (of %d observations)",
					seed, loss, mon.Violations[0], mon.Observed())
			}
			if mon.Observed() < 100 {
				t.Fatalf("seed=%d: only %d observations — simulation stalled?", seed, mon.Observed())
			}
		}
	}
}

// TestFigure11TokenExtinction shows the model gap of plain Dijkstra
// SSToken under CST: there are instants with zero token holders while the
// token is in flight.
func TestFigure11TokenExtinction(t *testing.T) {
	a := dijkstra.New(5, 6)
	r := NewRing[dijkstra.State](a, a.InitialLegitimate(), Options[dijkstra.State]{
		Link:           msgnet.LinkParams{Delay: 0.01, Jitter: 0.002},
		Refresh:        0.05,
		Seed:           2,
		CoherentCaches: true,
	})
	var tl verify.Timeline
	r.Net.Observer = func(now msgnet.Time) {
		tl.Record(float64(now), r.Census(dijkstra.HasToken))
	}
	r.Net.Run(5)
	tl.Close(float64(r.Net.Now()))
	if tl.MinCount() != 0 {
		t.Fatalf("expected zero-token instants for SSToken under CST, min = %d", tl.MinCount())
	}
	if tl.Duration(0) <= 0 {
		t.Fatal("zero-token duration should be positive")
	}
	t.Logf("SSToken under CST: %.1f%% of time with zero tokens", 100*tl.Fraction(0))
}

// TestFigure12TwoInstancesStillExtinct shows that running two independent
// SSToken instances does not fix the gap: both tokens can be in flight at
// the same instant.
func TestFigure12TwoInstancesStillExtinct(t *testing.T) {
	p := dijkstra.NewPair(5, 6)
	init := make(statemodel.Config[dijkstra.PairState], 5)
	// Instance A starts with token at P0, instance B at P2 (staggered),
	// both in legitimate single-token form.
	for i := range init {
		if i < 2 {
			init[i] = dijkstra.PairState{A: 0, B: 1}
		} else {
			init[i] = dijkstra.PairState{A: 0, B: 0}
		}
	}
	holderEither := func(v statemodel.View[dijkstra.PairState]) bool {
		va := statemodel.View[dijkstra.State]{I: v.I, N: v.N, Self: dijkstra.State{X: v.Self.A}, Pred: dijkstra.State{X: v.Pred.A}, Succ: dijkstra.State{X: v.Succ.A}}
		vb := statemodel.View[dijkstra.State]{I: v.I, N: v.N, Self: dijkstra.State{X: v.Self.B}, Pred: dijkstra.State{X: v.Pred.B}, Succ: dijkstra.State{X: v.Succ.B}}
		return dijkstra.Guard(va) || dijkstra.Guard(vb)
	}
	found := false
	for seed := int64(1); seed <= 20 && !found; seed++ {
		r := NewRing[dijkstra.PairState](p, init, Options[dijkstra.PairState]{
			Link:           msgnet.LinkParams{Delay: 0.01, Jitter: 0.005},
			Refresh:        0.05,
			Seed:           seed,
			CoherentCaches: true,
		})
		var tl verify.Timeline
		r.Net.Observer = func(now msgnet.Time) {
			tl.Record(float64(now), r.Census(holderEither))
		}
		r.Net.Run(10)
		tl.Close(float64(r.Net.Now()))
		if tl.Duration(0) > 0 {
			found = true
			t.Logf("seed %d: two-instance SSToken spent %.2f%% of time with zero tokens",
				seed, 100*tl.Fraction(0))
		}
	}
	if !found {
		t.Fatal("no zero-token instant found for two independent SSToken instances in 20 seeds")
	}
}

// TestTheorem4EventualStabilization starts from an arbitrary configuration
// with arbitrary (incoherent) caches and lossy links, and checks that the
// system eventually keeps 1–2 token holders forever (we verify over a long
// trailing window).
func TestTheorem4EventualStabilization(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 6; trial++ {
		a := core.New(5, 7)
		init := make(statemodel.Config[core.State], 5)
		for i := range init {
			init[i] = core.State{X: rng.Intn(7), RTS: rng.Intn(2) == 0, TRA: rng.Intn(2) == 0}
		}
		r := NewRing[core.State](a, init, Options[core.State]{
			Link:           msgnet.LinkParams{Delay: 0.01, Jitter: 0.004, LossProb: 0.1},
			Refresh:        0.05,
			Seed:           int64(trial + 1),
			CoherentCaches: false,
			RandomState: func(rng *rand.Rand) core.State {
				return core.State{X: rng.Intn(7), RTS: rng.Intn(2) == 0, TRA: rng.Intn(2) == 0}
			},
		})
		const horizon = 60
		const settle = 30
		var tl verify.Timeline
		r.Net.Observer = func(now msgnet.Time) {
			if now >= settle {
				tl.Record(float64(now), r.Census(core.HasToken))
			}
		}
		r.Net.Run(horizon)
		tl.Close(float64(r.Net.Now()))
		if min := tl.MinCount(); min < 1 {
			t.Fatalf("trial %d: zero-token instant after settling (min=%d)", trial, min)
		}
		if max := tl.MaxCount(); max > 2 {
			t.Fatalf("trial %d: %d token holders after settling", trial, max)
		}
	}
}

// TestCensusAndHoldersAgree cross-checks the two census APIs.
func TestCensusAndHoldersAgree(t *testing.T) {
	_, r := ssrminRing(5, 6, defaultOpts())
	r.Net.Run(1)
	if got, want := r.Census(core.HasToken), len(r.Holders(core.HasToken)); got != want {
		t.Errorf("Census=%d Holders=%d", got, want)
	}
}

// TestStatesSnapshot checks that States reflects node state updates.
func TestStatesSnapshot(t *testing.T) {
	_, r := ssrminRing(5, 6, defaultOpts())
	before := r.States()
	r.Net.Run(2)
	after := r.States()
	if before.Equal(after) {
		t.Error("no state change after 2 simulated seconds")
	}
	if len(after) != 5 {
		t.Errorf("States() has %d entries", len(after))
	}
}

// TestDeterministicExecution ensures the full CST simulation is a pure
// function of the seed.
func TestDeterministicExecution(t *testing.T) {
	run := func() (statemodel.Config[core.State], int) {
		_, r := ssrminRing(5, 6, defaultOpts())
		r.Net.Run(3)
		return r.States(), r.RuleExecutions()
	}
	c1, e1 := run()
	c2, e2 := run()
	if !c1.Equal(c2) || e1 != e2 {
		t.Errorf("same seed diverged: %v/%d vs %v/%d", c1, e1, c2, e2)
	}
}

// TestOnExecuteHook verifies the per-node execution hook fires with
// plausible rule numbers.
func TestOnExecuteHook(t *testing.T) {
	_, r := ssrminRing(5, 6, defaultOpts())
	rules := map[int]int{}
	for _, nd := range r.Nodes {
		nd.OnExecute = func(now msgnet.Time, rule int) { rules[rule]++ }
	}
	r.Net.Run(3)
	for rule := range rules {
		if rule < 1 || rule > 5 {
			t.Errorf("hook reported rule %d", rule)
		}
	}
	// The circulation cycle needs Rules 1, 2 and 3.
	for _, want := range []int{1, 2, 3} {
		if rules[want] == 0 {
			t.Errorf("rule %d never executed: %v", want, rules)
		}
	}
}

// TestHoldDwellSSToken gives nodes a critical-section dwell: SSToken then
// spends real time holding its token, but the handover gaps (zero-token
// intervals) remain — the model gap is about the transit, not the dwell.
func TestHoldDwellSSToken(t *testing.T) {
	a := dijkstra.New(5, 6)
	r := NewRing[dijkstra.State](a, a.InitialLegitimate(), Options[dijkstra.State]{
		Link:           msgnet.LinkParams{Delay: 0.01, Jitter: 0.002},
		Refresh:        0.05,
		Seed:           3,
		Hold:           0.04,
		CoherentCaches: true,
	})
	var tl verify.Timeline
	r.Net.Observer = func(now msgnet.Time) {
		tl.Record(float64(now), r.Census(dijkstra.HasToken))
	}
	r.Net.Run(5)
	tl.Close(float64(r.Net.Now()))
	if tl.Duration(1) <= 0 {
		t.Fatal("with a dwell, SSToken should spend time at one token")
	}
	if tl.Duration(0) <= 0 {
		t.Fatal("zero-token handover gaps should persist with a dwell")
	}
	t.Logf("SSToken+dwell: %.1f%% zero, %.1f%% one token",
		100*tl.Fraction(0), 100*tl.Fraction(1))
}

// TestHoldDwellSSRminKeepsInvariant repeats the Theorem 3 check with a
// dwell: the 1–2 bound must survive arbitrary execution pacing.
func TestHoldDwellSSRminKeepsInvariant(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		opts := defaultOpts()
		opts.Seed = seed
		opts.Hold = 0.03
		_, r := ssrminRing(5, 6, opts)
		mon := verify.Monitor{Bounds: verify.SSRminBounds}
		r.Net.Observer = func(now msgnet.Time) {
			mon.Observe(float64(now), r.Census(core.HasToken))
		}
		r.Net.Run(5)
		if !mon.OK() {
			t.Fatalf("seed=%d: violation with dwell: %v", seed, mon.Violations[0])
		}
	}
}

// TestHealsFromMessageCorruption enables payload corruption on the links:
// corrupted announcements poison caches, but the periodic refresh plus the
// fix rules heal the system — the census settles back into [1,2] between
// corruption bursts and, once corruption stops, permanently.
func TestHealsFromMessageCorruption(t *testing.T) {
	a := core.New(5, 6)
	r := NewRing[core.State](a, a.InitialLegitimate(), Options[core.State]{
		Link:           msgnet.LinkParams{Delay: 0.01, Jitter: 0.002, CorruptProb: 0.05},
		Refresh:        0.05,
		Seed:           11,
		CoherentCaches: true,
	})
	r.Net.Corrupt = func(rng *rand.Rand, payload core.State) core.State {
		return core.State{X: rng.Intn(6), RTS: rng.Intn(2) == 1, TRA: rng.Intn(2) == 1}
	}
	// Run under corruption for 30 simulated seconds.
	r.Net.Run(30)
	if r.Net.Stats().Corrupted == 0 {
		t.Fatal("no corruption happened; test is vacuous")
	}
	// Stop corrupting; the system must stabilize and stay stable.
	r.Net.Corrupt = func(rng *rand.Rand, payload core.State) core.State { return payload }
	settle := r.Net.Now() + 20
	r.Net.Run(settle)
	var tl verify.Timeline
	r.Net.Observer = func(now msgnet.Time) {
		tl.Record(float64(now), r.Census(core.HasToken))
	}
	r.Net.Run(settle + 10)
	tl.Close(float64(r.Net.Now()))
	if tl.MinCount() < 1 || tl.MaxCount() > 2 {
		t.Fatalf("census [%d,%d] after corruption ceased", tl.MinCount(), tl.MaxCount())
	}
}

// TestLinkOutage documents a model boundary: a PERMANENT duplex cut of one
// ring edge violates the paper's communication assumption (every state
// update is eventually delivered — Lemma 9's fairness), and coverage can
// then go dark: the node that really holds the Dijkstra token cannot see
// it because its predecessor cache is frozen pre-cut. Self-stabilization
// still applies the moment the edge heals: the census returns to [1,2]
// and circulation resumes.
func TestLinkOutage(t *testing.T) {
	a, r := ssrminRing(5, 6, defaultOpts())
	r.Net.Run(1)

	// Cut the edge between P1 and P2 (both directions).
	r.Net.SetLinkUp(1, 2, false)
	r.Net.SetLinkUp(2, 1, false)
	sawDark := false
	r.Net.Observer = func(now msgnet.Time) {
		if r.Census(core.HasToken) == 0 {
			sawDark = true
		}
	}
	r.Net.Run(10)
	// With this seed the cut catches a handover mid-flight and the ring
	// goes dark — the model-gap guarantee needs eventual delivery.
	if !sawDark {
		t.Log("note: this seed kept coverage through the cut (cut missed the handshake)")
	}

	// Heal and verify recovery: census back to [1,2] and full circulation.
	r.Net.SetLinkUp(1, 2, true)
	r.Net.SetLinkUp(2, 1, true)
	settle := r.Net.Now() + 5
	r.Net.Observer = nil
	r.Net.Run(settle)

	visited := map[int]bool{}
	mon := verify.Monitor{Bounds: verify.SSRminBounds}
	r.Net.Observer = func(now msgnet.Time) {
		mon.Observe(float64(now), r.Census(core.HasToken))
		for _, h := range r.Holders(core.HasToken) {
			visited[h] = true
		}
	}
	r.Net.Run(settle + 10)
	if !mon.OK() {
		t.Fatalf("census out of [1,2] after healing: %v", mon.Violations[0])
	}
	if len(visited) != a.N() {
		t.Fatalf("circulation did not resume after healing: visited %v", visited)
	}
}
