package verify

import (
	"math"
	"testing"

	"ssrmin/internal/core"
	"ssrmin/internal/statemodel"
)

func TestCountOnLegitimateConfigs(t *testing.T) {
	a := core.New(5, 6)
	for _, c := range a.LegitimateConfigs() {
		tc := Count(c)
		if tc.Primary != 1 || tc.Secondary != 1 {
			t.Fatalf("Count(%v) = %+v, want exactly one of each token", c, tc)
		}
		if tc.Privileged < 1 || tc.Privileged > 2 {
			t.Fatalf("Count(%v).Privileged = %d", c, tc.Privileged)
		}
		if !SSRminBounds.Check(tc.Privileged) {
			t.Fatalf("SSRminBounds rejected %d", tc.Privileged)
		}
		if !NeighborsOrSame(c) {
			t.Fatalf("holders of %v not neighbors", c)
		}
	}
}

func TestCountSeparatesHolders(t *testing.T) {
	a := core.New(3, 4)
	// γ2: P0 = x.1.0 (primary+announced secondary... the secondary moved),
	// P1 = x.0.1 (secondary holder).
	c := statemodel.Config[core.State]{
		{X: 0, RTS: true}, {X: 0, TRA: true}, {X: 0},
	}
	tc := Count(c)
	if tc.Primary != 1 || tc.Secondary != 1 || tc.Privileged != 2 {
		t.Fatalf("Count = %+v, want 1/1/2", tc)
	}
	if !a.Legitimate(c) {
		t.Fatal("γ2 form should be legitimate")
	}
}

func TestCSBounds(t *testing.T) {
	if MutualInclusion.Check(0) {
		t.Error("mutual inclusion must reject 0")
	}
	if !MutualInclusion.Check(5) {
		t.Error("mutual inclusion must accept 5")
	}
	me := CSBounds{L: 0, K: 1}
	if me.Check(2) || !me.Check(0) || !me.Check(1) {
		t.Error("mutual exclusion bounds wrong")
	}
	if SSRminBounds.String() != "(1,2)-CS" {
		t.Errorf("String = %q", SSRminBounds.String())
	}
}

func TestMonitor(t *testing.T) {
	m := Monitor{Bounds: SSRminBounds}
	m.Observe(0, 1)
	m.Observe(1, 2)
	m.Observe(2, 0)
	m.Observe(3, 3)
	if m.OK() {
		t.Error("monitor missed violations")
	}
	if m.Observed() != 4 {
		t.Errorf("Observed = %d", m.Observed())
	}
	if len(m.Violations) != 2 {
		t.Fatalf("Violations = %v", m.Violations)
	}
	if m.Violations[0].Privileged != 0 || m.Violations[1].Privileged != 3 {
		t.Errorf("Violations = %v", m.Violations)
	}
	if m.Violations[0].String() == "" {
		t.Error("empty violation string")
	}
}

func TestTimelineDurations(t *testing.T) {
	var tl Timeline
	tl.Record(0, 1)
	tl.Record(2, 2)
	tl.Record(3, 2) // duplicate count collapses
	tl.Record(5, 0)
	tl.Record(6, 1)
	tl.Close(10)

	if got := tl.Span(); got != 10 {
		t.Errorf("Span = %v", got)
	}
	if got := tl.Duration(1); got != 2+4 {
		t.Errorf("Duration(1) = %v, want 6", got)
	}
	if got := tl.Duration(2); got != 3 {
		t.Errorf("Duration(2) = %v, want 3", got)
	}
	if got := tl.Duration(0); got != 1 {
		t.Errorf("Duration(0) = %v, want 1", got)
	}
	if got := tl.Fraction(2); math.Abs(got-0.3) > 1e-12 {
		t.Errorf("Fraction(2) = %v, want 0.3", got)
	}
	if got := tl.MinCount(); got != 0 {
		t.Errorf("MinCount = %d", got)
	}
	if got := tl.MaxCount(); got != 2 {
		t.Errorf("MaxCount = %d", got)
	}
	counts := tl.Counts()
	if len(counts) != 3 || counts[0] != 0 || counts[2] != 2 {
		t.Errorf("Counts = %v", counts)
	}
	ivs := tl.Intervals(1)
	if len(ivs) != 2 || ivs[0].Len() != 2 || ivs[1].Len() != 4 {
		t.Errorf("Intervals(1) = %v", ivs)
	}
}

func TestTimelineZeroLengthExcursion(t *testing.T) {
	// An instantaneous dip to zero (two records at the same time) must not
	// count as time at zero.
	var tl Timeline
	tl.Record(0, 1)
	tl.Record(5, 0)
	tl.Record(5, 1)
	tl.Close(10)
	if got := tl.Duration(0); got != 0 {
		t.Errorf("Duration(0) = %v, want 0", got)
	}
	if got := tl.MinCount(); got != 1 {
		t.Errorf("MinCount = %d, want 1 (zero-length dip ignored)", got)
	}
}

func TestTimelinePanics(t *testing.T) {
	assertPanics := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	assertPanics("backwards time", func() {
		var tl Timeline
		tl.Record(5, 1)
		tl.Record(4, 2)
	})
	assertPanics("duration before close", func() {
		var tl Timeline
		tl.Record(0, 1)
		tl.Duration(1)
	})
	assertPanics("record after close", func() {
		var tl Timeline
		tl.Close(1)
		tl.Record(2, 1)
	})
	assertPanics("close before last record", func() {
		var tl Timeline
		tl.Record(5, 1)
		tl.Close(4)
	})
}

func TestNeighborsOrSame(t *testing.T) {
	// No token at all -> false.
	c := statemodel.Config[core.State]{{X: 0}, {X: 0}, {X: 0}}
	// n=3 all-equal x: P0 holds primary (G0), so actually one holder.
	if !NeighborsOrSame(c) {
		t.Error("single holder should pass")
	}
	// Wraparound adjacency: holders at n-1 and 0.
	d := statemodel.Config[core.State]{
		{X: 1, TRA: true}, {X: 1}, {X: 1}, {X: 0, RTS: true},
	}
	if !NeighborsOrSame(d) {
		t.Error("wraparound neighbors should pass")
	}
}

func TestJainFairness(t *testing.T) {
	if got := JainFairness([]float64{1, 1, 1, 1}); math.Abs(got-1) > 1e-12 {
		t.Errorf("equal shares = %v, want 1", got)
	}
	if got := JainFairness([]float64{1, 0, 0, 0}); math.Abs(got-0.25) > 1e-12 {
		t.Errorf("monopoly = %v, want 0.25", got)
	}
	if got := JainFairness([]float64{0, 0}); got != 1 {
		t.Errorf("all idle = %v, want 1", got)
	}
	if got := JainFairness(nil); got != 0 {
		t.Errorf("empty = %v, want 0", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("negative value accepted")
		}
	}()
	JainFairness([]float64{-1})
}

func TestAvailability(t *testing.T) {
	var tl Timeline
	tl.Record(0, 1)
	tl.Record(6, 0)
	tl.Record(8, 2)
	tl.Close(10)
	if got := Availability(&tl); math.Abs(got-0.8) > 1e-12 {
		t.Errorf("Availability = %v, want 0.8", got)
	}
	var empty Timeline
	empty.Close(0)
	if Availability(&empty) != 0 {
		t.Error("empty availability should be 0")
	}
}

// TestCountMinimumRing exercises the census on the smallest ring SSRmin
// admits (n = 3): the legitimate-configuration invariants must already
// hold at the boundary.
func TestCountMinimumRing(t *testing.T) {
	a := core.New(3, 4)
	for _, c := range a.LegitimateConfigs() {
		tc := Count(c)
		if tc.Primary != 1 || tc.Secondary != 1 {
			t.Fatalf("n=3 Count(%v) = %+v, want one of each token", c, tc)
		}
		if !SSRminBounds.Check(tc.Privileged) {
			t.Fatalf("n=3 census %d outside %v", tc.Privileged, SSRminBounds)
		}
	}
}

// TestCountBothTokensOneHolder pins the Privileged < Primary + Secondary
// case: on X = (0,0,0) only the bottom process holds the primary token,
// and setting its TRA flag gives it the secondary token too — one
// privileged process holding two tokens.
func TestCountBothTokensOneHolder(t *testing.T) {
	c := statemodel.Config[core.State]{
		{X: 0, TRA: true},
		{X: 0},
		{X: 0},
	}
	tc := Count(c)
	if tc.Primary != 1 || tc.Secondary != 1 || tc.Privileged != 1 {
		t.Fatalf("Count = %+v, want Primary=1 Secondary=1 Privileged=1", tc)
	}
	if tc.Privileged >= tc.Primary+tc.Secondary {
		t.Fatalf("Privileged %d not below Primary+Secondary %d for a double holder",
			tc.Privileged, tc.Primary+tc.Secondary)
	}
}

// TestTimelineEmpty pins the zero-observation edge case: a timeline closed
// without a single record must report an empty window, not panic or
// fabricate counts.
func TestTimelineEmpty(t *testing.T) {
	var tl Timeline
	tl.Close(0)
	if got := tl.Span(); got != 0 {
		t.Errorf("Span = %v, want 0", got)
	}
	if got := tl.MinCount(); got != -1 {
		t.Errorf("MinCount = %d, want -1", got)
	}
	if got := tl.MaxCount(); got != -1 {
		t.Errorf("MaxCount = %d, want -1", got)
	}
	if got := tl.Counts(); len(got) != 0 {
		t.Errorf("Counts = %v, want empty", got)
	}
	if got := tl.Duration(1); got != 0 {
		t.Errorf("Duration(1) = %v, want 0", got)
	}
	if got := tl.Fraction(1); got != 0 {
		t.Errorf("Fraction(1) = %v, want 0", got)
	}
}

// TestTimelineZeroLengthWindow: records exist but the window has zero
// extent (Close at the only record's instant) — every occupancy is a
// zero-length excursion.
func TestTimelineZeroLengthWindow(t *testing.T) {
	var tl Timeline
	tl.Record(3, 2)
	tl.Close(3)
	if got := tl.Span(); got != 0 {
		t.Errorf("Span = %v, want 0", got)
	}
	if got := tl.MinCount(); got != -1 {
		t.Errorf("MinCount = %d, want -1 (zero-length excursion)", got)
	}
	if got := tl.Counts(); len(got) != 0 {
		t.Errorf("Counts = %v, want empty", got)
	}
	if got := tl.Fraction(2); got != 0 {
		t.Errorf("Fraction(2) = %v, want 0", got)
	}
}

// TestTimelineAtRecordBoundary: At(t) with t exactly on a record's
// instant must return that record's count, not the previous one — the
// changepoint itself already carries the new census.
func TestTimelineAtRecordBoundary(t *testing.T) {
	var tl Timeline
	tl.Record(1, 1)
	tl.Record(3, 2)
	tl.Record(5, 0)
	tl.Close(7)
	cases := []struct {
		at   float64
		want int
	}{
		{0.5, -1}, // before the first record
		{1, 1},    // exactly on the first record
		{2, 1},
		{3, 2}, // exactly on an interior boundary
		{4.999, 2},
		{5, 0}, // exactly on the last record
		{6, 0},
		{7, 0}, // at the close instant
	}
	for _, tc := range cases {
		if got := tl.At(tc.at); got != tc.want {
			t.Errorf("At(%v) = %d, want %d", tc.at, got, tc.want)
		}
	}
}

// TestTimelineIntervalsClosedAtLastRecord: closing the window exactly at
// the last record's time makes that record a zero-length excursion, which
// Intervals must omit while keeping the earlier occupancies intact.
func TestTimelineIntervalsClosedAtLastRecord(t *testing.T) {
	var tl Timeline
	tl.Record(0, 1)
	tl.Record(2, 2)
	tl.Record(4, 1)
	tl.Close(4)
	if got := tl.Intervals(1); len(got) != 1 || got[0] != (Interval{From: 0, To: 2}) {
		t.Errorf("Intervals(1) = %v, want [{0 2}] only (final record is zero-length)", got)
	}
	if got := tl.Intervals(2); len(got) != 1 || got[0] != (Interval{From: 2, To: 4}) {
		t.Errorf("Intervals(2) = %v, want [{2 4}]", got)
	}
	if got := tl.MaxCount(); got != 2 {
		t.Errorf("MaxCount = %d, want 2", got)
	}
}

// TestTimelineFractionZeroSpan: a timeline whose whole span is a single
// instant must report Fraction 0 for every count rather than divide by
// zero, including counts that were recorded at that instant.
func TestTimelineFractionZeroSpan(t *testing.T) {
	var tl Timeline
	tl.Record(2, 1)
	tl.Record(2, 3) // same-instant changepoint
	tl.Close(2)
	for _, c := range []int{0, 1, 3} {
		if got := tl.Fraction(c); got != 0 {
			t.Errorf("Fraction(%d) = %v, want 0 on a zero-span timeline", c, got)
		}
	}
	if got := tl.Intervals(1); len(got) != 0 {
		t.Errorf("Intervals(1) = %v, want empty", got)
	}
	if got := tl.At(2); got != 3 {
		t.Errorf("At(2) = %d, want 3 (last same-instant record)", got)
	}
}
