// Package verify provides the correctness measures of the paper as
// executable checkers: token counting over configurations, mutual
// inclusion / mutual exclusion / (ℓ,k)-critical-section predicates, and
// timelines that track how many processes are privileged over (simulated
// or wall-clock) time in the message-passing experiments of Section 5.
package verify

import (
	"fmt"
	"sort"

	"ssrmin/internal/core"
	"ssrmin/internal/statemodel"
)

// TokenCount summarizes the privileges present in one SSRmin configuration.
type TokenCount struct {
	// Primary is the number of primary-token holders (processes with G_i).
	Primary int
	// Secondary is the number of secondary-token holders.
	Secondary int
	// Privileged is the number of distinct processes holding at least one
	// token. Privileged ≤ Primary + Secondary because one process can hold
	// both.
	Privileged int
}

// Count computes the token census of configuration c.
func Count(c statemodel.Config[core.State]) TokenCount {
	var tc TokenCount
	for i := range c {
		v := c.View(i)
		p, s := core.HasPrimary(v), core.HasSecondary(v)
		if p {
			tc.Primary++
		}
		if s {
			tc.Secondary++
		}
		if p || s {
			tc.Privileged++
		}
	}
	return tc
}

// CSBounds is an (ℓ,k)-critical-section specification: at least L and at
// most K processes privileged. Mutual inclusion is {L: 1, K: n}; mutual
// exclusion is {L: 0, K: 1}; SSRmin guarantees {L: 1, K: 2}.
type CSBounds struct {
	// L is the minimum number of privileged processes.
	L int
	// K is the maximum number of privileged processes.
	K int
}

// Check reports whether a privileged-process count satisfies the bounds.
func (b CSBounds) Check(privileged int) bool { return privileged >= b.L && privileged <= b.K }

func (b CSBounds) String() string { return fmt.Sprintf("(%d,%d)-CS", b.L, b.K) }

// MutualInclusion is the (1, n)-relaxation the paper targets, stated as
// the per-instant requirement "at least one process is privileged".
var MutualInclusion = CSBounds{L: 1, K: 1 << 30}

// SSRminBounds is Theorem 1's guarantee: at least one and at most two
// privileged processes.
var SSRminBounds = CSBounds{L: 1, K: 2}

// Violation records an instant (a step index or a time) at which a bound
// was broken.
type Violation struct {
	// At is the step index (state-reading model) or timestamp
	// (message-passing model) of the violation.
	At float64
	// Privileged is the offending count.
	Privileged int
}

func (v Violation) String() string {
	return fmt.Sprintf("t=%v: %d privileged", v.At, v.Privileged)
}

// Monitor checks a CSBounds invariant over an execution, collecting
// violations instead of failing fast so that experiments can report how
// often and how badly a baseline breaks.
type Monitor struct {
	// Bounds is the invariant under watch.
	Bounds CSBounds
	// Violations holds every observed violation, in observation order.
	Violations []Violation
	observed   int
}

// Observe feeds one instant into the monitor.
func (m *Monitor) Observe(at float64, privileged int) {
	m.observed++
	if !m.Bounds.Check(privileged) {
		m.Violations = append(m.Violations, Violation{At: at, Privileged: privileged})
	}
}

// Observed returns how many instants were fed in.
func (m *Monitor) Observed() int { return m.observed }

// OK reports whether no violation was observed.
func (m *Monitor) OK() bool { return len(m.Violations) == 0 }

// Timeline accumulates a step function count(t): how many processes are
// privileged at simulated time t. The message-passing experiments
// (Figures 11–13) record a changepoint whenever a delivery or a rule
// execution alters the census, then ask for the total duration spent at
// each count.
type Timeline struct {
	times  []float64
	counts []int
	closed bool
	end    float64
}

// Record notes that the count changed to count at time t. Times must be
// non-decreasing. Recording the same count repeatedly is harmless.
func (tl *Timeline) Record(t float64, count int) {
	if tl.closed {
		panic("verify: Record after Close")
	}
	if n := len(tl.times); n > 0 && t < tl.times[n-1] {
		panic(fmt.Sprintf("verify: time went backwards: %v after %v", t, tl.times[n-1]))
	}
	if n := len(tl.counts); n > 0 && tl.counts[n-1] == count {
		return
	}
	tl.times = append(tl.times, t)
	tl.counts = append(tl.counts, count)
}

// Close fixes the end of the observation window.
func (tl *Timeline) Close(end float64) {
	if n := len(tl.times); n > 0 && end < tl.times[n-1] {
		panic("verify: Close before last record")
	}
	tl.end = end
	tl.closed = true
}

// Duration returns the total time spent at the given count. The timeline
// must be closed.
func (tl *Timeline) Duration(count int) float64 {
	tl.mustClosed()
	total := 0.0
	for i, c := range tl.counts {
		if c != count {
			continue
		}
		to := tl.end
		if i+1 < len(tl.times) {
			to = tl.times[i+1]
		}
		total += to - tl.times[i]
	}
	return total
}

// Span returns the length of the observation window, measured from the
// first record to the close time.
func (tl *Timeline) Span() float64 {
	tl.mustClosed()
	if len(tl.times) == 0 {
		return 0
	}
	return tl.end - tl.times[0]
}

// End returns the close time of the observation window.
func (tl *Timeline) End() float64 {
	tl.mustClosed()
	return tl.end
}

// Fraction returns Duration(count) / Span().
func (tl *Timeline) Fraction(count int) float64 {
	span := tl.Span()
	if span == 0 {
		return 0
	}
	return tl.Duration(count) / span
}

// MinCount returns the smallest count ever held for a positive duration,
// ignoring zero-length excursions. Returns -1 on an empty timeline.
func (tl *Timeline) MinCount() int {
	tl.mustClosed()
	min := -1
	for i, c := range tl.counts {
		to := tl.end
		if i+1 < len(tl.times) {
			to = tl.times[i+1]
		}
		if to-tl.times[i] <= 0 {
			continue
		}
		if min == -1 || c < min {
			min = c
		}
	}
	return min
}

// MaxCount returns the largest count ever held for a positive duration, or
// -1 on an empty timeline.
func (tl *Timeline) MaxCount() int {
	tl.mustClosed()
	max := -1
	for i, c := range tl.counts {
		to := tl.end
		if i+1 < len(tl.times) {
			to = tl.times[i+1]
		}
		if to-tl.times[i] <= 0 {
			continue
		}
		if c > max {
			max = c
		}
	}
	return max
}

// Counts returns the sorted distinct counts that occur for positive
// duration.
func (tl *Timeline) Counts() []int {
	tl.mustClosed()
	set := map[int]bool{}
	for i, c := range tl.counts {
		to := tl.end
		if i+1 < len(tl.times) {
			to = tl.times[i+1]
		}
		if to-tl.times[i] > 0 {
			set[c] = true
		}
	}
	out := make([]int, 0, len(set))
	for c := range set {
		out = append(out, c)
	}
	sort.Ints(out)
	return out
}

// Intervals returns the maximal intervals during which the count equals
// count. Zero-length intervals are omitted.
func (tl *Timeline) Intervals(count int) []Interval {
	tl.mustClosed()
	var out []Interval
	for i, c := range tl.counts {
		if c != count {
			continue
		}
		to := tl.end
		if i+1 < len(tl.times) {
			to = tl.times[i+1]
		}
		if to > tl.times[i] {
			out = append(out, Interval{From: tl.times[i], To: to})
		}
	}
	return out
}

// At returns the count in effect at time t: the last record with time
// ≤ t, so an instant exactly on a record boundary reads the new count,
// and same-instant changepoints resolve to the final one. Before the
// first record it returns -1. The timeline must be closed.
func (tl *Timeline) At(t float64) int {
	tl.mustClosed()
	idx := sort.Search(len(tl.times), func(i int) bool { return tl.times[i] > t })
	if idx == 0 {
		return -1
	}
	return tl.counts[idx-1]
}

// Interval is a half-open time interval [From, To).
type Interval struct {
	From, To float64
}

// Len returns the interval length.
func (iv Interval) Len() float64 { return iv.To - iv.From }

func (tl *Timeline) mustClosed() {
	if !tl.closed {
		panic("verify: timeline not closed")
	}
}

// NeighborsOrSame reports whether the privileged processes of c are all
// within one ring hop of each other — the structural property of SSRmin's
// legitimate configurations (the two holders are the same process or
// adjacent).
func NeighborsOrSame(c statemodel.Config[core.State]) bool {
	var holders []int
	for i := range c {
		if core.HasToken(c.View(i)) {
			holders = append(holders, i)
		}
	}
	n := len(c)
	switch len(holders) {
	case 0:
		return false
	case 1:
		return true
	case 2:
		d := (holders[1] - holders[0]) % n
		return d == 1 || d == n-1
	default:
		return false
	}
}

// JainFairness computes Jain's fairness index of a nonnegative sample:
// (Σx)² / (n·Σx²), which is 1 for perfectly equal shares and 1/n when one
// member hogs everything. The camera experiments use it on per-station
// duty cycles: the circulating privilege should share the monitoring work
// almost perfectly evenly.
func JainFairness(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum, sq float64
	for _, x := range xs {
		if x < 0 {
			panic("verify: JainFairness needs nonnegative values")
		}
		sum += x
		sq += x * x
	}
	if sq == 0 {
		return 1 // everyone equally idle
	}
	return sum * sum / (float64(len(xs)) * sq)
}

// Availability returns the fraction of the (closed) timeline's span during
// which at least one process was privileged — the coverage measure of the
// camera application. 1.0 means continuous observation.
func Availability(tl *Timeline) float64 {
	span := tl.Span()
	if span <= 0 {
		return 0
	}
	return 1 - tl.Duration(0)/span
}
