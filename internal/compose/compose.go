// Package compose runs several independent instances of a ring algorithm
// side by side in one local state — the construction behind two of the
// paper's discussion points:
//
//   - The multi-token baseline of Figure 12: several Dijkstra rings
//     circulating independently still reach instants with zero tokens in
//     the message-passing model.
//   - A (m, 2m)-critical-section system (cf. the (ℓ,k)-CS family of
//     Kakugawa 2015, reference [9]): m SSRmin instances guarantee between
//     m and 2m privilege grants at every instant of the state-reading
//     execution, because each instance guarantees 1–2.
//
// A composed process moves all of its enabled instances simultaneously
// when the daemon schedules it; the instances never read each other's
// state, so each projection is a faithful execution of the inner
// algorithm under a (derived) daemon.
//
// The instance count is bounded by MaxInstances so that the composed
// state stays a comparable fixed-size array (usable as map keys by the
// model checker).
package compose

import (
	"fmt"

	"ssrmin/internal/statemodel"
)

// MaxInstances bounds the number of composed instances.
const MaxInstances = 4

// MultiState carries one inner state per instance; entries past the
// instance count hold the zero value.
type MultiState[S comparable] struct {
	// V holds the per-instance local states.
	V [MaxInstances]S
}

// Multi composes m independent instances of one algorithm.
type Multi[S comparable] struct {
	inner statemodel.Algorithm[S]
	m     int
}

var _ statemodel.Algorithm[MultiState[int]] = (*Multi[int])(nil)

// New composes m instances of inner (1 ≤ m ≤ MaxInstances).
func New[S comparable](inner statemodel.Algorithm[S], m int) *Multi[S] {
	if m < 1 || m > MaxInstances {
		panic(fmt.Sprintf("compose: instance count %d out of [1,%d]", m, MaxInstances))
	}
	return &Multi[S]{inner: inner, m: m}
}

// Name implements statemodel.Algorithm.
func (c *Multi[S]) Name() string { return fmt.Sprintf("%s×%d", c.inner.Name(), c.m) }

// N implements statemodel.Algorithm.
func (c *Multi[S]) N() int { return c.inner.N() }

// M returns the instance count.
func (c *Multi[S]) M() int { return c.m }

// Inner returns the composed inner algorithm.
func (c *Multi[S]) Inner() statemodel.Algorithm[S] { return c.inner }

// Rules implements statemodel.Algorithm: the rule number is a nonempty
// bitmask over instances — bit j set means instance j executes its own
// (unique, highest-priority) enabled rule.
func (c *Multi[S]) Rules() int { return 1<<c.m - 1 }

// Project extracts instance j's view from a composed view.
func (c *Multi[S]) Project(v statemodel.View[MultiState[S]], j int) statemodel.View[S] {
	if j < 0 || j >= c.m {
		panic(fmt.Sprintf("compose: instance %d out of range", j))
	}
	return statemodel.View[S]{
		I:    v.I,
		N:    v.N,
		Self: v.Self.V[j],
		Pred: v.Pred.V[j],
		Succ: v.Succ.V[j],
	}
}

// EnabledRule implements statemodel.Algorithm: the mask of instances whose
// inner algorithm is enabled (0 when none is).
func (c *Multi[S]) EnabledRule(v statemodel.View[MultiState[S]]) int {
	mask := 0
	for j := 0; j < c.m; j++ {
		if c.inner.EnabledRule(c.Project(v, j)) != 0 {
			mask |= 1 << j
		}
	}
	return mask
}

// Apply implements statemodel.Algorithm: every instance in the mask
// executes its own enabled rule against the old composed view.
func (c *Multi[S]) Apply(v statemodel.View[MultiState[S]], rule int) MultiState[S] {
	if rule <= 0 || rule >= 1<<c.m {
		panic(fmt.Sprintf("compose: bad rule mask %d", rule))
	}
	next := v.Self
	for j := 0; j < c.m; j++ {
		if rule&(1<<j) == 0 {
			continue
		}
		pv := c.Project(v, j)
		ir := c.inner.EnabledRule(pv)
		if ir == 0 {
			panic(fmt.Sprintf("compose: instance %d in mask but not enabled", j))
		}
		next.V[j] = c.inner.Apply(pv, ir)
	}
	return next
}

// Pack assembles a composed configuration from per-instance
// configurations. All inner configurations must have length n; missing
// instances (len(inners) < m is an error) are rejected.
func (c *Multi[S]) Pack(inners ...statemodel.Config[S]) statemodel.Config[MultiState[S]] {
	if len(inners) != c.m {
		panic(fmt.Sprintf("compose: Pack got %d configurations, want %d", len(inners), c.m))
	}
	n := c.N()
	out := make(statemodel.Config[MultiState[S]], n)
	for j, cfg := range inners {
		if len(cfg) != n {
			panic(fmt.Sprintf("compose: instance %d configuration has length %d, want %d", j, len(cfg), n))
		}
		for i := 0; i < n; i++ {
			out[i].V[j] = cfg[i]
		}
	}
	return out
}

// Unpack splits a composed configuration into per-instance configurations.
func (c *Multi[S]) Unpack(cfg statemodel.Config[MultiState[S]]) []statemodel.Config[S] {
	out := make([]statemodel.Config[S], c.m)
	for j := 0; j < c.m; j++ {
		inner := make(statemodel.Config[S], len(cfg))
		for i := range cfg {
			inner[i] = cfg[i].V[j]
		}
		out[j] = inner
	}
	return out
}

// HoldersAny returns the processes holding a token in at least one
// instance, per the inner holder predicate.
func (c *Multi[S]) HoldersAny(cfg statemodel.Config[MultiState[S]], holder func(statemodel.View[S]) bool) []int {
	var out []int
	for i := range cfg {
		v := cfg.View(i)
		for j := 0; j < c.m; j++ {
			if holder(c.Project(v, j)) {
				out = append(out, i)
				break
			}
		}
	}
	return out
}

// Grants counts privilege grants with multiplicity: the number of
// (process, instance) pairs whose inner holder predicate is true.
func (c *Multi[S]) Grants(cfg statemodel.Config[MultiState[S]], holder func(statemodel.View[S]) bool) int {
	count := 0
	for i := range cfg {
		v := cfg.View(i)
		for j := 0; j < c.m; j++ {
			if holder(c.Project(v, j)) {
				count++
			}
		}
	}
	return count
}

// HoldersOf returns the token holders of instance j.
func (c *Multi[S]) HoldersOf(cfg statemodel.Config[MultiState[S]], j int, holder func(statemodel.View[S]) bool) []int {
	var out []int
	for i := range cfg {
		if holder(c.Project(cfg.View(i), j)) {
			out = append(out, i)
		}
	}
	return out
}

// Enumerable is implemented by inner algorithms whose states can be
// enumerated; the composed AllStates is the m-fold product (beware: it
// grows as |S|^m).
type Enumerable[S comparable] interface {
	AllStates() []S
}

// AllStates enumerates the composed state space when the inner algorithm
// is Enumerable; it panics otherwise.
func (c *Multi[S]) AllStates() []MultiState[S] {
	en, ok := c.inner.(Enumerable[S])
	if !ok {
		panic("compose: inner algorithm does not enumerate its states")
	}
	inner := en.AllStates()
	out := []MultiState[S]{{}}
	for j := 0; j < c.m; j++ {
		var next []MultiState[S]
		for _, ms := range out {
			for _, s := range inner {
				ms.V[j] = s
				next = append(next, ms)
			}
		}
		out = next
	}
	return out
}
