package compose

import (
	"math/rand"
	"testing"

	"ssrmin/internal/core"
	"ssrmin/internal/daemon"
	"ssrmin/internal/dijkstra"
	"ssrmin/internal/statemodel"
)

func TestNewValidation(t *testing.T) {
	inner := dijkstra.New(4, 5)
	for _, m := range []int{0, 5, -1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(m=%d) did not panic", m)
				}
			}()
			New[dijkstra.State](inner, m)
		}()
	}
	c := New[dijkstra.State](inner, 3)
	if c.M() != 3 || c.N() != 4 || c.Rules() != 7 {
		t.Fatalf("M=%d N=%d Rules=%d", c.M(), c.N(), c.Rules())
	}
	if c.Name() == "" || c.Inner() != statemodel.Algorithm[dijkstra.State](inner) {
		t.Error("accessors broken")
	}
}

func TestPackUnpackRoundTrip(t *testing.T) {
	inner := dijkstra.New(3, 4)
	c := New[dijkstra.State](inner, 2)
	a := statemodel.Config[dijkstra.State]{{X: 1}, {X: 2}, {X: 3}}
	b := statemodel.Config[dijkstra.State]{{X: 0}, {X: 0}, {X: 1}}
	packed := c.Pack(a, b)
	parts := c.Unpack(packed)
	if !parts[0].Equal(a) || !parts[1].Equal(b) {
		t.Fatalf("round trip failed: %v", parts)
	}
}

func TestPackValidation(t *testing.T) {
	c := New[dijkstra.State](dijkstra.New(3, 4), 2)
	defer func() {
		if recover() == nil {
			t.Error("Pack accepted wrong count")
		}
	}()
	c.Pack(statemodel.Config[dijkstra.State]{{X: 1}, {X: 2}, {X: 3}})
}

// TestProjectionFaithful runs a composed simulation and checks each
// projected instance evolves exactly as a standalone simulation driven by
// the corresponding projected schedule.
func TestProjectionFaithful(t *testing.T) {
	inner := dijkstra.New(4, 5)
	c := New[dijkstra.State](inner, 3)
	rng := rand.New(rand.NewSource(1))

	cfgs := make([]statemodel.Config[dijkstra.State], 3)
	for j := range cfgs {
		cfgs[j] = make(statemodel.Config[dijkstra.State], 4)
		for i := range cfgs[j] {
			cfgs[j][i] = dijkstra.State{X: rng.Intn(5)}
		}
	}
	packed := c.Pack(cfgs...)

	for step := 0; step < 300; step++ {
		moves := statemodel.Enabled[MultiState[dijkstra.State]](c, packed)
		if len(moves) == 0 {
			t.Fatal("composed ring deadlocked (Dijkstra never deadlocks)")
		}
		sel := moves[rng.Intn(len(moves))]
		// Apply to the composition.
		next := statemodel.Apply[MultiState[dijkstra.State]](c, packed, []statemodel.Move{sel})
		// Apply the projection to each standalone instance.
		for j := 0; j < 3; j++ {
			if sel.Rule&(1<<j) != 0 {
				cfgs[j] = statemodel.Apply[dijkstra.State](inner, cfgs[j],
					[]statemodel.Move{{Process: sel.Process, Rule: 1}})
			}
		}
		packed = next
		parts := c.Unpack(packed)
		for j := 0; j < 3; j++ {
			if !parts[j].Equal(cfgs[j]) {
				t.Fatalf("step %d: instance %d diverged: %v vs %v", step, j, parts[j], cfgs[j])
			}
		}
	}
}

// TestComposedSSRminGrantBounds is the (m, 2m)-critical-section check:
// once every instance has converged, the number of privilege grants stays
// within [m, 2m] forever.
func TestComposedSSRminGrantBounds(t *testing.T) {
	for m := 1; m <= 3; m++ {
		inner := core.New(5, 6)
		c := New[core.State](inner, m)
		rng := rand.New(rand.NewSource(int64(m)))

		// Start every instance legitimate but at staggered positions by
		// letting them run independently for different lengths first.
		parts := make([]statemodel.Config[core.State], m)
		for j := range parts {
			sim := statemodel.NewSimulator[core.State](inner, daemon.NewCentralLowest(), inner.InitialLegitimate())
			sim.Run(3 * j)
			parts[j] = sim.Config()
		}
		packed := c.Pack(parts...)

		d := daemon.NewRandomSubset(rng, 0.5)
		sim := statemodel.NewSimulator[MultiState[core.State]](c, d, packed)
		for step := 0; step < 500; step++ {
			if _, ok := sim.Step(); !ok {
				t.Fatal("deadlock")
			}
			g := c.Grants(sim.Config(), core.HasToken)
			if g < m || g > 2*m {
				t.Fatalf("m=%d step %d: %d grants outside [%d,%d]", m, step, g, m, 2*m)
			}
			holders := c.HoldersAny(sim.Config(), core.HasToken)
			if len(holders) < 1 || len(holders) > 2*m {
				t.Fatalf("m=%d: %d distinct holders", m, len(holders))
			}
		}
	}
}

// TestComposedSSRminSelfStabilizes starts all instances from garbage and
// verifies every projection converges to its own legitimate set.
func TestComposedSSRminSelfStabilizes(t *testing.T) {
	inner := core.New(4, 5)
	c := New[core.State](inner, 2)
	rng := rand.New(rand.NewSource(9))
	parts := make([]statemodel.Config[core.State], 2)
	for j := range parts {
		parts[j] = make(statemodel.Config[core.State], 4)
		for i := range parts[j] {
			parts[j][i] = core.State{X: rng.Intn(5), RTS: rng.Intn(2) == 1, TRA: rng.Intn(2) == 1}
		}
	}
	sim := statemodel.NewSimulator[MultiState[core.State]](c, daemon.NewRandomSubset(rng, 0.7), c.Pack(parts...))
	legitBoth := func(cfg statemodel.Config[MultiState[core.State]]) bool {
		for _, part := range c.Unpack(cfg) {
			if !inner.Legitimate(part) {
				return false
			}
		}
		return true
	}
	steps, ok := sim.RunUntil(legitBoth, 4*inner.ConvergenceStepBound())
	if !ok {
		t.Fatalf("composed system did not converge in %d steps", 4*inner.ConvergenceStepBound())
	}
	t.Logf("both instances legitimate after %d steps", steps)
}

func TestHoldersOf(t *testing.T) {
	inner := dijkstra.New(3, 4)
	c := New[dijkstra.State](inner, 2)
	packed := c.Pack(
		statemodel.Config[dijkstra.State]{{X: 0}, {X: 0}, {X: 0}}, // token at P0
		statemodel.Config[dijkstra.State]{{X: 1}, {X: 1}, {X: 0}}, // token at P2
	)
	if h := c.HoldersOf(packed, 0, dijkstra.HasToken); len(h) != 1 || h[0] != 0 {
		t.Errorf("instance 0 holders = %v", h)
	}
	if h := c.HoldersOf(packed, 1, dijkstra.HasToken); len(h) != 1 || h[0] != 2 {
		t.Errorf("instance 1 holders = %v", h)
	}
	if h := c.HoldersAny(packed, dijkstra.HasToken); len(h) != 2 {
		t.Errorf("HoldersAny = %v", h)
	}
	if g := c.Grants(packed, dijkstra.HasToken); g != 2 {
		t.Errorf("Grants = %d", g)
	}
}

func TestAllStatesProduct(t *testing.T) {
	inner := dijkstra.New(3, 4)
	c := New[dijkstra.State](inner, 2)
	states := c.AllStates()
	if len(states) != 16 {
		t.Fatalf("|states| = %d, want 16", len(states))
	}
	seen := map[MultiState[dijkstra.State]]bool{}
	for _, s := range states {
		if seen[s] {
			t.Fatalf("duplicate state %v", s)
		}
		seen[s] = true
	}
}

func TestApplyBadMaskPanics(t *testing.T) {
	inner := dijkstra.New(3, 4)
	c := New[dijkstra.State](inner, 2)
	cfg := c.Pack(
		statemodel.Config[dijkstra.State]{{X: 0}, {X: 0}, {X: 0}},
		statemodel.Config[dijkstra.State]{{X: 0}, {X: 0}, {X: 0}},
	)
	defer func() {
		if recover() == nil {
			t.Error("Apply accepted mask 0")
		}
	}()
	c.Apply(cfg.View(0), 0)
}
