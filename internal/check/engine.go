// The parallel ID-space engine: every pass of the model checker —
// legitimate-set construction, no-deadlock, closure, invariant scans, and
// the convergence longest-path analysis — reimplemented over compiled
// transition tables (tables.go) and contiguous uint64 ID ranges sharded
// across a worker pool. Reports are bit-identical to the legacy
// Checker passes (differential_test.go pins this on every seed instance);
// the speedup comes from eliminating Decode/Encode, View construction and
// per-node map allocation from the hot path, and from near-linear scaling
// of the scans with cores.
package check

import (
	"runtime"
	"sync/atomic"

	"ssrmin/internal/parsweep"
	"ssrmin/internal/statemodel"
)

func defaultWorkers() int { return runtime.GOMAXPROCS(0) }

// chunkRange is one contiguous, 64-aligned shard of the ID space.
type chunkRange struct{ lo, hi uint64 }

// chunks shards [0, total) into 64-aligned ranges, several per worker for
// load balance.
func (e *Engine[S]) chunks() []chunkRange {
	target := uint64(e.workers * 4)
	if target < 1 {
		target = 1
	}
	step := (e.total + target - 1) / target
	step = (step + 63) &^ 63 // keep shard boundaries word-aligned
	if step == 0 {
		step = 64
	}
	var out []chunkRange
	for lo := uint64(0); lo < e.total; lo += step {
		hi := lo + step
		if hi > e.total {
			hi = e.total
		}
		out = append(out, chunkRange{lo, hi})
	}
	return out
}

// scanRange walks ids in [lo, hi) maintaining the base-q digit odometer,
// so per-ID digit extraction costs one increment instead of n divisions.
func (e *Engine[S]) scanRange(lo, hi uint64, fn func(id uint64, digits []int)) {
	digits := make([]int, e.n)
	e.digitsOf(lo, digits)
	for id := lo; id < hi; id++ {
		fn(id, digits)
		for i := 0; i < e.n; i++ {
			digits[i]++
			if digits[i] < e.q {
				break
			}
			digits[i] = 0
		}
	}
}

// LegitSet evaluates the legitimacy predicate over the full space in
// parallel and returns Λ as a bitmap. This is the only pass that decodes
// configurations (once each, into a per-worker buffer); every other engine
// pass tests Λ-membership by a single bit probe. The predicate must be
// safe for concurrent use and must not retain its argument.
func (e *Engine[S]) LegitSet(legit func(statemodel.Config[S]) bool) *IDSet {
	set := newIDSet(e.total)
	ch := e.chunks()
	counts := parsweep.Map(len(ch), e.workers, func(ci int) uint64 {
		cfg := make(statemodel.Config[S], e.n)
		var cnt uint64
		e.scanRange(ch[ci].lo, ch[ci].hi, func(id uint64, digits []int) {
			for i, d := range digits {
				cfg[i] = e.c.states[d]
			}
			if legit(cfg) {
				set.set(id)
				cnt++
			}
		})
		return cnt
	})
	for _, c := range counts {
		set.count += c
	}
	return set
}

// CheckNoDeadlock verifies in parallel that every configuration has an
// enabled process; it returns a deadlocked configuration otherwise.
func (e *Engine[S]) CheckNoDeadlock() (counterexample statemodel.Config[S], ok bool) {
	var found atomic.Uint64 // id+1 of a counterexample; 0 = none
	ch := e.chunks()
	parsweep.Map(len(ch), e.workers, func(ci int) struct{} {
		q, n := e.q, e.n
		e.scanRange(ch[ci].lo, ch[ci].hi, func(id uint64, digits []int) {
			if found.Load() != 0 {
				return
			}
			for i := 0; i < n; i++ {
				t := (digits[(i+n-1)%n]*q+digits[i])*q + digits[(i+1)%n]
				class := 0
				if i != 0 {
					class = 1
				}
				if e.rule[class][t] != 0 {
					return
				}
			}
			found.CompareAndSwap(0, id+1)
		})
		return struct{}{}
	})
	if id := found.Load(); id != 0 {
		return e.c.Decode(id - 1), false
	}
	return nil, true
}

// CheckClosure verifies that every distributed-daemon successor of every
// configuration in lam stays in lam, and reports |Λ| and the maximum
// number of simultaneously enabled processes over Λ. Λ is tiny compared to
// Γ (3nK for SSRmin), so the walk over its bitmap is sequential; each
// member costs a handful of table probes and subset additions.
func (e *Engine[S]) CheckClosure(lam *IDSet) ClosureReport[S] {
	var rep ClosureReport[S]
	rep.Legitimate = lam.Count()
	digits := make([]int, e.n)
	movers := make([]mover, 0, e.n)
	lam.ForEach(func(id uint64) bool {
		e.digitsOf(id, digits)
		movers = e.enabledMoves(digits, e.allRules, movers[:0])
		if len(movers) > rep.MaxEnabled {
			rep.MaxEnabled = len(movers)
		}
		if len(movers) > maxSubsetMoves {
			panic("check: too many enabled processes for subset enumeration")
		}
		for mask := 1; mask < 1<<uint(len(movers)); mask++ {
			var d int64
			for b := range movers {
				if mask&(1<<uint(b)) != 0 {
					d += movers[b].delta
				}
			}
			if nid := uint64(int64(id) + d); !lam.Contains(nid) {
				rep.Counterexample = e.c.Decode(id)
				rep.Successor = e.c.Decode(nid)
				return false
			}
		}
		return true
	})
	return rep
}

// ConvStats reports the bookkeeping cost of one convergence analysis.
type ConvStats struct {
	// Edges is the number of illegitimate→illegitimate transition-graph
	// edges materialized in the reverse-adjacency CSR.
	Edges uint64
	// Layers is the number of synchronized Kahn frontiers processed.
	Layers int
	// BookkeepingBytes is the peak size of the engine's dense arrays
	// (out-degrees, CSR offsets+edges, distance/best arrays, bitmaps).
	BookkeepingBytes uint64
}

// CheckConvergence verifies convergence under the unfair distributed
// daemon — the transition relation restricted to Γ∖lam must be acyclic —
// and computes the exact worst-case stabilization time, exactly like the
// legacy Checker.CheckConvergence but as a two-phase parallel analysis:
//
//  1. Two parallel sweeps over the ID space build, per illegitimate
//     configuration, its out-degree into Γ∖Λ and the reverse adjacency
//     (predecessor lists) in CSR form.
//  2. A layered Kahn pass peels nodes whose successors are all finalized,
//     propagating longest distances to predecessors with atomic max/
//     decrement counters. Unprocessed residue ⇔ a cycle.
func (e *Engine[S]) CheckConvergence(lam *IDSet) (ConvergenceReport[S], ConvStats) {
	rep, _, stats := e.convergence(lam, e.allRules)
	if rep.Converges {
		if o := e.c.Obs; o != nil {
			o.ConvergedAt(0, rep.WorstSteps)
		}
	}
	return rep, stats
}

// Distances is CheckConvergence plus the exact worst-case steps-to-Λ of
// every configuration, keyed by ID (only nonzero distances are present),
// with the same semantics as Checker.Distances.
func (e *Engine[S]) Distances(lam *IDSet) (map[uint64]int, ConvergenceReport[S]) {
	rep, dist, _ := e.convergence(lam, e.allRules)
	out := make(map[uint64]int)
	for id, d := range dist {
		if d != 0 {
			out[uint64(id)] = int(d)
		}
	}
	return out, rep
}

// LongestRestricted computes the longest execution using only the given
// rule set, from any start (Lemma 5); ok is false if such executions can
// be infinite. Identical semantics to Checker.LongestRestricted.
func (e *Engine[S]) LongestRestricted(rules map[int]bool) (steps int, start statemodel.Config[S], ok bool) {
	var mask uint32
	for r, on := range rules {
		if on && r >= 1 && r <= 30 {
			mask |= 1 << uint(r)
		}
	}
	rep, _, _ := e.convergence(newIDSet(e.total), mask)
	if !rep.Converges {
		return 0, rep.Cycle, false
	}
	return rep.WorstSteps, rep.WorstStart, true
}

func atomicMaxInt32(p *int32, v int32) {
	for {
		old := atomic.LoadInt32(p)
		if v <= old || atomic.CompareAndSwapInt32(p, old, v) {
			return
		}
	}
}

func (e *Engine[S]) convergence(lam *IDSet, ruleMask uint32) (ConvergenceReport[S], []int32, ConvStats) {
	var rep ConvergenceReport[S]
	rep.Converges = true
	total := e.total
	ch := e.chunks()

	// Phase 1a: out-degrees into Γ∖Λ and predecessor counts. hasSucc
	// records whether a node has any successor at all (legitimate ones
	// included): a node without one is terminal with distance 0, matching
	// the legacy rule-restriction semantics.
	outdeg := make([]int32, total)
	predCnt := make([]uint32, total)
	hasSucc := newIDSet(total)
	type sweepTotals struct{ illegit, edges uint64 }
	totals := parsweep.Map(len(ch), e.workers, func(ci int) sweepTotals {
		var t sweepTotals
		movers := make([]mover, 0, e.n)
		succs := make([]uint64, 0, 64)
		sums := make([]int64, 1<<uint(e.n))
		e.scanRange(ch[ci].lo, ch[ci].hi, func(id uint64, digits []int) {
			if lam.Contains(id) {
				return
			}
			t.illegit++
			movers = e.enabledMoves(digits, ruleMask, movers[:0])
			succs, sums = distinctSuccessors(id, movers, succs[:0], sums)
			if len(succs) > 0 {
				hasSucc.set(id)
			}
			var od int32
			for _, v := range succs {
				if lam.Contains(v) {
					continue
				}
				od++
				atomic.AddUint32(&predCnt[v], 1)
			}
			outdeg[id] = od
			t.edges += uint64(od)
		})
		return t
	})
	var illegit, edges uint64
	for _, t := range totals {
		illegit += t.illegit
		edges += t.edges
	}
	rep.Illegitimate = illegit

	// Phase 1b: CSR reverse adjacency. offsets is the usual prefix sum;
	// cur is the per-node fill cursor, advanced atomically in the second
	// parallel sweep.
	offsets := make([]uint64, total+1)
	for id := uint64(0); id < total; id++ {
		offsets[id+1] = offsets[id] + uint64(predCnt[id])
	}
	preds := make([]uint32, edges)
	cur := make([]uint64, total)
	copy(cur, offsets[:total])
	predCnt = nil
	parsweep.Map(len(ch), e.workers, func(ci int) struct{} {
		movers := make([]mover, 0, e.n)
		succs := make([]uint64, 0, 64)
		sums := make([]int64, 1<<uint(e.n))
		e.scanRange(ch[ci].lo, ch[ci].hi, func(id uint64, digits []int) {
			if lam.Contains(id) {
				return
			}
			movers = e.enabledMoves(digits, ruleMask, movers[:0])
			succs, sums = distinctSuccessors(id, movers, succs[:0], sums)
			for _, v := range succs {
				if lam.Contains(v) {
					continue
				}
				slot := atomic.AddUint64(&cur[v], 1) - 1
				preds[slot] = uint32(id)
			}
		})
		return struct{}{}
	})
	cur = nil

	stats := ConvStats{
		Edges: edges,
		BookkeepingBytes: 4*total + 4*total + 8*(total+1) + 8*total +
			4*edges + 4*total + 4*total + 3*(total+7)/8,
	}

	// Phase 2: layered Kahn over the reverse graph. best[u] accumulates
	// the max distance over u's finalized illegitimate successors
	// (legitimate successors contribute 0); when u's out-degree counter
	// hits zero its distance is final: best+1, or 0 for terminals.
	best := make([]int32, total)
	dist := make([]int32, total)
	finalized := newIDSet(total)
	var frontier []uint32
	fronts := parsweep.Map(len(ch), e.workers, func(ci int) []uint32 {
		var out []uint32
		for id := ch[ci].lo; id < ch[ci].hi; id++ {
			if lam.Contains(id) || outdeg[id] != 0 {
				continue
			}
			if hasSucc.Contains(id) {
				dist[id] = 1
			}
			finalized.set(id)
			out = append(out, uint32(id))
		}
		return out
	})
	var finalCnt uint64
	for _, f := range fronts {
		finalCnt += uint64(len(f))
		frontier = append(frontier, f...)
	}

	for len(frontier) > 0 {
		stats.Layers++
		parts := splitFrontier(frontier, e.workers*4)
		results := parsweep.Map(len(parts), e.workers, func(pi int) []uint32 {
			var next []uint32
			for _, v32 := range parts[pi] {
				v := uint64(v32)
				dv := dist[v]
				for _, u32 := range preds[offsets[v]:offsets[v+1]] {
					u := uint64(u32)
					atomicMaxInt32(&best[u], dv)
					if atomic.AddInt32(&outdeg[u], -1) == 0 {
						// Last successor finalized; every competing max
						// happened before its decrement, so best[u] is
						// complete.
						dist[u] = atomic.LoadInt32(&best[u]) + 1
						finalized.setAtomic(u)
						next = append(next, u32)
					}
				}
			}
			return next
		})
		frontier = frontier[:0]
		for _, r := range results {
			finalCnt += uint64(len(r))
			frontier = append(frontier, r...)
		}
	}

	if finalCnt < illegit {
		// Residue ⇔ a cycle through every unprocessed node.
		rep.Converges = false
		for id := uint64(0); id < total; id++ {
			if !lam.Contains(id) && !finalized.Contains(id) {
				rep.Cycle = e.c.Decode(id)
				break
			}
		}
		return rep, dist, stats
	}

	// Max distance with smallest-ID tie-break, reduced per chunk.
	type worst struct {
		d  int32
		id uint64
	}
	ws := parsweep.Map(len(ch), e.workers, func(ci int) worst {
		w := worst{0, ^uint64(0)}
		for id := ch[ci].lo; id < ch[ci].hi; id++ {
			if d := dist[id]; d > w.d {
				w = worst{d, id}
			}
		}
		return w
	})
	w := worst{0, ^uint64(0)}
	for _, c := range ws {
		if c.d > w.d || (c.d == w.d && c.id < w.id) {
			w = c
		}
	}
	rep.WorstSteps = int(w.d)
	if w.d > 0 {
		rep.WorstStart = e.c.Decode(w.id)
	}
	return rep, dist, stats
}

// splitFrontier partitions f into at most parts contiguous slices.
func splitFrontier(f []uint32, parts int) [][]uint32 {
	if parts < 1 {
		parts = 1
	}
	if parts > len(f) {
		parts = len(f)
	}
	out := make([][]uint32, 0, parts)
	step := (len(f) + parts - 1) / parts
	for lo := 0; lo < len(f); lo += step {
		hi := lo + step
		if hi > len(f) {
			hi = len(f)
		}
		out = append(out, f[lo:hi])
	}
	return out
}
