// Package check is an exhaustive model checker for guarded-command ring
// algorithms under the unfair distributed daemon. For small instances it
// walks the full configuration space Γ = Q^n and verifies the paper's
// lemmas mechanically:
//
//   - Closure (Lemma 1): every daemon choice maps Λ into Λ.
//   - No deadlock (Lemmas 3–4): every configuration has an enabled process.
//   - Convergence (Lemma 6 / Theorem 2): no execution — under *any*
//     daemon choice sequence — can avoid Λ forever. Because Λ is closed,
//     this is equivalent to the transition graph restricted to Γ∖Λ being
//     acyclic; the checker also extracts the exact worst-case number of
//     steps to reach Λ (the longest path), giving the true stabilization
//     time of the instance.
//   - Restricted executions (Lemma 5): the longest execution that uses
//     only a given rule subset, e.g. {1, 3, 5}, which the paper bounds by
//     3n.
//
// The distributed daemon picks an arbitrary nonempty subset of enabled
// processes, so a configuration with e enabled processes has up to 2^e − 1
// successors; the checker enumerates all of them.
package check

import (
	"fmt"
	"io"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"

	"ssrmin/internal/obs"
	"ssrmin/internal/statemodel"
)

// Space is an algorithm whose local-state set can be enumerated, enabling
// exhaustive exploration.
type Space[S comparable] interface {
	statemodel.Algorithm[S]
	// AllStates returns every possible local state.
	AllStates() []S
}

// Checker explores the full configuration space of one algorithm instance.
type Checker[S comparable] struct {
	alg    Space[S]
	states []S
	index  map[S]int
	n      int

	// Obs, when non-nil, receives a convergence-detected event (with the
	// exact worst-case step count) from every convergence check, on both
	// the legacy walker and the compiled engine. Set it before checking.
	Obs *obs.Observer
}

// New builds a checker. It panics if the configuration space exceeds
// maxConfigs (guarding against accidentally exponential runs); pass 0 for
// the default limit of 20 million configurations.
func New[S comparable](alg Space[S], maxConfigs uint64) *Checker[S] {
	states := alg.AllStates()
	if maxConfigs == 0 {
		maxConfigs = 20_000_000
	}
	size := uint64(1)
	for i := 0; i < alg.N(); i++ {
		size *= uint64(len(states))
		if size > maxConfigs {
			panic(fmt.Sprintf("check: |Γ| = %d^%d exceeds limit %d", len(states), alg.N(), maxConfigs))
		}
	}
	idx := make(map[S]int, len(states))
	for i, s := range states {
		if _, dup := idx[s]; dup {
			panic("check: AllStates returned duplicates")
		}
		idx[s] = i
	}
	return &Checker[S]{alg: alg, states: states, index: idx, n: alg.N()}
}

// NumConfigs returns |Γ|.
func (c *Checker[S]) NumConfigs() uint64 {
	size := uint64(1)
	for i := 0; i < c.n; i++ {
		size *= uint64(len(c.states))
	}
	return size
}

// Encode maps a configuration to its dense index.
func (c *Checker[S]) Encode(cfg statemodel.Config[S]) uint64 {
	var id uint64
	base := uint64(len(c.states))
	for i := c.n - 1; i >= 0; i-- {
		si, ok := c.index[cfg[i]]
		if !ok {
			panic("check: configuration contains a state outside AllStates")
		}
		id = id*base + uint64(si)
	}
	return id
}

// Decode maps a dense index back to a configuration.
func (c *Checker[S]) Decode(id uint64) statemodel.Config[S] {
	cfg := make(statemodel.Config[S], c.n)
	base := uint64(len(c.states))
	for i := 0; i < c.n; i++ {
		cfg[i] = c.states[id%base]
		id /= base
	}
	return cfg
}

// ForAll visits every configuration. The callback must not retain cfg.
// It returns early (false) if visit returns false.
func (c *Checker[S]) ForAll(visit func(cfg statemodel.Config[S]) bool) bool {
	total := c.NumConfigs()
	cfg := make(statemodel.Config[S], c.n)
	counters := make([]int, c.n)
	for i := range cfg {
		cfg[i] = c.states[0]
	}
	for iter := uint64(0); ; iter++ {
		if !visit(cfg) {
			return false
		}
		if iter+1 == total {
			return true
		}
		// Odometer increment.
		for i := 0; i < c.n; i++ {
			counters[i]++
			if counters[i] < len(c.states) {
				cfg[i] = c.states[counters[i]]
				break
			}
			counters[i] = 0
			cfg[i] = c.states[0]
		}
	}
}

// Successors enumerates every distributed-daemon successor of cfg: one per
// nonempty subset of the enabled moves, restricted to moves whose rule is
// permitted by rules (nil means all rules). The visit callback must not
// retain its argument. It stops early if visit returns false; the return
// value is the number of enabled (permitted) moves.
func (c *Checker[S]) Successors(cfg statemodel.Config[S], rules map[int]bool, visit func(next statemodel.Config[S]) bool) int {
	var moves []statemodel.Move
	for _, m := range statemodel.Enabled[S](c.alg, cfg) {
		if rules == nil || rules[m.Rule] {
			moves = append(moves, m)
		}
	}
	e := len(moves)
	if e == 0 {
		return 0
	}
	if e > 25 {
		panic("check: too many enabled processes for subset enumeration")
	}
	next := make(statemodel.Config[S], c.n)
	sel := make([]statemodel.Move, 0, e)
	for mask := 1; mask < 1<<e; mask++ {
		copy(next, cfg)
		sel = sel[:0]
		for b := 0; b < e; b++ {
			if mask&(1<<b) != 0 {
				sel = append(sel, moves[b])
			}
		}
		for _, m := range sel {
			next[m.Process] = c.alg.Apply(cfg.View(m.Process), m.Rule)
		}
		if !visit(next) {
			break
		}
	}
	return e
}

// CheckNoDeadlock verifies that every configuration has at least one
// enabled process. It returns the first deadlocked configuration found.
func (c *Checker[S]) CheckNoDeadlock() (counterexample statemodel.Config[S], ok bool) {
	ok = c.ForAll(func(cfg statemodel.Config[S]) bool {
		if len(statemodel.Enabled[S](c.alg, cfg)) == 0 {
			counterexample = cfg.Clone()
			return false
		}
		return true
	})
	return counterexample, ok
}

// ClosureReport summarizes a closure check.
type ClosureReport[S comparable] struct {
	// Legitimate is |Λ|.
	Legitimate uint64
	// MaxEnabled is the largest number of simultaneously enabled processes
	// seen in a legitimate configuration (Lemma 1 predicts exactly 1 for
	// SSRmin).
	MaxEnabled int
	// Counterexample, when non-nil, is a legitimate configuration with an
	// illegitimate successor.
	Counterexample statemodel.Config[S]
	// Successor is the offending successor.
	Successor statemodel.Config[S]
}

// CheckClosure verifies that every distributed-daemon successor of every
// legitimate configuration is legitimate.
func (c *Checker[S]) CheckClosure(legit func(statemodel.Config[S]) bool) ClosureReport[S] {
	var rep ClosureReport[S]
	c.ForAll(func(cfg statemodel.Config[S]) bool {
		if !legit(cfg) {
			return true
		}
		rep.Legitimate++
		e := c.Successors(cfg, nil, func(next statemodel.Config[S]) bool {
			if !legit(next) {
				rep.Counterexample = cfg.Clone()
				rep.Successor = next.Clone()
				return false
			}
			return true
		})
		if e > rep.MaxEnabled {
			rep.MaxEnabled = e
		}
		return rep.Counterexample == nil
	})
	return rep
}

// ConvergenceReport summarizes a convergence check.
type ConvergenceReport[S comparable] struct {
	// Converges is true when no execution can avoid Λ forever.
	Converges bool
	// Cycle, when Converges is false, holds one configuration on an
	// illegitimate cycle.
	Cycle statemodel.Config[S]
	// WorstSteps is the exact maximum number of steps any execution needs
	// to reach Λ (the longest path through Γ∖Λ).
	WorstSteps int
	// WorstStart is a configuration attaining WorstSteps.
	WorstStart statemodel.Config[S]
	// Illegitimate is |Γ∖Λ|.
	Illegitimate uint64
}

// CheckConvergence verifies convergence under the unfair distributed
// daemon: the transition relation restricted to illegitimate
// configurations must be acyclic (Λ is assumed closed — run CheckClosure
// first). It also computes the exact worst-case stabilization time.
func (c *Checker[S]) CheckConvergence(legit func(statemodel.Config[S]) bool) ConvergenceReport[S] {
	rep, _ := c.checkConvergenceRestricted(legit, nil)
	if rep.Converges {
		if o := c.Obs; o != nil {
			o.ConvergedAt(0, rep.WorstSteps)
		}
	}
	return rep
}

// Distances runs the convergence analysis and additionally returns the
// exact worst-case steps-to-Λ of every configuration, keyed by Encode
// (legitimate configurations map to 0). The single-fault experiment uses
// it to bound recovery from Hamming-distance-1 perturbations of Λ.
func (c *Checker[S]) Distances(legit func(statemodel.Config[S]) bool) (map[uint64]int, ConvergenceReport[S]) {
	rep, dist := c.checkConvergenceRestricted(legit, nil)
	return dist, rep
}

// LongestRestricted computes the longest execution that only ever uses
// rules from the given set, from any starting configuration (Lemma 5 with
// rules = {1, 3, 5}; the paper proves the result ≤ 3n). ok is false if
// such executions can be infinite (a cycle exists).
func (c *Checker[S]) LongestRestricted(rules map[int]bool) (steps int, start statemodel.Config[S], ok bool) {
	rep, _ := c.checkConvergenceRestricted(func(statemodel.Config[S]) bool { return false }, rules)
	if !rep.Converges {
		return 0, rep.Cycle, false
	}
	return rep.WorstSteps, rep.WorstStart, true
}

const (
	colorWhite = 0
	colorGray  = 1
	colorBlack = 2
)

// checkConvergenceRestricted runs an iterative DFS over the illegitimate
// region, detecting cycles and computing longest distances to Λ (or to a
// terminal configuration when a rule restriction makes some configs
// stuck). A configuration counts as terminal if it is legitimate; with a
// rule restriction, configurations without permitted moves are terminal
// with distance 0.
func (c *Checker[S]) checkConvergenceRestricted(legit func(statemodel.Config[S]) bool, rules map[int]bool) (ConvergenceReport[S], map[uint64]int) {
	var rep ConvergenceReport[S]
	rep.Converges = true
	// Tie-break WorstStart deterministically on the smallest configuration
	// ID so the report is independent of DFS finalization order — and
	// bit-identical to the table-compiled engine's.
	worstID := ^uint64(0)

	// Dense slice-backed bookkeeping: color takes one byte and dist four
	// bytes per configuration, so even the n=5, K=6 instance of SSRmin
	// (24^5 ≈ 8M configurations) fits in tens of megabytes — maps would
	// need gigabytes and an order of magnitude more time.
	total := c.NumConfigs()
	colorArr := make([]uint8, total)
	distArr := make([]int32, total)
	color := func(id uint64) uint8 { return colorArr[id] }
	setColor := func(id uint64, v uint8) { colorArr[id] = v }
	dist := func(id uint64) int { return int(distArr[id]) }
	setDist := func(id uint64, v int) { distArr[id] = int32(v) }

	// Iterative DFS with an explicit stack; each frame expands its
	// successor list lazily by materializing it once (configs are small).
	type frame struct {
		id    uint64
		succs []uint64
		next  int
	}

	expand := func(id uint64) []uint64 {
		cfg := c.Decode(id)
		seen := map[uint64]bool{}
		var out []uint64
		c.Successors(cfg, rules, func(next statemodel.Config[S]) bool {
			nid := c.Encode(next)
			if !seen[nid] {
				seen[nid] = true
				out = append(out, nid)
			}
			return true
		})
		return out
	}

	c.ForAll(func(cfg statemodel.Config[S]) bool {
		rootID := c.Encode(cfg)
		if color(rootID) != colorWhite || legit(cfg) {
			if legit(cfg) {
				setColor(rootID, colorBlack)
			} else {
				rep.Illegitimate++
			}
			return true
		}
		rep.Illegitimate++

		stack := []frame{{id: rootID, succs: expand(rootID)}}
		setColor(rootID, colorGray)
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			if f.next < len(f.succs) {
				nid := f.succs[f.next]
				f.next++
				ncfg := c.Decode(nid)
				if legit(ncfg) {
					setColor(nid, colorBlack)
					// dist stays 0 for legitimate configs.
					continue
				}
				switch color(nid) {
				case colorGray:
					rep.Converges = false
					rep.Cycle = ncfg
					return false
				case colorWhite:
					setColor(nid, colorGray)
					stack = append(stack, frame{id: nid, succs: expand(nid)})
				}
				continue
			}
			// All successors done: finalize distance.
			best := 0
			for _, nid := range f.succs {
				if d := dist(nid); d > best {
					best = d
				}
			}
			d := best + 1
			if len(f.succs) == 0 {
				// Terminal under a rule restriction (no permitted move).
				d = 0
			}
			setDist(f.id, d)
			if d > rep.WorstSteps || (d == rep.WorstSteps && d > 0 && f.id < worstID) {
				rep.WorstSteps = d
				rep.WorstStart = c.Decode(f.id)
				worstID = f.id
			}
			setColor(f.id, colorBlack)
			stack = stack[:len(stack)-1]
		}
		return true
	})
	out := make(map[uint64]int)
	for id, d := range distArr {
		if d != 0 {
			out[uint64(id)] = int(d)
		}
	}
	return rep, out
}

// CountLegitimate counts |Λ| for a predicate.
func (c *Checker[S]) CountLegitimate(legit func(statemodel.Config[S]) bool) uint64 {
	var count uint64
	c.ForAll(func(cfg statemodel.Config[S]) bool {
		if legit(cfg) {
			count++
		}
		return true
	})
	return count
}

// CheckInvariantOnLegitimate verifies a per-configuration invariant over
// Λ, returning the first violating configuration.
func (c *Checker[S]) CheckInvariantOnLegitimate(legit, inv func(statemodel.Config[S]) bool) (counterexample statemodel.Config[S], ok bool) {
	ok = c.ForAll(func(cfg statemodel.Config[S]) bool {
		if legit(cfg) && !inv(cfg) {
			counterexample = cfg.Clone()
			return false
		}
		return true
	})
	return counterexample, ok
}

// CheckInvariantParallel verifies inv on every configuration using a
// worker pool (workers ≤ 0 selects GOMAXPROCS). The configuration space is
// split into contiguous index ranges; each worker decodes and checks its
// own range, with an early-exit flag shared across workers. Returns the
// first counterexample found (any one, if several exist).
func (c *Checker[S]) CheckInvariantParallel(workers int, inv func(statemodel.Config[S]) bool) (counterexample statemodel.Config[S], ok bool) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	total := c.NumConfigs()
	if uint64(workers) > total {
		workers = int(total)
	}
	if workers < 1 {
		workers = 1
	}
	var (
		wg   sync.WaitGroup
		stop atomic.Bool
		mu   sync.Mutex
	)
	chunk := total / uint64(workers)
	for w := 0; w < workers; w++ {
		lo := uint64(w) * chunk
		hi := lo + chunk
		if w == workers-1 {
			hi = total
		}
		wg.Add(1)
		go func(lo, hi uint64) {
			defer wg.Done()
			for id := lo; id < hi; id++ {
				if stop.Load() {
					return
				}
				cfg := c.Decode(id)
				if !inv(cfg) {
					mu.Lock()
					if counterexample == nil {
						counterexample = cfg
					}
					mu.Unlock()
					stop.Store(true)
					return
				}
			}
		}(lo, hi)
	}
	wg.Wait()
	return counterexample, counterexample == nil
}

// CheckNoDeadlockParallel is CheckNoDeadlock over a worker pool.
func (c *Checker[S]) CheckNoDeadlockParallel(workers int) (statemodel.Config[S], bool) {
	return c.CheckInvariantParallel(workers, func(cfg statemodel.Config[S]) bool {
		return len(statemodel.Enabled[S](c.alg, cfg)) > 0
	})
}

// CheckClosureParallel verifies closure over a worker pool: every
// distributed-daemon successor of every legitimate configuration must be
// legitimate.
func (c *Checker[S]) CheckClosureParallel(workers int, legit func(statemodel.Config[S]) bool) (statemodel.Config[S], bool) {
	return c.CheckInvariantParallel(workers, func(cfg statemodel.Config[S]) bool {
		if !legit(cfg) {
			return true
		}
		okAll := true
		c.Successors(cfg, nil, func(next statemodel.Config[S]) bool {
			if !legit(next) {
				okAll = false
				return false
			}
			return true
		})
		return okAll
	})
}

// WorstPath extracts one exact worst-case execution: starting from the
// configuration with the largest distance-to-Λ, it follows successors of
// strictly decreasing distance until a legitimate configuration is
// reached. The result starts at the worst configuration and ends at the
// first legitimate one; its length-1 equals the reported WorstSteps.
func (c *Checker[S]) WorstPath(legit func(statemodel.Config[S]) bool) []statemodel.Config[S] {
	dist, rep := c.Distances(legit)
	if !rep.Converges || rep.WorstSteps == 0 {
		return nil
	}
	path := []statemodel.Config[S]{rep.WorstStart.Clone()}
	cur := rep.WorstStart
	remaining := rep.WorstSteps
	for remaining > 0 {
		var next statemodel.Config[S]
		c.Successors(cur, nil, func(cand statemodel.Config[S]) bool {
			d := 0
			if !legit(cand) {
				d = dist[c.Encode(cand)]
			}
			if d == remaining-1 {
				next = cand.Clone()
				return false
			}
			return true
		})
		if next == nil {
			panic("check: worst path broke — distances inconsistent")
		}
		path = append(path, next)
		cur = next
		remaining--
	}
	return path
}

// ExportDOT writes the transition graph induced on the configurations
// satisfying keep (e.g. the legitimate set Λ, giving the 3nK-cycle of
// Lemma 1) as a Graphviz DOT digraph. Node labels use the states' String
// methods via %v; edges are distributed-daemon transitions between kept
// configurations. Returns the number of nodes and edges written.
func (c *Checker[S]) ExportDOT(w io.Writer, name string, keep func(statemodel.Config[S]) bool) (nodes, edges int, err error) {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n  rankdir=LR;\n  node [shape=box, fontname=monospace];\n", name)
	c.ForAll(func(cfg statemodel.Config[S]) bool {
		if !keep(cfg) {
			return true
		}
		nodes++
		id := c.Encode(cfg)
		fmt.Fprintf(&b, "  n%d [label=%q];\n", id, fmt.Sprintf("%v", cfg))
		c.Successors(cfg, nil, func(next statemodel.Config[S]) bool {
			if keep(next) {
				edges++
				fmt.Fprintf(&b, "  n%d -> n%d;\n", id, c.Encode(next))
			}
			return true
		})
		return true
	})
	b.WriteString("}\n")
	_, err = io.WriteString(w, b.String())
	return nodes, edges, err
}

// ReachableFrom runs a BFS over distributed-daemon transitions from start,
// restricted to configurations satisfying within, and returns how many
// distinct configurations were visited (including start). The Lemma 1
// proof's part (b) — every legitimate configuration is reachable from γ0 —
// is checked by ReachableFrom(γ0, Legitimate) == |Λ|.
func (c *Checker[S]) ReachableFrom(start statemodel.Config[S], within func(statemodel.Config[S]) bool) uint64 {
	if !within(start) {
		return 0
	}
	seen := map[uint64]bool{c.Encode(start): true}
	queue := []uint64{c.Encode(start)}
	for len(queue) > 0 {
		id := queue[0]
		queue = queue[1:]
		cfg := c.Decode(id)
		c.Successors(cfg, nil, func(next statemodel.Config[S]) bool {
			if !within(next) {
				return true
			}
			nid := c.Encode(next)
			if !seen[nid] {
				seen[nid] = true
				queue = append(queue, nid)
			}
			return true
		})
	}
	return uint64(len(seen))
}
