package check

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"ssrmin/internal/core"
	"ssrmin/internal/dijkstra"
	"ssrmin/internal/statemodel"
)

// diffOne runs the legacy and the table-compiled engine side by side on
// one instance and asserts bit-identical reports: ClosureReport,
// ConvergenceReport (including WorstStart, thanks to the shared
// smallest-ID tie-break), the full Distances map, and |Λ|.
func diffOne[S comparable](t *testing.T, alg Space[S], legit func(statemodel.Config[S]) bool, workers int) {
	t.Helper()
	c := New[S](alg, 0)
	e, err := c.Compile(workers)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	lam := e.LegitSet(legit)

	if got, want := lam.Count(), c.CountLegitimate(legit); got != want {
		t.Fatalf("|Λ|: engine %d, legacy %d", got, want)
	}

	_, legacyOK := c.CheckNoDeadlock()
	_, engineOK := e.CheckNoDeadlock()
	if legacyOK != engineOK {
		t.Fatalf("no-deadlock: engine %v, legacy %v", engineOK, legacyOK)
	}

	lc := c.CheckClosure(legit)
	ec := e.CheckClosure(lam)
	if lc.Legitimate != ec.Legitimate || lc.MaxEnabled != ec.MaxEnabled ||
		(lc.Counterexample == nil) != (ec.Counterexample == nil) {
		t.Fatalf("closure: engine %+v, legacy %+v", ec, lc)
	}

	ldist, lconv := c.Distances(legit)
	edist, econv := e.Distances(lam)
	if lconv.Converges != econv.Converges || lconv.WorstSteps != econv.WorstSteps ||
		lconv.Illegitimate != econv.Illegitimate {
		t.Fatalf("convergence: engine %+v, legacy %+v", econv, lconv)
	}
	if (lconv.WorstStart == nil) != (econv.WorstStart == nil) ||
		(lconv.WorstStart != nil && !lconv.WorstStart.Equal(econv.WorstStart)) {
		t.Fatalf("WorstStart: engine %v, legacy %v", econv.WorstStart, lconv.WorstStart)
	}
	if !reflect.DeepEqual(ldist, edist) {
		t.Fatalf("Distances maps differ: legacy %d entries, engine %d entries", len(ldist), len(edist))
	}
}

func TestDifferentialSSRmin(t *testing.T) {
	cases := []struct{ n, k int }{{3, 4}, {3, 5}}
	if !testing.Short() {
		cases = append(cases, struct{ n, k int }{4, 5})
	}
	for _, tc := range cases {
		a := core.New(tc.n, tc.k)
		t.Run(a.Name(), func(t *testing.T) {
			diffOne[core.State](t, a, a.Legitimate, 4)
		})
	}
}

func TestDifferentialSSToken(t *testing.T) {
	for _, n := range []int{3, 4, 5} {
		a := dijkstra.New(n, n+1)
		t.Run(a.Name(), func(t *testing.T) {
			diffOne[dijkstra.State](t, a, a.Legitimate, 4)
		})
	}
}

// TestDifferentialLongestRestricted pins the Lemma 5 quiet-execution
// analysis (rule-restricted longest path, where terminal configurations
// exist) to the legacy result.
func TestDifferentialLongestRestricted(t *testing.T) {
	a := core.New(3, 4)
	c := New[core.State](a, 0)
	e, err := c.Compile(2)
	if err != nil {
		t.Fatal(err)
	}
	rules := map[int]bool{
		core.RuleReadySecondary: true,
		core.RuleRecvSecondary:  true,
		core.RuleFixNoG:         true,
	}
	ls, lstart, lok := c.LongestRestricted(rules)
	es, estart, eok := e.LongestRestricted(rules)
	if lok != eok || ls != es {
		t.Fatalf("LongestRestricted: engine (%d,%v), legacy (%d,%v)", es, eok, ls, lok)
	}
	if (lstart == nil) != (estart == nil) || (lstart != nil && !lstart.Equal(estart)) {
		t.Fatalf("restricted WorstStart: engine %v, legacy %v", estart, lstart)
	}
}

// TestTablesMatchDirect is the testing/quick property: on random views,
// the compiled tables agree with the direct EnabledRule/Apply
// implementations for both algorithms.
func TestTablesMatchDirect(t *testing.T) {
	t.Run("ssrmin", func(t *testing.T) {
		a := core.New(4, 5)
		c := New[core.State](a, 0)
		e, err := c.Compile(1)
		if err != nil {
			t.Fatal(err)
		}
		states := a.AllStates()
		prop := func(pi, si, ui uint8, bottom bool) bool {
			p, s, u := int(pi)%len(states), int(si)%len(states), int(ui)%len(states)
			class := 1
			if bottom {
				class = 0
			}
			v := statemodel.ClassView(class, a.N(), states[p], states[s], states[u])
			tr := statemodel.TripleIndex(len(states), p, s, u)
			r := a.EnabledRule(v)
			if int(e.rule[class][tr]) != r {
				return false
			}
			if r == 0 {
				return int(e.next[class][tr]) == s
			}
			return states[e.next[class][tr]] == a.Apply(v, r)
		}
		if err := quick.Check(prop, &quick.Config{MaxCount: 5000, Rand: rand.New(rand.NewSource(1))}); err != nil {
			t.Fatal(err)
		}
	})
	t.Run("sstoken", func(t *testing.T) {
		a := dijkstra.New(4, 5)
		c := New[dijkstra.State](a, 0)
		e, err := c.Compile(1)
		if err != nil {
			t.Fatal(err)
		}
		states := a.AllStates()
		prop := func(pi, si, ui uint8, bottom bool) bool {
			p, s, u := int(pi)%len(states), int(si)%len(states), int(ui)%len(states)
			class := 1
			if bottom {
				class = 0
			}
			v := statemodel.ClassView(class, a.N(), states[p], states[s], states[u])
			tr := statemodel.TripleIndex(len(states), p, s, u)
			r := a.EnabledRule(v)
			if int(e.rule[class][tr]) != r {
				return false
			}
			return r == 0 || states[e.next[class][tr]] == a.Apply(v, r)
		}
		if err := quick.Check(prop, &quick.Config{MaxCount: 5000, Rand: rand.New(rand.NewSource(2))}); err != nil {
			t.Fatal(err)
		}
	})
}
