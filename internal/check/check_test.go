package check

import (
	"strings"
	"testing"

	"ssrmin/internal/core"
	"ssrmin/internal/dijkstra"
	"ssrmin/internal/statemodel"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	a := core.New(3, 4)
	c := New[core.State](a, 0)
	if got := c.NumConfigs(); got != 16*16*16 {
		t.Fatalf("NumConfigs = %d, want 4096", got)
	}
	count := 0
	seen := map[uint64]bool{}
	c.ForAll(func(cfg statemodel.Config[core.State]) bool {
		id := c.Encode(cfg)
		if seen[id] {
			t.Fatalf("duplicate id %d for %v", id, cfg)
		}
		seen[id] = true
		back := c.Decode(id)
		if !back.Equal(cfg) {
			t.Fatalf("Decode(Encode(%v)) = %v", cfg, back)
		}
		count++
		return true
	})
	if count != 4096 {
		t.Fatalf("ForAll visited %d configs", count)
	}
}

func TestSizeLimit(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New accepted an oversized space")
		}
	}()
	New[core.State](core.New(8, 9), 1000)
}

func TestSuccessorsEnumeratesSubsets(t *testing.T) {
	a := dijkstra.New(3, 4)
	c := New[dijkstra.State](a, 0)
	// (0,1,2): P1 and P2 enabled -> 3 nonempty subsets.
	cfg := statemodel.Config[dijkstra.State]{{X: 0}, {X: 1}, {X: 2}}
	var succs []statemodel.Config[dijkstra.State]
	e := c.Successors(cfg, nil, func(next statemodel.Config[dijkstra.State]) bool {
		succs = append(succs, next.Clone())
		return true
	})
	if e != 2 {
		t.Fatalf("enabled = %d, want 2", e)
	}
	if len(succs) != 3 {
		t.Fatalf("successors = %d, want 3 (nonempty subsets of 2)", len(succs))
	}
	// Composite atomicity: when both move, P2 copies the OLD x1 = 1.
	both := statemodel.Config[dijkstra.State]{{X: 0}, {X: 0}, {X: 1}}
	found := false
	for _, s := range succs {
		if s.Equal(both) {
			found = true
		}
	}
	if !found {
		t.Fatalf("simultaneous-move successor %v missing from %v", both, succs)
	}
}

func TestSuccessorsRuleRestriction(t *testing.T) {
	a := core.New(3, 4)
	c := New[core.State](a, 0)
	// γ2 form: P0 = 0.1.0, P1 = 0.0.1 -> P0 enabled by Rule 2 only.
	cfg := statemodel.Config[core.State]{
		{X: 0, RTS: true}, {X: 0, TRA: true}, {X: 0},
	}
	e := c.Successors(cfg, map[int]bool{1: true, 3: true, 5: true}, func(statemodel.Config[core.State]) bool {
		t.Fatal("no successor expected under {1,3,5} restriction")
		return false
	})
	if e != 0 {
		t.Fatalf("restricted enabled = %d, want 0", e)
	}
}

// TestSSTokenFullVerification model-checks Dijkstra's ring end to end for
// n=3, K=4: closure of the strict legitimate set, no deadlock, convergence
// under the unfair distributed daemon, and the exact worst-case
// stabilization time within the 3n(n−1)/2 bound.
func TestSSTokenFullVerification(t *testing.T) {
	a := dijkstra.New(3, 4)
	c := New[dijkstra.State](a, 0)

	if cex, ok := c.CheckNoDeadlock(); !ok {
		t.Fatalf("deadlock at %v", cex)
	}

	rep := c.CheckClosure(a.Legitimate)
	if rep.Counterexample != nil {
		t.Fatalf("closure violated: %v -> %v", rep.Counterexample, rep.Successor)
	}
	if rep.Legitimate != uint64(a.N()*a.K()) {
		t.Errorf("|Λ| = %d, want %d", rep.Legitimate, a.N()*a.K())
	}
	if rep.MaxEnabled != 1 {
		t.Errorf("max enabled in Λ = %d, want 1", rep.MaxEnabled)
	}

	conv := c.CheckConvergence(a.Legitimate)
	if !conv.Converges {
		t.Fatalf("divergent cycle at %v", conv.Cycle)
	}
	if bound := a.ConvergenceBound() + 2*a.N(); conv.WorstSteps > bound {
		t.Errorf("worst-case steps %d exceeds bound %d", conv.WorstSteps, bound)
	}
	if conv.WorstSteps == 0 {
		t.Error("worst-case steps = 0; expected some illegitimate start to need work")
	}
	t.Logf("SSToken n=3 K=4: |Γ∖Λ| = %d, worst-case stabilization = %d steps (from %v)",
		conv.Illegitimate, conv.WorstSteps, conv.WorstStart)
}

// TestSSRminFullVerification is the central mechanical verification of the
// paper's main results on the n=3, K=4 instance (4096 configurations):
// Lemma 1 (closure, exactly one enabled process in Λ), Lemma 4 (no
// deadlock), Lemma 6/Theorem 2 (convergence under the unfair distributed
// daemon), Theorem 1 (1 ≤ privileged ≤ 2 in Λ), and Lemma 2 (exactly one
// primary and one secondary token in Λ).
func TestSSRminFullVerification(t *testing.T) {
	a := core.New(3, 4)
	c := New[core.State](a, 0)

	if cex, ok := c.CheckNoDeadlock(); !ok {
		t.Fatalf("Lemma 4 violated: deadlock at %v", cex)
	}

	rep := c.CheckClosure(a.Legitimate)
	if rep.Counterexample != nil {
		t.Fatalf("Lemma 1 violated: %v -> %v", rep.Counterexample, rep.Successor)
	}
	if want := uint64(3 * a.N() * a.K()); rep.Legitimate != want {
		t.Errorf("|Λ| = %d, want %d", rep.Legitimate, want)
	}
	if rep.MaxEnabled != 1 {
		t.Errorf("max enabled in Λ = %d, want 1 (Lemma 1)", rep.MaxEnabled)
	}

	if cex, ok := c.CheckInvariantOnLegitimate(a.Legitimate, func(cfg statemodel.Config[core.State]) bool {
		p := len(a.PrimaryHolders(cfg))
		s := len(a.SecondaryHolders(cfg))
		priv := len(a.TokenHolders(cfg))
		return p == 1 && s == 1 && priv >= 1 && priv <= 2
	}); !ok {
		t.Fatalf("Theorem 1 / Lemma 2 violated at %v", cex)
	}

	conv := c.CheckConvergence(a.Legitimate)
	if !conv.Converges {
		t.Fatalf("Lemma 6 violated: cycle at %v", conv.Cycle)
	}
	if conv.WorstSteps > a.ConvergenceStepBound() {
		t.Errorf("worst-case steps %d exceeds O(n²) budget %d", conv.WorstSteps, a.ConvergenceStepBound())
	}
	t.Logf("SSRmin n=3 K=4: |Γ∖Λ| = %d, exact worst-case stabilization = %d steps (from %v)",
		conv.Illegitimate, conv.WorstSteps, conv.WorstStart)
}

// TestSSRminLemma5Exact verifies Lemma 5 exactly on the n=3, K=4
// instance: the longest execution using only Rules 1, 3 and 5 is at most
// 3n = 9 steps, and such executions cannot be infinite.
func TestSSRminLemma5Exact(t *testing.T) {
	a := core.New(3, 4)
	c := New[core.State](a, 0)
	steps, start, ok := c.LongestRestricted(map[int]bool{
		core.RuleReadySecondary: true,
		core.RuleRecvSecondary:  true,
		core.RuleFixNoG:         true,
	})
	if !ok {
		t.Fatalf("Lemma 5 violated: infinite {1,3,5}-execution from %v", start)
	}
	if steps > 3*a.N() {
		t.Errorf("longest {1,3,5}-execution = %d steps, exceeds 3n = %d", steps, 3*a.N())
	}
	if steps == 0 {
		t.Error("longest {1,3,5}-execution = 0, expected positive")
	}
	t.Logf("longest quiet execution: %d steps (bound 3n = %d), from %v", steps, 3*a.N(), start)
}

// TestSSRminN4 repeats the headline verification on n=4, K=5 (160 000
// configurations) to gain confidence beyond the minimal instance. It is
// skipped in -short mode.
func TestSSRminN4(t *testing.T) {
	if testing.Short() {
		t.Skip("n=4 exhaustive check skipped in short mode")
	}
	a := core.New(4, 5)
	c := New[core.State](a, 0)

	if cex, ok := c.CheckNoDeadlock(); !ok {
		t.Fatalf("deadlock at %v", cex)
	}
	rep := c.CheckClosure(a.Legitimate)
	if rep.Counterexample != nil {
		t.Fatalf("closure violated: %v -> %v", rep.Counterexample, rep.Successor)
	}
	if rep.MaxEnabled != 1 {
		t.Errorf("max enabled in Λ = %d, want 1", rep.MaxEnabled)
	}
	conv := c.CheckConvergence(a.Legitimate)
	if !conv.Converges {
		t.Fatalf("cycle at %v", conv.Cycle)
	}
	if conv.WorstSteps > a.ConvergenceStepBound() {
		t.Errorf("worst-case %d exceeds budget %d", conv.WorstSteps, a.ConvergenceStepBound())
	}
	t.Logf("SSRmin n=4 K=5: worst-case stabilization = %d steps", conv.WorstSteps)
}

func TestParallelCheckersAgree(t *testing.T) {
	a := core.New(3, 4)
	c := New[core.State](a, 0)
	if cex, ok := c.CheckNoDeadlockParallel(4); !ok {
		t.Fatalf("parallel deadlock check failed at %v", cex)
	}
	if cex, ok := c.CheckClosureParallel(4, a.Legitimate); !ok {
		t.Fatalf("parallel closure check failed at %v", cex)
	}
	// A deliberately false invariant must produce a counterexample.
	cex, ok := c.CheckInvariantParallel(4, func(cfg statemodel.Config[core.State]) bool {
		return cfg[0].X != 2
	})
	if ok || cex == nil || cex[0].X != 2 {
		t.Fatalf("parallel invariant missed the counterexample: %v %v", cex, ok)
	}
	// Single worker fallback.
	if _, ok := c.CheckNoDeadlockParallel(1); !ok {
		t.Fatal("single-worker check failed")
	}
}

func TestParallelMatchesSequentialTiming(t *testing.T) {
	if testing.Short() {
		t.Skip("n=4 parallel check skipped in short mode")
	}
	a := core.New(4, 5)
	c := New[core.State](a, 0)
	if cex, ok := c.CheckNoDeadlockParallel(0); !ok {
		t.Fatalf("deadlock at %v", cex)
	}
	if cex, ok := c.CheckClosureParallel(0, a.Legitimate); !ok {
		t.Fatalf("closure violated at %v", cex)
	}
}

func TestWorstPath(t *testing.T) {
	a := core.New(3, 4)
	c := New[core.State](a, 0)
	path := c.WorstPath(a.Legitimate)
	if len(path) != 17 { // worst case 16 steps -> 17 configurations
		t.Fatalf("path length %d, want 17", len(path))
	}
	// Every transition must be a legal daemon step, and only the last
	// configuration is legitimate.
	for i := 0; i < len(path)-1; i++ {
		if a.Legitimate(path[i]) {
			t.Fatalf("intermediate config %d legitimate: %v", i, path[i])
		}
		found := false
		c.Successors(path[i], nil, func(next statemodel.Config[core.State]) bool {
			if next.Equal(path[i+1]) {
				found = true
				return false
			}
			return true
		})
		if !found {
			t.Fatalf("step %d is not a legal transition", i)
		}
	}
	if !a.Legitimate(path[len(path)-1]) {
		t.Fatal("path does not end legitimate")
	}
}

func TestExportDOT(t *testing.T) {
	a := core.New(3, 4)
	c := New[core.State](a, 0)
	var b strings.Builder
	nodes, edges, err := c.ExportDOT(&b, "lambda", a.Legitimate)
	if err != nil {
		t.Fatal(err)
	}
	// Λ has 3nK = 36 configurations forming one cycle: 36 nodes, 36 edges.
	if nodes != 36 || edges != 36 {
		t.Fatalf("nodes=%d edges=%d, want 36/36 (Λ is a single cycle)", nodes, edges)
	}
	out := b.String()
	if !strings.HasPrefix(out, `digraph "lambda"`) || !strings.Contains(out, "->") {
		t.Errorf("DOT malformed:\n%.200s", out)
	}
}

func TestCountLegitimate(t *testing.T) {
	a := core.New(3, 4)
	c := New[core.State](a, 0)
	if got := c.CountLegitimate(a.Legitimate); got != 36 {
		t.Fatalf("CountLegitimate = %d, want 36", got)
	}
}

func TestCheckInvariantOnLegitimateCounterexample(t *testing.T) {
	a := core.New(3, 4)
	c := New[core.State](a, 0)
	cex, ok := c.CheckInvariantOnLegitimate(a.Legitimate, func(cfg statemodel.Config[core.State]) bool {
		return cfg[0].X != 1 // false for some legitimate configs
	})
	if ok || cex == nil {
		t.Fatal("counterexample not found")
	}
	if !a.Legitimate(cex) || cex[0].X != 1 {
		t.Fatalf("bad counterexample %v", cex)
	}
}

func TestEncodePanicsOnForeignState(t *testing.T) {
	a := core.New(3, 4)
	c := New[core.State](a, 0)
	defer func() {
		if recover() == nil {
			t.Error("Encode accepted out-of-space state")
		}
	}()
	c.Encode(statemodel.Config[core.State]{{X: 99}, {}, {}})
}

// TestLemma1PartBReachability verifies part (b) of the Lemma 1 proof:
// every legitimate configuration is reachable from γ0 without ever leaving
// Λ — the legitimate set is one strongly connected cycle.
func TestLemma1PartBReachability(t *testing.T) {
	a := core.New(3, 4)
	c := New[core.State](a, 0)
	got := c.ReachableFrom(a.InitialLegitimate(), a.Legitimate)
	if want := uint64(3 * a.N() * a.K()); got != want {
		t.Fatalf("reachable legitimate configs = %d, want |Λ| = %d", got, want)
	}
	// Starting outside the restriction yields zero.
	bad := a.InitialLegitimate()
	bad[1].RTS = true
	if got := c.ReachableFrom(bad, a.Legitimate); got != 0 {
		t.Fatalf("ReachableFrom(illegitimate) = %d", got)
	}
}
