package check

import (
	"os"
	"testing"

	"ssrmin/internal/core"
	"ssrmin/internal/dijkstra"
	"ssrmin/internal/statemodel"
)

func TestCompileRequiresPositionUniform(t *testing.T) {
	// An algorithm that never declared the marker must be rejected.
	c := New[dijkstra.State](plainSpace{dijkstra.New(3, 4)}, 0)
	if _, err := c.Compile(1); err == nil {
		t.Fatal("Compile accepted an algorithm without PositionUniform")
	}
}

// plainSpace strips all optional interfaces off a Space.
type plainSpace struct{ inner Space[dijkstra.State] }

func (p plainSpace) Name() string { return p.inner.Name() }
func (p plainSpace) N() int       { return p.inner.N() }
func (p plainSpace) Rules() int   { return p.inner.Rules() }
func (p plainSpace) EnabledRule(v statemodel.View[dijkstra.State]) int {
	return p.inner.EnabledRule(v)
}
func (p plainSpace) Apply(v statemodel.View[dijkstra.State], r int) dijkstra.State {
	return p.inner.Apply(v, r)
}
func (p plainSpace) AllStates() []dijkstra.State { return p.inner.AllStates() }

func TestEngineLegitSetMatchesPredicate(t *testing.T) {
	a := core.New(3, 4)
	c := New[core.State](a, 0)
	e, err := c.Compile(3)
	if err != nil {
		t.Fatal(err)
	}
	lam := e.LegitSet(a.Legitimate)
	if lam.Count() != 36 {
		t.Fatalf("|Λ| = %d, want 36", lam.Count())
	}
	// Bitmap membership must agree with the predicate on every ID, and
	// ForEach must visit exactly the members in order.
	var visited []uint64
	lam.ForEach(func(id uint64) bool {
		visited = append(visited, id)
		return true
	})
	vi := 0
	c.ForAll(func(cfg statemodel.Config[core.State]) bool {
		id := c.Encode(cfg)
		want := a.Legitimate(cfg)
		if lam.Contains(id) != want {
			t.Fatalf("membership mismatch at id %d", id)
		}
		if want {
			if vi >= len(visited) || visited[vi] != id {
				t.Fatalf("ForEach order broken at %d", id)
			}
			vi++
		}
		return true
	})
	if vi != len(visited) {
		t.Fatalf("ForEach visited %d extra ids", len(visited)-vi)
	}
}

func TestEngineTriples(t *testing.T) {
	a := core.New(3, 4)
	c := New[core.State](a, 0)
	e, err := c.Compile(1)
	if err != nil {
		t.Fatal(err)
	}
	cfg := statemodel.Config[core.State]{{X: 1}, {X: 2, RTS: true}, {X: 3, TRA: true}}
	tr := e.Triples(c.Encode(cfg), nil)
	if len(tr) != 3 {
		t.Fatalf("triples = %d, want 3", len(tr))
	}
	idx := map[core.State]int{}
	for i, s := range a.AllStates() {
		idx[s] = i
	}
	for i := 0; i < 3; i++ {
		v := cfg.View(i)
		want := statemodel.TripleIndex(len(idx), idx[v.Pred], idx[v.Self], idx[v.Succ])
		if int(tr[i]) != want {
			t.Fatalf("triple[%d] = %d, want %d", i, tr[i], want)
		}
	}
}

func TestEngineDetectsCycle(t *testing.T) {
	// With an empty legitimate set and all rules permitted, token
	// circulation never terminates: the engine must report a cycle, just
	// like the legacy path.
	a := dijkstra.New(3, 4)
	c := New[dijkstra.State](a, 0)
	e, err := c.Compile(2)
	if err != nil {
		t.Fatal(err)
	}
	rep, _ := e.CheckConvergence(newIDSet(e.NumConfigs()))
	if rep.Converges {
		t.Fatal("engine missed the infinite circulation cycle")
	}
	if rep.Cycle == nil {
		t.Fatal("no cycle witness returned")
	}
	legacy := c.CheckConvergence(func(statemodel.Config[dijkstra.State]) bool { return false })
	if legacy.Converges {
		t.Fatal("legacy missed the cycle too?")
	}
}

func TestEngineWorkerCounts(t *testing.T) {
	// The analysis must be worker-count invariant.
	a := core.New(3, 4)
	c := New[core.State](a, 0)
	var worst []int
	for _, w := range []int{1, 2, 7} {
		e, err := c.Compile(w)
		if err != nil {
			t.Fatal(err)
		}
		lam := e.LegitSet(a.Legitimate)
		rep, _ := e.CheckConvergence(lam)
		if !rep.Converges {
			t.Fatalf("workers=%d: no convergence", w)
		}
		worst = append(worst, rep.WorstSteps)
	}
	if worst[0] != 16 || worst[1] != 16 || worst[2] != 16 {
		t.Fatalf("worst steps varied with workers: %v", worst)
	}
}

// TestSSRminN5K6Engine is the headline new instance: the exhaustive
// n=5, K=6 run (24⁵ ≈ 7.96M configurations) enabled by the compiled
// engine. It takes on the order of a minute single-threaded, so it only
// runs when SSRMIN_EXHAUSTIVE_N5 is set (make modelcheck-n5 / CI soak).
func TestSSRminN5K6Engine(t *testing.T) {
	if os.Getenv("SSRMIN_EXHAUSTIVE_N5") == "" {
		t.Skip("set SSRMIN_EXHAUSTIVE_N5=1 to run the 7.96M-configuration exhaustive check")
	}
	a := core.New(5, 6)
	c := New[core.State](a, 0)
	e, err := c.Compile(0)
	if err != nil {
		t.Fatal(err)
	}
	lam := e.LegitSet(a.Legitimate)
	if want := uint64(3 * 5 * 6); lam.Count() != want {
		t.Fatalf("|Λ| = %d, want %d", lam.Count(), want)
	}
	if cex, ok := e.CheckNoDeadlock(); !ok {
		t.Fatalf("deadlock at %v", cex)
	}
	rep := e.CheckClosure(lam)
	if rep.Counterexample != nil || rep.MaxEnabled != 1 {
		t.Fatalf("closure: %+v", rep)
	}
	conv, stats := e.CheckConvergence(lam)
	if !conv.Converges {
		t.Fatalf("cycle at %v", conv.Cycle)
	}
	if conv.WorstSteps > a.ConvergenceStepBound() {
		t.Fatalf("worst %d exceeds budget %d", conv.WorstSteps, a.ConvergenceStepBound())
	}
	t.Logf("n=5 K=6: worst=%d steps, |Γ∖Λ|=%d, edges=%d, layers=%d, bookkeeping=%.1f MiB",
		conv.WorstSteps, conv.Illegitimate, stats.Edges, stats.Layers,
		float64(stats.BookkeepingBytes)/(1<<20))
}
