// Compiled transition tables: guards and commands of a
// statemodel.PositionUniform algorithm depend only on the (pred, self,
// succ) view and the position class (bottom vs. other), so they can be
// evaluated once per encoded state triple and stored in two dense tables
// of |Q|³ entries. The engine built on top (engine.go) then expands
// successors by pure digit arithmetic on uint64 configuration IDs — no
// Decode/Encode, no View construction, no per-node allocation.
package check

import (
	"fmt"
	"math"
	"math/bits"
	"sync/atomic"

	"ssrmin/internal/statemodel"
)

// Engine is the table-compiled, ID-space sibling of Checker. All its scans
// operate on dense uint64 configuration IDs (the same encoding as
// Checker.Encode) and shard the ID space across a worker pool. Build one
// with Checker.Compile.
type Engine[S comparable] struct {
	c       *Checker[S]
	q       int      // |Q|, number of local states
	n       int      // ring size
	total   uint64   // |Γ| = q^n
	pow     []uint64 // pow[i] = q^i, the place value of position i
	workers int

	// rule[class][triple] is the enabled rule (0 = none) for a process of
	// the given position class (0 = bottom, 1 = other) observing the
	// encoded (pred, self, succ) triple; next[class][triple] is the state
	// index after applying that rule. Triples use statemodel.TripleIndex.
	rule [statemodel.ViewClasses][]uint8
	next [statemodel.ViewClasses][]int32

	// allRules has bit r set for every rule number r of the algorithm.
	allRules uint32
}

// maxSubsetMoves bounds the distributed-daemon subset enumeration, like
// the legacy Successors guard.
const maxSubsetMoves = 25

// Compile builds the table-compiled engine for this checker's instance.
// It fails unless the algorithm declares statemodel.PositionUniform. The
// worker count applies to all parallel scans; ≤ 0 selects GOMAXPROCS.
func (c *Checker[S]) Compile(workers int) (*Engine[S], error) {
	if _, ok := any(c.alg).(statemodel.PositionUniform); !ok {
		return nil, fmt.Errorf("check: %s does not declare statemodel.PositionUniform; cannot compile transition tables", c.alg.Name())
	}
	if r := c.alg.Rules(); r > 30 {
		return nil, fmt.Errorf("check: %d rules exceed the 30-rule mask of the compiled engine", r)
	}
	total := c.NumConfigs()
	if total > math.MaxUint32 {
		return nil, fmt.Errorf("check: |Γ| = %d exceeds the 2³² ID-space of the compiled engine", total)
	}
	if workers <= 0 {
		workers = defaultWorkers()
	}
	e := &Engine[S]{c: c, q: len(c.states), n: c.n, total: total, workers: workers}
	e.pow = make([]uint64, e.n+1)
	e.pow[0] = 1
	for i := 1; i <= e.n; i++ {
		e.pow[i] = e.pow[i-1] * uint64(e.q)
	}
	for r := 1; r <= c.alg.Rules(); r++ {
		e.allRules |= 1 << uint(r)
	}
	for class := 0; class < statemodel.ViewClasses; class++ {
		rt := make([]uint8, e.q*e.q*e.q)
		nt := make([]int32, e.q*e.q*e.q)
		for p := 0; p < e.q; p++ {
			for s := 0; s < e.q; s++ {
				for u := 0; u < e.q; u++ {
					t := statemodel.TripleIndex(e.q, p, s, u)
					v := statemodel.ClassView(class, e.n, c.states[p], c.states[s], c.states[u])
					r := c.alg.EnabledRule(v)
					rt[t] = uint8(r)
					nt[t] = int32(s) // no move: state unchanged
					if r != 0 {
						ns, ok := c.index[c.alg.Apply(v, r)]
						if !ok {
							return nil, fmt.Errorf("check: Apply(%v, %d) left the state space", v, r)
						}
						nt[t] = int32(ns)
					}
				}
			}
		}
		e.rule[class] = rt
		e.next[class] = nt
	}
	return e, nil
}

// NumConfigs returns |Γ|.
func (e *Engine[S]) NumConfigs() uint64 { return e.total }

// Tables is the exported copy of an engine's compiled transition
// relation: for each position class (0 = bottom, 1 = other) and each
// encoded (pred, self, succ) triple (statemodel.TripleIndex layout over
// Q states), the enabled rule (0 = none) and the state index after
// applying it (the self index unchanged when no rule is enabled).
//
// This is the ground truth the rulecheck analyzer (internal/lint) diffs
// its symbolic source extraction against: the tables are synthesized by
// *executing* the algorithm's compiled EnabledRule/Apply, while
// rulecheck re-derives the same relation from the typed AST, so any
// divergence between the source a reviewer reads and the behavior the
// binary has becomes a lint finding with a concrete view witness.
type Tables struct {
	// Q is the number of local states (the digit alphabet size).
	Q int
	// Rule[class][triple] is the enabled rule number, 0 when disabled.
	Rule [statemodel.ViewClasses][]uint8
	// Next[class][triple] is the state index after the enabled rule.
	Next [statemodel.ViewClasses][]int32
}

// Tables returns a deep copy of the engine's compiled transition tables.
func (e *Engine[S]) Tables() Tables {
	t := Tables{Q: e.q}
	for class := 0; class < statemodel.ViewClasses; class++ {
		t.Rule[class] = append([]uint8(nil), e.rule[class]...)
		t.Next[class] = append([]int32(nil), e.next[class]...)
	}
	return t
}

// Workers returns the configured worker-pool size.
func (e *Engine[S]) Workers() int { return e.workers }

// digitsOf decomposes id into its base-q digits (the per-position state
// indices), writing into buf (which must have length n).
func (e *Engine[S]) digitsOf(id uint64, buf []int) {
	q := uint64(e.q)
	for i := 0; i < e.n; i++ {
		buf[i] = int(id % q)
		id /= q
	}
}

// Triples writes the encoded (pred, self, succ) triple of every position
// of configuration id into buf, growing it as needed. Position 0 is the
// bottom class; callers evaluating compiled per-view tables (e.g.
// inclusion.CensusTable) index class 0 for position 0 and class 1
// elsewhere.
func (e *Engine[S]) Triples(id uint64, buf []uint32) []uint32 {
	digits := make([]int, e.n)
	e.digitsOf(id, digits)
	buf = buf[:0]
	for i := 0; i < e.n; i++ {
		pd := digits[(i+e.n-1)%e.n]
		ud := digits[(i+1)%e.n]
		buf = append(buf, uint32(statemodel.TripleIndex(e.q, pd, digits[i], ud)))
	}
	return buf
}

// mover is one enabled move in ID space: executing it adds delta to the
// configuration ID (the state-index change times the position's place
// value — composite atomicity makes simultaneous moves sum).
type mover struct {
	delta int64
	rule  uint8
}

// enabledMoves appends the moves of the configuration with the given
// digits that are permitted by ruleMask, in increasing position order.
func (e *Engine[S]) enabledMoves(digits []int, ruleMask uint32, buf []mover) []mover {
	q, n := e.q, e.n
	for i := 0; i < n; i++ {
		sd := digits[i]
		t := (digits[(i+n-1)%n]*q+sd)*q + digits[(i+1)%n]
		class := 0
		if i != 0 {
			class = 1
		}
		r := e.rule[class][t]
		if r == 0 || ruleMask&(1<<uint(r)) == 0 {
			continue
		}
		buf = append(buf, mover{
			delta: (int64(e.next[class][t]) - int64(sd)) * int64(e.pow[i]),
			rule:  r,
		})
	}
	return buf
}

// distinctSuccessors appends the distinct successor IDs of id over every
// nonempty subset of movers (the distributed daemon's choices) using the
// caller's subset-sum scratch (grown to 2^e as needed). Every delta moves
// exactly one base-q digit without carries, so distinct subsets yield
// distinct IDs whenever no delta is zero — the common case, needing no
// dedup; a zero delta (a rule mapping a state to itself) falls back to a
// linear dedup, preserving the legacy Successors/expand semantics exactly.
func distinctSuccessors(id uint64, movers []mover, buf []uint64, sums []int64) ([]uint64, []int64) {
	e := len(movers)
	if e == 0 {
		return buf, sums
	}
	if e > maxSubsetMoves {
		panic("check: too many enabled processes for subset enumeration")
	}
	if len(sums) < 1<<uint(e) {
		sums = make([]int64, 1<<uint(e))
	}
	anyZero := false
	for _, m := range movers {
		if m.delta == 0 {
			anyZero = true
			break
		}
	}
	base := len(buf)
	for mask := 1; mask < 1<<uint(e); mask++ {
		lb := mask & -mask
		d := sums[mask^lb] + movers[bits.TrailingZeros32(uint32(mask))].delta
		sums[mask] = d
		nid := uint64(int64(id) + d)
		if anyZero {
			dup := false
			for _, x := range buf[base:] {
				if x == nid {
					dup = true
					break
				}
			}
			if dup {
				continue
			}
		}
		buf = append(buf, nid)
	}
	return buf, sums
}

// IDSet is a dense bitmap over the configuration ID space — the engine's
// representation of Λ and of other per-configuration flags.
type IDSet struct {
	words []uint64
	count uint64
}

func newIDSet(total uint64) *IDSet {
	return &IDSet{words: make([]uint64, (total+63)/64)}
}

// Contains reports membership of id.
func (s *IDSet) Contains(id uint64) bool {
	return s.words[id>>6]>>(id&63)&1 == 1
}

// set marks id; safe only while a single goroutine owns id's word (the
// engine's range shards are 64-aligned, so chunk owners never share one).
func (s *IDSet) set(id uint64) {
	s.words[id>>6] |= 1 << (id & 63)
}

// setAtomic marks id with an atomic OR, for writers racing on a word.
func (s *IDSet) setAtomic(id uint64) {
	addr := &s.words[id>>6]
	bit := uint64(1) << (id & 63)
	for {
		old := atomic.LoadUint64(addr)
		if old&bit != 0 || atomic.CompareAndSwapUint64(addr, old, old|bit) {
			return
		}
	}
}

// Count returns the number of members.
func (s *IDSet) Count() uint64 { return s.count }

// ForEach visits every member in increasing ID order until visit returns
// false.
func (s *IDSet) ForEach(visit func(id uint64) bool) {
	for wi, w := range s.words {
		for w != 0 {
			id := uint64(wi)<<6 | uint64(bits.TrailingZeros64(w))
			if !visit(id) {
				return
			}
			w &= w - 1
		}
	}
}
