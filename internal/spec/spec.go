// Package spec is a declarative, data-driven encoding of Algorithm 3 of
// the paper, kept deliberately separate from the hand-optimized
// implementation in internal/core. Each rule is written down exactly as
// the paper prints it — a guard over G_i and a triple of ⟨rts.tra⟩
// patterns for (predecessor, self, successor), with '?' wildcards — plus
// the token conditions of lines 37–41.
//
// The test suite proves, by exhaustive enumeration over all views, that
// internal/core implements precisely this specification (rule selection
// including priorities, command effects, and token predicates). Any edit
// to either side that breaks agreement fails the conformance tests, which
// makes the transliteration of the paper auditable: a reviewer only needs
// to compare this file against Algorithm 3's text.
package spec

import (
	"fmt"
	"strings"

	"ssrmin/internal/core"
	"ssrmin/internal/statemodel"
)

// Pat is a pattern over one process's ⟨rts.tra⟩ pair. Each field is '0',
// '1' or '?' (wildcard).
type Pat struct {
	RTS, TRA byte
}

// ParsePat parses "r.t" notation, e.g. "1.0" or "?.?".
func ParsePat(s string) Pat {
	parts := strings.Split(s, ".")
	if len(parts) != 2 || len(parts[0]) != 1 || len(parts[1]) != 1 {
		panic(fmt.Sprintf("spec: bad pattern %q", s))
	}
	p := Pat{RTS: parts[0][0], TRA: parts[1][0]}
	for _, b := range []byte{p.RTS, p.TRA} {
		if b != '0' && b != '1' && b != '?' {
			panic(fmt.Sprintf("spec: bad pattern byte %q in %q", b, s))
		}
	}
	return p
}

// Match reports whether the pattern matches the flags of s.
func (p Pat) Match(s core.State) bool {
	return matchBit(p.RTS, s.RTS) && matchBit(p.TRA, s.TRA)
}

func matchBit(pat byte, val bool) bool {
	switch pat {
	case '?':
		return true
	case '1':
		return val
	case '0':
		return !val
	}
	panic("spec: invalid pattern byte")
}

func (p Pat) String() string { return fmt.Sprintf("%c.%c", p.RTS, p.TRA) }

// Triple is a ⟨pred, self, succ⟩ pattern.
type Triple struct {
	Pred, Self, Succ Pat
}

// T parses a triple from three "r.t" strings.
func T(pred, self, succ string) Triple {
	return Triple{ParsePat(pred), ParsePat(self), ParsePat(succ)}
}

// Match reports whether the triple matches a view's flag values.
func (t Triple) Match(v statemodel.View[core.State]) bool {
	return t.Pred.Match(v.Pred) && t.Self.Match(v.Self) && t.Succ.Match(v.Succ)
}

func (t Triple) String() string {
	return fmt.Sprintf("⟨%s, %s, %s⟩", t.Pred, t.Self, t.Succ)
}

// Effect is a command of Algorithm 3: set ⟨rts.tra⟩ and optionally run the
// Dijkstra command C_i.
type Effect struct {
	RTS, TRA bool
	// RunC runs C_i: x_0 ← x_{n-1}+1 mod K at the bottom, x_i ← x_{i-1}
	// elsewhere.
	RunC bool
}

// Rule is one guarded command as printed in Algorithm 3.
type Rule struct {
	// Number is the 1-based rule number; smaller numbers have priority.
	Number int
	// Comment is the paper's inline comment.
	Comment string
	// NeedsG is the G_i / ¬G_i part of the guard.
	NeedsG bool
	// Positive lists triples of which at least one must match ("= A or
	// = B or = C").
	Positive []Triple
	// Negative lists triples of which none may match ("≠ A and ≠ B").
	Negative []Triple
	// Effect is the command.
	Effect Effect
}

// Enabled evaluates the rule's guard on v given the value of G_i.
func (r Rule) Enabled(g bool, v statemodel.View[core.State]) bool {
	if g != r.NeedsG {
		return false
	}
	if len(r.Positive) > 0 {
		ok := false
		for _, t := range r.Positive {
			if t.Match(v) {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	for _, t := range r.Negative {
		if t.Match(v) {
			return false
		}
	}
	return true
}

// Rules is Algorithm 3, rule for rule, pattern for pattern.
//
//	Rule 1: G ∧ (self ∈ {0.0, 0.1, 1.1})                     → 1.0
//	Rule 2: G ∧ (self = 1.0 ∧ succ = 0.1)                    → 0.0; C
//	Rule 3: ¬G ∧ (pred = 1.0 ∧ self ∈ {0.0, 1.0, 1.1})       → 0.1
//	Rule 4: G ∧ (triple ≠ ⟨0.0, 1.0, 0.0⟩)                   → 0.0; C
//	Rule 5: ¬G ∧ (triple ≠ ⟨1.0, 0.1, ?.?⟩ ∧ self ≠ 0.0)     → 0.0
func Rules() []Rule {
	return []Rule{
		{
			Number: 1, Comment: "ready to send the secondary token", NeedsG: true,
			Positive: []Triple{
				T("?.?", "0.0", "?.?"),
				T("?.?", "0.1", "?.?"),
				T("?.?", "1.1", "?.?"),
			},
			Effect: Effect{RTS: true, TRA: false},
		},
		{
			Number: 2, Comment: "send the primary token", NeedsG: true,
			Positive: []Triple{
				T("?.?", "1.0", "0.1"),
			},
			Effect: Effect{RTS: false, TRA: false, RunC: true},
		},
		{
			Number: 3, Comment: "receive the secondary token", NeedsG: false,
			Positive: []Triple{
				T("1.0", "0.0", "?.?"),
				T("1.0", "1.0", "?.?"),
				T("1.0", "1.1", "?.?"),
			},
			Effect: Effect{RTS: false, TRA: true},
		},
		{
			Number: 4, Comment: "fix inconsistent local state when G_i is true", NeedsG: true,
			Negative: []Triple{
				T("0.0", "1.0", "0.0"),
			},
			Effect: Effect{RTS: false, TRA: false, RunC: true},
		},
		{
			Number: 5, Comment: "fix inconsistent local state when G_i is false", NeedsG: false,
			Negative: []Triple{
				T("1.0", "0.1", "?.?"),
				T("?.?", "0.0", "?.?"),
			},
			Effect: Effect{RTS: false, TRA: false},
		},
	}
}

// G evaluates the Dijkstra guard of Algorithm 3's macro section.
func G(v statemodel.View[core.State]) bool {
	if v.Bottom() {
		return v.Self.X == v.Pred.X
	}
	return v.Self.X != v.Pred.X
}

// EnabledRule returns the highest-priority enabled rule per the
// specification (0 if none) — the reference implementation of Algorithm
// 3's rule-selection semantics.
func EnabledRule(v statemodel.View[core.State]) int {
	g := G(v)
	for _, r := range Rules() {
		if r.Enabled(g, v) {
			return r.Number
		}
	}
	return 0
}

// Apply executes the specified rule's command on v with counter space k.
func Apply(v statemodel.View[core.State], rule, k int) core.State {
	for _, r := range Rules() {
		if r.Number != rule {
			continue
		}
		next := v.Self
		next.RTS, next.TRA = r.Effect.RTS, r.Effect.TRA
		if r.Effect.RunC {
			if v.Bottom() {
				next.X = (v.Pred.X + 1) % k
			} else {
				next.X = v.Pred.X
			}
		}
		return next
	}
	panic(fmt.Sprintf("spec: unknown rule %d", rule))
}

// PrimaryToken is the token condition of line 37: G_i.
func PrimaryToken(v statemodel.View[core.State]) bool { return G(v) }

// SecondaryToken is the token condition of lines 38–40:
// ⟨?.?, ?.1, ?.?⟩ or ⟨?.?, 1.?, 0.0⟩.
func SecondaryToken(v statemodel.View[core.State]) bool {
	pats := []Triple{
		{ParsePat("?.?"), ParsePat("?.1"), ParsePat("?.?")},
		{ParsePat("?.?"), ParsePat("1.?"), ParsePat("0.0")},
	}
	for _, t := range pats {
		if t.Match(v) {
			return true
		}
	}
	return false
}
