package spec

import (
	"testing"

	"ssrmin/internal/core"
	"ssrmin/internal/statemodel"
)

// allViews enumerates every (i-kind, self, pred, succ) view for the given
// K, covering bottom (i=0) and non-bottom (i=1) processes.
func allViews(k int, visit func(v statemodel.View[core.State])) {
	var states []core.State
	for x := 0; x < k; x++ {
		for _, rts := range []bool{false, true} {
			for _, tra := range []bool{false, true} {
				states = append(states, core.State{X: x, RTS: rts, TRA: tra})
			}
		}
	}
	for _, i := range []int{0, 1} {
		for _, self := range states {
			for _, pred := range states {
				for _, succ := range states {
					visit(statemodel.View[core.State]{I: i, N: 3, Self: self, Pred: pred, Succ: succ})
				}
			}
		}
	}
}

// TestConformanceEnabledRule proves that internal/core selects exactly the
// rule the declarative Algorithm 3 specification selects, for every
// possible view.
func TestConformanceEnabledRule(t *testing.T) {
	k := 4
	a := core.New(3, k)
	count := 0
	allViews(k, func(v statemodel.View[core.State]) {
		count++
		want := EnabledRule(v)
		got := a.EnabledRule(v)
		if got != want {
			t.Fatalf("view %+v: core selects rule %d, spec selects %d", v, got, want)
		}
	})
	// 2 process kinds × (4K)³ views with K = 4.
	if count != 2*16*16*16 {
		t.Fatalf("enumerated %d views", count)
	}
}

// TestConformanceApply proves command agreement on every enabled view.
func TestConformanceApply(t *testing.T) {
	k := 4
	a := core.New(3, k)
	allViews(k, func(v statemodel.View[core.State]) {
		rule := EnabledRule(v)
		if rule == 0 {
			return
		}
		want := Apply(v, rule, k)
		got := a.Apply(v, rule)
		if got != want {
			t.Fatalf("view %+v rule %d: core applies %v, spec %v", v, rule, got, want)
		}
	})
}

// TestConformanceTokens proves both token predicates agree everywhere.
func TestConformanceTokens(t *testing.T) {
	allViews(4, func(v statemodel.View[core.State]) {
		if core.HasPrimary(v) != PrimaryToken(v) {
			t.Fatalf("primary token disagreement at %+v", v)
		}
		if core.HasSecondary(v) != SecondaryToken(v) {
			t.Fatalf("secondary token disagreement at %+v", v)
		}
	})
}

// TestGuardMutualExclusivity checks the paper's claim that each process is
// enabled by at most one rule: with priorities stripped, overlapping
// guards must only overlap in the priority order the implementation uses.
// Concretely: whenever two rules' raw guards hold simultaneously, the
// spec's priority pick equals the core pick (already proven above), and no
// view satisfies both a G-rule and a ¬G-rule.
func TestGuardMutualExclusivity(t *testing.T) {
	rules := Rules()
	allViews(4, func(v statemodel.View[core.State]) {
		g := G(v)
		for _, r := range rules {
			if r.Enabled(g, v) && r.NeedsG != g {
				t.Fatalf("rule %d enabled with mismatched G at %+v", r.Number, v)
			}
		}
	})
}

// TestNoRuleYieldsRtsTra11 verifies the general property used in the proof
// of Lemma 6: "there is no rule to yield ⟨1.1⟩".
func TestNoRuleYieldsRtsTra11(t *testing.T) {
	k := 4
	allViews(k, func(v statemodel.View[core.State]) {
		rule := EnabledRule(v)
		if rule == 0 {
			return
		}
		next := Apply(v, rule, k)
		if next.RTS && next.TRA {
			t.Fatalf("rule %d yields ⟨1.1⟩ from %+v", rule, v)
		}
	})
}

// TestOnlyRule1Yields10 verifies the companion property: "the rule to
// yield ⟨rts.tra⟩ = ⟨1.0⟩ is only Rule 1, executed only when G_i holds".
func TestOnlyRule1Yields10(t *testing.T) {
	k := 4
	allViews(k, func(v statemodel.View[core.State]) {
		rule := EnabledRule(v)
		if rule == 0 {
			return
		}
		next := Apply(v, rule, k)
		if next.RTS && !next.TRA {
			if rule != 1 {
				t.Fatalf("rule %d yields ⟨1.0⟩ from %+v", rule, v)
			}
			if !G(v) {
				t.Fatalf("rule 1 executed without G at %+v", v)
			}
		}
	})
}

func TestPatternParsing(t *testing.T) {
	p := ParsePat("1.?")
	if !p.Match(core.State{RTS: true, TRA: false}) || !p.Match(core.State{RTS: true, TRA: true}) {
		t.Error("1.? should match rts=1 regardless of tra")
	}
	if p.Match(core.State{RTS: false}) {
		t.Error("1.? must not match rts=0")
	}
	if p.String() != "1.?" {
		t.Errorf("String = %q", p.String())
	}
	tr := T("1.0", "0.1", "?.?")
	if tr.String() != "⟨1.0, 0.1, ?.?⟩" {
		t.Errorf("Triple.String = %q", tr.String())
	}
	for _, bad := range []string{"", "1", "1.2", "x.y", "10.1"} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("ParsePat(%q) did not panic", bad)
				}
			}()
			ParsePat(bad)
		}()
	}
}

func TestApplyUnknownRulePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Apply(0) did not panic")
		}
	}()
	Apply(statemodel.View[core.State]{N: 3}, 0, 4)
}

func TestRuleTableShape(t *testing.T) {
	rules := Rules()
	if len(rules) != 5 {
		t.Fatalf("%d rules", len(rules))
	}
	for i, r := range rules {
		if r.Number != i+1 {
			t.Errorf("rule %d numbered %d", i+1, r.Number)
		}
		if r.Comment == "" {
			t.Errorf("rule %d lacks its paper comment", r.Number)
		}
		if len(r.Positive) == 0 && len(r.Negative) == 0 {
			t.Errorf("rule %d has no patterns", r.Number)
		}
	}
}
