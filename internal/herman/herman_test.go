package herman

import (
	"testing"
	"testing/quick"
)

func TestNewValidation(t *testing.T) {
	for _, n := range []int{0, 1, 2, 4, 6} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d) accepted", n)
				}
			}()
			New(n, 1)
		}()
	}
	r := New(5, 1)
	if r.N() != 5 {
		t.Fatalf("N = %d", r.N())
	}
}

func TestTokenParityInvariant(t *testing.T) {
	// On an odd ring the token count is odd, ≥1, and never increases.
	r := New(9, 42)
	r.Randomize()
	prev := r.TokenCount()
	if prev%2 != 1 || prev < 1 {
		t.Fatalf("initial token count %d not odd/positive", prev)
	}
	for s := 0; s < 500; s++ {
		r.Step()
		c := r.TokenCount()
		if c%2 != 1 {
			t.Fatalf("step %d: even token count %d", s, c)
		}
		if c > prev {
			t.Fatalf("step %d: token count increased %d -> %d", s, prev, c)
		}
		prev = c
	}
}

func TestTokenParityQuick(t *testing.T) {
	f := func(raw []bool, seed int64) bool {
		r := New(7, seed)
		bits := make([]bool, 7)
		for i := range bits {
			if i < len(raw) {
				bits[i] = raw[i]
			}
		}
		r.SetBits(bits)
		c := r.TokenCount()
		return c >= 1 && c%2 == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestConvergesWithHighProbability(t *testing.T) {
	// Expected worst case is 4n²/27; give each trial 50× that.
	for _, n := range []int{5, 9, 15} {
		budget := int(50 * WorstCaseExpected(n))
		fails := 0
		for trial := 0; trial < 100; trial++ {
			r := New(n, int64(trial+1))
			r.Randomize()
			if _, ok := r.RunUntilStable(budget); !ok {
				fails++
			}
		}
		if fails > 0 {
			t.Fatalf("n=%d: %d/100 trials missed a 50×E[T] budget — suspicious", n, fails)
		}
	}
}

func TestStabilizedStaysStable(t *testing.T) {
	r := New(7, 3)
	r.Randomize()
	if _, ok := r.RunUntilStable(10000); !ok {
		t.Fatal("did not stabilize")
	}
	for s := 0; s < 200; s++ {
		r.Step()
		if !r.Stabilized() {
			t.Fatalf("closure violated at step %d", s)
		}
	}
}

func TestExpectedConvergenceScalesQuadratically(t *testing.T) {
	// Crude shape check: mean convergence time grows superlinearly.
	mean := func(n int) float64 {
		total := 0
		const trials = 200
		for trial := 0; trial < trials; trial++ {
			r := New(n, int64(n*1000+trial))
			r.Randomize()
			steps, ok := r.RunUntilStable(int(200 * WorstCaseExpected(n)))
			if !ok {
				t.Fatalf("n=%d trial %d did not converge", n, trial)
			}
			total += steps
		}
		return float64(total) / trials
	}
	m5, m15 := mean(5), mean(15)
	if m15 < 3*m5 {
		t.Errorf("mean convergence grew too slowly: n=5 %.1f, n=15 %.1f", m5, m15)
	}
}

func TestSetBitsValidation(t *testing.T) {
	r := New(5, 1)
	defer func() {
		if recover() == nil {
			t.Error("SetBits length mismatch accepted")
		}
	}()
	r.SetBits([]bool{true})
}

func TestBitsCopy(t *testing.T) {
	r := New(5, 1)
	b := r.Bits()
	b[0] = true
	if r.Bits()[0] {
		t.Error("Bits aliases internal storage")
	}
}
