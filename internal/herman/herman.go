// Package herman implements Herman's probabilistic self-stabilizing token
// ring (Herman, 1990) as a third baseline: where Dijkstra's SSToken beats
// the unfair daemon with K > n counter values and SSRmin adds the graceful
// handover, Herman's ring uses one *bit* per process and randomization,
// converging to a single token with probability 1 under a synchronous
// scheduler (ring size must be odd).
//
// Process i holds a token iff x_i = x_{i-1}. In every synchronous round,
// each token holder flips a fair coin for its new bit while every other
// process copies its predecessor's bit. Tokens perform random walks and
// annihilate pairwise; since the token count is odd and never increases,
// exactly one survives. The expected convergence time is Θ(n²) (the known
// worst-case constant is 4/27·n² for three equidistant tokens).
//
// The experiments use it to situate SSRmin: probabilistic vs deterministic
// guarantees, 2 states vs 4K states per process, and — like SSToken — no
// mutual inclusion in the message-passing model.
package herman

import (
	"fmt"
	"math/rand"
)

// Ring is one instance of Herman's token ring.
type Ring struct {
	bits []bool
	rng  *rand.Rand
	// Steps counts synchronous rounds executed.
	Steps int
}

// New creates a ring of odd size n with all bits false — note that with
// all bits equal every process holds a token (the all-token configuration);
// use Randomize or SetBits for other starts. It panics on even or too
// small n.
func New(n int, seed int64) *Ring {
	if n < 3 || n%2 == 0 {
		panic(fmt.Sprintf("herman: ring size must be odd and ≥ 3, got %d", n))
	}
	return &Ring{bits: make([]bool, n), rng: rand.New(rand.NewSource(seed))}
}

// N returns the ring size.
func (r *Ring) N() int { return len(r.bits) }

// Bits returns a copy of the bit vector.
func (r *Ring) Bits() []bool {
	out := make([]bool, len(r.bits))
	copy(out, r.bits)
	return out
}

// SetBits installs a specific configuration.
func (r *Ring) SetBits(bits []bool) {
	if len(bits) != len(r.bits) {
		panic("herman: bit vector length mismatch")
	}
	copy(r.bits, bits)
}

// Randomize draws a uniformly random configuration.
func (r *Ring) Randomize() {
	for i := range r.bits {
		r.bits[i] = r.rng.Intn(2) == 1
	}
}

// HasToken reports whether process i holds a token: x_i = x_{i-1}.
func (r *Ring) HasToken(i int) bool {
	n := len(r.bits)
	return r.bits[i] == r.bits[(i-1+n)%n]
}

// Tokens returns the token-holding process indices. On an odd ring the
// count is always odd (and ≥ 1).
func (r *Ring) Tokens() []int {
	var out []int
	for i := range r.bits {
		if r.HasToken(i) {
			out = append(out, i)
		}
	}
	return out
}

// TokenCount returns the number of tokens.
func (r *Ring) TokenCount() int { return len(r.Tokens()) }

// Step executes one synchronous round: token holders flip coins, others
// copy their predecessor (all against the old configuration).
func (r *Ring) Step() {
	n := len(r.bits)
	next := make([]bool, n)
	for i := 0; i < n; i++ {
		if r.HasToken(i) {
			next[i] = r.rng.Intn(2) == 1
		} else {
			next[i] = r.bits[(i-1+n)%n]
		}
	}
	r.bits = next
	r.Steps++
}

// Stabilized reports whether exactly one token remains.
func (r *Ring) Stabilized() bool { return r.TokenCount() == 1 }

// RunUntilStable steps until a single token remains or maxSteps rounds
// elapse; it returns the rounds consumed by this call and success.
func (r *Ring) RunUntilStable(maxSteps int) (int, bool) {
	for s := 0; s < maxSteps; s++ {
		if r.Stabilized() {
			return s, true
		}
		r.Step()
	}
	return maxSteps, r.Stabilized()
}

// WorstCaseExpected returns the conjectured-tight worst-case expected
// convergence time 4n²/27 (three equidistant tokens), for report
// annotations.
func WorstCaseExpected(n int) float64 { return 4.0 * float64(n) * float64(n) / 27.0 }
