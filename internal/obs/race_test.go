package obs_test

// Race coverage for the observer: every counter, histogram and the sink
// must tolerate concurrent emitters. The live runtime ring is the real
// producer — one goroutine per node plus two per link, all emitting into
// one Observer — so the first test drives an actual ring under -race; the
// second hammers the full method surface from bare goroutines.

import (
	"io"
	"sync"
	"testing"
	"time"

	"ssrmin/internal/core"
	"ssrmin/internal/obs"
	"ssrmin/internal/runtime"
)

func TestObserverRaceLiveRing(t *testing.T) {
	o := obs.New(obs.NewJSONL(io.Discard))
	alg := core.New(5, 6)
	r := runtime.NewRing[core.State](alg, alg.InitialLegitimate(), runtime.Options[core.State]{
		Delay:          200 * time.Microsecond,
		Jitter:         100 * time.Microsecond,
		LossProb:       0.05,
		Refresh:        time.Millisecond,
		Seed:           1,
		CoherentCaches: true,
	})
	r.SetObserver(o, core.HasToken)
	r.Start()
	time.Sleep(150 * time.Millisecond)
	r.Stop()

	if o.C.MsgRecv.Load() == 0 {
		t.Error("live ring emitted no MsgRecv")
	}
	if o.C.RuleFired.Load() == 0 {
		t.Error("live ring emitted no RuleFired")
	}
	if o.C.Handovers.Load() == 0 {
		t.Error("live ring emitted no Handover")
	}
}

func TestObserverRaceAllMethods(t *testing.T) {
	o := obs.New(obs.NewJSONL(io.Discard))
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				t := float64(i)
				o.Step(t, 1)
				o.RuleFired(t, g, 1+i%5)
				o.TokenMoved(t, g, (g+1)%8)
				o.Handover(t, g, i%2 == 0)
				o.MsgSent(t, g, (g+1)%8)
				o.MsgRecv(t, (g+1)%8, g)
				o.MsgDropped(t, (g+1)%8, g)
				o.ConvergedAt(t, i)
			}
		}(g)
	}
	// A concurrent reader exercises the snapshot paths under -race too.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			o.WriteText(io.Discard)
			o.Vars()
		}
	}()
	wg.Wait()

	if got := o.C.Steps.Load(); got != 8*500 {
		t.Errorf("Steps = %d, want %d", got, 8*500)
	}
	if got := o.C.MsgSent.Load(); got != 8*500 {
		t.Errorf("MsgSent = %d, want %d", got, 8*500)
	}
}
