// Package obs is the observability layer shared by all four execution
// vehicles of this repository — the state-reading simulator, the
// exhaustive model checker, the discrete-event message network, and the
// live goroutine/TCP rings. It provides three things:
//
//   - Atomic counters for the events the paper's evaluation counts: rule
//     firings (per rule), steps, token moves, privilege handovers,
//     messages sent/received/dropped, convergences detected.
//   - Fixed-bucket (power-of-two) histograms for step and latency
//     distributions: moves per step, steps to convergence, the model-time
//     gap between successive privilege handovers.
//   - A pluggable Sink receiving one structured Event per action, with a
//     JSONL implementation for machine-readable event logs.
//
// The design constraint is a hot path measured in nanoseconds: every
// emission method is safe on a nil *Observer (one predictable branch), a
// counter update is one atomic add, and the Event struct is only built
// when a real sink is installed. An Observer with a no-op sink keeps the
// instrumented simulators within a few percent of their bare speed (see
// BenchmarkObsOverhead* at the repository root and BENCH_obs.json).
//
// Time is the emitting vehicle's native model time: the step index for
// the state-reading model, simulated seconds for internal/msgnet, and
// wall-clock seconds since ring start for internal/runtime. Histograms of
// time gaps store microseconds of that native unit.
package obs

import (
	"math"
	"sync/atomic"
)

// Kind classifies an Event.
type Kind uint8

// Event kinds.
const (
	// KindRuleFired: a process executed a guarded-command rule.
	KindRuleFired Kind = iota
	// KindTokenMoved: the primary token changed position (Node = new
	// holder, Peer = previous holder).
	KindTokenMoved
	// KindHandover: a process gained or lost the privilege.
	KindHandover
	// KindMsgSent: a message entered a link (Node = sender, Peer = dest).
	KindMsgSent
	// KindMsgRecv: a message was delivered (Node = receiver, Peer = sender).
	KindMsgRecv
	// KindMsgDropped: a message was lost, suppressed by a busy link, or
	// corrupted away (Node = intended receiver, Peer = sender).
	KindMsgDropped
	// KindConverged: a legitimate configuration was reached or verified
	// (Steps carries the step count / exact worst case).
	KindConverged

	numKinds
)

// String returns the wire mnemonic used in JSONL logs.
func (k Kind) String() string {
	switch k {
	case KindRuleFired:
		return "rule"
	case KindTokenMoved:
		return "token"
	case KindHandover:
		return "handover"
	case KindMsgSent:
		return "send"
	case KindMsgRecv:
		return "recv"
	case KindMsgDropped:
		return "drop"
	case KindConverged:
		return "converged"
	}
	return "unknown"
}

// Event is one structured observation.
type Event struct {
	// T is the model time of the event (see the package comment for units).
	T float64
	// Kind classifies the event.
	Kind Kind
	// Node is the acting process; -1 when not applicable.
	Node int
	// Peer is the counterpart process (sender, destination, or previous
	// holder); -1 when not applicable.
	Peer int
	// Rule is the 1-based rule number for KindRuleFired; 0 otherwise.
	Rule int
	// Gained reports, for KindHandover, whether the privilege was gained
	// (true) or released (false).
	Gained bool
	// Steps carries the step count for KindConverged.
	Steps int
}

// MaxRules bounds the per-rule firing counters; rules are 1-based and
// every algorithm in this repository has ≤ 5 rules.
const MaxRules = 8

// Counters is the always-on atomic counter block of an Observer. All
// fields are safe for concurrent update and read.
type Counters struct {
	// Steps counts daemon steps (state-reading) or observer-visible
	// transitions.
	Steps atomic.Int64
	// RuleFired counts rule executions across all processes.
	RuleFired atomic.Int64
	// TokenMoves counts primary-token position changes.
	TokenMoves atomic.Int64
	// Handovers counts privilege gains (one graceful handover = one gain).
	Handovers atomic.Int64
	// MsgSent, MsgRecv, MsgDropped count network-level message events.
	MsgSent, MsgRecv, MsgDropped atomic.Int64
	// Converged counts convergence detections.
	Converged atomic.Int64
	// Rules counts firings per rule number (index 1..MaxRules-1).
	Rules [MaxRules]atomic.Int64
}

// Observer aggregates counters and histograms and forwards structured
// events to its Sink. All emission methods are nil-safe: a nil *Observer
// is the documented "instrumentation off" state, so call sites need no
// conditional beyond what the method itself performs.
type Observer struct {
	sink Sink
	emit bool

	// C is the counter block.
	C Counters
	// StepMoves is the distribution of moves per daemon step.
	StepMoves Histogram
	// ConvergeSteps is the distribution of steps-to-convergence.
	ConvergeSteps Histogram
	// HandoverGap is the distribution of model-time gaps between
	// successive privilege gains, in microseconds of model time.
	HandoverGap Histogram

	lastGain atomic.Uint64 // Float64bits of the last gain time; sentinel = NaN
}

// New returns an Observer forwarding events to sink. A nil sink installs
// Nop: counters and histograms stay live, per-event construction is
// skipped.
func New(sink Sink) *Observer {
	o := &Observer{}
	o.lastGain.Store(math.Float64bits(math.NaN()))
	o.SetSink(sink)
	return o
}

// SetSink replaces the observer's sink. It must be called before the
// observed system starts emitting.
func (o *Observer) SetSink(sink Sink) {
	if sink == nil {
		sink = Nop{}
	}
	o.sink = sink
	_, isNop := sink.(Nop)
	o.emit = !isNop
}

// Sink returns the installed sink (never nil).
func (o *Observer) Sink() Sink { return o.sink }

// Step records one daemon step that executed moves rules.
func (o *Observer) Step(t float64, moves int) {
	if o == nil {
		return
	}
	o.C.Steps.Add(1)
	o.StepMoves.Observe(int64(moves))
}

// RuleFired records process node executing rule at time t.
func (o *Observer) RuleFired(t float64, node, rule int) {
	if o == nil {
		return
	}
	o.C.RuleFired.Add(1)
	if rule > 0 && rule < MaxRules {
		o.C.Rules[rule].Add(1)
	}
	if o.emit {
		o.sink.Emit(Event{T: t, Kind: KindRuleFired, Node: node, Peer: -1, Rule: rule})
	}
}

// TokenMoved records the primary token moving from one process to another.
func (o *Observer) TokenMoved(t float64, from, to int) {
	if o == nil {
		return
	}
	o.C.TokenMoves.Add(1)
	if o.emit {
		o.sink.Emit(Event{T: t, Kind: KindTokenMoved, Node: to, Peer: from})
	}
}

// Handover records process node gaining (gained = true) or releasing the
// privilege. Gains feed the Handovers counter and the HandoverGap
// histogram.
func (o *Observer) Handover(t float64, node int, gained bool) {
	if o == nil {
		return
	}
	if gained {
		o.C.Handovers.Add(1)
		prev := math.Float64frombits(o.lastGain.Swap(math.Float64bits(t)))
		if !math.IsNaN(prev) && t >= prev {
			o.HandoverGap.Observe(int64((t - prev) * 1e6))
		}
	}
	if o.emit {
		o.sink.Emit(Event{T: t, Kind: KindHandover, Node: node, Peer: -1, Gained: gained})
	}
}

// MsgSent records a message from node entering the link toward peer.
func (o *Observer) MsgSent(t float64, from, to int) {
	if o == nil {
		return
	}
	o.C.MsgSent.Add(1)
	if o.emit {
		o.sink.Emit(Event{T: t, Kind: KindMsgSent, Node: from, Peer: to})
	}
}

// MsgRecv records a delivery to node from peer.
func (o *Observer) MsgRecv(t float64, to, from int) {
	if o == nil {
		return
	}
	o.C.MsgRecv.Add(1)
	if o.emit {
		o.sink.Emit(Event{T: t, Kind: KindMsgRecv, Node: to, Peer: from})
	}
}

// MsgDropped records a message toward node (from peer) that was lost,
// suppressed or corrupted away.
func (o *Observer) MsgDropped(t float64, to, from int) {
	if o == nil {
		return
	}
	o.C.MsgDropped.Add(1)
	if o.emit {
		o.sink.Emit(Event{T: t, Kind: KindMsgDropped, Node: to, Peer: from})
	}
}

// ConvergedAt records that a legitimate configuration was reached (or
// exhaustively verified reachable) after steps steps.
func (o *Observer) ConvergedAt(t float64, steps int) {
	if o == nil {
		return
	}
	o.C.Converged.Add(1)
	o.ConvergeSteps.Observe(int64(steps))
	if o.emit {
		o.sink.Emit(Event{T: t, Kind: KindConverged, Node: -1, Peer: -1, Steps: steps})
	}
}
