package obs

import (
	"math/bits"
	"sync/atomic"
)

// Buckets is the number of histogram buckets. Bucket i counts samples v
// with upper bound 2^i − 1 (bucket 0 holds v ≤ 0, the last bucket is a
// catch-all), so 40 buckets cover half a trillion — enough for step
// counts of any checkable instance and microsecond latencies of any
// realistic run.
const Buckets = 40

// Histogram is a fixed-bucket power-of-two histogram over int64 samples.
// Observe is one atomic add per sample plus two for the running count and
// sum; all methods are safe for concurrent use. The zero value is ready.
type Histogram struct {
	buckets [Buckets]atomic.Int64
	count   atomic.Int64
	sum     atomic.Int64
}

// bucketOf maps a sample to its bucket index: 0 for v ≤ 0, otherwise
// bits.Len64(v) capped at the last bucket.
func bucketOf(v int64) int {
	if v <= 0 {
		return 0
	}
	b := bits.Len64(uint64(v))
	if b >= Buckets {
		return Buckets - 1
	}
	return b
}

// BucketBound returns the inclusive upper bound of bucket i (2^i − 1).
func BucketBound(i int) int64 {
	if i >= 63 {
		return 1<<63 - 1
	}
	return 1<<uint(i) - 1
}

// Observe records one sample.
func (h *Histogram) Observe(v int64) {
	h.buckets[bucketOf(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// Count returns the number of samples observed.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all samples.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// Mean returns the mean sample, or 0 with no samples.
func (h *Histogram) Mean() float64 {
	c := h.count.Load()
	if c == 0 {
		return 0
	}
	return float64(h.sum.Load()) / float64(c)
}

// Snapshot returns the per-bucket counts. The snapshot is not an atomic
// cut across buckets — concurrent Observes may straddle it — but each
// bucket value is itself consistent, which is all a monitoring scrape
// needs.
func (h *Histogram) Snapshot() [Buckets]int64 {
	var out [Buckets]int64
	for i := range out {
		out[i] = h.buckets[i].Load()
	}
	return out
}

// Quantile returns an upper bound for the q-quantile (0 ≤ q ≤ 1): the
// bound of the first bucket at which the cumulative count reaches
// q·Count. It returns 0 with no samples.
func (h *Histogram) Quantile(q float64) int64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	want := int64(q * float64(total))
	if want < 1 {
		want = 1
	}
	var cum int64
	for i := 0; i < Buckets; i++ {
		cum += h.buckets[i].Load()
		if cum >= want {
			return BucketBound(i)
		}
	}
	return BucketBound(Buckets - 1)
}
