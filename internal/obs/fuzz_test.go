package obs

import (
	"bytes"
	"encoding/json"
	"testing"
)

// FuzzJSONLEmit pins the hand-rolled encoder's contract for arbitrary
// events, including hostile ones (non-finite times, out-of-range kinds,
// negative ids): every emitted line is valid newline-terminated JSON,
// carries the mandatory fields, makes the optional fields present exactly
// when documented, and re-encoding the same event is bit-identical (the
// internal buffer reuse must not leak state between lines).
func FuzzJSONLEmit(f *testing.F) {
	f.Add(0.0, 0, 1, 2, 3, true, 4)
	f.Add(12.5, int(KindHandover), 0, -1, 0, false, 0)
	f.Add(-1.0, int(KindConverged), -1, -1, -1, false, 137)
	f.Add(1e300, 255, 7, 7, 7, true, -5)
	f.Fuzz(func(t *testing.T, tm float64, kind, node, peer, rule int, gained bool, steps int) {
		e := Event{
			T:      tm,
			Kind:   Kind(kind),
			Node:   node,
			Peer:   peer,
			Rule:   rule,
			Gained: gained,
			Steps:  steps,
		}
		var buf bytes.Buffer
		s := NewJSONL(&buf)
		s.Emit(e)
		line := buf.Bytes()
		if len(line) == 0 || line[len(line)-1] != '\n' {
			t.Fatalf("line not newline-terminated: %q", line)
		}
		if !json.Valid(line) {
			t.Fatalf("invalid JSON: %s", line)
		}
		var m map[string]any
		if err := json.Unmarshal(line, &m); err != nil {
			t.Fatalf("unmarshal: %v", err)
		}
		if _, ok := m["t"]; !ok {
			t.Fatalf("missing mandatory field t: %s", line)
		}
		if ev, ok := m["ev"].(string); !ok || ev != e.Kind.String() {
			t.Fatalf("ev = %v, want %q in %s", m["ev"], e.Kind.String(), line)
		}
		optional := []struct {
			key  string
			want bool
		}{
			{"node", node >= 0},
			{"peer", peer >= 0},
			{"rule", rule > 0},
			{"gained", e.Kind == KindHandover},
			{"steps", e.Kind == KindConverged},
		}
		for _, o := range optional {
			if _, ok := m[o.key]; ok != o.want {
				t.Fatalf("field %q present=%v, want %v in %s", o.key, ok, o.want, line)
			}
		}
		if s.Events() != 1 {
			t.Fatalf("Events() = %d after one emit", s.Events())
		}

		s.Emit(e)
		lines := bytes.SplitAfter(buf.Bytes(), []byte("\n"))
		if len(lines) < 2 || !bytes.Equal(lines[0], lines[1]) {
			t.Fatalf("re-encoding the same event differs:\n%q\n%q", lines[0], lines[1])
		}
		if s.Err() != nil {
			t.Fatalf("unexpected sink error: %v", s.Err())
		}
	})
}
