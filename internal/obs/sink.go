package obs

import (
	"io"
	"math"
	"strconv"
	"sync"
)

// Sink consumes structured events. Implementations must be safe for
// concurrent Emit calls when attached to a concurrent vehicle
// (internal/runtime); the single-threaded simulators never emit
// concurrently.
type Sink interface {
	Emit(Event)
}

// Nop is the sink that discards everything. An Observer with a Nop sink
// still maintains its counters and histograms but skips building Event
// values entirely.
type Nop struct{}

// Emit implements Sink.
func (Nop) Emit(Event) {}

// Func adapts a function to the Sink interface.
type Func func(Event)

// Emit implements Sink.
func (f Func) Emit(e Event) { f(e) }

// JSONL writes one JSON object per event, newline-delimited, in a fixed
// field order. It serializes concurrent emitters with a mutex and
// hand-rolls the encoding (no reflection) so that enabling an event log
// does not distort what it measures.
type JSONL struct {
	mu  sync.Mutex
	w   io.Writer
	buf []byte
	n   int64
	err error
}

// NewJSONL returns a JSONL sink writing to w.
func NewJSONL(w io.Writer) *JSONL { return &JSONL{w: w} }

// Events returns the number of events written so far.
func (s *JSONL) Events() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.n
}

// Err returns the first write error, if any; later events after an error
// are discarded.
func (s *JSONL) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// Emit implements Sink.
func (s *JSONL) Emit(e Event) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return
	}
	b := s.buf[:0]
	b = append(b, `{"t":`...)
	if math.IsNaN(e.T) || math.IsInf(e.T, 0) {
		// JSON has no non-finite numbers; a corrupt clock must not
		// produce an unparseable log line.
		b = append(b, "null"...)
	} else {
		b = strconv.AppendFloat(b, e.T, 'f', -1, 64)
	}
	b = append(b, `,"ev":"`...)
	b = append(b, e.Kind.String()...)
	b = append(b, '"')
	if e.Node >= 0 {
		b = append(b, `,"node":`...)
		b = strconv.AppendInt(b, int64(e.Node), 10)
	}
	if e.Peer >= 0 {
		b = append(b, `,"peer":`...)
		b = strconv.AppendInt(b, int64(e.Peer), 10)
	}
	if e.Rule > 0 {
		b = append(b, `,"rule":`...)
		b = strconv.AppendInt(b, int64(e.Rule), 10)
	}
	if e.Kind == KindHandover {
		b = append(b, `,"gained":`...)
		b = strconv.AppendBool(b, e.Gained)
	}
	if e.Kind == KindConverged {
		b = append(b, `,"steps":`...)
		b = strconv.AppendInt(b, int64(e.Steps), 10)
	}
	b = append(b, '}', '\n')
	s.buf = b
	if _, err := s.w.Write(b); err != nil {
		s.err = err
	}
	s.n++
}

// Filter returns a sink forwarding to next only the events whose kind is
// in keep — e.g. to log handovers without drowning in refresh traffic.
func Filter(next Sink, keep ...Kind) Sink {
	var mask uint64
	for _, k := range keep {
		mask |= 1 << k
	}
	return Func(func(e Event) {
		if mask&(1<<e.Kind) != 0 {
			next.Emit(e)
		}
	})
}
