package obs

import (
	"expvar"
	"fmt"
	"io"
	"net"
	"net/http"
	"sort"
)

// WriteText writes the observer's counters and histograms as a plain-text
// metrics exposition: one `name value` line per counter, with per-rule
// and per-bucket breakdowns in `name{label=value}` form. The format is
// stable and line-oriented so it can be scraped, diffed, or awk'd.
func (o *Observer) WriteText(w io.Writer) {
	if o == nil {
		fmt.Fprintln(w, "# no observer installed")
		return
	}
	fmt.Fprintf(w, "ssrmin_steps %d\n", o.C.Steps.Load())
	fmt.Fprintf(w, "ssrmin_rule_fired %d\n", o.C.RuleFired.Load())
	for r := 1; r < MaxRules; r++ {
		if v := o.C.Rules[r].Load(); v != 0 {
			fmt.Fprintf(w, "ssrmin_rule_fired{rule=%d} %d\n", r, v)
		}
	}
	fmt.Fprintf(w, "ssrmin_token_moves %d\n", o.C.TokenMoves.Load())
	fmt.Fprintf(w, "ssrmin_handovers %d\n", o.C.Handovers.Load())
	fmt.Fprintf(w, "ssrmin_msg_sent %d\n", o.C.MsgSent.Load())
	fmt.Fprintf(w, "ssrmin_msg_recv %d\n", o.C.MsgRecv.Load())
	fmt.Fprintf(w, "ssrmin_msg_dropped %d\n", o.C.MsgDropped.Load())
	fmt.Fprintf(w, "ssrmin_converged %d\n", o.C.Converged.Load())
	writeHist(w, "ssrmin_step_moves", &o.StepMoves)
	writeHist(w, "ssrmin_converge_steps", &o.ConvergeSteps)
	writeHist(w, "ssrmin_handover_gap_us", &o.HandoverGap)
}

func writeHist(w io.Writer, name string, h *Histogram) {
	fmt.Fprintf(w, "%s_count %d\n", name, h.Count())
	fmt.Fprintf(w, "%s_sum %d\n", name, h.Sum())
	snap := h.Snapshot()
	var cum int64
	for i, v := range snap {
		cum += v
		if v != 0 {
			fmt.Fprintf(w, "%s_bucket{le=%d} %d\n", name, BucketBound(i), cum)
		}
	}
}

// Handler returns an http.Handler serving the text exposition — mount it
// at /metrics.
func (o *Observer) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		o.WriteText(w)
	})
}

// Vars returns a flat snapshot of the counters, the shape Publish exposes
// through expvar.
func (o *Observer) Vars() map[string]int64 {
	if o == nil {
		return nil
	}
	m := map[string]int64{
		"steps":       o.C.Steps.Load(),
		"rule_fired":  o.C.RuleFired.Load(),
		"token_moves": o.C.TokenMoves.Load(),
		"handovers":   o.C.Handovers.Load(),
		"msg_sent":    o.C.MsgSent.Load(),
		"msg_recv":    o.C.MsgRecv.Load(),
		"msg_dropped": o.C.MsgDropped.Load(),
		"converged":   o.C.Converged.Load(),
	}
	for r := 1; r < MaxRules; r++ {
		if v := o.C.Rules[r].Load(); v != 0 {
			m[fmt.Sprintf("rule_%d", r)] = v
		}
	}
	return m
}

// SortedVarNames returns the Vars keys in stable order (test helper and
// deterministic dumps).
func (o *Observer) SortedVarNames() []string {
	vars := o.Vars()
	names := make([]string, 0, len(vars))
	for k := range vars {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

// Publish registers the observer under name in the process-wide expvar
// registry (visible at /debug/vars). Publishing the same name twice
// panics, per expvar semantics — call once per process.
func (o *Observer) Publish(name string) {
	expvar.Publish(name, expvar.Func(func() any { return o.Vars() }))
}

// Serve starts an HTTP server on addr exposing the observer at /metrics
// and the process expvars at /debug/vars. It returns the bound address
// (useful with ":0") and a shutdown function.
func Serve(addr string, o *Observer) (bound string, shutdown func() error, err error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}
	mux := http.NewServeMux()
	mux.Handle("/metrics", o.Handler())
	mux.Handle("/debug/vars", expvar.Handler())
	srv := &http.Server{Handler: mux}
	go srv.Serve(l)
	return l.Addr().String(), srv.Close, nil
}
