package obs

import (
	"errors"
	"io"
	"math"
	"net/http"
	"strings"
	"testing"
)

func TestNilObserverIsSafe(t *testing.T) {
	var o *Observer
	o.Step(1, 2)
	o.RuleFired(1, 0, 1)
	o.TokenMoved(1, 0, 1)
	o.Handover(1, 0, true)
	o.MsgSent(1, 0, 1)
	o.MsgRecv(1, 0, 1)
	o.MsgDropped(1, 0, 1)
	o.ConvergedAt(1, 5)
	if o.Vars() != nil {
		t.Fatal("nil observer should have nil vars")
	}
	var b strings.Builder
	o.WriteText(&b)
	if !strings.Contains(b.String(), "no observer") {
		t.Fatalf("unexpected nil exposition: %q", b.String())
	}
}

func TestCounters(t *testing.T) {
	o := New(nil)
	for i := 0; i < 3; i++ {
		o.Step(float64(i), 2)
		o.RuleFired(float64(i), i, 1)
		o.RuleFired(float64(i), i, 4)
	}
	o.TokenMoved(3, 0, 1)
	o.Handover(3, 1, true)
	o.Handover(4, 0, false)
	o.MsgSent(5, 0, 1)
	o.MsgRecv(5, 1, 0)
	o.MsgDropped(5, 1, 0)
	o.ConvergedAt(6, 43)

	if got := o.C.Steps.Load(); got != 3 {
		t.Errorf("steps = %d, want 3", got)
	}
	if got := o.C.RuleFired.Load(); got != 6 {
		t.Errorf("rule fired = %d, want 6", got)
	}
	if got := o.C.Rules[1].Load(); got != 3 {
		t.Errorf("rule 1 = %d, want 3", got)
	}
	if got := o.C.Rules[4].Load(); got != 3 {
		t.Errorf("rule 4 = %d, want 3", got)
	}
	if got := o.C.Handovers.Load(); got != 1 {
		t.Errorf("handovers = %d, want 1 (only gains count)", got)
	}
	if got := o.ConvergeSteps.Mean(); got != 43 {
		t.Errorf("converge mean = %v, want 43", got)
	}
	if got := o.StepMoves.Count(); got != 3 {
		t.Errorf("step moves count = %d, want 3", got)
	}
}

func TestHandoverGap(t *testing.T) {
	o := New(nil)
	o.Handover(1.0, 0, true) // first gain: no gap yet
	if got := o.HandoverGap.Count(); got != 0 {
		t.Fatalf("gap count after first gain = %d, want 0", got)
	}
	o.Handover(1.5, 1, true) // 0.5s gap = 500000µs
	if got := o.HandoverGap.Count(); got != 1 {
		t.Fatalf("gap count = %d, want 1", got)
	}
	if got := o.HandoverGap.Sum(); got != 500000 {
		t.Fatalf("gap sum = %dµs, want 500000", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	var h Histogram
	for _, v := range []int64{0, 1, 2, 3, 8, 1 << 50} {
		h.Observe(v)
	}
	if h.Count() != 6 {
		t.Fatalf("count = %d", h.Count())
	}
	snap := h.Snapshot()
	if snap[0] != 1 { // v ≤ 0
		t.Errorf("bucket 0 = %d, want 1", snap[0])
	}
	if snap[1] != 1 { // v = 1
		t.Errorf("bucket 1 = %d, want 1", snap[1])
	}
	if snap[2] != 2 { // v ∈ {2, 3}
		t.Errorf("bucket 2 = %d, want 2", snap[2])
	}
	if snap[4] != 1 { // v = 8
		t.Errorf("bucket 4 = %d, want 1", snap[4])
	}
	if snap[Buckets-1] != 1 { // catch-all
		t.Errorf("last bucket = %d, want 1", snap[Buckets-1])
	}
	if q := h.Quantile(0.5); q != 3 {
		t.Errorf("median bound = %d, want 3", q)
	}
	if q := h.Quantile(1); q != BucketBound(Buckets-1) {
		t.Errorf("max bound = %d", q)
	}
}

func TestJSONLSink(t *testing.T) {
	var b strings.Builder
	sink := NewJSONL(&b)
	o := New(sink)
	o.RuleFired(0.25, 3, 2)
	o.TokenMoved(0.5, 3, 4)
	o.Handover(0.5, 4, true)
	o.MsgDropped(0.75, 1, 0)
	o.ConvergedAt(1, 16)
	want := `{"t":0.25,"ev":"rule","node":3,"rule":2}
{"t":0.5,"ev":"token","node":4,"peer":3}
{"t":0.5,"ev":"handover","node":4,"gained":true}
{"t":0.75,"ev":"drop","node":1,"peer":0}
{"t":1,"ev":"converged","steps":16}
`
	if b.String() != want {
		t.Errorf("JSONL mismatch.\ngot:\n%s\nwant:\n%s", b.String(), want)
	}
	if sink.Events() != 5 {
		t.Errorf("events = %d, want 5", sink.Events())
	}
	if sink.Err() != nil {
		t.Errorf("err = %v", sink.Err())
	}
}

type failWriter struct{}

func (failWriter) Write([]byte) (int, error) { return 0, errors.New("disk full") }

func TestJSONLSinkError(t *testing.T) {
	sink := NewJSONL(failWriter{})
	sink.Emit(Event{Kind: KindRuleFired, Node: 0, Peer: -1, Rule: 1})
	sink.Emit(Event{Kind: KindRuleFired, Node: 0, Peer: -1, Rule: 1})
	if sink.Err() == nil {
		t.Fatal("expected write error")
	}
}

func TestFilterSink(t *testing.T) {
	var got []Event
	s := Filter(Func(func(e Event) { got = append(got, e) }), KindHandover, KindTokenMoved)
	o := New(s)
	o.RuleFired(1, 0, 1)
	o.Handover(2, 1, true)
	o.TokenMoved(3, 1, 2)
	o.MsgSent(4, 0, 1)
	if len(got) != 2 || got[0].Kind != KindHandover || got[1].Kind != KindTokenMoved {
		t.Fatalf("filter passed %v", got)
	}
}

func TestNopSinkSkipsEventConstruction(t *testing.T) {
	o := New(Nop{})
	if o.emit {
		t.Fatal("Nop sink must disable event emission")
	}
	o = New(NewJSONL(io.Discard))
	if !o.emit {
		t.Fatal("real sink must enable event emission")
	}
}

func TestWriteTextAndVars(t *testing.T) {
	o := New(nil)
	o.Step(0, 1)
	o.RuleFired(0, 0, 2)
	o.Handover(0, 0, true)
	o.Handover(1, 1, true)
	var b strings.Builder
	o.WriteText(&b)
	out := b.String()
	for _, want := range []string{
		"ssrmin_steps 1\n",
		"ssrmin_rule_fired 1\n",
		"ssrmin_rule_fired{rule=2} 1\n",
		"ssrmin_handovers 2\n",
		"ssrmin_handover_gap_us_count 1\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	vars := o.Vars()
	if vars["handovers"] != 2 || vars["rule_2"] != 1 {
		t.Errorf("vars = %v", vars)
	}
	if names := o.SortedVarNames(); len(names) != len(vars) {
		t.Errorf("names = %v", names)
	}
}

func TestServeMetrics(t *testing.T) {
	o := New(nil)
	o.Step(0, 1)
	addr, shutdown, err := Serve("127.0.0.1:0", o)
	if err != nil {
		t.Fatal(err)
	}
	defer shutdown()
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(body), "ssrmin_steps 1") {
		t.Errorf("metrics body:\n%s", body)
	}
}

func TestQuantileEmpty(t *testing.T) {
	var h Histogram
	if h.Quantile(0.99) != 0 || h.Mean() != 0 {
		t.Fatal("empty histogram should report zeros")
	}
}

func TestFirstGainSentinel(t *testing.T) {
	o := New(nil)
	if !math.IsNaN(math.Float64frombits(o.lastGain.Load())) {
		t.Fatal("lastGain sentinel must start as NaN")
	}
}
