package trace

import (
	"strings"
	"testing"

	"ssrmin/internal/core"
	"ssrmin/internal/cst"
	"ssrmin/internal/msgnet"
)

func TestSpaceTimeCapturesAndRenders(t *testing.T) {
	a := core.New(3, 4)
	r := cst.NewRing[core.State](a, a.InitialLegitimate(), cst.Options[core.State]{
		Link:           msgnet.LinkParams{Delay: 0.01},
		Refresh:        0.05,
		Seed:           1,
		CoherentCaches: true,
	})
	st := NewSpaceTime(3)
	Attach(st, r.Net)
	for i, nd := range r.Nodes {
		id := i
		nd.OnExecute = func(now msgnet.Time, rule int) {
			st.Annotate(now, id, core.RuleName(rule))
		}
	}
	r.Net.Run(0.2)
	if st.Events() == 0 {
		t.Fatal("no tap events collected")
	}
	var b strings.Builder
	if err := st.Render(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"P0", "P1", "P2", "s→", "r←", "T", "R1/ready-secondary"} {
		if !strings.Contains(out, want) {
			t.Errorf("diagram missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) < 5 {
		t.Fatalf("diagram too short:\n%s", out)
	}
}

func TestSpaceTimeLimit(t *testing.T) {
	a := core.New(3, 4)
	r := cst.NewRing[core.State](a, a.InitialLegitimate(), cst.Options[core.State]{
		Link: msgnet.LinkParams{Delay: 0.01}, Refresh: 0.05, Seed: 1, CoherentCaches: true,
	})
	st := NewSpaceTime(3)
	st.Limit = 10
	Attach(st, r.Net)
	r.Net.Run(5)
	if st.Events() != 10 {
		t.Fatalf("limit not enforced: %d events", st.Events())
	}
}

func TestSpaceTimeLossMarks(t *testing.T) {
	a := core.New(3, 4)
	r := cst.NewRing[core.State](a, a.InitialLegitimate(), cst.Options[core.State]{
		Link: msgnet.LinkParams{Delay: 0.01, LossProb: 0.5}, Refresh: 0.05, Seed: 2, CoherentCaches: true,
	})
	st := NewSpaceTime(3)
	Attach(st, r.Net)
	r.Net.Run(0.5)
	var b strings.Builder
	if err := st.Render(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "x→") {
		t.Error("loss marks missing from diagram")
	}
}
