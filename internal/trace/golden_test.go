package trace

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// golden compares got against testdata/<name>, rewriting the file when the
// test runs with -update.
func golden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update): %v", err)
	}
	if string(want) != got {
		t.Errorf("%s mismatch.\ngot:\n%s\nwant:\n%s", name, got, want)
	}
}

func TestGoldenFiles(t *testing.T) {
	rec := runSSRmin(t, 15)

	var full strings.Builder
	if err := RenderSSRmin(&full, rec); err != nil {
		t.Fatal(err)
	}
	golden(t, "figure4.txt", full.String())

	var tokens strings.Builder
	if err := RenderTokens(&tokens, rec); err != nil {
		t.Fatal(err)
	}
	golden(t, "figure1.txt", tokens.String())

	var csv strings.Builder
	if err := WriteCSV(&csv, rec); err != nil {
		t.Fatal(err)
	}
	golden(t, "figure4.csv", csv.String())
}
