package trace

import (
	"fmt"
	"io"
	"strings"

	"ssrmin/internal/verify"
)

// RenderTimeline draws a closed census timeline as an ASCII strip of the
// given width: one character per time bucket, sampled at the bucket start.
//
//	'·'  zero holders (a mutual-inclusion violation)
//	'1'…'9' the census
//	'+'  ten or more
//	' '  before the first record
//
// A scale line with the start and end times is printed underneath. The
// figures 11–13 comparisons use it to make the gap visible at a glance:
// SSToken strips are full of '·', SSRmin strips never contain one.
func RenderTimeline(w io.Writer, tl *verify.Timeline, width int) error {
	if width < 10 {
		width = 10
	}
	span := tl.Span()
	if span <= 0 {
		_, err := fmt.Fprintln(w, "(empty timeline)")
		return err
	}
	start := tl.End() - span
	var b strings.Builder
	for i := 0; i < width; i++ {
		t := start + span*float64(i)/float64(width)
		b.WriteByte(glyph(tl.At(t)))
	}
	if _, err := fmt.Fprintf(w, "%s\n", b.String()); err != nil {
		return err
	}
	label := fmt.Sprintf("%-12s%s", fmt.Sprintf("%.2fs", start), fmt.Sprintf("%*s", width-12, fmt.Sprintf("%.2fs", start+span)))
	_, err := fmt.Fprintf(w, "%s\n", label)
	return err
}

func glyph(count int) byte {
	switch {
	case count < 0:
		return ' '
	case count == 0:
		return '.'
	case count < 10:
		return byte('0' + count)
	default:
		return '+'
	}
}
