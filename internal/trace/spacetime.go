package trace

import (
	"fmt"
	"io"
	"strings"

	"ssrmin/internal/msgnet"
)

// SpaceTime collects msgnet tap events and renders a lane diagram: one
// column per node, one row per instant at which anything happened, with
// message sends/deliveries, losses, timers — the debugging view of the
// message-passing experiments. Install Attach on a network before running
// it.
type SpaceTime struct {
	n      int
	events []msgnet.TapEvent
	// Annotations lets higher layers (e.g. a CST node's OnExecute hook)
	// add labels such as rule executions to a node's lane.
	annotations []annotation
	// Keep bounds memory use for long runs; 0 means unlimited.
	Limit int
}

type annotation struct {
	at   msgnet.Time
	node int
	text string
}

// NewSpaceTime creates a collector for n nodes.
func NewSpaceTime(n int) *SpaceTime { return &SpaceTime{n: n} }

// Attach registers the collector as net's tap. It overwrites any
// existing tap. It is a free function rather than a SpaceTime method
// because Go methods cannot introduce the network's frame type parameter;
// the collector itself never looks at payloads.
func Attach[P any](st *SpaceTime, net *msgnet.Network[P]) {
	net.Tap = st.Tap
}

// Tap consumes one network tap event; Attach installs it.
func (st *SpaceTime) Tap(e msgnet.TapEvent) {
	if st.Limit > 0 && len(st.events) >= st.Limit {
		return
	}
	st.events = append(st.events, e)
}

// Annotate adds a custom label (e.g. "R2") to a node's lane at time t.
func (st *SpaceTime) Annotate(t msgnet.Time, node int, text string) {
	if st.Limit > 0 && len(st.annotations) >= st.Limit {
		return
	}
	st.annotations = append(st.annotations, annotation{at: t, node: node, text: text})
}

// Events returns the number of collected tap events.
func (st *SpaceTime) Events() int { return len(st.events) }

// Render writes the lane diagram. Suppressed sends are omitted (they are
// pure back-pressure noise); everything else appears. Rows are merged per
// (time, node) so one instant prints once per lane.
func (st *SpaceTime) Render(w io.Writer) error {
	type key struct {
		at   msgnet.Time
		node int
	}
	cells := map[key][]string{}
	var times []msgnet.Time
	seen := map[msgnet.Time]bool{}
	note := func(at msgnet.Time, node int, s string) {
		k := key{at, node}
		cells[k] = append(cells[k], s)
		if !seen[at] {
			seen[at] = true
			times = append(times, at)
		}
	}
	for _, e := range st.events {
		switch e.Kind {
		case msgnet.TapSend:
			note(e.At, e.From, fmt.Sprintf("s→%d", e.Node))
		case msgnet.TapDeliver:
			note(e.At, e.Node, fmt.Sprintf("r←%d", e.From))
		case msgnet.TapLost:
			note(e.At, e.From, fmt.Sprintf("x→%d", e.Node))
		case msgnet.TapCorrupted:
			note(e.At, e.From, fmt.Sprintf("!→%d", e.Node))
		case msgnet.TapDup:
			note(e.At, e.From, fmt.Sprintf("d→%d", e.Node))
		case msgnet.TapTimer:
			note(e.At, e.Node, "T")
		case msgnet.TapSuppressed:
			// omitted
		}
	}
	for _, a := range st.annotations {
		note(a.at, a.node, a.text)
	}
	// times were appended in stream order, which is nondecreasing for
	// processed events; annotations may interleave, so sort defensively.
	sortTimes(times)

	width := make([]int, st.n)
	for k, ss := range cells {
		if l := len(strings.Join(ss, ",")); l > width[k.node] {
			width[k.node] = l
		}
	}
	for i := range width {
		if width[i] < 4 {
			width[i] = 4
		}
	}

	var b strings.Builder
	writeLine := func(head string, cell func(i int) string) {
		var line strings.Builder
		fmt.Fprintf(&line, "%-10s", head)
		for i := 0; i < st.n; i++ {
			fmt.Fprintf(&line, " %-*s", width[i], cell(i))
		}
		b.WriteString(strings.TrimRight(line.String(), " "))
		b.WriteByte('\n')
	}
	writeLine("t(s)", func(i int) string { return fmt.Sprintf("P%d", i) })
	for _, t := range times {
		writeLine(fmt.Sprintf("%.4f", float64(t)), func(i int) string {
			return strings.Join(cells[key{t, i}], ",")
		})
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func sortTimes(ts []msgnet.Time) {
	for i := 1; i < len(ts); i++ {
		for j := i; j > 0 && ts[j] < ts[j-1]; j-- {
			ts[j], ts[j-1] = ts[j-1], ts[j]
		}
	}
}
