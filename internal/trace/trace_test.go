package trace

import (
	"strings"
	"testing"

	"ssrmin/internal/core"
	"ssrmin/internal/daemon"
	"ssrmin/internal/dijkstra"
	"ssrmin/internal/statemodel"
	"ssrmin/internal/verify"
)

func runSSRmin(t *testing.T, steps int) *Recorder[core.State] {
	t.Helper()
	a := core.New(5, 6)
	init := statemodel.Config[core.State]{
		{X: 3, TRA: true}, {X: 3}, {X: 3}, {X: 3}, {X: 3},
	}
	sim := statemodel.NewSimulator[core.State](a, daemon.NewCentralLowest(), init)
	var rec Recorder[core.State]
	rec.Attach(sim)
	sim.Run(steps)
	return &rec
}

// TestGoldenFigure4 renders the first 16 steps of the execution of Figure
// 4 and compares against the figure, row by row.
func TestGoldenFigure4(t *testing.T) {
	rec := runSSRmin(t, 15)
	var b strings.Builder
	if err := RenderSSRmin(&b, rec); err != nil {
		t.Fatal(err)
	}
	got := b.String()
	want := `Step  P0          P1          P2          P3          P4
1     3.0.1PS/1   3.0.0       3.0.0       3.0.0       3.0.0
2     3.1.0PS     3.0.0/3     3.0.0       3.0.0       3.0.0
3     3.1.0P/2    3.0.1S      3.0.0       3.0.0       3.0.0
4     4.0.0       3.0.1PS/1   3.0.0       3.0.0       3.0.0
5     4.0.0       3.1.0PS     3.0.0/3     3.0.0       3.0.0
6     4.0.0       3.1.0P/2    3.0.1S      3.0.0       3.0.0
7     4.0.0       4.0.0       3.0.1PS/1   3.0.0       3.0.0
8     4.0.0       4.0.0       3.1.0PS     3.0.0/3     3.0.0
9     4.0.0       4.0.0       3.1.0P/2    3.0.1S      3.0.0
10    4.0.0       4.0.0       4.0.0       3.0.1PS/1   3.0.0
11    4.0.0       4.0.0       4.0.0       3.1.0PS     3.0.0/3
12    4.0.0       4.0.0       4.0.0       3.1.0P/2    3.0.1S
13    4.0.0       4.0.0       4.0.0       4.0.0       3.0.1PS/1
14    4.0.0/3     4.0.0       4.0.0       4.0.0       3.1.0PS
15    4.0.1S      4.0.0       4.0.0       4.0.0       3.1.0P/2
16    4.0.1PS     4.0.0       4.0.0       4.0.0       4.0.0
`
	gl, wl := strings.Split(strings.TrimSpace(got), "\n"), strings.Split(strings.TrimSpace(want), "\n")
	if len(gl) != len(wl) {
		t.Fatalf("Figure 4: %d lines, want %d.\ngot:\n%s", len(gl), len(wl), got)
	}
	for i := range wl {
		if gf, wf := strings.Fields(gl[i]), strings.Fields(wl[i]); !equalFields(gf, wf) {
			t.Errorf("Figure 4 line %d: got %v, want %v", i, gf, wf)
		}
	}
}

func equalFields(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestGoldenFigure1 checks the token-letter rendering of the first rows of
// Figure 1.
func TestGoldenFigure1(t *testing.T) {
	rec := runSSRmin(t, 5)
	var b strings.Builder
	if err := RenderTokens(&b, rec); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(b.String(), "\n"), "\n")
	// The paper's Figure 1 collapses the handshake steps; here we assert
	// its structural property over the full execution: at every row there
	// is exactly one P and exactly one S (possibly on one process).
	for i, line := range lines[1:] {
		p := strings.Count(line, "P")
		s := strings.Count(line, "S")
		if p < 1 || s != 1 {
			t.Errorf("row %d: %q has %d P / %d S", i+1, line, p, s)
		}
	}
}

func TestRecorderCaptures(t *testing.T) {
	rec := runSSRmin(t, 7)
	if rec.Steps() != 7 {
		t.Fatalf("Steps = %d", rec.Steps())
	}
	if len(rec.Configs) != 8 {
		t.Fatalf("Configs = %d", len(rec.Configs))
	}
	// Each transition has exactly one move under the central daemon from a
	// legitimate start.
	for t2, ms := range rec.Moves {
		if len(ms) != 1 {
			t.Fatalf("transition %d has %d moves", t2, len(ms))
		}
	}
}

func TestWriteCSV(t *testing.T) {
	rec := runSSRmin(t, 3)
	var b strings.Builder
	if err := WriteCSV(&b, rec); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(b.String(), "\n"), "\n")
	// Header + 4 configs × 5 processes.
	if len(lines) != 1+4*5 {
		t.Fatalf("CSV has %d lines, want 21", len(lines))
	}
	if lines[0] != "step,process,x,rts,tra,primary,secondary,rule" {
		t.Errorf("header = %q", lines[0])
	}
	// First record: step 0, process 0, x=3, tra=1, holds both tokens,
	// executes rule 1.
	if lines[1] != "0,0,3,0,1,1,1,1" {
		t.Errorf("first record = %q", lines[1])
	}
}

func TestRenderDijkstra(t *testing.T) {
	a := dijkstra.New(4, 5)
	sim := statemodel.NewSimulator[dijkstra.State](a, daemon.NewCentralLowest(), a.InitialLegitimate())
	var rec Recorder[dijkstra.State]
	rec.Attach(sim)
	sim.Run(4)
	var b strings.Builder
	if err := RenderDijkstra(&b, &rec); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "T") {
		t.Errorf("no token marker in:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 6 {
		t.Errorf("Dijkstra trace has %d lines, want 6", len(lines))
	}
	// Exactly one token per row.
	for _, line := range lines[1:] {
		if strings.Count(line, "T") != 1 {
			t.Errorf("row %q does not have exactly one token", line)
		}
	}
}

func TestEmptyRecorderRenders(t *testing.T) {
	var rec Recorder[core.State]
	var b strings.Builder
	if err := RenderSSRmin(&b, &rec); err != nil || b.Len() != 0 {
		t.Errorf("empty render: err=%v out=%q", err, b.String())
	}
	if err := RenderTokens(&b, &rec); err != nil || b.Len() != 0 {
		t.Errorf("empty render tokens: err=%v out=%q", err, b.String())
	}
}

func TestRenderTimeline(t *testing.T) {
	var tl verify.Timeline
	tl.Record(0, 1)
	tl.Record(5, 0)
	tl.Record(7, 2)
	tl.Close(10)
	var b strings.Builder
	if err := RenderTimeline(&b, &tl, 20); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(b.String(), "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("timeline output:\n%s", b.String())
	}
	strip := lines[0]
	if len(strip) != 20 {
		t.Fatalf("strip width %d", len(strip))
	}
	// 0..5 -> '1' (10 chars), 5..7 -> '.' (4 chars), 7..10 -> '2' (6 chars).
	if !strings.HasPrefix(strip, "1111111111") {
		t.Errorf("strip = %q", strip)
	}
	if !strings.Contains(strip, ".") || !strings.HasSuffix(strip, "222222") {
		t.Errorf("strip = %q", strip)
	}
}

func TestRenderTimelineEmpty(t *testing.T) {
	var tl verify.Timeline
	tl.Close(0)
	var b strings.Builder
	if err := RenderTimeline(&b, &tl, 30); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "empty") {
		t.Errorf("output = %q", b.String())
	}
}

func TestGlyphs(t *testing.T) {
	cases := map[int]byte{-1: ' ', 0: '.', 3: '3', 9: '9', 12: '+'}
	for count, want := range cases {
		if got := glyph(count); got != want {
			t.Errorf("glyph(%d) = %q, want %q", count, got, want)
		}
	}
}
