// Package trace records executions of ring algorithms and renders them in
// the notation of the paper's figures: Figure 1 (positions of the primary
// 'P' and secondary 'S' tokens over time) and Figure 4 (the full
// x_i.rts_i.tra_i local states annotated with token letters and the rule
// each enabled process is about to execute). It also exports CSV for
// downstream analysis.
package trace

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"

	"ssrmin/internal/core"
	"ssrmin/internal/dijkstra"
	"ssrmin/internal/statemodel"
)

// Recorder captures the sequence of configurations and the moves taken
// between them. Install Attach on a simulator before running it.
type Recorder[S comparable] struct {
	// Configs holds γ0, γ1, …; Configs[t] is the configuration before
	// Moves[t] executes.
	Configs []statemodel.Config[S]
	// Moves holds the moves of each transition; len(Moves) is
	// len(Configs)−1 once recording ends.
	Moves [][]statemodel.Move
}

// Attach registers the recorder on sim and snapshots the initial
// configuration. It overwrites any existing OnStep hook.
func (r *Recorder[S]) Attach(sim *statemodel.Simulator[S]) {
	r.Configs = append(r.Configs, sim.Config())
	sim.OnStep = func(_ int, moves []statemodel.Move, cfg statemodel.Config[S]) {
		ms := make([]statemodel.Move, len(moves))
		copy(ms, moves)
		r.Moves = append(r.Moves, ms)
		r.Configs = append(r.Configs, cfg.Clone())
	}
}

// Steps returns the number of recorded transitions.
func (r *Recorder[S]) Steps() int { return len(r.Moves) }

// ruleOf returns the rule process p executes in transition t, or 0.
func (r *Recorder[S]) ruleOf(t, p int) int {
	if t >= len(r.Moves) {
		return 0
	}
	for _, m := range r.Moves[t] {
		if m.Process == p {
			return m.Rule
		}
	}
	return 0
}

// RenderSSRmin renders a Figure-4 style table for an SSRmin execution:
// one row per configuration, one column per process, cells like
// "3.1.0PS/2" — local state, token letters, and the rule the process
// executes in the transition leaving this row.
func RenderSSRmin(w io.Writer, r *Recorder[core.State]) error {
	if len(r.Configs) == 0 {
		return nil
	}
	n := len(r.Configs[0])
	head := make([]string, n+1)
	head[0] = "Step"
	for i := 0; i < n; i++ {
		head[i+1] = fmt.Sprintf("P%d", i)
	}
	rows := [][]string{head}
	for t, cfg := range r.Configs {
		row := make([]string, n+1)
		row[0] = strconv.Itoa(t + 1)
		for i := 0; i < n; i++ {
			row[i+1] = ssrminCell(cfg, i, r.ruleOf(t, i))
		}
		rows = append(rows, row)
	}
	return writeAligned(w, rows)
}

func ssrminCell(cfg statemodel.Config[core.State], i, rule int) string {
	v := cfg.View(i)
	cell := cfg[i].String()
	if core.HasPrimary(v) {
		cell += "P"
	}
	if core.HasSecondary(v) {
		cell += "S"
	}
	if rule != 0 {
		cell += "/" + strconv.Itoa(rule)
	}
	return cell
}

// RenderTokens renders a Figure-1 style table: only the token letters per
// process ('P', 'S', 'PS' or '—'), one row per configuration.
func RenderTokens(w io.Writer, r *Recorder[core.State]) error {
	if len(r.Configs) == 0 {
		return nil
	}
	n := len(r.Configs[0])
	head := make([]string, n+1)
	head[0] = "Step"
	for i := 0; i < n; i++ {
		head[i+1] = fmt.Sprintf("P%d", i)
	}
	rows := [][]string{head}
	for t, cfg := range r.Configs {
		row := make([]string, n+1)
		row[0] = strconv.Itoa(t + 1)
		for i := 0; i < n; i++ {
			v := cfg.View(i)
			cell := ""
			if core.HasPrimary(v) {
				cell += "P"
			}
			if core.HasSecondary(v) {
				cell += "S"
			}
			if cell == "" {
				cell = "-"
			}
			row[i+1] = cell
		}
		rows = append(rows, row)
	}
	return writeAligned(w, rows)
}

// RenderDijkstra renders an SSToken execution: x values with 'T' marking
// the token holder and the rule annotation.
func RenderDijkstra(w io.Writer, r *Recorder[dijkstra.State]) error {
	if len(r.Configs) == 0 {
		return nil
	}
	n := len(r.Configs[0])
	head := make([]string, n+1)
	head[0] = "Step"
	for i := 0; i < n; i++ {
		head[i+1] = fmt.Sprintf("P%d", i)
	}
	rows := [][]string{head}
	for t, cfg := range r.Configs {
		row := make([]string, n+1)
		row[0] = strconv.Itoa(t + 1)
		for i := 0; i < n; i++ {
			cell := cfg[i].String()
			if dijkstra.HasToken(cfg.View(i)) {
				cell += "T"
			}
			if r.ruleOf(t, i) != 0 {
				cell += "*"
			}
			row[i+1] = cell
		}
		rows = append(rows, row)
	}
	return writeAligned(w, rows)
}

// WriteCSV exports an SSRmin execution as CSV with one record per
// (step, process) pair: step, process, x, rts, tra, primary, secondary,
// rule.
func WriteCSV(w io.Writer, r *Recorder[core.State]) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"step", "process", "x", "rts", "tra", "primary", "secondary", "rule"}); err != nil {
		return err
	}
	for t, cfg := range r.Configs {
		for i := range cfg {
			v := cfg.View(i)
			rec := []string{
				strconv.Itoa(t),
				strconv.Itoa(i),
				strconv.Itoa(cfg[i].X),
				boolBit(cfg[i].RTS),
				boolBit(cfg[i].TRA),
				boolBit(core.HasPrimary(v)),
				boolBit(core.HasSecondary(v)),
				strconv.Itoa(r.ruleOf(t, i)),
			}
			if err := cw.Write(rec); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

func boolBit(b bool) string {
	if b {
		return "1"
	}
	return "0"
}

// writeAligned prints rows as a fixed-width table.
func writeAligned(w io.Writer, rows [][]string) error {
	if len(rows) == 0 {
		return nil
	}
	width := make([]int, len(rows[0]))
	for _, row := range rows {
		for i, c := range row {
			if len(c) > width[i] {
				width[i] = len(c)
			}
		}
	}
	var b strings.Builder
	for _, row := range rows {
		for i, c := range row {
			if i > 0 {
				b.WriteString("  ")
			}
			if i == len(row)-1 {
				b.WriteString(c) // no trailing padding
			} else {
				fmt.Fprintf(&b, "%-*s", width[i], c)
			}
		}
		b.WriteByte('\n')
	}
	_, err := io.WriteString(w, b.String())
	return err
}
