// Package dijkstra implements Dijkstra's self-stabilizing K-state token
// ring, called SSToken in the paper (Algorithm 1), together with its token
// predicate, its legitimacy predicate, and the two-independent-instances
// baseline of Figure 12.
//
// SSToken runs on a unidirectional ring: each process reads only its
// predecessor. We express it over the bidirectional View of
// internal/statemodel — the successor state is simply ignored — so that
// SSToken, SSRmin and their transformed versions share one framework.
//
// The algorithm (K > n):
//
//	bottom P_0:    if x_0 = x_{n-1}  then x_0 ← x_{n-1} + 1 mod K
//	other  P_i:    if x_i ≠ x_{i-1}  then x_i ← x_{i-1}
//
// A process holds the token iff its guard holds. In legitimate
// configurations exactly one process holds the token and the token
// circulates the ring forever.
package dijkstra

import (
	"fmt"

	"ssrmin/internal/statemodel"
)

// State is the local state of a process: the single counter x_i in
// {0, …, K−1}.
type State struct {
	// X is the K-state counter.
	X int
}

func (s State) String() string { return fmt.Sprintf("%d", s.X) }

// Algorithm is an SSToken instance for a ring of n processes with counter
// space K.
type Algorithm struct {
	n, k int
}

var _ statemodel.Algorithm[State] = (*Algorithm)(nil)

// New returns an SSToken instance. It panics unless n ≥ 2 and K > n — the
// paper's requirement for self-stabilization under the distributed daemon.
func New(n, k int) *Algorithm {
	if n < 2 {
		panic(fmt.Sprintf("dijkstra: ring size %d < 2", n))
	}
	if k <= n {
		panic(fmt.Sprintf("dijkstra: K=%d must exceed n=%d", k, n))
	}
	return &Algorithm{n: n, k: k}
}

// Name implements statemodel.Algorithm.
func (a *Algorithm) Name() string { return fmt.Sprintf("sstoken(n=%d,K=%d)", a.n, a.k) }

// UniformViews implements statemodel.PositionUniform: the bottom runs D1,
// everyone else D2, and neither reads I or N beyond Bottom().
func (a *Algorithm) UniformViews() {}

// N implements statemodel.Algorithm.
func (a *Algorithm) N() int { return a.n }

// K returns the counter space size.
func (a *Algorithm) K() int { return a.k }

// Rules implements statemodel.Algorithm; SSToken has a single rule per
// process (D1 at the bottom, D2 elsewhere), so Rules() = 1.
func (a *Algorithm) Rules() int { return 1 }

// Guard evaluates G_i of the paper: the token condition of process v.I.
// For the bottom process it is x_i = x_{i-1}; for the others x_i ≠ x_{i-1}.
//
//rulecheck:guard dijkstra token
func Guard(v statemodel.View[State]) bool {
	return GuardX(v.I, v.Self.X, v.Pred.X)
}

// GuardX is Guard on bare counters: the token condition of process i with
// counter selfX whose predecessor shows predX. Embedding algorithms (core,
// compose) evaluate it on every guard check, so it skips the view struct.
//
//rulecheck:guard dijkstra token args=I,Self.X,Pred.X
func GuardX(i, selfX, predX int) bool {
	if i == 0 {
		return selfX == predX
	}
	return selfX != predX
}

// Command evaluates C_i of the paper and returns the new local state:
// x_{i-1}+1 mod K at the bottom, a copy of x_{i-1} elsewhere.
func Command(v statemodel.View[State], k int) State {
	if v.Bottom() {
		return State{X: (v.Pred.X + 1) % k}
	}
	return State{X: v.Pred.X}
}

// EnabledRule implements statemodel.Algorithm.
//
//rulecheck:relation dijkstra
func (a *Algorithm) EnabledRule(v statemodel.View[State]) int {
	if Guard(v) {
		return 1
	}
	return 0
}

// Apply implements statemodel.Algorithm.
//
//rulecheck:relation dijkstra
func (a *Algorithm) Apply(v statemodel.View[State], rule int) State {
	if rule != 1 {
		panic(fmt.Sprintf("dijkstra: unknown rule %d", rule))
	}
	return Command(v, a.k)
}

// HasToken reports whether the process with view v holds the (unique, in
// legitimate configurations) token: it is exactly the guard G_i.
//
//rulecheck:guard dijkstra token
func HasToken(v statemodel.View[State]) bool { return Guard(v) }

// TokenHolders returns the indices of all token-holding processes of c.
func (a *Algorithm) TokenHolders(c statemodel.Config[State]) []int {
	var holders []int
	for i := range c {
		if HasToken(c.View(i)) {
			holders = append(holders, i)
		}
	}
	return holders
}

// SingleToken reports whether exactly one process holds the token in c.
// This weaker predicate is the usual mutual-exclusion measure; it is
// closed under transitions but slightly larger than the canonical
// legitimate set of Section 2.3 (a lone token may still sit on a step of
// height ≠ 1, which collapses within one move).
func (a *Algorithm) SingleToken(c statemodel.Config[State]) bool {
	return len(a.TokenHolders(c)) == 1
}

// Legitimate reports whether c is a legitimate configuration of SSToken in
// the strict sense of Section 2.3: for some x, c = (x, …, x) — token at
// the bottom — or c = (x+1, …, x+1, x, …, x) with 1 ≤ ℓ ≤ n−1 leading x+1
// values (mod K) — token at the step.
func (a *Algorithm) Legitimate(c statemodel.Config[State]) bool {
	h := a.TokenHolders(c)
	if len(h) != 1 {
		return false
	}
	if h[0] == 0 {
		return true // all values equal
	}
	return c[0].X == (c[h[0]].X+1)%a.k
}

// StepDown returns the index of the unique token holder of a legitimate
// configuration, or -1 if c is not legitimate.
func (a *Algorithm) StepDown(c statemodel.Config[State]) int {
	h := a.TokenHolders(c)
	if len(h) != 1 {
		return -1
	}
	return h[0]
}

// InitialLegitimate returns the all-zero configuration, which is legitimate
// with the token at the bottom process.
func (a *Algorithm) InitialLegitimate() statemodel.Config[State] {
	return make(statemodel.Config[State], a.n)
}

// AllStates enumerates the K local states; the exhaustive model checker
// uses it to walk the full configuration space.
func (a *Algorithm) AllStates() []State {
	out := make([]State, a.k)
	for x := 0; x < a.k; x++ {
		out[x] = State{X: x}
	}
	return out
}

// ConvergenceBound returns 3n(n−1)/2, the upper bound on SSToken's
// convergence time under the unfair distributed daemon proven in
// Altisen–Devismes–Dubois–Petit (2019), which Lemma 8 of the paper relies
// on.
func (a *Algorithm) ConvergenceBound() int { return 3 * a.n * (a.n - 1) / 2 }

// Pair runs two independent SSToken instances side by side in one local
// state — the baseline of Figure 12: even with two tokens circulating
// independently, the message-passing model has instants with no token at
// all when both happen to be in flight.
type Pair struct {
	n, k int
}

// PairState carries the counters of both instances.
type PairState struct {
	// A is instance 1's counter, B instance 2's.
	A, B int
}

func (s PairState) String() string { return fmt.Sprintf("%d|%d", s.A, s.B) }

var _ statemodel.Algorithm[PairState] = (*Pair)(nil)

// NewPair returns two independent SSToken instances over one ring.
func NewPair(n, k int) *Pair {
	if n < 2 || k <= n {
		panic(fmt.Sprintf("dijkstra: invalid pair parameters n=%d K=%d", n, k))
	}
	return &Pair{n: n, k: k}
}

// Name implements statemodel.Algorithm.
func (p *Pair) Name() string { return fmt.Sprintf("sstoken-pair(n=%d,K=%d)", p.n, p.k) }

// UniformViews implements statemodel.PositionUniform: both component
// instances read the position only through Bottom().
func (p *Pair) UniformViews() {}

// N implements statemodel.Algorithm.
func (p *Pair) N() int { return p.n }

// Rules implements statemodel.Algorithm. Rule 1 moves instance A, rule 2
// instance B, rule 3 both at once; a process is enabled by the smallest
// rule covering exactly its enabled instances, so the rule priority
// convention of statemodel is preserved while both instances stay
// independent.
func (p *Pair) Rules() int { return 3 }

func (p *Pair) split(v statemodel.View[PairState]) (a, b statemodel.View[State]) {
	a = statemodel.View[State]{I: v.I, N: v.N, Self: State{v.Self.A}, Pred: State{v.Pred.A}, Succ: State{v.Succ.A}}
	b = statemodel.View[State]{I: v.I, N: v.N, Self: State{v.Self.B}, Pred: State{v.Pred.B}, Succ: State{v.Succ.B}}
	return a, b
}

// EnabledRule implements statemodel.Algorithm.
func (p *Pair) EnabledRule(v statemodel.View[PairState]) int {
	va, vb := p.split(v)
	ga, gb := Guard(va), Guard(vb)
	switch {
	case ga && gb:
		return 3
	case ga:
		return 1
	case gb:
		return 2
	}
	return 0
}

// Apply implements statemodel.Algorithm.
func (p *Pair) Apply(v statemodel.View[PairState], rule int) PairState {
	va, vb := p.split(v)
	next := v.Self
	if rule == 1 || rule == 3 {
		next.A = Command(va, p.k).X
	}
	if rule == 2 || rule == 3 {
		next.B = Command(vb, p.k).X
	}
	return next
}

// TokenHoldersA returns the indices holding instance A's token.
func (p *Pair) TokenHoldersA(c statemodel.Config[PairState]) []int {
	var holders []int
	for i := range c {
		va, _ := p.split(c.View(i))
		if Guard(va) {
			holders = append(holders, i)
		}
	}
	return holders
}

// TokenHoldersB returns the indices holding instance B's token.
func (p *Pair) TokenHoldersB(c statemodel.Config[PairState]) []int {
	var holders []int
	for i := range c {
		_, vb := p.split(c.View(i))
		if Guard(vb) {
			holders = append(holders, i)
		}
	}
	return holders
}

// AllStates enumerates the K² pair states.
func (p *Pair) AllStates() []PairState {
	out := make([]PairState, 0, p.k*p.k)
	for a := 0; a < p.k; a++ {
		for b := 0; b < p.k; b++ {
			out = append(out, PairState{A: a, B: b})
		}
	}
	return out
}
