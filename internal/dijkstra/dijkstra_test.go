package dijkstra

import (
	"math/rand"
	"testing"
	"testing/quick"

	"ssrmin/internal/statemodel"
)

func xs(vals ...int) statemodel.Config[State] {
	c := make(statemodel.Config[State], len(vals))
	for i, v := range vals {
		c[i] = State{X: v}
	}
	return c
}

func TestNewValidation(t *testing.T) {
	for _, tc := range []struct{ n, k int }{{1, 5}, {3, 3}, {4, 2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d, %d) did not panic", tc.n, tc.k)
				}
			}()
			New(tc.n, tc.k)
		}()
	}
}

func TestGuardAndCommand(t *testing.T) {
	a := New(4, 5)
	// Bottom process: token iff x_0 = x_{n-1}.
	v := statemodel.View[State]{I: 0, N: 4, Self: State{2}, Pred: State{2}, Succ: State{0}}
	if !Guard(v) {
		t.Error("bottom guard should hold when x_0 = x_{n-1}")
	}
	if got := a.Apply(v, 1); got.X != 3 {
		t.Errorf("bottom command = %d, want 3", got.X)
	}
	// Wraparound of the counter.
	v.Self, v.Pred = State{4}, State{4}
	if got := a.Apply(v, 1); got.X != 0 {
		t.Errorf("bottom command at K-1 = %d, want 0", got.X)
	}
	// Other process: token iff x_i ≠ x_{i-1}, command copies.
	v = statemodel.View[State]{I: 2, N: 4, Self: State{1}, Pred: State{3}, Succ: State{0}}
	if !Guard(v) {
		t.Error("other guard should hold when x_i ≠ x_{i-1}")
	}
	if got := a.Apply(v, 1); got.X != 3 {
		t.Errorf("other command = %d, want 3 (copy of pred)", got.X)
	}
	v.Self = State{3}
	if Guard(v) {
		t.Error("other guard should not hold when x_i = x_{i-1}")
	}
}

func TestAtLeastOneTokenAlways(t *testing.T) {
	// Lemma 3: in any configuration some process holds the token.
	a := New(3, 4)
	for x0 := 0; x0 < 4; x0++ {
		for x1 := 0; x1 < 4; x1++ {
			for x2 := 0; x2 < 4; x2++ {
				c := xs(x0, x1, x2)
				if len(a.TokenHolders(c)) == 0 {
					t.Fatalf("no token in %v", c)
				}
			}
		}
	}
}

func TestAtLeastOneTokenQuick(t *testing.T) {
	a := New(7, 9)
	f := func(raw []uint8) bool {
		c := make(statemodel.Config[State], a.N())
		for i := range c {
			if i < len(raw) {
				c[i] = State{X: int(raw[i]) % a.K()}
			}
		}
		return len(a.TokenHolders(c)) >= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

func TestLegitimateForms(t *testing.T) {
	a := New(4, 5)
	legit := []statemodel.Config[State]{
		xs(0, 0, 0, 0),
		xs(3, 3, 3, 3),
		xs(1, 0, 0, 0),
		xs(1, 1, 0, 0),
		xs(1, 1, 1, 0),
		xs(0, 4, 4, 4), // wraparound: x = 4, prefix x+1 = 0
	}
	for _, c := range legit {
		if !a.Legitimate(c) {
			t.Errorf("Legitimate(%v) = false, want true", c)
		}
		if !a.SingleToken(c) {
			t.Errorf("SingleToken(%v) = false, want true", c)
		}
	}
	illegit := []statemodel.Config[State]{
		xs(0, 1, 2, 3),
		xs(2, 0, 0, 0), // single token but step of height 2
		xs(1, 0, 1, 0),
		xs(0, 0, 1, 1), // suffix larger: two tokens (P2 and P0)
	}
	for _, c := range illegit {
		if a.Legitimate(c) {
			t.Errorf("Legitimate(%v) = true, want false", c)
		}
	}
	// (2,0,0,0) has a single token but is not strict-legitimate.
	if !a.SingleToken(xs(2, 0, 0, 0)) {
		t.Error("SingleToken((2,0,0,0)) = false, want true")
	}
}

func TestTokenCirculation(t *testing.T) {
	// From the all-zero configuration, the token visits every process in
	// order, and every process is privileged once per rotation.
	a := New(5, 6)
	c := a.InitialLegitimate()
	wantHolder := 0
	for step := 0; step < 5*6; step++ {
		h := a.TokenHolders(c)
		if len(h) != 1 || h[0] != wantHolder {
			t.Fatalf("step %d: holders %v, want [%d]", step, h, wantHolder)
		}
		moves := statemodel.Enabled[State](a, c)
		if len(moves) != 1 {
			t.Fatalf("step %d: enabled %v, want exactly one", step, moves)
		}
		c = statemodel.Apply[State](a, c, moves)
		wantHolder = (wantHolder + 1) % 5
	}
}

func TestClosureExhaustive(t *testing.T) {
	// From every legitimate configuration, the (unique) successor is
	// legitimate. Enumerate legitimate configurations directly.
	a := New(4, 5)
	count := 0
	for x := 0; x < a.K(); x++ {
		for h := 0; h < a.N(); h++ {
			c := make(statemodel.Config[State], a.N())
			for i := range c {
				if i < h {
					c[i] = State{X: (x + 1) % a.K()}
				} else {
					c[i] = State{X: x}
				}
			}
			if !a.Legitimate(c) {
				t.Fatalf("enumerated config %v not legitimate", c)
			}
			moves := statemodel.Enabled[State](a, c)
			if len(moves) != 1 {
				t.Fatalf("legitimate %v has %d enabled processes", c, len(moves))
			}
			next := statemodel.Apply[State](a, c, moves)
			if !a.Legitimate(next) {
				t.Fatalf("closure violated: %v -> %v", c, next)
			}
			count++
		}
	}
	if count != a.N()*a.K() {
		t.Fatalf("enumerated %d legitimate configs, want %d", count, a.N()*a.K())
	}
}

func TestConvergenceWithinBound(t *testing.T) {
	// From random configurations under a synchronous daemon (every enabled
	// process moves), SSToken reaches a single-token configuration within
	// the 3n(n−1)/2 bound of rounds, and the strict legitimate form within
	// one extra rotation.
	rng := rand.New(rand.NewSource(11))
	for _, tc := range []struct{ n, k int }{{3, 4}, {5, 6}, {10, 11}, {17, 19}} {
		a := New(tc.n, tc.k)
		for trial := 0; trial < 200; trial++ {
			c := make(statemodel.Config[State], tc.n)
			for i := range c {
				c[i] = State{X: rng.Intn(tc.k)}
			}
			bound := a.ConvergenceBound()
			steps := 0
			for !a.SingleToken(c) {
				if steps > bound {
					t.Fatalf("n=%d: no convergence to single token in %d steps from trial %d", tc.n, bound, trial)
				}
				moves := statemodel.Enabled[State](a, c)
				c = statemodel.Apply[State](a, c, moves)
				steps++
			}
			extra := 0
			for !a.Legitimate(c) {
				if extra > 2*tc.n {
					t.Fatalf("n=%d: single-token config %v did not collapse to strict form", tc.n, c)
				}
				moves := statemodel.Enabled[State](a, c)
				c = statemodel.Apply[State](a, c, moves)
				extra++
			}
		}
	}
}

func TestTokenCountNeverIncreases(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := New(6, 7)
	for trial := 0; trial < 300; trial++ {
		c := make(statemodel.Config[State], a.N())
		for i := range c {
			c[i] = State{X: rng.Intn(a.K())}
		}
		prev := len(a.TokenHolders(c))
		for step := 0; step < 100; step++ {
			moves := statemodel.Enabled[State](a, c)
			// Random nonempty subset.
			var sel []statemodel.Move
			for _, m := range moves {
				if rng.Intn(2) == 0 {
					sel = append(sel, m)
				}
			}
			if len(sel) == 0 {
				sel = moves[:1]
			}
			c = statemodel.Apply[State](a, c, sel)
			cur := len(a.TokenHolders(c))
			if cur > prev {
				t.Fatalf("token count increased %d -> %d at %v", prev, cur, c)
			}
			prev = cur
		}
	}
}

func TestPairIndependence(t *testing.T) {
	// The pair composition must behave exactly like two independent
	// SSToken instances: project each step and compare against two
	// reference simulations driven by the same schedule.
	p := NewPair(4, 5)
	ref := New(4, 5)
	rng := rand.New(rand.NewSource(3))

	pc := make(statemodel.Config[PairState], 4)
	ca := make(statemodel.Config[State], 4)
	cb := make(statemodel.Config[State], 4)
	for i := range pc {
		a, b := rng.Intn(5), rng.Intn(5)
		pc[i] = PairState{A: a, B: b}
		ca[i] = State{X: a}
		cb[i] = State{X: b}
	}

	for step := 0; step < 200; step++ {
		moves := statemodel.Enabled[PairState](p, pc)
		if len(moves) == 0 {
			t.Fatal("pair deadlocked")
		}
		sel := []statemodel.Move{moves[rng.Intn(len(moves))]}
		proc, rule := sel[0].Process, sel[0].Rule
		pc = statemodel.Apply[PairState](p, pc, sel)
		if rule == 1 || rule == 3 {
			ca = statemodel.Apply[State](ref, ca, []statemodel.Move{{Process: proc, Rule: 1}})
		}
		if rule == 2 || rule == 3 {
			cb = statemodel.Apply[State](ref, cb, []statemodel.Move{{Process: proc, Rule: 1}})
		}
		for i := range pc {
			if pc[i].A != ca[i].X || pc[i].B != cb[i].X {
				t.Fatalf("step %d: pair diverged from reference at %d: %v vs %v/%v", step, i, pc[i], ca[i], cb[i])
			}
		}
	}
}

func TestPairTokenHolders(t *testing.T) {
	p := NewPair(3, 4)
	pc := statemodel.Config[PairState]{{A: 0, B: 1}, {A: 0, B: 1}, {A: 0, B: 0}}
	// Instance A: all equal -> token at P0. Instance B: (1,1,0) -> token at P2.
	if got := p.TokenHoldersA(pc); len(got) != 1 || got[0] != 0 {
		t.Errorf("TokenHoldersA = %v, want [0]", got)
	}
	if got := p.TokenHoldersB(pc); len(got) != 1 || got[0] != 2 {
		t.Errorf("TokenHoldersB = %v, want [2]", got)
	}
}

func TestAllStates(t *testing.T) {
	a := New(3, 7)
	if got := len(a.AllStates()); got != 7 {
		t.Errorf("AllStates() has %d entries, want 7", got)
	}
	p := NewPair(3, 4)
	if got := len(p.AllStates()); got != 16 {
		t.Errorf("pair AllStates() has %d entries, want 16", got)
	}
}

func TestConvergenceBoundValue(t *testing.T) {
	if got := New(5, 6).ConvergenceBound(); got != 30 {
		t.Errorf("ConvergenceBound(n=5) = %d, want 30", got)
	}
}

func TestAccessorsAndStrings(t *testing.T) {
	a := New(4, 5)
	if a.Name() != "sstoken(n=4,K=5)" {
		t.Errorf("Name = %q", a.Name())
	}
	if a.Rules() != 1 || a.K() != 5 || a.N() != 4 {
		t.Error("accessors wrong")
	}
	if (State{X: 3}).String() != "3" {
		t.Error("State.String wrong")
	}
	p := NewPair(4, 5)
	if p.Name() != "sstoken-pair(n=4,K=5)" || p.N() != 4 || p.Rules() != 3 {
		t.Errorf("pair accessors: %q %d %d", p.Name(), p.N(), p.Rules())
	}
	if (PairState{A: 1, B: 2}).String() != "1|2" {
		t.Error("PairState.String wrong")
	}
}

func TestStepDown(t *testing.T) {
	a := New(4, 5)
	if got := a.StepDown(xs(1, 1, 0, 0)); got != 2 {
		t.Errorf("StepDown = %d, want 2", got)
	}
	if got := a.StepDown(xs(0, 1, 0, 1)); got != -1 {
		t.Errorf("StepDown on multi-token = %d, want -1", got)
	}
}

func TestApplyBadRulePanics(t *testing.T) {
	a := New(3, 4)
	v := statemodel.View[State]{I: 1, N: 3, Self: State{1}, Pred: State{0}}
	defer func() {
		if recover() == nil {
			t.Error("Apply(2) accepted")
		}
	}()
	a.Apply(v, 2)
}

func TestNewPairValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewPair(1, 5) accepted")
		}
	}()
	NewPair(1, 5)
}

func TestPairSingleInstanceRules(t *testing.T) {
	p := NewPair(3, 4)
	// Only instance B enabled at P1: A equal, B differs.
	v := statemodel.View[PairState]{I: 1, N: 3,
		Self: PairState{A: 0, B: 0}, Pred: PairState{A: 0, B: 1}, Succ: PairState{}}
	if r := p.EnabledRule(v); r != 2 {
		t.Fatalf("rule = %d, want 2 (B only)", r)
	}
	next := p.Apply(v, 2)
	if next.A != 0 || next.B != 1 {
		t.Fatalf("Apply(B) = %v", next)
	}
	// Only instance A enabled.
	v.Pred = PairState{A: 1, B: 0}
	if r := p.EnabledRule(v); r != 1 {
		t.Fatalf("rule = %d, want 1 (A only)", r)
	}
	next = p.Apply(v, 1)
	if next.A != 1 || next.B != 0 {
		t.Fatalf("Apply(A) = %v", next)
	}
}
