// Package core implements SSRmin, the self-stabilizing mutual inclusion
// algorithm of Kakugawa–Kamei–Katayama (IJNC 2022, Algorithm 3).
//
// SSRmin circulates two tokens on a bidirectional ring "like an inchworm":
//
//   - The primary token is the token of Dijkstra's K-state ring (SSToken):
//     process P_i holds it iff the Dijkstra guard G_i holds. It is the tail
//     of the inchworm and only advances once the head has moved on.
//   - The secondary token is the head. Its position is encoded by two
//     handshake bits per process: rts_i ("ready to send") and tra_i
//     ("token receipt acknowledged").
//
// A full position advance takes three rule executions (Figure 2):
//
//	Rule 1 (α₁) at P_i:   G_i ∧ rts.tra ∈ {0.0, 0.1, 1.1}      → 1.0
//	Rule 3 (β)  at P_i+1: ¬G ∧ pred=1.0 ∧ rts.tra ∈ {0.0,1.0,1.1} → 0.1
//	Rule 2 (α₂) at P_i:   G_i ∧ rts.tra=1.0 ∧ succ=0.1          → 0.0; C_i
//
// Rules 4 and 5 repair locally inconsistent states so that the algorithm
// converges from arbitrary configurations. Rule numbers are priorities:
// each process is enabled by at most one rule (the smallest).
//
// In legitimate configurations (Definition 1) the number of privileged
// processes is at least one and at most two, and the two holders are the
// same process or ring neighbors — that is mutual inclusion, and also a
// solution of the (1,2)-critical-section problem.
package core

import (
	"fmt"

	"ssrmin/internal/dijkstra"
	"ssrmin/internal/statemodel"
)

// State is the local state of an SSRmin process: the Dijkstra counter plus
// the two handshake bits.
type State struct {
	// X is the Dijkstra K-state counter in {0, …, K−1}.
	X int
	// RTS is the "ready to send the secondary token" bit.
	RTS bool
	// TRA is the "token receipt acknowledged" bit.
	TRA bool
}

// String renders the paper's x.rts.tra notation, e.g. "3.1.0".
func (s State) String() string {
	return fmt.Sprintf("%d.%d.%d", s.X, bit(s.RTS), bit(s.TRA))
}

func bit(b bool) int {
	if b {
		return 1
	}
	return 0
}

// Flags packs (rts, tra) for pattern matching against the paper's ⟨r.t⟩
// notation.
func (s State) Flags() (rts, tra bool) { return s.RTS, s.TRA }

// Rule numbers of Algorithm 3. Smaller numbers have higher priority.
const (
	// RuleReadySecondary is Rule 1 (abstract action α₁): announce the
	// secondary token to the successor.
	RuleReadySecondary = 1
	// RuleSendPrimary is Rule 2 (abstract action α₂): move the primary
	// token by executing the Dijkstra command.
	RuleSendPrimary = 2
	// RuleRecvSecondary is Rule 3 (abstract action β): acknowledge receipt
	// of the secondary token from the predecessor.
	RuleRecvSecondary = 3
	// RuleFixG is Rule 4: repair an inconsistent local state while holding
	// the primary token (also executes the Dijkstra command).
	RuleFixG = 4
	// RuleFixNoG is Rule 5: repair an inconsistent local state while not
	// holding the primary token.
	RuleFixNoG = 5
)

// RuleName returns a short mnemonic for a rule number.
func RuleName(rule int) string {
	switch rule {
	case RuleReadySecondary:
		return "R1/ready-secondary"
	case RuleSendPrimary:
		return "R2/send-primary"
	case RuleRecvSecondary:
		return "R3/recv-secondary"
	case RuleFixG:
		return "R4/fix-with-G"
	case RuleFixNoG:
		return "R5/fix-without-G"
	}
	return fmt.Sprintf("R%d/unknown", rule)
}

// Algorithm is an SSRmin instance for a ring of n ≥ 3 processes with
// Dijkstra counter space K > n.
type Algorithm struct {
	n, k int
}

var _ statemodel.Algorithm[State] = (*Algorithm)(nil)

// New returns an SSRmin instance. It panics unless n ≥ 3 and K > n, the
// constants required by Algorithm 3.
func New(n, k int) *Algorithm {
	if n < 3 {
		panic(fmt.Sprintf("core: SSRmin requires n ≥ 3, got %d", n))
	}
	if k <= n {
		panic(fmt.Sprintf("core: SSRmin requires K > n, got K=%d n=%d", k, n))
	}
	return &Algorithm{n: n, k: k}
}

// Name implements statemodel.Algorithm.
func (a *Algorithm) Name() string { return fmt.Sprintf("ssrmin(n=%d,K=%d)", a.n, a.k) }

// UniformViews implements statemodel.PositionUniform: every guard and
// command of Algorithm 3 reads the position only through Bottom() (via the
// embedded Dijkstra guard), so the model checker may compile SSRmin into
// per-class transition tables.
func (a *Algorithm) UniformViews() {}

// N implements statemodel.Algorithm.
func (a *Algorithm) N() int { return a.n }

// K returns the Dijkstra counter space size.
func (a *Algorithm) K() int { return a.k }

// Rules implements statemodel.Algorithm.
func (a *Algorithm) Rules() int { return 5 }

// dview projects an SSRmin view onto the embedded Dijkstra instance.
func dview(v statemodel.View[State]) statemodel.View[dijkstra.State] {
	return statemodel.View[dijkstra.State]{
		I:    v.I,
		N:    v.N,
		Self: dijkstra.State{X: v.Self.X},
		Pred: dijkstra.State{X: v.Pred.X},
		Succ: dijkstra.State{X: v.Succ.X},
	}
}

// G evaluates the Dijkstra guard G_i — the primary-token condition — on v.
//
//rulecheck:guard ssrmin primary
func G(v statemodel.View[State]) bool { return dijkstra.GuardX(v.I, v.Self.X, v.Pred.X) }

// EnabledRule implements statemodel.Algorithm: it returns the smallest rule
// of Algorithm 3 whose guard holds, or 0.
//
//rulecheck:relation ssrmin
func (a *Algorithm) EnabledRule(v statemodel.View[State]) int {
	g := G(v)
	sR, sT := v.Self.Flags()
	pR, pT := v.Pred.Flags()
	nR, nT := v.Succ.Flags()

	if g {
		// Rule 1: self ∈ {⟨0.0⟩, ⟨0.1⟩, ⟨1.1⟩}.
		if (!sR && !sT) || (!sR && sT) || (sR && sT) {
			return RuleReadySecondary
		}
		// Rule 2: self = ⟨1.0⟩ ∧ succ = ⟨0.1⟩.
		if sR && !sT && !nR && nT {
			return RuleSendPrimary
		}
		// Rule 4: triple ≠ ⟨0.0, 1.0, 0.0⟩. Reaching here means
		// self = ⟨1.0⟩, so the exception is pred = ⟨0.0⟩ ∧ succ = ⟨0.0⟩.
		if !(!pR && !pT && !nR && !nT) {
			return RuleFixG
		}
		return 0
	}

	// ¬G_i below.
	// Rule 3: pred = ⟨1.0⟩ ∧ self ∈ {⟨0.0⟩, ⟨1.0⟩, ⟨1.1⟩}.
	if pR && !pT {
		if (!sR && !sT) || (sR && !sT) || (sR && sT) {
			return RuleRecvSecondary
		}
	}
	// Rule 5: triple ≠ ⟨1.0, 0.1, ?.?⟩ ∧ self ≠ ⟨0.0⟩.
	if !sR && !sT {
		return 0
	}
	if pR && !pT && !sR && sT {
		return 0
	}
	return RuleFixNoG
}

// Apply implements statemodel.Algorithm.
//
//rulecheck:relation ssrmin
func (a *Algorithm) Apply(v statemodel.View[State], rule int) State {
	next := v.Self
	switch rule {
	case RuleReadySecondary:
		next.RTS, next.TRA = true, false
	case RuleSendPrimary:
		next.RTS, next.TRA = false, false
		next.X = dijkstra.Command(dview(v), a.k).X
	case RuleRecvSecondary:
		next.RTS, next.TRA = false, true
	case RuleFixG:
		next.RTS, next.TRA = false, false
		next.X = dijkstra.Command(dview(v), a.k).X
	case RuleFixNoG:
		next.RTS, next.TRA = false, false
	default:
		panic(fmt.Sprintf("core: unknown rule %d", rule))
	}
	return next
}

// HasPrimary reports whether the process with view v holds the primary
// token: the condition is G_i (Algorithm 3, line 37).
//
//rulecheck:guard ssrmin primary
func HasPrimary(v statemodel.View[State]) bool { return G(v) }

// HasSecondary reports whether the process with view v holds the secondary
// token (Algorithm 3, lines 38–40):
//
//	tra_i = 1  ∨  (rts_i = 1 ∧ rts_{i+1} = 0 ∧ tra_{i+1} = 0)
//
// The second disjunct is what makes the algorithm model gap tolerant: the
// secondary token does not vanish while the successor has not yet
// acknowledged it, even when local states are observed through stale
// caches in the message-passing model (Section 5).
func HasSecondary(v statemodel.View[State]) bool {
	if v.Self.TRA {
		return true
	}
	return v.Self.RTS && !v.Succ.RTS && !v.Succ.TRA
}

// HasToken reports whether the process holds the primary or the secondary
// token — the privilege of the mutual inclusion problem.
func HasToken(v statemodel.View[State]) bool { return HasPrimary(v) || HasSecondary(v) }

// PrimaryHolders returns the indices of processes holding the primary
// token in c.
func (a *Algorithm) PrimaryHolders(c statemodel.Config[State]) []int {
	var out []int
	for i := range c {
		if HasPrimary(c.View(i)) {
			out = append(out, i)
		}
	}
	return out
}

// SecondaryHolders returns the indices of processes holding the secondary
// token in c.
func (a *Algorithm) SecondaryHolders(c statemodel.Config[State]) []int {
	var out []int
	for i := range c {
		if HasSecondary(c.View(i)) {
			out = append(out, i)
		}
	}
	return out
}

// TokenHolders returns the indices of privileged processes (primary or
// secondary token) in c.
func (a *Algorithm) TokenHolders(c statemodel.Config[State]) []int {
	var out []int
	for i := range c {
		if HasToken(c.View(i)) {
			out = append(out, i)
		}
	}
	return out
}

// Legitimate reports whether c is legitimate per Definition 1. The
// definition enumerates, for some x, the forms
//
//	(x.0.1, x.0.0, …)                              P_0 holds both tokens
//	(x.1.0, x.0.0, …)                              P_0 holds both tokens
//	(x.1.0, x.0.1, x.0.0, …)                       P at 0, S at 1
//	(x+1.0.0, …, x+1.0.0, x.0.1, x.0.0, …)         P_i holds both
//	(x+1.0.0, …, x+1.0.0, x.1.0, x.0.0, …)         P_i holds both
//	(x+1.0.0, …, x.1.0, x.0.1, x.0.0, …)           P at i, S at i+1 (mod n)
//
// Structurally: the x-vector is a legitimate Dijkstra configuration with
// unique token holder h, and the handshake bits are all ⟨0.0⟩ except that
// either h has ⟨0.1⟩ or ⟨1.0⟩, or h has ⟨1.0⟩ and its successor has ⟨0.1⟩.
func (a *Algorithm) Legitimate(c statemodel.Config[State]) bool {
	if len(c) != a.n {
		return false
	}
	h := a.dijkstraHolder(c)
	if h < 0 {
		return false
	}
	succ := (h + 1) % a.n
	// Classify the handshake bits of h and succ; everybody else must be
	// ⟨0.0⟩.
	for i, s := range c {
		if i == h || i == succ {
			continue
		}
		if s.RTS || s.TRA {
			return false
		}
	}
	hs, ss := c[h], c[succ]
	switch {
	case !hs.RTS && hs.TRA && !ss.RTS && !ss.TRA:
		return true // h = ⟨0.1⟩: both tokens at h.
	case hs.RTS && !hs.TRA && !ss.RTS && !ss.TRA:
		return true // h = ⟨1.0⟩: both tokens at h (announced).
	case hs.RTS && !hs.TRA && !ss.RTS && ss.TRA:
		return true // h = ⟨1.0⟩, succ = ⟨0.1⟩: P at h, S at succ.
	}
	return false
}

// dijkstraHolder returns the unique Dijkstra token holder of the x-part of
// c, or -1 if the x-part is not a legitimate Dijkstra configuration of the
// strict form of Section 2.3: (x, …, x) or (x+1, …, x+1, x, …, x). Merely
// having a single token is not enough — Definition 1 requires the step to
// be exactly one (mod K).
func (a *Algorithm) dijkstraHolder(c statemodel.Config[State]) int {
	holder, count := -1, 0
	for i := range c {
		if G(c.View(i)) {
			holder = i
			count++
		}
	}
	if count != 1 {
		return -1
	}
	if holder > 0 && c[0].X != (c[holder].X+1)%a.k {
		// Single token but the prefix is not exactly x+1: the x-part has
		// not yet collapsed to the paper's legitimate form.
		return -1
	}
	return holder
}

// InitialLegitimate returns the canonical legitimate configuration
// γ0 = (0.0.1, 0.0.0, …, 0.0.0): both tokens at the bottom process.
func (a *Algorithm) InitialLegitimate() statemodel.Config[State] {
	c := make(statemodel.Config[State], a.n)
	c[0] = State{X: 0, RTS: false, TRA: true}
	return c
}

// LegitimateConfigs enumerates every legitimate configuration (Definition
// 1): 3·n·K configurations in total — for each of the K values of x and
// each of the n positions of the primary token, the three handshake
// patterns.
func (a *Algorithm) LegitimateConfigs() []statemodel.Config[State] {
	var out []statemodel.Config[State]
	for x := 0; x < a.k; x++ {
		for h := 0; h < a.n; h++ {
			for pattern := 0; pattern < 3; pattern++ {
				c := make(statemodel.Config[State], a.n)
				// x-part: P_0 … P_{h-1} have x+1, P_h … P_{n-1} have x.
				// For h = 0 everybody has x (token at bottom).
				for i := 0; i < a.n; i++ {
					if i < h {
						c[i].X = (x + 1) % a.k
					} else {
						c[i].X = x
					}
				}
				succ := (h + 1) % a.n
				switch pattern {
				case 0: // both at h, acknowledged: h = ⟨0.1⟩
					c[h].TRA = true
				case 1: // both at h, announced: h = ⟨1.0⟩
					c[h].RTS = true
				case 2: // P at h, S at succ: h = ⟨1.0⟩, succ = ⟨0.1⟩
					c[h].RTS = true
					c[succ].TRA = true
				}
				out = append(out, c)
			}
		}
	}
	return out
}

// AllStates enumerates the 4K local states (Theorem 1: the number of
// states per process is 4K). The exhaustive model checker uses it.
func (a *Algorithm) AllStates() []State {
	out := make([]State, 0, 4*a.k)
	for x := 0; x < a.k; x++ {
		for _, rts := range []bool{false, true} {
			for _, tra := range []bool{false, true} {
				out = append(out, State{X: x, RTS: rts, TRA: tra})
			}
		}
	}
	return out
}

// ConvergenceStepBound returns a concrete O(n²) step budget within which
// SSRmin is expected to converge from any configuration under any daemon.
// Lemma 7 gives 3n² + 4 once the Dijkstra part has converged, and Lemma 8
// bounds the Dijkstra part by a constant factor of n²; the constants of
// the paper's proof (T₁ = 3(L+1)Mn² with L = 9, M = 2) give 60n² + 3n² + 4.
// The experiments use this as a hard cap and record the much smaller
// observed maxima.
func (a *Algorithm) ConvergenceStepBound() int { return 63*a.n*a.n + 4 }

// HasSecondaryNaive is the rejected secondary-token condition discussed in
// Section 3.1: "one may think that a condition tra_i = 1 will suffice".
// Under it the secondary token goes extinct whenever the two tokens are
// virtually co-located (after Rule 1 sets ⟨1.0⟩ and before Rule 3 acks):
// harmless in the state-reading model, where the primary token covers the
// census, but the secondary token itself vanishes for whole transient
// periods in the message-passing model. SSRmin's actual condition
// (HasSecondary) adds the ⟨1.?, 0.0⟩ disjunct exactly to close that hole.
// The "secondary" experiment quantifies the difference.
func HasSecondaryNaive(v statemodel.View[State]) bool { return v.Self.TRA }
