package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"ssrmin/internal/statemodel"
)

// st builds a State from the paper's x.rts.tra notation.
func st(x, rts, tra int) State {
	return State{X: x, RTS: rts != 0, TRA: tra != 0}
}

func cfg(states ...State) statemodel.Config[State] { return statemodel.Config[State](states) }

// onlyEnabled asserts exactly one process is enabled and returns its move.
func onlyEnabled(t *testing.T, a *Algorithm, c statemodel.Config[State]) statemodel.Move {
	t.Helper()
	moves := statemodel.Enabled[State](a, c)
	if len(moves) != 1 {
		t.Fatalf("want exactly one enabled process, got %v in %v", moves, c)
	}
	return moves[0]
}

func TestStateString(t *testing.T) {
	if got := st(3, 1, 0).String(); got != "3.1.0" {
		t.Errorf("String() = %q, want 3.1.0", got)
	}
	if got := st(0, 0, 1).String(); got != "0.0.1" {
		t.Errorf("String() = %q, want 0.0.1", got)
	}
}

func TestNewValidation(t *testing.T) {
	for _, tc := range []struct{ n, k int }{{2, 5}, {3, 3}, {5, 5}, {0, 1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d, %d) did not panic", tc.n, tc.k)
				}
			}()
			New(tc.n, tc.k)
		}()
	}
	if a := New(3, 4); a.N() != 3 || a.K() != 4 {
		t.Errorf("New(3,4) = n=%d K=%d", a.N(), a.K())
	}
}

// TestFigure4Execution replays, step by step, the execution example of
// Figure 4 of the paper (five processes, starting from (3.0.1, 3.0.0, …)),
// checking at every step the full configuration, the unique enabled
// process, its rule, and the token positions.
func TestFigure4Execution(t *testing.T) {
	a := New(5, 6)

	type row struct {
		cfg     []State
		proc    int // the unique enabled process
		rule    int
		primary int // primary token holder
		secA    int // secondary token holder
	}
	rows := []row{
		{[]State{st(3, 0, 1), st(3, 0, 0), st(3, 0, 0), st(3, 0, 0), st(3, 0, 0)}, 0, 1, 0, 0},
		{[]State{st(3, 1, 0), st(3, 0, 0), st(3, 0, 0), st(3, 0, 0), st(3, 0, 0)}, 1, 3, 0, 0},
		{[]State{st(3, 1, 0), st(3, 0, 1), st(3, 0, 0), st(3, 0, 0), st(3, 0, 0)}, 0, 2, 0, 1},
		{[]State{st(4, 0, 0), st(3, 0, 1), st(3, 0, 0), st(3, 0, 0), st(3, 0, 0)}, 1, 1, 1, 1},
		{[]State{st(4, 0, 0), st(3, 1, 0), st(3, 0, 0), st(3, 0, 0), st(3, 0, 0)}, 2, 3, 1, 1},
		{[]State{st(4, 0, 0), st(3, 1, 0), st(3, 0, 1), st(3, 0, 0), st(3, 0, 0)}, 1, 2, 1, 2},
		{[]State{st(4, 0, 0), st(4, 0, 0), st(3, 0, 1), st(3, 0, 0), st(3, 0, 0)}, 2, 1, 2, 2},
		{[]State{st(4, 0, 0), st(4, 0, 0), st(3, 1, 0), st(3, 0, 0), st(3, 0, 0)}, 3, 3, 2, 2},
		{[]State{st(4, 0, 0), st(4, 0, 0), st(3, 1, 0), st(3, 0, 1), st(3, 0, 0)}, 2, 2, 2, 3},
		{[]State{st(4, 0, 0), st(4, 0, 0), st(4, 0, 0), st(3, 0, 1), st(3, 0, 0)}, 3, 1, 3, 3},
		{[]State{st(4, 0, 0), st(4, 0, 0), st(4, 0, 0), st(3, 1, 0), st(3, 0, 0)}, 4, 3, 3, 3},
		{[]State{st(4, 0, 0), st(4, 0, 0), st(4, 0, 0), st(3, 1, 0), st(3, 0, 1)}, 3, 2, 3, 4},
		{[]State{st(4, 0, 0), st(4, 0, 0), st(4, 0, 0), st(4, 0, 0), st(3, 0, 1)}, 4, 1, 4, 4},
		{[]State{st(4, 0, 0), st(4, 0, 0), st(4, 0, 0), st(4, 0, 0), st(3, 1, 0)}, 0, 3, 4, 4},
		{[]State{st(4, 0, 1), st(4, 0, 0), st(4, 0, 0), st(4, 0, 0), st(3, 1, 0)}, 4, 2, 4, 0},
		{[]State{st(4, 0, 1), st(4, 0, 0), st(4, 0, 0), st(4, 0, 0), st(4, 0, 0)}, 0, 1, 0, 0},
	}

	c := cfg(rows[0].cfg...)
	for step, want := range rows {
		if !c.Equal(cfg(want.cfg...)) {
			t.Fatalf("step %d: configuration = %v, want %v", step+1, c, want.cfg)
		}
		if !a.Legitimate(c) {
			t.Fatalf("step %d: configuration %v not legitimate", step+1, c)
		}
		m := onlyEnabled(t, a, c)
		if m.Process != want.proc || m.Rule != want.rule {
			t.Fatalf("step %d: enabled move %v, want P%d/R%d", step+1, m, want.proc, want.rule)
		}
		if ph := a.PrimaryHolders(c); len(ph) != 1 || ph[0] != want.primary {
			t.Fatalf("step %d: primary holders %v, want [%d]", step+1, ph, want.primary)
		}
		if sh := a.SecondaryHolders(c); len(sh) != 1 || sh[0] != want.secA {
			t.Fatalf("step %d: secondary holders %v, want [%d]", step+1, sh, want.secA)
		}
		c = statemodel.Apply[State](a, c, []statemodel.Move{m})
	}
}

// TestClosureFullCycle runs the unique execution from γ0 for K full
// rotations (3nK steps) and checks Lemma 1 at every configuration: the
// successor of a legitimate configuration is legitimate, exactly one
// process is enabled, and after 3nK steps the execution is back at γ0.
func TestClosureFullCycle(t *testing.T) {
	for _, tc := range []struct{ n, k int }{{3, 4}, {4, 5}, {5, 6}, {7, 11}, {16, 17}} {
		a := New(tc.n, tc.k)
		c := a.InitialLegitimate()
		total := 3 * tc.n * tc.k
		for s := 0; s < total; s++ {
			if !a.Legitimate(c) {
				t.Fatalf("n=%d K=%d step %d: illegitimate %v", tc.n, tc.k, s, c)
			}
			holders := a.TokenHolders(c)
			if len(holders) < 1 || len(holders) > 2 {
				t.Fatalf("n=%d K=%d step %d: %d privileged processes", tc.n, tc.k, s, len(holders))
			}
			m := onlyEnabled(t, a, c)
			c = statemodel.Apply[State](a, c, []statemodel.Move{m})
		}
		if !c.Equal(a.InitialLegitimate()) {
			t.Errorf("n=%d K=%d: after %d steps configuration %v, want γ0", tc.n, tc.k, total, c)
		}
	}
}

// TestLegitimatePredicateMatchesEnumeration exhaustively checks, for a
// small instance, that the structural predicate Legitimate agrees with the
// explicit enumeration of Definition 1.
func TestLegitimatePredicateMatchesEnumeration(t *testing.T) {
	a := New(3, 4)
	want := make(map[string]bool)
	for _, c := range a.LegitimateConfigs() {
		want[configKey(c)] = true
	}
	if len(want) != 3*a.N()*a.K() {
		t.Fatalf("enumeration has %d configs, want %d", len(want), 3*a.N()*a.K())
	}
	count := 0
	forAllConfigs(a, func(c statemodel.Config[State]) {
		count++
		if got, exp := a.Legitimate(c), want[configKey(c)]; got != exp {
			t.Fatalf("Legitimate(%v) = %v, enumeration says %v", c, got, exp)
		}
	})
	if exp := 16 * 16 * 16; count != exp { // (4K)^n = 16^3
		t.Fatalf("visited %d configs, want %d", count, exp)
	}
}

// TestLemma2TokenCounts checks that in every legitimate configuration the
// primary and the secondary token each exist exactly once, and that the two
// holders are the same process or ring neighbors.
func TestLemma2TokenCounts(t *testing.T) {
	for _, tc := range []struct{ n, k int }{{3, 4}, {4, 6}, {6, 7}, {9, 13}} {
		a := New(tc.n, tc.k)
		for _, c := range a.LegitimateConfigs() {
			p := a.PrimaryHolders(c)
			s := a.SecondaryHolders(c)
			if len(p) != 1 {
				t.Fatalf("n=%d: %d primary holders in %v", tc.n, len(p), c)
			}
			if len(s) != 1 {
				t.Fatalf("n=%d: %d secondary holders in %v", tc.n, len(s), c)
			}
			d := (s[0] - p[0] + tc.n) % tc.n
			if d != 0 && d != 1 {
				t.Fatalf("n=%d: secondary at %d not at/next to primary at %d in %v", tc.n, s[0], p[0], c)
			}
		}
	}
}

// TestLemma4NoDeadlock exhaustively verifies, for a small instance, that
// every configuration has at least one enabled process, and spot-checks
// larger instances with random configurations.
func TestLemma4NoDeadlock(t *testing.T) {
	a := New(3, 4)
	forAllConfigs(a, func(c statemodel.Config[State]) {
		if len(statemodel.Enabled[State](a, c)) == 0 {
			t.Fatalf("deadlock at %v", c)
		}
	})

	rng := rand.New(rand.NewSource(42))
	for _, tc := range []struct{ n, k int }{{5, 6}, {8, 9}, {12, 16}, {20, 23}} {
		b := New(tc.n, tc.k)
		for trial := 0; trial < 2000; trial++ {
			c := RandomConfig(b, rng)
			if len(statemodel.Enabled[State](b, c)) == 0 {
				t.Fatalf("n=%d K=%d: deadlock at %v", tc.n, tc.k, c)
			}
		}
	}
}

// TestLemma4NoDeadlockQuick is the same invariant as a testing/quick
// property over arbitrary configurations.
func TestLemma4NoDeadlockQuick(t *testing.T) {
	a := New(6, 8)
	f := func(raw []uint16) bool {
		c := decodeConfig(a, raw)
		return len(statemodel.Enabled[State](a, c)) > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Error(err)
	}
}

// TestFigure3PossibleRules reproduces Figure 3: for each ⟨rts.tra⟩ value
// of a process, the set of rules that can possibly be enabled, over all
// neighbor states and both G values.
func TestFigure3PossibleRules(t *testing.T) {
	a := New(3, 4)
	want := map[[2]bool]map[int]bool{
		{false, false}: {RuleReadySecondary: true, RuleRecvSecondary: true},
		{false, true}:  {RuleReadySecondary: true, RuleFixNoG: true},
		{true, false}:  {RuleSendPrimary: true, RuleFixG: true, RuleRecvSecondary: true, RuleFixNoG: true},
		{true, true}:   {RuleReadySecondary: true, RuleRecvSecondary: true, RuleFixNoG: true},
	}
	got := make(map[[2]bool]map[int]bool)
	for _, self := range a.AllStates() {
		for _, pred := range a.AllStates() {
			for _, succ := range a.AllStates() {
				for _, i := range []int{0, 1} { // bottom and non-bottom
					v := statemodel.View[State]{I: i, N: 3, Self: self, Pred: pred, Succ: succ}
					r := a.EnabledRule(v)
					if r == 0 {
						continue
					}
					key := [2]bool{self.RTS, self.TRA}
					if got[key] == nil {
						got[key] = make(map[int]bool)
					}
					got[key][r] = true
				}
			}
		}
	}
	for key, rules := range want {
		if len(got[key]) != len(rules) {
			t.Errorf("⟨%d.%d⟩: possible rules %v, want %v", bit(key[0]), bit(key[1]), setOf(got[key]), setOf(rules))
			continue
		}
		for r := range rules {
			if !got[key][r] {
				t.Errorf("⟨%d.%d⟩: rule %d missing (got %v)", bit(key[0]), bit(key[1]), r, setOf(got[key]))
			}
		}
	}
}

// TestRulesExclusive verifies the priority encoding: no view can make
// EnabledRule report a rule whose guard conflicts with a smaller rule —
// i.e. the function is deterministic and total, and Apply round-trips for
// every enabled view.
func TestRulesExclusive(t *testing.T) {
	a := New(3, 4)
	for _, self := range a.AllStates() {
		for _, pred := range a.AllStates() {
			for _, succ := range a.AllStates() {
				for _, i := range []int{0, 1, 2} {
					v := statemodel.View[State]{I: i, N: 3, Self: self, Pred: pred, Succ: succ}
					r := a.EnabledRule(v)
					if r < 0 || r > 5 {
						t.Fatalf("EnabledRule(%v) = %d out of range", v, r)
					}
					if r != 0 {
						next := a.Apply(v, r)
						if next.X < 0 || next.X >= a.K() {
							t.Fatalf("Apply(%v, %d) = %v: X out of range", v, r, next)
						}
					}
				}
			}
		}
	}
}

// TestLemma5QuietExecutionBound checks Lemma 5: any execution that never
// executes Rule 2 or Rule 4 has length at most 3n. A greedy daemon runs
// all enabled {1,3,5}-moves each step and stops when only {2,4}-moves
// remain.
func TestLemma5QuietExecutionBound(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, tc := range []struct{ n, k int }{{3, 4}, {5, 6}, {8, 9}, {13, 17}} {
		a := New(tc.n, tc.k)
		for trial := 0; trial < 500; trial++ {
			c := RandomConfig(a, rng)
			steps := 0
			for {
				var quiet []statemodel.Move
				for _, m := range statemodel.Enabled[State](a, c) {
					if m.Rule != RuleSendPrimary && m.Rule != RuleFixG {
						quiet = append(quiet, m)
					}
				}
				if len(quiet) == 0 {
					break
				}
				c = statemodel.Apply[State](a, c, quiet)
				steps++
				if steps > 3*tc.n {
					t.Fatalf("n=%d: quiet execution exceeded 3n=%d steps", tc.n, 3*tc.n)
				}
			}
		}
	}
}

// TestSecondaryTokenNeverExtinct spot-checks the design point of Section
// 3.1: with the chosen secondary-token condition, the secondary token
// exists in every legitimate configuration, including when both tokens sit
// on one process (where the naive condition tra=1 would lose it after
// Rule 1).
func TestSecondaryTokenNeverExtinct(t *testing.T) {
	a := New(5, 6)
	for _, c := range a.LegitimateConfigs() {
		if len(a.SecondaryHolders(c)) != 1 {
			t.Fatalf("secondary token extinct or duplicated in %v", c)
		}
	}
}

// forAllConfigs enumerates the full configuration space of a.
func forAllConfigs(a *Algorithm, visit func(statemodel.Config[State])) {
	states := a.AllStates()
	c := make(statemodel.Config[State], a.N())
	var rec func(i int)
	rec = func(i int) {
		if i == a.N() {
			visit(c)
			return
		}
		for _, s := range states {
			c[i] = s
			rec(i + 1)
		}
	}
	rec(0)
}

func configKey(c statemodel.Config[State]) string {
	out := ""
	for _, s := range c {
		out += s.String() + ","
	}
	return out
}

// RandomConfig returns a uniformly random configuration of a.
func RandomConfig(a *Algorithm, rng *rand.Rand) statemodel.Config[State] {
	c := make(statemodel.Config[State], a.N())
	for i := range c {
		c[i] = State{X: rng.Intn(a.K()), RTS: rng.Intn(2) == 1, TRA: rng.Intn(2) == 1}
	}
	return c
}

// decodeConfig maps arbitrary fuzz bytes onto a configuration.
func decodeConfig(a *Algorithm, raw []uint16) statemodel.Config[State] {
	c := make(statemodel.Config[State], a.N())
	for i := range c {
		var w uint16
		if i < len(raw) {
			w = raw[i]
		}
		c[i] = State{X: int(w) % a.K(), RTS: w&0x100 != 0, TRA: w&0x200 != 0}
	}
	return c
}

func setOf(m map[int]bool) []int {
	var out []int
	for r := 1; r <= 5; r++ {
		if m[r] {
			out = append(out, r)
		}
	}
	return out
}

// TestNaiveSecondaryExtinctInStateReading reproduces the Section 3.1
// discussion: with the naive condition (tra only), the secondary token is
// extinct in exactly the legitimate configurations where the holder has
// announced it (⟨1.0⟩) and the successor has not yet acknowledged — one of
// the three legitimate patterns — while the designed condition always
// counts exactly one secondary token.
func TestNaiveSecondaryExtinctInStateReading(t *testing.T) {
	a := New(5, 6)
	extinct := 0
	for _, c := range a.LegitimateConfigs() {
		naive, designed := 0, 0
		for i := range c {
			v := c.View(i)
			if HasSecondaryNaive(v) {
				naive++
			}
			if HasSecondary(v) {
				designed++
			}
		}
		if designed != 1 {
			t.Fatalf("designed condition counts %d secondaries in %v", designed, c)
		}
		if naive == 0 {
			extinct++
		}
		if naive > 1 {
			t.Fatalf("naive condition counts %d secondaries in %v", naive, c)
		}
	}
	// Pattern 1 of the three legitimate patterns (holder = ⟨1.0⟩, succ not
	// yet acked) has no tra bit anywhere: exactly 1/3 of Λ.
	if want := len(a.LegitimateConfigs()) / 3; extinct != want {
		t.Fatalf("naive secondary extinct in %d configs, want %d", extinct, want)
	}
}

// TestClosureProofPhases re-derives the three-phase cycle of the Lemma 1
// proof for arbitrary n: from γ0 = (x.0.1, x.0.0, …), the execution is
// exactly γ(3i) --R1--> γ(3i+1) --R3--> γ(3i+2) --R2--> γ(3i+3), with the
// unique enabled process alternating P_i, P_{i+1}, P_i.
func TestClosureProofPhases(t *testing.T) {
	for _, n := range []int{3, 5, 8} {
		a := New(n, n+1)
		c := a.InitialLegitimate()
		for i := 0; i < n; i++ { // one full rotation
			holder := i
			succ := (i + 1) % n
			for phase, want := range []struct{ proc, rule int }{
				{holder, RuleReadySecondary},
				{succ, RuleRecvSecondary},
				{holder, RuleSendPrimary},
			} {
				m := onlyEnabled(t, a, c)
				if m.Process != want.proc || m.Rule != want.rule {
					t.Fatalf("n=%d pos=%d phase=%d: move %v, want P%d/R%d",
						n, i, phase, m, want.proc, want.rule)
				}
				c = statemodel.Apply[State](a, c, []statemodel.Move{m})
			}
		}
		// After one rotation, back at P0 with x incremented.
		if !a.Legitimate(c) || c[0].X != 1 || !c[0].TRA {
			t.Fatalf("n=%d: after a rotation got %v", n, c)
		}
	}
}

// TestLemma6GeneralProperties checks the three "general properties of
// rules" stated in the proof of Lemma 6 over arbitrary random executions:
// (1) executing Rule 2/4 at P_i yields ⟨0.0⟩ there and makes G_{i+1} true,
// (2) no rule yields ⟨1.1⟩, (3) only Rule 1 yields ⟨1.0⟩ and only under G.
func TestLemma6GeneralProperties(t *testing.T) {
	a := New(6, 8)
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 200; trial++ {
		c := RandomConfig(a, rng)
		for step := 0; step < 60; step++ {
			moves := statemodel.Enabled[State](a, c)
			if len(moves) == 0 {
				t.Fatal("deadlock")
			}
			m := moves[rng.Intn(len(moves))]
			gBefore := G(c.View(m.Process))
			next := statemodel.Apply[State](a, c, []statemodel.Move{m})
			s := next[m.Process]
			switch m.Rule {
			case RuleSendPrimary, RuleFixG:
				if s.RTS || s.TRA {
					t.Fatalf("rule %d left ⟨%d.%d⟩", m.Rule, bit(s.RTS), bit(s.TRA))
				}
				// "G moves to the successor" holds once the Dijkstra layer
				// has converged to a single token (the Lemma 6 setting) —
				// not from arbitrary garbage, where the copy may cancel an
				// existing boundary instead.
				if len(a.PrimaryHolders(c)) == 1 {
					succ := (m.Process + 1) % a.N()
					if !G(next.View(succ)) {
						t.Fatalf("rule %d at P%d did not raise G at successor", m.Rule, m.Process)
					}
				}
			case RuleReadySecondary:
				if !gBefore {
					t.Fatal("Rule 1 fired without G")
				}
				if !s.RTS || s.TRA {
					t.Fatalf("Rule 1 produced ⟨%d.%d⟩", bit(s.RTS), bit(s.TRA))
				}
			}
			if s.RTS && s.TRA {
				t.Fatalf("rule %d produced ⟨1.1⟩", m.Rule)
			}
			c = next
		}
	}
}
