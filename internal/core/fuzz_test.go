package core

import (
	"testing"

	"ssrmin/internal/statemodel"
)

// FuzzEnabledRule fuzzes the rule-selection and command logic over
// arbitrary views, checking the structural invariants that every rule of
// Algorithm 3 must preserve: rule numbers in range, X stays in [0, K),
// no rule produces ⟨1.1⟩, only Rule 1 produces ⟨1.0⟩, and rules 2/4 are
// the only ones that change X.
func FuzzEnabledRule(f *testing.F) {
	f.Add(uint8(0), uint8(0), uint8(0), false)
	f.Add(uint8(3), uint8(17), uint8(42), true)
	f.Add(uint8(255), uint8(1), uint8(128), false)
	a := New(5, 7)
	decode := func(b uint8) State {
		return State{X: int(b>>2) % a.K(), RTS: b&1 != 0, TRA: b&2 != 0}
	}
	f.Fuzz(func(t *testing.T, selfB, predB, succB uint8, bottom bool) {
		i := 1
		if bottom {
			i = 0
		}
		v := statemodel.View[State]{
			I: i, N: a.N(),
			Self: decode(selfB), Pred: decode(predB), Succ: decode(succB),
		}
		rule := a.EnabledRule(v)
		if rule < 0 || rule > 5 {
			t.Fatalf("rule %d out of range for %+v", rule, v)
		}
		if rule == 0 {
			return
		}
		next := a.Apply(v, rule)
		if next.X < 0 || next.X >= a.K() {
			t.Fatalf("rule %d produced X=%d", rule, next.X)
		}
		if next.RTS && next.TRA {
			t.Fatalf("rule %d produced ⟨1.1⟩ from %+v", rule, v)
		}
		if next.RTS && !next.TRA && rule != RuleReadySecondary {
			t.Fatalf("rule %d produced ⟨1.0⟩", rule)
		}
		if next.X != v.Self.X && rule != RuleSendPrimary && rule != RuleFixG {
			t.Fatalf("rule %d changed X", rule)
		}
	})
}
