// Package parsweep runs embarrassingly parallel parameter sweeps — the
// Monte Carlo convergence experiments and benchmark grids — across a
// bounded worker pool while keeping results deterministic: every trial
// receives its own index-derived seed, and results come back in input
// order regardless of scheduling.
package parsweep

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// Map runs f(i) for i in [0, n) on up to workers goroutines and returns
// the results in index order. workers ≤ 0 selects GOMAXPROCS. Panics in f
// are propagated to the caller (first one wins).
func Map[R any](n, workers int, f func(i int) R) []R {
	if n < 0 {
		panic("parsweep: negative trial count")
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	out := make([]R, n)
	if n == 0 {
		return out
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			out[i] = f(i)
		}
		return out
	}

	if pv := runWorkers(n, workers, func(w, i int) { out[i] = f(i) }); pv != nil {
		panic(pv)
	}
	return out
}

// runWorkers executes f(w, i) for every i in [0, n) across `workers`
// goroutines; w identifies the executing worker (0 ≤ w < workers), which
// is what lets MapWith pin one pooled resource per worker. The work
// distribution is the lock-free atomic index grab: one Add per trial.
// Panics in f are recovered and returned (first one wins) so callers can
// release worker resources before re-raising.
func runWorkers(n, workers int, f func(w, i int)) any {
	var (
		wg       sync.WaitGroup
		next     atomic.Int64 // lock-free work-index grab: one Add per item
		panicVal any
		panicMu  sync.Mutex
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				func() {
					defer func() {
						if r := recover(); r != nil {
							panicMu.Lock()
							if panicVal == nil {
								panicVal = fmt.Sprintf("parsweep: trial %d panicked: %v", i, r)
							}
							panicMu.Unlock()
						}
					}()
					f(w, i)
				}()
			}
		}(w)
	}
	wg.Wait()
	return panicVal
}

// Sum runs f(i) in parallel and folds the float64 results.
func Sum(n, workers int, f func(i int) float64) float64 {
	total := 0.0
	for _, v := range Map(n, workers, f) {
		total += v
	}
	return total
}

// Grid is a two-axis sweep: for every (row, col) pair it computes one
// cell, in parallel, and returns the row-major matrix.
func Grid[R any](rows, cols, workers int, f func(r, c int) R) [][]R {
	flat := Map(rows*cols, workers, func(i int) R { return f(i/cols, i%cols) })
	out := make([][]R, rows)
	for r := 0; r < rows; r++ {
		out[r] = flat[r*cols : (r+1)*cols]
	}
	return out
}
