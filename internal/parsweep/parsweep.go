// Package parsweep runs embarrassingly parallel parameter sweeps — the
// Monte Carlo convergence experiments and benchmark grids — across a
// bounded worker pool while keeping results deterministic: every trial
// receives its own index-derived seed, and results come back in input
// order regardless of scheduling.
package parsweep

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// Map runs f(i) for i in [0, n) on up to workers goroutines and returns
// the results in index order. workers ≤ 0 selects GOMAXPROCS. Panics in f
// are propagated to the caller (first one wins).
func Map[R any](n, workers int, f func(i int) R) []R {
	if n < 0 {
		panic("parsweep: negative trial count")
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	out := make([]R, n)
	if n == 0 {
		return out
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			out[i] = f(i)
		}
		return out
	}

	var (
		wg       sync.WaitGroup
		next     atomic.Int64 // lock-free work-index grab: one Add per item
		panicVal any
		panicMu  sync.Mutex
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				func() {
					defer func() {
						if r := recover(); r != nil {
							panicMu.Lock()
							if panicVal == nil {
								panicVal = fmt.Sprintf("parsweep: trial %d panicked: %v", i, r)
							}
							panicMu.Unlock()
						}
					}()
					out[i] = f(i)
				}()
			}
		}()
	}
	wg.Wait()
	if panicVal != nil {
		panic(panicVal)
	}
	return out
}

// Sum runs f(i) in parallel and folds the float64 results.
func Sum(n, workers int, f func(i int) float64) float64 {
	total := 0.0
	for _, v := range Map(n, workers, f) {
		total += v
	}
	return total
}

// Grid is a two-axis sweep: for every (row, col) pair it computes one
// cell, in parallel, and returns the row-major matrix.
func Grid[R any](rows, cols, workers int, f func(r, c int) R) [][]R {
	flat := Map(rows*cols, workers, func(i int) R { return f(i/cols, i%cols) })
	out := make([][]R, rows)
	for r := 0; r < rows; r++ {
		out[r] = flat[r*cols : (r+1)*cols]
	}
	return out
}
