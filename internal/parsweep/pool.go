// Worker-scoped resource reuse for sweeps. A sweep over thousands of
// seeded trials would otherwise grow a fresh event arena (and every
// other per-trial scratch structure) per trial; MapWith instead hands
// each worker goroutine one resource for its whole lifetime, so a trial
// pays a Reset instead of an allocation — the reset-not-reallocate
// discipline that keeps an N-seed soak bounded by cores, not by the
// garbage collector.
package parsweep

import (
	"runtime"
	"sync"
)

// Pool hands out worker-scoped resources of type T. New builds a fresh
// resource the first time a worker asks; Put returns one for reuse by a
// later sweep. A Pool is safe for concurrent use. Unlike sync.Pool it
// never drops resources under GC pressure — a sweep's arenas are meant
// to live exactly as long as the process keeps sweeping.
type Pool[T any] struct {
	// New builds a resource when the pool is empty. It must not be nil
	// by the time Get is called.
	New func() T

	mu   sync.Mutex
	idle []T
}

// NewPool returns a pool building resources with newFn.
func NewPool[T any](newFn func() T) *Pool[T] {
	return &Pool[T]{New: newFn}
}

// Get returns an idle resource or builds a new one.
func (p *Pool[T]) Get() T {
	p.mu.Lock()
	if n := len(p.idle); n > 0 {
		t := p.idle[n-1]
		var zero T
		p.idle[n-1] = zero
		p.idle = p.idle[:n-1]
		p.mu.Unlock()
		return t
	}
	p.mu.Unlock()
	return p.New()
}

// Put returns a resource to the pool for reuse.
func (p *Pool[T]) Put(t T) {
	p.mu.Lock()
	p.idle = append(p.idle, t)
	p.mu.Unlock()
}

// Idle reports how many resources sit unused in the pool.
func (p *Pool[T]) Idle() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.idle)
}

// MapWith is Map with a worker-scoped resource: each worker goroutine
// draws one T from pool at start, threads it through every trial it
// executes (f receives the trial index and the worker's resource), and
// returns it to the pool when the sweep ends. Consecutive sweeps over
// the same pool therefore reuse the same resources. Results come back
// in index order and seeds stay per-trial, so determinism is unaffected
// by which worker (and which resource) runs which trial — resources
// must make themselves trial-independent (e.g. arenas are Reset by
// UseArena). Panics in f propagate to the caller; the panicking
// worker's resource is still returned to the pool. workers ≤ 0 selects
// GOMAXPROCS.
func MapWith[T, R any](n, workers int, pool *Pool[T], f func(i int, res T) R) []R {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		// Serial path: one resource for the whole sweep, still recycled.
		if n > 0 {
			res := pool.Get()
			defer pool.Put(res)
			return Map(n, 1, func(i int) R { return f(i, res) })
		}
		return Map(n, 1, func(i int) R { var zero R; return zero })
	}
	// Per-worker resource acquisition rides on Map's scheduling: the
	// worker grabs its T lazily on its first trial, keyed by goroutine
	// via a local closure — but Map hides its goroutines, so instead run
	// the workers here with the same lock-free index grab.
	type slot struct {
		res T
		ok  bool
	}
	slots := make([]slot, workers)
	out := make([]R, n)
	pv := runWorkers(n, workers, func(w, i int) {
		s := &slots[w]
		if !s.ok {
			s.res = pool.Get()
			s.ok = true
		}
		out[i] = f(i, s.res)
	})
	for w := range slots {
		if slots[w].ok {
			pool.Put(slots[w].res)
		}
	}
	if pv != nil {
		panic(pv)
	}
	return out
}
