package parsweep

import (
	"strings"
	"sync/atomic"
	"testing"
)

// scratch is a stand-in for a per-worker arena: it records which trials
// touched it and fails loudly if two trials hold it concurrently.
type scratch struct {
	id     int
	trials []int
	inUse  atomic.Bool
}

func TestMapWithResultsInOrder(t *testing.T) {
	var built atomic.Int64
	pool := NewPool(func() *scratch {
		return &scratch{id: int(built.Add(1))}
	})
	out := MapWith(100, 8, pool, func(i int, s *scratch) int {
		if !s.inUse.CompareAndSwap(false, true) {
			t.Error("resource shared by two concurrent trials")
		}
		s.trials = append(s.trials, i)
		s.inUse.Store(false)
		return i * i
	})
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d", i, v)
		}
	}
	if b := built.Load(); b > 8 {
		t.Fatalf("built %d resources for 8 workers", b)
	}
	if pool.Idle() != int(built.Load()) {
		t.Fatalf("%d resources built but %d returned", built.Load(), pool.Idle())
	}
}

func TestMapWithReusesAcrossSweeps(t *testing.T) {
	var built atomic.Int64
	pool := NewPool(func() *scratch { return &scratch{id: int(built.Add(1))} })
	for sweep := 0; sweep < 5; sweep++ {
		MapWith(50, 4, pool, func(i int, s *scratch) int { return i })
	}
	if b := built.Load(); b > 4 {
		t.Fatalf("5 consecutive 4-worker sweeps built %d resources, want ≤ 4", b)
	}
}

func TestMapWithSerialPath(t *testing.T) {
	var built atomic.Int64
	pool := NewPool(func() *scratch { return &scratch{id: int(built.Add(1))} })
	out := MapWith(10, 1, pool, func(i int, s *scratch) int {
		s.trials = append(s.trials, i)
		return i
	})
	if len(out) != 10 || built.Load() != 1 {
		t.Fatalf("serial sweep: %d results, %d resources", len(out), built.Load())
	}
	if pool.Idle() != 1 {
		t.Fatalf("serial sweep leaked its resource (idle=%d)", pool.Idle())
	}
}

func TestMapWithZeroTrials(t *testing.T) {
	pool := NewPool(func() *scratch { return &scratch{} })
	out := MapWith(0, 4, pool, func(i int, s *scratch) int { return i })
	if len(out) != 0 {
		t.Fatalf("len = %d", len(out))
	}
	if pool.Idle() != 0 {
		t.Fatal("zero-trial sweep acquired a resource")
	}
}

func TestMapWithPanicPropagatesAndReturnsResources(t *testing.T) {
	var built atomic.Int64
	pool := NewPool(func() *scratch { return &scratch{id: int(built.Add(1))} })
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("panic not propagated")
		}
		if !strings.Contains(r.(string), "trial 7 panicked") {
			t.Fatalf("panic = %v", r)
		}
		if pool.Idle() != int(built.Load()) {
			t.Fatalf("panicking sweep leaked resources: built %d, idle %d",
				built.Load(), pool.Idle())
		}
	}()
	MapWith(20, 4, pool, func(i int, s *scratch) int {
		if i == 7 {
			panic("boom")
		}
		return i
	})
}

// TestPoolConcurrentGetPut hammers the pool from many goroutines — the
// -race entry for the worker pool (make test-race-core covers this
// package).
func TestPoolConcurrentGetPut(t *testing.T) {
	pool := NewPool(func() *scratch { return &scratch{} })
	done := make(chan struct{})
	for g := 0; g < 8; g++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 1000; i++ {
				s := pool.Get()
				if !s.inUse.CompareAndSwap(false, true) {
					t.Error("pool handed one resource to two holders")
				}
				s.inUse.Store(false)
				pool.Put(s)
			}
		}()
	}
	for g := 0; g < 8; g++ {
		<-done
	}
}
