package parsweep

import (
	"math/rand"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestMapOrderAndCompleteness(t *testing.T) {
	got := Map(100, 8, func(i int) int { return i * i })
	for i, v := range got {
		if v != i*i {
			t.Fatalf("out[%d] = %d", i, v)
		}
	}
}

func TestMapSequentialFallback(t *testing.T) {
	got := Map(5, 1, func(i int) int { return i })
	if len(got) != 5 || got[4] != 4 {
		t.Fatalf("got %v", got)
	}
}

func TestMapZeroAndDefaults(t *testing.T) {
	if got := Map(0, 4, func(i int) int { return i }); len(got) != 0 {
		t.Fatalf("n=0 gave %v", got)
	}
	// workers <= 0 uses GOMAXPROCS; just verify it completes.
	got := Map(10, 0, func(i int) int { return i })
	if len(got) != 10 {
		t.Fatal("default workers failed")
	}
}

func TestMapConcurrencyBounded(t *testing.T) {
	var active, peak atomic.Int64
	Map(64, 4, func(i int) int {
		cur := active.Add(1)
		for {
			p := peak.Load()
			if cur <= p || peak.CompareAndSwap(p, cur) {
				break
			}
		}
		defer active.Add(-1)
		// Busy-yield to encourage overlap.
		for j := 0; j < 100; j++ {
			runtime.Gosched()
		}
		return i
	})
	if peak.Load() > 4 {
		t.Fatalf("peak concurrency %d > 4", peak.Load())
	}
	if peak.Load() < 2 {
		t.Logf("note: peak concurrency only %d (scheduler-dependent)", peak.Load())
	}
}

func TestMapDeterministicWithSeeds(t *testing.T) {
	run := func() []float64 {
		return Map(50, 8, func(i int) float64 {
			rng := rand.New(rand.NewSource(int64(i)))
			return rng.Float64()
		})
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("parallel sweep not deterministic under per-index seeding")
		}
	}
}

func TestMapPanicPropagates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("panic not propagated")
		}
	}()
	Map(10, 4, func(i int) int {
		if i == 7 {
			panic("boom")
		}
		return i
	})
}

func TestMapNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative n accepted")
		}
	}()
	Map(-1, 1, func(i int) int { return i })
}

func TestSum(t *testing.T) {
	if got := Sum(10, 4, func(i int) float64 { return float64(i) }); got != 45 {
		t.Fatalf("Sum = %v", got)
	}
}

func TestGrid(t *testing.T) {
	g := Grid(3, 4, 4, func(r, c int) int { return 10*r + c })
	if len(g) != 3 || len(g[0]) != 4 {
		t.Fatalf("shape %dx%d", len(g), len(g[0]))
	}
	for r := 0; r < 3; r++ {
		for c := 0; c < 4; c++ {
			if g[r][c] != 10*r+c {
				t.Fatalf("g[%d][%d] = %d", r, c, g[r][c])
			}
		}
	}
}
