package statemodel

import (
	"testing"
)

// parity is a toy algorithm for framework tests: state is a bit; a process
// is enabled by rule 1 when its bit differs from its predecessor's and
// copies it, and the bottom process is enabled by rule 2 when equal and
// flips. (It is Dijkstra's ring with K = 2 — not self-stabilizing, but a
// fine exercise wheel.)
type parity struct{ n int }

func (p parity) Name() string { return "parity" }
func (p parity) N() int       { return p.n }
func (p parity) Rules() int   { return 2 }

func (p parity) EnabledRule(v View[bool]) int {
	if v.Bottom() {
		if v.Self == v.Pred {
			return 2
		}
		return 0
	}
	if v.Self != v.Pred {
		return 1
	}
	return 0
}

func (p parity) Apply(v View[bool], rule int) bool {
	switch rule {
	case 1:
		return v.Pred
	case 2:
		return !v.Pred
	}
	panic("bad rule")
}

func TestViewNeighbors(t *testing.T) {
	c := Config[bool]{true, false, true, true}
	v := c.View(0)
	if v.Pred != true || v.Succ != false || v.Self != true {
		t.Errorf("View(0) = %+v", v)
	}
	if !v.Bottom() {
		t.Error("View(0).Bottom() = false")
	}
	v = c.View(3)
	if v.Pred != true || v.Succ != true || v.Self != true || v.Bottom() {
		t.Errorf("View(3) = %+v", v)
	}
	if v.I != 3 || v.N != 4 {
		t.Errorf("View(3) identity = I%d N%d", v.I, v.N)
	}
}

func TestCloneIndependence(t *testing.T) {
	c := Config[bool]{true, false}
	d := c.Clone()
	d[0] = false
	if c[0] != true {
		t.Error("Clone shares backing storage")
	}
	if !c.Equal(Config[bool]{true, false}) {
		t.Error("Equal false negative")
	}
	if c.Equal(d) {
		t.Error("Equal false positive")
	}
	if c.Equal(Config[bool]{true}) {
		t.Error("Equal ignores length")
	}
}

func TestEnabledOrder(t *testing.T) {
	alg := parity{n: 4}
	c := Config[bool]{false, true, false, false}
	// P1: differs from P0 -> rule 1; P2: differs from P1 -> rule 1;
	// P0: equals P3 -> rule 2.
	moves := Enabled[bool](alg, c)
	want := []Move{{0, 2}, {1, 1}, {2, 1}}
	if len(moves) != len(want) {
		t.Fatalf("Enabled = %v, want %v", moves, want)
	}
	for i := range want {
		if moves[i] != want[i] {
			t.Fatalf("Enabled = %v, want %v", moves, want)
		}
	}
}

func TestApplyCompositeAtomicity(t *testing.T) {
	// Simultaneous moves must read the OLD configuration.
	alg := parity{n: 3}
	c := Config[bool]{false, true, false}
	// P1 enabled (copies old P0=false), P2 enabled (copies old P1=true).
	next := Apply[bool](alg, c, []Move{{1, 1}, {2, 1}})
	if next[1] != false || next[2] != true {
		t.Errorf("composite atomicity violated: %v", next)
	}
	// Original untouched.
	if !c.Equal(Config[bool]{false, true, false}) {
		t.Error("Apply mutated its input")
	}
}

func TestApplyRejectsBogusMove(t *testing.T) {
	alg := parity{n: 3}
	c := Config[bool]{false, false, false}
	defer func() {
		if recover() == nil {
			t.Error("Apply accepted a disabled move")
		}
	}()
	Apply[bool](alg, c, []Move{{1, 1}}) // P1 is not enabled here
}

// fixedDaemon selects a scripted subset regardless of what is enabled —
// for exercising the simulator's selection validation.
type fixedDaemon struct{ sel []Move }

func (d fixedDaemon) Name() string           { return "fixed" }
func (d fixedDaemon) Select(_ []Move) []Move { return d.sel }

type firstDaemon struct{}

func (firstDaemon) Name() string                 { return "first" }
func (firstDaemon) Select(enabled []Move) []Move { return enabled[:1] }

func TestSimulatorStepAndRun(t *testing.T) {
	alg := parity{n: 3}
	sim := NewSimulator[bool](alg, firstDaemon{}, Config[bool]{false, false, false})
	var steps []int
	sim.OnStep = func(step int, moves []Move, cfg Config[bool]) {
		steps = append(steps, step)
		if len(moves) != 1 {
			t.Errorf("step %d: %d moves", step, len(moves))
		}
	}
	moved, ok := sim.Step()
	if !ok || len(moved) != 1 || moved[0] != (Move{0, 2}) {
		t.Fatalf("Step = %v, %v", moved, ok)
	}
	if sim.Steps() != 1 {
		t.Errorf("Steps() = %d", sim.Steps())
	}
	n := sim.Run(10)
	if n != 10 {
		t.Errorf("Run = %d, want 10", n)
	}
	if len(steps) != 11 {
		t.Errorf("OnStep fired %d times, want 11", len(steps))
	}
}

func TestSimulatorRunUntil(t *testing.T) {
	alg := parity{n: 3}
	sim := NewSimulator[bool](alg, firstDaemon{}, Config[bool]{true, false, false})
	// Run until all bits equal.
	allEqual := func(c Config[bool]) bool {
		for _, b := range c {
			if b != c[0] {
				return false
			}
		}
		return true
	}
	steps, ok := sim.RunUntil(allEqual, 100)
	if !ok {
		t.Fatal("RunUntil did not reach the predicate")
	}
	if steps == 0 {
		t.Fatal("RunUntil reported zero steps from a non-satisfying start")
	}
	// Already satisfied: zero steps.
	steps, ok = sim.RunUntil(allEqual, 100)
	if steps != 0 || !ok {
		t.Errorf("RunUntil on satisfied predicate = %d, %v", steps, ok)
	}
}

func TestSimulatorValidatesDaemon(t *testing.T) {
	alg := parity{n: 3}

	cases := []struct {
		name string
		sel  []Move
	}{
		{"empty", nil},
		{"not-enabled", []Move{{1, 1}}},
		{"duplicate", []Move{{0, 2}, {0, 2}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sim := NewSimulator[bool](alg, fixedDaemon{sel: tc.sel}, Config[bool]{false, false, false})
			defer func() {
				if recover() == nil {
					t.Errorf("selection %v accepted", tc.sel)
				}
			}()
			sim.Step()
		})
	}
}

func TestSimulatorSizeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("mismatched init size accepted")
		}
	}()
	NewSimulator[bool](parity{n: 3}, firstDaemon{}, Config[bool]{false})
}

func TestMoveString(t *testing.T) {
	if got := (Move{Process: 2, Rule: 3}).String(); got != "P2/R3" {
		t.Errorf("Move.String() = %q", got)
	}
}

func TestRunUntilDeadlockStops(t *testing.T) {
	// A daemon-less deadlock: no process enabled in the all-equal parity
	// config with... parity always has an enabled process; use a frozen
	// algorithm instead.
	sim := NewSimulator[bool](frozen{}, firstDaemon{}, Config[bool]{false, false})
	steps, ok := sim.RunUntil(func(Config[bool]) bool { return false }, 10)
	if ok || steps != 0 {
		t.Fatalf("RunUntil on deadlock = %d, %v", steps, ok)
	}
	if n := sim.Run(5); n != 0 {
		t.Fatalf("Run on deadlock = %d", n)
	}
	if moves, alive := sim.Step(); alive || moves != nil {
		t.Fatal("Step on deadlock reported progress")
	}
}

// frozen is an algorithm with no enabled process ever.
type frozen struct{}

func (frozen) Name() string                   { return "frozen" }
func (frozen) N() int                         { return 2 }
func (frozen) Rules() int                     { return 1 }
func (frozen) EnabledRule(v View[bool]) int   { return 0 }
func (frozen) Apply(v View[bool], r int) bool { return v.Self }

func TestRoundCounterPrimeDirectly(t *testing.T) {
	alg := parity{n: 3}
	rc := NewRoundCounter[bool](alg)
	cfg := Config[bool]{false, true, false}
	rc.Prime(cfg)
	moves := Enabled[bool](alg, cfg)
	next := Apply[bool](alg, cfg, moves)
	rc.Observe(moves, next)
	if rc.Rounds() != 1 {
		t.Fatalf("rounds = %d after serving all enabled", rc.Rounds())
	}
}

func TestRecordAndReplay(t *testing.T) {
	alg := parity{n: 4}
	init := Config[bool]{true, false, true, false}

	rec := &RecordingDaemon{Inner: firstDaemon{}}
	sim1 := NewSimulator[bool](alg, rec, init)
	sim1.Run(25)
	final1 := sim1.Config()
	if len(rec.Schedule) != 25 {
		t.Fatalf("recorded %d selections", len(rec.Schedule))
	}

	replay := NewReplay(rec.Schedule)
	sim2 := NewSimulator[bool](alg, replay, init)
	sim2.Run(25)
	if !sim2.Config().Equal(final1) {
		t.Fatalf("replay diverged: %v vs %v", sim2.Config(), final1)
	}
	if replay.Remaining() != 0 {
		t.Fatalf("replay left %d entries", replay.Remaining())
	}
}

func TestReplayExhaustionPanics(t *testing.T) {
	alg := parity{n: 3}
	sim := NewSimulator[bool](alg, NewReplay(nil), Config[bool]{true, false, false})
	defer func() {
		if recover() == nil {
			t.Error("exhausted replay did not panic")
		}
	}()
	sim.Step()
}

func TestReplayDivergencePanics(t *testing.T) {
	alg := parity{n: 3}
	// Schedule selects P2/R1, but from this config P2 is not enabled with
	// that rule... craft: config where P1 enabled only.
	sched := Schedule{{Move{Process: 2, Rule: 2}}}
	sim := NewSimulator[bool](alg, NewReplay(sched), Config[bool]{false, true, true})
	defer func() {
		if recover() == nil {
			t.Error("diverged replay did not panic")
		}
	}()
	sim.Step()
}
