package statemodel

// Round counting — the second standard time measure for self-stabilizing
// algorithms (Altisen–Devismes–Dubois–Petit 2019, the reference the paper
// uses for Dijkstra's bound). A *round* is a minimal execution segment in
// which every process that was enabled at the segment's start either
// executes a rule or becomes disabled. Under the unfair daemon, step
// counts can overstate the cost of an execution whose steps each activate
// one process; round counts normalize for that, and convergence in O(n)
// rounds is the usual companion to an O(n²) step bound.

// RoundCounter tracks completed rounds of an execution. Feed it every
// transition via Observe; it watches the set of processes that were
// enabled when the current round began and closes the round when all of
// them have moved or been disabled.
type RoundCounter[S comparable] struct {
	alg     Algorithm[S]
	pending map[int]bool // processes still owed a move/disable this round
	rounds  int
	primed  bool
}

// NewRoundCounter creates a counter for executions of alg.
func NewRoundCounter[S comparable](alg Algorithm[S]) *RoundCounter[S] {
	return &RoundCounter[S]{alg: alg, pending: map[int]bool{}}
}

// Rounds returns the number of completed rounds so far.
func (rc *RoundCounter[S]) Rounds() int { return rc.rounds }

// Attach hooks the counter onto a simulator, composing with any existing
// OnStep hook.
func (rc *RoundCounter[S]) Attach(sim *Simulator[S]) {
	rc.prime(sim.Config())
	prev := sim.OnStep
	sim.OnStep = func(step int, moves []Move, cfg Config[S]) {
		rc.Observe(moves, cfg)
		if prev != nil {
			prev(step, moves, cfg)
		}
	}
}

// prime initializes the round's watch set from the configuration.
func (rc *RoundCounter[S]) prime(cfg Config[S]) {
	for k := range rc.pending {
		delete(rc.pending, k)
	}
	for _, m := range Enabled[S](rc.alg, cfg) {
		rc.pending[m.Process] = true
	}
	rc.primed = true
}

// Observe feeds one transition: the moves executed and the configuration
// they produced. The first call must be preceded by priming via Attach (or
// an explicit Prime).
func (rc *RoundCounter[S]) Observe(moves []Move, next Config[S]) {
	if !rc.primed {
		panic("statemodel: RoundCounter not primed")
	}
	// Processes that moved are no longer owed.
	for _, m := range moves {
		delete(rc.pending, m.Process)
	}
	// Processes that became disabled are no longer owed either.
	if len(rc.pending) > 0 {
		for p := range rc.pending {
			if rc.alg.EnabledRule(next.View(p)) == 0 {
				delete(rc.pending, p)
			}
		}
	}
	if len(rc.pending) == 0 {
		rc.rounds++
		rc.prime(next)
	}
}

// Prime resets the counter's watch set from cfg without touching the
// round count (for use without Attach).
func (rc *RoundCounter[S]) Prime(cfg Config[S]) { rc.prime(cfg) }

// ConvergenceRounds runs sim until pred holds (or maxSteps transitions)
// and returns both the step and round counts consumed.
func ConvergenceRounds[S comparable](sim *Simulator[S], pred func(Config[S]) bool, maxSteps int) (steps, rounds int, ok bool) {
	rc := NewRoundCounter[S](sim.Algorithm())
	rc.Attach(sim)
	steps, ok = sim.RunUntil(pred, maxSteps)
	return steps, rc.Rounds(), ok
}
