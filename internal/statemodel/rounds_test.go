package statemodel

import (
	"testing"
)

// Under the synchronous daemon every transition is exactly one round: all
// enabled processes move at once.
func TestRoundsSynchronousOnePerStep(t *testing.T) {
	alg := parity{n: 4}
	sim := NewSimulator[bool](alg, syncDaemon{}, Config[bool]{true, false, true, false})
	rc := NewRoundCounter[bool](alg)
	rc.Attach(sim)
	sim.Run(10)
	if rc.Rounds() != 10 {
		t.Fatalf("rounds = %d, want 10 (one per synchronous step)", rc.Rounds())
	}
}

// Under a central daemon, a round needs every initially enabled process to
// be served (or disabled): rounds ≤ steps, usually strictly.
func TestRoundsCentralFewerThanSteps(t *testing.T) {
	alg := parity{n: 6}
	sim := NewSimulator[bool](alg, firstDaemon{}, Config[bool]{true, false, true, false, true, false})
	rc := NewRoundCounter[bool](alg)
	rc.Attach(sim)
	sim.Run(60)
	if rc.Rounds() >= 60 {
		t.Fatalf("rounds = %d, want < steps under a central daemon", rc.Rounds())
	}
	if rc.Rounds() == 0 {
		t.Fatal("no round ever completed")
	}
}

// A process that becomes disabled without moving must not block the round.
func TestRoundsDisabledProcessReleasesRound(t *testing.T) {
	alg := parity{n: 3}
	// (false, true, false): P1 enabled (differs from P0), P2 enabled
	// (differs from P1), P0 enabled by rule 2 (equals P3=P2? n=3: P0's
	// pred is P2=false, self=false -> equal -> rule 2).
	sim := NewSimulator[bool](alg, firstDaemon{}, Config[bool]{false, true, false})
	rc := NewRoundCounter[bool](alg)
	rc.Attach(sim)
	// firstDaemon always picks the lowest-index enabled process; moving P0
	// (flip to true) disables nobody... run a while and just assert rounds
	// advance despite starvation-prone scheduling.
	sim.Run(30)
	if rc.Rounds() == 0 {
		t.Fatal("rounds stuck at 0")
	}
}

func TestObserveWithoutPrimePanics(t *testing.T) {
	rc := NewRoundCounter[bool](parity{n: 3})
	defer func() {
		if recover() == nil {
			t.Error("Observe before prime accepted")
		}
	}()
	rc.Observe(nil, Config[bool]{false, false, false})
}

func TestConvergenceRoundsHelper(t *testing.T) {
	alg := parity{n: 4}
	sim := NewSimulator[bool](alg, syncDaemon{}, Config[bool]{true, false, false, false})
	allEqual := func(c Config[bool]) bool {
		for _, b := range c {
			if b != c[0] {
				return false
			}
		}
		return true
	}
	steps, rounds, ok := ConvergenceRounds[bool](sim, allEqual, 100)
	if !ok {
		t.Fatal("no convergence")
	}
	if rounds > steps {
		t.Fatalf("rounds %d > steps %d", rounds, steps)
	}
}

type syncDaemon struct{}

func (syncDaemon) Name() string { return "sync" }
func (syncDaemon) Select(enabled []Move) []Move {
	out := make([]Move, len(enabled))
	copy(out, enabled)
	return out
}
