// Package statemodel implements the computational model of the paper:
// guarded-command distributed algorithms on bidirectional ring networks
// under the state-reading communication model and the composite atomicity
// execution model (Section 2.1 of Kakugawa–Kamei–Katayama, IJNC 2022).
//
// An algorithm is a set of prioritized guarded commands per process. A
// configuration is the vector of all local states. At each step a daemon
// (scheduler) selects a nonempty subset of the enabled processes; every
// selected process atomically reads its own state and the states of its two
// ring neighbors, evaluates its highest-priority enabled rule, and writes
// its new local state. All selected processes move simultaneously on the
// *old* configuration, exactly as the relation γt → γt+1 in the paper.
//
// The framework is generic over the local state type S, which must be
// comparable so that configurations can be used as map keys by the
// exhaustive model checker.
package statemodel

import (
	"fmt"

	"ssrmin/internal/obs"
)

// View is the read set of one process in the state-reading model: its own
// local state and the local states of its predecessor (P_{i-1 mod n}) and
// successor (P_{i+1 mod n}). Guards and commands may depend only on a View;
// the type system thus enforces the locality of the model.
type View[S comparable] struct {
	// I is the index of the process owning this view, in [0, N).
	I int
	// N is the ring size.
	N int
	// Self is the local state q_i.
	Self S
	// Pred is the predecessor state q_{i-1 mod n}.
	Pred S
	// Succ is the successor state q_{i+1 mod n}.
	Succ S
}

// Bottom reports whether the view belongs to the distinguished bottom
// process P_0.
func (v View[S]) Bottom() bool { return v.I == 0 }

// Algorithm describes a guarded-command algorithm on a bidirectional ring.
// Rules are numbered 1..Rules() and a smaller number has higher priority:
// EnabledRule must return the smallest enabled rule number, so a process is
// enabled by at most one rule (as in Algorithm 3 of the paper).
type Algorithm[S comparable] interface {
	// Name returns a short human-readable algorithm name.
	Name() string
	// N returns the ring size the algorithm instance is configured for.
	N() int
	// Rules returns the number of rules. Rule identifiers are 1-based.
	Rules() int
	// EnabledRule returns the highest-priority (smallest-numbered) rule
	// whose guard holds in v, or 0 if the process is not enabled.
	EnabledRule(v View[S]) int
	// Apply executes the command of the given rule and returns the new
	// local state. It must be called only with a rule returned by
	// EnabledRule for the same view.
	Apply(v View[S], rule int) S
}

// PositionUniform is the opt-in contract for transition-table compilation.
// An algorithm whose EnabledRule and Apply depend on View.I and View.N only
// through View.Bottom() — i.e. every non-bottom process runs the same code
// over its (pred, self, succ) view — may declare it by implementing the
// marker method. Exhaustive checkers then compile the guards and commands
// into two dense tables (one per position class, bottom and other) indexed
// by TripleIndex, and expand successors by pure integer arithmetic on
// encoded configuration IDs, with no View construction on the hot path.
//
// Declaring PositionUniform for an algorithm that inspects I or N beyond
// Bottom() yields a miscompiled table; internal/check's differential tests
// guard the algorithms of this repository.
type PositionUniform interface {
	// UniformViews is a marker; it must be a no-op.
	UniformViews()
}

// ViewClasses is the number of position classes a PositionUniform
// algorithm distinguishes: the bottom process (class 0) and everyone else
// (class 1).
const ViewClasses = 2

// ClassOf returns the position class of process i: 0 for the bottom
// process, 1 otherwise.
func ClassOf(i int) int {
	if i == 0 {
		return 0
	}
	return 1
}

// ClassView builds a representative View of the given position class over
// explicit neighbor states — the enumeration hook used to compile
// per-class transition tables from a PositionUniform algorithm.
func ClassView[S comparable](class, n int, pred, self, succ S) View[S] {
	return View[S]{I: class, N: n, Self: self, Pred: pred, Succ: succ}
}

// TripleIndex encodes a (pred, self, succ) triple of state indices over a
// q-element state set into a dense index in [0, q³). All compiled
// per-class tables in this repository share this layout.
func TripleIndex(q, pred, self, succ int) int {
	return (pred*q+self)*q + succ
}

// Config is a configuration: the n-tuple of local states (q_0, …, q_{n-1}).
type Config[S comparable] []S

// View builds the read set of process i in configuration c.
func (c Config[S]) View(i int) View[S] {
	n := len(c)
	return View[S]{
		I:    i,
		N:    n,
		Self: c[i],
		Pred: c[(i-1+n)%n],
		Succ: c[(i+1)%n],
	}
}

// Clone returns an independent copy of the configuration.
func (c Config[S]) Clone() Config[S] {
	out := make(Config[S], len(c))
	copy(out, c)
	return out
}

// Equal reports whether two configurations are identical.
func (c Config[S]) Equal(d Config[S]) bool {
	if len(c) != len(d) {
		return false
	}
	for i := range c {
		if c[i] != d[i] {
			return false
		}
	}
	return true
}

// Move identifies one process executing one rule in a step.
type Move struct {
	// Process is the index of the moving process.
	Process int
	// Rule is the 1-based rule number it executes.
	Rule int
}

func (m Move) String() string { return fmt.Sprintf("P%d/R%d", m.Process, m.Rule) }

// Enabled returns, in increasing process order, the set of enabled moves of
// configuration c under algorithm alg: one Move per enabled process,
// carrying its unique highest-priority enabled rule.
func Enabled[S comparable](alg Algorithm[S], c Config[S]) []Move {
	var moves []Move
	for i := range c {
		if r := alg.EnabledRule(c.View(i)); r != 0 {
			moves = append(moves, Move{Process: i, Rule: r})
		}
	}
	return moves
}

// Apply computes the successor configuration when exactly the processes in
// moves execute their rules simultaneously (composite atomicity: every
// command reads the old configuration). It returns a new configuration and
// leaves c untouched.
//
// Apply panics if a move's rule is not the enabled rule of its process —
// that would mean the daemon invented a transition the model does not have.
func Apply[S comparable](alg Algorithm[S], c Config[S], moves []Move) Config[S] {
	next := c.Clone()
	for _, m := range moves {
		v := c.View(m.Process)
		if got := alg.EnabledRule(v); got != m.Rule {
			panic(fmt.Sprintf("statemodel: process %d: move claims rule %d but enabled rule is %d",
				m.Process, m.Rule, got))
		}
		next[m.Process] = alg.Apply(v, m.Rule)
	}
	return next
}

// Daemon is a process scheduler. Given the nonempty set of enabled moves of
// the current configuration it selects a nonempty subset to execute. The
// returned slice must be a subset of enabled (same Move values); Step
// verifies this.
//
// The daemons of the paper are all expressible: the central daemon returns
// exactly one move, the distributed daemon any nonempty subset. Unfairness
// is the default — nothing obliges a daemon to ever pick a continuously
// enabled process.
type Daemon interface {
	// Name returns a short scheduler name for reports.
	Name() string
	// Select picks a nonempty subset of enabled. enabled is never empty.
	// Implementations must not retain or mutate the enabled slice.
	Select(enabled []Move) []Move
}

// Simulator drives an execution γ0, γ1, … of an algorithm under a daemon.
type Simulator[S comparable] struct {
	alg    Algorithm[S]
	daemon Daemon
	cfg    Config[S]
	steps  int

	// OnStep, when non-nil, is invoked after every transition with the
	// step index (1 for the first transition), the moves executed, and the
	// resulting configuration. Hooks must not mutate cfg.
	OnStep func(step int, moves []Move, cfg Config[S])

	// Obs, when non-nil, receives one step record and one rule-fired
	// event per executed move; the event time is the step index. Install
	// it before running.
	Obs *obs.Observer
}

// NewSimulator returns a simulator positioned at the initial configuration
// init. The initial configuration is copied.
func NewSimulator[S comparable](alg Algorithm[S], d Daemon, init Config[S]) *Simulator[S] {
	if alg.N() != len(init) {
		panic(fmt.Sprintf("statemodel: algorithm ring size %d != configuration length %d", alg.N(), len(init)))
	}
	return &Simulator[S]{alg: alg, daemon: d, cfg: init.Clone()}
}

// Config returns a copy of the current configuration.
func (s *Simulator[S]) Config() Config[S] { return s.cfg.Clone() }

// Steps returns the number of transitions executed so far.
func (s *Simulator[S]) Steps() int { return s.steps }

// Algorithm returns the simulated algorithm.
func (s *Simulator[S]) Algorithm() Algorithm[S] { return s.alg }

// Enabled returns the enabled moves of the current configuration.
func (s *Simulator[S]) Enabled() []Move { return Enabled(s.alg, s.cfg) }

// Step performs one transition. It returns the executed moves and true, or
// nil and false when no process is enabled (a deadlock — which Lemma 4 of
// the paper rules out for SSRmin, but other algorithms may reach one).
func (s *Simulator[S]) Step() ([]Move, bool) {
	enabled := Enabled(s.alg, s.cfg)
	if len(enabled) == 0 {
		return nil, false
	}
	sel := s.daemon.Select(enabled)
	validateSelection(enabled, sel)
	s.cfg = Apply(s.alg, s.cfg, sel)
	s.steps++
	if s.Obs != nil {
		t := float64(s.steps)
		s.Obs.Step(t, len(sel))
		for _, m := range sel {
			s.Obs.RuleFired(t, m.Process, m.Rule)
		}
	}
	if s.OnStep != nil {
		s.OnStep(s.steps, sel, s.cfg)
	}
	return sel, true
}

// RunUntil steps the simulation until pred holds for the current
// configuration or maxSteps further transitions were made. It returns the
// number of transitions performed by this call and whether pred was
// reached. The predicate is also checked before the first step, so a call
// on an already-satisfying configuration returns (0, true).
func (s *Simulator[S]) RunUntil(pred func(Config[S]) bool, maxSteps int) (int, bool) {
	done := 0
	for {
		if pred(s.cfg) {
			return done, true
		}
		if done >= maxSteps {
			return done, false
		}
		if _, ok := s.Step(); !ok {
			return done, false
		}
		done++
	}
}

// Run performs exactly maxSteps transitions (or fewer on deadlock) and
// returns the number performed.
func (s *Simulator[S]) Run(maxSteps int) int {
	done := 0
	for done < maxSteps {
		if _, ok := s.Step(); !ok {
			break
		}
		done++
	}
	return done
}

func validateSelection(enabled, sel []Move) {
	if len(sel) == 0 {
		panic("statemodel: daemon selected the empty set")
	}
	allowed := make(map[Move]bool, len(enabled))
	for _, m := range enabled {
		allowed[m] = true
	}
	seen := make(map[Move]bool, len(sel))
	for _, m := range sel {
		if !allowed[m] {
			panic(fmt.Sprintf("statemodel: daemon selected %v which is not enabled", m))
		}
		if seen[m] {
			panic(fmt.Sprintf("statemodel: daemon selected %v twice", m))
		}
		seen[m] = true
	}
}

// Schedule is a recorded sequence of daemon selections, one entry per
// transition. Captured schedules replay executions exactly — for golden
// tests, worst-case reproduction, and bug reports.
type Schedule [][]Move

// RecordingDaemon wraps a daemon and records every selection it makes.
type RecordingDaemon struct {
	// Inner is the wrapped scheduler.
	Inner Daemon
	// Schedule accumulates the selections.
	Schedule Schedule
}

// Name implements Daemon.
func (d *RecordingDaemon) Name() string { return d.Inner.Name() + "+rec" }

// Select implements Daemon.
func (d *RecordingDaemon) Select(enabled []Move) []Move {
	sel := d.Inner.Select(enabled)
	cp := make([]Move, len(sel))
	copy(cp, sel)
	d.Schedule = append(d.Schedule, cp)
	return sel
}

// ReplayDaemon replays a recorded schedule. Once the schedule is
// exhausted, or when a recorded selection is not currently enabled (the
// replayed execution diverged — usually a bug in the caller), Select
// panics: a replay must be exact or it is meaningless.
type ReplayDaemon struct {
	schedule Schedule
	step     int
}

// NewReplay returns a daemon replaying s.
func NewReplay(s Schedule) *ReplayDaemon { return &ReplayDaemon{schedule: s} }

// Name implements Daemon.
func (d *ReplayDaemon) Name() string { return "replay" }

// Remaining returns the number of unconsumed schedule entries.
func (d *ReplayDaemon) Remaining() int { return len(d.schedule) - d.step }

// Select implements Daemon.
func (d *ReplayDaemon) Select(enabled []Move) []Move {
	if d.step >= len(d.schedule) {
		panic("statemodel: replay schedule exhausted")
	}
	want := d.schedule[d.step]
	d.step++
	allowed := make(map[Move]bool, len(enabled))
	for _, m := range enabled {
		allowed[m] = true
	}
	out := make([]Move, len(want))
	for i, m := range want {
		if !allowed[m] {
			panic(fmt.Sprintf("statemodel: replay diverged at step %d: %v not enabled", d.step, m))
		}
		out[i] = m
	}
	return out
}
