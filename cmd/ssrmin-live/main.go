// Command ssrmin-live runs a real goroutine/channel SSRmin ring and
// animates the privilege positions in the terminal — the wall-clock
// demonstration of the graceful handover. Compare with `-alg sstoken` to
// watch the naive ring go dark between hops.
//
// Examples:
//
//	ssrmin-live -n 8 -seconds 5
//	ssrmin-live -n 8 -alg sstoken -seconds 5
//	ssrmin-live -n 8 -metrics 127.0.0.1:8090   # serve /metrics while running
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"ssrmin"
	"ssrmin/internal/cliconf"
	"ssrmin/internal/dijkstra"
	"ssrmin/internal/obs"
	"ssrmin/internal/runtime"
)

func main() {
	var cc cliconf.Config
	cc.BindRing(flag.CommandLine, 8)
	cc.BindRandom(flag.CommandLine, 0)
	cc.BindRuntime(flag.CommandLine)
	var (
		algF    = flag.String("alg", "ssrmin", "algorithm: ssrmin | sstoken")
		seconds = flag.Float64("seconds", 5, "wall-clock seconds to animate")
		fps     = flag.Int("fps", 20, "animation frames per second")
		metrics = flag.String("metrics", "", "serve /metrics and /debug/vars on this address while running")
	)
	flag.Parse()
	if cc.Seed == 0 {
		cc.Seed = time.Now().UnixNano()
	}
	cc.ResolveK()

	var observer *obs.Observer
	if *metrics != "" {
		observer = obs.New(nil)
		bound, shutdown, err := obs.Serve(*metrics, observer)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer shutdown()
		fmt.Printf("metrics on http://%s/metrics\n", bound)
	}

	var holders func() []int
	var stop func()
	switch *algF {
	case "ssrmin":
		opts := []ssrmin.Option{
			ssrmin.WithK(cc.K),
			ssrmin.WithDelay(2 * time.Millisecond),
			ssrmin.WithJitter(500 * time.Microsecond),
			ssrmin.WithRefresh(8 * time.Millisecond),
			ssrmin.WithSeed(cc.Seed),
			ssrmin.WithWorkers(cc.Workers),
		}
		if cc.LegacyRuntime {
			opts = append(opts, ssrmin.WithLegacyRuntime())
		}
		if observer != nil {
			opts = append(opts, ssrmin.WithObserver(observer))
		}
		ring := ssrmin.NewLiveRing(cc.N, opts...)
		ring.Start()
		holders, stop = ring.Holders, ring.Stop
	case "sstoken":
		alg := dijkstra.New(cc.N, cc.K)
		ropts := runtime.Options[dijkstra.State]{
			Delay:          2 * time.Millisecond,
			Jitter:         500 * time.Microsecond,
			Refresh:        8 * time.Millisecond,
			Seed:           cc.Seed,
			CoherentCaches: true,
			Workers:        cc.Workers,
		}
		if cc.LegacyRuntime {
			ring := runtime.NewRing[dijkstra.State](alg, alg.InitialLegitimate(), ropts)
			if observer != nil {
				ring.SetObserver(observer, dijkstra.HasToken)
			}
			ring.Start()
			holders = func() []int { return ring.Holders(dijkstra.HasToken) }
			stop = ring.Stop
		} else {
			eng := runtime.NewEngine[dijkstra.State](alg, alg.InitialLegitimate(), ropts)
			if observer != nil {
				eng.SetObserver(observer, dijkstra.HasToken)
			}
			eng.Start()
			holders = func() []int { return eng.Holders(dijkstra.HasToken) }
			stop = eng.Stop
		}
	default:
		fmt.Fprintf(os.Stderr, "unknown algorithm %q\n", *algF)
		os.Exit(2)
	}
	defer stop()

	fmt.Printf("%s on %d nodes — '●' privileged, '·' idle (dark frames = no privilege anywhere)\n\n",
		*algF, cc.N)
	frames := int(*seconds * float64(*fps))
	dark := 0
	for f := 0; f < frames; f++ {
		hs := holders()
		lane := make([]rune, cc.N)
		for i := range lane {
			lane[i] = '·'
		}
		for _, h := range hs {
			lane[h] = '●'
		}
		marker := " "
		if len(hs) == 0 {
			marker = "  ← DARK"
			dark++
		}
		fmt.Printf("\r[%s]%s   ", string(lane), marker)
		time.Sleep(time.Second / time.Duration(*fps))
	}
	fmt.Println()
	fmt.Printf("\n%d/%d frames with zero privileged nodes (%.1f%%)\n",
		dark, frames, 100*float64(dark)/float64(frames))
	if observer != nil {
		fmt.Printf("observed: %d rule executions, %d handovers, %d msgs recv, %d dropped\n",
			observer.C.RuleFired.Load(), observer.C.Handovers.Load(),
			observer.C.MsgRecv.Load(), observer.C.MsgDropped.Load())
	}
	if *algF == "ssrmin" && dark > 0 {
		fmt.Println("unexpected dark frames for SSRmin — see Theorem 3")
		os.Exit(1)
	}
}
