// Command ssrmin-live runs a real goroutine/channel SSRmin ring and
// animates the privilege positions in the terminal — the wall-clock
// demonstration of the graceful handover. Compare with `-alg sstoken` to
// watch the naive ring go dark between hops.
//
// Examples:
//
//	ssrmin-live -n 8 -seconds 5
//	ssrmin-live -n 8 -alg sstoken -seconds 5
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"ssrmin"
	"ssrmin/internal/dijkstra"
	"ssrmin/internal/runtime"
)

func main() {
	var (
		n       = flag.Int("n", 8, "ring size (≥ 3)")
		algF    = flag.String("alg", "ssrmin", "algorithm: ssrmin | sstoken")
		seconds = flag.Float64("seconds", 5, "wall-clock seconds to animate")
		fps     = flag.Int("fps", 20, "animation frames per second")
		seed    = flag.Int64("seed", 0, "random seed (0 = time-based)")
	)
	flag.Parse()
	if *seed == 0 {
		*seed = time.Now().UnixNano()
	}

	var holders func() []int
	var stop func()
	switch *algF {
	case "ssrmin":
		ring := ssrmin.NewLiveRing(*n, ssrmin.LiveOptions{
			Delay:   2 * time.Millisecond,
			Jitter:  500 * time.Microsecond,
			Refresh: 8 * time.Millisecond,
			Seed:    *seed,
		})
		ring.Start()
		holders, stop = ring.Holders, ring.Stop
	case "sstoken":
		alg := dijkstra.New(*n, *n+1)
		ring := runtime.NewRing[dijkstra.State](alg, alg.InitialLegitimate(), runtime.Options[dijkstra.State]{
			Delay:          2 * time.Millisecond,
			Jitter:         500 * time.Microsecond,
			Refresh:        8 * time.Millisecond,
			Seed:           *seed,
			CoherentCaches: true,
		})
		ring.Start()
		holders = func() []int { return ring.Holders(dijkstra.HasToken) }
		stop = ring.Stop
	default:
		fmt.Fprintf(os.Stderr, "unknown algorithm %q\n", *algF)
		os.Exit(2)
	}
	defer stop()

	fmt.Printf("%s on %d nodes — '●' privileged, '·' idle (dark frames = no privilege anywhere)\n\n",
		*algF, *n)
	frames := int(*seconds * float64(*fps))
	dark := 0
	for f := 0; f < frames; f++ {
		hs := holders()
		lane := make([]rune, *n)
		for i := range lane {
			lane[i] = '·'
		}
		for _, h := range hs {
			lane[h] = '●'
		}
		marker := " "
		if len(hs) == 0 {
			marker = "  ← DARK"
			dark++
		}
		fmt.Printf("\r[%s]%s   ", string(lane), marker)
		time.Sleep(time.Second / time.Duration(*fps))
	}
	fmt.Println()
	fmt.Printf("\n%d/%d frames with zero privileged nodes (%.1f%%)\n",
		dark, frames, 100*float64(dark)/float64(frames))
	if *algF == "ssrmin" && dark > 0 {
		fmt.Println("unexpected dark frames for SSRmin — see Theorem 3")
		os.Exit(1)
	}
}
