// Command modelcheck exhaustively verifies the paper's lemmas on small
// SSRmin (and SSToken) instances by walking the full configuration space
// under the unfair distributed daemon:
//
//   - Lemma 1  (closure): every successor of a legitimate configuration is
//     legitimate, and exactly one process is enabled in Λ.
//   - Lemma 4  (no deadlock): every configuration has an enabled process.
//   - Lemma 5  (quiet bound): executions using only Rules 1/3/5 are finite
//     and at most 3n steps long.
//   - Lemma 6 / Theorem 2 (convergence): no execution avoids Λ forever;
//     the exact worst-case stabilization time is reported.
//   - Theorem 1: 1 ≤ privileged ≤ 2 in every legitimate configuration.
//
// Runtime grows as (4K)^n · 2^n; n=3 takes milliseconds, n=4 about a
// second, n=5 minutes.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"ssrmin/internal/check"
	"ssrmin/internal/core"
	"ssrmin/internal/dijkstra"
	"ssrmin/internal/statemodel"
)

func main() {
	var (
		n       = flag.Int("n", 3, "ring size")
		k       = flag.Int("k", 0, "counter space K (default n+1)")
		algF    = flag.String("alg", "ssrmin", "algorithm: ssrmin | sstoken")
		maxConf = flag.Uint64("max-configs", 50_000_000, "refuse spaces larger than this")
		workers = flag.Int("workers", 0, "parallel workers for invariant scans (0 = GOMAXPROCS)")
	)
	flag.Parse()
	parallelWorkers = *workers
	if *k == 0 {
		*k = *n + 1
	}

	ok := true
	switch *algF {
	case "ssrmin":
		ok = checkSSRmin(*n, *k, *maxConf)
	case "sstoken":
		ok = checkSSToken(*n, *k, *maxConf)
	default:
		fmt.Fprintf(os.Stderr, "unknown algorithm %q\n", *algF)
		os.Exit(2)
	}
	if !ok {
		os.Exit(1)
	}
}

// parallelWorkers configures the worker pool of the embarrassingly
// parallel scans (no-deadlock, token bounds). The sequential passes
// (convergence DFS) are unaffected.
var parallelWorkers int

func checkSSRmin(n, k int, maxConf uint64) bool {
	a := core.New(n, k)
	c := check.New[core.State](a, maxConf)
	fmt.Printf("== %s: |Γ| = %d configurations ==\n", a.Name(), c.NumConfigs())
	ok := true

	start := time.Now()
	if cex, fine := c.CheckNoDeadlockParallel(parallelWorkers); !fine {
		fmt.Printf("FAIL Lemma 4 (no deadlock): deadlocked at %v\n", cex)
		ok = false
	} else {
		fmt.Printf("PASS Lemma 4 (no deadlock)                         [%v]\n", time.Since(start).Round(time.Millisecond))
	}

	start = time.Now()
	rep := c.CheckClosure(a.Legitimate)
	switch {
	case rep.Counterexample != nil:
		fmt.Printf("FAIL Lemma 1 (closure): %v -> %v\n", rep.Counterexample, rep.Successor)
		ok = false
	case rep.MaxEnabled != 1:
		fmt.Printf("FAIL Lemma 1: %d processes enabled in some legitimate configuration\n", rep.MaxEnabled)
		ok = false
	default:
		fmt.Printf("PASS Lemma 1 (closure): |Λ| = %d, exactly 1 enabled [%v]\n",
			rep.Legitimate, time.Since(start).Round(time.Millisecond))
	}

	start = time.Now()
	if cex, fine := c.CheckInvariantOnLegitimate(a.Legitimate, func(cfg statemodel.Config[core.State]) bool {
		p, s, t := len(a.PrimaryHolders(cfg)), len(a.SecondaryHolders(cfg)), len(a.TokenHolders(cfg))
		return p == 1 && s == 1 && t >= 1 && t <= 2
	}); !fine {
		fmt.Printf("FAIL Theorem 1 (token bounds) at %v\n", cex)
		ok = false
	} else {
		fmt.Printf("PASS Theorem 1 (1 ≤ privileged ≤ 2 in Λ)           [%v]\n", time.Since(start).Round(time.Millisecond))
	}

	start = time.Now()
	steps, from, fine := c.LongestRestricted(map[int]bool{
		core.RuleReadySecondary: true, core.RuleRecvSecondary: true, core.RuleFixNoG: true,
	})
	if !fine {
		fmt.Printf("FAIL Lemma 5: infinite quiet execution from %v\n", from)
		ok = false
	} else if steps > 3*n {
		fmt.Printf("FAIL Lemma 5: quiet execution of %d steps exceeds 3n = %d (from %v)\n", steps, 3*n, from)
		ok = false
	} else {
		fmt.Printf("PASS Lemma 5: longest quiet execution %d ≤ 3n = %d  [%v]\n",
			steps, 3*n, time.Since(start).Round(time.Millisecond))
	}

	start = time.Now()
	conv := c.CheckConvergence(a.Legitimate)
	if !conv.Converges {
		fmt.Printf("FAIL Lemma 6 (convergence): cycle through %v\n", conv.Cycle)
		ok = false
	} else {
		fmt.Printf("PASS Lemma 6/Theorem 2: worst-case stabilization = %d steps (from %v), |Γ∖Λ| = %d [%v]\n",
			conv.WorstSteps, conv.WorstStart, conv.Illegitimate, time.Since(start).Round(time.Millisecond))
	}
	return ok
}

func checkSSToken(n, k int, maxConf uint64) bool {
	a := dijkstra.New(n, k)
	c := check.New[dijkstra.State](a, maxConf)
	fmt.Printf("== %s: |Γ| = %d configurations ==\n", a.Name(), c.NumConfigs())
	ok := true

	if cex, fine := c.CheckNoDeadlock(); !fine {
		fmt.Printf("FAIL no-deadlock: %v\n", cex)
		ok = false
	} else {
		fmt.Println("PASS no-deadlock")
	}
	rep := c.CheckClosure(a.Legitimate)
	if rep.Counterexample != nil {
		fmt.Printf("FAIL closure: %v -> %v\n", rep.Counterexample, rep.Successor)
		ok = false
	} else {
		fmt.Printf("PASS closure: |Λ| = %d, max enabled = %d\n", rep.Legitimate, rep.MaxEnabled)
	}
	conv := c.CheckConvergence(a.Legitimate)
	if !conv.Converges {
		fmt.Printf("FAIL convergence: cycle through %v\n", conv.Cycle)
		ok = false
	} else {
		fmt.Printf("PASS convergence: worst case %d steps (bound 3n(n−1)/2 = %d)\n",
			conv.WorstSteps, a.ConvergenceBound())
	}
	return ok
}
