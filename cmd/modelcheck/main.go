// Command modelcheck exhaustively verifies the paper's lemmas on small
// SSRmin (and SSToken) instances by walking the full configuration space
// under the unfair distributed daemon:
//
//   - Lemma 1  (closure): every successor of a legitimate configuration is
//     legitimate, and exactly one process is enabled in Λ.
//   - Lemma 4  (no deadlock): every configuration has an enabled process.
//   - Lemma 5  (quiet bound): executions using only Rules 1/3/5 are finite
//     and at most 3n steps long.
//   - Lemma 6 / Theorem 2 (convergence): no execution avoids Λ forever;
//     the exact worst-case stabilization time is reported.
//   - Theorem 1: 1 ≤ privileged ≤ 2 in every legitimate configuration.
//
// By default the checks run on the table-compiled parallel ID-space engine
// (internal/check.Engine): guards and commands are compiled once into
// per-class transition tables and every scan — including the convergence
// longest-path analysis — works on dense uint64 configuration IDs sharded
// across -workers goroutines. That makes the n=5, K=6 instance (24⁵ ≈
// 7.96M configurations) exhaustively checkable. -legacy selects the
// original Decode/Encode path (the differential baseline).
//
// The process exits non-zero on any lemma violation, so `make modelcheck`
// can gate CI.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"ssrmin/internal/check"
	"ssrmin/internal/cliconf"
	"ssrmin/internal/core"
	"ssrmin/internal/dijkstra"
	"ssrmin/internal/inclusion"
	"ssrmin/internal/statemodel"
)

func main() {
	var (
		n       = flag.Int("n", 3, "ring size")
		k       = flag.Int("k", 0, "counter space K (default n+1)")
		algF    = flag.String("alg", "ssrmin", "algorithm: ssrmin | sstoken")
		maxConf = flag.Uint64("max-configs", 50_000_000, "refuse spaces larger than this")
		workers = flag.Int("workers", 0, "parallel workers for all engine scans (0 = GOMAXPROCS)")
		legacy  = flag.Bool("legacy", false, "use the legacy Decode/Encode checker instead of the compiled engine")
	)
	var prof cliconf.Profile
	prof.Bind(flag.CommandLine)
	flag.Parse()
	if err := prof.Start(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	parallelWorkers = *workers
	if *k == 0 {
		*k = *n + 1
	}

	ok := true
	switch *algF {
	case "ssrmin":
		if *legacy {
			ok = checkSSRminLegacy(*n, *k, *maxConf)
		} else {
			ok = checkSSRmin(*n, *k, *maxConf, *workers)
		}
	case "sstoken":
		if *legacy {
			ok = checkSSTokenLegacy(*n, *k, *maxConf)
		} else {
			ok = checkSSToken(*n, *k, *maxConf, *workers)
		}
	default:
		prof.Stop()
		fmt.Fprintf(os.Stderr, "unknown algorithm %q\n", *algF)
		os.Exit(2)
	}
	// os.Exit skips deferred calls: flush the profiles before gating CI.
	if err := prof.Stop(); err != nil {
		fmt.Fprintln(os.Stderr, err)
	}
	if !ok {
		os.Exit(1)
	}
}

// parallelWorkers configures the worker pool of the legacy path's
// embarrassingly parallel scans.
var parallelWorkers int

// phase prints one check's verdict with its wall time and throughput in
// configurations per second.
func phase(name string, pass bool, detail string, configs uint64, dt time.Duration) {
	verdict := "PASS"
	if !pass {
		verdict = "FAIL"
	}
	rate := float64(configs) / dt.Seconds()
	fmt.Printf("%s %-44s [%8v  %10.3g cfg/s]", verdict, name+": "+detail, dt.Round(time.Millisecond), rate)
	fmt.Println()
}

func checkSSRmin(n, k int, maxConf uint64, workers int) bool {
	a := core.New(n, k)
	c := check.New[core.State](a, maxConf)
	total := c.NumConfigs()

	start := time.Now()
	eng, err := c.Compile(workers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "table compilation failed: %v\n", err)
		return false
	}
	fmt.Printf("== %s: |Γ| = %d configurations, %d workers, tables compiled in %v ==\n",
		a.Name(), total, eng.Workers(), time.Since(start).Round(time.Millisecond))
	ok := true

	start = time.Now()
	lam := eng.LegitSet(a.Legitimate)
	fmt.Printf("     Λ bitmap built: |Λ| = %d                       [%8v  %10.3g cfg/s]\n",
		lam.Count(), time.Since(start).Round(time.Millisecond), float64(total)/time.Since(start).Seconds())

	start = time.Now()
	cex, fine := eng.CheckNoDeadlock()
	phase("Lemma 4 (no deadlock)", fine, "every config enabled", total, time.Since(start))
	if !fine {
		fmt.Printf("     deadlocked at %v\n", cex)
		ok = false
	}

	start = time.Now()
	rep := eng.CheckClosure(lam)
	closureOK := rep.Counterexample == nil && rep.MaxEnabled == 1
	phase("Lemma 1 (closure)", closureOK,
		fmt.Sprintf("|Λ| = %d, max enabled %d", rep.Legitimate, rep.MaxEnabled), rep.Legitimate, time.Since(start))
	if rep.Counterexample != nil {
		fmt.Printf("     counterexample %v -> %v\n", rep.Counterexample, rep.Successor)
	}
	ok = ok && closureOK

	// Theorem 1 via the compiled census of the mutual-inclusion layer:
	// token predicates evaluated by table probes over Λ's IDs.
	start = time.Now()
	ct := inclusion.CompileCensus(a.AllStates(), n, core.HasPrimary, core.HasSecondary)
	censusOK := true
	var badID uint64
	var triples []uint32
	lam.ForEach(func(id uint64) bool {
		triples = eng.Triples(id, triples)
		p, s, priv := ct.Counts(triples)
		if !(p == 1 && s == 1 && priv >= 1 && priv <= 2) {
			censusOK, badID = false, id
			return false
		}
		return true
	})
	phase("Theorem 1 (1 ≤ privileged ≤ 2 in Λ)", censusOK, "compiled census", lam.Count(), time.Since(start))
	if !censusOK {
		fmt.Printf("     violated at %v\n", c.Decode(badID))
		ok = false
	}

	start = time.Now()
	steps, from, fine := eng.LongestRestricted(map[int]bool{
		core.RuleReadySecondary: true, core.RuleRecvSecondary: true, core.RuleFixNoG: true,
	})
	quietOK := fine && steps <= 3*n
	phase("Lemma 5 (quiet bound)", quietOK,
		fmt.Sprintf("longest {1,3,5}-run %d ≤ 3n = %d", steps, 3*n), total, time.Since(start))
	if !fine {
		fmt.Printf("     infinite quiet execution from %v\n", from)
	} else if steps > 3*n {
		fmt.Printf("     quiet execution of %d steps from %v\n", steps, from)
	}
	ok = ok && quietOK

	start = time.Now()
	conv, stats := eng.CheckConvergence(lam)
	convOK := conv.Converges && conv.WorstSteps <= a.ConvergenceStepBound()
	phase("Lemma 6/Theorem 2 (convergence)", convOK,
		fmt.Sprintf("worst %d ≤ 63n²+4 = %d", conv.WorstSteps, a.ConvergenceStepBound()), total, time.Since(start))
	if !conv.Converges {
		fmt.Printf("     cycle through %v\n", conv.Cycle)
	} else {
		fmt.Printf("     |Γ∖Λ| = %d, worst start %v, graph edges %d, %d Kahn layers, bookkeeping %.1f MiB\n",
			conv.Illegitimate, conv.WorstStart, stats.Edges, stats.Layers,
			float64(stats.BookkeepingBytes)/(1<<20))
	}
	return ok && convOK
}

func checkSSToken(n, k int, maxConf uint64, workers int) bool {
	a := dijkstra.New(n, k)
	c := check.New[dijkstra.State](a, maxConf)
	total := c.NumConfigs()
	eng, err := c.Compile(workers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "table compilation failed: %v\n", err)
		return false
	}
	fmt.Printf("== %s: |Γ| = %d configurations, %d workers ==\n", a.Name(), total, eng.Workers())
	ok := true

	start := time.Now()
	lam := eng.LegitSet(a.Legitimate)
	cex, fine := eng.CheckNoDeadlock()
	phase("no deadlock", fine, "every config enabled", total, time.Since(start))
	if !fine {
		fmt.Printf("     deadlocked at %v\n", cex)
		ok = false
	}

	start = time.Now()
	rep := eng.CheckClosure(lam)
	phase("closure", rep.Counterexample == nil,
		fmt.Sprintf("|Λ| = %d, max enabled %d", rep.Legitimate, rep.MaxEnabled), rep.Legitimate, time.Since(start))
	if rep.Counterexample != nil {
		fmt.Printf("     counterexample %v -> %v\n", rep.Counterexample, rep.Successor)
		ok = false
	}

	start = time.Now()
	conv, stats := eng.CheckConvergence(lam)
	convOK := conv.Converges
	phase("convergence", convOK,
		fmt.Sprintf("worst %d (bound 3n(n−1)/2 = %d)", conv.WorstSteps, a.ConvergenceBound()), total, time.Since(start))
	if !conv.Converges {
		fmt.Printf("     cycle through %v\n", conv.Cycle)
	} else {
		fmt.Printf("     |Γ∖Λ| = %d, edges %d, %d layers, bookkeeping %.1f MiB\n",
			conv.Illegitimate, stats.Edges, stats.Layers, float64(stats.BookkeepingBytes)/(1<<20))
	}
	return ok && convOK
}

func checkSSRminLegacy(n, k int, maxConf uint64) bool {
	a := core.New(n, k)
	c := check.New[core.State](a, maxConf)
	fmt.Printf("== %s (legacy path): |Γ| = %d configurations ==\n", a.Name(), c.NumConfigs())
	ok := true

	start := time.Now()
	if cex, fine := c.CheckNoDeadlockParallel(parallelWorkers); !fine {
		fmt.Printf("FAIL Lemma 4 (no deadlock): deadlocked at %v\n", cex)
		ok = false
	} else {
		fmt.Printf("PASS Lemma 4 (no deadlock)                         [%v]\n", time.Since(start).Round(time.Millisecond))
	}

	start = time.Now()
	rep := c.CheckClosure(a.Legitimate)
	switch {
	case rep.Counterexample != nil:
		fmt.Printf("FAIL Lemma 1 (closure): %v -> %v\n", rep.Counterexample, rep.Successor)
		ok = false
	case rep.MaxEnabled != 1:
		fmt.Printf("FAIL Lemma 1: %d processes enabled in some legitimate configuration\n", rep.MaxEnabled)
		ok = false
	default:
		fmt.Printf("PASS Lemma 1 (closure): |Λ| = %d, exactly 1 enabled [%v]\n",
			rep.Legitimate, time.Since(start).Round(time.Millisecond))
	}

	start = time.Now()
	if cex, fine := c.CheckInvariantOnLegitimate(a.Legitimate, func(cfg statemodel.Config[core.State]) bool {
		p, s, t := len(a.PrimaryHolders(cfg)), len(a.SecondaryHolders(cfg)), len(a.TokenHolders(cfg))
		return p == 1 && s == 1 && t >= 1 && t <= 2
	}); !fine {
		fmt.Printf("FAIL Theorem 1 (token bounds) at %v\n", cex)
		ok = false
	} else {
		fmt.Printf("PASS Theorem 1 (1 ≤ privileged ≤ 2 in Λ)           [%v]\n", time.Since(start).Round(time.Millisecond))
	}

	start = time.Now()
	steps, from, fine := c.LongestRestricted(map[int]bool{
		core.RuleReadySecondary: true, core.RuleRecvSecondary: true, core.RuleFixNoG: true,
	})
	if !fine {
		fmt.Printf("FAIL Lemma 5: infinite quiet execution from %v\n", from)
		ok = false
	} else if steps > 3*n {
		fmt.Printf("FAIL Lemma 5: quiet execution of %d steps exceeds 3n = %d (from %v)\n", steps, 3*n, from)
		ok = false
	} else {
		fmt.Printf("PASS Lemma 5: longest quiet execution %d ≤ 3n = %d  [%v]\n",
			steps, 3*n, time.Since(start).Round(time.Millisecond))
	}

	start = time.Now()
	conv := c.CheckConvergence(a.Legitimate)
	if !conv.Converges {
		fmt.Printf("FAIL Lemma 6 (convergence): cycle through %v\n", conv.Cycle)
		ok = false
	} else {
		fmt.Printf("PASS Lemma 6/Theorem 2: worst-case stabilization = %d steps (from %v), |Γ∖Λ| = %d [%v]\n",
			conv.WorstSteps, conv.WorstStart, conv.Illegitimate, time.Since(start).Round(time.Millisecond))
	}
	return ok
}

func checkSSTokenLegacy(n, k int, maxConf uint64) bool {
	a := dijkstra.New(n, k)
	c := check.New[dijkstra.State](a, maxConf)
	fmt.Printf("== %s (legacy path): |Γ| = %d configurations ==\n", a.Name(), c.NumConfigs())
	ok := true

	if cex, fine := c.CheckNoDeadlock(); !fine {
		fmt.Printf("FAIL no-deadlock: %v\n", cex)
		ok = false
	} else {
		fmt.Println("PASS no-deadlock")
	}
	rep := c.CheckClosure(a.Legitimate)
	if rep.Counterexample != nil {
		fmt.Printf("FAIL closure: %v -> %v\n", rep.Counterexample, rep.Successor)
		ok = false
	} else {
		fmt.Printf("PASS closure: |Λ| = %d, max enabled = %d\n", rep.Legitimate, rep.MaxEnabled)
	}
	conv := c.CheckConvergence(a.Legitimate)
	if !conv.Converges {
		fmt.Printf("FAIL convergence: cycle through %v\n", conv.Cycle)
		ok = false
	} else {
		fmt.Printf("PASS convergence: worst case %d steps (bound 3n(n−1)/2 = %d)\n",
			conv.WorstSteps, a.ConvergenceBound())
	}
	return ok
}
