// Command ssrmin-node runs ONE SSRmin process as a standalone network
// service — the distributed deployment of the paper's algorithm. Start n
// of these (on one machine or several), each pointing at its ring
// neighbors, and the ring self-organizes: no leader election, no
// initialization protocol, arbitrary start order, automatic recovery from
// restarts and transient faults.
//
// Example — a 3-node ring on one machine:
//
//	ssrmin-node -id 0 -n 3 -listen 127.0.0.1:9000 -pred 127.0.0.1:9002 -succ 127.0.0.1:9001 &
//	ssrmin-node -id 1 -n 3 -listen 127.0.0.1:9001 -pred 127.0.0.1:9000 -succ 127.0.0.1:9002 &
//	ssrmin-node -id 2 -n 3 -listen 127.0.0.1:9002 -pred 127.0.0.1:9001 -succ 127.0.0.1:9000 &
//
// Each node logs its privilege transitions; kill and restart any node and
// watch the ring heal. With -metrics each node additionally serves its
// counters on /metrics and /debug/vars.
//
// With -local the command instead deploys the WHOLE ring in one process
// on the live runtime (the sharded event engine by default; see
// -workers / -legacy-runtime) — useful for smoke-testing a deployment
// size before spreading it across machines:
//
//	ssrmin-node -local -n 100000 -seconds 5
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"ssrmin"
	"ssrmin/internal/cliconf"
	"ssrmin/internal/core"
	"ssrmin/internal/netring"
	"ssrmin/internal/obs"
)

func main() {
	var cc cliconf.Config
	cc.BindRing(flag.CommandLine, 0)
	cc.BindRuntime(flag.CommandLine)
	var (
		id      = flag.Int("id", -1, "this node's ring index (0..n-1)")
		listen  = flag.String("listen", "", "listen address, e.g. 127.0.0.1:9000")
		pred    = flag.String("pred", "", "predecessor's listen address")
		succ    = flag.String("succ", "", "successor's listen address")
		refresh = flag.Duration("refresh", 50*time.Millisecond, "announcement refresh interval")
		seconds = flag.Float64("seconds", 0, "exit after this many seconds (0 = run until signal)")
		metrics = flag.String("metrics", "", "serve /metrics and /debug/vars on this address")
		local   = flag.Bool("local", false, "run the whole n-node ring in this process on the live runtime")
	)
	flag.Parse()

	if *local {
		os.Exit(runLocal(&cc, *seconds, *metrics))
	}

	if *id < 0 || cc.N < 3 || *listen == "" || *pred == "" || *succ == "" {
		fmt.Fprintln(os.Stderr, "required: -id -n -listen -pred -succ (see -h)")
		os.Exit(2)
	}
	cc.ResolveK()

	l, err := net.Listen("tcp", *listen)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	// Arbitrary initial state: self-stabilization means we need no
	// coordination about starting values.
	rng := rand.New(rand.NewSource(time.Now().UnixNano()))
	init := core.State{X: rng.Intn(cc.K), RTS: rng.Intn(2) == 1, TRA: rng.Intn(2) == 1}

	node, err := netring.NewNode(netring.Config{
		ID: *id, N: cc.N, K: cc.K,
		Listener: l,
		PredAddr: *pred,
		SuccAddr: *succ,
		Refresh:  *refresh,
	}, init)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	var observer *obs.Observer
	start := time.Now()
	if *metrics != "" {
		observer = obs.New(nil)
		bound, shutdown, err := obs.Serve(*metrics, observer)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer shutdown()
		fmt.Printf("node %d: metrics on http://%s/metrics\n", *id, bound)
	}

	node.Start()
	defer node.Stop()
	fmt.Printf("node %d/%d listening on %s (initial state %v)\n", *id, cc.N, node.Addr(), init)

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)

	var deadline <-chan time.Time
	if *seconds > 0 {
		deadline = time.After(time.Duration(*seconds * float64(time.Second)))
	}

	logTransitions(node, *id, observer, start, stop, deadline)
}

// runLocal deploys the whole ring in-process through the unified Option
// API — the sharded engine by default, the goroutine ring behind
// -legacy-runtime — and reports the census band it sustained.
func runLocal(cc *cliconf.Config, seconds float64, metrics string) int {
	if cc.N < 3 {
		fmt.Fprintln(os.Stderr, "required: -n ≥ 3 with -local (see -h)")
		return 2
	}
	cc.ResolveK()
	if seconds <= 0 {
		seconds = 5
	}
	opts := []ssrmin.Option{
		ssrmin.WithK(cc.K),
		ssrmin.WithSeed(cc.Seed),
		ssrmin.WithWorkers(cc.Workers),
	}
	if cc.LegacyRuntime {
		opts = append(opts, ssrmin.WithLegacyRuntime())
	}
	var observer *obs.Observer
	if metrics != "" {
		observer = obs.New(nil)
		bound, shutdown, err := obs.Serve(metrics, observer)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		defer shutdown()
		fmt.Printf("metrics on http://%s/metrics\n", bound)
		opts = append(opts, ssrmin.WithObserver(observer))
	}
	ring := ssrmin.NewLiveRing(cc.N, opts...)
	backend := "sharded engine"
	if cc.LegacyRuntime {
		backend = "goroutine ring"
	}
	fmt.Printf("local ring: n=%d on the %s for %.1fs\n", cc.N, backend, seconds)
	ring.Start()
	defer ring.Stop()
	stats := ring.WatchCensus(time.Duration(seconds*float64(time.Second)), 5*time.Millisecond)
	fmt.Printf("census over %d samples: min=%d max=%d, %d distinct holders, %d rule executions\n",
		stats.Samples, stats.Min, stats.Max, stats.DistinctHolders, ring.RuleExecutions())
	if stats.Min < 1 || stats.Max > 2 {
		fmt.Println("census left the [1,2] band — see Theorem 3")
		return 1
	}
	return 0
}

// logTransitions watches one TCP node's privilege edges until a signal
// or the deadline fires.
func logTransitions(node *netring.Node, id int, observer *obs.Observer, start time.Time, stop chan os.Signal, deadline <-chan time.Time) {
	// Log privilege transitions (and, with -metrics, feed the observer:
	// handover events from privilege edges, rule counters by delta).
	tick := time.NewTicker(5 * time.Millisecond)
	defer tick.Stop()
	wasPrivileged := false
	lastExecs := 0
	for {
		select {
		case <-stop:
			fmt.Printf("node %d: shutting down (%d rule executions)\n", id, node.RuleExecutions())
			return
		case <-deadline:
			fmt.Printf("node %d: done (%d rule executions)\n", id, node.RuleExecutions())
			return
		case <-tick.C:
			if observer != nil {
				execs := node.RuleExecutions()
				if d := execs - lastExecs; d > 0 {
					observer.C.RuleFired.Add(int64(d))
					lastExecs = execs
				}
			}
			p := node.Privileged()
			if p != wasPrivileged {
				wasPrivileged = p
				if observer != nil {
					observer.Handover(time.Since(start).Seconds(), id, p)
				}
				state, _, _ := node.Snapshot()
				if p {
					fmt.Printf("node %d: PRIVILEGED  (state %v)\n", id, state)
				} else {
					fmt.Printf("node %d: idle        (state %v)\n", id, state)
				}
			}
		}
	}
}
