package main

import (
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"ssrmin/internal/crosscheck"
	"ssrmin/internal/scenario"
)

func searchBase() crosscheck.Scenario {
	return crosscheck.Scenario{
		Name:    "search-test",
		N:       4,
		K:       12,
		Horizon: 8,
		Settle:  4,
		Link:    scenario.Link{Delay: 0.01, Jitter: 0.002},
		Engines: []string{crosscheck.EngineState, crosscheck.EngineMsgnet},
	}
}

// TestMutationsStayValid: every mutation trajectory must stay inside the
// validated scenario space (possibly by falling back to the unmutated
// candidate), since an invalid candidate would waste a budgeted run.
func TestMutationsStayValid(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	cur := searchBase()
	if err := cur.Validate(); err != nil {
		t.Fatal(err)
	}
	sawFaults := false
	for i := 0; i < 500; i++ {
		cand := cloneScenario(cur)
		mutateScenario(rng, &cand, true)
		if cand.Validate() == nil {
			cur = cand
		}
		check := cloneScenario(cur)
		if err := check.Validate(); err != nil {
			t.Fatalf("mutation %d left an invalid scenario: %v", i, err)
		}
		if len(cur.Faults) > 0 {
			sawFaults = true
		}
	}
	if !sawFaults {
		t.Fatal("500 mutations never grew a fault script")
	}
}

// TestMutationCutsArePaired: no mutation may introduce a cut without a
// heal — a permanently severed ring cannot circulate a token, so an
// unpaired cut would manufacture a false violation.
func TestMutationCutsArePaired(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 300; i++ {
		sc := searchBase()
		if err := sc.Validate(); err != nil {
			t.Fatal(err)
		}
		addRandomFault(rng, &sc, true)
		cuts, heals := 0, 0
		for _, f := range sc.Faults {
			switch f.Type {
			case "cut":
				cuts++
			case "heal":
				heals++
			}
		}
		if cuts != heals {
			t.Fatalf("unpaired cut after addRandomFault: %+v", sc.Faults)
		}
	}
}

// TestScoreRanksViolationsAboveNearMisses pins the search objective: one
// real violation must outrank any accumulation of gradient terms.
func TestScoreRanksViolationsAboveNearMisses(t *testing.T) {
	base := searchBase()
	nearMiss := crosscheck.Report{
		Scenario: base,
		Engines: []crosscheck.EngineResult{
			{Engine: crosscheck.EngineMsgnet, MaxSeparation: 1, LastBad: base.Horizon * 0.9},
		},
	}
	violating := crosscheck.Report{
		Scenario: base,
		Engines: []crosscheck.EngineResult{
			{Engine: crosscheck.EngineMsgnet, Violations: []crosscheck.Violation{
				{Engine: crosscheck.EngineMsgnet, Kind: "census", At: 5},
			}},
		},
	}
	near, bad := score(nearMiss), score(violating)
	if near <= 0 {
		t.Fatalf("near-miss gradient empty: %d", near)
	}
	if near >= violationScore {
		t.Fatalf("near-miss score %d reaches the violation band", near)
	}
	if bad < violationScore || bad <= near {
		t.Fatalf("violation score %d does not dominate near-miss %d", bad, near)
	}
}

// TestSearchDeterministicTrajectory runs two tiny searches with the same
// seed end to end (including real crosscheck runs) and requires identical
// outcomes.
func TestSearchDeterministicTrajectory(t *testing.T) {
	if testing.Short() {
		t.Skip("full crosscheck runs")
	}
	do := func(path string) string {
		out, err := os.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		defer out.Close()
		code := run([]string{
			"-search", "-search-budget", "4", "-search-restarts", "1",
			"-n", "4", "-engines", "state,msgnet", "-horizon", "6",
			"-settle", "3", "-churn", "-seed", "7", "-shrink=false",
		}, out, out)
		if code != 0 {
			t.Fatalf("search exited %d", code)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		return string(data)
	}
	dir := t.TempDir()
	a := do(filepath.Join(dir, "a.txt"))
	b := do(filepath.Join(dir, "b.txt"))
	if a != b {
		t.Fatalf("same-seed searches diverged:\n%s\nvs\n%s", a, b)
	}
}
