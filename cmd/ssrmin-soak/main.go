// Command ssrmin-soak is the differential chaos-soak driver: it sweeps a
// range of seeds, runs each seeded scenario through the selected
// execution tiers (state-reading simulator, discrete-event message
// passing, live goroutine ring) via internal/crosscheck, and fails if any
// tier ever breaks a paper invariant — the 1–2 privileged census after
// settling, the O(n²) convergence bound, or the one-message-per-direction
// link rule.
//
// On a violation the offending scenario is auto-shrunk to a minimal
// reproduction and (unless -shrink=false) written to -repro-dir, where
// internal/crosscheck's TestReproFixturesStayFixed replays it as an
// ordinary go test case forever.
//
// Examples:
//
//	ssrmin-soak -seeds 50 -n 5 -dup 0.3 -jitter 0.002
//	ssrmin-soak -seeds 20 -n 7 -loss 0.1 -storm -engines state,msgnet
//	ssrmin-soak -seeds 5 -engines live -horizon 5 -workers 1
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"ssrmin/internal/cliconf"
	"ssrmin/internal/crosscheck"
	"ssrmin/internal/obs"
	"ssrmin/internal/parsweep"
	"ssrmin/internal/scenario"
)

func main() { os.Exit(run(os.Args[1:], os.Stdout, os.Stderr)) }

func run(args []string, out, errw *os.File) int {
	fs := flag.NewFlagSet("ssrmin-soak", flag.ContinueOnError)
	fs.SetOutput(errw)
	var (
		seeds       = fs.Int("seeds", 20, "number of consecutive seeds to sweep")
		baseSeed    = fs.Int64("seed", 1, "first seed of the sweep")
		name        = fs.String("name", "soak", "scenario name prefix")
		n           = fs.Int("n", 5, "ring size")
		k           = fs.Int("k", 0, "K counter space (0: n+1)")
		horizon     = fs.Float64("horizon", 20, "simulated horizon in seconds")
		steps       = fs.Int("steps", 0, "state-engine step budget (0: 2x the paper bound)")
		daemonKind  = fs.String("daemon", "central-random", "state-engine daemon: central-random, synchronous, distributed")
		delay       = fs.Float64("delay", 0.01, "link delay (s)")
		jitter      = fs.Float64("jitter", 0.002, "link jitter (s)")
		loss        = fs.Float64("loss", 0, "per-frame loss probability")
		dup         = fs.Float64("dup", 0, "per-frame duplication probability (msgnet)")
		corrupt     = fs.Float64("corrupt", 0, "per-frame corruption probability (msgnet)")
		refresh     = fs.Float64("refresh", 0, "CST refresh period (0: 5x delay)")
		settle      = fs.Float64("settle", 0, "census settle window after perturbations (0: horizon/2)")
		random      = fs.Bool("random", false, "start from a seeded arbitrary configuration")
		incoherent  = fs.Bool("incoherent", false, "start with incoherent neighbor caches")
		storm       = fs.Bool("storm", false, "inject a canned mid-run fault storm (states + caches)")
		engines     = fs.String("engines", "state,msgnet,live", "comma-separated engine list")
		liveScale   = fs.Float64("live-scale", 0.01, "wall seconds per simulated second in the legacy live backend")
		liveWorkers = fs.Int("live-workers", 0, "sharded live engine worker loops (0: GOMAXPROCS)")
		liveLegacy  = fs.Bool("live-legacy", false, "run the live tier on the goroutine-per-node backend")
		workers     = fs.Int("workers", 0, "parallel trials (0: GOMAXPROCS; live engine timing prefers 1)")
		shrink      = fs.Bool("shrink", true, "shrink violating scenarios and write repro fixtures")
		reproDir    = fs.String("repro-dir", "testdata/repros", "directory for repro fixtures")
		verbose     = fs.Bool("v", false, "print one line per seed")

		search         = fs.Bool("search", false, "mutation search over scenarios instead of a seed sweep")
		searchBudget   = fs.Int("search-budget", 40, "search: crosscheck runs per restart")
		searchRestarts = fs.Int("search-restarts", 3, "search: random restarts")
		churn          = fs.Bool("churn", false, "search: admit join/leave/splice events into the mutation space")
	)
	var prof cliconf.Profile
	prof.Bind(fs)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if err := prof.Start(); err != nil {
		fmt.Fprintln(errw, err)
		return 2
	}
	defer func() {
		if err := prof.Stop(); err != nil {
			fmt.Fprintln(errw, err)
		}
	}()

	base := crosscheck.Scenario{
		Name:             *name,
		N:                *n,
		K:                *k,
		Horizon:          *horizon,
		Steps:            *steps,
		Daemon:           *daemonKind,
		Link:             scenario.Link{Delay: *delay, Jitter: *jitter, Loss: *loss, Dup: *dup, Corrupt: *corrupt},
		Refresh:          *refresh,
		RandomStart:      *random,
		IncoherentCaches: *incoherent,
		Settle:           *settle,
		LiveScale:        *liveScale,
		LiveWorkers:      *liveWorkers,
		LiveLegacy:       *liveLegacy,
	}
	for _, e := range strings.Split(*engines, ",") {
		if e = strings.TrimSpace(e); e != "" {
			base.Engines = append(base.Engines, e)
		}
	}
	if *storm {
		base.Faults = []scenario.Fault{
			{At: 0.3 * *horizon, Type: "states", Count: (*n + 1) / 2},
			{At: 0.45 * *horizon, Type: "caches", Count: *n},
			{At: 0.6 * *horizon, Type: "states", Count: 1},
		}
	}
	// Validate once up front so a flag mistake is one clean error, not
	// *seeds copies of it.
	probe := base
	probe.Seed = *baseSeed
	if err := probe.Validate(); err != nil {
		fmt.Fprintln(errw, err)
		return 2
	}

	if *search {
		return runSearch(base, searchOptions{
			Restarts: *searchRestarts,
			Budget:   *searchBudget,
			Seed:     *baseSeed,
			Churn:    *churn,
			Shrink:   *shrink,
			ReproDir: *reproDir,
		}, obs.New(nil), out, errw)
	}

	type trial struct {
		rep crosscheck.Report
		err error
	}
	o := obs.New(nil)
	// Each worker owns one crosscheck.Resources (its event arena) for the
	// whole sweep: trials reset-not-reallocate, so a long soak's
	// steady-state allocation stays near zero regardless of seed count.
	pool := parsweep.NewPool(crosscheck.NewResources)
	results := parsweep.MapWith(*seeds, *workers, pool, func(i int, res *crosscheck.Resources) trial {
		sc := base
		sc.Seed = *baseSeed + int64(i)
		sc.Name = fmt.Sprintf("%s-seed%d", *name, sc.Seed)
		rep, err := crosscheck.RunWithRes(sc, o, res)
		return trial{rep: rep, err: err}
	})

	bad := 0
	for _, t := range results {
		if t.err != nil {
			fmt.Fprintln(errw, t.err)
			return 2
		}
		vs := t.rep.Violations()
		if *verbose || len(vs) > 0 {
			status := "ok"
			if len(vs) > 0 {
				status = fmt.Sprintf("%d violation(s)", len(vs))
			}
			fmt.Fprintf(out, "seed %-6d %s\n", t.rep.Scenario.Seed, status)
		}
		if len(vs) == 0 {
			continue
		}
		bad++
		for _, v := range vs {
			fmt.Fprintf(out, "  %s\n", v)
		}
		if d := t.rep.Diff(); d != "" {
			fmt.Fprintf(out, "  differential: %s\n", d)
		}
		if *shrink {
			min, spent := crosscheck.Shrink(t.rep.Scenario, 60)
			fmt.Fprintf(out, "  shrunk in %d runs to n=%d horizon=%v faults=%d engines=%v\n",
				spent, min.N, min.Horizon, len(min.Faults), min.Engines)
			path, err := crosscheck.WriteRepro(*reproDir, crosscheck.Repro{
				Note:     fmt.Sprintf("soak violation: %s", vs[0]),
				Found:    fmt.Sprintf("ssrmin-soak sweep %s seeds %d..%d", *name, *baseSeed, *baseSeed+int64(*seeds)-1),
				Scenario: min,
			})
			if err != nil {
				fmt.Fprintln(errw, err)
			} else {
				fmt.Fprintf(out, "  repro fixture: %s\n", path)
			}
		}
	}

	fmt.Fprintf(out, "soak: %d seeds, %d violating; rules=%d msgs sent=%d recv=%d dropped=%d\n",
		*seeds, bad,
		o.C.RuleFired.Load(), o.C.MsgSent.Load(), o.C.MsgRecv.Load(), o.C.MsgDropped.Load())
	if bad > 0 {
		return 1
	}
	return 0
}
