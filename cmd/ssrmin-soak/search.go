// Adversarial scenario search: instead of sweeping consecutive seeds over
// one fixed scenario shape, -search hill-climbs (internal/adversary.Climb
// with random restarts) over the scenario space itself — link knobs,
// fault storms, and churn/splice scripts — toward invariant violations.
// The score rewards an actual violation outright and otherwise follows a
// near-miss gradient: how late the census was last seen outside [1,2]
// (slow convergence) and how far the settled primary/secondary token
// separation stretched. Everything is driven by one search seed, so a
// find is replayable, and any hit is shrunk and persisted exactly like a
// sweep-mode violation.
package main

import (
	"fmt"
	"math/rand"
	"os"

	"ssrmin/internal/adversary"
	"ssrmin/internal/crosscheck"
	"ssrmin/internal/obs"
	"ssrmin/internal/scenario"
)

// violationScore dominates every near-miss gradient: any candidate that
// actually breaks an invariant outranks all candidates that merely get
// close.
const violationScore = 1_000_000

// searchOptions configures the mutation search.
type searchOptions struct {
	// Restarts and Budget mirror adversary.Options: Budget is the number
	// of neighbor evaluations per restart (each one full crosscheck run).
	Restarts int
	Budget   int
	// Seed drives the whole search trajectory.
	Seed int64
	// Churn admits join/leave/splice events into the mutation space.
	Churn bool
	// Shrink and ReproDir control violation persistence, as in sweep mode.
	Shrink   bool
	ReproDir string
}

// cloneScenario deep-copies the slices a mutation may edit.
func cloneScenario(sc crosscheck.Scenario) crosscheck.Scenario {
	out := sc
	out.Faults = append([]scenario.Fault(nil), sc.Faults...)
	out.Engines = append([]string(nil), sc.Engines...)
	return out
}

func clampProb(p float64) float64 {
	if p < 0 {
		return 0
	}
	if p > 0.3 { // heavier loss regimes drown the refresh loop in noise
		return 0.3
	}
	return p
}

// faultWindow is the fraction of the horizon in which mutations may place
// faults: late faults leave no settle room and every violation they cause
// would be graced anyway.
const faultWindow = 0.6

// addRandomFault appends one randomly drawn fault to sc. Link cuts are
// always paired with a heal inside the settle window — a permanently cut
// ring cannot circulate a token, so an unpaired cut manufactures a
// violation the paper never promises to survive.
func addRandomFault(rng *rand.Rand, sc *crosscheck.Scenario, churn bool) {
	at := rng.Float64() * sc.Horizon * faultWindow
	kinds := 3
	if churn {
		kinds = 6
	}
	switch rng.Intn(kinds) {
	case 0:
		sc.Faults = append(sc.Faults, scenario.Fault{At: at, Type: "states", Count: 1 + rng.Intn(sc.N)})
	case 1:
		sc.Faults = append(sc.Faults, scenario.Fault{At: at, Type: "caches", Count: 1 + rng.Intn(sc.N)})
	case 2:
		link := rng.Intn(sc.N)
		heal := at + rng.Float64()*sc.Settle*0.8
		sc.Faults = append(sc.Faults,
			scenario.Fault{At: at, Type: "cut", Link: link},
			scenario.Fault{At: heal, Type: "heal", Link: link})
	case 3:
		sc.Faults = append(sc.Faults, scenario.Fault{At: at, Type: "join", Node: rng.Intn(sc.N)})
	case 4:
		sc.Faults = append(sc.Faults, scenario.Fault{At: at, Type: "leave", Node: 1 + rng.Intn(sc.N-1)})
	case 5:
		sc.Faults = append(sc.Faults, scenario.Fault{At: at, Type: "splice", Node: rng.Intn(sc.N), Count: 1 + rng.Intn(2)})
	}
}

// mutateScenario applies one random mutation operator in place.
func mutateScenario(rng *rand.Rand, sc *crosscheck.Scenario, churn bool) {
	switch rng.Intn(10) {
	case 0:
		sc.Seed = 1 + rng.Int63n(1<<30)
	case 1:
		sc.Link.Loss = clampProb(sc.Link.Loss + (rng.Float64()-0.5)*0.1)
	case 2:
		sc.Link.Dup = clampProb(sc.Link.Dup + (rng.Float64()-0.5)*0.1)
	case 3:
		sc.Link.Corrupt = clampProb(sc.Link.Corrupt + (rng.Float64()-0.5)*0.05)
	case 4:
		j := sc.Link.Jitter + (rng.Float64()-0.5)*sc.Link.Delay
		if j < 0 {
			j = 0
		}
		if j > sc.Link.Delay {
			j = sc.Link.Delay
		}
		sc.Link.Jitter = j
	case 5:
		sc.RandomStart = !sc.RandomStart
	case 6:
		sc.IncoherentCaches = !sc.IncoherentCaches
	case 7:
		addRandomFault(rng, sc, churn)
	case 8:
		if len(sc.Faults) > 0 {
			i := rng.Intn(len(sc.Faults))
			sc.Faults = append(sc.Faults[:i], sc.Faults[i+1:]...)
		}
	case 9:
		if len(sc.Faults) > 0 {
			sc.Faults[rng.Intn(len(sc.Faults))].At = rng.Float64() * sc.Horizon * faultWindow
		}
	}
}

// score evaluates one report: violations dominate, then the near-miss
// gradient — settled token separation and how late the census was last
// seen outside its bounds, normalized to each engine's own time axis.
func score(rep crosscheck.Report) int {
	s := 0
	for _, e := range rep.Engines {
		s += violationScore * len(e.Violations)
		if e.MaxSeparation > 0 {
			s += 1000 * e.MaxSeparation
		}
		if e.LastBad > 0 {
			axis := rep.Scenario.Horizon
			if e.Engine == crosscheck.EngineState {
				axis = float64(rep.Scenario.Steps)
			}
			if axis > 0 {
				s += int(100 * e.LastBad / axis)
			}
		}
	}
	return s
}

// runSearch executes the mutation search from base and reports like the
// sweep loop: exit 0 on a clean search, 1 on a violation (with the
// shrunken repro persisted), 2 on an operational error.
func runSearch(base crosscheck.Scenario, opts searchOptions, o *obs.Observer, out, errw *os.File) int {
	res := crosscheck.NewResources()
	evals := 0
	measure := func(sc crosscheck.Scenario) int {
		evals++
		rep, err := crosscheck.RunWithRes(sc, o, res)
		if err != nil {
			// An unrunnable mutant (the neighbor's Validate raced a knob
			// interaction) just scores as the worst candidate.
			return -1 << 30
		}
		return score(rep)
	}
	draw := func(rng *rand.Rand) crosscheck.Scenario {
		sc := cloneScenario(base)
		sc.Seed = 1 + rng.Int63n(1<<30)
		for i, n := 0, rng.Intn(3); i < n; i++ {
			addRandomFault(rng, &sc, opts.Churn)
		}
		if sc.Validate() != nil {
			sc = cloneScenario(base)
			sc.Seed = 1 + rng.Int63n(1<<30)
		}
		return sc
	}
	neighbor := func(rng *rand.Rand, cur crosscheck.Scenario) crosscheck.Scenario {
		for try := 0; try < 8; try++ {
			cand := cloneScenario(cur)
			mutateScenario(rng, &cand, opts.Churn)
			if cand.Validate() == nil {
				return cand
			}
		}
		return cloneScenario(cur)
	}

	best := adversary.Climb[crosscheck.Scenario](draw, neighbor, measure,
		adversary.Options{Restarts: opts.Restarts, Budget: opts.Budget, Seed: opts.Seed})

	if best.Score < violationScore {
		fmt.Fprintf(out, "search: clean after %d runs (search seed %d); best near-miss score %d (scenario seed %d, %d faults, loss=%.3f dup=%.3f corrupt=%.3f)\n",
			evals, opts.Seed, best.Score, best.Best.Seed, len(best.Best.Faults),
			best.Best.Link.Loss, best.Best.Link.Dup, best.Best.Link.Corrupt)
		return 0
	}

	rep, err := crosscheck.RunWithRes(best.Best, o, res)
	if err != nil {
		fmt.Fprintln(errw, err)
		return 2
	}
	vs := rep.Violations()
	fmt.Fprintf(out, "search: violation after %d runs (search seed %d, scenario seed %d)\n",
		evals, opts.Seed, best.Best.Seed)
	for _, v := range vs {
		fmt.Fprintf(out, "  %s\n", v)
	}
	if d := rep.Diff(); d != "" {
		fmt.Fprintf(out, "  differential: %s\n", d)
	}
	if opts.Shrink && len(vs) > 0 {
		min, spent := crosscheck.Shrink(best.Best, 60)
		fmt.Fprintf(out, "  shrunk in %d runs to n=%d horizon=%v faults=%d engines=%v\n",
			spent, min.N, min.Horizon, len(min.Faults), min.Engines)
		path, err := crosscheck.WriteRepro(opts.ReproDir, crosscheck.Repro{
			Note:     fmt.Sprintf("search violation: %s", vs[0]),
			Found:    fmt.Sprintf("ssrmin-soak -search seed %d (%d runs)", opts.Seed, evals),
			Scenario: min,
		})
		if err != nil {
			fmt.Fprintln(errw, err)
		} else {
			fmt.Fprintf(out, "  repro fixture: %s\n", path)
		}
	}
	return 1
}
