// The bit-sliced batch executor for the fig12/fig13-style Monte-Carlo
// convergence sweeps: 64 seeded runs per machine word through
// internal/bitslice, with the scalar statemodel path kept as the
// differential oracle. Every table is built twice — once from scalar
// step counts, once from batch step counts — and the experiment (and
// the CI differential test in main_test.go) demands the renderings be
// byte-identical.
package main

import (
	"fmt"
	"strings"
	"time"

	"ssrmin/internal/bitslice"
	"ssrmin/internal/core"
	"ssrmin/internal/dijkstra"
	"ssrmin/internal/parsweep"
	"ssrmin/internal/report"
	"ssrmin/internal/stats"
)

func init() {
	register(97, "batchconv",
		"Bit-sliced batch executor: 64-lane SSRmin/SSToken convergence sweeps vs the scalar oracle",
		runBatchConv)
}

// batchAlgo names one sweep target and its per-size step budget.
type batchAlgo struct {
	name     string
	maxSteps func(n, k int) int
	scalar   func(n, k int, kind bitslice.DaemonKind, seed int64, lane, maxSteps int) (int, bool)
	batch    func(n, k int, kind bitslice.DaemonKind, seed int64, maxSteps int) ([bitslice.Lanes]int, uint64)
}

var batchAlgos = []batchAlgo{
	{
		name:     "SSRmin (fig12 workload)",
		maxSteps: func(n, k int) int { return core.New(n, k).ConvergenceStepBound() },
		scalar:   bitslice.ScalarSSRminRun,
		batch: func(n, k int, kind bitslice.DaemonKind, seed int64, maxSteps int) ([bitslice.Lanes]int, uint64) {
			b := bitslice.NewSSRmin(n, k, kind)
			b.SeedLanes(seed)
			return b.Run(maxSteps)
		},
	},
	{
		name:     "SSToken (fig13 workload)",
		maxSteps: func(n, k int) int { return 3 * dijkstra.New(n, k).ConvergenceBound() },
		scalar:   bitslice.ScalarSSTokenRun,
		batch: func(n, k int, kind bitslice.DaemonKind, seed int64, maxSteps int) ([bitslice.Lanes]int, uint64) {
			b := bitslice.NewSSToken(n, k, kind)
			b.SeedLanes(seed)
			return b.Run(maxSteps)
		},
	},
}

// batchSweep runs `batches` 64-lane batches per ring size through one
// executor and returns per-size step samples, in (size, batch, lane)
// order so the scalar and batch executors produce comparable arrays.
// Both executors fan out across cores on parsweep.Map: the batch path
// parallelizes over whole batches (64 lanes × W workers), the scalar
// path over individual seeded runs.
func batchSweep(a batchAlgo, ns []int, batches int, seed int64, scalar bool) ([][]float64, time.Duration) {
	out := make([][]float64, len(ns))
	start := time.Now()
	for si, n := range ns {
		k := n + 1
		bound := a.maxSteps(n, k)
		samples := make([]float64, 0, batches*bitslice.Lanes)
		if scalar {
			runs := parsweep.Map(batches*bitslice.Lanes, 0, func(i int) float64 {
				s, _ := a.scalar(n, k, bitslice.Subset, seed+int64(i/bitslice.Lanes), i%bitslice.Lanes, bound)
				return float64(s)
			})
			samples = append(samples, runs...)
		} else {
			perBatch := parsweep.Map(batches, 0, func(b int) [bitslice.Lanes]int {
				steps, _ := a.batch(n, k, bitslice.Subset, seed+int64(b), bound)
				return steps
			})
			for _, steps := range perBatch {
				for _, s := range steps {
					samples = append(samples, float64(s))
				}
			}
		}
		out[si] = samples
	}
	return out, time.Since(start)
}

// batchTable renders one executor's sweep as the committed table shape.
func batchTable(ns []int, batches int, samples [][]float64) *report.Table {
	t := newTable("n", "K", "runs", "mean steps", "median", "p90", "max", "growth c in c*n^2")
	for si, n := range ns {
		s := stats.Summarize(samples[si])
		t.AddRow(n, n+1, batches*bitslice.Lanes, s.Mean, s.Median, s.P90, s.Max, s.Mean/float64(n*n))
	}
	return t
}

// renderTables produces the byte-comparable (scalar, batch) renderings
// for one algorithm — the differential surface of the CI test.
func renderBatchTables(a batchAlgo, ns []int, batches int, seed int64) (scalarTab, batchTab string, scalarDur, batchDur time.Duration) {
	scalarSamples, sDur := batchSweep(a, ns, batches, seed, true)
	batchSamples, bDur := batchSweep(a, ns, batches, seed, false)
	var sb, bb strings.Builder
	if err := batchTable(ns, batches, scalarSamples).Render(&sb, tableFormat); err != nil {
		panic(err)
	}
	if err := batchTable(ns, batches, batchSamples).Render(&bb, tableFormat); err != nil {
		panic(err)
	}
	return sb.String(), bb.String(), sDur, bDur
}

// runBatchConv reproduces the fig12/fig13 convergence sweeps on both
// executors and proves the committed tables byte-identical, then reports
// the measured throughput ratio.
func runBatchConv(cfg runConfig) {
	ns := []int{8, 16, 32, 64}
	batches := 4
	if cfg.quick {
		ns = []int{8, 16}
		batches = 2
	}
	runs := batches * bitslice.Lanes
	summary := newTable("workload", "runs/size", "scalar s", "bit-sliced s", "speedup", "identical tables")
	for _, a := range batchAlgos {
		scalarTab, batchTab, sDur, bDur := renderBatchTables(a, ns, batches, cfg.seed)
		if scalarTab != batchTab {
			fmt.Printf("MISMATCH: %s scalar and bit-sliced executors disagree\n--- scalar ---\n%s--- batch ---\n%s",
				a.name, scalarTab, batchTab)
			continue
		}
		fmt.Printf("%s — %d runs per ring size, subset daemon, both executors byte-identical:\n", a.name, runs)
		fmt.Print(batchTab)
		fmt.Println()
		speedup := sDur.Seconds() / bDur.Seconds()
		summary.AddRow(a.name, runs, fmt.Sprintf("%.3f", sDur.Seconds()),
			fmt.Sprintf("%.3f", bDur.Seconds()), fmt.Sprintf("%.1fx", speedup), "yes")
	}
	fmt.Println("executor comparison (wall clock, includes the scalar oracle's per-step allocations):")
	printTable(summary)
}
