// Command experiments regenerates every evaluation artifact of the paper —
// each worked figure (1, 2, 3, 4, 11, 12, 13) and each formal result
// (Lemmas 1–9, Theorems 1–4) — as tables printed to stdout. EXPERIMENTS.md
// records a run of this command next to the paper's claims.
//
// Usage:
//
//	experiments              # run everything
//	experiments -run fig4    # one experiment
//	experiments -list        # list experiment ids
//	experiments -quick       # smaller sweeps (CI-friendly)
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"ssrmin/internal/cliconf"
	"ssrmin/internal/report"
)

// runCapturing tees the experiment's stdout into a file. Experiments print
// directly to os.Stdout, so the capture swaps it for the duration of the
// run (the harness is single-threaded per experiment).
func runCapturing(e experiment, cfg runConfig, path string) {
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		e.run(cfg)
		return
	}
	defer f.Close()
	orig := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		e.run(cfg)
		return
	}
	os.Stdout = w
	done := make(chan struct{})
	go func() {
		io.Copy(io.MultiWriter(orig, f), r)
		close(done)
	}()
	e.run(cfg)
	w.Close()
	<-done
	os.Stdout = orig
}

// tableFormat is the renderer every experiment's tables use; the -format
// flag sets it.
var tableFormat = report.Text

// newTable creates an experiment table bound to the selected format.
func newTable(header ...string) *report.Table { return report.New("", header...) }

// printTable renders a table to stdout in the selected format.
func printTable(t *report.Table) {
	if err := t.Render(os.Stdout, tableFormat); err != nil {
		fmt.Fprintln(os.Stderr, err)
	}
}

// experiment is one regenerable artifact.
type experiment struct {
	id    string
	what  string // the paper artifact it reproduces
	run   func(cfg runConfig)
	order int
}

type runConfig struct {
	quick bool
	seed  int64
}

var registry []experiment

func register(order int, id, what string, run func(runConfig)) {
	registry = append(registry, experiment{id: id, what: what, run: run, order: order})
}

func main() {
	var cc cliconf.Config
	cc.BindSeed(flag.CommandLine, 1)
	var (
		runF    = flag.String("run", "all", "comma-separated experiment ids (see -list)")
		list    = flag.Bool("list", false, "list experiments and exit")
		quick   = flag.Bool("quick", false, "smaller sweeps")
		formatF = flag.String("format", "text", "table output format: text | md | csv")
		outDir  = flag.String("out", "", "also write each experiment's output to <dir>/<id>.txt")
	)
	flag.Parse()
	f, err := report.ParseFormat(*formatF)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	tableFormat = f

	sort.Slice(registry, func(i, j int) bool { return registry[i].order < registry[j].order })

	if *list {
		for _, e := range registry {
			fmt.Printf("%-12s %s\n", e.id, e.what)
		}
		return
	}

	want := map[string]bool{}
	all := *runF == "all"
	for _, id := range strings.Split(*runF, ",") {
		want[strings.TrimSpace(id)] = true
	}

	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}

	cfg := runConfig{quick: *quick, seed: cc.Seed}
	ran := 0
	for _, e := range registry {
		if !all && !want[e.id] {
			continue
		}
		fmt.Printf("\n================================================================\n")
		fmt.Printf("Experiment %s — %s\n", e.id, e.what)
		fmt.Printf("================================================================\n")
		start := time.Now()
		if *outDir == "" {
			e.run(cfg)
		} else {
			runCapturing(e, cfg, filepath.Join(*outDir, e.id+".txt"))
		}
		fmt.Printf("[%s done in %v]\n", e.id, time.Since(start).Round(time.Millisecond))
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "no experiment matches %q; try -list\n", *runF)
		os.Exit(2)
	}
}
